// Command rrmserve is the HTTP simulation service: submit RRM
// simulation jobs over JSON, follow their progress as SSE/NDJSON
// streams, fetch results, and scrape Prometheus metrics. It runs
// standalone, as a cluster worker, or as the cluster coordinator.
//
// Usage:
//
//	rrmserve [-addr :8321] [-queue 64] [-workers N] [-cache-dir dir]
//	         [-trace-dir dir] [-warm-start] [-pprof] [-job-timeout d]
//	         [-request-timeout 30s] [-drain-timeout 30s] [-version]
//	rrmserve -join http://coord:8320 [-advertise URL] [-worker-id id]
//	         [-artifact-dir dir] [-heartbeat 1s] [...worker flags]
//	rrmserve -coordinator [-addr :8320] [-artifact-dir dir]
//	         [-heartbeat-ttl 5s] [-reconcile 500ms] [-vnodes 64]
//
// Endpoints (standalone and worker):
//
//	POST /api/v1/jobs              submit {"scheme":"rrm","workload":"GemsFDTD","quick":true},
//	                               a full {"config":{...}} document, or a multi-tenant
//	                               {"scheme":"rrm","tenants":[{"name":"A","trace":"a.rrmt"},...]}
//	                               run (trace paths resolve under -trace-dir; "profile"
//	                               entries name synthetic profiles and need no -trace-dir)
//	GET  /api/v1/jobs              list known jobs
//	GET  /api/v1/jobs/{id}         job status
//	GET  /api/v1/jobs/{id}/result  metrics (also served from the run cache)
//	GET  /api/v1/jobs/{id}/events  progress stream (SSE; ?format=ndjson for NDJSON)
//	GET  /api/v1/workloads         submittable workloads
//	GET  /api/v1/schemes           submittable schemes
//	GET  /metrics                  Prometheus text exposition
//	GET  /healthz                  readiness (503 while draining/deregistered)
//	GET  /livez                    liveness (200 while the process answers)
//	GET  /debug/pprof/             Go profiling endpoints (with -pprof only)
//
// The coordinator serves the same job API (proxied to workers by config
// hash), plus /api/v1/cluster/{join,heartbeat,leave,workers}.
//
// -artifact-dir points both tiers at the shared content-addressed
// store: workers read and write finished runs (and, with -warm-start,
// warm snapshots) there, and the coordinator answers result reads from
// it when no live worker remembers a job. On one machine a shared
// directory works as-is; across machines, mount the same path on all
// nodes.
//
// -warm-start shares simulation warmup across jobs whose configs differ
// only in post-warmup knobs; with -cache-dir, warm snapshots persist
// under <cache-dir>/snapshots. Results are bit-identical either way.
//
// SIGINT/SIGTERM triggers a graceful drain: the worker deregisters from
// its coordinator (new work re-routes), intake stops (503), queued and
// running jobs finish, and only after -drain-timeout are in-flight
// simulations cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/cluster"
	"rrmpcm/internal/cluster/artifact"
	"rrmpcm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "disk-backed run cache directory (empty = no cache)")
	traceDir := flag.String("trace-dir", "", "trace-file root for tenant replay submissions (empty = trace tenants disabled)")
	warmStart := flag.Bool("warm-start", false, "share simulation warmup across jobs with equal warm prefixes")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "non-streaming request timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	version := flag.Bool("version", false, "print build information and exit")

	coordinator := flag.Bool("coordinator", false, "run as the cluster coordinator instead of a simulation worker")
	join := flag.String("join", "", "coordinator base URL to join as a worker (empty = standalone)")
	advertise := flag.String("advertise", "", "base URL the coordinator proxies jobs to (default http://127.0.0.1<addr>)")
	workerID := flag.String("worker-id", "", "stable worker identity on the hash ring (default <hostname><addr>)")
	artifactDir := flag.String("artifact-dir", "", "shared content-addressed artifact store root (runs + snapshots)")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker heartbeat interval")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 5*time.Second, "coordinator: heartbeat age after which a worker is lost")
	reconcile := flag.Duration("reconcile", 500*time.Millisecond, "coordinator: control-loop interval")
	vnodes := flag.Int("vnodes", 64, "coordinator: consistent-hash virtual nodes per worker")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	var store artifact.Store
	if *artifactDir != "" {
		disk, err := artifact.OpenDisk(*artifactDir)
		if err != nil {
			log.Fatalf("rrmserve: artifact store: %v", err)
		}
		store = disk
	}

	if *coordinator {
		runCoordinator(coordinatorConfig{
			addr: *addr, pprofOn: *pprofOn, store: store,
			heartbeatTTL: *heartbeatTTL, reconcile: *reconcile,
			vnodes: *vnodes, proxyTimeout: *reqTimeout, drainTimeout: *drainTimeout,
		})
		return
	}

	runWorker(workerConfig{
		addr: *addr, queue: *queue, workers: *workers, cacheDir: *cacheDir, traceDir: *traceDir,
		warmStart: *warmStart, pprofOn: *pprofOn, store: store,
		jobTimeout: *jobTimeout, reqTimeout: *reqTimeout, drainTimeout: *drainTimeout,
		join: *join, advertise: *advertise, workerID: *workerID, heartbeat: *heartbeat,
	})
}

type workerConfig struct {
	addr         string
	queue        int
	workers      int
	cacheDir     string
	traceDir     string
	warmStart    bool
	pprofOn      bool
	store        artifact.Store
	jobTimeout   time.Duration
	reqTimeout   time.Duration
	drainTimeout time.Duration
	join         string
	advertise    string
	workerID     string
	heartbeat    time.Duration
}

func runWorker(cfg workerConfig) {
	opt := server.Options{
		QueueSize:      cfg.queue,
		Workers:        cfg.workers,
		CacheDir:       cfg.cacheDir,
		TraceDir:       cfg.traceDir,
		JobTimeout:     cfg.jobTimeout,
		RequestTimeout: cfg.reqTimeout,
		WarmStart:      cfg.warmStart,
	}
	if cfg.store != nil {
		// The shared store replaces the private disk cache so any worker
		// serves any result (and warm snapshot) computed anywhere.
		opt.Cache = artifact.RunCache{S: cfg.store}
		opt.Snapshots = artifact.SnapshotStore{S: cfg.store}
	}
	srv, err := server.New(opt)
	if err != nil {
		log.Fatalf("rrmserve: %v", err)
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: withPprof(srv.Handler(), cfg.pprofOn)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("rrmserve %s listening on %s (queue %d, cache %q)",
			buildinfo.Version(), cfg.addr, cfg.queue, cfg.cacheDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	var agent *cluster.Agent
	if cfg.join != "" {
		id := cfg.workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			id = host + cfg.addr
		}
		adv := cfg.advertise
		if adv == "" {
			adv = "http://127.0.0.1" + cfg.addr
			if !strings.HasPrefix(cfg.addr, ":") {
				adv = "http://" + cfg.addr
			}
		}
		agent, err = cluster.StartAgent(srv, cluster.AgentOptions{
			Coordinator: strings.TrimRight(cfg.join, "/"),
			ID:          id,
			Advertise:   adv,
			Interval:    cfg.heartbeat,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatalf("rrmserve: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("rrmserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("rrmserve: draining (budget %s)", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if agent != nil {
		// Deregister first so the coordinator re-routes new work before
		// intake closes.
		if err := agent.Close(drainCtx); err != nil {
			log.Printf("rrmserve: cluster leave: %v", err)
		}
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("rrmserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("rrmserve: job drain: %v", err)
	} else {
		log.Printf("rrmserve: drained cleanly")
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("rrmserve: %v", err)
	}
}

type coordinatorConfig struct {
	addr         string
	pprofOn      bool
	store        artifact.Store
	heartbeatTTL time.Duration
	reconcile    time.Duration
	vnodes       int
	proxyTimeout time.Duration
	drainTimeout time.Duration
}

func runCoordinator(cfg coordinatorConfig) {
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		HeartbeatTTL:      cfg.heartbeatTTL,
		ReconcileInterval: cfg.reconcile,
		VNodes:            cfg.vnodes,
		Artifacts:         cfg.store,
		ProxyTimeout:      cfg.proxyTimeout,
	})
	httpSrv := &http.Server{Addr: cfg.addr, Handler: withPprof(coord.Handler(), cfg.pprofOn)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("rrmserve %s coordinating on %s (heartbeat TTL %s)",
			buildinfo.Version(), cfg.addr, cfg.heartbeatTTL)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("rrmserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("rrmserve: coordinator stopping")
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("rrmserve: http shutdown: %v", err)
	}
	coord.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("rrmserve: %v", err)
	}
}

// withPprof wraps handler with the Go profiling endpoints on an outer
// mux so the service's own routing (and its request timeouts) never
// sees them.
func withPprof(handler http.Handler, on bool) http.Handler {
	if !on {
		return handler
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", handler)
	return mux
}
