// Command rrmserve is the HTTP simulation service: submit RRM
// simulation jobs over JSON, follow their progress as SSE/NDJSON
// streams, fetch results, and scrape Prometheus metrics.
//
// Usage:
//
//	rrmserve [-addr :8321] [-queue 64] [-workers N] [-cache-dir dir]
//	         [-warm-start] [-pprof] [-job-timeout d] [-request-timeout 30s]
//	         [-drain-timeout 30s] [-version]
//
// Endpoints:
//
//	POST /api/v1/jobs              submit {"scheme":"rrm","workload":"GemsFDTD","quick":true}
//	                               or a full {"config":{...}} document
//	GET  /api/v1/jobs              list known jobs
//	GET  /api/v1/jobs/{id}         job status
//	GET  /api/v1/jobs/{id}/result  metrics (also served from the disk run cache)
//	GET  /api/v1/jobs/{id}/events  progress stream (SSE; ?format=ndjson for NDJSON)
//	GET  /api/v1/workloads         submittable workloads
//	GET  /api/v1/schemes           submittable schemes
//	GET  /metrics                  Prometheus text exposition
//	GET  /healthz                  liveness + build info
//	GET  /debug/pprof/             Go profiling endpoints (with -pprof only)
//
// -warm-start shares simulation warmup across jobs whose configs differ
// only in post-warmup knobs; with -cache-dir, warm snapshots persist
// under <cache-dir>/snapshots. Results are bit-identical either way.
//
// SIGINT/SIGTERM triggers a graceful drain: intake stops (503), queued
// and running jobs finish, and only after -drain-timeout are in-flight
// simulations cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	queue := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "disk-backed run cache directory (empty = no cache)")
	warmStart := flag.Bool("warm-start", false, "share simulation warmup across jobs with equal warm prefixes")
	pprofOn := flag.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "non-streaming request timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	srv, err := server.New(server.Options{
		QueueSize:      *queue,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		JobTimeout:     *jobTimeout,
		RequestTimeout: *reqTimeout,
		WarmStart:      *warmStart,
	})
	if err != nil {
		log.Fatalf("rrmserve: %v", err)
	}

	handler := srv.Handler()
	if *pprofOn {
		// The profiling endpoints sit on an outer mux so the service's
		// own routing (and its request timeouts) never sees them.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("rrmserve %s listening on %s (queue %d, cache %q)",
			buildinfo.Version(), *addr, *queue, *cacheDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("rrmserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("rrmserve: draining (budget %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("rrmserve: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("rrmserve: job drain: %v", err)
	} else {
		log.Printf("rrmserve: drained cleanly")
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("rrmserve: %v", err)
	}
}
