// Command tracegen inspects the synthetic workload generators: it prints
// per-benchmark stream statistics (instruction mix, component shares,
// footprint) or dumps a raw trace for external tools.
//
// Usage:
//
//	tracegen -stats                      # table for all benchmarks
//	tracegen -workload lbm -ops 1000000  # stats for one benchmark
//	tracegen -workload mcf -dump -ops 50 # one line per op on stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"rrmpcm"
	"rrmpcm/internal/buildinfo"
)

func main() {
	name := flag.String("workload", "", "benchmark name (empty: all)")
	ops := flag.Int("ops", 500_000, "memory operations to generate")
	dump := flag.Bool("dump", false, "print raw ops instead of statistics")
	seed := flag.Uint64("seed", 1, "generator seed")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	profiles := rrmpcm.Profiles()
	if *name != "" {
		var found bool
		for _, p := range profiles {
			if p.Name == *name {
				profiles = []rrmpcm.Profile{p}
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("tracegen: unknown benchmark %q", *name)
		}
	}

	if *dump {
		if len(profiles) != 1 {
			log.Fatal("tracegen: -dump needs -workload")
		}
		dumpTrace(profiles[0], *ops, *seed)
		return
	}

	fmt.Printf("%-11s %9s %8s %8s %10s %12s %11s\n",
		"benchmark", "mem/inst", "stores", "paperMPKI", "regions4K", "maxRegionHit", "footprint")
	paper := rrmpcm.PaperMPKI()
	for _, p := range profiles {
		statsFor(p, *ops, *seed, paper[p.Name])
	}
}

// statsFor streams ops and summarizes the address structure.
func statsFor(p rrmpcm.Profile, ops int, seed uint64, paperMPKI float64) {
	gen := newGen(p, seed)
	var op rrmpcm.Op
	insts, stores := 0, 0
	regions := map[uint64]int{}
	var minA, maxA uint64 = ^uint64(0), 0
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		insts += op.NonMem + 1
		if op.Store {
			stores++
		}
		regions[op.Addr>>12]++
		if op.Addr < minA {
			minA = op.Addr
		}
		if op.Addr > maxA {
			maxA = op.Addr
		}
	}
	maxHits := 0
	for _, n := range regions {
		if n > maxHits {
			maxHits = n
		}
	}
	fmt.Printf("%-11s %9.4f %7.1f%% %8.2f %10d %12d %8dMB\n",
		p.Name,
		float64(ops)/float64(insts),
		100*float64(stores)/float64(ops),
		paperMPKI,
		len(regions),
		maxHits,
		(maxA-minA)>>20)
}

func dumpTrace(p rrmpcm.Profile, ops int, seed uint64) {
	gen := newGen(p, seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var op rrmpcm.Op
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		kind := "L"
		if op.Store {
			kind = "S"
		}
		fmt.Fprintf(w, "%s %#x +%d\n", kind, op.Addr, op.NonMem)
	}
}

func newGen(p rrmpcm.Profile, seed uint64) *rrmpcm.Mixture {
	gen, err := rrmpcm.NewMixture(p, 0, 2<<30, seed)
	if err != nil {
		log.Fatal(err)
	}
	return gen
}
