// Command tracegen inspects the synthetic workload generators: it prints
// per-benchmark stream statistics (instruction mix, component shares,
// footprint), dumps a raw trace for external tools, exports workloads to
// the compact streaming trace-file format (one file per core, replayable
// by rrmsim -replay and by tenant submissions to rrmserve), and imports
// trace files for inspection.
//
// Usage:
//
//	tracegen -stats                      # table for all benchmarks
//	tracegen -workload lbm -ops 1000000  # stats for one benchmark
//	tracegen -workload mcf -dump -ops 50 # one line per op on stdout
//	tracegen -workload PHASE_1 -export dir -ops 2000000
//	                                     # dir/PHASE_1.c0.rrmt ... c3.rrmt
//	tracegen -import dir/PHASE_1.c0.rrmt # print the file's metadata
//	tracegen -import f.rrmt -dump -ops 50
//
// Exported traces use the simulator's exact per-core seeding and
// address-partition rules, so replaying them through rrmsim reproduces
// the generator run's metrics byte for byte.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rrmpcm"
	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/tracefile"
)

func main() {
	name := flag.String("workload", "", "benchmark name (empty: all)")
	ops := flag.Int("ops", 500_000, "memory operations to generate")
	dump := flag.Bool("dump", false, "print raw ops instead of statistics")
	seed := flag.Uint64("seed", 1, "generator seed")
	export := flag.String("export", "", "export -workload as trace files into this directory (one per core)")
	imprt := flag.String("import", "", "inspect a trace file (with -dump: print its ops)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *imprt != "" {
		importTrace(*imprt, *dump, *ops)
		return
	}
	if *export != "" {
		if *name == "" {
			log.Fatal("tracegen: -export needs -workload")
		}
		exportWorkload(*name, *export, uint64(*ops), *seed)
		return
	}

	profiles := rrmpcm.Profiles()
	if *name != "" {
		var found bool
		for _, p := range profiles {
			if p.Name == *name {
				profiles = []rrmpcm.Profile{p}
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("tracegen: unknown benchmark %q", *name)
		}
	}

	if *dump {
		if len(profiles) != 1 {
			log.Fatal("tracegen: -dump needs -workload")
		}
		dumpTrace(profiles[0], *ops, *seed)
		return
	}

	fmt.Printf("%-11s %9s %8s %8s %10s %12s %11s\n",
		"benchmark", "mem/inst", "stores", "paperMPKI", "regions4K", "maxRegionHit", "footprint")
	paper := rrmpcm.PaperMPKI()
	for _, p := range profiles {
		statsFor(p, *ops, *seed, paper[p.Name])
	}
}

// statsFor streams ops and summarizes the address structure.
func statsFor(p rrmpcm.Profile, ops int, seed uint64, paperMPKI float64) {
	gen := newGen(p, seed)
	var op rrmpcm.Op
	insts, stores := 0, 0
	regions := map[uint64]int{}
	var minA, maxA uint64 = ^uint64(0), 0
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		insts += op.NonMem + 1
		if op.Store {
			stores++
		}
		regions[op.Addr>>12]++
		if op.Addr < minA {
			minA = op.Addr
		}
		if op.Addr > maxA {
			maxA = op.Addr
		}
	}
	maxHits := 0
	for _, n := range regions {
		if n > maxHits {
			maxHits = n
		}
	}
	fmt.Printf("%-11s %9.4f %7.1f%% %8.2f %10d %12d %8dMB\n",
		p.Name,
		float64(ops)/float64(insts),
		100*float64(stores)/float64(ops),
		paperMPKI,
		len(regions),
		maxHits,
		(maxA-minA)>>20)
}

func dumpTrace(p rrmpcm.Profile, ops int, seed uint64) {
	gen := newGen(p, seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var op rrmpcm.Op
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		kind := "L"
		if op.Store {
			kind = "S"
		}
		fmt.Fprintf(w, "%s %#x +%d\n", kind, op.Addr, op.NonMem)
	}
}

func newGen(p rrmpcm.Profile, seed uint64) *rrmpcm.Mixture {
	gen, err := rrmpcm.NewMixture(p, 0, 2<<30, seed)
	if err != nil {
		log.Fatal(err)
	}
	return gen
}

// exportWorkload records every stream of a workload to trace files in
// dir, using the simulator's seeding and address-partition rules so the
// export reproduces exactly what a simulation run with this seed would
// generate.
func exportWorkload(name, dir string, ops, seed uint64) {
	w, err := rrmpcm.WorkloadByName(name)
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	if len(w.Replay) > 0 {
		log.Fatalf("tracegen: workload %s is already a replay workload", w.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	mem := rrmpcm.DefaultDeviceConfig().MemBytes
	n := len(w.Cores)
	for i := 0; i < n; i++ {
		base, span := rrmpcm.CorePartition(mem, n, i)
		gen, err := rrmpcm.NewStream(w, i, base, span, seed)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		meta := tracefile.Meta{
			Name: w.Cores[i].Name, BaseCPI: gen.BaseCPI(), MaxMLP: gen.MaxMLP(),
			Base: base, Span: span, Seed: rrmpcm.CoreSeed(seed, i),
		}
		blob, err := tracefile.Record(gen, meta, ops)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.c%d.rrmt", w.Name, i))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		f, err := tracefile.Parse(blob)
		if err != nil {
			log.Fatalf("tracegen: verifying %s: %v", path, err)
		}
		fmt.Printf("%s  ops %d  bytes %d  sum %#016x\n", path, f.Ops(), len(blob), f.Sum())
	}
}

// importTrace loads one trace file and prints its metadata (or, with
// -dump, its ops).
func importTrace(path string, dump bool, ops int) {
	f, err := tracefile.Load(path)
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	if dump {
		r := f.Stream()
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		var op rrmpcm.Op
		for i := 0; i < ops; i++ {
			r.Next(&op)
			kind := "L"
			if op.Store {
				kind = "S"
			}
			fmt.Fprintf(w, "%s %#x +%d\n", kind, op.Addr, op.NonMem)
		}
		return
	}
	m := f.Meta()
	fmt.Printf("profile    %s\n", m.Name)
	fmt.Printf("ops        %d\n", f.Ops())
	fmt.Printf("base cpi   %g\n", m.BaseCPI)
	fmt.Printf("max mlp    %d\n", m.MaxMLP)
	fmt.Printf("partition  [%#x, %#x)\n", m.Base, m.Base+m.Span)
	fmt.Printf("seed       %d\n", m.Seed)
	fmt.Printf("sum        %#016x\n", f.Sum())
}
