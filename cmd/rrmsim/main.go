// Command rrmsim runs simulations of the Tables IV/V system and prints
// full metrics reports.
//
// Usage:
//
//	rrmsim [-scheme rrm|static-3|...|static-7] [-workload GemsFDTD[,mcf,...]|all]
//	       [-duration 40ms] [-warmup 10ms] [-timescale 100]
//	       [-hot-threshold 16] [-coverage 4] [-region-kb 4] [-seed 1]
//	       [-parallel N] [-cache-dir dir] [-warm-start] [-json]
//	       [-sample] [-sample-windows 8] [-sample-window 100us]
//	       [-sample-detail 100us] [-sample-stride 1]
//	       [-replay f0.rrmt,f1.rrmt,...] [-tenants A,B,...]
//	       [-reliability] [-ecc-t 4] [-prog-ber 1e-5] [-ecc-latency 25ns]
//	       [-patrol] [-patrol-interval 100ms] [-patrol-batch 64]
//	       [-hybrid] [-hybrid-mb 64] [-hybrid-policy wcount|recency]
//	       [-hybrid-threshold 4] [-hybrid-page 4096] [-hybrid-batch 8]
//	       [-cpuprofile file] [-memprofile file]
//
// -hybrid fronts the PCM with a DRAM staging tier and hot-page migration
// engine: hot pages (promoted by -hybrid-policy after -hybrid-threshold
// missed writes, or any accesses for "recency") are staged in -hybrid-mb
// of DRAM, demand writes to them are absorbed at DRAM latency, and
// cold-dirty pages demote back to PCM in coalesced batches of
// -hybrid-batch pages. The report gains a Hybrid tier section with the
// per-tier traffic split and migration counters.
//
// -sample runs each simulation as a SMARTS-style sampled run instead of
// one contiguous detailed window: -sample-windows detailed windows of
// -sample-window each (preceded by -sample-detail of discarded pre-roll)
// are spread over -duration, the gaps fast-forward in functional-only
// mode, and the windows execute in parallel. The report gains a Sampling
// section with 95% confidence intervals; -sample-stride above 1 thins
// the functional warming between windows for long steady-state runs.
//
// -reliability turns on the drift-fault injector, the t-bit ECC model
// and the scrubber; the report gains a Reliability section and the JSON
// output a "reliability" block. -json prints each run's full Metrics
// document instead of the text report.
//
// -workload accepts a comma-separated list (or "all"); the runs fan out
// over the parallel experiment engine, reports printed in the order the
// workloads were named regardless of completion order. With -cache-dir,
// finished runs persist to disk keyed by config hash and later
// invocations reload them instead of re-simulating.
//
// -replay swaps the named workload's synthetic streams for recorded
// trace files (tracegen -export), one per core; the run's metrics are
// byte-identical to the generator run the traces were exported from.
// -tenants names one tenant per stream and adds per-tenant attribution
// (instructions, writes by mode, retention violations, reliability
// counters) to the report and the JSON output.
//
// -warm-start shares simulation warmup across the batch's runs where
// their configs differ only in post-warmup knobs; results are
// bit-identical either way. With -cache-dir, warm snapshots persist
// under <cache-dir>/snapshots and later invocations fork from them.
// -cpuprofile and -memprofile write pprof profiles of the whole batch.
//
// Examples:
//
//	rrmsim -scheme rrm -workload GemsFDTD
//	rrmsim -scheme static-3 -workload MIX_2 -duration 20ms
//	rrmsim -scheme rrm -hot-threshold 8   # the paper's aggressive config
//	rrmsim -scheme rrm -workload all -parallel 8 -cache-dir /tmp/rrm-cache
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rrmpcm"
	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/experiments"
	"rrmpcm/internal/profiling"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/tracefile"
)

func main() {
	scheme := flag.String("scheme", "rrm", "write scheme: rrm or static-3..static-7")
	workload := flag.String("workload", "GemsFDTD", "comma-separated workload names, or \"all\" (see -list-workloads)")
	duration := flag.Duration("duration", 40*time.Millisecond, "measured simulation window")
	warmup := flag.Duration("warmup", 10*time.Millisecond, "warmup before measurement")
	timescale := flag.Float64("timescale", 100, "retention clock acceleration")
	hotThreshold := flag.Int("hot-threshold", 16, "RRM hot_threshold (aggressiveness)")
	coverage := flag.Int("coverage", 4, "RRM LLC coverage rate (2/4/8/16)")
	regionKB := flag.Uint64("region-kb", 4, "RRM entry coverage size in KB")
	seed := flag.Uint64("seed", 1, "workload seed")
	shards := flag.Int("shards", 0, "sharded event execution: 0 = serial engine, -1 = auto (one shard per memory channel), N = N channel shards (must divide the channel count); metrics are byte-identical at any setting")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "disk-backed run cache directory (empty = no cache)")
	warmStart := flag.Bool("warm-start", false, "share simulation warmup across runs with equal warm prefixes")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the batch to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	reliabilityOn := flag.Bool("reliability", false, "enable the drift-fault/ECC/scrubbing model")
	eccT := flag.Int("ecc-t", rrmpcm.DefaultReliabilityConfig().ECCBits, "ECC correction strength in bits per 64B line (with -reliability)")
	progBER := flag.Float64("prog-ber", rrmpcm.DefaultReliabilityConfig().ProgBitErrorProb, "programming bit-error probability (with -reliability)")
	eccLatency := flag.Duration("ecc-latency", 25*time.Nanosecond, "read-path stall per ECC correction (with -reliability)")
	patrol := flag.Bool("patrol", false, "enable background patrol scrubbing (with -reliability)")
	patrolInterval := flag.Duration("patrol-interval", 100*time.Millisecond, "real-time interval between patrol batches (with -patrol)")
	patrolBatch := flag.Int("patrol-batch", rrmpcm.DefaultReliabilityConfig().PatrolBatch, "lines scrubbed per patrol batch (with -patrol)")
	hybrid := flag.Bool("hybrid", false, "front the PCM with a DRAM staging tier and hot-page migration")
	hybridMB := flag.Uint64("hybrid-mb", 64, "DRAM staging capacity in MB (with -hybrid)")
	hybridPolicy := flag.String("hybrid-policy", rrmpcm.PolicyWriteCount, "promotion policy: wcount (missed writes) or recency (any access) (with -hybrid)")
	hybridThreshold := flag.Int("hybrid-threshold", rrmpcm.DefaultHybridConfig().Migration.PromoteThreshold, "misses before a page is promoted to DRAM (with -hybrid)")
	hybridPage := flag.Uint64("hybrid-page", rrmpcm.DefaultHybridConfig().Migration.PageBytes, "migration page size in bytes (with -hybrid)")
	hybridBatch := flag.Int("hybrid-batch", rrmpcm.DefaultHybridConfig().Migration.DemoteBatch, "cold-dirty pages demoted per coalesced batch (with -hybrid)")
	sample := flag.Bool("sample", false, "run as a SMARTS-style sampled simulation (report gains confidence intervals)")
	sampleWindows := flag.Int("sample-windows", 8, "detailed measurement windows per sampled run (with -sample)")
	sampleWindow := flag.Duration("sample-window", 100*time.Microsecond, "measured length of each detailed window (with -sample)")
	sampleDetail := flag.Duration("sample-detail", 100*time.Microsecond, "detailed pre-roll discarded before each window (with -sample)")
	sampleStride := flag.Int("sample-stride", 1, "fast-forward thinning between windows: only the trailing 1/N of each gap runs functional traffic (with -sample; >1 trades fidelity for speed on steady-state runs)")
	replay := flag.String("replay", "", "comma-separated trace files (tracegen -export), one per core; -workload names the run")
	tenants := flag.String("tenants", "", "comma-separated tenant names, one per stream (enables per-tenant attribution)")
	jsonOut := flag.Bool("json", false, "print metrics as JSON instead of the text report")
	listW := flag.Bool("list-workloads", false, "list workloads and exit")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *listW {
		for _, w := range rrmpcm.Workloads() {
			names := make([]string, len(w.Cores))
			for i, p := range w.Cores {
				names[i] = p.Name
			}
			fmt.Printf("%-11s %s\n", w.Name, strings.Join(names, "+"))
		}
		return
	}

	s, err := parseScheme(*scheme, *hotThreshold, *coverage, *regionKB)
	if err != nil {
		fatal(err)
	}

	var workloads []rrmpcm.Workload
	if *workload == "all" {
		workloads = rrmpcm.Workloads()
	} else {
		for _, name := range strings.Split(*workload, ",") {
			w, err := rrmpcm.WorkloadByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			workloads = append(workloads, w)
		}
	}
	if *replay != "" {
		if len(workloads) != 1 {
			fatal(fmt.Errorf("-replay needs exactly one -workload name for the run's identity"))
		}
		// The replay run keeps the named workload's identity (the
		// reliability seed mixes the name), but its streams come from
		// the trace files — content-addressed so the run's config hash
		// covers the trace bytes.
		w := workloads[0]
		w.Cores, w.Dynamics = nil, nil
		for _, p := range strings.Split(*replay, ",") {
			p = strings.TrimSpace(p)
			f, err := tracefile.Load(p)
			if err != nil {
				fatal(err)
			}
			w.Replay = append(w.Replay, rrmpcm.TraceRef{Path: p, Sum: f.Sum()})
		}
		workloads[0] = w
	}
	if *tenants != "" {
		names := strings.Split(*tenants, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		for i := range workloads {
			workloads[i].Tenants = names
		}
	}

	jobs := make([]engine.Job, len(workloads))
	for i, w := range workloads {
		cfg := rrmpcm.DefaultConfig(s, w)
		cfg.Duration = rrmpcm.Time(duration.Nanoseconds()) * rrmpcm.Nanosecond
		cfg.Warmup = rrmpcm.Time(warmup.Nanoseconds()) * rrmpcm.Nanosecond
		cfg.TimeScale = *timescale
		cfg.Seed = *seed
		cfg.Shards = *shards
		if *reliabilityOn {
			rel := rrmpcm.DefaultReliabilityConfig()
			rel.Enabled = true
			rel.ECCBits = *eccT
			rel.ProgBitErrorProb = *progBER
			rel.ECCLatency = rrmpcm.Time(eccLatency.Nanoseconds()) * rrmpcm.Nanosecond
			rel.Patrol = *patrol
			rel.PatrolInterval = rrmpcm.Time(patrolInterval.Nanoseconds()) * rrmpcm.Nanosecond
			rel.PatrolBatch = *patrolBatch
			cfg.Reliability = rel
		}
		if *hybrid {
			hc := rrmpcm.DefaultHybridConfig()
			hc.DRAM.CapBytes = *hybridMB << 20
			hc.Migration.Policy = *hybridPolicy
			hc.Migration.PromoteThreshold = *hybridThreshold
			hc.Migration.PageBytes = *hybridPage
			hc.Migration.DemoteBatch = *hybridBatch
			cfg.Hybrid = &hc
		}
		if *sample {
			cfg.Sampling = &rrmpcm.SamplingSpec{
				Windows:      *sampleWindows,
				Window:       rrmpcm.Time(sampleWindow.Nanoseconds()) * rrmpcm.Nanosecond,
				DetailWarmup: rrmpcm.Time(sampleDetail.Nanoseconds()) * rrmpcm.Nanosecond,
				FFStride:     *sampleStride,
			}
			if err := cfg.Sampling.Validate(cfg.Duration); err != nil {
				fatal(err)
			}
		}
		job, err := experiments.NewJob(cfg, "")
		if err != nil {
			fatal(err)
		}
		job.Name = w.Name
		jobs[i] = job
	}

	eopt := engine.Options{Parallel: *parallel}
	if *cacheDir != "" {
		c, err := engine.OpenRunCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		eopt.Cache = c
	}
	if *warmStart {
		var store engine.SnapshotStore = engine.NewMemSnapshotStore()
		if *cacheDir != "" {
			c, err := engine.OpenSnapshotCache(filepath.Join(*cacheDir, "snapshots"))
			if err != nil {
				fatal(err)
			}
			store = c
		}
		eopt.Sim = engine.WarmRunSim(store)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile, func(err error) {
		fmt.Fprintln(os.Stderr, "rrmsim:", err)
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, _ := engine.New(eopt).Run(ctx, jobs)
	stopProfiles()

	failed := false
	for i, res := range results {
		if i > 0 {
			fmt.Printf("\n%s\n\n", strings.Repeat("-", 72))
		}
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "rrmsim: %s: %v\n", res.Name, res.Err)
			failed = true
			continue
		}
		if *jsonOut {
			blob, err := json.MarshalIndent(res.Metrics, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "rrmsim: %s: %v\n", res.Name, err)
				failed = true
				continue
			}
			fmt.Printf("%s\n", blob)
			if res.Metrics.RetentionViolations > 0 {
				failed = true
			}
			continue
		}
		if res.Cached {
			fmt.Printf("[disk cache hit %s]\n", res.Key[:12])
		}
		if !report(res.Metrics, res.Wall) {
			failed = true
		}
	}
	if len(results) > 1 {
		fmt.Printf("\n%d workloads in %.1f s wall\n", len(results), time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}

func parseScheme(name string, hotThreshold, coverage int, regionKB uint64) (rrmpcm.Scheme, error) {
	if strings.HasPrefix(name, "static-") {
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static-"))
		if err != nil || n < 3 || n > 7 {
			return rrmpcm.Scheme{}, fmt.Errorf("bad static scheme %q (want static-3..static-7)", name)
		}
		return rrmpcm.StaticScheme(rrmpcm.WriteMode(n)), nil
	}
	if name != "rrm" {
		return rrmpcm.Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
	cfg := rrmpcm.DefaultRRMConfig()
	cfg.HotThreshold = hotThreshold
	cfg.RegionBytes = regionKB << 10
	cfg = cfg.WithCoverage(coverage, 6<<20)
	return rrmpcm.RRMSchemeWith(cfg), nil
}

// report prints one run's metrics; it returns false when the run had
// retention violations.
func report(m rrmpcm.Metrics, wall time.Duration) bool {
	fmt.Printf("scheme %s, workload %s: %.1f ms simulated in %.1f s (retention clock x%g)\n\n",
		m.Scheme, m.Workload, m.SimSeconds*1000, wall.Seconds(), m.TimeScale)

	if sp := m.Sampling; sp != nil {
		fmt.Printf("Sampling (%d windows x %.0f us measured, %.1f%% detailed coverage, %.0f%% CI)\n",
			sp.Windows, sp.WindowSeconds*1e6, 100*sp.Coverage, 100*sp.Confidence)
		ci := func(name string, iv stats.Interval) {
			fmt.Printf("  %-20s %8.4g  [%.4g, %.4g]\n", name, iv.Mean, iv.Lo, iv.Hi)
		}
		ci("IPC", sp.IPC)
		ci("LLC MPKI", sp.LLCMPKI)
		ci("wear rate", sp.WearTotalRate)
		ci("lifetime years", sp.LifetimeYears)
		ci("short-write frac", sp.ShortWriteFraction)
		fmt.Printf("\n")
	}

	fmt.Printf("Performance\n")
	fmt.Printf("  aggregate IPC        %8.3f  (per core:", m.IPC)
	for _, v := range m.PerCoreIPC {
		fmt.Printf(" %.3f", v)
	}
	fmt.Printf(")\n")
	fmt.Printf("  instructions         %8d\n", m.Instructions)
	fmt.Printf("  LLC MPKI             %8.2f\n", m.LLCMPKI)
	fmt.Printf("  avg read latency     %8s\n", m.AvgReadLatency)
	fmt.Printf("  row-buffer hit rate  %8.1f%%\n", 100*m.RowBufHitRate)
	fmt.Printf("  write pauses         %8d\n\n", m.WritePauses)

	fmt.Printf("Memory traffic (measured window)\n")
	fmt.Printf("  reads/writes/refresh %d / %d / %d\n", m.ReadsServed, m.WritesServed, m.RefreshesServed)
	for _, mode := range rrmpcm.Modes() {
		if n := m.WritesByMode[mode]; n > 0 {
			fmt.Printf("  %-22s %d\n", mode.String()+"s", n)
		}
	}
	fmt.Printf("  short-write fraction %8.1f%%\n\n", 100*m.ShortWriteFraction)

	fmt.Printf("Lifetime (wear rates in block writes/s, real time)\n")
	fmt.Printf("  demand writes        %8.3g\n", m.WearDemandRate)
	fmt.Printf("  RRM fast refresh     %8.3g\n", m.WearRRMRate)
	fmt.Printf("  slow refresh         %8.3g\n", m.WearSlowRate)
	fmt.Printf("  global refresh       %8.3g\n", m.WearGlobalRate)
	fmt.Printf("  lifetime             %8s years\n\n", stats.FormatYears(m.LifetimeYears))

	fmt.Printf("Energy (over the paper's 5 s window)\n")
	fmt.Printf("  demand writes        %8.3f J\n", m.EnergyDemandJ)
	fmt.Printf("  refresh              %8.3f J\n", m.EnergyRefreshJ)
	fmt.Printf("  total                %8.3f J\n\n", m.EnergyTotalJ)

	if h := m.Hybrid; h != nil {
		fmt.Printf("Hybrid tier (DRAM staging in front of PCM)\n")
		fmt.Printf("  reads  PCM/DRAM      %d / %d (%.1f%% DRAM hit)\n",
			h.PCMReads, h.DRAMReads, 100*h.DRAMReadHitRate)
		fmt.Printf("  writes PCM/DRAM      %d / %d (%.1f%% absorbed)\n",
			h.PCMWrites, h.DRAMWrites, 100*h.WriteAbsorption)
		fmt.Printf("  promotions/demotions %d / %d (%d clean evictions, %d batches)\n",
			h.Promotions, h.Demotions, h.CleanEvictions, h.CoalesceBatches)
		fmt.Printf("  copy reads/writebacks %d / %d\n", h.CopyReads, h.WritebackBlocks)
		fmt.Printf("  resident/dirty pages %d / %d\n", h.ResidentPages, h.DirtyPages)
		fmt.Printf("  DRAM row-hit rate    %8.1f%% (%d refresh stalls, avg read %s)\n",
			100*h.DRAMRowHitRate, h.DRAMRefreshStalls, h.DRAMAvgReadLatency)
		fmt.Printf("  DRAM energy          %8.3f J (%.3f W)\n\n", h.DRAMEnergyJ, h.DRAMPowerW)
	}
	if len(m.Tenants) > 0 {
		fmt.Printf("Tenants\n")
		for _, t := range m.Tenants {
			fmt.Printf("  %-12s cores %d  IPC %6.3f  insts %10d  writes %8d (short %.1f%%)  violations %d\n",
				t.Name, t.Cores, t.IPC, t.Instructions, t.DemandWrites,
				100*t.ShortWriteFraction, t.RetentionViolations)
			if t.ReadsChecked > 0 {
				fmt.Printf("  %-12s reads checked %d  corrected %d  uncorrectable %d\n",
					"", t.ReadsChecked, t.CorrectedReads, t.UncorrectableReads)
			}
		}
		fmt.Printf("\n")
	}
	if m.Scheme == "RRM" {
		fmt.Printf("RRM internals\n")
		fmt.Printf("  registrations        %8d (%d filtered as streaming)\n", m.RRM.Registrations, m.RRM.CleanFiltered)
		fmt.Printf("  promotions/demotions %d / %d\n", m.RRM.Promotions, m.RRM.Demotions)
		fmt.Printf("  evictions            %8d (%d blocks flushed)\n", m.RRM.Evictions, m.RRM.EvictionFlush)
		fmt.Printf("  hot entries/blocks   %d / %d\n", m.HotEntries, m.HotBlocks)
	}
	if rel := m.Reliability; rel != nil {
		fmt.Printf("Reliability (t-bit ECC over drift-fault injection)\n")
		fmt.Printf("  reads checked        %8d (clean %d, corrected %d, uncorrectable %d)\n",
			rel.ReadsChecked, rel.CleanReads, rel.CorrectedReads, rel.UncorrectableReads)
		fmt.Printf("  corrected reads      %8.0f per billion reads\n", rel.CorrectedPerBillionReads)
		fmt.Printf("  uncorrectable reads  %8.0f per billion reads\n", rel.UncorrectablePerBillionReads)
		fmt.Printf("  total uncorrectable  %8d (incl. scrub %d, final sweep %d)\n",
			rel.Uncorrectable(), rel.ScrubFoundUncorrectable, rel.SweepUncorrectable)
		fmt.Printf("  scrubs               %8d on write, %d on refresh, %d patrol\n",
			rel.ScrubsOnWrite, rel.ScrubsOnRefresh, rel.PatrolIssued)
		fmt.Printf("  scrub coverage       %8.1f%% of %d tracked lines\n\n",
			100*rel.ScrubCoverage, rel.LinesTracked)
	}
	if m.RetentionViolations > 0 {
		fmt.Printf("RETENTION VIOLATIONS: %d (%s)\n", m.RetentionViolations, m.FirstViolation)
		if d := m.RetentionDetail; d != nil {
			fmt.Printf("  expired on read / rewrite / at end: %d / %d / %d\n",
				d.ExpiredOnRead, d.ExpiredOnRewrite, d.ExpiredAtEnd)
		}
		return false
	}
	fmt.Printf("retention check: clean\n")
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrmsim:", err)
	os.Exit(2)
}
