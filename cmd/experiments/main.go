// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-run id[,id...]] [-list] [-o file]
//	            [-parallel N] [-cache-dir dir] [-job-timeout d]
//	            [-warm-start] [-cpuprofile file] [-memprofile file]
//
// Without -run, the whole suite executes in DESIGN.md order. Experiment
// ids are table1, fig2, fig3, fig4, table3, table7, fig7..fig13, table8
// and the ablation-* studies. -quick uses the reduced windows the
// benchmarks use (fast, noisier); the default full mode reproduces the
// EXPERIMENTS.md numbers.
//
// Simulations fan out over -parallel worker goroutines (default: all
// CPUs); the emitted tables are byte-identical at any parallelism level.
// With -cache-dir, finished runs persist to disk keyed by config hash,
// so a repeated or interrupted pass reloads them instead of
// re-simulating. Ctrl-C cancels in-flight simulations cleanly.
//
// -warm-start shares simulation warmup across runs whose configs differ
// only in post-warmup knobs (one run simulates the warmup, the others
// fork from its snapshot); results are bit-identical either way. With
// -cache-dir, warm snapshots persist under <cache-dir>/snapshots.
// -cpuprofile and -memprofile write pprof profiles of the pass.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/experiments"
	"rrmpcm/internal/profiling"
)

func main() {
	quick := flag.Bool("quick", false, "reduced simulation windows (fast, noisier)")
	seed := flag.Uint64("seed", 1, "random seed for the whole pass")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("o", "", "also write results to this file")
	verbose := flag.Bool("v", true, "print per-run progress")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "disk-backed run cache directory (empty = memory only)")
	warmStart := flag.Bool("warm-start", false, "share simulation warmup across runs with equal warm prefixes")
	shards := flag.Int("shards", 0, "sharded event execution per run: 0 = serial, -1 = auto (one shard per channel), N = N channel shards; results are byte-identical at any setting")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the pass to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-24s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile, func(err error) {
		fmt.Fprintln(os.Stderr, err)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	opt := experiments.Options{
		Quick:      *quick,
		Seed:       *seed,
		Parallel:   *parallel,
		CacheDir:   *cacheDir,
		WarmStart:  *warmStart,
		Shards:     *shards,
		JobTimeout: *jobTimeout,
		Context:    ctx,
	}
	if *verbose {
		opt.Progress = os.Stderr
	}
	runner := experiments.NewRunner(opt)

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "RRM experiment suite (%s mode, seed %d)\n", mode, *seed)
	start := time.Now()
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		text, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\n===== %s — %s (%.1fs) =====\n%s", e.ID, e.Title, time.Since(t0).Seconds(), text)
	}
	st := runner.Stats()
	fmt.Fprintf(w, "\ncompleted in %.1fs (%d simulated in %.1fs of sim wall, %d memory hits, %d disk hits)\n",
		time.Since(start).Seconds(), st.Simulated, st.SimWall.Seconds(), st.MemoryHits, st.DiskHits)
}
