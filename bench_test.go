package rrmpcm

// One benchmark per paper table/figure (DESIGN.md §5). Each bench
// regenerates its artifact in quick mode (reduced windows, three
// representative workloads) — run them with
//
//	go test -bench=. -benchmem
//
// Full-fidelity regeneration is cmd/experiments' job; these benches are
// the fast, always-runnable variants. Simulation results are cached in a
// shared runner across benchmarks (the experiments share runs exactly as
// the figures share the scheme x workload matrix), so the first bench
// touching the matrix pays for it and the rest measure table assembly.

import (
	"context"
	"sync"
	"testing"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/dram"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/experiments"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
	"rrmpcm/internal/tracefile"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

// sharedRunner fans its simulations out over all CPUs (Parallel 0 =
// GOMAXPROCS); results are deterministic at any parallelism, so the
// benchmarked tables are identical to the sequential ones.
func sharedRunner() *experiments.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.Options{Quick: true, Seed: 1})
	})
	return benchRunner
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := sharedRunner()
	// Warm outside the measured region: the first run pays for every
	// simulation the shared matrix needs; the loop then measures table
	// assembly, which is what these benches compare run to run.
	if out, err := e.Run(r); err != nil {
		b.Fatal(err)
	} else if len(out) == 0 {
		b.Fatal("empty experiment output")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1_ModeTable(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFigure2_StaticPerformance(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFigure3_StaticLifetime(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFigure4_StaticWear(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkTable3_RegionHistogram(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable7_MPKI(b *testing.B)               { benchExperiment(b, "table7") }
func BenchmarkFigure7_Performance(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFigure8_Lifetime(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFigure9_Wear(b *testing.B)              { benchExperiment(b, "fig9") }
func BenchmarkFigure10_Energy(b *testing.B)           { benchExperiment(b, "fig10") }
func BenchmarkFigure11_HotThreshold(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFigure12_Coverage(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkTable8_Storage(b *testing.B)            { benchExperiment(b, "table8") }
func BenchmarkFigure13_EntrySize(b *testing.B)        { benchExperiment(b, "fig13") }

func BenchmarkAblationGlobalRefresh(b *testing.B) { benchExperiment(b, "ablation-globalrefresh") }
func BenchmarkAblationCleanWrites(b *testing.B)   { benchExperiment(b, "ablation-cleanwrites") }
func BenchmarkAblationNoPause(b *testing.B)       { benchExperiment(b, "ablation-nopause") }
func BenchmarkAblationDecay(b *testing.B)         { benchExperiment(b, "ablation-decay") }

// --- engine benchmarks: worker-pool scaling ---

// benchEngineBatch measures one 8-run batch (4 static schemes x 2
// workloads, minimal windows) through a fresh Runner at the given
// parallelism. Compare BenchmarkEngineBatchSequential vs
// BenchmarkEngineBatchParallel for the worker-pool speedup on your host;
// the emitted metrics are byte-identical by construction.
func benchEngineBatch(b *testing.B, parallel int) {
	b.Helper()
	var specs []experiments.RunSpec
	tiny := func(c *Config) {
		c.Duration = 1500 * Microsecond
		c.Warmup = 500 * Microsecond
		c.TimeScale = 1000
	}
	for _, wn := range []string{"GemsFDTD", "mcf"} {
		w, err := WorkloadByName(wn)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []WriteMode{Mode3SETs, Mode5SETs, Mode6SETs, Mode7SETs} {
			specs = append(specs, experiments.RunSpec{
				Label: "bench", Scheme: StaticScheme(mode), Workload: w, Mutate: tiny})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Quick: true, Seed: 1, Parallel: parallel})
		if _, err := r.RunBatch(specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBatchSequential(b *testing.B) { benchEngineBatch(b, 1) }
func BenchmarkEngineBatchParallel(b *testing.B)   { benchEngineBatch(b, 0) }

// --- warm-start benchmarks: shared warmup across a sweep ---

// warmSweepConfigs is the warm-start benchmark's sweep: four measurement
// windows over one shared, deliberately warmup-heavy prefix (3 ms warmup
// against 0.5-1.25 ms windows). Cold-started, the sweep simulates the
// warmup four times (15.5 ms of simulated time); warm-started it
// simulates it once (6.5 ms), so the sweep-level speedup bound is ~2.4x.
func warmSweepConfigs(b *testing.B) []Config {
	b.Helper()
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []Config
	for _, d := range []Time{500, 750, 1000, 1250} {
		cfg := DefaultConfig(RRMScheme(), w)
		cfg.Warmup = 3 * Millisecond
		cfg.Duration = d * Microsecond
		cfg.TimeScale = 500
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// BenchmarkColdStartSweep runs the sweep with a full warmup per config —
// the baseline BenchmarkWarmStartSweep is compared against.
func BenchmarkColdStartSweep(b *testing.B) {
	cfgs := warmSweepConfigs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := engine.RunSim(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWarmStartSweep runs the same sweep through the warm-start
// layer with a fresh snapshot store per iteration: the first config pays
// for the warmup and snapshots it, the other three fork. Results are
// bit-identical to the cold sweep (engine's warm-start tests); only the
// wall clock moves.
func BenchmarkWarmStartSweep(b *testing.B) {
	cfgs := warmSweepConfigs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		warm := engine.WarmRunSim(engine.NewMemSnapshotStore())
		for _, cfg := range cfgs {
			if _, err := warm(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- component micro-benchmarks: simulator throughput itself ---

func BenchmarkTraceGenerator(b *testing.B) {
	p, err := trace.ProfileByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := trace.NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		b.Fatal(err)
	}
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
	}
}

func BenchmarkCacheHierarchyAccess(b *testing.B) {
	h, err := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if err != nil {
		b.Fatal(err)
	}
	p, _ := trace.ProfileByName("GemsFDTD")
	gen, _ := trace.NewMixture(p, 0, 2<<30, 1)
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
		kind := cache.Load
		if op.Store {
			kind = cache.Store
		}
		h.Access(i&3, op.Addr, kind, false)
	}
}

func BenchmarkMemoryController(b *testing.B) {
	amap, err := pcm.NewAddressMap(pcm.DefaultDeviceConfig())
	if err != nil {
		b.Fatal(err)
	}
	eq := timing.NewEventQueue()
	ctl, err := memctrl.New(memctrl.DefaultConfig(), amap, eq, nil)
	if err != nil {
		b.Fatal(err)
	}
	state := uint64(1)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	pending := 0
	onDone := func(timing.Time) { pending-- }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := ctl.AcquireRequest()
		req.Addr, req.OnDone = next()%(8<<30), onDone
		if i%3 == 0 {
			req.Kind = memctrl.WriteReq
			req.Mode = pcm.Mode7SETs
			req.Wear = pcm.WearDemandWrite
		} else {
			req.Kind = memctrl.ReadReq
		}
		for pending > 64 {
			eq.Step()
		}
		if ctl.TryEnqueue(req) {
			pending++
		} else {
			eq.Step()
		}
	}
	for eq.Step() {
	}
}

// benchModeDecider is the writeback-mode policy for the hybrid
// microbenchmarks: always the durable mode, no per-address state.
type benchModeDecider struct{}

func (benchModeDecider) DecideWriteMode(uint64, timing.Time) pcm.WriteMode { return pcm.Mode7SETs }

// benchHybridRig assembles the migrator-fronted stack (PCM controller,
// DRAM device, migration engine) the hybrid benchmarks drive directly.
func benchHybridRig(b testing.TB, mutate func(*dram.HybridConfig)) (*dram.Migrator, *timing.EventQueue, dram.HybridConfig) {
	b.Helper()
	hc := dram.DefaultHybridConfig()
	if mutate != nil {
		mutate(&hc)
	}
	pcmCfg := pcm.DefaultDeviceConfig()
	if err := hc.Validate(pcmCfg); err != nil {
		b.Fatal(err)
	}
	amap, err := pcm.NewAddressMap(pcmCfg)
	if err != nil {
		b.Fatal(err)
	}
	eq := timing.NewEventQueue()
	ctl, err := memctrl.New(memctrl.DefaultConfig(), amap, eq, nil)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := dram.NewDevice(hc.DRAM, amap, eq)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dram.NewMigrator(hc.Migration, ctl, dev, amap, eq, benchModeDecider{})
	if err != nil {
		b.Fatal(err)
	}
	return m, eq, hc
}

// benchHybridDrain runs the stack dry: process every queued event, then
// slice time forward past posted DRAM writes (which occupy banks without
// scheduling events) until nothing is in flight.
func benchHybridDrain(b testing.TB, m *dram.Migrator, eq *timing.EventQueue) {
	b.Helper()
	for i := 0; m.Pending(); i++ {
		eq.Drain(1 << 20)
		eq.RunUntil(eq.Now() + timing.Millisecond)
		if i > 1<<20 {
			b.Fatal("hybrid stack failed to drain")
		}
	}
}

// BenchmarkHybridDRAMHit measures the staging tier's hit path: every
// access lands on a page already resident in DRAM, so reads are DRAM
// array reads and writes are absorbed dirty. ns/op is the routing plus
// DRAM cost the hybrid seam adds in front of the PCM controller —
// compare BenchmarkMemoryController for the PCM-only path it replaces.
func BenchmarkHybridDRAMHit(b *testing.B) {
	m, eq, hc := benchHybridRig(b, func(hc *dram.HybridConfig) {
		hc.Migration.PromoteThreshold = 1 // first touch promotes
	})
	base := uint64(1) << 24
	blockBytes := pcm.DefaultDeviceConfig().BlockBytes
	blocks := hc.Migration.PageBytes / blockBytes

	// Stage the one page every measured access will hit.
	req := m.AcquireRequest()
	req.Kind, req.Addr, req.Mode, req.Wear = memctrl.WriteReq, base, pcm.Mode7SETs, pcm.WearDemandWrite
	if !m.TryEnqueue(req) {
		b.Fatal("staging write rejected")
	}
	benchHybridDrain(b, m, eq)
	if m.ResidentPages() != 1 {
		b.Fatalf("staged %d pages, want 1", m.ResidentPages())
	}

	pending := 0
	onDone := func(timing.Time) { pending-- }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := base + (uint64(i)%blocks)*blockBytes
		req := m.AcquireRequest()
		req.Addr = addr
		if i%3 == 0 {
			req.Kind = memctrl.WriteReq
			req.Mode = pcm.Mode7SETs
			req.Wear = pcm.WearDemandWrite
		} else {
			req.Kind = memctrl.ReadReq
			req.OnDone = onDone
			pending++
		}
		if !m.TryEnqueue(req) {
			b.Fatal("resident-page access rejected")
		}
		for pending > 64 {
			eq.Step()
		}
	}
	b.StopTimer()
	benchHybridDrain(b, m, eq)
	st := m.Stats()
	if st.PCMWrites != 0 || st.PCMReads != 0 {
		b.Fatalf("hit benchmark leaked to PCM: %d reads / %d writes", st.PCMReads, st.PCMWrites)
	}
}

// BenchmarkHybridMigration measures the churn path: a write stream that
// touches a fresh page every access against a small staging tier, so
// each op promotes a page (copy reads from PCM), dirties it, and
// eventually demotes an LRU victim through the write-coalescing batch
// machinery. ns/op amortizes a full promote/copy/demote cycle.
func BenchmarkHybridMigration(b *testing.B) {
	m, eq, hc := benchHybridRig(b, func(hc *dram.HybridConfig) {
		hc.Migration.PromoteThreshold = 1
		hc.DRAM.CapBytes = 64 * hc.Migration.PageBytes // 64-frame tier
	})
	span := uint64(1) << 30
	var addr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = (addr + hc.Migration.PageBytes) % span
		req := m.AcquireRequest()
		req.Kind, req.Addr, req.Mode, req.Wear = memctrl.WriteReq, addr, pcm.Mode7SETs, pcm.WearDemandWrite
		if !m.TryEnqueue(req) {
			b.Fatal("promoting write rejected")
		}
		// Keep the event population bounded so copy reads and coalesced
		// writebacks drain as part of the measured cycle.
		for eq.Len() > 1024 {
			eq.Step()
		}
	}
	b.StopTimer()
	benchHybridDrain(b, m, eq)
	st := m.Stats()
	if st.Promotions == 0 {
		b.Fatalf("migration benchmark idle: %+v", st)
	}
	// Demotions need the 64-frame tier full plus the dirty high-water
	// crossed; calibration runs shorter than that legitimately see none.
	if uint64(b.N) > 128 && st.WritebackBlocks == 0 {
		b.Fatalf("migration benchmark never demoted: %+v", st)
	}
}

func BenchmarkFullSystemSimulation(b *testing.B) {
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(RRMScheme(), w)
		cfg.Duration = 2 * Millisecond
		cfg.Warmup = 500 * Microsecond
		cfg.TimeScale = 1000
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Instructions)/b.Elapsed().Seconds(), "sim-insts/s")
	}
}

// BenchmarkShardedSimulation is BenchmarkFullSystemSimulation on the
// sharded event engine: one shard per memory channel (4 on the default
// device) behind conservative epoch barriers. Metrics are byte-identical
// to the serial run (internal/sim TestShardsMetricsIdentical); the ns/op
// ratio against BenchmarkFullSystemSimulation is the recorded engine
// speedup in BENCH_10.json.
func BenchmarkShardedSimulation(b *testing.B) {
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(RRMScheme(), w)
		cfg.Duration = 2 * Millisecond
		cfg.Warmup = 500 * Microsecond
		cfg.TimeScale = 1000
		cfg.Shards = 4
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Instructions)/b.Elapsed().Seconds(), "sim-insts/s")
	}
}

// BenchmarkReliabilitySimulation measures the end-to-end cost of the
// fault-injection/ECC/scrubbing model on a full-system run (compare
// against BenchmarkFullSystemSimulation for the disabled baseline).
func BenchmarkReliabilitySimulation(b *testing.B) {
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(StaticScheme(Mode3SETs), w)
		cfg.Duration = 2 * Millisecond
		cfg.Warmup = 500 * Microsecond
		cfg.TimeScale = 1000
		cfg.Reliability = DefaultReliabilityConfig()
		cfg.Reliability.Enabled = true
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if m.Reliability == nil {
			b.Fatal("reliability metrics missing")
		}
		b.ReportMetric(float64(m.Instructions)/b.Elapsed().Seconds(), "sim-insts/s")
	}
}

// sampledBenchConfig is the steady-state regime where interval sampling
// pays for itself: the retention clock at real time (TimeScale 1) and a
// long measured window, so retention events are sparse and nearly all
// wall time goes to cycle-accurate core/memory simulation. Both halves
// of the pair share this config exactly; BenchmarkSampledRun only adds
// the SamplingSpec.
func sampledBenchConfig(b *testing.B) Config {
	b.Helper()
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.Duration = 50 * Millisecond
	cfg.Warmup = 1 * Millisecond
	cfg.TimeScale = 1
	return cfg
}

// BenchmarkFullRun / BenchmarkSampledRun are the headline pair for the
// sampling executor: identical configs, one simulated cycle by cycle,
// the other through eight 100 us detailed windows with stride-16
// functional fast-forward between them. The ns/op ratio is the recorded
// speedup in BENCH_8.json; internal/sampling/validate_test.go proves
// the sampled intervals still contain the full-run metrics.
func BenchmarkFullRun(b *testing.B) {
	cfg := sampledBenchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Instructions)/b.Elapsed().Seconds(), "sim-insts/s")
	}
}

func BenchmarkSampledRun(b *testing.B) {
	cfg := sampledBenchConfig(b)
	cfg.Sampling = &SamplingSpec{
		Windows:      8,
		Window:       100 * Microsecond,
		DetailWarmup: 100 * Microsecond,
		FFStride:     16,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := RunSampled(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if m.Sampling == nil {
			b.Fatal("sampling report missing")
		}
		b.ReportMetric(float64(m.Instructions)/b.Elapsed().Seconds(), "sim-insts/s")
	}
}

// benchDynamicStream builds stream 0 of a named non-stationary
// workload with the simulator's partition and seeding rules.
func benchDynamicStream(b *testing.B, workload string) Stream {
	b.Helper()
	w, err := WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	base, span := CorePartition(DefaultDeviceConfig().MemBytes, len(w.Cores), 0)
	gen, err := NewStream(w, 0, base, span, 1)
	if err != nil {
		b.Fatal(err)
	}
	return gen
}

// BenchmarkTraceGeneratorPhases measures the non-stationary generator
// with phase switching active (compare against BenchmarkTraceGenerator
// for the stationary baseline).
func BenchmarkTraceGeneratorPhases(b *testing.B) {
	gen := benchDynamicStream(b, "PHASE_1")
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
	}
}

// BenchmarkTraceGeneratorBurst measures the MMPP on/off modulation path.
func BenchmarkTraceGeneratorBurst(b *testing.B) {
	gen := benchDynamicStream(b, "BURST_1")
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&op)
	}
}

// BenchmarkTraceReplay measures trace-file decode throughput — the
// replay-side counterpart of BenchmarkTraceGenerator (the recording
// wraps as needed, so b.N is unbounded).
func BenchmarkTraceReplay(b *testing.B) {
	p, err := trace.ProfileByName("GemsFDTD")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := trace.NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		b.Fatal(err)
	}
	meta := tracefile.Meta{Name: p.Name, BaseCPI: gen.BaseCPI(), MaxMLP: gen.MaxMLP(), Span: 2 << 30, Seed: 1}
	blob, err := tracefile.Record(gen, meta, 1<<18)
	if err != nil {
		b.Fatal(err)
	}
	f, err := tracefile.Parse(blob)
	if err != nil {
		b.Fatal(err)
	}
	r := f.Stream()
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next(&op)
	}
}
