module rrmpcm

go 1.22
