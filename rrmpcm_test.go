package rrmpcm

import (
	"math"
	"strings"
	"testing"
)

func TestPublicSurface(t *testing.T) {
	if len(Modes()) != 5 {
		t.Error("Modes")
	}
	if Spec(Mode7SETs).Latency != 1150*Nanosecond {
		t.Error("Spec")
	}
	if got := Retention7Seconds(); math.Abs(got-3054.9) > 1e-6 {
		t.Errorf("7-SETs retention = %v", got)
	}
	if len(Profiles()) != 9 || len(Workloads()) != 11 {
		t.Error("workload catalog")
	}
	if len(PaperMPKI()) != 9 {
		t.Error("PaperMPKI")
	}
	if DefaultRRMConfig().StorageBytes() != 96<<10 {
		t.Error("RRM storage")
	}
	if DefaultDeviceConfig().MemBytes != 8<<30 {
		t.Error("device")
	}
	if DefaultHierarchyConfig().LLC.SizeBytes != 6<<20 {
		t.Error("hierarchy")
	}
	if DefaultControllerConfig().ReadQueueCap != 32 {
		t.Error("controller")
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Error("Geomean")
	}
	if y := LifetimeYears(DefaultDeviceConfig(), 0); !math.IsInf(y, 1) {
		t.Error("LifetimeYears")
	}
}

// Retention7Seconds is a tiny helper for the surface test.
func Retention7Seconds() float64 { return Spec(Mode7SETs).Retention.Seconds() }

func TestSchemeConstructors(t *testing.T) {
	if StaticScheme(Mode4SETs).Name() != "Static-4-SETs" {
		t.Error("static scheme")
	}
	if RRMScheme().Name() != "RRM" {
		t.Error("rrm scheme")
	}
	cfg := DefaultRRMConfig()
	cfg.HotThreshold = 8
	s := RRMSchemeWith(cfg)
	if s.Kind != SchemeRRM || s.RRM.HotThreshold != 8 {
		t.Error("RRMSchemeWith")
	}
}

func TestEndToEndRun(t *testing.T) {
	w, err := WorkloadByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.Duration = 2 * Millisecond
	cfg.Warmup = 500 * Microsecond
	cfg.TimeScale = 1000
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC <= 0 || m.LifetimeYears <= 0 || m.RetentionViolations != 0 {
		t.Errorf("bad metrics: %+v", m)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	w, _ := WorkloadByName("hmmer")
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.Duration = 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWriteIntervalTable(t *testing.T) {
	if testing.Short() {
		t.Skip("functional cache pass")
	}
	w, err := WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	table, hotShare, err := WriteIntervalTable(w, 5*Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "never written") {
		t.Errorf("table malformed:\n%s", table)
	}
	if hotShare < 0.5 {
		t.Errorf("hot share = %.2f", hotShare)
	}
}

func TestGeneratorSurface(t *testing.T) {
	p := Profiles()[0]
	gen, err := NewMixture(p, 0, 2<<30, 7)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	for i := 0; i < 1000; i++ {
		gen.Next(&op)
		if op.Addr >= 2<<30 {
			t.Fatal("address out of span")
		}
	}
}
