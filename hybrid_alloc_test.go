package rrmpcm

import (
	"testing"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
)

// TestHybridMigrationAllocBudget pins the steady-state allocation cost
// of a full promote/copy/demote churn cycle. Every descriptor on the
// path is pooled (page entries, copy ops, controller requests, park
// callbacks, space-waiter delivery arrays), so once the pools are warm
// a cycle should allocate almost nothing: the budget covers the
// per-delivery waiter event closure plus amortized slab refills. A
// regression here means a pool stopped recycling or a hot-path closure
// came back.
func TestHybridMigrationAllocBudget(t *testing.T) {
	m, eq, hc := benchHybridRig(t, func(hc *dram.HybridConfig) {
		hc.Migration.PromoteThreshold = 1
		hc.DRAM.CapBytes = 64 * hc.Migration.PageBytes
	})
	span := uint64(1) << 30
	var addr uint64
	// One churn cycle, drained dry so pooled objects return before the
	// next cycle (the benchmark variant keeps 1024 events outstanding
	// instead, which measures throughput rather than recycling).
	churn := func() {
		addr = (addr + hc.Migration.PageBytes) % span
		req := m.AcquireRequest()
		req.Kind, req.Addr, req.Mode, req.Wear = memctrl.WriteReq, addr, pcm.Mode7SETs, pcm.WearDemandWrite
		if !m.TryEnqueue(req) {
			t.Fatal("promoting write rejected")
		}
		benchHybridDrain(t, m, eq)
	}
	// Warm: fill the 64-frame tier, cross the dirty high-water mark so
	// coalesced demotions run, and let every pool reach steady depth.
	for i := 0; i < 256; i++ {
		churn()
	}
	const budget = 24.0
	if avg := testing.AllocsPerRun(100, churn); avg > budget {
		t.Errorf("hybrid churn cycle allocates %.1f objects/op, budget %.0f", avg, budget)
	}
	if st := m.Stats(); st.Promotions == 0 || st.WritebackBlocks == 0 {
		t.Fatalf("alloc budget rig idle: %+v", st)
	}
}
