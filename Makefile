# Tier-1 flow: `make ci` is what a reviewer runs before merging.
#
#   build  compile every package and command
#   vet    static checks
#   test   full unit suite
#   race   race-detector pass over the packages the parallel engine
#          drives (engine, experiments, the HTTP service, and the
#          sim/trace/tracefile paths its workers execute concurrently)
#   bench  paper-artifact benchmarks (quick windows)
#   bench-json
#          hot-path component benchmarks -> BENCH_10.json (ns/op, B/op,
#          allocs/op per benchmark, diffed against the recorded
#          pre-optimization baseline; includes the cold/warm sweep pair,
#          the trace generator/replay trio, the full-vs-sampled run
#          pair whose ns/op ratio is the sampling speedup, the hybrid
#          DRAM hit/migration pair, and the serial-vs-sharded
#          full-system pair whose ns/op ratio is the sharding speedup)
#   bench-check
#          CI perf gate: re-run the tracked benchmarks and fail on a
#          >10% ns/op or any allocs/op regression vs BENCH_10.json
#   profile
#          CPU+heap profile of a representative experiment pass
#          (cpu.prof / mem.prof; inspect with `go tool pprof`)
#   ci     build + vet + test + race
#
# serve-smoke boots rrmserve on a scratch port, pushes one quick job
# through the full HTTP path (submit -> stream -> result -> metrics)
# and fails unless the result comes back 200.
#
# replay-smoke exports a synthetic workload as trace files and fails
# unless replaying them yields byte-identical metrics to the generator.
#
# sample-smoke runs one steady-state configuration in full and sampled
# (8 windows, stride-16 fast-forward) and fails unless the sampled 95%
# interval contains the full-run IPC and the sampled run is faster.
#
# shard-smoke runs one configuration through rrmsim on the serial
# engine and at -shards 4 and fails unless the JSON metrics are
# byte-identical (DESIGN.md §17).
#
# cluster-smoke boots a coordinator and two workers as real processes,
# SIGKILLs one worker mid-flight and fails unless every job completes
# with zero duplicate simulations. cluster-load runs the acceptance
# load harness (100k submissions through a 4-worker cluster, p99 gate).

GO ?= go

.PHONY: build vet test race bench bench-json bench-check profile ci serve-smoke replay-smoke sample-smoke shard-smoke cluster-smoke cluster-load

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cluster/... ./internal/dram/... ./internal/engine/... ./internal/experiments/... ./internal/reliability/... ./internal/sampling/... ./internal/server/... ./internal/sim/... ./internal/stats/... ./internal/trace/... ./internal/tracefile/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-json:
	GO="$(GO)" ./scripts/bench_json.sh BENCH_10.json

bench-check:
	GO="$(GO)" ./scripts/bench_check.sh

profile:
	$(GO) run ./cmd/experiments -quick -run table7 -warm-start \
		-cpuprofile cpu.prof -memprofile mem.prof -o /dev/null
	@echo "wrote cpu.prof / mem.prof; inspect with: $(GO) tool pprof cpu.prof"

serve-smoke:
	./scripts/serve_smoke.sh

replay-smoke:
	GO="$(GO)" ./scripts/replay_smoke.sh

sample-smoke:
	GO="$(GO)" ./scripts/sample_smoke.sh

shard-smoke:
	GO="$(GO)" ./scripts/shard_smoke.sh

cluster-smoke:
	GO="$(GO)" ./scripts/cluster_smoke.sh

cluster-load:
	GO="$(GO)" ./scripts/cluster_load.sh

ci: build vet test race
