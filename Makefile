# Tier-1 flow: `make ci` is what a reviewer runs before merging.
#
#   build  compile every package and command
#   vet    static checks
#   test   full unit suite
#   race   race-detector pass over the packages the parallel engine
#          drives (engine, experiments, and the sim/trace paths its
#          workers execute concurrently)
#   bench  paper-artifact benchmarks (quick windows)
#   ci     build + vet + test + race

GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/experiments/... ./internal/sim/... ./internal/trace/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: build vet test race
