# Tier-1 flow: `make ci` is what a reviewer runs before merging.
#
#   build  compile every package and command
#   vet    static checks
#   test   full unit suite
#   race   race-detector pass over the packages the parallel engine
#          drives (engine, experiments, the HTTP service, and the
#          sim/trace paths its workers execute concurrently)
#   bench  paper-artifact benchmarks (quick windows)
#   ci     build + vet + test + race
#
# serve-smoke boots rrmserve on a scratch port, pushes one quick job
# through the full HTTP path (submit -> stream -> result -> metrics)
# and fails unless the result comes back 200.

GO ?= go

.PHONY: build vet test race bench ci serve-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/experiments/... ./internal/server/... ./internal/sim/... ./internal/trace/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

serve-smoke:
	./scripts/serve_smoke.sh

ci: build vet test race
