// Custompolicy shows how to plug a user-defined write policy into the
// simulator through the WritePolicy interface — the extension point the
// RRM itself implements.
//
// The example policy is an "oracle page table": it is told which address
// range the hot data lives in (imagine an OS hint or a profiling pass)
// and steers every write inside that range to the fast 3-SETs mode,
// refreshing the range wholesale every 2 seconds. Comparing it with the
// RRM shows what the hardware monitor buys you when no oracle exists:
// the oracle refreshes its whole hint range forever (whether blocks were
// ever written short or not is unknown to it, so it must assume the
// worst), while the RRM tracks exactly which blocks are short-retention.
//
// Run with:
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"rrmpcm"
)

// oracleHint steers writes inside [lo, hi) to the fast mode. It
// implements rrmpcm.WritePolicy.
type oracleHint struct {
	lo, hi uint64

	// refresher is wired by the simulator when the policy implements
	// the optional Start hook; here we keep it simple and account the
	// refresh burden analytically in main (the range is static).
	shortWrites, longWrites uint64
}

func (o *oracleHint) Name() string { return "OracleHint" }

func (o *oracleHint) RegisterLLCWrite(addr uint64, wasDirty bool, now rrmpcm.Time) {}

func (o *oracleHint) DecideWriteMode(addr uint64, now rrmpcm.Time) rrmpcm.WriteMode {
	if addr >= o.lo && addr < o.hi {
		o.shortWrites++
		return rrmpcm.Mode3SETs
	}
	o.longWrites++
	return rrmpcm.Mode7SETs
}

func (o *oracleHint) DecisionLatency() rrmpcm.Time { return 0 }

func (o *oracleHint) GlobalRefreshMode() rrmpcm.WriteMode { return rrmpcm.Mode7SETs }

func main() {
	w, err := rrmpcm.WorkloadByName("GemsFDTD")
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheme rrmpcm.Scheme) rrmpcm.Metrics {
		cfg := rrmpcm.DefaultConfig(scheme, w)
		cfg.Duration = 10 * rrmpcm.Millisecond
		cfg.Warmup = 4 * rrmpcm.Millisecond
		cfg.TimeScale = 200
		// The oracle has no selective-refresh machinery, so the
		// retention checker would rightly flag its short blocks as
		// unrefreshed; its refresh burden is accounted analytically
		// below instead.
		if scheme.Kind == rrmpcm.SchemeCustom {
			cfg.CheckRetention = false
		}
		m, err := rrmpcm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// The oracle is told "the first eighth of each core's partition is
	// hot" — roughly where the generators put their hot pools.
	dev := rrmpcm.DefaultDeviceConfig()
	oracle := &oracleHint{lo: 0, hi: dev.MemBytes / 8}

	s7 := run(rrmpcm.StaticScheme(rrmpcm.Mode7SETs))
	rrm := run(rrmpcm.RRMScheme())
	orc := run(rrmpcm.CustomScheme(oracle))

	// Oracle refresh burden: its whole hint range must be fast-refreshed
	// every 2 s forever (it cannot know which blocks hold short data).
	oracleRefreshRate := float64((oracle.hi-oracle.lo)/dev.BlockBytes) / 2.01
	oracleWear := orc.WearDemandRate + oracleRefreshRate + orc.WearGlobalRate
	oracleLife := rrmpcm.LifetimeYears(dev, oracleWear)

	fmt.Printf("%-12s %8s %14s %12s\n", "policy", "IPC", "short writes", "lifetime")
	fmt.Printf("%-12s %8.3f %13.1f%% %9.2f y\n", s7.Scheme, s7.IPC, 100*s7.ShortWriteFraction, s7.LifetimeYears)
	fmt.Printf("%-12s %8.3f %13.1f%% %9.2f y\n", rrm.Scheme, rrm.IPC, 100*rrm.ShortWriteFraction, rrm.LifetimeYears)
	fmt.Printf("%-12s %8.3f %13.1f%% %9.2f y  (refresh burden %.2g blocks/s)\n",
		orc.Scheme, orc.IPC, 100*orc.ShortWriteFraction, oracleLife, oracleRefreshRate)

	fmt.Println("\nThe oracle gets fast writes without learning, but must refresh")
	fmt.Println("its entire hint range forever; the RRM refreshes only the blocks")
	fmt.Println("it actually steered short, which is why a hardware monitor beats")
	fmt.Println("a static hint on lifetime.")
}
