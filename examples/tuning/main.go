// Tuning demonstrates the RRM's aggressiveness control (paper §IV-H,
// Figure 11): sweeping hot_threshold trades lifetime for performance.
// A low threshold promotes regions to "hot" after fewer dirty writes, so
// more memory writes run in the fast 2-second-retention mode — higher
// IPC, more selective-refresh wear. A high threshold is conservative.
//
// Run with:
//
//	go run ./examples/tuning
//	go run ./examples/tuning -workload MIX_2
package main

import (
	"flag"
	"fmt"
	"log"

	"rrmpcm"
)

func main() {
	name := flag.String("workload", "GemsFDTD", "workload to tune on")
	flag.Parse()

	w, err := rrmpcm.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheme rrmpcm.Scheme) rrmpcm.Metrics {
		cfg := rrmpcm.DefaultConfig(scheme, w)
		cfg.Duration = 10 * rrmpcm.Millisecond
		cfg.Warmup = 4 * rrmpcm.Millisecond
		cfg.TimeScale = 200
		m, err := rrmpcm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	// The two static extremes bracket the trade-off space.
	s7 := run(rrmpcm.StaticScheme(rrmpcm.Mode7SETs))
	s3 := run(rrmpcm.StaticScheme(rrmpcm.Mode3SETs))
	fmt.Printf("workload %s: Static-7 IPC %.3f (%.1fy), Static-3 IPC %.3f (%.2fy)\n\n",
		w.Name, s7.IPC, s7.LifetimeYears, s3.IPC, s3.LifetimeYears)

	fmt.Printf("%-14s %10s %12s %13s %12s\n",
		"hot_threshold", "IPC", "vs Static-7", "short writes", "lifetime")
	for _, threshold := range []int{8, 16, 32, 64} {
		cfg := rrmpcm.DefaultRRMConfig()
		cfg.HotThreshold = threshold
		m := run(rrmpcm.RRMSchemeWith(cfg))
		fmt.Printf("%-14d %10.3f %+11.1f%% %12.1f%% %9.2f y\n",
			threshold, m.IPC, 100*(m.IPC/s7.IPC-1),
			100*m.ShortWriteFraction, m.LifetimeYears)
	}
	fmt.Println("\nLower thresholds are more aggressive: more fast writes, more")
	fmt.Println("selective-refresh wear. The paper defaults to 16 and suggests 8")
	fmt.Println("for users who value performance over lifetime (§VI-D).")
}
