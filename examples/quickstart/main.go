// Quickstart: simulate the paper's headline comparison on one workload —
// Static-7-SETs (slow writes, long retention), Static-3-SETs (fast
// writes, 2-second retention) and the Region Retention Monitor — and
// print the performance/lifetime trade-off each scheme lands on.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rrmpcm"
)

func main() {
	workload, err := rrmpcm.WorkloadByName("GemsFDTD")
	if err != nil {
		log.Fatal(err)
	}

	schemes := []rrmpcm.Scheme{
		rrmpcm.StaticScheme(rrmpcm.Mode7SETs),
		rrmpcm.StaticScheme(rrmpcm.Mode3SETs),
		rrmpcm.RRMScheme(),
	}

	fmt.Println("GemsFDTD x4 on 8 GB MLC PCM")
	fmt.Printf("%-15s %10s %12s %14s %12s\n", "scheme", "IPC", "lifetime", "short writes", "energy (5s)")
	var base float64
	for _, scheme := range schemes {
		cfg := rrmpcm.DefaultConfig(scheme, workload)
		// Keep the example snappy: a 10 ms window with the retention
		// clock accelerated 200x (see the library docs on TimeScale).
		cfg.Duration = 10 * rrmpcm.Millisecond
		cfg.Warmup = 4 * rrmpcm.Millisecond
		cfg.TimeScale = 200

		m, err := rrmpcm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = m.IPC
		}
		fmt.Printf("%-15s %9.3f (%+.0f%%) %7.2f y %13.1f%% %10.2f J\n",
			m.Scheme, m.IPC, 100*(m.IPC/base-1), m.LifetimeYears,
			100*m.ShortWriteFraction, m.EnergyTotalJ)
		if m.RetentionViolations > 0 {
			log.Fatalf("retention violations: %d", m.RetentionViolations)
		}
	}
	fmt.Println("\nStatic-3 is fastest but its 2 s global refresh destroys lifetime;")
	fmt.Println("Static-7 lives longest but is slowest; RRM takes most of the")
	fmt.Println("performance while refreshing only the hot regions it steered to")
	fmt.Println("fast writes.")
}
