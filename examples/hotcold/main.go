// Hotcold reproduces the observation that motivates the whole paper
// (§III-C, Table III): after cache filtering, a small fraction of 4 KB
// memory regions receives almost all memory writes, at millisecond
// re-write intervals — short enough that a 2-second-retention write mode
// is safe for them if somebody tracks and refreshes them.
//
// It runs a workload through the cache hierarchy with no memory timing
// (a functional pass), records every memory write per region, and prints
// the interval histogram plus the hot-share headline.
//
// Run with:
//
//	go run ./examples/hotcold                  # GemsFDTD, Table III's subject
//	go run ./examples/hotcold -workload lbm    # a streaming-heavy contrast
//	go run ./examples/hotcold -window 200ms    # longer instruction-time window
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rrmpcm"
)

func main() {
	name := flag.String("workload", "GemsFDTD", "workload to analyze")
	window := flag.Duration("window", 50*time.Millisecond, "instruction-time analysis window")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	w, err := rrmpcm.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	win := rrmpcm.Time(window.Nanoseconds()) * rrmpcm.Nanosecond
	table, hotShare, err := rrmpcm.WriteIntervalTable(w, win, *seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Region write-interval histogram for %s (4 copies, %v window):\n\n", w.Name, *window)
	fmt.Println(table)
	fmt.Printf("The hottest 2%% of regions take %.1f%% of all memory writes\n", 100*hotShare)
	fmt.Println("(paper §III-C observes ~2% of regions taking up to 97.3%).")
	fmt.Println()
	fmt.Println("Regions in the millisecond tiers re-write their blocks far more")
	fmt.Println("often than the 2.01 s retention of a 3-SETs-Write expires — they")
	fmt.Println("are the ones the Region Retention Monitor steers to fast writes.")
}
