// Package rrmpcm is a simulation library for studying the write-latency
// vs. retention trade-off of Multi-Level-Cell Phase Change Memory main
// memories, built around a from-scratch reproduction of
//
//	"Balancing Performance and Lifetime of MLC PCM by Using a Region
//	 Retention Monitor" (Zhang, Zhang, Jiang, Liu, Chong — HPCA 2017).
//
// The library contains every substrate the paper's evaluation needs: the
// MLC PCM cell model (resistance drift, guardbands, the Table I write
// modes), an 8 GB channel/bank device model, a memory controller with
// priority queues, FR-FCFS open-page scheduling, write-queue drain
// watermarks and Write Pausing, a three-level cache hierarchy with LLC
// write registration, first-order out-of-order cores, synthetic
// SPEC-2006-like workload generators, and — the paper's contribution —
// the Region Retention Monitor plus the Static-N-SETs baselines.
//
// # Quick start
//
//	w, _ := rrmpcm.WorkloadByName("GemsFDTD")
//	m, err := rrmpcm.Run(rrmpcm.DefaultConfig(rrmpcm.RRMScheme(), w))
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, lifetime %.1f years\n", m.IPC, m.LifetimeYears)
//
// Compare against a baseline by swapping the scheme:
//
//	m7, _ := rrmpcm.Run(rrmpcm.DefaultConfig(rrmpcm.StaticScheme(rrmpcm.Mode7SETs), w))
//
// Custom write policies implement WritePolicy and run via CustomScheme;
// see examples/custompolicy.
//
// The exported names are aliases into the implementation packages, so
// everything documented there applies here unchanged.
package rrmpcm

import (
	"context"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/core"
	"rrmpcm/internal/dram"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/experiments"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sampling"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// Time is simulation time in integer picoseconds.
type Time = timing.Time

// Common time units.
const (
	Nanosecond  = timing.Nanosecond
	Microsecond = timing.Microsecond
	Millisecond = timing.Millisecond
	Second      = timing.Second
)

// WriteMode is an MLC PCM write scheme, identified by its SET-iteration
// count (Table I of the paper).
type WriteMode = pcm.WriteMode

// The five write modes of Table I.
const (
	Mode3SETs = pcm.Mode3SETs
	Mode4SETs = pcm.Mode4SETs
	Mode5SETs = pcm.Mode5SETs
	Mode6SETs = pcm.Mode6SETs
	Mode7SETs = pcm.Mode7SETs
)

// Modes lists all write modes from fastest to slowest.
func Modes() []WriteMode { return pcm.Modes() }

// ModeSpec is one Table I row; Spec returns it for a mode.
type ModeSpec = pcm.ModeSpec

// Spec returns the Table I parameters of a write mode.
func Spec(m WriteMode) ModeSpec { return pcm.Spec(m) }

// DriftModel derives retention times from the resistance-drift law.
type DriftModel = pcm.DriftModel

// DefaultDriftModel returns the calibrated drift model that reproduces
// Table I.
func DefaultDriftModel() DriftModel { return pcm.DefaultDriftModel() }

// DeviceConfig is the PCM memory geometry (Table V).
type DeviceConfig = pcm.DeviceConfig

// DefaultDeviceConfig returns the paper's 8 GB, 4-channel, 16-bank
// device.
func DefaultDeviceConfig() DeviceConfig { return pcm.DefaultDeviceConfig() }

// HierarchyConfig sizes the cache hierarchy (Table IV).
type HierarchyConfig = cache.HierarchyConfig

// DefaultHierarchyConfig returns the Table IV caches.
func DefaultHierarchyConfig() HierarchyConfig { return cache.DefaultHierarchyConfig() }

// ControllerConfig is the memory-controller configuration (Table V).
type ControllerConfig = memctrl.Config

// DefaultControllerConfig returns the Table V controller.
func DefaultControllerConfig() ControllerConfig { return memctrl.DefaultConfig() }

// RRMConfig sizes the Region Retention Monitor (Table IV / §IV).
type RRMConfig = core.RRMConfig

// DefaultRRMConfig returns the paper's RRM: 256 sets x 24 ways, 4 KB
// regions, hot_threshold 16, 96 KB of storage.
func DefaultRRMConfig() RRMConfig { return core.DefaultRRMConfig() }

// WritePolicy decides the write mode of every memory write; implement it
// to plug a custom policy into the simulator.
type WritePolicy = core.WritePolicy

// RRMStats are the monitor's internal counters.
type RRMStats = core.Stats

// Profile parameterizes one synthetic benchmark; Workload assigns one
// profile per core.
type (
	Profile  = trace.Profile
	Workload = trace.Workload
)

// Profiles returns the nine calibrated Table VII benchmarks.
func Profiles() []Profile { return trace.Profiles() }

// Workloads returns the paper's eleven workloads (nine 4-copy single
// benchmarks plus MIX_1 and MIX_2).
func Workloads() []Workload { return trace.Workloads() }

// WorkloadByName finds a workload by benchmark or mix name.
func WorkloadByName(name string) (Workload, error) { return trace.WorkloadByName(name) }

// PaperMPKI returns Table VII's published LLC MPKI values.
func PaperMPKI() map[string]float64 { return trace.PaperMPKI() }

// Scheme selects the write policy of a run; Config describes the run;
// Metrics is its result.
type (
	Scheme  = sim.Scheme
	Config  = sim.Config
	Metrics = sim.Metrics
)

// SchemeKind discriminates Scheme variants.
type SchemeKind = sim.SchemeKind

// Scheme kinds.
const (
	SchemeStatic = sim.SchemeStatic
	SchemeRRM    = sim.SchemeRRM
	SchemeCustom = sim.SchemeCustom
)

// StaticScheme returns the Static-N-SETs baseline for mode (Table VI).
func StaticScheme(mode WriteMode) Scheme { return sim.StaticScheme(mode) }

// RRMScheme returns the default-configured Region Retention Monitor
// scheme.
func RRMScheme() Scheme { return sim.RRMScheme() }

// RRMSchemeWith returns an RRM scheme with a custom monitor
// configuration (paper constants; the simulator applies TimeScale).
func RRMSchemeWith(cfg RRMConfig) Scheme {
	return Scheme{Kind: sim.SchemeRRM, RRM: cfg}
}

// CustomScheme wraps a user write policy.
func CustomScheme(p WritePolicy) Scheme {
	return Scheme{Kind: sim.SchemeCustom, Custom: p}
}

// ReliabilityConfig parameterizes the drift-fault injector, the t-bit
// ECC model and the scrubber (Config.Reliability; disabled by default).
type ReliabilityConfig = reliability.Config

// DefaultReliabilityConfig returns the reference reliability model —
// 4-bit-correcting ECC per 64 B line, 1e-5 programming bit-error rate,
// 25 ns correction stall — with Enabled still false; set
// Config.Reliability = cfg with cfg.Enabled = true to turn it on.
func DefaultReliabilityConfig() ReliabilityConfig { return reliability.DefaultConfig() }

// ReliabilityMetrics is the error-injection/ECC/scrubbing section of
// Metrics (Metrics.Reliability, non-nil only when the model ran).
type ReliabilityMetrics = reliability.Metrics

// DefaultConfig returns the Tables IV/V system around a scheme and
// workload, with fast-run simulation settings (40 ms measured window,
// retention clock accelerated 100x; see the sim package comment for why
// this preserves the paper's rates).
func DefaultConfig(scheme Scheme, w Workload) Config { return sim.DefaultConfig(scheme, w) }

// Run assembles the configured system, simulates it, and returns the
// collected metrics.
func Run(cfg Config) (Metrics, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return sys.Run()
}

// RunContext is Run with cooperative cancellation: a cancelled or
// timed-out context stops the simulation mid-window with the context's
// error. The parallel experiment engine (internal/engine, surfaced as
// cmd/experiments -parallel and cmd/rrmsim -parallel) uses this to bound
// and interrupt fanned-out runs.
func RunContext(ctx context.Context, cfg Config) (Metrics, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return sys.RunContext(ctx)
}

// ConfigHash returns the deterministic identity of a run configuration
// (hex SHA-256 of its canonical serialized image) — the key the
// experiment engine's disk-backed run cache files results under.
func ConfigHash(cfg Config) (string, error) { return engine.ConfigHash(cfg) }

// SamplingSpec configures SMARTS-style interval sampling of a run
// (Config.Sampling): the measured duration becomes alternating
// functional fast-forward and detailed measurement windows, and the
// result's Metrics carry confidence intervals. SamplingReport is that
// interval summary (Metrics.Sampling, non-nil only for sampled runs).
type (
	SamplingSpec   = sim.SamplingSpec
	SamplingReport = sim.SamplingReport
)

// HybridConfig enables the hybrid DRAM–PCM tier (Config.Hybrid; nil =
// PCM-only): a DRAM staging array (DRAMDeviceConfig) plus the hot-page
// migration engine (MigrationConfig) in front of the PCM.
// HybridMetrics is the per-tier and migration-traffic breakdown of a
// hybrid run (Metrics.Hybrid, non-nil only when the tier is enabled).
type (
	HybridConfig     = dram.HybridConfig
	DRAMDeviceConfig = dram.DeviceConfig
	MigrationConfig  = dram.MigrationConfig
	HybridMetrics    = sim.HybridMetrics
)

// Hot-page promotion policies (MigrationConfig.Policy).
const (
	PolicyWriteCount = dram.PolicyWriteCount
	PolicyRecency    = dram.PolicyRecency
)

// DefaultHybridConfig returns a 64 MB DDR3-class staging tier with
// MigrantStore-style write-count promotion and batched demotion.
func DefaultHybridConfig() HybridConfig { return dram.DefaultHybridConfig() }

// RunSampled executes cfg as an interval-sampled run (cfg.Sampling must
// be set): one serial warmup-and-snapshot pass, then the detailed
// windows fork and measure in parallel across GOMAXPROCS goroutines.
// Results are byte-identical at any parallelism level.
func RunSampled(ctx context.Context, cfg Config) (Metrics, error) {
	return sampling.Run(ctx, cfg)
}

// Geomean returns the geometric mean of positive values (the paper's
// cross-workload summary statistic).
func Geomean(values []float64) float64 { return stats.Geomean(values) }

// LifetimeYears converts a sustained block-write rate into device
// lifetime under the Table V endurance and wear-leveling assumptions.
func LifetimeYears(dev DeviceConfig, wearPerSecond float64) float64 {
	return stats.LifetimeYears(dev, wearPerSecond)
}

// WriteIntervalTable runs a workload through the cache hierarchy with no
// memory timing and returns the Table III-style region write-interval
// histogram (text table) plus the fraction of writes landing in the
// hottest 2 % of regions — the observation that motivates the RRM.
// The window is instruction time (see examples/hotcold).
func WriteIntervalTable(w Workload, window Time, seed uint64) (table string, hotShare float64, err error) {
	hist, err := experiments.WriteIntervalHistogram(w, window, seed)
	if err != nil {
		return "", 0, err
	}
	return experiments.FormatIntervalHistogram(hist), hist.HotShare(0.02), nil
}

// Op is one generator work unit: NonMem non-memory instructions followed
// by a memory access.
type Op = trace.Op

// Mixture is the synthetic benchmark generator.
type Mixture = trace.Mixture

// NewMixture builds a generator for one benchmark copy over the address
// partition [base, base+span).
func NewMixture(p Profile, base, span, seed uint64) (*Mixture, error) {
	return trace.NewMixture(p, base, span, seed)
}

// Stream is the per-core workload source the simulator drives: a
// deterministic generator plus core-model parameters and snapshot
// hooks. Mixture, Dynamic (non-stationary) and trace-file replay
// cursors all implement it.
type Stream = trace.Stream

// Dynamics declares a workload's non-stationary behavior: program
// phases, diurnal load modulation and bursty (on/off) arrivals
// (Workload.Dynamics; nil = stationary).
type (
	Dynamics = trace.Dynamics
	Phase    = trace.Phase
	Diurnal  = trace.Diurnal
	Burst    = trace.Burst
)

// TraceRef points a workload stream at a recorded trace file; Sum
// content-addresses the file so a replay run's identity covers the
// trace bytes (Workload.Replay).
type TraceRef = trace.TraceRef

// DynamicWorkloads returns the non-stationary reference workloads
// (phase-changing, bursty, diurnal) used by the phases experiment.
func DynamicWorkloads() []Workload { return trace.DynamicWorkloads() }

// NewStream builds core i's generator for a synthetic workload over the
// address partition [base, base+span) using the simulator's per-core
// seeding rule.
func NewStream(w Workload, i int, base, span, seed uint64) (Stream, error) {
	return trace.NewStream(w, i, base, span, seed)
}

// CoreSeed is the simulator's per-core seeding rule; CorePartition its
// address-layout rule. Trace exporters use both to reproduce the exact
// streams a simulation run would generate.
func CoreSeed(seed uint64, core int) uint64 { return trace.CoreSeed(seed, core) }

// CorePartition returns core i's address partition when n streams split
// memBytes evenly.
func CorePartition(memBytes uint64, n, core int) (base, span uint64) {
	return trace.CorePartition(memBytes, n, core)
}

// TenantMetrics is the per-tenant attribution section of Metrics
// (Metrics.Tenants, non-empty only for multi-tenant workloads).
type TenantMetrics = sim.TenantMetrics
