// Package profiling is the CLI profiling helper behind the -cpuprofile
// and -memprofile flags of cmd/rrmsim and cmd/experiments: start a CPU
// profile, and on stop snapshot the live heap, mirroring what
// go test -cpuprofile/-memprofile produces so the files feed straight
// into go tool pprof.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (if non-empty) and returns a
// stop function that ends it and writes a heap profile to memFile (if
// non-empty). The stop function never fails the program: heap-profile
// write errors go to stderr via the onErr callback. Call stop on the
// exit paths that should keep the profiles; error exits lose them, the
// same way go test's do.
func Start(cpuFile, memFile string, onErr func(error)) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile == "" {
			return
		}
		f, err := os.Create(memFile)
		if err != nil {
			onErr(err)
			return
		}
		runtime.GC() // materialize the final live-heap picture
		if err := pprof.WriteHeapProfile(f); err != nil {
			onErr(err)
		}
		f.Close()
	}, nil
}
