// Package buildinfo reports the build's identity — module version, VCS
// revision, Go toolchain — for the -version flag every command carries
// and the HTTP service's /healthz endpoint. It reads everything from
// runtime/debug.ReadBuildInfo, so there is no ldflags stamping to keep
// in sync.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the most specific version string available: the
// module version when built as a dependency, otherwise the VCS
// revision (12-char, "-dirty" suffixed when the tree was modified),
// otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// String returns the one-line banner printed by -version:
// "rrmpcm <version> <go version> <os>/<arch>".
func String() string {
	return fmt.Sprintf("rrmpcm %s %s %s/%s",
		Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
