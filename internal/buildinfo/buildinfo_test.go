package buildinfo

import (
	"runtime"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned empty string")
	}
}

func TestStringShape(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "rrmpcm ") {
		t.Fatalf("String() = %q, want rrmpcm prefix", s)
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Fatalf("String() = %q, want Go version %q", s, runtime.Version())
	}
	if !strings.Contains(s, runtime.GOOS+"/"+runtime.GOARCH) {
		t.Fatalf("String() = %q, want os/arch", s)
	}
}
