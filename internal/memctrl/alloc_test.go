//go:build !race

package memctrl

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// TestControllerTickSteadyStateAllocs pins the controller hot path —
// pooled request acquisition, enqueue bookkeeping, FR-FCFS selection,
// event dispatch, write pausing state, completion and release — at a
// near-zero steady-state allocation budget. The only tolerated residue is
// the read-forwarding block map occasionally growing a bucket chain.
// (Skipped under -race: the detector's instrumentation allocates.)
func TestControllerTickSteadyStateAllocs(t *testing.T) {
	amap, err := pcm.NewAddressMap(pcm.DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	eq := timing.NewEventQueue()
	ctl, err := New(DefaultConfig(), amap, eq, nil)
	if err != nil {
		t.Fatal(err)
	}

	state := uint64(1)
	next := func() uint64 { // xorshift64: deterministic address stream
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	pending := 0
	onDone := func(timing.Time) { pending-- }
	issue := func(i int) {
		req := ctl.AcquireRequest()
		req.Addr = next() % (8 << 30)
		req.OnDone = onDone
		if i%3 == 0 {
			req.Kind, req.Mode, req.Wear = WriteReq, pcm.Mode7SETs, pcm.WearDemandWrite
		} else {
			req.Kind = ReadReq
		}
		for pending > 64 {
			eq.Step()
		}
		if ctl.TryEnqueue(req) {
			pending++
		} else {
			eq.Step()
		}
	}

	// Warm: grow the request/write/event pools, the queue backing arrays
	// and the forwarding map to their steady-state footprint.
	for i := 0; i < 50_000; i++ {
		issue(i)
	}

	const opsPerRun = 1000
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < opsPerRun; i++ {
			issue(i)
		}
	})
	// Budget: < 1 allocation per 100 operations on average.
	if avg > opsPerRun/100 {
		t.Errorf("controller tick path allocates %.2f per %d ops, want < %d", avg, opsPerRun, opsPerRun/100)
	}

	for eq.Step() {
	}
	if pending != 0 {
		t.Errorf("%d requests never completed", pending)
	}
}
