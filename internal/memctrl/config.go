package memctrl

import (
	"fmt"

	"rrmpcm/internal/timing"
)

// Config holds the Table V controller parameters.
type Config struct {
	// Queue capacities, per channel.
	RefreshQueueCap int // paper: 64, high priority
	ReadQueueCap    int // paper: 32, middle priority
	WriteQueueCap   int // paper: 64, low priority

	// Timing.
	TRCD     timing.Time // activate-to-column: 48 mem cycles = 120 ns
	TCAS     timing.Time // column access: 1 mem cycle = 2.5 ns
	TFAW     timing.Time // four-activate window: 50 ns
	BusXfer  timing.Time // 64 B over a 64-bit 400 MHz bus: 8 mem cycles
	FAWLimit int         // activations allowed inside a TFAW window

	// WriteDrainHigh/WriteDrainLow are the write-queue watermarks of
	// the FRFCFS-with-write-queue policy: when a channel's write queue
	// reaches WriteDrainHigh the channel enters drain mode, giving
	// writes priority over reads until the queue falls to
	// WriteDrainLow. Watermark draining is how real controllers (and
	// NVMain, the paper's memory simulator) prevent write-queue
	// overflow, and it is the mechanism through which slow writes
	// steal read bandwidth.
	WriteDrainHigh int
	WriteDrainLow  int

	// WritePausing enables pausing an in-flight write at SET-iteration
	// boundaries when a read is waiting on the same bank (paper uses
	// the technique of Qureshi et al. [14]). Disabling it is ablation
	// A3.
	WritePausing bool

	// ReadForwarding services reads that match a queued write directly
	// from the write queue (store-to-load forwarding at the controller).
	ReadForwarding bool
}

// DefaultConfig returns the Table V controller configuration.
func DefaultConfig() Config {
	return Config{
		RefreshQueueCap: 64,
		ReadQueueCap:    32,
		WriteQueueCap:   64,
		TRCD:            timing.MemCycles(48),
		TCAS:            timing.MemCycles(1),
		TFAW:            50 * timing.Nanosecond,
		BusXfer:         timing.MemCycles(8),
		FAWLimit:        4,
		WriteDrainHigh:  48,
		WriteDrainLow:   16,
		WritePausing:    true,
		ReadForwarding:  true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RefreshQueueCap <= 0 || c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: queue capacities must be positive: %+v", c)
	}
	if c.TRCD < 0 || c.TCAS < 0 || c.TFAW < 0 || c.BusXfer <= 0 {
		return fmt.Errorf("memctrl: negative timing parameter")
	}
	if c.FAWLimit <= 0 {
		return fmt.Errorf("memctrl: FAWLimit must be positive")
	}
	if c.WriteDrainHigh <= 0 || c.WriteDrainLow < 0 || c.WriteDrainLow >= c.WriteDrainHigh ||
		c.WriteDrainHigh > c.WriteQueueCap {
		return fmt.Errorf("memctrl: write drain watermarks %d/%d invalid for queue %d",
			c.WriteDrainHigh, c.WriteDrainLow, c.WriteQueueCap)
	}
	return nil
}

// Stats aggregates controller activity.
type Stats struct {
	ReadsServed     uint64
	WritesServed    uint64
	RefreshesServed uint64

	RowBufHits   uint64 // reads hitting the open 1 KB segment
	RowBufMisses uint64
	ReadForwards uint64 // reads satisfied from the write queue
	WritePauses  uint64 // times an in-flight write was paused for a read
	DrainEntries uint64 // times a channel entered write-drain mode

	// Rejections at enqueue, by kind (backpressure events).
	Rejected [numKinds]uint64

	// Read latency from enqueue to data return.
	ReadLatencySum timing.Time
	ReadLatencyMax timing.Time

	// Refresh latency from enqueue to completion, for the deadline
	// check of paper §V ("we did not encounter any situation where an
	// RRM refresh request does not meet the retention timing").
	RefreshLatencySum timing.Time
	RefreshLatencyMax timing.Time

	// Write latency from enqueue to pulse completion.
	WriteLatencySum timing.Time
	WriteLatencyMax timing.Time

	// Occupancy high-water marks.
	MaxReadQueue    int
	MaxWriteQueue   int
	MaxRefreshQueue int

	// BankBusy integrates bank-occupied time across all banks, for
	// utilization reporting.
	BankBusy timing.Time
}

// AvgReadLatency returns the mean read service latency.
func (s Stats) AvgReadLatency() timing.Time {
	if s.ReadsServed == 0 {
		return 0
	}
	return s.ReadLatencySum / timing.Time(s.ReadsServed)
}

// AvgWriteLatency returns the mean write service latency.
func (s Stats) AvgWriteLatency() timing.Time {
	if s.WritesServed == 0 {
		return 0
	}
	return s.WriteLatencySum / timing.Time(s.WritesServed)
}

// AvgRefreshLatency returns the mean refresh service latency.
func (s Stats) AvgRefreshLatency() timing.Time {
	if s.RefreshesServed == 0 {
		return 0
	}
	return s.RefreshLatencySum / timing.Time(s.RefreshesServed)
}

// RowBufHitRate returns the fraction of reads that hit the open segment.
func (s Stats) RowBufHitRate() float64 {
	total := s.RowBufHits + s.RowBufMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowBufHits) / float64(total)
}
