package memctrl

import (
	"fmt"
	"math/bits"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// Controller is the multi-channel MLC PCM memory controller.
type Controller struct {
	cfg   Config
	amap  *pcm.AddressMap
	eq    *timing.EventQueue
	rec   Recorder
	ri    ReadIntegrity // nil: reads complete without ECC inspection
	chans []*channel
	stats Stats

	// reqFree recycles pooled requests (see AcquireRequest). The pool
	// is per-controller and LIFO, so reuse order — like everything else
	// in the simulator — is deterministic.
	reqFree []*Request

	// inflight tracks pooled reads whose completion event is scheduled
	// (the request lives only inside that event otherwise), so state
	// snapshots can enumerate them. Swap-removal keeps it O(1).
	inflight []*Request
}

// New builds a controller over the mapped device, driven by eq. rec may
// be nil to discard accounting.
func New(cfg Config, amap *pcm.AddressMap, eq *timing.EventQueue, rec Recorder) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rec == nil {
		rec = NopRecorder{}
	}
	c := &Controller{cfg: cfg, amap: amap, eq: eq, rec: rec}
	dev := amap.Config()
	for i := 0; i < dev.Channels; i++ {
		ch := &channel{ctl: c, id: i, eq: eq, banks: make([]bankState, dev.Banks),
			bankFree: make([]timing.Time, dev.Banks)}
		if dev.Banks > 64 {
			ch.wideBanks = true
		} else {
			ch.bankMaskAll = ^uint64(0) >> (64 - uint(dev.Banks))
		}
		ch.queues[ReadReq] = make([]*Request, 0, cfg.ReadQueueCap)
		ch.queues[WriteReq] = make([]*Request, 0, cfg.WriteQueueCap)
		ch.queues[RefreshReq] = make([]*Request, 0, cfg.RefreshQueueCap)
		ch.readsPerBank = make([]int32, dev.Banks)
		ch.writesPerBank = make([]int32, dev.Banks)
		ch.refreshPerBank = make([]int32, dev.Banks)
		if cfg.ReadForwarding {
			ch.blockWrites = make(map[uint64]int32, cfg.WriteQueueCap+cfg.RefreshQueueCap)
		}
		ch.actTimes = make([]timing.Time, cfg.FAWLimit)
		for j := range ch.actTimes {
			ch.actTimes[j] = -timing.Forever
		}
		ch.wakeupFn = ch.wakeup
		c.chans = append(c.chans, ch)
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetShardQueues switches the controller to the sharded execution
// engine: channel i schedules its events (completions, pauses, space
// deliveries) on qs[i] — several channels may share one queue when a
// shard covers more than one channel — and replaces the armWakeup
// re-scan with an incremental per-channel timer slot: the scheduler
// scans record the earliest instant any blocked request could start,
// and the wakeup is re-aimed with a single store instead of a
// Cancel+Schedule heap round-trip. Must be called before any traffic;
// the serial engine (without this call) is byte-frozen, including its
// event and snapshot stream.
func (c *Controller) SetShardQueues(qs []*timing.EventQueue) {
	if len(qs) != len(c.chans) {
		panic(fmt.Sprintf("memctrl: %d shard queues for %d channels", len(qs), len(c.chans)))
	}
	for i, ch := range c.chans {
		ch.eq = qs[i]
		ch.fast = true
		ch.timer = qs[i].NewTimer(ch.wakeupFn)
	}
}

// SetReadIntegrity installs the demand-read ECC hook. Must be called
// before the simulation starts; nil leaves reads uninspected.
func (c *Controller) SetReadIntegrity(ri ReadIntegrity) { c.ri = ri }

// Stats returns a copy of the aggregate counters.
func (c *Controller) Stats() Stats { return c.stats }

// ChannelOf returns the channel index an address maps to.
func (c *Controller) ChannelOf(addr uint64) int { return c.amap.Decode(addr).Channel }

// QueueLen returns the current depth of a queue, for tests and metrics.
func (c *Controller) QueueLen(channel int, kind RequestKind) int {
	return len(c.chans[channel].queues[kind])
}

// AcquireRequest returns a zeroed request from the controller's pool.
// Pooled requests are recycled automatically when their transaction
// completes (after OnDone has fired), so the caller must not retain the
// pointer past that point. Requests built with plain &Request{} remain
// fully supported and are never recycled.
func (c *Controller) AcquireRequest() *Request {
	if len(c.reqFree) == 0 {
		// Refill the pool a slab at a time: one backing allocation per
		// 64 objects keeps acquisition cheap even when the in-flight
		// population grows (e.g. migration bursts parking against full
		// queues). The completion callback is bound once per pooled
		// object and reused across its whole recycled lifetime, so
		// steady-state reads schedule no new closures.
		slab := make([]Request, 64)
		for i := range slab {
			r := &slab[i]
			r.ctl, r.pooled = c, true
			r.doneFn = func(t timing.Time) { r.finishRead(t) }
			c.reqFree = append(c.reqFree, r)
		}
	}
	n := len(c.reqFree)
	r := c.reqFree[n-1]
	c.reqFree[n-1] = nil
	c.reqFree = c.reqFree[:n-1]
	r.Kind, r.Addr, r.Mode, r.Wear, r.OnDone = 0, 0, 0, 0, nil
	r.forwarded = false
	r.OwnerCore, r.OwnerStore, r.OwnerInst = OwnerNone, false, 0
	r.flightIdx = -1
	return r
}

// trackFlight records a pooled read whose completion event was just
// scheduled at (at, seq).
func (c *Controller) trackFlight(r *Request, at timing.Time, seq int64) {
	r.doneAt, r.doneSeq = at, seq
	r.flightIdx = len(c.inflight)
	c.inflight = append(c.inflight, r)
}

// untrackFlight removes a completing read from the in-flight list.
func (c *Controller) untrackFlight(r *Request) {
	i := r.flightIdx
	if i < 0 {
		return
	}
	last := len(c.inflight) - 1
	c.inflight[i] = c.inflight[last]
	c.inflight[i].flightIdx = i
	c.inflight[last] = nil
	c.inflight = c.inflight[:last]
	r.flightIdx = -1
}

// release returns a pooled request to the free list.
func (c *Controller) release(r *Request) {
	if !r.pooled {
		return
	}
	r.OnDone = nil
	c.reqFree = append(c.reqFree, r)
}

// finishRead completes a (possibly forwarded) read transaction carried
// by a pooled request.
func (r *Request) finishRead(t timing.Time) {
	c := r.ctl
	c.untrackFlight(r)
	ch := c.chans[r.loc.Channel]
	forwarded := r.forwarded
	c.rec.RecordRead(r.Addr)
	if r.OnDone != nil {
		r.OnDone(t)
	}
	c.release(r)
	if !forwarded {
		ch.kick(t)
	}
}

// Pending reports whether any queue holds requests or any bank is mid
// transaction (used to drain the simulation cleanly).
func (c *Controller) Pending() bool {
	for _, ch := range c.chans {
		for _, q := range ch.queues {
			if len(q) > 0 {
				return true
			}
		}
		for i := range ch.banks {
			if ch.banks[i].wr != nil || ch.bankFree[i] > c.eq.Now() {
				return true
			}
		}
	}
	return false
}

// TryEnqueue submits a request. It returns false, leaving the request
// unqueued, when the target queue is full; the caller may register an
// OnSpace callback to retry.
func (c *Controller) TryEnqueue(req *Request) bool {
	if req.Kind < 0 || req.Kind >= numKinds {
		panic(fmt.Sprintf("memctrl: bad request kind %d", int(req.Kind)))
	}
	req.loc = c.amap.Decode(req.Addr)
	ch := c.chans[req.loc.Channel]
	now := c.eq.Now()

	if req.Kind == ReadReq && c.cfg.ReadForwarding && ch.forwards(req.Addr) {
		c.stats.ReadForwards++
		c.stats.ReadsServed++
		lat := c.cfg.TCAS + c.cfg.BusXfer
		c.stats.ReadLatencySum += lat
		if lat > c.stats.ReadLatencyMax {
			c.stats.ReadLatencyMax = lat
		}
		if req.pooled {
			req.forwarded = true
			done := now + lat
			c.trackFlight(req, done, ch.eq.Schedule(done, req.doneFn).Seq())
			return true
		}
		done := req.OnDone
		addr := req.Addr
		ch.eq.Schedule(now+lat, func(t timing.Time) {
			c.rec.RecordRead(addr)
			if done != nil {
				done(t)
			}
		})
		return true
	}

	capacity := c.queueCap(req.Kind)
	if len(ch.queues[req.Kind]) >= capacity {
		c.stats.Rejected[req.Kind]++
		return false
	}
	req.enqueuedAt = now
	switch req.Kind {
	case ReadReq:
		// Cache the row-buffer tag once: FR-FCFS re-reads it on every
		// scheduling scan.
		req.rowTag = c.amap.RowBufferTag(req.Addr)
		ch.readsPerBank[req.loc.Bank]++
		ch.readsMask |= 1 << uint(req.loc.Bank)
	case WriteReq:
		ch.writesPerBank[req.loc.Bank]++
		ch.writesMask |= 1 << uint(req.loc.Bank)
		if ch.blockWrites != nil {
			ch.blockWrites[req.Addr&^63]++
		}
	default:
		ch.refreshPerBank[req.loc.Bank]++
		ch.refreshMask |= 1 << uint(req.loc.Bank)
		if ch.blockWrites != nil {
			ch.blockWrites[req.Addr&^63]++
		}
	}
	ch.queues[req.Kind] = append(ch.queues[req.Kind], req)
	c.noteOccupancy(ch)
	ch.kick(now)
	return true
}

// OnSpace registers fn to run once, the next time the given queue of the
// given channel drops below capacity.
func (c *Controller) OnSpace(kind RequestKind, channel int, fn func(now timing.Time)) {
	ch := c.chans[channel]
	ch.spaceWaiters[kind] = append(ch.spaceWaiters[kind], fn)
}

func (c *Controller) queueCap(kind RequestKind) int {
	switch kind {
	case ReadReq:
		return c.cfg.ReadQueueCap
	case WriteReq:
		return c.cfg.WriteQueueCap
	default:
		return c.cfg.RefreshQueueCap
	}
}

func (c *Controller) noteOccupancy(ch *channel) {
	if n := len(ch.queues[ReadReq]); n > c.stats.MaxReadQueue {
		c.stats.MaxReadQueue = n
	}
	if n := len(ch.queues[WriteReq]); n > c.stats.MaxWriteQueue {
		c.stats.MaxWriteQueue = n
	}
	if n := len(ch.queues[RefreshReq]); n > c.stats.MaxRefreshQueue {
		c.stats.MaxRefreshQueue = n
	}
}

// --- channel ---

// bankState holds per-bank row-buffer and write-occupancy state. The
// bank's busy horizon lives in channel.bankFree — a dense parallel
// array — so the wakeup scan over all banks touches two cache lines
// instead of one padded struct per bank.
type bankState struct {
	openTag uint64
	hasOpen bool
	wr      *inflightWrite // in-flight (possibly paused) write occupying the bank
}

// inflightWrite tracks a write pulse that may be paused at SET-iteration
// boundaries. A fresh run starts with the RESET phase; resumed runs are
// pure SET iterations. Inflight writes are pooled per channel; the
// completion and pause callbacks are bound once per object and survive
// recycling.
type inflightWrite struct {
	req          *Request
	bank         int
	runStart     timing.Time
	runHasReset  bool
	setsLeft     int // SET iterations outstanding at runStart
	paused       bool
	pausePending bool
	zombie       bool // completed with a pause event still in flight
	completion   timing.EventRef
	pauseEvAt    timing.Time // scheduled pause boundary (valid while pausePending)
	pauseEvSeq   int64

	completeFn func(t timing.Time)
	pauseFn    func(t timing.Time)
}

// completionTime returns when the current run would finish unpaused.
func (w *inflightWrite) completionTime() timing.Time {
	t := w.runStart
	if w.runHasReset {
		t += pcm.ResetPulse
	}
	return t + timing.Time(w.setsLeft)*pcm.SetPulse
}

// pauseBoundary returns the earliest instant at or after t where the run
// can pause (end of RESET or end of a SET iteration), and whether pausing
// there is useful (i.e. strictly before completion).
func (w *inflightWrite) pauseBoundary(t timing.Time) (timing.Time, bool) {
	resetEnd := w.runStart
	if w.runHasReset {
		resetEnd += pcm.ResetPulse
	}
	var b timing.Time
	if t <= resetEnd {
		b = resetEnd
	} else {
		k := (t - resetEnd + pcm.SetPulse - 1) / pcm.SetPulse
		b = resetEnd + k*pcm.SetPulse
	}
	return b, b < w.completionTime()
}

// setsDoneBy returns completed SET iterations of this run at boundary b.
func (w *inflightWrite) setsDoneBy(b timing.Time) int {
	resetEnd := w.runStart
	if w.runHasReset {
		resetEnd += pcm.ResetPulse
	}
	if b <= resetEnd {
		return 0
	}
	return int((b - resetEnd) / pcm.SetPulse)
}

type channel struct {
	ctl *Controller
	id  int

	// eq is the event queue this channel schedules on: the controller's
	// global queue in the serial engine, the channel's shard queue under
	// SetShardQueues. Both share the simulation clock.
	eq *timing.EventQueue

	// fast selects the sharded engine's wakeup bookkeeping; timer is its
	// per-channel deadline slot (replaces the wakeupEv heap event).
	fast  bool
	timer *timing.Timer

	// Bank bitmasks, valid when the channel has at most 64 banks
	// (wideBanks false; wider geometries fall back to linear scans).
	// pausedMask, pausableMask and wrMask are exact: banks whose
	// in-flight write is paused, still pausable (active, no pause
	// pending), respectively present at all. busyMask over-approximates
	// the banks with bankFree in the future between kicks and is pruned
	// exact at kick entry — time stands still inside a kick, so it stays
	// exact through every tryStart iteration and the queue scans reduce
	// to one bit test per entry.
	pausedMask   uint64
	pausableMask uint64
	busyMask     uint64
	wrMask       uint64
	bankMaskAll  uint64
	wideBanks    bool

	// Queue-occupancy masks (narrow geometries only): banks with at
	// least one queued read / write / refresh. Intersected with the
	// free-bank masks they answer "can any queued transaction start?"
	// in O(1), so a kick whose scan would find nothing never walks the
	// queues at all.
	readsMask   uint64
	writesMask  uint64
	refreshMask uint64

	// writesPerBank/refreshPerBank mirror readsPerBank for the other two
	// queues; they exist to clear the occupancy masks exactly.
	writesPerBank  []int32
	refreshPerBank []int32

	queues [numKinds][]*Request
	banks  []bankState

	// bankFree[i] is the instant bank i's current transaction releases
	// it (bankState's former freeAt field, split out so the armWakeup
	// min-scan reads a dense timestamp array).
	bankFree []timing.Time

	// readsPerBank counts queued reads per bank, so resume decisions
	// (readWaitingFor) are O(1) instead of a read-queue scan.
	readsPerBank []int32

	// blockWrites counts queued writes+refreshes per 64 B block (only
	// when ReadForwarding is enabled), so forwarding lookups are O(1)
	// instead of scanning both queues per read.
	blockWrites map[uint64]int32

	busFreeAt timing.Time
	actTimes  []timing.Time // ring buffer of recent activations
	actIdx    int

	wrFree []*inflightWrite // recycled inflight writes

	spaceWaiters [numKinds][]func(now timing.Time)
	waiterSpare  [numKinds][]func(now timing.Time) // recycled delivery arrays
	wakeupAt     timing.Time
	wakeupEv     timing.EventRef
	wakeupFn     func(now timing.Time) // bound once: wakeup
	draining     bool
}

// forwards reports whether a queued write or refresh covers block addr.
func (ch *channel) forwards(addr uint64) bool {
	return ch.blockWrites[addr&^63] > 0
}

// kick starts every transaction that can begin now, then arms a wakeup
// for the earliest future opportunity.
func (ch *channel) kick(now timing.Time) {
	if !ch.wideBanks {
		// Prune busyMask exact once per kick: no time passes inside the
		// tryStart loop, so a bit cleared here stays clear and a start
		// re-sets its own bit, keeping the mask exact throughout.
		for m := ch.busyMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if ch.bankFree[i] <= now {
				ch.busyMask &^= 1 << uint(i)
			}
		}
	}
	for ch.tryStart(now) {
	}
	ch.armWakeup(now)
}

// bankFreeForRead: the bank is idle, or holds only a paused write.
func (ch *channel) bankFreeForRead(bank int, now timing.Time) bool {
	wr := ch.banks[bank].wr
	return ch.bankFree[bank] <= now && (wr == nil || wr.paused)
}

// bankFreeForWrite: the bank is idle with no in-flight write at all.
func (ch *channel) bankFreeForWrite(bank int, now timing.Time) bool {
	return ch.bankFree[bank] <= now && ch.banks[bank].wr == nil
}

// tryStart attempts to begin one transaction; it returns true if a bank
// was newly occupied (so the caller loops). The mask path relies on
// busyMask being exact (kick prunes it on entry): a queue entry's bank
// eligibility is one bit test instead of per-entry bank-state loads.
func (ch *channel) tryStart(now timing.Time) bool {
	ch.updateDrainMode()
	if ch.wideBanks {
		return ch.tryStartWide(now)
	}

	freeWrite := ^(ch.busyMask | ch.wrMask) & ch.bankMaskAll
	freeRead := ^ch.busyMask & (^ch.wrMask | ch.pausedMask) & ch.bankMaskAll

	// Refresh queue: highest priority (hard retention deadline).
	if freeWrite&ch.refreshMask != 0 {
		for i, r := range ch.queues[RefreshReq] {
			if freeWrite&(1<<uint(r.loc.Bank)) != 0 {
				ch.dequeue(RefreshReq, i, now)
				ch.startWrite(r, now)
				return true
			}
		}
	}

	if ch.draining {
		// Drain mode: writes own the channel until the queue falls to
		// the low watermark; reads may still slip onto idle banks no
		// write wants.
		if ch.tryResume(now, false) || ch.tryWriteMask(now, freeWrite) {
			return true
		}
		if idx := ch.pickReadMask(now, freeRead); idx >= 0 {
			r := ch.queues[ReadReq][idx]
			ch.dequeue(ReadReq, idx, now)
			ch.startRead(r, now)
			return true
		}
		return false
	}

	// Normal mode: reads first (FR-FCFS), pausing in-flight writes.
	if idx := ch.pickReadMask(now, freeRead); idx >= 0 {
		r := ch.queues[ReadReq][idx]
		ch.dequeue(ReadReq, idx, now)
		ch.startRead(r, now)
		return true
	}
	// The pause-request sweep only matters while some write is still
	// pausable; pausableMask tracks exactly that, so the common
	// no-writes-in-flight kick skips the read-queue walk entirely.
	if ch.ctl.cfg.WritePausing && ch.pausableMask&ch.readsMask != 0 {
		for _, r := range ch.queues[ReadReq] {
			if ch.pausableMask&(1<<uint(r.loc.Bank)) != 0 {
				ch.requestPause(ch.banks[r.loc.Bank].wr, now)
				if ch.pausableMask == 0 {
					break
				}
			}
		}
	}
	if ch.tryResume(now, true) {
		return true
	}
	return ch.tryWriteMask(now, freeWrite)
}

// tryStartWide is tryStart for geometries beyond 64 banks per channel,
// where the bitmasks cannot cover the bank set and every check reads
// bank state directly.
func (ch *channel) tryStartWide(now timing.Time) bool {
	for i, r := range ch.queues[RefreshReq] {
		if ch.bankFreeForWrite(r.loc.Bank, now) {
			ch.dequeue(RefreshReq, i, now)
			ch.startWrite(r, now)
			return true
		}
	}

	if ch.draining {
		if ch.tryResume(now, false) || ch.tryWrite(now) {
			return true
		}
		if idx := ch.pickRead(now); idx >= 0 {
			r := ch.queues[ReadReq][idx]
			ch.dequeue(ReadReq, idx, now)
			ch.startRead(r, now)
			return true
		}
		return false
	}

	if idx := ch.pickRead(now); idx >= 0 {
		r := ch.queues[ReadReq][idx]
		ch.dequeue(ReadReq, idx, now)
		ch.startRead(r, now)
		return true
	}
	if ch.ctl.cfg.WritePausing {
		for _, r := range ch.queues[ReadReq] {
			b := &ch.banks[r.loc.Bank]
			if b.wr != nil && !b.wr.paused && !b.wr.pausePending {
				ch.requestPause(b.wr, now)
			}
		}
	}
	if ch.tryResume(now, true) {
		return true
	}
	return ch.tryWrite(now)
}

// updateDrainMode applies the write-queue watermark hysteresis.
func (ch *channel) updateDrainMode() {
	n := len(ch.queues[WriteReq])
	if !ch.draining && n >= ch.ctl.cfg.WriteDrainHigh {
		ch.draining = true
		ch.ctl.stats.DrainEntries++
	} else if ch.draining && n <= ch.ctl.cfg.WriteDrainLow {
		ch.draining = false
	}
}

// tryResume restarts one paused write on a free bank. Outside drain mode
// a waiting read keeps the write paused (respectReads).
func (ch *channel) tryResume(now timing.Time, respectReads bool) bool {
	if !ch.wideBanks {
		// Paused writes on non-busy banks (a read may occupy a paused
		// bank, which is what busyMask excludes), minus banks a queued
		// read still wants when reads have priority; TrailingZeros picks
		// the lowest bank, matching the linear scan's order.
		m := ch.pausedMask &^ ch.busyMask
		if respectReads {
			m &^= ch.readsMask
		}
		if m != 0 {
			i := bits.TrailingZeros64(m)
			ch.resumeWrite(ch.banks[i].wr, now)
			return true
		}
		return false
	}
	for i := range ch.banks {
		b := &ch.banks[i]
		if b.wr != nil && b.wr.paused && ch.bankFree[i] <= now &&
			(!respectReads || ch.readsPerBank[i] == 0) {
			ch.resumeWrite(b.wr, now)
			return true
		}
	}
	return false
}

// tryWrite starts the oldest startable demand write.
func (ch *channel) tryWrite(now timing.Time) bool {
	for i, r := range ch.queues[WriteReq] {
		if ch.bankFreeForWrite(r.loc.Bank, now) {
			ch.dequeue(WriteReq, i, now)
			ch.startWrite(r, now)
			return true
		}
	}
	return false
}

// tryWriteMask is tryWrite against a precomputed free-for-write mask.
// Intersecting with writesMask makes the no-startable-write case O(1):
// the queue walk only runs when it is guaranteed to start something.
func (ch *channel) tryWriteMask(now timing.Time, freeWrite uint64) bool {
	freeWrite &= ch.writesMask
	if freeWrite == 0 {
		return false
	}
	for i, r := range ch.queues[WriteReq] {
		if freeWrite&(1<<uint(r.loc.Bank)) != 0 {
			ch.dequeue(WriteReq, i, now)
			ch.startWrite(r, now)
			return true
		}
	}
	return false
}

// pickRead selects the next read per FR-FCFS: the oldest row-buffer hit
// on a serviceable bank, else the oldest read on a serviceable bank.
// Row misses additionally require a tFAW activation slot.
func (ch *channel) pickRead(now timing.Time) int {
	q := ch.queues[ReadReq]
	if len(q) == 0 {
		return -1
	}
	// The tFAW admission check is loop-invariant; hoist it.
	actOK := ch.actAllowedAt(now) <= now
	oldest := -1
	for i, r := range q {
		b := &ch.banks[r.loc.Bank]
		if !ch.bankFreeForRead(r.loc.Bank, now) {
			continue
		}
		if b.hasOpen && b.openTag == r.rowTag {
			return i // row-buffer hit wins immediately (queue is FIFO-ordered)
		}
		if oldest < 0 && actOK {
			oldest = i
		}
	}
	return oldest
}

// pickReadMask is pickRead against a precomputed free-for-read mask.
// Intersecting with readsMask makes the no-serviceable-read case O(1).
func (ch *channel) pickReadMask(now timing.Time, freeRead uint64) int {
	freeRead &= ch.readsMask
	if freeRead == 0 {
		return -1
	}
	q := ch.queues[ReadReq]
	actOK := ch.actAllowedAt(now) <= now
	oldest := -1
	for i, r := range q {
		if freeRead&(1<<uint(r.loc.Bank)) == 0 {
			continue
		}
		b := &ch.banks[r.loc.Bank]
		if b.hasOpen && b.openTag == r.rowTag {
			return i // row-buffer hit wins immediately (queue is FIFO-ordered)
		}
		if oldest < 0 && actOK {
			oldest = i
		}
	}
	return oldest
}

// actAllowedAt returns the earliest time a new activation may issue under
// the tFAW window.
func (ch *channel) actAllowedAt(now timing.Time) timing.Time {
	earliest := ch.actTimes[ch.actIdx] + ch.ctl.cfg.TFAW
	if earliest < now {
		return now
	}
	return earliest
}

func (ch *channel) recordACT(t timing.Time) {
	ch.actTimes[ch.actIdx] = t
	ch.actIdx = (ch.actIdx + 1) % len(ch.actTimes)
}

// dropBlockWrite decrements the read-forwarding block index.
func (ch *channel) dropBlockWrite(addr uint64) {
	if ch.blockWrites == nil {
		return
	}
	blk := addr &^ 63
	if n := ch.blockWrites[blk] - 1; n > 0 {
		ch.blockWrites[blk] = n
	} else {
		delete(ch.blockWrites, blk)
	}
}

// dequeue removes index i of the given queue, maintains the per-bank and
// per-block indexes, and wakes space waiters.
func (ch *channel) dequeue(kind RequestKind, i int, now timing.Time) {
	q := ch.queues[kind]
	r := q[i]
	switch kind {
	case ReadReq:
		if ch.readsPerBank[r.loc.Bank]--; ch.readsPerBank[r.loc.Bank] == 0 {
			ch.readsMask &^= 1 << uint(r.loc.Bank)
		}
	case WriteReq:
		if ch.writesPerBank[r.loc.Bank]--; ch.writesPerBank[r.loc.Bank] == 0 {
			ch.writesMask &^= 1 << uint(r.loc.Bank)
		}
		ch.dropBlockWrite(r.Addr)
	default:
		if ch.refreshPerBank[r.loc.Bank]--; ch.refreshPerBank[r.loc.Bank] == 0 {
			ch.refreshMask &^= 1 << uint(r.loc.Bank)
		}
		ch.dropBlockWrite(r.Addr)
	}
	copy(q[i:], q[i+1:])
	q[len(q)-1] = nil
	ch.queues[kind] = q[:len(q)-1]
	if len(ch.spaceWaiters[kind]) > 0 && len(ch.queues[kind]) < ch.ctl.queueCap(kind) {
		waiters := ch.spaceWaiters[kind]
		// Hand the registration list a recycled backing array (the one
		// the previous delivery finished with) so OnSpace appends stop
		// allocating in steady state; the captured slice is owned
		// exclusively by its delivery event.
		ch.spaceWaiters[kind] = ch.waiterSpare[kind]
		ch.waiterSpare[kind] = nil
		// Deliver on a fresh event: waiters re-enqueue requests, which
		// must not re-enter the scheduler while it is mid-scan.
		ch.eq.Schedule(now, func(t timing.Time) {
			for i, fn := range waiters {
				waiters[i] = nil
				fn(t)
			}
			ch.waiterSpare[kind] = waiters[:0]
		})
	}
}

// startRead occupies the bank and bus for a read transaction.
func (ch *channel) startRead(r *Request, now timing.Time) {
	cfg := &ch.ctl.cfg
	b := &ch.banks[r.loc.Bank]

	dataAt := now
	if b.hasOpen && b.openTag == r.rowTag {
		ch.ctl.stats.RowBufHits++
	} else {
		ch.ctl.stats.RowBufMisses++
		ch.recordACT(now)
		dataAt += cfg.TRCD
		b.openTag = r.rowTag
		b.hasOpen = true
	}
	dataAt += cfg.TCAS
	xferStart := timing.Max(dataAt, ch.busFreeAt)
	done := xferStart + cfg.BusXfer
	ch.busFreeAt = done
	ch.ctl.stats.BankBusy += done - now
	ch.bankFree[r.loc.Bank] = done
	ch.busyMask |= 1 << uint(r.loc.Bank)

	// ECC inspection: a correction stall delays data delivery (and counts
	// against read latency) but the bank and bus are released at transfer
	// end — correction happens in the controller's decode pipeline.
	if ch.ctl.ri != nil {
		done += ch.ctl.ri.OnDemandRead(r.Addr, done)
	}

	lat := done - r.enqueuedAt
	ch.ctl.stats.ReadsServed++
	ch.ctl.stats.ReadLatencySum += lat
	if lat > ch.ctl.stats.ReadLatencyMax {
		ch.ctl.stats.ReadLatencyMax = lat
	}
	if r.pooled {
		ch.ctl.trackFlight(r, done, ch.eq.Schedule(done, r.doneFn).Seq())
		return
	}
	ch.eq.Schedule(done, func(t timing.Time) {
		ch.ctl.rec.RecordRead(r.Addr)
		if r.OnDone != nil {
			r.OnDone(t)
		}
		ch.kick(t)
	})
}

// acquireWrite returns an inflight-write tracker from the channel pool.
func (ch *channel) acquireWrite() *inflightWrite {
	if n := len(ch.wrFree); n > 0 {
		wr := ch.wrFree[n-1]
		ch.wrFree[n-1] = nil
		ch.wrFree = ch.wrFree[:n-1]
		return wr
	}
	wr := &inflightWrite{}
	wr.completeFn = func(t timing.Time) { ch.completeWrite(wr, t) }
	wr.pauseFn = func(t timing.Time) { ch.pauseAt(wr, t) }
	return wr
}

// releaseWrite resets and recycles an inflight-write tracker.
func (ch *channel) releaseWrite(wr *inflightWrite) {
	wr.req = nil
	wr.paused, wr.pausePending, wr.zombie, wr.runHasReset = false, false, false, false
	wr.setsLeft = 0
	wr.completion = timing.EventRef{}
	ch.wrFree = append(ch.wrFree, wr)
}

// startWrite begins a demand write or refresh pulse (write-through: the
// row buffer is bypassed and left untouched).
func (ch *channel) startWrite(r *Request, now timing.Time) {
	cfg := &ch.ctl.cfg
	b := &ch.banks[r.loc.Bank]

	xferStart := timing.Max(now, ch.busFreeAt)
	pulseStart := xferStart + cfg.BusXfer
	ch.busFreeAt = pulseStart

	wr := ch.acquireWrite()
	wr.req = r
	wr.bank = r.loc.Bank
	wr.runStart = pulseStart
	wr.runHasReset = true
	wr.setsLeft = r.Mode.Sets()
	b.wr = wr
	done := wr.completionTime()
	ch.bankFree[r.loc.Bank] = done
	ch.busyMask |= 1 << uint(r.loc.Bank)
	ch.pausableMask |= 1 << uint(r.loc.Bank)
	ch.wrMask |= 1 << uint(r.loc.Bank)
	ch.ctl.stats.BankBusy += done - now
	wr.completion = ch.eq.Schedule(done, wr.completeFn)
}

// resumeWrite restarts a paused write's remaining SET iterations.
func (ch *channel) resumeWrite(wr *inflightWrite, now timing.Time) {
	wr.paused = false
	ch.pausedMask &^= 1 << uint(wr.bank)
	ch.pausableMask |= 1 << uint(wr.bank)
	wr.runStart = now
	wr.runHasReset = false
	done := wr.completionTime()
	ch.bankFree[wr.bank] = done
	ch.busyMask |= 1 << uint(wr.bank)
	ch.ctl.stats.BankBusy += done - now
	wr.completion = ch.eq.Schedule(done, wr.completeFn)
}

// requestPause arranges for wr to pause at its next iteration boundary.
func (ch *channel) requestPause(wr *inflightWrite, now timing.Time) {
	boundary, useful := wr.pauseBoundary(now)
	if !useful {
		return
	}
	wr.pausePending = true
	ch.pausableMask &^= 1 << uint(wr.bank)
	wr.pauseEvAt = boundary
	wr.pauseEvSeq = ch.eq.Schedule(boundary, wr.pauseFn).Seq()
}

// pauseAt suspends wr at boundary time t (if it is still running).
func (ch *channel) pauseAt(wr *inflightWrite, t timing.Time) {
	wr.pausePending = false
	if wr.zombie {
		// The write completed at this same instant (completion events
		// sort before the later-scheduled pause); recycle the tracker
		// now that the pause callback has drained.
		ch.releaseWrite(wr)
		return
	}
	if wr.paused || !wr.completion.Valid() {
		return // completed or already paused in the meantime
	}
	if wr.completionTime() <= t {
		return // completion event at this same instant will handle it
	}
	ch.eq.Cancel(wr.completion)
	wr.completion = timing.EventRef{}
	wr.setsLeft -= wr.setsDoneBy(t)
	wr.runHasReset = false
	wr.paused = true
	ch.pausedMask |= 1 << uint(wr.bank)
	ch.bankFree[wr.bank] = t
	ch.ctl.stats.WritePauses++
	ch.kick(t)
}

// completeWrite finishes a write or refresh pulse.
func (ch *channel) completeWrite(wr *inflightWrite, t timing.Time) {
	wr.completion = timing.EventRef{}
	b := &ch.banks[wr.bank]
	b.wr = nil
	ch.pausableMask &^= 1 << uint(wr.bank)
	ch.wrMask &^= 1 << uint(wr.bank)
	r := wr.req
	lat := t - r.enqueuedAt
	if r.Kind == RefreshReq {
		ch.ctl.stats.RefreshesServed++
		ch.ctl.stats.RefreshLatencySum += lat
		if lat > ch.ctl.stats.RefreshLatencyMax {
			ch.ctl.stats.RefreshLatencyMax = lat
		}
	} else {
		ch.ctl.stats.WritesServed++
		ch.ctl.stats.WriteLatencySum += lat
		if lat > ch.ctl.stats.WriteLatencyMax {
			ch.ctl.stats.WriteLatencyMax = lat
		}
	}
	if wr.pausePending {
		// A pause callback for this same instant is still queued; the
		// tracker is recycled there, never while a callback can see it.
		wr.zombie = true
	} else {
		ch.releaseWrite(wr)
	}
	ch.ctl.rec.RecordWrite(r.Addr, r.Mode, r.Wear)
	if r.OnDone != nil {
		r.OnDone(t)
	}
	ch.ctl.release(r)
	ch.kick(t)
}

// wakeup is the (once-bound) wakeup event body.
func (ch *channel) wakeup(t timing.Time) {
	ch.wakeupEv = timing.EventRef{}
	ch.kick(t)
}

// armWakeup schedules a re-scan at the earliest future instant any
// pending work could start. On the sharded engine the wakeup lives in a
// timer slot instead of a heap event: re-aiming is two stores instead of
// a Cancel+Schedule sift round-trip, and since Arm draws a sequence
// number exactly like Schedule, the timer fires in precisely the
// position the replaced event would have — the serial dispatch order is
// preserved bit-for-bit.
func (ch *channel) armWakeup(now timing.Time) {
	pendingWork := false
	for _, q := range ch.queues {
		if len(q) > 0 {
			pendingWork = true
			break
		}
	}
	if !pendingWork {
		if !ch.wideBanks {
			pendingWork = ch.pausedMask != 0
		} else {
			for i := range ch.banks {
				if ch.banks[i].wr != nil && ch.banks[i].wr.paused {
					pendingWork = true
					break
				}
			}
		}
	}
	if !pendingWork {
		return
	}
	at := timing.Forever
	if !ch.wideBanks {
		// busyMask over-approximates the banks still running; prune
		// the bits whose transactions already finished as we walk.
		for m := ch.busyMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			free := ch.bankFree[i]
			if free <= now {
				ch.busyMask &^= 1 << uint(i)
				continue
			}
			if free < at {
				at = free
			}
		}
	} else {
		for _, free := range ch.bankFree {
			if free > now && free < at {
				at = free
			}
		}
	}
	if t := ch.actAllowedAt(now); t > now && t < at {
		at = t
	}
	if ch.busFreeAt > now && ch.busFreeAt < at {
		at = ch.busFreeAt
	}
	if at == timing.Forever {
		return // everything is free; nothing further will unblock by time alone
	}
	if ch.fast {
		if ch.timer.Armed() && ch.wakeupAt <= at {
			return // an earlier or equal wakeup is already armed
		}
		ch.wakeupAt = at
		ch.timer.Arm(ch.eq, at)
		return
	}
	if ch.wakeupEv.Valid() {
		if ch.wakeupAt <= at {
			return // an earlier or equal wakeup is already armed
		}
		// A later wakeup is pending: replace it, or the heap fills
		// with dead events.
		ch.eq.Cancel(ch.wakeupEv)
	}
	ch.wakeupAt = at
	ch.wakeupEv = ch.eq.Schedule(at, ch.wakeupFn)
}
