package memctrl

import "rrmpcm/internal/timing"

// Sentinel OwnerCore values. Real cores are numbered from zero; a demand
// read carries its core index so snapshots can rebuild the completion
// callback. Requests issued by non-core agents use a negative sentinel.
const (
	// OwnerNone marks a request with no snapshot-resolvable owner
	// (writes, refreshes, and reads whose OnDone is nil).
	OwnerNone = -1
	// OwnerMigrate marks a migration-engine copy read (hybrid DRAM tier
	// page fill). OwnerInst carries the block address; the restorer
	// rebuilds the callback from it (see dram.Migrator.CopyDoneCallback).
	OwnerMigrate = -2
)

// Device is the per-channel memory service seam between the simulator
// backend and a memory implementation. The PCM Controller is the first
// implementation; the hybrid DRAM staging tier (internal/dram.Migrator)
// wraps it with the same contract. The interface is deliberately exactly
// the surface the simulator backend already used on *Controller, so the
// seam costs one interface dispatch and nothing else:
//
//   - AcquireRequest hands out pooled transaction envelopes (recycled on
//     completion; zero steady-state allocation).
//   - TryEnqueue submits a request, returning false when the target queue
//     is full — the caller parks the request and arms OnSpace.
//   - OnSpace registers a one-shot callback for the next time the given
//     queue of the given channel drops below capacity.
//   - ChannelOf exposes the address-to-channel mapping for backpressure
//     bookkeeping.
//   - Pending reports in-flight work, letting the simulator drain cleanly
//     at a measurement boundary.
//
// Wear, energy, and reliability remain optional capabilities wired beside
// the device (Recorder, ReadIntegrity); a device without them — DRAM has
// no wear — simply never invokes the hooks.
type Device interface {
	AcquireRequest() *Request
	TryEnqueue(req *Request) bool
	OnSpace(kind RequestKind, channel int, fn func(now timing.Time))
	ChannelOf(addr uint64) int
	Pending() bool
}

var _ Device = (*Controller)(nil)

// ReleaseRequest returns an un-enqueued pooled request to the pool. Most
// requests recycle themselves on completion; this is for agents that
// accept a request without enqueueing it (the hybrid migration engine
// absorbs writes into DRAM and serves resident reads from the staging
// tier, retiring the PCM envelope immediately).
func (c *Controller) ReleaseRequest(r *Request) { c.release(r) }
