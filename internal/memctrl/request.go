// Package memctrl models the MLC PCM memory controller of Table V: four
// channels of sixteen banks, each channel with three priority queues
// (RRM-refresh > read > write), FR-FCFS open-page scheduling for reads,
// write-through writes that bypass the row buffer, per-mode write pulse
// times, tFAW activation throttling, and the Write Pausing technique of
// Qureshi et al. (reads may pause an in-flight write at SET-iteration
// boundaries).
//
// The controller is event-driven against a timing.EventQueue and reports
// completed requests through per-request callbacks. Enqueue attempts can
// fail when a queue is full; callers subscribe to space notifications for
// backpressure (a full write queue is exactly how slow writes throttle
// the cores in the paper's experiments).
package memctrl

import (
	"fmt"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// RequestKind selects the queue (and priority class) of a request.
type RequestKind int

const (
	// ReadReq is a demand read (LLC miss fill). Middle priority.
	ReadReq RequestKind = iota
	// WriteReq is a demand write (LLC dirty writeback). Lowest priority.
	WriteReq
	// RefreshReq is an RRM-issued refresh write. Highest priority: it
	// has a hard retention deadline.
	RefreshReq

	numKinds
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	switch k {
	case ReadReq:
		return "read"
	case WriteReq:
		return "write"
	case RefreshReq:
		return "refresh"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Request is one memory transaction. Writes and refreshes carry the write
// mode the policy selected (the "Memory Write Request with Write Mode" of
// paper Figure 5) and a wear class for accounting.
type Request struct {
	Kind RequestKind
	Addr uint64
	Mode pcm.WriteMode // writes and refreshes only
	Wear pcm.WearKind  // writes and refreshes only

	// OnDone, if non-nil, fires when the transaction completes (data
	// returned for reads; write pulse finished for writes).
	OnDone func(now timing.Time)

	// OwnerCore/OwnerStore/OwnerInst identify the requester of a demand
	// read (OwnerNone: no owner; OwnerMigrate: hybrid-tier copy read).
	// OnDone is a closure and cannot travel in a state snapshot, so the
	// snapshot records this identity instead and the restorer rebuilds
	// the callback from it (see cpu.Core.MissCallback and
	// dram.Migrator.CopyDoneCallback).
	OwnerCore  int
	OwnerStore bool
	OwnerInst  uint64

	enqueuedAt timing.Time
	loc        pcm.Location
	rowTag     uint64 // row-buffer tag, cached at enqueue (reads)

	// In-flight read tracking (snapshot bookkeeping): the scheduled
	// completion event's (time, seq) and this request's index in the
	// controller's in-flight list, -1 when not in flight.
	doneAt    timing.Time
	doneSeq   int64
	flightIdx int

	// Pool bookkeeping (requests from Controller.AcquireRequest): the
	// owning controller, a once-bound read-completion callback, and
	// whether the current read is being served from the write queue.
	ctl       *Controller
	doneFn    func(now timing.Time)
	pooled    bool
	forwarded bool
}

// Recorder receives completed-transaction notifications for wear and
// energy accounting. The simulator wires it to the pcm trackers; tests
// can substitute fakes.
type Recorder interface {
	RecordWrite(addr uint64, mode pcm.WriteMode, kind pcm.WearKind)
	RecordRead(addr uint64)
}

// ReadIntegrity inspects every demand read served from the array and
// returns the ECC stall to add to its latency (zero for clean data).
// Reads forwarded from the write queue carry just-written data and are
// not inspected. The simulator wires this to the reliability engine's
// fault injector; nil disables the hook.
type ReadIntegrity interface {
	OnDemandRead(addr uint64, now timing.Time) timing.Time
}

// NopRecorder discards all notifications.
type NopRecorder struct{}

// RecordWrite implements Recorder.
func (NopRecorder) RecordWrite(uint64, pcm.WriteMode, pcm.WearKind) {}

// RecordRead implements Recorder.
func (NopRecorder) RecordRead(uint64) {}
