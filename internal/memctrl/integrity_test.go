package memctrl

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// fixedStallIntegrity stalls every inspected read by a constant and
// records the addresses it saw.
type fixedStallIntegrity struct {
	stall timing.Time
	seen  []uint64
}

func (f *fixedStallIntegrity) OnDemandRead(addr uint64, now timing.Time) timing.Time {
	f.seen = append(f.seen, addr)
	return f.stall
}

// TestReadIntegrityStall: the integrity hook's stall delays data
// delivery and counts in read latency, but the bank frees at transfer
// end — a following row hit is not pushed back by the ECC decode.
func TestReadIntegrityStall(t *testing.T) {
	r := newRig(t, nil)
	ri := &fixedStallIntegrity{stall: 25 * timing.Nanosecond}
	r.ctl.SetReadIntegrity(ri)

	// Two same-row reads queued together: the second must start from the
	// first's transfer end, not its decode end — the ECC stall delays
	// data delivery only, never bank occupancy.
	var first, second timing.Time
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 0, OnDone: func(now timing.Time) { first = now }})
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 512, OnDone: func(now timing.Time) { second = now }})
	r.run(t)
	base := timing.MemCycles(48) + timing.MemCycles(1) + timing.MemCycles(8)
	if want := base + ri.stall; first != want {
		t.Errorf("stalled read done at %v, want %v", first, want)
	}
	if len(ri.seen) != 2 {
		t.Errorf("integrity hook saw %v, want both reads", ri.seen)
	}
	hit := timing.MemCycles(1) + timing.MemCycles(8)
	if want := base + hit + ri.stall; second != want {
		t.Errorf("second read done at %v, want %v (bank freed at transfer end)", second, want)
	}
	if s := r.ctl.Stats(); s.ReadLatencySum != first+second {
		t.Errorf("read latency sum %v does not include the stalls (%v + %v)", s.ReadLatencySum, first, second)
	}
}

// TestReadIntegritySkipsForwards: reads served from the write queue
// never touch the array, so the integrity hook must not see them.
func TestReadIntegritySkipsForwards(t *testing.T) {
	r := newRig(t, nil)
	ri := &fixedStallIntegrity{stall: 25 * timing.Nanosecond}
	r.ctl.SetReadIntegrity(ri)

	for i := 0; i < 3; i++ {
		r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: uint64(i) << 20, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite})
	}
	var readDone timing.Time
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 2 << 20, OnDone: func(now timing.Time) { readDone = now }})
	r.run(t)
	if want := timing.MemCycles(1) + timing.MemCycles(8); readDone != want {
		t.Errorf("forwarded read done at %v, want %v (no ECC stall)", readDone, want)
	}
	for _, a := range ri.seen {
		if a == 2<<20 {
			t.Error("integrity hook inspected a forwarded read")
		}
	}
}
