package memctrl

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// testRig bundles a controller with its event queue over the default
// 8 GB device.
type testRig struct {
	eq   *timing.EventQueue
	ctl  *Controller
	amap *pcm.AddressMap
}

func newRig(t *testing.T, mutate func(*Config)) *testRig {
	t.Helper()
	amap, err := pcm.NewAddressMap(pcm.DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	eq := timing.NewEventQueue()
	ctl, err := New(cfg, amap, eq, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{eq: eq, ctl: ctl, amap: amap}
}

// run drains all pending events (bounded, to catch livelocks).
func (r *testRig) run(t *testing.T) {
	t.Helper()
	if n := r.eq.Drain(1_000_000); n >= 1_000_000 {
		t.Fatal("event storm: controller did not quiesce")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ReadQueueCap = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero read queue accepted")
	}
	bad = DefaultConfig()
	bad.FAWLimit = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero FAW limit accepted")
	}
}

func TestSingleReadLatency(t *testing.T) {
	r := newRig(t, nil)
	var doneAt timing.Time
	ok := r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 0, OnDone: func(now timing.Time) { doneAt = now }})
	if !ok {
		t.Fatal("enqueue rejected")
	}
	r.run(t)
	// Cold read: tRCD (120ns) + tCAS (2.5ns) + transfer (20ns).
	want := timing.MemCycles(48) + timing.MemCycles(1) + timing.MemCycles(8)
	if doneAt != want {
		t.Errorf("read done at %v, want %v", doneAt, want)
	}
	s := r.ctl.Stats()
	if s.ReadsServed != 1 || s.RowBufMisses != 1 || s.RowBufHits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowBufferHit(t *testing.T) {
	r := newRig(t, nil)
	var first, second timing.Time
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 0, OnDone: func(now timing.Time) { first = now }})
	r.run(t)
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 512, OnDone: func(now timing.Time) { second = now }})
	r.run(t)
	// Second read is in the same 1 KB segment: no tRCD.
	hitLat := second - first
	want := timing.MemCycles(1) + timing.MemCycles(8)
	if hitLat != want {
		t.Errorf("row-hit latency = %v, want %v", hitLat, want)
	}
	if s := r.ctl.Stats(); s.RowBufHits != 1 {
		t.Errorf("row buffer hits = %d, want 1", s.RowBufHits)
	}
}

func TestWriteLatencyByMode(t *testing.T) {
	for _, mode := range pcm.Modes() {
		r := newRig(t, nil)
		var doneAt timing.Time
		r.ctl.TryEnqueue(&Request{
			Kind: WriteReq, Addr: 0, Mode: mode, Wear: pcm.WearDemandWrite,
			OnDone: func(now timing.Time) { doneAt = now },
		})
		r.run(t)
		want := timing.MemCycles(8) + pcm.Latency(mode) // bus transfer + pulse
		if doneAt != want {
			t.Errorf("%v write done at %v, want %v", mode, doneAt, want)
		}
	}
}

func TestWriteBypassesRowBuffer(t *testing.T) {
	r := newRig(t, nil)
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 0}) // opens segment 0
	r.run(t)
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 64, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite})
	r.run(t)
	var lat timing.Time
	start := r.eq.Now()
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 128, OnDone: func(now timing.Time) { lat = now - start }})
	r.run(t)
	// The write must not have closed or moved the open segment.
	want := timing.MemCycles(1) + timing.MemCycles(8)
	if lat != want {
		t.Errorf("read after write latency = %v, want row-hit %v", lat, want)
	}
}

func TestReadPriorityOverWrite(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadForwarding = false })
	// Two writes and one read to the same bank, enqueued together. The
	// first write grabs the bank; the read must overtake write #2.
	var order []string
	enq := func(kind RequestKind, addr uint64, name string) {
		req := &Request{Kind: kind, Addr: addr, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
			OnDone: func(timing.Time) { order = append(order, name) }}
		if !r.ctl.TryEnqueue(req) {
			t.Fatalf("enqueue %s rejected", name)
		}
	}
	enq(WriteReq, 0, "w1")
	enq(WriteReq, 64, "w2")
	enq(ReadReq, 128, "r1")
	r.run(t)
	if len(order) != 3 || order[0] != "r1" {
		t.Errorf("completion order = %v, want r1 first (write pausing + priority)", order)
	}
}

func TestWritePausing(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadForwarding = false })
	var readDone, writeDone timing.Time
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(now timing.Time) { writeDone = now }})
	// Let the write start, then a read arrives mid-pulse.
	r.eq.RunUntil(200 * timing.Nanosecond)
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 64, OnDone: func(now timing.Time) { readDone = now }})
	r.run(t)
	if readDone == 0 || writeDone == 0 {
		t.Fatal("requests did not complete")
	}
	// Unpaused, the write (20ns xfer + 1150ns pulse) would finish at
	// 1170ns and the read at ~1312ns. With pausing the read completes
	// mid-write.
	if readDone >= writeDone {
		t.Errorf("read (%v) should complete before the paused write (%v)", readDone, writeDone)
	}
	if got := r.ctl.Stats().WritePauses; got != 1 {
		t.Errorf("WritePauses = %d, want 1", got)
	}
	// The pause must extend the write: pulse work is conserved.
	if writeDone < timing.Nanoseconds(1170) {
		t.Errorf("write done at %v, earlier than an unpaused write", writeDone)
	}
}

func TestWritePausingDisabled(t *testing.T) {
	r := newRig(t, func(c *Config) { c.WritePausing = false; c.ReadForwarding = false })
	var readDone timing.Time
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite})
	r.eq.RunUntil(200 * timing.Nanosecond)
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 64, OnDone: func(now timing.Time) { readDone = now }})
	r.run(t)
	// Write ends at 1170ns; read must wait for the bank.
	if readDone < timing.Nanoseconds(1170) {
		t.Errorf("read done at %v despite pausing disabled", readDone)
	}
	if got := r.ctl.Stats().WritePauses; got != 0 {
		t.Errorf("WritePauses = %d, want 0", got)
	}
}

func TestRefreshPriorityOverRead(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ReadForwarding = false })
	var order []string
	// Occupy the bank with a write, then queue another write and a
	// refresh. When the bank frees, the refresh must overtake the
	// queued write.
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode3SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(timing.Time) { order = append(order, "w1") }})
	r.eq.RunUntil(50 * timing.Nanosecond)
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 64, Mode: pcm.Mode3SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(timing.Time) { order = append(order, "w2") }})
	r.ctl.TryEnqueue(&Request{Kind: RefreshReq, Addr: 128, Mode: pcm.Mode3SETs, Wear: pcm.WearRRMRefresh,
		OnDone: func(timing.Time) { order = append(order, "f") }})
	r.run(t)
	if len(order) != 3 {
		t.Fatalf("completed %d, want 3: %v", len(order), order)
	}
	if order[1] != "f" {
		t.Errorf("completion order = %v, want [w1 f w2] (refresh priority)", order)
	}
}

func TestWriteQueueBackpressure(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.WriteQueueCap = 2
		c.WriteDrainHigh = 2
		c.WriteDrainLow = 0
		c.ReadForwarding = false
	})
	// Fill channel 0's write queue: all to the same bank so they serialize.
	accepted := 0
	for i := 0; i < 5; i++ {
		req := &Request{Kind: WriteReq, Addr: uint64(i) * 4096 * 4, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite}
		// stride 16KB keeps channel 0 (bits 10-11 zero) and bank 0... bits12-15
		// of 16KB stride vary the bank; instead keep same bank: stride = 1MB.
		req.Addr = uint64(i) << 20
		if r.ctl.TryEnqueue(req) {
			accepted++
		}
	}
	// One write starts immediately (leaves the queue), so cap 2 accepts 3.
	if accepted != 3 {
		t.Errorf("accepted %d writes, want 3 (1 in flight + 2 queued)", accepted)
	}
	if got := r.ctl.Stats().Rejected[WriteReq]; got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	// OnSpace fires once a slot frees.
	fired := false
	r.ctl.OnSpace(WriteReq, 0, func(timing.Time) { fired = true })
	r.run(t)
	if !fired {
		t.Error("OnSpace never fired")
	}
}

func TestReadForwarding(t *testing.T) {
	r := newRig(t, nil)
	// Queue several writes to one bank; a read to a queued address is
	// forwarded without waiting for the bank.
	for i := 0; i < 3; i++ {
		r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: uint64(i) << 20, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite})
	}
	var readDone timing.Time
	r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 2 << 20, OnDone: func(now timing.Time) { readDone = now }})
	want := timing.MemCycles(1) + timing.MemCycles(8)
	r.run(t)
	if readDone != want {
		t.Errorf("forwarded read done at %v, want %v", readDone, want)
	}
	if got := r.ctl.Stats().ReadForwards; got != 1 {
		t.Errorf("forwards = %d, want 1", got)
	}
}

func TestBankParallelism(t *testing.T) {
	r := newRig(t, nil)
	// Two writes to different banks of one channel overlap; completion
	// times differ only by the serialized bus transfer.
	var d1, d2 timing.Time
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0 << 12, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(now timing.Time) { d1 = now }})
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 1 << 12, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(now timing.Time) { d2 = now }})
	r.run(t)
	if d1 == 0 || d2 == 0 {
		t.Fatal("writes did not complete")
	}
	gap := d2 - d1
	if gap != timing.MemCycles(8) {
		t.Errorf("completion gap = %v, want one bus transfer (%v)", gap, timing.MemCycles(8))
	}
}

func TestChannelParallelism(t *testing.T) {
	r := newRig(t, nil)
	var d1, d2 timing.Time
	// Addresses 0 and 1024 differ in channel bits (10-11).
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(now timing.Time) { d1 = now }})
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 1024, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
		OnDone: func(now timing.Time) { d2 = now }})
	if r.ctl.ChannelOf(0) == r.ctl.ChannelOf(1024) {
		t.Fatal("test assumption broken: same channel")
	}
	r.run(t)
	if d1 != d2 {
		t.Errorf("cross-channel writes should fully overlap: %v vs %v", d1, d2)
	}
}

func TestTFAWThrottling(t *testing.T) {
	r := newRig(t, nil)
	// 6 row-miss reads to 6 different banks, same channel: the 5th ACT
	// must wait for the 50ns window.
	var doneTimes []timing.Time
	for b := 0; b < 6; b++ {
		addr := uint64(b) << 12 // bank bits 12-15
		r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: addr,
			OnDone: func(now timing.Time) { doneTimes = append(doneTimes, now) }})
	}
	r.run(t)
	if len(doneTimes) != 6 {
		t.Fatalf("completed %d reads", len(doneTimes))
	}
	// Without tFAW all six reads would ACT at t=0 and finish at
	// 120+2.5+20*k ns. With tFAW(4, 50ns), ACT#5 and #6 wait.
	// The last read cannot complete before 50ns (window) + tRCD + tCAS + xfer.
	minLast := 50*timing.Nanosecond + timing.MemCycles(48) + timing.MemCycles(1) + timing.MemCycles(8)
	if doneTimes[5] < minLast {
		t.Errorf("6th read done at %v, violates tFAW floor %v", doneTimes[5], minLast)
	}
}

func TestRecorderNotifications(t *testing.T) {
	amap, _ := pcm.NewAddressMap(pcm.DefaultDeviceConfig())
	eq := timing.NewEventQueue()
	rec := &countingRecorder{}
	ctl, err := New(DefaultConfig(), amap, eq, rec)
	if err != nil {
		t.Fatal(err)
	}
	ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 0})
	ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 1 << 20, Mode: pcm.Mode3SETs, Wear: pcm.WearDemandWrite})
	ctl.TryEnqueue(&Request{Kind: RefreshReq, Addr: 2 << 20, Mode: pcm.Mode3SETs, Wear: pcm.WearRRMRefresh})
	eq.Drain(10000)
	if rec.reads != 1 || rec.writes != 2 {
		t.Errorf("recorder saw %d reads / %d writes, want 1/2", rec.reads, rec.writes)
	}
	if rec.byKind[pcm.WearRRMRefresh] != 1 {
		t.Errorf("refresh wear not recorded")
	}
}

type countingRecorder struct {
	reads, writes int
	byKind        map[pcm.WearKind]int
}

func (c *countingRecorder) RecordWrite(_ uint64, _ pcm.WriteMode, kind pcm.WearKind) {
	c.writes++
	if c.byKind == nil {
		c.byKind = map[pcm.WearKind]int{}
	}
	c.byKind[kind]++
}
func (c *countingRecorder) RecordRead(uint64) { c.reads++ }

func TestPendingAndQueueLen(t *testing.T) {
	r := newRig(t, nil)
	if r.ctl.Pending() {
		t.Error("idle controller pending")
	}
	r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite})
	if !r.ctl.Pending() {
		t.Error("controller with in-flight write not pending")
	}
	r.run(t)
	if r.ctl.Pending() {
		t.Error("drained controller still pending")
	}
}

func TestManyRandomRequestsQuiesce(t *testing.T) {
	r := newRig(t, nil)
	// Deterministic pseudo-random mix; the controller must serve all
	// requests and quiesce without event storms.
	var served int
	state := uint64(12345)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	total := 2000
	pending := 0
	submit := func() {}
	i := 0
	submit = func() {
		for pending < 32 && i < total {
			addr := next() % (8 << 30)
			var req *Request
			if next()%3 == 0 {
				req = &Request{Kind: WriteReq, Addr: addr, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite}
			} else {
				req = &Request{Kind: ReadReq, Addr: addr}
			}
			req.OnDone = func(timing.Time) { served++; pending--; submit() }
			if !r.ctl.TryEnqueue(req) {
				break
			}
			pending++
			i++
		}
	}
	submit()
	if n := r.eq.Drain(5_000_000); n >= 5_000_000 {
		t.Fatal("did not quiesce")
	}
	if served != total {
		t.Errorf("served %d of %d", served, total)
	}
	s := r.ctl.Stats()
	if s.ReadsServed+s.WritesServed != uint64(total) {
		t.Errorf("stats served = %d, want %d", s.ReadsServed+s.WritesServed, total)
	}
	if s.AvgReadLatency() <= 0 {
		t.Error("no average read latency")
	}
}

func TestRequestKindString(t *testing.T) {
	if ReadReq.String() != "read" || WriteReq.String() != "write" || RefreshReq.String() != "refresh" {
		t.Error("kind strings")
	}
}

func TestStatsAverages(t *testing.T) {
	var s Stats
	if s.AvgReadLatency() != 0 || s.AvgWriteLatency() != 0 || s.AvgRefreshLatency() != 0 {
		t.Error("averages of idle stats should be 0")
	}
	if s.RowBufHitRate() != 0 {
		t.Error("idle hit rate")
	}
	s.ReadsServed, s.ReadLatencySum = 2, 100
	if s.AvgReadLatency() != 50 {
		t.Error("avg read latency")
	}
	s.RowBufHits, s.RowBufMisses = 3, 1
	if s.RowBufHitRate() != 0.75 {
		t.Error("hit rate")
	}
}
