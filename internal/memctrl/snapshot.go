package memctrl

import (
	"fmt"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

const snapSection = 0x4D43 // "MC"

// OwnerResolver rebuilds a demand read's completion callback from the
// owner identity recorded in a snapshot (closures cannot travel). The
// simulator supplies cpu.Core.MissCallback.
type OwnerResolver func(core int, store bool, inst uint64) func(timing.Time)

// putReq serializes the portable payload of a queued or in-flight
// request. loc and rowTag are recomputed from Addr on restore.
func putReq(w *snapshot.Writer, r *Request) error {
	if !r.pooled {
		return fmt.Errorf("memctrl: snapshot requires pooled requests")
	}
	if r.OnDone != nil && r.OwnerCore == OwnerNone {
		return fmt.Errorf("memctrl: request %v@%#x has an OnDone callback but no owner identity", r.Kind, r.Addr)
	}
	w.U8(uint8(r.Kind))
	w.U64(r.Addr)
	w.U8(uint8(r.Mode))
	w.U8(uint8(r.Wear))
	w.I64(int64(r.enqueuedAt))
	w.I64(int64(r.OwnerCore))
	w.Bool(r.OwnerStore)
	w.U64(r.OwnerInst)
	return nil
}

// getReq acquires a pooled request and loads a putReq payload into it,
// rebuilding the completion callback through resolve when the request
// has an owner.
func (c *Controller) getReq(r *snapshot.Reader, resolve OwnerResolver) *Request {
	req := c.AcquireRequest()
	req.Kind = RequestKind(r.U8())
	req.Addr = r.U64()
	req.Mode = pcm.WriteMode(r.U8())
	req.Wear = pcm.WearKind(r.U8())
	req.enqueuedAt = timing.Time(r.I64())
	req.OwnerCore = int(r.I64())
	req.OwnerStore = r.Bool()
	req.OwnerInst = r.U64()
	req.loc = c.amap.Decode(req.Addr)
	if req.OwnerCore != OwnerNone && resolve != nil {
		req.OnDone = resolve(req.OwnerCore, req.OwnerStore, req.OwnerInst)
	}
	return req
}

// Snapshot writes the controller's full scheduling state: per-channel
// queues, bank occupancy with in-flight (possibly paused) writes, bus and
// tFAW timing, drain hysteresis, armed wakeups, plus the in-flight read
// list and aggregate stats. Pending events are recorded as (time, seq)
// descriptors. Space waiters are deliberately not serialized: they are
// re-registered by their owner (the simulator backend) on restore, and
// waiter-delivery events never straddle a snapshot boundary (they are
// scheduled at the current instant and have always drained).
func (c *Controller) Snapshot(w *snapshot.Writer) error {
	w.Section(snapSection)
	w.U32(uint32(len(c.chans)))
	for _, ch := range c.chans {
		w.Bool(ch.draining)
		w.I64(int64(ch.busFreeAt))
		w.U32(uint32(ch.actIdx))
		w.U32(uint32(len(ch.actTimes)))
		for _, t := range ch.actTimes {
			w.I64(int64(t))
		}
		w.U32(uint32(len(ch.banks)))
		for i := range ch.banks {
			b := &ch.banks[i]
			w.I64(int64(ch.bankFree[i]))
			w.U64(b.openTag)
			w.Bool(b.hasOpen)
			w.Bool(b.wr != nil)
			if b.wr == nil {
				continue
			}
			wr := b.wr
			if err := putReq(w, wr.req); err != nil {
				return err
			}
			w.I64(int64(wr.runStart))
			w.Bool(wr.runHasReset)
			w.U32(uint32(wr.setsLeft))
			w.Bool(wr.paused)
			w.Bool(wr.pausePending)
			w.Bool(wr.completion.Valid())
			if wr.completion.Valid() {
				// The completion time is derived (completionTime());
				// only the dispatch-order seq needs recording.
				w.I64(wr.completion.Seq())
			}
			if wr.pausePending {
				w.I64(int64(wr.pauseEvAt))
				w.I64(wr.pauseEvSeq)
			}
		}
		for kind := RequestKind(0); kind < numKinds; kind++ {
			q := ch.queues[kind]
			w.U32(uint32(len(q)))
			for _, r := range q {
				if err := putReq(w, r); err != nil {
					return err
				}
			}
		}
		// The wakeup lives in a heap event (serial engine) or a timer slot
		// (sharded engine); both carry the same (at, seq) position, so the
		// snapshot bytes are identical whichever engine wrote them.
		armed := ch.wakeupEv.Valid() || (ch.fast && ch.timer.Armed())
		w.Bool(armed)
		if armed {
			w.I64(int64(ch.wakeupAt))
			if ch.fast {
				w.I64(ch.timer.Seq())
			} else {
				w.I64(ch.wakeupEv.Seq())
			}
		}
	}
	w.U32(uint32(len(c.inflight)))
	for _, r := range c.inflight {
		if err := putReq(w, r); err != nil {
			return err
		}
		w.Bool(r.forwarded)
		w.I64(int64(r.doneAt))
		w.I64(r.doneSeq)
	}
	return w.JSON(c.stats)
}

// Restore loads state written by Snapshot into a same-configuration
// controller and appends every recorded pending event (write completions,
// pause boundaries, read completions, channel wakeups) to pend for
// re-scheduling. It never kicks the scheduler: the re-armed events resume
// the exact dispatch sequence of the snapshotted run.
func (c *Controller) Restore(r *snapshot.Reader, resolve OwnerResolver, pend *[]timing.Pending) {
	r.Section(snapSection)
	if n := r.U32(); r.Err() == nil && int(n) != len(c.chans) {
		r.Fail("memctrl: snapshot has %d channels, live controller %d", n, len(c.chans))
		return
	}
	for _, ch := range c.chans {
		cch := ch // pinned for the re-arm closures below
		ch.draining = r.Bool()
		ch.pausedMask, ch.pausableMask, ch.wrMask = 0, 0, 0
		// Lazy superset: every bank starts presumed busy; the first
		// wakeup scan prunes the finished ones.
		ch.busyMask = ch.bankMaskAll
		ch.busFreeAt = timing.Time(r.I64())
		ch.actIdx = int(r.U32())
		if n := r.U32(); r.Err() == nil && int(n) != len(ch.actTimes) {
			r.Fail("memctrl: snapshot has %d activation slots, live controller %d", n, len(ch.actTimes))
			return
		}
		for i := range ch.actTimes {
			ch.actTimes[i] = timing.Time(r.I64())
		}
		if ch.actIdx < 0 || ch.actIdx >= len(ch.actTimes) {
			r.Fail("memctrl: activation index %d out of range", ch.actIdx)
			return
		}
		if n := r.U32(); r.Err() == nil && int(n) != len(ch.banks) {
			r.Fail("memctrl: snapshot has %d banks, live controller %d", n, len(ch.banks))
			return
		}
		for i := range ch.banks {
			b := &ch.banks[i]
			ch.bankFree[i] = timing.Time(r.I64())
			b.openTag = r.U64()
			b.hasOpen = r.Bool()
			hasWr := r.Bool()
			b.wr = nil
			if !hasWr {
				continue
			}
			if r.Err() != nil {
				return
			}
			wr := ch.acquireWrite()
			wr.req = c.getReq(r, resolve)
			wr.bank = i
			wr.runStart = timing.Time(r.I64())
			wr.runHasReset = r.Bool()
			wr.setsLeft = int(r.U32())
			wr.paused = r.Bool()
			wr.pausePending = r.Bool()
			hasCompletion := r.Bool()
			b.wr = wr
			ch.wrMask |= 1 << uint(i)
			if wr.paused {
				ch.pausedMask |= 1 << uint(i)
			} else if !wr.pausePending {
				ch.pausableMask |= 1 << uint(i)
			}
			if hasCompletion {
				seq := r.I64()
				at := wr.completionTime()
				*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
					wr.completion = cch.eq.Schedule(at, wr.completeFn)
				}})
			}
			if wr.pausePending {
				wr.pauseEvAt = timing.Time(r.I64())
				wr.pauseEvSeq = r.I64()
				*pend = append(*pend, timing.Pending{At: wr.pauseEvAt, Seq: wr.pauseEvSeq, Arm: func() {
					wr.pauseEvSeq = cch.eq.Schedule(wr.pauseEvAt, wr.pauseFn).Seq()
				}})
			}
		}
		for i := range ch.readsPerBank {
			ch.readsPerBank[i] = 0
			ch.writesPerBank[i] = 0
			ch.refreshPerBank[i] = 0
		}
		ch.readsMask, ch.writesMask, ch.refreshMask = 0, 0, 0
		for k := range ch.blockWrites {
			delete(ch.blockWrites, k)
		}
		for kind := RequestKind(0); kind < numKinds; kind++ {
			n := r.Count(1 << 20)
			ch.queues[kind] = ch.queues[kind][:0]
			for i := 0; i < n; i++ {
				if r.Err() != nil {
					return
				}
				req := c.getReq(r, resolve)
				switch kind {
				case ReadReq:
					req.rowTag = c.amap.RowBufferTag(req.Addr)
					ch.readsPerBank[req.loc.Bank]++
					ch.readsMask |= 1 << uint(req.loc.Bank)
				case WriteReq:
					ch.writesPerBank[req.loc.Bank]++
					ch.writesMask |= 1 << uint(req.loc.Bank)
					if ch.blockWrites != nil {
						ch.blockWrites[req.Addr&^63]++
					}
				default:
					ch.refreshPerBank[req.loc.Bank]++
					ch.refreshMask |= 1 << uint(req.loc.Bank)
					if ch.blockWrites != nil {
						ch.blockWrites[req.Addr&^63]++
					}
				}
				ch.queues[kind] = append(ch.queues[kind], req)
			}
		}
		if r.Bool() {
			at := timing.Time(r.I64())
			seq := r.I64()
			*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
				cch.wakeupAt = at
				if cch.fast {
					cch.timer.Arm(cch.eq, at) // draws the next seq, like Schedule
				} else {
					cch.wakeupEv = cch.eq.Schedule(at, cch.wakeupFn)
				}
			}})
		}
	}
	c.inflight = c.inflight[:0]
	n := r.Count(1 << 20)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		req := c.getReq(r, resolve)
		req.forwarded = r.Bool()
		at := timing.Time(r.I64())
		seq := r.I64()
		rr := req
		*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
			c.trackFlight(rr, at, c.chans[rr.loc.Channel].eq.Schedule(at, rr.doneFn).Seq())
		}})
	}
	c.stats = Stats{}
	r.JSON(&c.stats)
}
