package memctrl

import (
	"testing"
	"testing/quick"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// TestEveryRequestCompletes is the controller's liveness property: any
// admitted request completes exactly once, regardless of the mix.
func TestEveryRequestCompletes(t *testing.T) {
	f := func(seed uint32, nOps uint8) bool {
		r := newRig(t, nil)
		state := uint64(seed) | 1
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		want := 0
		got := map[int]int{}
		for i := 0; i < int(nOps); i++ {
			id := i
			req := &Request{
				Addr:   next() % (8 << 30),
				OnDone: func(timing.Time) { got[id]++ },
			}
			switch next() % 3 {
			case 0:
				req.Kind = ReadReq
			case 1:
				req.Kind = WriteReq
				req.Mode = pcm.Modes()[next()%5]
				req.Wear = pcm.WearDemandWrite
			default:
				req.Kind = RefreshReq
				req.Mode = pcm.Mode3SETs
				req.Wear = pcm.WearRRMRefresh
			}
			if r.ctl.TryEnqueue(req) {
				want++
			}
			// Interleave some progress so queues drain.
			if i%7 == 0 {
				r.eq.Step()
			}
		}
		r.eq.Drain(1_000_000)
		if r.ctl.Pending() {
			return false
		}
		done := 0
		for _, n := range got {
			if n != 1 {
				return false // completed zero or multiple times
			}
			done++
		}
		return done == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWorkConservation: total bank-busy time can never exceed
// banks x elapsed time, and every served write accounts at least its
// pulse latency of service.
func TestWorkConservation(t *testing.T) {
	r := newRig(t, nil)
	state := uint64(99)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	served := 0
	for i := 0; i < 500; i++ {
		req := &Request{Kind: WriteReq, Addr: next() % (8 << 30),
			Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite,
			OnDone: func(timing.Time) { served++ }}
		if !r.ctl.TryEnqueue(req) {
			r.eq.Step()
		}
		if i%3 == 0 {
			r.eq.Step()
		}
	}
	r.run(t)
	elapsed := r.eq.Now()
	busy := r.ctl.Stats().BankBusy
	if busy > elapsed*64 {
		t.Errorf("bank busy %v exceeds %d banks x %v elapsed", busy, 64, elapsed)
	}
	minBusy := timing.Time(served) * pcm.Latency(pcm.Mode7SETs)
	if busy < minBusy {
		t.Errorf("bank busy %v below the %d writes' pulse time %v", busy, served, minBusy)
	}
}

// TestPausedWriteConservesPulseWork: however often a write is paused,
// the sum of its executed SET iterations equals the mode's total — its
// completion time grows, never shrinks.
func TestPausedWriteConservesPulseWork(t *testing.T) {
	f := func(readGapsRaw [4]uint16) bool {
		r := newRig(t, func(c *Config) { c.ReadForwarding = false })
		var writeDone timing.Time
		r.ctl.TryEnqueue(&Request{Kind: WriteReq, Addr: 0, Mode: pcm.Mode7SETs,
			Wear: pcm.WearDemandWrite, OnDone: func(now timing.Time) { writeDone = now }})
		at := 30 * timing.Nanosecond
		for _, g := range readGapsRaw {
			at += timing.Time(g%1000) * timing.Nanosecond
			at = timing.Max(at, r.eq.Now())
			r.eq.RunUntil(at)
			if writeDone != 0 {
				break
			}
			r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: 64})
		}
		r.eq.Drain(1_000_000)
		// Unpaused minimum: bus transfer + full pulse.
		min := timing.MemCycles(8) + pcm.Latency(pcm.Mode7SETs)
		return writeDone >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDrainModeHysteresis: a channel enters drain mode at the high
// watermark and the write queue never exceeds its capacity.
func TestDrainModeHysteresis(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.WriteQueueCap = 16
		c.WriteDrainHigh = 8
		c.WriteDrainLow = 2
		c.ReadForwarding = false
	})
	// Flood one bank with writes, reads interleaved.
	enqueued := 0
	for i := 0; i < 200; i++ {
		req := &Request{Kind: WriteReq, Addr: uint64(i) << 20, Mode: pcm.Mode7SETs, Wear: pcm.WearDemandWrite}
		if r.ctl.TryEnqueue(req) {
			enqueued++
		}
		r.ctl.TryEnqueue(&Request{Kind: ReadReq, Addr: uint64(i)<<20 + 64})
		if r.ctl.QueueLen(0, WriteReq) > 16 {
			t.Fatal("write queue exceeded capacity")
		}
		if i%2 == 0 {
			r.eq.Step()
		}
	}
	r.run(t)
	if r.ctl.Stats().DrainEntries == 0 {
		t.Error("flood never triggered drain mode")
	}
	if enqueued == 0 {
		t.Error("nothing enqueued")
	}
}
