// Package wearlevel implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009), the scheme the paper's Table V assumes when it credits the
// memory with 95 % of the average cell lifetime.
//
// Start-Gap keeps one spare line (the gap). Every Psi writes, the line
// adjacent to the gap is copied into it, moving the gap one slot up the
// array (wrapping from the top back to the bottom); over time every
// logical line migrates across all physical positions, so write hotspots
// are spread over the whole device at a 1/Psi write overhead. The
// hardware performs the logical→physical translation with just two
// registers (START and GAP); this simulation model keeps the equivalent
// explicit permutation, updated in O(1) per gap move, because we want
// the measured wear distribution, not a gate-count estimate.
//
// The scheme also applies a *static address randomization* in front of
// the rotation: without it an adversary (or an unlucky regular pattern)
// that tracks the gap can keep writing whatever line currently sits at
// one chosen physical position, concentrating all wear there. See the
// gap-chase test.
//
// The package validates the paper's 95 % assumption rather than being
// wired into the timing simulator (the paper, too, applies Start-Gap as
// a derating factor): the Efficiency experiment replays a hot-skewed
// write stream through the rotation and compares the most-worn line
// against the average.
package wearlevel

import "fmt"

// StartGap levels wear across N lines with one spare.
type StartGap struct {
	n     uint64 // logical lines
	psi   uint64 // writes between gap movements
	gap   uint64 // current physical position of the spare
	count uint64 // writes since the last gap movement

	pos     []uint64 // logical line -> physical position
	content []int64  // physical position -> logical line (-1: the gap)

	// mult implements the static address-space randomization: logical
	// lines are permuted by multiplication with a constant coprime to
	// n before the rotation mapping.
	mult uint64

	writes     uint64
	gapMoves   uint64
	lineWrites []uint64 // physical wear, including gap-movement copies
}

// New builds a leveler over n lines moving the gap every psi writes,
// with static address randomization enabled. The paper's source uses
// psi=100, trading 1 % write overhead for near-perfect leveling.
func New(n, psi uint64) (*StartGap, error) { return build(n, psi, true) }

// NewUnrandomized builds the plain rotation without the randomization
// layer, exposing its gap-chase pathology (tests, teaching).
func NewUnrandomized(n, psi uint64) (*StartGap, error) { return build(n, psi, false) }

func build(n, psi uint64, randomize bool) (*StartGap, error) {
	if n < 2 {
		return nil, fmt.Errorf("wearlevel: need at least 2 lines, have %d", n)
	}
	if psi == 0 {
		return nil, fmt.Errorf("wearlevel: psi must be positive")
	}
	s := &StartGap{
		n:          n,
		psi:        psi,
		gap:        n, // the spare starts after the last line
		mult:       1,
		pos:        make([]uint64, n),
		content:    make([]int64, n+1),
		lineWrites: make([]uint64, n+1),
	}
	for i := uint64(0); i < n; i++ {
		s.pos[i] = i
		s.content[i] = int64(i)
	}
	s.content[n] = -1
	if randomize {
		// A fixed odd multiplier coprime to n permutes the logical
		// space; the loop guarantees coprimality for any n.
		s.mult = 0x9E37 | 1
		for gcd(s.mult, n) != 1 {
			s.mult += 2
		}
	}
	return s, nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Translate maps a logical line to its current physical line.
func (s *StartGap) Translate(logical uint64) uint64 {
	if logical >= s.n {
		panic(fmt.Sprintf("wearlevel: logical line %d out of %d", logical, s.n))
	}
	return s.pos[(logical*s.mult)%s.n]
}

// Write records a write to a logical line, moving the gap every psi
// writes. It returns the physical line written.
func (s *StartGap) Write(logical uint64) uint64 {
	phys := s.Translate(logical)
	s.lineWrites[phys]++
	s.writes++
	s.count++
	if s.count >= s.psi {
		s.count = 0
		s.moveGap()
	}
	return phys
}

// moveGap copies the line adjacent to the gap into the gap — one extra
// physical write to the destination (reads are free) — moving the gap
// one slot toward position 0 and wrapping from 0 back to the top.
func (s *StartGap) moveGap() {
	s.gapMoves++
	src := s.gap - 1
	if s.gap == 0 {
		src = s.n // wrap: the top line moves into position 0
	}
	line := s.content[src]
	s.content[s.gap] = line
	s.content[src] = -1
	s.pos[line] = s.gap
	s.lineWrites[s.gap]++
	s.gap = src
}

// Efficiency returns the achieved fraction of the average-cell lifetime:
// avg(physical wear) / max(physical wear). 1.0 is perfect leveling; the
// paper assumes >= 0.95 for this scheme.
func (s *StartGap) Efficiency() float64 {
	var sum, max uint64
	for _, w := range s.lineWrites {
		sum += w
		if w > max {
			max = w
		}
	}
	if max == 0 {
		return 1
	}
	avg := float64(sum) / float64(len(s.lineWrites))
	return avg / float64(max)
}

// Stats returns raw counters: demand writes, gap movements (each is one
// extra physical write), and the write overhead fraction.
func (s *StartGap) Stats() (writes, gapMoves uint64, overhead float64) {
	if s.writes == 0 {
		return s.writes, s.gapMoves, 0
	}
	return s.writes, s.gapMoves, float64(s.gapMoves) / float64(s.writes)
}

// MaxWear returns the most-worn physical line's write count.
func (s *StartGap) MaxWear() uint64 {
	var max uint64
	for _, w := range s.lineWrites {
		if w > max {
			max = w
		}
	}
	return max
}
