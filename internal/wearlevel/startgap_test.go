package wearlevel

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 100); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("psi=0 accepted")
	}
	if _, err := New(16, 100); err != nil {
		t.Error(err)
	}
}

func TestTranslateIsBijective(t *testing.T) {
	// At any point during rotation, Translate must map the n logical
	// lines onto n distinct physical lines, none of them the gap.
	s, err := New(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		seen := map[uint64]bool{}
		for l := uint64(0); l < 16; l++ {
			p := s.Translate(l)
			if p > 16 {
				t.Fatalf("physical line %d out of range", p)
			}
			if p == s.gap {
				t.Fatalf("logical %d mapped onto the gap (%d)", l, s.gap)
			}
			if seen[p] {
				t.Fatalf("collision at physical %d", p)
			}
			seen[p] = true
		}
	}
	check()
	for i := 0; i < 200; i++ { // drive through several full rotations
		s.Write(uint64(i) % 16)
		check()
	}
}

func TestTranslatePanicsOutOfRange(t *testing.T) {
	s, _ := New(8, 10)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Translate(8)
}

func TestGapRotation(t *testing.T) {
	s, _ := New(4, 1) // gap moves on every write
	// After n+1 = 5 gap movements the gap is back at position n and
	// start has advanced once.
	for i := 0; i < 5; i++ {
		s.Write(0)
	}
	if s.gap != 4 {
		t.Errorf("gap=%d, want 4 after a full rotation (4 moves down + wrap)", s.gap)
	}
	_, moves, overhead := s.Stats()
	if moves != 5 {
		t.Errorf("gap moves = %d", moves)
	}
	if overhead != 1.0 {
		t.Errorf("overhead = %v with psi=1", overhead)
	}
}

func TestHotLineGetsLeveled(t *testing.T) {
	// Hammering a single logical line must spread across all physical
	// lines once the gap has rotated enough.
	s, _ := New(64, 10)
	for i := 0; i < 64*65*10*2; i++ { // several full rotations
		s.Write(0)
	}
	eff := s.Efficiency()
	if eff < 0.90 {
		t.Errorf("single-hot-line efficiency = %.3f, want >= 0.90", eff)
	}
}

func TestPaper95PercentAssumption(t *testing.T) {
	// A power-law-skewed stream (the Table III shape) over many lines
	// must reach the >= 95%-of-average-lifetime figure the paper's
	// Table V assumes with psi=100.
	s, _ := New(256, 50)
	state := uint64(42)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	// Two full START cycles of a skewed stream.
	for i := 0; i < 2*257*257*50; i++ {
		u := float64(next()>>11) / (1 << 53)
		line := uint64(u * u * 256) // quadratic skew toward line 0
		if line >= 256 {
			line = 255
		}
		s.Write(line)
	}
	if eff := s.Efficiency(); eff < 0.95 {
		t.Errorf("efficiency = %.3f, want >= 0.95 (paper Table V assumption)", eff)
	}
	_, _, overhead := s.Stats()
	if overhead > 0.021 {
		t.Errorf("write overhead = %.4f, want ~2%% at psi=50", overhead)
	}
}

func TestSequentialStreamFullCycle(t *testing.T) {
	// Leveling needs the START register to sweep its full n+1 values
	// (n+1 rotations of n+1 gap moves); over full cycles a sequential
	// sweep levels near-perfectly with or without randomization.
	run := func(s *StartGap) float64 {
		for i := 0; i < 3*65*65*16; i++ { // 3 full START cycles at n=64, psi=16
			s.Write(uint64(i) % 64)
		}
		return s.Efficiency()
	}
	plain, _ := NewUnrandomized(64, 16)
	randomized, _ := New(64, 16)
	if eff := run(plain); eff < 0.95 {
		t.Errorf("plain sequential efficiency = %.3f, want >= 0.95", eff)
	}
	if eff := run(randomized); eff < 0.95 {
		t.Errorf("randomized sequential efficiency = %.3f, want >= 0.95", eff)
	}
}

func TestGapChaseAttackNeedsRandomization(t *testing.T) {
	// The malicious pattern Start-Gap's address randomization exists
	// for: an attacker who knows the (identity) mapping always writes
	// the logical line currently sitting at physical position 0,
	// concentrating all wear there. With a secret randomized mapping
	// the same strategy scatters.
	attack := func(s *StartGap) float64 {
		for i := 0; i < 200_000; i++ {
			// The attacker observes which un-randomized line sits at
			// physical position 0 (content is rotation-space) and
			// writes that logical address, assuming mult == 1.
			line := s.content[0]
			if line < 0 {
				line = s.content[1]
			}
			s.Write(uint64(line))
		}
		return s.Efficiency()
	}
	plain, _ := NewUnrandomized(64, 100)
	randomized, _ := New(64, 100)
	plainEff, randEff := attack(plain), attack(randomized)
	if plainEff > 0.5 {
		t.Errorf("gap-chase vs plain mapping: efficiency %.3f, expected collapse (< 0.5)", plainEff)
	}
	if randEff < 2*plainEff {
		t.Errorf("randomization did not defend: plain %.3f vs randomized %.3f", plainEff, randEff)
	}
}

func TestEfficiencyIdle(t *testing.T) {
	s, _ := New(8, 10)
	if s.Efficiency() != 1 {
		t.Error("idle efficiency should be 1")
	}
	if s.MaxWear() != 0 {
		t.Error("idle max wear")
	}
	w, g, o := s.Stats()
	if w != 0 || g != 0 || o != 0 {
		t.Error("idle stats")
	}
}

func TestTranslationStableBetweenMoves(t *testing.T) {
	// Between gap movements the mapping must not change.
	f := func(seed uint8) bool {
		s, _ := New(32, 1000)
		for i := 0; i < int(seed); i++ {
			s.Write(uint64(i) % 32)
		}
		before := make([]uint64, 32)
		for l := uint64(0); l < 32; l++ {
			before[l] = s.Translate(l)
		}
		// Writes below psi boundary: no movement expected if count+k < psi.
		for i := 0; i < 5; i++ {
			s.Write(7)
		}
		if s.count == 0 {
			return true // a move happened; mapping may legitimately change
		}
		for l := uint64(0); l < 32; l++ {
			if s.Translate(l) != before[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContentTrackingInvariant(t *testing.T) {
	// Golden invariant: simulate the physical copies the gap movement
	// performs and verify Translate always points at the slot that
	// actually holds each logical line's content.
	const n = 8
	s, err := NewUnrandomized(n, 1) // move on every write, identity mapping
	if err != nil {
		t.Fatal(err)
	}
	content := make([]int64, n+1)
	for i := 0; i < n; i++ {
		content[i] = int64(i)
	}
	content[n] = -1 // the spare/gap
	gap := uint64(n)

	for step := 0; step < 5*(n+1)*(n+1); step++ {
		s.Write(uint64(step) % n)
		// Mirror the move the Write just triggered (psi=1).
		if gap == 0 {
			content[0] = content[n]
			content[n] = -1
			gap = n
		} else {
			content[gap] = content[gap-1]
			content[gap-1] = -1
			gap--
		}
		for l := uint64(0); l < n; l++ {
			p := s.Translate(l)
			if content[p] != int64(l) {
				t.Fatalf("step %d: logical %d -> phys %d holds %d (gap=%d)",
					step, l, p, content[p], gap)
			}
		}
	}
}

func TestGapWrapInvariants(t *testing.T) {
	// Step move-by-move through the gap's wrap from position 0 back to
	// position n, checking after every single move that translation is
	// still a bijection and pos/content stay mutually consistent. The
	// wrap (gap==0 -> src=n) is the one special case in moveGap.
	const n = 6
	s, err := NewUnrandomized(n, 1) // psi=1: every write moves the gap
	if err != nil {
		t.Fatal(err)
	}
	check := func(step int) {
		t.Helper()
		seen := make(map[uint64]bool, n)
		for l := uint64(0); l < n; l++ {
			p := s.Translate(l)
			if p > n {
				t.Fatalf("step %d: line %d at impossible position %d", step, l, p)
			}
			if seen[p] {
				t.Fatalf("step %d: two lines share position %d", step, p)
			}
			seen[p] = true
			if s.content[p] != int64(l) {
				t.Fatalf("step %d: content[%d]=%d, want %d", step, p, s.content[p], l)
			}
		}
		if seen[s.gap] {
			t.Fatalf("step %d: a line sits on the gap position %d", step, s.gap)
		}
		if s.content[s.gap] != -1 {
			t.Fatalf("step %d: gap position %d holds line %d", step, s.gap, s.content[s.gap])
		}
	}
	check(0)
	// Two full rotations: the gap walks n..0, wraps to n, and repeats.
	wraps := 0
	for i := 1; i <= 2*(n+1); i++ {
		before := s.gap
		s.Write(uint64(i) % n)
		check(i)
		if before == 0 {
			if s.gap != n {
				t.Fatalf("step %d: gap at 0 moved to %d, want wrap to %d", i, s.gap, n)
			}
			wraps++
		} else if s.gap != before-1 {
			t.Fatalf("step %d: gap moved %d -> %d, want %d", i, before, s.gap, before-1)
		}
	}
	if wraps != 2 {
		t.Fatalf("saw %d wraps in two full rotations, want 2", wraps)
	}
	// Each gap move cost exactly one extra physical write.
	writes, moves, _ := s.Stats()
	var phys uint64
	for _, w := range s.lineWrites {
		phys += w
	}
	if phys != writes+moves {
		t.Fatalf("physical writes %d != demand %d + moves %d", phys, writes, moves)
	}
}
