package wearlevel

import "rrmpcm/internal/snapshot"

const snapSection = 0x5347 // "SG"

// Snapshot writes the leveler's full rotation state: the gap registers,
// both permutation directions and the physical wear counts. The
// geometry (n, psi, mult) is included so Restore can reject blobs from
// a differently built leveler.
func (s *StartGap) Snapshot(w *snapshot.Writer) {
	w.Section(snapSection)
	w.U64(s.n)
	w.U64(s.psi)
	w.U64(s.mult)
	w.U64(s.gap)
	w.U64(s.count)
	w.U64(s.writes)
	w.U64(s.gapMoves)
	for _, v := range s.pos {
		w.U64(v)
	}
	for _, v := range s.content {
		w.I64(v)
	}
	for _, v := range s.lineWrites {
		w.U64(v)
	}
}

// Restore loads state written by Snapshot into a leveler built with the
// same parameters.
func (s *StartGap) Restore(r *snapshot.Reader) {
	r.Section(snapSection)
	if n := r.U64(); r.Err() == nil && n != s.n {
		r.Fail("wearlevel: snapshot has %d lines, live leveler %d", n, s.n)
		return
	}
	if psi := r.U64(); r.Err() == nil && psi != s.psi {
		r.Fail("wearlevel: snapshot psi %d, live leveler %d", psi, s.psi)
		return
	}
	if mult := r.U64(); r.Err() == nil && mult != s.mult {
		r.Fail("wearlevel: snapshot multiplier %d, live leveler %d", mult, s.mult)
		return
	}
	s.gap = r.U64()
	s.count = r.U64()
	s.writes = r.U64()
	s.gapMoves = r.U64()
	for i := range s.pos {
		s.pos[i] = r.U64()
	}
	for i := range s.content {
		s.content[i] = r.I64()
	}
	for i := range s.lineWrites {
		s.lineWrites[i] = r.U64()
	}
}
