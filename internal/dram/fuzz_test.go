package dram

import (
	"testing"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// FuzzHybridConfig throws arbitrary hybrid parameters at Validate and
// demands the gate be exact: every accepted configuration must build a
// working stack (device, migrator) and survive a functional traffic
// burst without panicking, with the occupancy invariants intact.
func FuzzHybridConfig(f *testing.F) {
	d := DefaultHybridConfig()
	f.Add(d.DRAM.CapBytes, d.DRAM.Banks,
		int64(d.DRAM.TRCD), int64(d.DRAM.TCAS), int64(d.DRAM.TWR), int64(d.DRAM.BusXfer),
		int64(d.DRAM.TREFI), int64(d.DRAM.TRFC),
		d.Migration.PageBytes, true, d.Migration.PromoteThreshold,
		d.Migration.AgeInterval, d.Migration.DemoteBatch, d.Migration.DirtyHighWater)
	f.Add(uint64(1024), 2, int64(10), int64(5), int64(4), int64(2), int64(0), int64(0),
		uint64(256), false, 2, 16, 2, 0.5)
	f.Add(uint64(0), -1, int64(-5), int64(0), int64(-1), int64(0), int64(3), int64(7),
		uint64(7), true, 0, 0, 0, -2.0)

	pcmCfg := pcm.DeviceConfig{
		MemBytes:            1 << 20,
		Channels:            1,
		Banks:               2,
		RowBytes:            1024,
		RowBufBytes:         256,
		BlockBytes:          64,
		EnduranceWrites:     5e6,
		WearLevelEfficiency: 0.95,
	}

	f.Fuzz(func(t *testing.T, capBytes uint64, banks int,
		trcd, tcas, twr, bus, trefi, trfc int64,
		pageBytes uint64, wcount bool, threshold, age, batch int, highWater float64) {
		policy := PolicyRecency
		if wcount {
			policy = PolicyWriteCount
		}
		hc := HybridConfig{
			DRAM: DeviceConfig{
				CapBytes: capBytes,
				Banks:    banks,
				TRCD:     timing.Time(trcd),
				TCAS:     timing.Time(tcas),
				TWR:      timing.Time(twr),
				BusXfer:  timing.Time(bus),
				TREFI:    timing.Time(trefi),
				TRFC:     timing.Time(trfc),
			},
			Migration: MigrationConfig{
				PageBytes:        pageBytes,
				Policy:           policy,
				PromoteThreshold: threshold,
				AgeInterval:      age,
				DemoteBatch:      batch,
				DirtyHighWater:   highWater,
			},
		}
		if err := hc.Validate(pcmCfg); err != nil {
			return
		}
		amap, err := pcm.NewAddressMap(pcmCfg)
		if err != nil {
			t.Fatalf("valid PCM config rejected: %v", err)
		}
		eq := timing.NewEventQueue()
		ctl, err := memctrl.New(memctrl.DefaultConfig(), amap, eq, nil)
		if err != nil {
			t.Fatal(err)
		}
		dev, err := NewDevice(hc.DRAM, amap, eq)
		if err != nil {
			t.Fatalf("validated DRAM config rejected by NewDevice: %v", err)
		}
		m, err := NewMigrator(hc.Migration, ctl, dev, amap, eq, fixedMode{})
		if err != nil {
			t.Fatalf("validated migration config rejected by NewMigrator: %v", err)
		}
		m.SetFunctionalWriter(func(uint64, pcm.WriteMode) {})

		capPages := int(capBytes / pageBytes)
		addr := uint64(0)
		for i := 0; i < 512; i++ {
			addr = (addr*6364136223846793005 + 1442695040888963407) % pcmCfg.MemBytes
			blk := addr &^ (pcmCfg.BlockBytes - 1)
			if i%3 == 0 {
				m.FunctionalRead(blk, timing.Time(i))
			} else {
				m.FunctionalWrite(blk, timing.Time(i))
			}
			if rp := m.ResidentPages(); rp > capPages {
				t.Fatalf("resident pages %d exceed capacity %d", rp, capPages)
			}
			if dp := m.DirtyPages(); dp > m.ResidentPages() {
				t.Fatalf("dirty pages %d exceed resident %d", dp, m.ResidentPages())
			}
		}
	})
}
