package dram

import (
	"fmt"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// Stats are the DRAM array's aggregate counters. Reads/Writes include
// migration fills; Fills counts the fill subset.
type Stats struct {
	Reads  uint64
	Writes uint64
	Fills  uint64

	RowHits       uint64
	RowMisses     uint64
	RefreshStalls uint64

	ReadLatencySum timing.Time
	ReadLatencyMax timing.Time

	EnergyReadJ  float64
	EnergyWriteJ float64
}

// RowHitRate returns the row-buffer hit fraction.
func (s Stats) RowHitRate() float64 {
	if t := s.RowHits + s.RowMisses; t > 0 {
		return float64(s.RowHits) / float64(t)
	}
	return 0
}

type dbank struct {
	freeAt  timing.Time
	openTag uint64
	hasOpen bool
}

type dchannel struct {
	busFreeAt timing.Time
	banks     []dbank
}

// readOp is one in-flight DRAM read: the completion callback plus the
// owner identity that lets a snapshot rebuild it. The event callback is
// bound once per pooled object.
type readOp struct {
	d          *Device
	addr       uint64
	done       func(timing.Time)
	ownerCore  int
	ownerStore bool
	ownerInst  uint64

	at  timing.Time
	seq int64
	idx int
	fn  func(timing.Time)
}

// Device is the DRAM staging array: immediate bank/bus scheduling (the
// staging tier is small and keeps no queues — contention shows up as
// start-time displacement), row-buffer hit/miss latencies and periodic
// refresh windows. Writes are posted (no completion callback); bank state
// carries their occupancy for Pending.
type Device struct {
	cfg   DeviceConfig
	amap  *pcm.AddressMap
	eq    *timing.EventQueue
	chans []dchannel
	stats Stats

	bankMask int

	opFree []*readOp
	live   []*readOp
}

// NewDevice builds the DRAM array over the PCM address map's
// channel/bank/row decomposition (bank indices fold modulo cfg.Banks).
func NewDevice(cfg DeviceConfig, amap *pcm.AddressMap, eq *timing.EventQueue) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:      cfg,
		amap:     amap,
		eq:       eq,
		chans:    make([]dchannel, amap.Config().Channels),
		bankMask: cfg.Banks - 1,
	}
	for i := range d.chans {
		d.chans[i].banks = make([]dbank, cfg.Banks)
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Stats returns a copy of the aggregate counters.
func (d *Device) Stats() Stats { return d.stats }

// Pending reports in-flight reads or busy banks (drain support).
func (d *Device) Pending() bool {
	if len(d.live) > 0 {
		return true
	}
	now := d.eq.Now()
	for i := range d.chans {
		ch := &d.chans[i]
		if ch.busFreeAt > now {
			return true
		}
		for j := range ch.banks {
			if ch.banks[j].freeAt > now {
				return true
			}
		}
	}
	return false
}

// access schedules one array access starting at now (or later, if the
// bank, bus or a refresh window defers it) and returns its finish time.
func (d *Device) access(now timing.Time, addr uint64, write bool) timing.Time {
	loc := d.amap.Decode(addr)
	ch := &d.chans[loc.Channel]
	b := &ch.banks[loc.Bank&d.bankMask]

	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if d.cfg.TRFC > 0 {
		// Push past an all-banks refresh window [k*tREFI, k*tREFI+tRFC).
		if into := start % d.cfg.TREFI; into < d.cfg.TRFC {
			start += d.cfg.TRFC - into
			d.stats.RefreshStalls++
		}
	}

	lat := d.cfg.TCAS
	tag := d.amap.RowBufferTag(addr)
	if b.hasOpen && b.openTag == tag {
		d.stats.RowHits++
	} else {
		d.stats.RowMisses++
		lat += d.cfg.TRCD
		b.openTag = tag
		b.hasOpen = true
	}
	fin := start + lat + d.cfg.BusXfer
	ch.busFreeAt = fin
	b.freeAt = fin
	if write {
		b.freeAt += d.cfg.TWR
	}
	return fin
}

// Read serves a demand read from the staging array and fires done (with
// the given snapshot owner identity) at its completion time.
func (d *Device) Read(now timing.Time, addr uint64, done func(timing.Time),
	ownerCore int, ownerStore bool, ownerInst uint64) {
	fin := d.access(now, addr, false)
	d.stats.Reads++
	d.stats.EnergyReadJ += d.cfg.ReadEnergyJ
	lat := fin - now
	d.stats.ReadLatencySum += lat
	if lat > d.stats.ReadLatencyMax {
		d.stats.ReadLatencyMax = lat
	}
	op := d.acquireOp()
	op.addr, op.done = addr, done
	op.ownerCore, op.ownerStore, op.ownerInst = ownerCore, ownerStore, ownerInst
	d.track(op, fin, d.eq.Schedule(fin, op.fn).Seq())
}

// Write posts a write (demand absorption or migration fill) to the
// array. Writes complete without a callback; bank occupancy carries them
// for Pending.
func (d *Device) Write(now timing.Time, addr uint64, fill bool) {
	d.access(now, addr, true)
	d.stats.Writes++
	if fill {
		d.stats.Fills++
	}
	d.stats.EnergyWriteJ += d.cfg.WriteEnergyJ
}

// FunctionalRead accounts a read served instantly in functional
// fast-forward mode (no timing, energy advances).
func (d *Device) FunctionalRead() {
	d.stats.Reads++
	d.stats.EnergyReadJ += d.cfg.ReadEnergyJ
}

// FunctionalWrite accounts an instant functional-mode write.
func (d *Device) FunctionalWrite() {
	d.stats.Writes++
	d.stats.EnergyWriteJ += d.cfg.WriteEnergyJ
}

func (d *Device) acquireOp() *readOp {
	var op *readOp
	if n := len(d.opFree); n > 0 {
		op = d.opFree[n-1]
		d.opFree[n-1] = nil
		d.opFree = d.opFree[:n-1]
	} else {
		op = &readOp{d: d}
		op.fn = func(t timing.Time) { op.complete(t) }
	}
	return op
}

func (d *Device) track(op *readOp, at timing.Time, seq int64) {
	op.at, op.seq = at, seq
	op.idx = len(d.live)
	d.live = append(d.live, op)
}

func (d *Device) untrack(op *readOp) {
	i := op.idx
	last := len(d.live) - 1
	d.live[i] = d.live[last]
	d.live[i].idx = i
	d.live[last] = nil
	d.live = d.live[:last]
}

func (op *readOp) complete(t timing.Time) {
	d := op.d
	d.untrack(op)
	done := op.done
	op.done = nil
	d.opFree = append(d.opFree, op)
	if done != nil {
		done(t)
	}
}

// --- snapshot ---

const devSection = 0x4452 // "DR"

// Snapshot writes the bank/bus timing state and the in-flight read list
// (as (time, seq) event descriptors plus owner identities).
func (d *Device) Snapshot(w *snapshotWriter) error {
	w.Section(devSection)
	w.U32(uint32(len(d.chans)))
	for i := range d.chans {
		ch := &d.chans[i]
		w.I64(int64(ch.busFreeAt))
		w.U32(uint32(len(ch.banks)))
		for j := range ch.banks {
			b := &ch.banks[j]
			w.I64(int64(b.freeAt))
			w.U64(b.openTag)
			w.Bool(b.hasOpen)
		}
	}
	w.U32(uint32(len(d.live)))
	for _, op := range d.live {
		if op.done != nil && op.ownerCore == memctrl.OwnerNone {
			return fmt.Errorf("dram: in-flight read %#x has a callback but no owner identity", op.addr)
		}
		w.U64(op.addr)
		w.I64(int64(op.ownerCore))
		w.Bool(op.ownerStore)
		w.U64(op.ownerInst)
		w.I64(int64(op.at))
		w.I64(op.seq)
	}
	return w.JSON(d.stats)
}

// Restore loads Snapshot state, rebuilding read callbacks through
// resolve and appending completion events to pend for global re-arming.
func (d *Device) Restore(r *snapshotReader, resolve memctrl.OwnerResolver, pend *[]timing.Pending) {
	r.Section(devSection)
	if n := r.U32(); r.Err() == nil && int(n) != len(d.chans) {
		r.Fail("dram: snapshot has %d channels, live device %d", n, len(d.chans))
		return
	}
	for i := range d.chans {
		ch := &d.chans[i]
		ch.busFreeAt = timing.Time(r.I64())
		if n := r.U32(); r.Err() == nil && int(n) != len(ch.banks) {
			r.Fail("dram: snapshot has %d banks, live device %d", n, len(ch.banks))
			return
		}
		for j := range ch.banks {
			b := &ch.banks[j]
			b.freeAt = timing.Time(r.I64())
			b.openTag = r.U64()
			b.hasOpen = r.Bool()
		}
	}
	d.live = d.live[:0]
	n := r.Count(1 << 20)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		op := d.acquireOp()
		op.addr = r.U64()
		op.ownerCore = int(r.I64())
		op.ownerStore = r.Bool()
		op.ownerInst = r.U64()
		at := timing.Time(r.I64())
		seq := r.I64()
		if op.ownerCore != memctrl.OwnerNone && resolve != nil {
			op.done = resolve(op.ownerCore, op.ownerStore, op.ownerInst)
		}
		o := op
		*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
			d.track(o, at, d.eq.Schedule(at, o.fn).Seq())
		}})
	}
	d.stats = Stats{}
	r.JSON(&d.stats)
}
