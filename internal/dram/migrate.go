package dram

import (
	"fmt"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// WriteModer chooses the write mode of a PCM write (the policy seam the
// migration engine needs for demotion writebacks; core.WritePolicy
// satisfies it structurally).
type WriteModer interface {
	DecideWriteMode(addr uint64, now timing.Time) pcm.WriteMode
}

// MigStats are the migration engine's aggregate counters. The DRAM/PCM
// demand splits count routed demand traffic; promotion fills and
// demotion writebacks are tracked separately (CopyReads,
// WritebackBlocks).
type MigStats struct {
	DRAMReadHits  uint64 // demand reads served by the staging tier
	DRAMWriteHits uint64 // demand writes absorbed by the staging tier
	PCMReads      uint64 // demand reads forwarded to PCM
	PCMWrites     uint64 // demand writes forwarded to PCM

	Promotions      uint64 // pages staged into DRAM
	Demotions       uint64 // dirty pages evicted (with writeback)
	CleanEvictions  uint64 // clean pages dropped
	CoalesceBatches uint64 // write-coalescing demotion batches
	CopyReads       uint64 // PCM block reads issued by promotions
	WritebackBlocks uint64 // PCM block writes issued by demotions
}

// pageEntry is one DRAM-resident page: a dirty bitmap (bit per block)
// and an intrusive LRU link. Entries are pooled.
type pageEntry struct {
	page   uint64
	dirty  uint64
	writes uint32
	prev   *pageEntry
	next   *pageEntry
}

// copyOp is one in-flight promotion copy read; the PCM completion
// callback is bound once per pooled object.
type copyOp struct {
	m    *Migrator
	addr uint64
	fn   func(timing.Time)
}

// Migrator is the hot-page migration engine. It implements
// memctrl.Device in front of the PCM controller: demand traffic to
// DRAM-resident pages is served by or absorbed into the staging array;
// misses pass through to PCM and feed the promotion policy. Promotions
// copy the page's blocks from PCM with real read requests (so the copies
// see the ECC/retention machinery like any other array read); demotions
// write dirty blocks back with the write policy's chosen mode.
type Migrator struct {
	cfg  MigrationConfig
	ctl  *memctrl.Controller
	dram *Device
	eq   *timing.EventQueue
	mode WriteModer

	memMask       uint64
	pageShift     uint
	blockShift    uint
	blocksPerPage uint64
	capPages      int
	highWater     int
	countReads    bool // recency policy: reads feed the candidate counters

	resident   map[uint64]*pageEntry
	lruHead    *pageEntry // most recent
	lruTail    *pageEntry // least recent
	dirtyPages int
	entryFree  []*pageEntry
	victims    []*pageEntry // scratch for coalesced demotion

	cand     map[uint64]uint32
	accesses uint64 // since the last candidate aging

	copyFree       []*copyOp
	copiesInFlight int

	// Copy reads / writebacks rejected by a full PCM queue park here and
	// drain on the controller's space notifications. The notification
	// callbacks are bound once per (kind, channel) at construction, so
	// re-arming allocates nothing.
	parkedReads  [][]*memctrl.Request
	parkedWrites [][]*memctrl.Request
	parkArmed    [2][]bool                    // [read, write][channel]
	parkCB       [2][]func(now timing.Time)   // [read, write][channel]
	parkedWB     int

	// funcWrite completes a demotion writeback instantly in functional
	// fast-forward mode (the simulator binds it to its wear/energy/
	// retention accounting).
	funcWrite func(addr uint64, mode pcm.WriteMode)

	stats MigStats
}

var _ memctrl.Device = (*Migrator)(nil)

// NewMigrator builds the migration engine fronting ctl with the staging
// array dev. mode chooses writeback modes (the run's write policy).
func NewMigrator(cfg MigrationConfig, ctl *memctrl.Controller, dev *Device,
	amap *pcm.AddressMap, eq *timing.EventQueue, mode WriteModer) (*Migrator, error) {
	pcmCfg := amap.Config()
	if err := (HybridConfig{DRAM: dev.Config(), Migration: cfg}).Validate(pcmCfg); err != nil {
		return nil, err
	}
	if mode == nil {
		return nil, fmt.Errorf("dram: migrator needs a write-mode policy")
	}
	capPages := int(dev.Config().CapBytes / cfg.PageBytes)
	hw := int(cfg.DirtyHighWater * float64(capPages))
	if hw < 1 {
		hw = 1
	}
	m := &Migrator{
		cfg:           cfg,
		ctl:           ctl,
		dram:          dev,
		eq:            eq,
		mode:          mode,
		memMask:       pcmCfg.MemBytes - 1,
		pageShift:     log2(cfg.PageBytes),
		blockShift:    log2(pcmCfg.BlockBytes),
		blocksPerPage: cfg.PageBytes / pcmCfg.BlockBytes,
		capPages:      capPages,
		highWater:     hw,
		countReads:    cfg.Policy == PolicyRecency,
		resident:      make(map[uint64]*pageEntry, capPages),
		victims:       make([]*pageEntry, 0, cfg.DemoteBatch),
		cand:          make(map[uint64]uint32),
		parkedReads:   make([][]*memctrl.Request, pcmCfg.Channels),
		parkedWrites:  make([][]*memctrl.Request, pcmCfg.Channels),
	}
	m.parkArmed[0] = make([]bool, pcmCfg.Channels)
	m.parkArmed[1] = make([]bool, pcmCfg.Channels)
	m.parkCB[0] = make([]func(timing.Time), pcmCfg.Channels)
	m.parkCB[1] = make([]func(timing.Time), pcmCfg.Channels)
	for ch := 0; ch < pcmCfg.Channels; ch++ {
		ch := ch
		m.parkCB[0][ch] = func(now timing.Time) {
			m.parkArmed[0][ch] = false
			m.drainParked(memctrl.ReadReq, ch)
		}
		m.parkCB[1][ch] = func(now timing.Time) {
			m.parkArmed[1][ch] = false
			m.drainParked(memctrl.WriteReq, ch)
		}
	}
	return m, nil
}

// SetFunctionalWriter binds the instant-writeback hook used by
// functional fast-forward demotions.
func (m *Migrator) SetFunctionalWriter(fw func(addr uint64, mode pcm.WriteMode)) {
	m.funcWrite = fw
}

// Stats returns a copy of the migration counters.
func (m *Migrator) Stats() MigStats { return m.stats }

// ResidentPages returns the current staging-tier occupancy.
func (m *Migrator) ResidentPages() int { return len(m.resident) }

// DirtyPages returns the current count of dirty resident pages.
func (m *Migrator) DirtyPages() int { return m.dirtyPages }

func (m *Migrator) pageOf(addr uint64) uint64 { return (addr & m.memMask) >> m.pageShift }

func (m *Migrator) blockBit(addr uint64) uint64 {
	return 1 << (((addr & m.memMask) >> m.blockShift) & (m.blocksPerPage - 1))
}

// --- memctrl.Device ---

// AcquireRequest implements memctrl.Device (the PCM pool backs both
// tiers: absorbed requests are released immediately).
func (m *Migrator) AcquireRequest() *memctrl.Request { return m.ctl.AcquireRequest() }

// ChannelOf implements memctrl.Device.
func (m *Migrator) ChannelOf(addr uint64) int { return m.ctl.ChannelOf(addr) }

// OnSpace implements memctrl.Device: backpressure is always against the
// PCM queues (the DRAM path never rejects).
func (m *Migrator) OnSpace(kind memctrl.RequestKind, channel int, fn func(now timing.Time)) {
	m.ctl.OnSpace(kind, channel, fn)
}

// Pending implements memctrl.Device: in-flight work in either tier, plus
// promotion copies and parked migration traffic.
func (m *Migrator) Pending() bool {
	return m.copiesInFlight > 0 || m.parkedWB > 0 || m.dram.Pending() || m.ctl.Pending()
}

// TryEnqueue implements memctrl.Device: route a demand request. Requests
// served by the DRAM tier are always accepted (their PCM envelope is
// released); forwarded requests keep the controller's backpressure
// contract.
func (m *Migrator) TryEnqueue(req *memctrl.Request) bool {
	switch req.Kind {
	case memctrl.ReadReq:
		return m.enqueueRead(req)
	case memctrl.WriteReq:
		return m.enqueueWrite(req)
	default:
		// Refresh traffic is PCM retention machinery: always pass through.
		return m.ctl.TryEnqueue(req)
	}
}

func (m *Migrator) enqueueRead(req *memctrl.Request) bool {
	now := m.eq.Now()
	page := m.pageOf(req.Addr)
	if e := m.resident[page]; e != nil {
		m.moveFront(e)
		m.stats.DRAMReadHits++
		m.noteAccess(now)
		addr, done := req.Addr, req.OnDone
		oc, os, oi := req.OwnerCore, req.OwnerStore, req.OwnerInst
		m.ctl.ReleaseRequest(req)
		m.dram.Read(now, addr, done, oc, os, oi)
		return true
	}
	if !m.ctl.TryEnqueue(req) {
		return false
	}
	m.stats.PCMReads++
	m.noteAccess(now)
	if m.countReads {
		// Recency promotion: the miss still reads PCM (the data is not
		// staged yet), then the whole page is copied up.
		if c := m.cand[page] + 1; int(c) >= m.cfg.PromoteThreshold {
			m.promote(page, now, 0, false, false)
		} else {
			m.cand[page] = c
		}
	}
	return true
}

func (m *Migrator) enqueueWrite(req *memctrl.Request) bool {
	now := m.eq.Now()
	page := m.pageOf(req.Addr)
	if e := m.resident[page]; e != nil {
		addr := req.Addr
		m.ctl.ReleaseRequest(req)
		m.absorb(e, addr, now, false)
		return true
	}
	if int(m.cand[page])+1 >= m.cfg.PromoteThreshold {
		// Write-count promotion (and the write leg of recency): the
		// triggering write is absorbed dirty, the rest of the page copied.
		addr := req.Addr
		m.ctl.ReleaseRequest(req)
		m.stats.DRAMWriteHits++
		m.noteAccess(now)
		m.promote(page, now, addr, true, false)
		return true
	}
	if !m.ctl.TryEnqueue(req) {
		return false
	}
	m.cand[page]++
	m.stats.PCMWrites++
	m.noteAccess(now)
	return true
}

// --- migration mechanics ---

// absorb marks a resident block dirty and writes it into the array.
func (m *Migrator) absorb(e *pageEntry, addr uint64, now timing.Time, functional bool) {
	if e.dirty == 0 {
		m.dirtyPages++
	}
	e.dirty |= m.blockBit(addr)
	e.writes++
	m.moveFront(e)
	m.stats.DRAMWriteHits++
	m.noteAccess(now)
	if functional {
		m.dram.FunctionalWrite()
	} else {
		m.dram.Write(now, addr, false)
	}
	m.maybeCoalesce(now, functional)
}

// promote stages a page: evicts for a frame if needed, installs the
// entry (optionally with the triggering write absorbed dirty) and issues
// copy reads for the rest of the page. Functional mode skips the copy
// traffic — residency is what fast-forward must track, not queueing.
func (m *Migrator) promote(page uint64, now timing.Time, dirtyAddr uint64, hasDirty, functional bool) {
	delete(m.cand, page)
	if len(m.resident) >= m.capPages {
		m.evict(m.lruTail, now, functional)
	}
	e := m.acquireEntry()
	e.page = page
	m.resident[page] = e
	m.pushFront(e)
	m.stats.Promotions++
	dirtyBit := uint64(0)
	if hasDirty {
		dirtyBit = m.blockBit(dirtyAddr)
		e.dirty = dirtyBit
		e.writes = 1
		m.dirtyPages++
		if functional {
			m.dram.FunctionalWrite()
		} else {
			m.dram.Write(now, dirtyAddr, false)
		}
	}
	if !functional {
		base := page << m.pageShift
		for i := uint64(0); i < m.blocksPerPage; i++ {
			if dirtyBit != 0 && uint64(1)<<i == dirtyBit {
				continue
			}
			m.issueCopyRead(base+i<<m.blockShift, now)
		}
	}
	m.maybeCoalesce(now, functional)
}

// issueCopyRead reads one block from PCM to fill a promoted page. The
// read is a real array read (it meets ECC and retention inspection like
// any demand read); a full read queue parks it.
func (m *Migrator) issueCopyRead(addr uint64, now timing.Time) {
	m.stats.CopyReads++
	m.copiesInFlight++
	req := m.ctl.AcquireRequest()
	req.Kind, req.Addr = memctrl.ReadReq, addr
	req.OwnerCore, req.OwnerInst = memctrl.OwnerMigrate, addr
	op := m.acquireCopy(addr)
	req.OnDone = op.fn
	if !m.ctl.TryEnqueue(req) {
		ch := m.ctl.ChannelOf(addr)
		m.parkedReads[ch] = append(m.parkedReads[ch], req)
		m.armPark(memctrl.ReadReq, ch)
	}
}

// evict removes a page from the staging tier, writing dirty blocks back
// to PCM with the policy's mode for each block.
func (m *Migrator) evict(e *pageEntry, now timing.Time, functional bool) {
	m.unlink(e)
	delete(m.resident, e.page)
	if e.dirty != 0 {
		m.stats.Demotions++
		m.dirtyPages--
		base := e.page << m.pageShift
		for i := uint64(0); i < m.blocksPerPage; i++ {
			if e.dirty&(1<<i) != 0 {
				m.writeback(base+i<<m.blockShift, now, functional)
			}
		}
	} else {
		m.stats.CleanEvictions++
	}
	m.releaseEntry(e)
}

// writeback issues one demotion block write to PCM.
func (m *Migrator) writeback(addr uint64, now timing.Time, functional bool) {
	m.stats.WritebackBlocks++
	mode := m.mode.DecideWriteMode(addr, now)
	if functional {
		m.funcWrite(addr, mode)
		return
	}
	req := m.ctl.AcquireRequest()
	req.Kind, req.Addr, req.Mode, req.Wear = memctrl.WriteReq, addr, mode, pcm.WearDemandWrite
	if !m.ctl.TryEnqueue(req) {
		ch := m.ctl.ChannelOf(addr)
		m.parkedWrites[ch] = append(m.parkedWrites[ch], req)
		m.parkedWB++
		m.armPark(memctrl.WriteReq, ch)
	}
}

// maybeCoalesce demotes up to DemoteBatch cold-dirty pages from the LRU
// tail once the dirty population crosses the high-water mark — the
// write-coalescing buffer: demotion writes leave in batches instead of
// dribbling out one eviction at a time.
func (m *Migrator) maybeCoalesce(now timing.Time, functional bool) {
	if m.dirtyPages < m.highWater {
		return
	}
	m.victims = m.victims[:0]
	for e := m.lruTail; e != nil && len(m.victims) < m.cfg.DemoteBatch; e = e.prev {
		if e.dirty != 0 {
			m.victims = append(m.victims, e)
		}
	}
	if len(m.victims) == 0 {
		return
	}
	m.stats.CoalesceBatches++
	for _, e := range m.victims {
		m.evict(e, now, functional)
	}
	m.victims = m.victims[:0]
}

// noteAccess ages the candidate counters: every AgeInterval demand
// accesses, all counters halve (deterministic — halving is per-key).
func (m *Migrator) noteAccess(timing.Time) {
	m.accesses++
	if m.accesses < uint64(m.cfg.AgeInterval) {
		return
	}
	m.accesses = 0
	for k, v := range m.cand {
		v >>= 1
		if v == 0 {
			delete(m.cand, k)
		} else {
			m.cand[k] = v
		}
	}
}

// --- functional fast-forward ---

// FunctionalRead routes a fast-forward read: true when the staging tier
// serves it (the caller charges DRAM latency), false for PCM misses (the
// caller keeps its flat PCM path). Residency, recency and candidate
// state advance exactly as in detailed mode; copy traffic is skipped.
func (m *Migrator) FunctionalRead(addr uint64, now timing.Time) bool {
	page := m.pageOf(addr)
	if e := m.resident[page]; e != nil {
		m.moveFront(e)
		m.stats.DRAMReadHits++
		m.noteAccess(now)
		m.dram.FunctionalRead()
		return true
	}
	m.stats.PCMReads++
	m.noteAccess(now)
	if m.countReads {
		if c := m.cand[page] + 1; int(c) >= m.cfg.PromoteThreshold {
			m.promote(page, now, 0, false, true)
		} else {
			m.cand[page] = c
		}
	}
	return false
}

// FunctionalWrite routes a fast-forward write: true when absorbed by the
// staging tier, false when the caller should complete it as an instant
// PCM write.
func (m *Migrator) FunctionalWrite(addr uint64, now timing.Time) bool {
	page := m.pageOf(addr)
	if e := m.resident[page]; e != nil {
		m.absorb(e, addr, now, true)
		return true
	}
	if int(m.cand[page])+1 >= m.cfg.PromoteThreshold {
		m.stats.DRAMWriteHits++
		m.noteAccess(now)
		m.promote(page, now, addr, true, true)
		return true
	}
	m.cand[page]++
	m.stats.PCMWrites++
	m.noteAccess(now)
	return false
}

// --- parked-request draining ---

func (m *Migrator) parkIdx(kind memctrl.RequestKind) int {
	if kind == memctrl.WriteReq {
		return 1
	}
	return 0
}

func (m *Migrator) armPark(kind memctrl.RequestKind, ch int) {
	idx := m.parkIdx(kind)
	if m.parkArmed[idx][ch] {
		return
	}
	m.parkArmed[idx][ch] = true
	m.ctl.OnSpace(kind, ch, m.parkCB[idx][ch])
}

func (m *Migrator) drainParked(kind memctrl.RequestKind, ch int) {
	list := &m.parkedReads[ch]
	if kind == memctrl.WriteReq {
		list = &m.parkedWrites[ch]
	}
	for len(*list) > 0 {
		req := (*list)[0]
		if !m.ctl.TryEnqueue(req) {
			m.armPark(kind, ch)
			return
		}
		copy(*list, (*list)[1:])
		(*list)[len(*list)-1] = nil
		*list = (*list)[:len(*list)-1]
		if kind == memctrl.WriteReq {
			m.parkedWB--
		}
	}
}

// --- pools and LRU list ---

// poolSlab batches pool-object allocation: when a free list runs dry it
// is refilled with one backing-array allocation instead of one per
// object, so even workloads whose in-flight population keeps growing
// (promotion bursts against a full PCM queue) allocate O(1/slab) per
// acquisition.
const poolSlab = 64

func (m *Migrator) acquireEntry() *pageEntry {
	if len(m.entryFree) == 0 {
		slab := make([]pageEntry, poolSlab)
		for i := range slab {
			m.entryFree = append(m.entryFree, &slab[i])
		}
	}
	n := len(m.entryFree)
	e := m.entryFree[n-1]
	m.entryFree[n-1] = nil
	m.entryFree = m.entryFree[:n-1]
	e.page, e.dirty, e.writes = 0, 0, 0
	e.prev, e.next = nil, nil
	return e
}

func (m *Migrator) releaseEntry(e *pageEntry) {
	e.prev, e.next = nil, nil
	m.entryFree = append(m.entryFree, e)
}

func (m *Migrator) acquireCopy(addr uint64) *copyOp {
	if len(m.copyFree) == 0 {
		slab := make([]copyOp, poolSlab)
		for i := range slab {
			op := &slab[i]
			op.m = m
			// Bound once per pooled object, reused across its whole
			// recycled lifetime.
			op.fn = func(t timing.Time) { op.complete(t) }
			m.copyFree = append(m.copyFree, op)
		}
	}
	n := len(m.copyFree)
	op := m.copyFree[n-1]
	m.copyFree[n-1] = nil
	m.copyFree = m.copyFree[:n-1]
	op.addr = addr
	return op
}

func (op *copyOp) complete(t timing.Time) {
	m := op.m
	m.copiesInFlight--
	m.dram.Write(t, op.addr, true)
	m.copyFree = append(m.copyFree, op)
}

// CopyDoneCallback rebuilds a promotion copy read's completion callback
// from the block address a snapshot recorded as its owner identity
// (OwnerCore == memctrl.OwnerMigrate, OwnerInst == addr).
func (m *Migrator) CopyDoneCallback(addr uint64) func(timing.Time) {
	return m.acquireCopy(addr).fn
}

func (m *Migrator) pushFront(e *pageEntry) {
	e.prev = nil
	e.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = e
	}
	m.lruHead = e
	if m.lruTail == nil {
		m.lruTail = e
	}
}

func (m *Migrator) unlink(e *pageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (m *Migrator) moveFront(e *pageEntry) {
	if m.lruHead == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}
