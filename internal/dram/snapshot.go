package dram

import (
	"sort"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/snapshot"
)

// Aliases keep the codec signatures in device.go/migrate.go short.
type (
	snapshotWriter = snapshot.Writer
	snapshotReader = snapshot.Reader
)

const migSection = 0x4D47 // "MG"

// Snapshot writes the migration tables: the resident set in LRU order
// (which rebuilds the list), the candidate counters (sorted for
// determinism), in-flight copy state and the parked migration requests.
// In-flight copy reads themselves live in the PCM controller's section,
// recorded under the OwnerMigrate identity.
func (m *Migrator) Snapshot(w *snapshot.Writer) error {
	w.Section(migSection)
	w.U32(uint32(len(m.resident)))
	for e := m.lruHead; e != nil; e = e.next {
		w.U64(e.page)
		w.U64(e.dirty)
		w.U32(e.writes)
	}
	keys := make([]uint64, 0, len(m.cand))
	for k := range m.cand {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.U32(m.cand[k])
	}
	w.U64(m.accesses)
	w.U32(uint32(m.copiesInFlight))
	for _, list := range m.parkedReads {
		w.U32(uint32(len(list)))
		for _, req := range list {
			w.U64(req.Addr)
		}
	}
	for _, list := range m.parkedWrites {
		w.U32(uint32(len(list)))
		for _, req := range list {
			w.U64(req.Addr)
			w.U8(uint8(req.Mode))
		}
	}
	for idx := range m.parkArmed {
		for _, armed := range m.parkArmed[idx] {
			w.Bool(armed)
		}
	}
	return w.JSON(m.stats)
}

// Restore loads Snapshot state. Parked copy reads rebuild their
// completion callbacks from the pooled copy-op machinery; parked
// writebacks are plain requests. Space waiters are re-registered, as the
// controller's own restore contract requires.
func (m *Migrator) Restore(r *snapshot.Reader) {
	r.Section(migSection)
	for k := range m.resident {
		delete(m.resident, k)
	}
	m.lruHead, m.lruTail = nil, nil
	m.dirtyPages = 0
	n := r.Count(m.capPages)
	// Entries arrive head (MRU) to tail: append each at the tail.
	var tail *pageEntry
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		e := m.acquireEntry()
		e.page = r.U64()
		e.dirty = r.U64()
		e.writes = r.U32()
		if e.dirty != 0 {
			m.dirtyPages++
		}
		m.resident[e.page] = e
		if tail == nil {
			m.lruHead = e
		} else {
			tail.next = e
			e.prev = tail
		}
		tail = e
	}
	m.lruTail = tail
	n = r.Count(1 << 26)
	m.cand = make(map[uint64]uint32, n)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		k := r.U64()
		m.cand[k] = r.U32()
	}
	m.accesses = r.U64()
	m.copiesInFlight = int(r.U32())
	for ch := range m.parkedReads {
		n := r.Count(1 << 20)
		m.parkedReads[ch] = m.parkedReads[ch][:0]
		for i := 0; i < n; i++ {
			if r.Err() != nil {
				return
			}
			addr := r.U64()
			req := m.ctl.AcquireRequest()
			req.Kind, req.Addr = memctrl.ReadReq, addr
			req.OwnerCore, req.OwnerInst = memctrl.OwnerMigrate, addr
			req.OnDone = m.CopyDoneCallback(addr)
			m.parkedReads[ch] = append(m.parkedReads[ch], req)
		}
	}
	m.parkedWB = 0
	for ch := range m.parkedWrites {
		n := r.Count(1 << 20)
		m.parkedWrites[ch] = m.parkedWrites[ch][:0]
		for i := 0; i < n; i++ {
			if r.Err() != nil {
				return
			}
			req := m.ctl.AcquireRequest()
			req.Kind = memctrl.WriteReq
			req.Addr = r.U64()
			req.Mode = pcm.WriteMode(r.U8())
			req.Wear = pcm.WearDemandWrite
			m.parkedWrites[ch] = append(m.parkedWrites[ch], req)
			m.parkedWB++
		}
	}
	for idx := range m.parkArmed {
		kind := memctrl.ReadReq
		if idx == 1 {
			kind = memctrl.WriteReq
		}
		for ch := range m.parkArmed[idx] {
			m.parkArmed[idx][ch] = false
			if r.Bool() && r.Err() == nil {
				m.armPark(kind, ch)
			}
		}
	}
	m.stats = MigStats{}
	r.JSON(&m.stats)
}
