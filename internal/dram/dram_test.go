package dram

import (
	"bytes"
	"testing"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

// testPCMConfig is a tiny PCM geometry the migration tests front:
// one channel, two banks, 4-block (256 B) row-buffer segments.
func testPCMConfig() pcm.DeviceConfig {
	return pcm.DeviceConfig{
		MemBytes:            1 << 20,
		Channels:            1,
		Banks:               2,
		RowBytes:            1024,
		RowBufBytes:         256,
		BlockBytes:          64,
		EnduranceWrites:     5e6,
		WearLevelEfficiency: 0.95,
	}
}

// testDRAMConfig is a 4-page (1 KB / 256 B) staging array with refresh
// disabled so the timing assertions stay closed-form.
func testDRAMConfig() DeviceConfig {
	return DeviceConfig{
		CapBytes:     1024,
		Banks:        2,
		TRCD:         10 * timing.Nanosecond,
		TCAS:         5 * timing.Nanosecond,
		TWR:          4 * timing.Nanosecond,
		BusXfer:      2 * timing.Nanosecond,
		ReadEnergyJ:  1e-9,
		WriteEnergyJ: 2e-9,
	}
}

// testMigrationConfig pairs with testDRAMConfig: 256 B pages (4 blocks),
// write-count promotion after 2 missed writes.
func testMigrationConfig() MigrationConfig {
	return MigrationConfig{
		PageBytes:        256,
		Policy:           PolicyWriteCount,
		PromoteThreshold: 2,
		AgeInterval:      4096,
		DemoteBatch:      2,
		DirtyHighWater:   0.75,
	}
}

func TestHybridConfigValidate(t *testing.T) {
	dev := testPCMConfig()
	base := HybridConfig{DRAM: testDRAMConfig(), Migration: testMigrationConfig()}
	if err := base.Validate(dev); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*HybridConfig)
	}{
		{"zero capacity", func(c *HybridConfig) { c.DRAM.CapBytes = 0 }},
		{"non-pow2 banks", func(c *HybridConfig) { c.DRAM.Banks = 3 }},
		{"zero tRCD", func(c *HybridConfig) { c.DRAM.TRCD = 0 }},
		{"tREFI below tRFC", func(c *HybridConfig) {
			c.DRAM.TRFC = 100 * timing.Nanosecond
			c.DRAM.TREFI = 50 * timing.Nanosecond
		}},
		{"negative energy", func(c *HybridConfig) { c.DRAM.ReadEnergyJ = -1 }},
		{"non-pow2 page", func(c *HybridConfig) { c.Migration.PageBytes = 300 }},
		{"page below block", func(c *HybridConfig) { c.Migration.PageBytes = 32 }},
		{"page over 64 blocks", func(c *HybridConfig) {
			c.Migration.PageBytes = 8192
			c.DRAM.CapBytes = 16384
		}},
		{"capacity not page multiple", func(c *HybridConfig) { c.DRAM.CapBytes = 256 + 128 }},
		{"capacity below two pages", func(c *HybridConfig) { c.DRAM.CapBytes = 256 }},
		{"capacity above PCM", func(c *HybridConfig) { c.DRAM.CapBytes = 2 << 20 }},
		{"unknown policy", func(c *HybridConfig) { c.Migration.Policy = "mru" }},
		{"zero threshold", func(c *HybridConfig) { c.Migration.PromoteThreshold = 0 }},
		{"zero age interval", func(c *HybridConfig) { c.Migration.AgeInterval = 0 }},
		{"zero batch", func(c *HybridConfig) { c.Migration.DemoteBatch = 0 }},
		{"batch above capacity", func(c *HybridConfig) { c.Migration.DemoteBatch = 5 }},
		{"high water above 1", func(c *HybridConfig) { c.Migration.DirtyHighWater = 1.5 }},
		{"zero high water", func(c *HybridConfig) { c.Migration.DirtyHighWater = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mut(&c)
			if err := c.Validate(dev); err == nil {
				t.Errorf("invalid config accepted")
			}
		})
	}
	if err := DefaultHybridConfig().Validate(pcm.DefaultDeviceConfig()); err != nil {
		t.Errorf("default hybrid config rejected against default PCM: %v", err)
	}
}

func TestDeviceRowBufferTiming(t *testing.T) {
	cfg := testDRAMConfig()
	amap, err := pcm.NewAddressMap(testPCMConfig())
	if err != nil {
		t.Fatal(err)
	}
	eq := timing.NewEventQueue()
	d, err := NewDevice(cfg, amap, eq)
	if err != nil {
		t.Fatal(err)
	}
	var fin timing.Time
	done := func(at timing.Time) { fin = at }

	// Cold read: row miss, tRCD + tCAS + bus.
	d.Read(0, 0, done, memctrl.OwnerNone, false, 0)
	eq.Drain(100)
	if want := cfg.TRCD + cfg.TCAS + cfg.BusXfer; fin != want {
		t.Errorf("cold read finished at %v, want %v", fin, want)
	}

	// Same segment again: row hit, tCAS + bus.
	start := eq.Now()
	d.Read(start, 0, done, memctrl.OwnerNone, false, 0)
	eq.Drain(100)
	if want := start + cfg.TCAS + cfg.BusXfer; fin != want {
		t.Errorf("row-hit read finished at %v, want %v", fin, want)
	}

	// Same bank, different row: miss again.
	start = eq.Now()
	d.Read(start, 1<<11, done, memctrl.OwnerNone, false, 0)
	eq.Drain(100)
	if want := start + cfg.TRCD + cfg.TCAS + cfg.BusXfer; fin != want {
		t.Errorf("row-miss read finished at %v, want %v", fin, want)
	}

	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Errorf("row hits/misses = %d/%d, want 1/2", st.RowHits, st.RowMisses)
	}
	if st.Reads != 3 {
		t.Errorf("reads = %d, want 3", st.Reads)
	}
	if want := 3 * cfg.ReadEnergyJ; st.EnergyReadJ != want {
		t.Errorf("read energy = %v, want %v", st.EnergyReadJ, want)
	}

	// A posted write holds the bank for tWR beyond the transfer.
	d.Write(eq.Now(), 0, false)
	if !d.Pending() {
		t.Error("device not pending right after a posted write")
	}
	eq.RunUntil(eq.Now() + cfg.TRCD + cfg.TCAS + cfg.BusXfer + cfg.TWR)
	if d.Pending() {
		t.Error("device still pending after the write recovery window")
	}
}

func TestDeviceRefreshStall(t *testing.T) {
	cfg := testDRAMConfig()
	cfg.TREFI = 7800 * timing.Nanosecond
	cfg.TRFC = 350 * timing.Nanosecond
	amap, err := pcm.NewAddressMap(testPCMConfig())
	if err != nil {
		t.Fatal(err)
	}
	eq := timing.NewEventQueue()
	d, err := NewDevice(cfg, amap, eq)
	if err != nil {
		t.Fatal(err)
	}
	// Time zero sits inside the first refresh window: the read is pushed
	// past it.
	var fin timing.Time
	d.Read(0, 0, func(at timing.Time) { fin = at }, memctrl.OwnerNone, false, 0)
	eq.Drain(100)
	if want := cfg.TRFC + cfg.TRCD + cfg.TCAS + cfg.BusXfer; fin != want {
		t.Errorf("refresh-stalled read finished at %v, want %v", fin, want)
	}
	if st := d.Stats(); st.RefreshStalls != 1 {
		t.Errorf("refresh stalls = %d, want 1", st.RefreshStalls)
	}
}

// fixedMode is the test WriteModer: every writeback uses the slowest
// (longest-retention) mode.
type fixedMode struct{}

func (fixedMode) DecideWriteMode(uint64, timing.Time) pcm.WriteMode { return pcm.Mode7SETs }

// rig is a standalone hybrid stack: event queue, PCM controller, DRAM
// array and migrator, without the full simulator around them.
type rig struct {
	eq   *timing.EventQueue
	amap *pcm.AddressMap
	ctl  *memctrl.Controller
	dram *Device
	migr *Migrator
}

func newRig(t *testing.T, mcfg MigrationConfig, dcfg DeviceConfig) *rig {
	t.Helper()
	amap, err := pcm.NewAddressMap(testPCMConfig())
	if err != nil {
		t.Fatal(err)
	}
	eq := timing.NewEventQueue()
	ctl, err := memctrl.New(memctrl.DefaultConfig(), amap, eq, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(dcfg, amap, eq)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMigrator(mcfg, ctl, d, amap, eq, fixedMode{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eq: eq, amap: amap, ctl: ctl, dram: d, migr: m}
}

func (rg *rig) write(t *testing.T, addr uint64) {
	t.Helper()
	req := rg.migr.AcquireRequest()
	req.Kind, req.Addr = memctrl.WriteReq, addr
	req.Mode, req.Wear = pcm.Mode7SETs, pcm.WearDemandWrite
	if !rg.migr.TryEnqueue(req) {
		t.Fatalf("write %#x rejected", addr)
	}
}

func (rg *rig) read(t *testing.T, addr uint64) {
	t.Helper()
	req := rg.migr.AcquireRequest()
	req.Kind, req.Addr = memctrl.ReadReq, addr
	req.OnDone = func(timing.Time) {}
	if !rg.migr.TryEnqueue(req) {
		t.Fatalf("read %#x rejected", addr)
	}
}

// drain runs the queue dry and then slices time forward until no bank or
// bus occupancy remains (posted DRAM writes have no events).
func (rg *rig) drain(t *testing.T) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		rg.eq.Drain(1 << 20)
		if !rg.migr.Pending() {
			return
		}
		rg.eq.RunUntil(rg.eq.Now() + timing.Microsecond)
	}
	t.Fatal("hybrid rig failed to drain")
}

func TestMigratorWriteCountPromotion(t *testing.T) {
	rg := newRig(t, testMigrationConfig(), testDRAMConfig())
	m := rg.migr

	// First write to page 0 misses and forwards to PCM.
	rg.write(t, 0)
	if st := m.Stats(); st.PCMWrites != 1 || st.Promotions != 0 {
		t.Fatalf("after first write: %+v", st)
	}
	// Second write crosses the threshold: absorbed, page promoted, the
	// remaining 3 blocks copy up from PCM.
	rg.write(t, 0)
	st := m.Stats()
	if st.Promotions != 1 || st.DRAMWriteHits != 1 {
		t.Fatalf("promotion not triggered: %+v", st)
	}
	if st.CopyReads != 3 {
		t.Errorf("copy reads = %d, want 3 (triggering block already dirty)", st.CopyReads)
	}
	if m.ResidentPages() != 1 || m.DirtyPages() != 1 {
		t.Errorf("resident/dirty = %d/%d, want 1/1", m.ResidentPages(), m.DirtyPages())
	}
	rg.drain(t)
	if ds := rg.dram.Stats(); ds.Fills != 3 {
		t.Errorf("DRAM fills = %d, want 3", ds.Fills)
	}

	// Resident page now serves reads and absorbs writes in DRAM.
	rg.read(t, 64)
	rg.write(t, 128)
	rg.drain(t)
	st = m.Stats()
	if st.DRAMReadHits != 1 {
		t.Errorf("DRAM read hits = %d, want 1", st.DRAMReadHits)
	}
	if st.DRAMWriteHits != 2 {
		t.Errorf("DRAM write hits = %d, want 2", st.DRAMWriteHits)
	}
	if st.PCMReads != 0 {
		t.Errorf("PCM demand reads = %d, want 0", st.PCMReads)
	}
}

func TestMigratorRecencyPromotion(t *testing.T) {
	mcfg := testMigrationConfig()
	mcfg.Policy = PolicyRecency
	rg := newRig(t, mcfg, testDRAMConfig())
	m := rg.migr

	// Two read misses promote the page (clean), copying all 4 blocks.
	rg.read(t, 0)
	rg.read(t, 64)
	st := m.Stats()
	if st.PCMReads != 2 || st.Promotions != 1 {
		t.Fatalf("after two reads: %+v", st)
	}
	if st.CopyReads != 4 {
		t.Errorf("copy reads = %d, want 4 (no dirty block)", st.CopyReads)
	}
	if m.DirtyPages() != 0 {
		t.Errorf("dirty pages = %d, want 0 for a read promotion", m.DirtyPages())
	}
	rg.drain(t)
	rg.read(t, 128)
	rg.drain(t)
	if st := m.Stats(); st.DRAMReadHits != 1 {
		t.Errorf("DRAM read hits = %d, want 1", st.DRAMReadHits)
	}
}

func TestMigratorLRUEviction(t *testing.T) {
	mcfg := testMigrationConfig()
	mcfg.Policy = PolicyRecency
	mcfg.PromoteThreshold = 1 // every miss promotes
	rg := newRig(t, mcfg, testDRAMConfig())
	m := rg.migr

	// Promote 5 pages into 4 frames: the least-recent (page 0) is evicted
	// clean.
	for p := uint64(0); p < 5; p++ {
		rg.read(t, p*256)
		rg.drain(t)
	}
	st := m.Stats()
	if st.Promotions != 5 || st.CleanEvictions != 1 || st.Demotions != 0 {
		t.Fatalf("after 5 promotions: %+v", st)
	}
	if m.ResidentPages() != 4 {
		t.Fatalf("resident = %d, want 4", m.ResidentPages())
	}
	// Page 0 is gone (miss → re-promotion), page 4 is still resident.
	rg.read(t, 4*256)
	if st := m.Stats(); st.DRAMReadHits != 1 {
		t.Errorf("page 4 did not hit: %+v", st)
	}
	rg.read(t, 0)
	if st := m.Stats(); st.Promotions != 6 {
		t.Errorf("page 0 still resident after eviction: %+v", st)
	}
	rg.drain(t)
}

func TestMigratorCoalescedDemotion(t *testing.T) {
	mcfg := testMigrationConfig()
	mcfg.PromoteThreshold = 1 // first write promotes, dirty
	mcfg.DirtyHighWater = 0.5 // 2 of 4 pages
	rg := newRig(t, mcfg, testDRAMConfig())
	m := rg.migr

	rg.write(t, 0)
	if m.DirtyPages() != 1 {
		t.Fatalf("dirty = %d, want 1", m.DirtyPages())
	}
	// Second dirty page crosses the high-water mark: one coalesced batch
	// demotes both, writing one dirty block back per page.
	rg.write(t, 256)
	st := m.Stats()
	if st.CoalesceBatches != 1 {
		t.Fatalf("coalesce batches = %d, want 1 (%+v)", st.CoalesceBatches, st)
	}
	if st.Demotions != 2 || st.WritebackBlocks != 2 {
		t.Errorf("demotions/writebacks = %d/%d, want 2/2", st.Demotions, st.WritebackBlocks)
	}
	if m.ResidentPages() != 0 || m.DirtyPages() != 0 {
		t.Errorf("resident/dirty = %d/%d, want 0/0 after the batch",
			m.ResidentPages(), m.DirtyPages())
	}
	rg.drain(t)
}

func TestMigratorCandidateAging(t *testing.T) {
	mcfg := testMigrationConfig()
	mcfg.PromoteThreshold = 4
	mcfg.AgeInterval = 4
	rg := newRig(t, mcfg, testDRAMConfig())
	m := rg.migr

	// Three writes to page 0 (count 3), then one to page 1: the fourth
	// access trips the aging pass, halving page 0's count to 1 — so two
	// more writes to page 0 still don't promote (1+1 < 4 after one more
	// halving... build the exact sequence instead).
	rg.write(t, 0)
	rg.write(t, 0)
	rg.write(t, 0)
	rg.write(t, 256) // 4th access: aging halves page0 3→1, page1 1→0
	if st := m.Stats(); st.Promotions != 0 {
		t.Fatalf("premature promotion: %+v", st)
	}
	// Page 0's counter restarted near 1: the next write makes it 2, not
	// the 4 needed — aging visibly delayed the promotion.
	rg.write(t, 0)
	if st := m.Stats(); st.Promotions != 0 {
		t.Errorf("aged candidate promoted too early: %+v", st)
	}
	rg.drain(t)
}

const testSnapMagic = 0x44524D54 // "DRMT"

// snapshotRig serializes the controller, DRAM array and migrator of a
// drained rig.
func snapshotRig(t *testing.T, rg *rig) []byte {
	t.Helper()
	w := snapshot.NewWriter(4096)
	w.Header(testSnapMagic, 1)
	w.I64(int64(rg.eq.Now()))
	if err := rg.ctl.Snapshot(w); err != nil {
		t.Fatal(err)
	}
	if err := rg.dram.Snapshot(w); err != nil {
		t.Fatal(err)
	}
	if err := rg.migr.Snapshot(w); err != nil {
		t.Fatal(err)
	}
	return w.Finish()
}

func restoreRig(t *testing.T, rg *rig, blob []byte) {
	t.Helper()
	r, err := snapshot.NewReader(blob, testSnapMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	rg.eq.Reset(timing.Time(r.I64()))
	resolve := func(core int, store bool, inst uint64) func(timing.Time) {
		if core == memctrl.OwnerMigrate {
			return rg.migr.CopyDoneCallback(inst)
		}
		return func(timing.Time) {}
	}
	var pend []timing.Pending
	rg.ctl.Restore(r, resolve, &pend)
	rg.dram.Restore(r, resolve, &pend)
	rg.migr.Restore(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	timing.Rearm(pend)
}

// TestMigratorSnapshotRoundTrip drives mixed traffic through a rig,
// snapshots the drained hybrid state, restores it into a fresh rig and
// demands the re-serialized state be byte-identical — the standalone
// (no-simulator) half of the hybrid snapshot guarantee.
func TestMigratorSnapshotRoundTrip(t *testing.T) {
	rg := newRig(t, testMigrationConfig(), testDRAMConfig())
	// Promote two pages, dirty one more block, leave candidate counters
	// and LRU order non-trivial.
	rg.write(t, 0)
	rg.write(t, 0) // promote page 0
	rg.write(t, 512)
	rg.write(t, 512) // promote page 2
	rg.write(t, 64)  // absorb into page 0 (moves it to MRU)
	rg.write(t, 768) // candidate page 3: count 1
	rg.read(t, 1024) // PCM miss read
	rg.drain(t)

	blob := snapshotRig(t, rg)

	rg2 := newRig(t, testMigrationConfig(), testDRAMConfig())
	restoreRig(t, rg2, blob)
	blob2 := snapshotRig(t, rg2)
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restored rig re-serialized differently")
	}
	if got, want := rg2.migr.Stats(), rg.migr.Stats(); got != want {
		t.Errorf("restored migration stats %+v, want %+v", got, want)
	}
	if rg2.migr.ResidentPages() != rg.migr.ResidentPages() ||
		rg2.migr.DirtyPages() != rg.migr.DirtyPages() {
		t.Errorf("restored occupancy %d/%d, want %d/%d",
			rg2.migr.ResidentPages(), rg2.migr.DirtyPages(),
			rg.migr.ResidentPages(), rg.migr.DirtyPages())
	}

	// The restored rig must keep working: identical traffic on both rigs
	// produces identical stats.
	for _, rr := range []*rig{rg, rg2} {
		rr.write(t, 768)
		rr.write(t, 768) // promotes page 3 (candidate count survived)
		rr.read(t, 64)
		rr.drain(t)
	}
	if got, want := rg2.migr.Stats(), rg.migr.Stats(); got != want {
		t.Errorf("post-restore traffic diverged: %+v vs %+v", got, want)
	}
	if got, want := rg2.dram.Stats(), rg.dram.Stats(); got != want {
		t.Errorf("post-restore DRAM stats diverged: %+v vs %+v", got, want)
	}
}
