// Package dram models the DRAM staging tier of a hybrid DRAM–PCM main
// memory. The dominant deployment story for PCM is hybrid (MigrantStore,
// Hameed et al.): a small DRAM region in front of the PCM absorbs the
// write stream and serves hot reads at DRAM latency, which interacts
// directly with the RRM's retention/relaxation trade-off — writes that
// never reach the PCM array neither wear it nor need short-retention
// refresh coverage.
//
// The package has two components behind the memctrl.Device seam:
//
//   - Device: a DRAM timing model — per-channel/per-bank row-buffer
//     state, tRCD/tCAS/tWR/bus-transfer latencies and tREFI/tRFC refresh
//     windows. DRAM has no wear and no retention machinery, so the
//     optional PCM capability hooks (wear tracker, retention checker,
//     fault injector) are simply never invoked for DRAM-served traffic.
//   - Migrator: the migration engine. It implements memctrl.Device and
//     fronts the PCM controller: demand traffic to DRAM-resident pages is
//     served by (reads) or absorbed into (writes) the staging tier;
//     everything else passes through to PCM unchanged. Hot pages are
//     promoted by a pluggable policy (write-count à la MigrantStore, or
//     recency), filled by real PCM copy reads, and demoted cold-dirty
//     pages are written back in coalesced batches.
package dram

import (
	"fmt"
	"math/bits"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// Promotion policy names (MigrationConfig.Policy).
const (
	// PolicyWriteCount promotes a page after PromoteThreshold demand
	// writes miss the staging tier (MigrantStore-style: the write stream
	// selects what to stage, and the triggering write is absorbed).
	PolicyWriteCount = "wcount"
	// PolicyRecency promotes after PromoteThreshold demand accesses of
	// either kind (reads included), favouring read-hot pages too.
	PolicyRecency = "recency"
)

// DeviceConfig describes the DRAM staging array. Timings are DDR-class
// constants (unscaled — DRAM refresh is milliseconds-scale and needs no
// retention-clock acceleration).
type DeviceConfig struct {
	// CapBytes is the staging capacity (must be a multiple of the
	// migration page size).
	CapBytes uint64
	// Banks per channel (power of two). The DRAM reuses the PCM address
	// map's channel/row decomposition; bank indices fold modulo Banks.
	Banks int

	// Row activate, column access, write recovery and data bus transfer.
	TRCD    timing.Time
	TCAS    timing.Time
	TWR     timing.Time
	BusXfer timing.Time

	// Refresh: every TREFI the array is unavailable for TRFC (accesses
	// landing inside a window are pushed past it). TRFC=0 disables.
	TREFI timing.Time
	TRFC  timing.Time

	// Per-block access energy in joules.
	ReadEnergyJ  float64
	WriteEnergyJ float64
}

// DefaultDeviceConfig returns a 64 MB DDR3-class staging array.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		CapBytes:     64 << 20,
		Banks:        8,
		TRCD:         14 * timing.Nanosecond,
		TCAS:         14 * timing.Nanosecond,
		TWR:          15 * timing.Nanosecond,
		BusXfer:      8 * timing.Nanosecond,
		TREFI:        7800 * timing.Nanosecond,
		TRFC:         350 * timing.Nanosecond,
		ReadEnergyJ:  1.2e-9,
		WriteEnergyJ: 1.5e-9,
	}
}

// Validate checks the DRAM array parameters.
func (c DeviceConfig) Validate() error {
	if c.CapBytes == 0 {
		return fmt.Errorf("dram: zero capacity")
	}
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: banks %d must be a positive power of two", c.Banks)
	}
	if c.TRCD <= 0 || c.TCAS <= 0 || c.TWR < 0 || c.BusXfer <= 0 {
		return fmt.Errorf("dram: non-positive timing (tRCD %v, tCAS %v, tWR %v, bus %v)",
			c.TRCD, c.TCAS, c.TWR, c.BusXfer)
	}
	if c.TRFC < 0 || c.TREFI < 0 {
		return fmt.Errorf("dram: negative refresh timing")
	}
	if c.TRFC > 0 && c.TREFI <= c.TRFC {
		return fmt.Errorf("dram: tREFI %v must exceed tRFC %v", c.TREFI, c.TRFC)
	}
	if c.ReadEnergyJ < 0 || c.WriteEnergyJ < 0 {
		return fmt.Errorf("dram: negative access energy")
	}
	return nil
}

// MigrationConfig parameterizes the hot-page migration engine.
type MigrationConfig struct {
	// PageBytes is the migration granularity (power of two, at least one
	// memory block, at most 64 blocks so a page's dirty bitmap fits a
	// word).
	PageBytes uint64
	// Policy selects the promotion trigger: PolicyWriteCount or
	// PolicyRecency.
	Policy string
	// PromoteThreshold is the miss count (writes for wcount, any access
	// for recency) after which a page is promoted.
	PromoteThreshold int
	// AgeInterval halves every candidate counter after this many demand
	// accesses, so stale candidates decay instead of accumulating
	// forever.
	AgeInterval int
	// DemoteBatch is the number of cold-dirty pages the write-coalescing
	// buffer demotes per batch once the dirty fraction crosses
	// DirtyHighWater.
	DemoteBatch int
	// DirtyHighWater is the dirty-page fraction of the staging capacity
	// that triggers a coalesced demotion batch, in (0, 1].
	DirtyHighWater float64
}

// DefaultMigrationConfig returns 4 KB pages with write-count promotion
// after 4 missed writes and batched demotion of 8 pages at 3/4 dirty.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		PageBytes:        4096,
		Policy:           PolicyWriteCount,
		PromoteThreshold: 4,
		AgeInterval:      4096,
		DemoteBatch:      8,
		DirtyHighWater:   0.75,
	}
}

// HybridConfig enables the hybrid tier: the DRAM array plus the
// migration engine in front of the PCM.
type HybridConfig struct {
	DRAM      DeviceConfig
	Migration MigrationConfig
}

// DefaultHybridConfig returns the default staging tier.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		DRAM:      DefaultDeviceConfig(),
		Migration: DefaultMigrationConfig(),
	}
}

// Validate checks the hybrid configuration against the PCM device
// geometry it fronts.
func (c HybridConfig) Validate(dev pcm.DeviceConfig) error {
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	m := c.Migration
	if m.PageBytes == 0 || m.PageBytes&(m.PageBytes-1) != 0 {
		return fmt.Errorf("dram: page size %d must be a power of two", m.PageBytes)
	}
	if m.PageBytes < dev.BlockBytes {
		return fmt.Errorf("dram: page size %d below block size %d", m.PageBytes, dev.BlockBytes)
	}
	if n := m.PageBytes / dev.BlockBytes; n > 64 {
		return fmt.Errorf("dram: %d blocks per page exceeds the 64-block dirty bitmap", n)
	}
	if m.PageBytes > dev.MemBytes {
		return fmt.Errorf("dram: page size %d exceeds memory size", m.PageBytes)
	}
	if c.DRAM.CapBytes%m.PageBytes != 0 {
		return fmt.Errorf("dram: capacity %d not a multiple of page size %d", c.DRAM.CapBytes, m.PageBytes)
	}
	if c.DRAM.CapBytes > dev.MemBytes {
		return fmt.Errorf("dram: staging capacity %d exceeds PCM capacity %d", c.DRAM.CapBytes, dev.MemBytes)
	}
	pages := c.DRAM.CapBytes / m.PageBytes
	if pages < 2 {
		return fmt.Errorf("dram: capacity holds %d pages, need at least 2", pages)
	}
	switch m.Policy {
	case PolicyWriteCount, PolicyRecency:
	default:
		return fmt.Errorf("dram: unknown promotion policy %q", m.Policy)
	}
	if m.PromoteThreshold < 1 {
		return fmt.Errorf("dram: promote threshold %d must be >= 1", m.PromoteThreshold)
	}
	if m.AgeInterval < 1 {
		return fmt.Errorf("dram: age interval %d must be >= 1", m.AgeInterval)
	}
	if m.DemoteBatch < 1 {
		return fmt.Errorf("dram: demote batch %d must be >= 1", m.DemoteBatch)
	}
	if uint64(m.DemoteBatch) > pages {
		return fmt.Errorf("dram: demote batch %d exceeds capacity of %d pages", m.DemoteBatch, pages)
	}
	if m.DirtyHighWater <= 0 || m.DirtyHighWater > 1 {
		return fmt.Errorf("dram: dirty high water %v out of (0, 1]", m.DirtyHighWater)
	}
	return nil
}

// log2 of a power of two.
func log2(v uint64) uint { return uint(bits.TrailingZeros64(v)) }
