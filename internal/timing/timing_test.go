package timing

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockDomainsAreExact(t *testing.T) {
	if CPUCycle*4 != 2*Nanosecond {
		t.Errorf("CPU cycle = %v, want 500ps (2 GHz)", CPUCycle)
	}
	if MemCycle != 5*CPUCycle {
		t.Errorf("mem cycle = %v, want 5 CPU cycles", MemCycle)
	}
	if MemCycles(400_000_000) != Second {
		t.Errorf("400M mem cycles = %v, want 1s", MemCycles(400_000_000))
	}
}

func TestConversions(t *testing.T) {
	cases := []struct {
		in   Time
		ns   float64
		s    float64
		cpuC int64
	}{
		{Nanosecond, 1, 1e-9, 2},
		{120 * Nanosecond, 120, 120e-9, 240}, // tRCD
		{Second, 1e9, 1, 2_000_000_000},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := c.in.Nanoseconds(); got != c.ns {
			t.Errorf("%v.Nanoseconds() = %v, want %v", c.in, got, c.ns)
		}
		if got := c.in.Seconds(); got != c.s {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.s)
		}
		if got := c.in.CPUCycles(); got != c.cpuC {
			t.Errorf("%v.CPUCycles() = %v, want %v", c.in, got, c.cpuC)
		}
	}
}

func TestNanosecondsRoundTrip(t *testing.T) {
	f := func(ns uint32) bool {
		return Nanoseconds(float64(ns)) == Time(ns)*Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct{ t, q, want Time }{
		{0, 10, 0},
		{1, 10, 10},
		{10, 10, 10},
		{11, 10, 20},
		{55, 0, 55},
		{55, -3, 55},
	}
	for _, c := range cases {
		if got := AlignUp(c.t, c.q); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.t, c.q, got, c.want)
		}
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(tv uint32, qexp uint8) bool {
		q := Time(1) << (qexp % 20)
		a := AlignUp(Time(tv), q)
		return a >= Time(tv) && a%q == 0 && a-Time(tv) < q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{250, "250ps"},
		{1500, "1.500ns"},
		{550 * Nanosecond, "550.000ns"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventQueueOrder(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.Schedule(30, func(Time) { fired = append(fired, 3) })
	q.Schedule(10, func(Time) { fired = append(fired, 1) })
	q.Schedule(20, func(Time) { fired = append(fired, 2) })
	q.Drain(100)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", fired)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %v, want 30", q.Now())
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(100, func(Time) { fired = append(fired, i) })
	}
	q.Drain(100)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events reordered: %v", fired)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	ev := q.Schedule(10, func(Time) { fired = append(fired, 1) })
	q.Schedule(20, func(Time) { fired = append(fired, 2) })
	q.Cancel(ev)
	q.Cancel(ev)         // double-cancel is a no-op
	q.Cancel(EventRef{}) // zero ref is a no-op
	q.Drain(100)
	if len(fired) != 1 || fired[0] != 2 {
		t.Errorf("fired = %v, want [2]", fired)
	}
}

func TestEventQueueCancelAfterFire(t *testing.T) {
	q := NewEventQueue()
	ev := q.Schedule(5, func(Time) {})
	q.Step()
	q.Cancel(ev) // must not corrupt the heap
	q.Schedule(10, func(Time) {})
	if n := q.Drain(10); n != 1 {
		t.Errorf("drained %d events, want 1", n)
	}
}

func TestEventQueueStaleRefAfterRecycle(t *testing.T) {
	// A ref to a fired event must stay a no-op even after the queue
	// recycles the event's storage for a new Schedule.
	q := NewEventQueue()
	stale := q.Schedule(5, func(Time) {})
	q.Step()
	fired := 0
	fresh := q.Schedule(10, func(Time) { fired++ }) // reuses the storage
	q.Cancel(stale)                                 // must not cancel the fresh event
	q.Drain(10)
	if fired != 1 {
		t.Errorf("stale ref cancelled a recycled event (fired=%d)", fired)
	}
	q.Cancel(fresh) // cancel after fire stays a no-op
}

func TestEventQueueScheduleSteadyStateAllocs(t *testing.T) {
	q := NewEventQueue()
	fn := func(Time) {}
	// Warm the free list and heap backing array.
	for i := 0; i < 64; i++ {
		q.Schedule(Time(i), fn)
	}
	q.Drain(64)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Schedule(q.Now()+Time(i), fn)
		}
		q.Drain(32)
	})
	if avg > 0.5 {
		t.Errorf("steady-state schedule/dispatch allocates %.1f objects per 32-event cycle, want ~0", avg)
	}
}

func TestEventQueueScheduleDuringDispatch(t *testing.T) {
	q := NewEventQueue()
	var fired []Time
	q.Schedule(10, func(now Time) {
		fired = append(fired, now)
		q.Schedule(now+5, func(now Time) { fired = append(fired, now) })
	})
	q.Drain(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestEventQueuePastPanics(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(100, func(Time) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	q.Schedule(50, func(Time) {})
}

func TestEventQueueRunUntil(t *testing.T) {
	q := NewEventQueue()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		q.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	q.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("fired %d events by t=25, want 2", len(fired))
	}
	if q.Now() != 25 {
		t.Errorf("Now = %v, want 25", q.Now())
	}
	q.RunUntil(1000)
	if len(fired) != 4 || q.Now() != 1000 {
		t.Errorf("fired=%d Now=%v, want 4 events and Now=1000", len(fired), q.Now())
	}
}

func TestEventQueueRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewEventQueue()
	times := make([]Time, 500)
	var fired []Time
	for i := range times {
		times[i] = Time(rng.Intn(10_000))
		at := times[i]
		q.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	q.Drain(len(times))
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i := range times {
		if fired[i] != times[i] {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], times[i])
		}
	}
}

func TestEventQueueCancelMiddleOfHeap(t *testing.T) {
	q := NewEventQueue()
	var events []EventRef
	count := 0
	for i := 0; i < 20; i++ {
		events = append(events, q.Schedule(Time(i*10), func(Time) { count++ }))
	}
	// Cancel every other event, including heap-internal nodes.
	for i := 0; i < 20; i += 2 {
		q.Cancel(events[i])
	}
	q.Drain(100)
	if count != 10 {
		t.Errorf("fired %d events, want 10", count)
	}
}

func TestPeekTime(t *testing.T) {
	q := NewEventQueue()
	if q.PeekTime() != Forever {
		t.Errorf("empty PeekTime = %v, want Forever", q.PeekTime())
	}
	q.Schedule(77, func(Time) {})
	if q.PeekTime() != 77 {
		t.Errorf("PeekTime = %v, want 77", q.PeekTime())
	}
}

func TestMinMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min/Max broken")
	}
}
