package timing

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// scripted drives one pseudo-workload against either a single queue or a
// ShardSet: every dispatched event appends its (shard, time, tag) to the
// log and may schedule follow-ups onto any shard, mimicking the
// cross-shard seams of the simulator (submission, completion, wakeup).
type scripted struct {
	log  []string
	rng  *rand.Rand
	qs   []*EventQueue // len 1 for serial; shard count for sharded
	left int
}

func (s *scripted) queueFor(shard int) *EventQueue {
	return s.qs[shard%len(s.qs)]
}

func (s *scripted) event(shard int, tag int) func(Time) {
	return func(now Time) {
		s.log = append(s.log, fmt.Sprintf("%d@%d#%d", shard, now, tag))
		if s.left <= 0 {
			return
		}
		s.left--
		// Deterministic pseudo-random fan-out: same decisions whatever
		// the queue layout, since the rng is consumed in dispatch order
		// and dispatch order must match across layouts.
		n := s.rng.Intn(3)
		for i := 0; i < n; i++ {
			dst := s.rng.Intn(4)
			dt := Time(s.rng.Intn(50)) // 0 keeps same-instant ties common
			s.queueFor(dst).Schedule(now+dt, s.event(dst, s.rng.Intn(1000)))
		}
	}
}

func seedScript(s *scripted) {
	for i := 0; i < 20; i++ {
		dst := s.rng.Intn(4)
		s.queueFor(dst).Schedule(Time(s.rng.Intn(30)), s.event(dst, i))
	}
}

func runSerial(seed int64) []string {
	s := &scripted{rng: rand.New(rand.NewSource(seed)), left: 3000}
	q := NewEventQueue()
	s.qs = []*EventQueue{q, q, q, q}
	seedScript(s)
	q.RunUntil(1 << 40)
	return s.log
}

func runSharded(seed int64, shards int, lookahead Time, workers bool) []string {
	s := &scripted{rng: rand.New(rand.NewSource(seed)), left: 3000}
	set := NewShardSet(shards, lookahead)
	if workers {
		set.SetWorkers(true)
		defer set.Close()
	} else {
		set.SetWorkers(false)
	}
	for i := 0; i < shards; i++ {
		s.qs = append(s.qs, set.Queue(i))
	}
	for len(s.qs) < 4 {
		s.qs = append(s.qs, s.qs[len(s.qs)%shards])
	}
	seedScript(s)
	set.RunUntil(1 << 40)
	return s.log
}

// TestShardSetMatchesSerialOrder is the core determinism property: the
// merged dispatch order of a ShardSet equals the serial EventQueue's
// dispatch order exactly, for every shard count, lookahead and worker
// mode — including same-instant ties resolved by schedule order across
// shards.
func TestShardSetMatchesSerialOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		want := runSerial(seed)
		for _, shards := range []int{1, 2, 4} {
			for _, la := range []Time{1, 7, 1000} {
				for _, workers := range []bool{false, true} {
					got := runSharded(seed, shards, la, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d shards %d lookahead %d workers %v: dispatch order diverged\nserial : %v\nsharded: %v",
							seed, shards, la, workers, want[:min(len(want), 20)], got[:min(len(got), 20)])
					}
				}
			}
		}
	}
}

// TestShardSetTimers checks timer-slot semantics under the merge: a
// timer fires once per arming, interleaved with same-instant heap
// events by the sequence number drawn at Arm — exactly where a
// Scheduled event would have fired.
func TestShardSetTimers(t *testing.T) {
	set := NewShardSet(2, 10)
	set.SetWorkers(false)
	q0, q1 := set.Queue(0), set.Queue(1)
	var log []string
	tm := q1.NewTimer(func(now Time) { log = append(log, fmt.Sprintf("timer@%d", now)) })
	tm.Arm(q1, 5) // seq 0: fires before the later-scheduled same-instant events
	q0.Schedule(5, func(now Time) { log = append(log, fmt.Sprintf("ev0@%d", now)) })
	q1.Schedule(5, func(now Time) { log = append(log, fmt.Sprintf("ev1@%d", now)) })
	q1.Schedule(20, func(now Time) {
		log = append(log, fmt.Sprintf("ev1@%d", now))
		tm.Arm(q1, now+1)
	})
	set.RunUntil(100)
	want := []string{"timer@5", "ev0@5", "ev1@5", "ev1@20", "timer@21"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("timer dispatch order: got %v want %v", log, want)
	}
	if tm.Armed() {
		t.Fatalf("timer still armed after firing")
	}
	if set.Now() != 100 {
		t.Fatalf("clock = %d, want 100", set.Now())
	}
}

// TestShardSetSharedClock checks that every shard observes the shared
// Now and that sequence numbers are globally unique and increasing in
// dispatch order.
func TestShardSetSharedClock(t *testing.T) {
	set := NewShardSet(3, 25)
	set.SetWorkers(false)
	var seen []Time
	for i := 0; i < 3; i++ {
		i := i
		set.Queue(i).Schedule(Time(10*i+5), func(now Time) {
			for j := 0; j < 3; j++ {
				if got := set.Queue(j).Now(); got != now {
					t.Errorf("shard %d sees Now=%d during dispatch at %d", j, got, now)
				}
			}
			seen = append(seen, now)
		})
	}
	set.RunUntil(1000)
	if want := []Time{5, 15, 25}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("dispatch times %v, want %v", seen, want)
	}
	if set.Epochs() == 0 {
		t.Fatalf("no epochs recorded")
	}
}

// TestShardSetReset checks that Reset clears events and timers on every
// shard and restarts the shared sequence space (the restore path).
func TestShardSetReset(t *testing.T) {
	set := NewShardSet(2, 10)
	set.SetWorkers(false)
	fired := false
	set.Queue(0).Schedule(50, func(Time) { fired = true })
	tm := set.Queue(1).NewTimer(func(Time) { fired = true })
	tm.Arm(set.Queue(1), 60)
	set.Reset(40)
	if set.Now() != 40 || set.Len() != 0 || tm.Armed() {
		t.Fatalf("Reset left state: now=%d len=%d armed=%v", set.Now(), set.Len(), tm.Armed())
	}
	ref := set.Queue(1).Schedule(45, func(Time) {})
	if ref.Seq() != 0 {
		t.Fatalf("sequence space not restarted: first seq = %d", ref.Seq())
	}
	set.RunUntil(100)
	if fired {
		t.Fatalf("discarded event fired after Reset")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
