package timing

import "sort"

// Pending describes one event that was live in a snapshotted queue:
// when it was due (At), where it stood in the schedule order (Seq, from
// EventRef.Seq at snapshot time), and a closure that re-schedules it on
// the restored queue. Components append one Pending per live event
// during Restore; the restorer then calls Rearm once with all of them.
type Pending struct {
	At  Time
	Seq int64
	Arm func()
}

// Rearm sorts the descriptors by (At, Seq) and invokes each Arm in that
// order, so the restored queue assigns fresh sequence numbers 0..n-1
// that reproduce the snapshotted dispatch order exactly: ties at the
// same At keep their original relative order, and events scheduled
// after the restore point always receive larger sequence numbers than
// every re-armed event — just as they did in the original run.
func Rearm(pend []Pending) {
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].At != pend[j].At {
			return pend[i].At < pend[j].At
		}
		return pend[i].Seq < pend[j].Seq
	})
	for i := range pend {
		pend[i].Arm()
	}
}
