// Package timing provides the simulator's notion of time and a
// deterministic discrete-event queue.
//
// All simulation time is kept as integer picoseconds (type Time). The
// simulated machine has two clock domains: a 2 GHz CPU clock (500 ps per
// cycle) and a 400 MHz memory clock (2500 ps per cycle); one memory cycle
// is exactly five CPU cycles, so both domains are exact in picoseconds.
package timing

import "fmt"

// Time is an absolute simulation time or a duration, in picoseconds.
// int64 picoseconds cover about 106 days of simulated time, far beyond the
// 5-second windows the experiments use.
type Time int64

// Common units, expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond

	// CPUCycle is one cycle of the 2 GHz core clock.
	CPUCycle Time = 500
	// MemCycle is one cycle of the 400 MHz memory clock.
	MemCycle Time = 2500
)

// Forever is a sentinel meaning "no deadline". It is far larger than any
// reachable simulation time but small enough that adding small offsets to
// it cannot overflow int64.
const Forever Time = 1 << 62

// Nanoseconds returns t as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// CPUCycles returns the number of whole CPU cycles in t.
func (t Time) CPUCycles() int64 { return int64(t / CPUCycle) }

// MemCycles returns the number of whole memory cycles in t.
func (t Time) MemCycles() int64 { return int64(t / MemCycle) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// Nanoseconds constructs a Time from a float64 nanosecond count, rounding
// to the nearest picosecond.
func Nanoseconds(ns float64) Time { return Time(ns*1000 + 0.5) }

// CPUCycles constructs a duration of n CPU cycles.
func CPUCycles(n int64) Time { return Time(n) * CPUCycle }

// MemCycles constructs a duration of n memory cycles.
func MemCycles(n int64) Time { return Time(n) * MemCycle }

// AlignUp rounds t up to the next multiple of quantum. A zero or negative
// quantum returns t unchanged.
func AlignUp(t, quantum Time) Time {
	if quantum <= 0 {
		return t
	}
	rem := t % quantum
	if rem == 0 {
		return t
	}
	return t + quantum - rem
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
