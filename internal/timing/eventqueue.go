package timing

// Event is a callback scheduled to run at a particular simulation time.
// Events are owned and recycled by their EventQueue: once an event has
// fired or been cancelled the queue may reuse its storage for a later
// Schedule, so callers must not retain *Event across those points. Use
// the EventRef returned by Schedule, which stays safe to Cancel forever.
type Event struct {
	At Time
	Do func(now Time)

	seq int64 // insertion order; ties at the same At run FIFO
	idx int   // heap index, -1 when not queued
}

// EventRef is a cancellation handle for a scheduled event. The zero
// EventRef refers to nothing; cancelling it is a no-op. A ref whose
// event already fired or was cancelled is detected by its sequence
// number (sequence numbers are never reused), so stale refs are always
// safe, even after the queue recycles the event's storage.
type EventRef struct {
	ev  *Event
	seq int64
}

// Valid reports whether the ref was obtained from Schedule (it may
// still refer to an already-fired event).
func (r EventRef) Valid() bool { return r.ev != nil }

// Seq returns the event's sequence number (-1 for the zero ref). Within
// one queue lifetime, sequence numbers totally order events scheduled
// for the same instant, which is what state snapshots record to rebuild
// the dispatch order on restore.
func (r EventRef) Seq() int64 {
	if r.ev == nil {
		return -1
	}
	return r.seq
}

// EventQueue is a deterministic min-heap of events. Events scheduled for
// the same instant fire in the order they were scheduled, which keeps
// simulations reproducible regardless of map iteration or goroutine
// scheduling (the simulator is single-threaded).
//
// Fired and cancelled events are kept on an internal free list and
// reused by later Schedule calls, so a steady-state simulation
// schedules millions of events without allocating.
type EventQueue struct {
	h    []*Event
	free []*Event
	seq  int64
	now  Time
}

// NewEventQueue returns an empty queue whose clock starts at 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current simulation time: the At of the most recently
// dispatched event.
func (q *EventQueue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at. Scheduling in the past (before
// Now) is a programming error and panics, since it would silently reorder
// causality.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) EventRef {
	if at < q.now {
		panic("timing: event scheduled in the past")
	}
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.At, ev.Do, ev.seq = at, fn, q.seq
	q.seq++
	ev.idx = len(q.h)
	q.h = append(q.h, ev)
	q.siftUp(ev.idx)
	return EventRef{ev: ev, seq: ev.seq}
}

// Reset discards every pending event, restarts the sequence counter and
// sets the clock to now. It is the first step of restoring a state
// snapshot: the restored components re-schedule their pending events
// onto the emptied queue (see Pending).
func (q *EventQueue) Reset(now Time) {
	for _, ev := range q.h {
		q.recycle(ev)
	}
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
	q.seq = 0
	q.now = now
}

// After enqueues fn to run d after the current time.
func (q *EventQueue) After(d Time, fn func(now Time)) EventRef {
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling a zero ref, or a ref whose
// event already fired or was already cancelled, is a no-op.
func (q *EventQueue) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.seq != ref.seq || ev.idx < 0 {
		return
	}
	i := ev.idx
	last := len(q.h) - 1
	q.h[i] = q.h[last]
	q.h[i].idx = i
	q.h[last] = nil
	q.h = q.h[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	q.recycle(ev)
}

// recycle returns a dequeued event to the free list.
func (q *EventQueue) recycle(ev *Event) {
	ev.idx = -1
	ev.Do = nil // release the closure for GC
	q.free = append(q.free, ev)
}

// PeekTime returns the time of the earliest pending event, or Forever if
// the queue is empty.
func (q *EventQueue) PeekTime() Time {
	if len(q.h) == 0 {
		return Forever
	}
	return q.h[0].At
}

// Step dispatches the earliest pending event, advancing the clock to its
// time. It reports whether an event was dispatched.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[0].idx = 0
	q.h[last] = nil
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	ev.idx = -1
	q.now = ev.At
	do := ev.Do
	// Recycle before dispatch: the callback may Schedule, and reusing
	// this event's storage there is safe because the caller's EventRef
	// sequence number no longer matches.
	q.recycle(ev)
	do(q.now)
	return true
}

// RunUntil dispatches events in order until the next event would be after
// deadline or the queue drains, then advances the clock to deadline.
func (q *EventQueue) RunUntil(deadline Time) {
	for len(q.h) > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Drain dispatches events until none remain. Intended for tests; a
// simulation with periodic timers never drains.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && q.Step() {
		n++
	}
	return n
}

// less orders the heap by time, then schedule order.
func (q *EventQueue) less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from index i toward the root.
func (q *EventQueue) siftUp(i int) {
	h := q.h
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// siftDown restores the heap property from index i toward the leaves,
// reporting whether the event moved.
func (q *EventQueue) siftDown(i int) bool {
	h := q.h
	n := len(h)
	ev := h[i]
	start := i
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.less(h[r], h[child]) {
			child = r
		}
		if !q.less(h[child], ev) {
			break
		}
		h[i] = h[child]
		h[i].idx = i
		i = child
	}
	h[i] = ev
	ev.idx = i
	return i > start
}
