package timing

import "container/heap"

// Event is a callback scheduled to run at a particular simulation time.
type Event struct {
	At Time
	Do func(now Time)

	seq int64 // insertion order; ties at the same At run FIFO
	idx int   // heap index, -1 when not queued
}

// EventQueue is a deterministic min-heap of events. Events scheduled for
// the same instant fire in the order they were scheduled, which keeps
// simulations reproducible regardless of map iteration or goroutine
// scheduling (the simulator is single-threaded).
type EventQueue struct {
	h   eventHeap
	seq int64
	now Time
}

// NewEventQueue returns an empty queue whose clock starts at 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current simulation time: the At of the most recently
// dispatched event.
func (q *EventQueue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at. Scheduling in the past (before
// Now) is a programming error and panics, since it would silently reorder
// causality.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) *Event {
	if at < q.now {
		panic("timing: event scheduled in the past")
	}
	ev := &Event{At: at, Do: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, ev)
	return ev
}

// After enqueues fn to run d after the current time.
func (q *EventQueue) After(d Time, fn func(now Time)) *Event {
	return q.Schedule(q.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(q.h) || q.h[ev.idx] != ev {
		return
	}
	heap.Remove(&q.h, ev.idx)
	ev.idx = -1
}

// PeekTime returns the time of the earliest pending event, or Forever if
// the queue is empty.
func (q *EventQueue) PeekTime() Time {
	if len(q.h) == 0 {
		return Forever
	}
	return q.h[0].At
}

// Step dispatches the earliest pending event, advancing the clock to its
// time. It reports whether an event was dispatched.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event)
	ev.idx = -1
	q.now = ev.At
	ev.Do(q.now)
	return true
}

// RunUntil dispatches events in order until the next event would be after
// deadline or the queue drains, then advances the clock to deadline.
func (q *EventQueue) RunUntil(deadline Time) {
	for len(q.h) > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Drain dispatches events until none remain. Intended for tests; a
// simulation with periodic timers never drains.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && q.Step() {
		n++
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
