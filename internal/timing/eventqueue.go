package timing

// Event is a callback scheduled to run at a particular simulation time.
// Events are owned and recycled by their EventQueue: once an event has
// fired or been cancelled the queue may reuse its storage for a later
// Schedule, so callers must not retain *Event across those points. Use
// the EventRef returned by Schedule, which stays safe to Cancel forever.
type Event struct {
	At Time
	Do func(now Time)

	seq int64 // insertion order; ties at the same At run FIFO
	idx int   // heap index, -1 when not queued
}

// EventRef is a cancellation handle for a scheduled event. The zero
// EventRef refers to nothing; cancelling it is a no-op. A ref whose
// event already fired or was cancelled is detected by its sequence
// number (sequence numbers are never reused), so stale refs are always
// safe, even after the queue recycles the event's storage.
type EventRef struct {
	ev  *Event
	seq int64
}

// Valid reports whether the ref was obtained from Schedule (it may
// still refer to an already-fired event).
func (r EventRef) Valid() bool { return r.ev != nil }

// Seq returns the event's sequence number (-1 for the zero ref). Within
// one queue lifetime, sequence numbers totally order events scheduled
// for the same instant, which is what state snapshots record to rebuild
// the dispatch order on restore.
func (r EventRef) Seq() int64 {
	if r.ev == nil {
		return -1
	}
	return r.seq
}

// clock is the (time, sequence) source of one simulation. A standalone
// EventQueue owns its clock; the queues of a ShardSet share one, so a
// component scheduling onto any shard sees the same global Now and every
// event across all shards draws from one sequence space — which is what
// makes the merged dispatch order of a sharded run identical to the
// serial order (ties at the same instant still resolve by schedule
// order, regardless of which shard holds the event).
type clock struct {
	now Time
	seq int64
}

// EventQueue is a deterministic min-heap of events. Events scheduled for
// the same instant fire in the order they were scheduled, which keeps
// simulations reproducible regardless of map iteration or goroutine
// scheduling (event dispatch is serialized even under a ShardSet).
//
// Fired and cancelled events are kept on an internal free list and
// reused by later Schedule calls, so a steady-state simulation
// schedules millions of events without allocating.
type EventQueue struct {
	h    []*Event
	free []*Event
	ck   *clock

	// timers are coarse one-shot deadline slots (see NewTimer), cheaper
	// than heap events for the re-arm-heavy wakeups of the sharded
	// engine. Only ShardSet-driven queues use them; a standalone queue's
	// timer slice stays nil and Step ignores the field entirely.
	timers []*Timer

	// set/shard back-reference when the queue belongs to a ShardSet;
	// Schedule uses it to tighten the executing batch's ordering bound
	// when work lands on another shard (see ShardSet.limAt).
	set   *ShardSet
	shard int

	// dirty is set by every mutation that can move the queue's earliest
	// work (Schedule, Cancel, dispatch, timer arm/disarm, Reset). The
	// ShardSet barrier uses it to recompute head keys only for queues
	// that actually changed since the previous epoch.
	dirty bool
}

// NewEventQueue returns an empty queue whose clock starts at 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{ck: &clock{}}
}

// Now returns the current simulation time: the At of the most recently
// dispatched event.
func (q *EventQueue) Now() Time { return q.ck.now }

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time at. Scheduling in the past (before
// Now) is a programming error and panics, since it would silently reorder
// causality.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) EventRef {
	if at < q.ck.now {
		panic("timing: event scheduled in the past")
	}
	var ev *Event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.At, ev.Do, ev.seq = at, fn, q.ck.seq
	q.ck.seq++
	ev.idx = len(q.h)
	q.h = append(q.h, ev)
	q.siftUp(ev.idx)
	q.dirty = true
	if s := q.set; s != nil && s.active >= 0 && q.shard != s.active &&
		(at < s.limAt || (at == s.limAt && ev.seq < s.limSeq)) {
		// Cross-shard traffic now precedes the executing batch's
		// ordering bound: tighten the bound so the batch stops before
		// running past it. The batch keeps dispatching its earlier
		// work — nothing is aborted or redone.
		s.limAt, s.limSeq = at, ev.seq
	}
	return EventRef{ev: ev, seq: ev.seq}
}

// Reset discards every pending event, restarts the sequence counter and
// sets the clock to now. It is the first step of restoring a state
// snapshot: the restored components re-schedule their pending events
// onto the emptied queue (see Pending).
func (q *EventQueue) Reset(now Time) {
	for _, ev := range q.h {
		q.recycle(ev)
	}
	for i := range q.h {
		q.h[i] = nil
	}
	q.h = q.h[:0]
	for _, t := range q.timers {
		t.At = Forever
	}
	q.dirty = true
	q.ck.seq = 0
	q.ck.now = now
}

// After enqueues fn to run d after the current time.
func (q *EventQueue) After(d Time, fn func(now Time)) EventRef {
	return q.Schedule(q.ck.now+d, fn)
}

// Cancel removes a pending event. Cancelling a zero ref, or a ref whose
// event already fired or was already cancelled, is a no-op.
func (q *EventQueue) Cancel(ref EventRef) {
	ev := ref.ev
	if ev == nil || ev.seq != ref.seq || ev.idx < 0 {
		return
	}
	i := ev.idx
	last := len(q.h) - 1
	q.h[i] = q.h[last]
	q.h[i].idx = i
	q.h[last] = nil
	q.h = q.h[:last]
	if i < last {
		if !q.siftDown(i) {
			q.siftUp(i)
		}
	}
	q.dirty = true
	q.recycle(ev)
}

// recycle returns a dequeued event to the free list.
func (q *EventQueue) recycle(ev *Event) {
	ev.idx = -1
	ev.Do = nil // release the closure for GC
	q.free = append(q.free, ev)
}

// PeekTime returns the time of the earliest pending event or armed
// timer, or Forever if the queue is idle.
func (q *EventQueue) PeekTime() Time {
	at := Forever
	if len(q.h) > 0 {
		at = q.h[0].At
	}
	for _, t := range q.timers {
		if t.At < at {
			at = t.At
		}
	}
	return at
}

// headKey returns the (time, seq) dispatch key of the queue's earliest
// work. Armed timers carry real sequence numbers (assigned at Arm), so
// they interleave with heap events — here and across shards in a merge —
// exactly as the equivalent Scheduled event would.
func (q *EventQueue) headKey() (Time, int64) {
	at, seq := Forever, int64(1<<62)
	if len(q.h) > 0 {
		at, seq = q.h[0].At, q.h[0].seq
	}
	for _, t := range q.timers {
		if t.At < at || (t.At == at && t.seq < seq) {
			at, seq = t.At, t.seq
		}
	}
	return at, seq
}

// runWindow dispatches the queue's work in (time, seq) order while it
// stays before windowEnd (the deadline clip) and ahead of the batch's
// ordering bound — the earliest (time, seq) owned by any other shard,
// re-read every iteration because the batch's own cross-shard
// scheduling tightens it in place. It is the batch loop of ShardSet;
// living here lets each iteration peek the heap head and timer slots
// exactly once instead of once in headKey and again in dispatchKey.
func (q *EventQueue) runWindow(s *ShardSet, windowEnd Time) {
	for {
		at, seq := Forever, int64(1<<62)
		if len(q.h) > 0 {
			at, seq = q.h[0].At, q.h[0].seq
		}
		var timer *Timer
		for _, t := range q.timers {
			if t.At < at || (t.At == at && t.seq < seq) {
				at, seq = t.At, t.seq
				timer = t
			}
		}
		if at >= windowEnd || at > s.limAt || (at == s.limAt && seq > s.limSeq) {
			return
		}
		if timer != nil {
			timer.At = Forever
			q.dirty = true
			q.ck.now = at
			timer.fn(at)
		} else {
			q.Step()
		}
	}
}

// Step dispatches the earliest pending heap event, advancing the clock
// to its time. It reports whether an event was dispatched. (Timer slots
// are dispatched by ShardSet via headKey/stepHead, never by Step.)
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[0].idx = 0
	q.h[last] = nil
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	q.dirty = true
	ev.idx = -1
	q.ck.now = ev.At
	do := ev.Do
	// Recycle before dispatch: the callback may Schedule, and reusing
	// this event's storage there is safe because the caller's EventRef
	// sequence number no longer matches.
	q.recycle(ev)
	do(q.ck.now)
	return true
}

// RunUntil dispatches events in order until the next event would be after
// deadline or the queue drains, then advances the clock to deadline.
func (q *EventQueue) RunUntil(deadline Time) {
	for len(q.h) > 0 && q.h[0].At <= deadline {
		q.Step()
	}
	if q.ck.now < deadline {
		q.ck.now = deadline
	}
}

// Drain dispatches events until none remain. Intended for tests; a
// simulation with periodic timers never drains.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && q.Step() {
		n++
	}
	return n
}

// Timer is a one-shot deadline slot on an EventQueue: a single mutable
// (At, seq, fn) triple that fires at most once per arming and re-arms
// with two stores instead of a Cancel+Schedule heap round-trip. It
// exists for the sharded engine's channel wakeups, which are re-aimed on
// nearly every kick; as heap events that churn dominates sift cost.
// Arming draws a sequence number from the queue's clock exactly like
// Schedule, so an armed timer interleaves with same-instant heap events
// precisely as the event it replaces would have — replacing an event
// with a timer changes no dispatch order. A disarmed timer holds
// At == Forever. Timers are not part of Len/Drain; they are dispatched
// only by a ShardSet (stepHead).
type Timer struct {
	At  Time
	seq int64
	fn  func(now Time)
	q   *EventQueue // owning queue, for barrier dirty-marking
}

// NewTimer registers a timer slot on the queue, initially disarmed. The
// number of slots per queue is expected to stay small (one per memory
// channel mapped to the shard); every PeekTime/headKey scans them.
func (q *EventQueue) NewTimer(fn func(now Time)) *Timer {
	t := &Timer{At: Forever, fn: fn, q: q}
	q.timers = append(q.timers, t)
	return t
}

// Arm sets the timer to fire at `at`, replacing any earlier deadline and
// assigning a fresh sequence number (the ordering position a Schedule
// call at this point would get). Arming in the past is a programming
// error, as with Schedule.
func (t *Timer) Arm(q *EventQueue, at Time) {
	if at < q.ck.now {
		panic("timing: timer armed in the past")
	}
	t.At = at
	t.seq = q.ck.seq
	q.ck.seq++
	q.dirty = true
	if s := q.set; s != nil && s.active >= 0 && q.shard != s.active &&
		(at < s.limAt || (at == s.limAt && t.seq < s.limSeq)) {
		s.limAt, s.limSeq = at, t.seq // cross-shard deadline tightens the batch bound
	}
}

// Seq returns the sequence number assigned at the last Arm (snapshots
// record it alongside At to rebuild dispatch order on restore).
func (t *Timer) Seq() int64 { return t.seq }

// Disarm clears the timer.
func (t *Timer) Disarm() {
	t.At = Forever
	t.q.dirty = true
}

// Armed reports whether the timer holds a live deadline.
func (t *Timer) Armed() bool { return t.At != Forever }

// less orders the heap by time, then schedule order.
func (q *EventQueue) less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// The heap is 4-ary: half the depth of a binary heap, so the pop-heavy
// dispatch loop does fewer cache-missing levels per sift. Arity changes
// only the internal shape — pops still deliver strict (At, seq) order.

// siftUp restores the heap property from index i toward the root.
func (q *EventQueue) siftUp(i int) {
	h := q.h
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

// siftDown restores the heap property from index i toward the leaves,
// reporting whether the event moved.
func (q *EventQueue) siftDown(i int) bool {
	h := q.h
	n := len(h)
	ev := h[i]
	start := i
	for {
		child := 4*i + 1
		if child >= n {
			break
		}
		end := child + 4
		if end > n {
			end = n
		}
		for c := child + 1; c < end; c++ {
			if q.less(h[c], h[child]) {
				child = c
			}
		}
		if !q.less(h[child], ev) {
			break
		}
		h[i] = h[child]
		h[i].idx = i
		i = child
	}
	h[i] = ev
	ev.idx = i
	return i > start
}
