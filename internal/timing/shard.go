package timing

import "runtime"

// ShardSet partitions one simulation's events across per-shard
// EventQueues that share a single clock and sequence space, and executes
// them with conservative epoch batches:
//
//   - At each barrier the set picks the shard owning the globally
//     earliest (time, seq) work; that shard becomes the batch owner.
//   - The owner dispatches its events in order — inline on the
//     coordinator, or on the shard's worker goroutine when workers are
//     enabled — while they precede the batch's ordering bound: the
//     earliest (time, seq) owned by any other shard.
//   - Cross-shard traffic is the mailbox seam: a Schedule onto another
//     shard's queue is a message stamped with the shared (time, seq).
//     A message that precedes the current bound tightens it in place,
//     so the owner stops before running past the new work; everything
//     the owner already dispatched preceded the message by
//     construction. Every message is drained in (time, seq) order, so
//     the merged dispatch sequence is exactly the serial one.
//
// Because batches always execute one-at-a-time (the barrier is a
// rendezvous), dispatch is fully serialized and components need no
// locking; worker goroutines give each shard an execution context whose
// hand-off cost only pays for itself on multi-core hosts, so they
// default to on only when GOMAXPROCS > 1.
type ShardSet struct {
	ck        *clock
	qs        []*EventQueue
	lookahead Time // retained knob: batches are bound-limited, see RunUntil

	// Batch state. While a batch executes, (limAt, limSeq) is the
	// ordering bound: the earliest (time, seq) owned by any shard other
	// than the owner, tightened in place by EventQueue.Schedule /
	// Timer.Arm when the batch emits earlier cross-shard work.
	active int // shard whose batch is executing; -1 at barriers
	limAt  Time
	limSeq int64

	epochs uint64 // windows opened (barrier count), for tests and metrics

	// keys caches each queue's head key between barriers; only queues
	// whose dirty flag is set get re-peeked. Most epochs mutate one or
	// two queues, so the barrier argmin runs over cached values.
	keys []headCache

	workers     []*shardWorker // per shard; nil entries run inline
	workersOn   bool
	workersAuto bool
}

type headCache struct {
	at  Time
	seq int64
}

type shardWorker struct {
	req  chan batchReq
	done chan struct{}
}

type batchReq struct {
	windowEnd Time
}

// NewShardSet builds n queues sharing one clock. lookahead bounds each
// epoch window; it must be positive (derive it from the minimum
// cross-shard latency of the model).
func NewShardSet(n int, lookahead Time) *ShardSet {
	if n <= 0 {
		panic("timing: ShardSet needs at least one shard")
	}
	if lookahead <= 0 {
		panic("timing: ShardSet lookahead must be positive")
	}
	s := &ShardSet{
		ck:          &clock{},
		lookahead:   lookahead,
		active:      -1,
		workersAuto: true,
	}
	for i := 0; i < n; i++ {
		q := &EventQueue{ck: s.ck, set: s, shard: i, dirty: true}
		s.qs = append(s.qs, q)
	}
	s.keys = make([]headCache, n)
	return s
}

// Queue returns shard i's event queue.
func (s *ShardSet) Queue(i int) *EventQueue { return s.qs[i] }

// NumShards returns the number of shards.
func (s *ShardSet) NumShards() int { return len(s.qs) }

// Now returns the shared simulation clock.
func (s *ShardSet) Now() Time { return s.ck.now }

// Len returns the total number of pending heap events across shards.
func (s *ShardSet) Len() int {
	n := 0
	for _, q := range s.qs {
		n += q.Len()
	}
	return n
}

// Epochs returns the number of windows opened so far.
func (s *ShardSet) Epochs() uint64 { return s.epochs }

// Reset discards all pending events and timers on every shard, restarts
// the shared sequence counter and sets the shared clock (the sharded
// analogue of EventQueue.Reset for snapshot restore).
func (s *ShardSet) Reset(now Time) {
	for _, q := range s.qs {
		q.Reset(now) // clock writes are idempotent across shards
	}
}

// SetWorkers overrides the automatic worker policy: on=true always
// drives non-coordinator shards through worker goroutines (used by the
// race-mode tests), on=false always batches inline.
func (s *ShardSet) SetWorkers(on bool) {
	s.workersAuto = false
	s.workersOn = on
	s.applyWorkers()
}

// applyWorkers starts or stops worker goroutines to match policy.
func (s *ShardSet) applyWorkers() {
	on := s.workersOn
	if s.workersAuto {
		on = runtime.GOMAXPROCS(0) > 1
	}
	switch {
	case on && s.workers == nil:
		s.workers = make([]*shardWorker, len(s.qs))
		for i := 1; i < len(s.qs); i++ { // shard 0 runs on the coordinator
			w := &shardWorker{req: make(chan batchReq), done: make(chan struct{})}
			s.workers[i] = w
			go s.workerLoop(i, w)
		}
	case !on && s.workers != nil:
		s.Close()
	}
}

// Close stops any worker goroutines. The set remains usable (batches
// run inline afterwards).
func (s *ShardSet) Close() {
	for _, w := range s.workers {
		if w != nil {
			close(w.req)
		}
	}
	s.workers = nil
}

// workerLoop parks until the barrier hands the shard a window, then
// dispatches the batch. The unbuffered req/done rendezvous is the epoch
// barrier: exactly one goroutine (coordinator or one worker) executes
// simulation code at any instant, which is what lets the components
// stay lock-free.
func (s *ShardSet) workerLoop(shard int, w *shardWorker) {
	for req := range w.req {
		s.runBatch(shard, req)
		w.done <- struct{}{}
	}
}

// runBatch dispatches shard events while they stay ahead of the batch's
// ordering bound (tightened in place by the batch's own cross-shard
// scheduling) and before the deadline clip.
func (s *ShardSet) runBatch(shard int, req batchReq) {
	s.qs[shard].runWindow(s, req.windowEnd)
}

// RunUntil executes events in global (time, seq) order up to and
// including deadline, then advances the shared clock to deadline.
func (s *ShardSet) RunUntil(deadline Time) {
	if s.workers == nil && (s.workersOn || s.workersAuto) {
		s.applyWorkers()
	}
	for {
		// Barrier: find the shard owning the earliest work, and the
		// earliest work of every other shard. Head keys are cached
		// across epochs; only queues mutated since the last barrier
		// (dirty) are re-peeked.
		best, bestAt, bestSeq := -1, Forever, int64(1<<62)
		otherAt, otherSeq := Forever, int64(1<<62)
		for i, q := range s.qs {
			if q.dirty {
				s.keys[i].at, s.keys[i].seq = q.headKey()
				q.dirty = false
			}
			at, seq := s.keys[i].at, s.keys[i].seq
			if at < bestAt || (at == bestAt && seq < bestSeq) {
				if best >= 0 && (bestAt < otherAt || (bestAt == otherAt && bestSeq < otherSeq)) {
					otherAt, otherSeq = bestAt, bestSeq
				}
				best, bestAt, bestSeq = i, at, seq
			} else if at < otherAt || (at == otherAt && seq < otherSeq) {
				otherAt, otherSeq = at, seq
			}
		}
		if best < 0 || bestAt > deadline {
			break
		}
		// The batch is bound-limited, not lookahead-limited: the owner
		// runs until its next event would pass another shard's earliest
		// work (a bound its own cross-shard scheduling tightens live),
		// so the only window clip needed is the deadline itself.
		windowEnd := deadline + 1
		s.epochs++
		s.active, s.limAt, s.limSeq = best, otherAt, otherSeq
		req := batchReq{windowEnd: windowEnd}
		if w := s.workers; w != nil && w[best] != nil {
			w[best].req <- req
			<-w[best].done
		} else {
			s.runBatch(best, req)
		}
		s.active = -1
	}
	if s.ck.now < deadline {
		s.ck.now = deadline
	}
}
