package trace

import "fmt"

// Profile parameterizes one synthetic benchmark. The address stream is a
// mixture of three components:
//
//   - hot: a pool of HotRegions 4 KB regions re-written with millisecond
//     temporal locality (the Hot-Written Memory Regions of paper §III-C);
//     region choice is power-law skewed so the pool has hotter and cooler
//     tiers like Table III.
//   - stream: a sequential cursor sweeping StreamBytes, 64 B per access
//     (spatial locality without temporal write locality — exactly the
//     pattern RRM's dirty-write filter must reject).
//   - random: uniform over WorkingSetBytes (cold misses, written-once and
//     never-written regions).
type Profile struct {
	Name string

	// MemFraction is the fraction of instructions that access data
	// memory *beyond the L1-resident working set*; the remainder
	// (including L1-hit accesses, whose 2-cycle pipelined cost an OoO
	// core hides) advance the core by BaseCPI each. This is standard
	// trace filtering: only hierarchy-relevant references are replayed.
	MemFraction float64
	// StoreFraction is the fraction of memory operations that are
	// stores.
	StoreFraction float64
	// BaseCPI is the average cycles per non-memory instruction the
	// out-of-order core sustains (ILP of the benchmark).
	BaseCPI float64
	// MaxMLP caps outstanding LLC misses the core may overlap
	// (pointer-chasing codes like mcf have little memory parallelism).
	// Zero means "limited only by the MSHRs".
	MaxMLP int

	// Mixture weights for loads and stores; the hot and stream weights
	// must sum to <= 1, the remainder is the random component.
	HotLoadFrac     float64
	StreamLoadFrac  float64
	HotStoreFrac    float64
	StreamStoreFrac float64

	// HotRegions is the hot pool size in 4 KB regions (per copy).
	HotRegions int
	// HotSkew is the power-law exponent for region choice: 1.0 is
	// uniform; larger concentrates writes in fewer regions, producing
	// Table III's interval tiers.
	HotSkew float64
	// HotBlockSpan restricts each hot visit to the first N blocks of
	// the region (0 = whole region); smaller spans re-dirty individual
	// LLC lines sooner.
	HotBlockSpan int
	// SweepGapRegions enables paired sweeps: after a region is swept,
	// it is queued and swept a second time once this many other
	// regions have been swept (stencil codes make several passes over
	// each field per time step). The gap must exceed the L1+L2
	// residence so the second pass re-dirties LLC-resident lines —
	// the signature the RRM dirty-write filter detects. 0 disables.
	SweepGapRegions int

	// StreamBytes is the wrap length of the streaming cursor.
	StreamBytes uint64
	// WorkingSetBytes bounds the random component (per copy).
	WorkingSetBytes uint64
}

// Validate checks mixture consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: empty profile name")
	}
	if p.MemFraction <= 0 || p.MemFraction >= 1 {
		return fmt.Errorf("trace %s: MemFraction %v out of (0,1)", p.Name, p.MemFraction)
	}
	if p.StoreFraction < 0 || p.StoreFraction > 1 {
		return fmt.Errorf("trace %s: StoreFraction %v", p.Name, p.StoreFraction)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("trace %s: BaseCPI %v", p.Name, p.BaseCPI)
	}
	if p.HotLoadFrac < 0 || p.StreamLoadFrac < 0 || p.HotLoadFrac+p.StreamLoadFrac > 1 {
		return fmt.Errorf("trace %s: load mixture invalid", p.Name)
	}
	if p.HotStoreFrac < 0 || p.StreamStoreFrac < 0 || p.HotStoreFrac+p.StreamStoreFrac > 1 {
		return fmt.Errorf("trace %s: store mixture invalid", p.Name)
	}
	if (p.HotLoadFrac > 0 || p.HotStoreFrac > 0) && p.HotRegions <= 0 {
		return fmt.Errorf("trace %s: hot component without hot regions", p.Name)
	}
	if (p.StreamLoadFrac > 0 || p.StreamStoreFrac > 0) && p.StreamBytes == 0 {
		return fmt.Errorf("trace %s: stream component without stream bytes", p.Name)
	}
	if p.WorkingSetBytes == 0 {
		return fmt.Errorf("trace %s: zero working set", p.Name)
	}
	if p.HotSkew < 1 {
		return fmt.Errorf("trace %s: HotSkew %v must be >= 1", p.Name, p.HotSkew)
	}
	if p.HotBlockSpan < 0 || p.HotBlockSpan > 64 {
		return fmt.Errorf("trace %s: HotBlockSpan %d", p.Name, p.HotBlockSpan)
	}
	return nil
}

// Profiles returns the nine single benchmarks of Table VII, calibrated so
// the simulated hierarchy reproduces approximately the published LLC MPKI
// and the paper's qualitative write behaviour.
func Profiles() []Profile {
	return []Profile{
		{
			// bwaves: blocked wave solver; streaming with a moderate
			// re-written block set. MPKI 11.69.
			Name: "bwaves", MemFraction: 0.013, StoreFraction: 0.35, BaseCPI: 0.30,
			HotLoadFrac: 0.45, StreamLoadFrac: 0.30,
			HotStoreFrac: 0.80, StreamStoreFrac: 0.12,
			HotRegions: 2200, HotSkew: 1.6, HotBlockSpan: 0, SweepGapRegions: 25,
			StreamBytes: 256 << 20, WorkingSetBytes: 420 << 20,
		},
		{
			// GemsFDTD: finite-difference time domain; a large hot pool
			// re-swept every few milliseconds (Table III). MPKI 26.56.
			Name: "GemsFDTD", MemFraction: 0.042, StoreFraction: 0.55, BaseCPI: 0.32,
			HotLoadFrac: 0.50, StreamLoadFrac: 0.15,
			HotStoreFrac: 0.90, StreamStoreFrac: 0.04,
			HotRegions: 1200, HotSkew: 1.8, HotBlockSpan: 0, SweepGapRegions: 40,
			StreamBytes: 192 << 20, WorkingSetBytes: 840 << 20,
		},
		{
			// hmmer: profile HMM search; compute bound, tiny footprint.
			// MPKI 2.84.
			Name: "hmmer", MemFraction: 0.0045, StoreFraction: 0.28, BaseCPI: 0.22,
			HotLoadFrac: 0.70, StreamLoadFrac: 0.05,
			HotStoreFrac: 0.95, StreamStoreFrac: 0.01,
			HotRegions: 300, HotSkew: 1.4, HotBlockSpan: 0, SweepGapRegions: 12,
			StreamBytes: 8 << 20, WorkingSetBytes: 48 << 20,
		},
		{
			// lbm: lattice Boltzmann; the heaviest writer, long streaming
			// sweeps plus a hot collision set. MPKI 55.15.
			Name: "lbm", MemFraction: 0.056, StoreFraction: 0.45, BaseCPI: 0.34,
			HotLoadFrac: 0.25, StreamLoadFrac: 0.55,
			HotStoreFrac: 0.72, StreamStoreFrac: 0.24,
			HotRegions: 8200, HotSkew: 1.5, HotBlockSpan: 0, SweepGapRegions: 60,
			StreamBytes: 400 << 20, WorkingSetBytes: 800 << 20,
		},
		{
			// leslie3d: computational fluid dynamics. MPKI 10.46.
			Name: "leslie3d", MemFraction: 0.0113, StoreFraction: 0.38, BaseCPI: 0.28,
			HotLoadFrac: 0.45, StreamLoadFrac: 0.28,
			HotStoreFrac: 0.82, StreamStoreFrac: 0.10,
			HotRegions: 2600, HotSkew: 1.6, HotBlockSpan: 0, SweepGapRegions: 25,
			StreamBytes: 160 << 20, WorkingSetBytes: 360 << 20,
		},
		{
			// libquantum: quantum simulation; long repeated sweeps over
			// the state vector with a smaller re-toggled subset. MPKI
			// 52.07, the largest static-3 speedup in the paper.
			Name: "libquantum", MemFraction: 0.053, StoreFraction: 0.38, BaseCPI: 0.40,
			HotLoadFrac: 0.20, StreamLoadFrac: 0.70,
			HotStoreFrac: 0.76, StreamStoreFrac: 0.20,
			HotRegions: 6800, HotSkew: 1.3, HotBlockSpan: 0, SweepGapRegions: 50,
			StreamBytes: 512 << 20, WorkingSetBytes: 700 << 20,
		},
		{
			// mcf: single-depot vehicle scheduling; pointer chasing over
			// a big working set, read dominated, almost no memory
			// parallelism. MPKI 73.42.
			Name: "mcf", MemFraction: 0.074, StoreFraction: 0.12, BaseCPI: 0.45, MaxMLP: 2,
			HotLoadFrac: 0.08, StreamLoadFrac: 0.02,
			HotStoreFrac: 0.65, StreamStoreFrac: 0.02,
			HotRegions: 3400, HotSkew: 1.5, HotBlockSpan: 0, SweepGapRegions: 15,
			StreamBytes: 32 << 20, WorkingSetBytes: 1500 << 20,
		},
		{
			// milc: lattice QCD; scattered gather/scatter over a large
			// lattice with a hot gauge-field subset. MPKI 34.40.
			Name: "milc", MemFraction: 0.035, StoreFraction: 0.33, BaseCPI: 0.33,
			HotLoadFrac: 0.30, StreamLoadFrac: 0.12,
			HotStoreFrac: 0.82, StreamStoreFrac: 0.06,
			HotRegions: 4600, HotSkew: 1.5, HotBlockSpan: 0, SweepGapRegions: 40,
			StreamBytes: 128 << 20, WorkingSetBytes: 680 << 20,
		},
		{
			// zeusmp: magnetohydrodynamics; modest traffic. MPKI 7.64.
			Name: "zeusmp", MemFraction: 0.0088, StoreFraction: 0.32, BaseCPI: 0.26,
			HotLoadFrac: 0.55, StreamLoadFrac: 0.18,
			HotStoreFrac: 0.88, StreamStoreFrac: 0.05,
			HotRegions: 1600, HotSkew: 1.5, HotBlockSpan: 0, SweepGapRegions: 20,
			StreamBytes: 64 << 20, WorkingSetBytes: 220 << 20,
		},
	}
}

// ProfileByName finds a single-benchmark profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Workload names the per-core benchmark assignment of one experiment run:
// either four copies of one benchmark or one of the Table VII mixes.
//
// The three optional fields below are all omitempty in the config-hash
// image, so every pre-existing workload keeps its hash (and its run
// cache entries and warm snapshots) unchanged.
type Workload struct {
	Name  string
	Cores []Profile

	// Dynamics, when set, makes the synthetic streams non-stationary
	// (phase switches, diurnal modulation, bursty arrivals). It applies
	// to every core. Synthetic workloads only.
	Dynamics *Dynamics `json:",omitempty"`

	// Replay, when non-empty, replaces synthetic generation entirely:
	// stream i replays Replay[i]'s trace file (tracefile format). Cores
	// must be empty — the core-model parameters come from the files.
	Replay []TraceRef `json:",omitempty"`

	// Tenants optionally names the owner of each stream for per-tenant
	// attribution (len must equal NumStreams). Duplicate names merge
	// cores into one tenant.
	Tenants []string `json:",omitempty"`
}

// TraceRef identifies one recorded trace stream.
type TraceRef struct {
	// Path of the trace file.
	Path string
	// Sum is the FNV-1a checksum of the complete file, verified at
	// load. It content-addresses the replay: the config hash covers the
	// trace bytes, not just a path, so replay configs can never collide
	// with each other (or with generator configs) through path reuse.
	Sum uint64
}

// NumStreams returns the number of per-core streams the workload
// describes: replay files when replaying, profiles otherwise.
func (w Workload) NumStreams() int {
	if len(w.Replay) > 0 {
		return len(w.Replay)
	}
	return len(w.Cores)
}

// Validate checks the workload's structural consistency (the profiles
// themselves are validated at stream construction).
func (w Workload) Validate() error {
	if len(w.Replay) > 0 {
		if len(w.Cores) > 0 {
			return fmt.Errorf("trace: workload %s mixes replay files and synthetic cores", w.Name)
		}
		if w.Dynamics != nil {
			return fmt.Errorf("trace: workload %s combines replay with dynamics", w.Name)
		}
		for i, ref := range w.Replay {
			if ref.Path == "" {
				return fmt.Errorf("trace: workload %s replay stream %d has no path", w.Name, i)
			}
			if ref.Sum == 0 {
				return fmt.Errorf("trace: workload %s replay stream %d has no content checksum", w.Name, i)
			}
		}
	}
	if w.Dynamics != nil {
		if err := w.Dynamics.Validate(); err != nil {
			return err
		}
	}
	if n := len(w.Tenants); n > 0 && n != w.NumStreams() {
		return fmt.Errorf("trace: workload %s names %d tenants for %d streams", w.Name, n, w.NumStreams())
	}
	for i, t := range w.Tenants {
		if t == "" {
			return fmt.Errorf("trace: workload %s tenant %d has an empty name", w.Name, i)
		}
	}
	return nil
}

// Workloads returns the paper's eleven workloads: nine single-benchmark
// (4 identical copies) plus MIX_1 and MIX_2 (Table VII).
func Workloads() []Workload {
	var ws []Workload
	for _, p := range Profiles() {
		ws = append(ws, Workload{Name: p.Name, Cores: []Profile{p, p, p, p}})
	}
	byName := func(n string) Profile {
		p, err := ProfileByName(n)
		if err != nil {
			panic(err)
		}
		return p
	}
	ws = append(ws,
		Workload{Name: "MIX_1", Cores: []Profile{byName("mcf"), byName("bwaves"), byName("zeusmp"), byName("milc")}},
		Workload{Name: "MIX_2", Cores: []Profile{byName("GemsFDTD"), byName("libquantum"), byName("lbm"), byName("leslie3d")}},
	)
	return ws
}

// DynamicWorkloads returns the non-stationary workload set used by the
// W1 experiment: traffic whose hot sets move, dilute or vanish over
// time — the regimes where RRM's decay/demotion machinery (rather than
// just its hot-set capture) determines the outcome.
func DynamicWorkloads() []Workload {
	byName := func(n string) Profile {
		p, err := ProfileByName(n)
		if err != nil {
			panic(err)
		}
		return p
	}
	gems, lbm, milc := byName("GemsFDTD"), byName("lbm"), byName("milc")
	return []Workload{
		{
			// Program phases: a write-hot FDTD kernel alternating with a
			// compute-bound stretch and a streaming solver. Each switch
			// strands the previous phase's hot regions; RRM must decay
			// them back to long-retention mode.
			Name:  "PHASE_1",
			Cores: []Profile{gems, gems, gems, gems},
			Dynamics: &Dynamics{Phases: []Phase{
				{Profile: "GemsFDTD", Ops: 400_000},
				{Profile: "hmmer", Ops: 150_000},
				{Profile: "libquantum", Ops: 400_000},
			}},
		},
		{
			// On/off bursts: full-rate lbm writing interleaved with long
			// near-idle dwells (5% load) during which fast-refresh work
			// on the stranded hot set is pure overhead.
			Name:     "BURST_1",
			Cores:    []Profile{lbm, lbm, lbm, lbm},
			Dynamics: &Dynamics{Burst: &Burst{OnOps: 250_000, OffOps: 120_000, OffLoad: 0.05}},
		},
		{
			// Diurnal load swing: milc traffic between 100% and 15% on a
			// 500k-op period — hot regions stay hot but their rewrite
			// intervals stretch through the trough.
			Name:     "DIURNAL_1",
			Cores:    []Profile{milc, milc, milc, milc},
			Dynamics: &Dynamics{Diurnal: &Diurnal{PeriodOps: 500_000, MinLoad: 0.15}},
		},
	}
}

// WorkloadByName finds a workload (single benchmark, mix, or one of the
// non-stationary DynamicWorkloads).
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range DynamicWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// PaperMPKI returns Table VII's published LLC MPKI for the nine single
// benchmarks, used by the calibration experiment (T7).
func PaperMPKI() map[string]float64 {
	return map[string]float64{
		"bwaves":     11.69,
		"GemsFDTD":   26.56,
		"hmmer":      2.84,
		"lbm":        55.15,
		"leslie3d":   10.46,
		"libquantum": 52.07,
		"mcf":        73.42,
		"milc":       34.40,
		"zeusmp":     7.64,
	}
}
