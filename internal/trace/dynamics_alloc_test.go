//go:build !race

package trace

import (
	"testing"
)

// TestDynamicNextZeroAllocs pins the non-stationary hot path at zero
// steady-state allocations, phases + diurnal + burst all active.
// (Skipped under -race: the detector's instrumentation allocates.)
func TestDynamicNextZeroAllocs(t *testing.T) {
	prof, err := ProfileByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(prof, testDynamics(), 0, 2<<30, 42)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	for i := 0; i < 100_000; i++ {
		d.Next(&op)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			d.Next(&op)
		}
	})
	if avg != 0 {
		t.Errorf("Next allocates %.2f per 1000 ops, want 0", avg)
	}
}
