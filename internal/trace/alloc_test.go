//go:build !race

package trace

import (
	"testing"
)

// TestMixtureNextZeroAllocs pins the trace hot path at zero steady-state
// allocations: every profile's generator, including the sweep-revisit
// ring, must produce its stream without touching the heap. (Skipped under
// -race: the detector's instrumentation allocates.)
func TestMixtureNextZeroAllocs(t *testing.T) {
	for _, prof := range Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			m, err := NewMixture(prof, 0, 2<<30, 42)
			if err != nil {
				t.Fatal(err)
			}
			var op Op
			// Warm: fill the revisit ring and the stream cursor so any
			// one-time growth happens before measuring.
			for i := 0; i < 100_000; i++ {
				m.Next(&op)
			}
			avg := testing.AllocsPerRun(100, func() {
				for i := 0; i < 1000; i++ {
					m.Next(&op)
				}
			})
			if avg != 0 {
				t.Errorf("Next allocates %.2f per 1000 ops, want 0", avg)
			}
		})
	}
}
