package trace

import (
	"fmt"
	"math"
)

// Op is one unit of work from a generator: NonMem non-memory instructions
// followed by a single memory access.
type Op struct {
	NonMem int
	Addr   uint64
	Store  bool
}

// Generator produces an infinite, deterministic instruction stream.
type Generator interface {
	// Next fills op with the next work unit.
	Next(op *Op)
	// Name identifies the benchmark.
	Name() string
}

// Mixture is the three-component generator described in Profile.
type Mixture struct {
	prof Profile
	rng  prng

	base uint64 // address-space offset of this copy
	span uint64 // address-space size available to this copy

	avgNonMem float64

	hotBases  []uint64 // region base addresses of the hot pool
	streamPos uint64

	// hotThresholds[j] is the smallest u with power-law bucket index
	// j+1, precomputed so the per-draw region choice is a binary search
	// instead of a math.Pow call (~half the generator's cost). The
	// boundaries are refined to exact float64 adjacency against the
	// original int(Pow(u, skew)*n) expression, so the chosen region is
	// bit-identical to evaluating it directly.
	hotThresholds []float64

	// hotCells[j] counts thresholds strictly below j*2^-12: a draw u in
	// cell j = int(u*4096) only needs to scan hotThresholds in
	// [hotCells[j], hotCells[j+1]) — at typical pool sizes under a
	// handful of boundaries — instead of a full binary search.
	hotCells []int32

	// Hot-store sweep state: hot writes visit a region as a burst that
	// sweeps its blocks in order (the spatial pattern of stencil /
	// field-update codes), so a region's blocks are re-written at the
	// region revisit interval — the temporal-locality signature the
	// RRM's dirty-write filter detects. A uniform random spray would
	// spread re-writes of one block 64x further apart and no LLC line
	// would ever be re-dirtied while resident.
	sweepBase uint64
	sweepNext int
	sweepLeft int

	// revisit is a FIFO ring of regions awaiting their second sweep
	// (paired sweeps; see Profile.SweepGapRegions). A ring instead of a
	// shifted slice keeps pops O(1) and the backing array stable, so
	// steady-state generation is allocation-free.
	revisit     []uint64
	revisitHead int
	revisitLen  int
}

// NewMixture builds a generator for one benchmark copy. base/span carve
// the copy's address-space partition (the paper runs 4 copies in 8 GB, so
// each gets a 2 GB quarter); seed makes the stream unique per core.
func NewMixture(prof Profile, base, span uint64, seed uint64) (*Mixture, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if span == 0 {
		return nil, fmt.Errorf("trace: zero address span")
	}
	if prof.WorkingSetBytes > span {
		return nil, fmt.Errorf("trace %s: working set %d exceeds span %d",
			prof.Name, prof.WorkingSetBytes, span)
	}
	m := &Mixture{
		prof: prof,
		rng:  newPRNG(seed),
		base: base,
		span: span,
	}
	if g := prof.SweepGapRegions; g > 0 {
		// Steady-state ring occupancy is g+1 (one push per pop once the
		// gap is filled); pre-size so generation never allocates.
		m.revisit = make([]uint64, g+2)
	}
	// Average non-memory instructions between memory ops.
	m.avgNonMem = (1 - prof.MemFraction) / prof.MemFraction

	// Hot pool: distinct 4 KB regions scattered through the working
	// set, chosen once per copy (deterministically from the seed).
	if prof.HotRegions > 0 {
		wsRegions := prof.WorkingSetBytes >> 12
		if wsRegions == 0 {
			wsRegions = 1
		}
		m.hotBases = make([]uint64, prof.HotRegions)
		stride := wsRegions / uint64(prof.HotRegions)
		if stride == 0 {
			stride = 1
		}
		for i := range m.hotBases {
			// Evenly spread with random jitter: scattered but stable.
			region := (uint64(i)*stride + m.rng.next()%stride) % wsRegions
			m.hotBases[i] = base + region<<12
		}
		if len(m.hotBases) > 1 {
			m.hotThresholds = buildHotThresholds(len(m.hotBases), prof.HotSkew)
			m.hotCells = buildHotCells(m.hotThresholds)
		}
	}
	return m, nil
}

// buildHotThresholds precomputes, for each bucket i in [1, n), the
// smallest float64 u at which int(math.Pow(u, skew)*n), clamped to n-1,
// reaches i. Non-negative float64s order identically to their bit
// patterns, so the exact float boundary is found by galloping out from
// the analytic inverse (i/n)^(1/skew) — within a few ulps of the true
// edge — and bit-bisecting the bracket. Construction costs a handful of
// Pow calls per bucket, once per generator.
func buildHotThresholds(n int, skew float64) []float64 {
	fn := float64(n)
	pred := func(b uint64, i int) bool {
		idx := int(math.Pow(math.Float64frombits(b), skew) * fn)
		if idx >= n {
			idx = n - 1
		}
		return idx >= i
	}
	one := math.Float64bits(1.0)
	th := make([]float64, n-1)
	for i := 1; i < n; i++ {
		gb := math.Float64bits(math.Pow(float64(i)/fn, 1/skew))
		if gb > one {
			gb = one
		}
		// Bracket [lo, hi] with pred(hi) true and pred(lo-1) false
		// (u=0 maps to bucket 0 and u=1 clamps to n-1, so both ends
		// are guaranteed).
		var lo, hi uint64
		if pred(gb, i) {
			lo, hi = 0, gb
			for step := uint64(1); hi >= step; step *= 2 {
				if c := hi - step; !pred(c, i) {
					lo = c + 1
					break
				}
			}
		} else {
			lo, hi = gb+1, one
			for step := uint64(1); lo+step <= one; step *= 2 {
				if c := lo + step; pred(c, i) {
					hi = c
					break
				}
			}
		}
		for lo < hi {
			mid := lo + (hi-lo)/2
			if pred(mid, i) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		th[i-1] = math.Float64frombits(lo)
	}
	return th
}

// buildHotCells builds the 4096-cell coarse index over the sorted
// threshold list: cells[j] = #{th[i] < j*2^-12}. The cell width 2^-12 is
// a power of two, so int(u*4096) is an exact bucketing of u.
func buildHotCells(th []float64) []int32 {
	cells := make([]int32, 4097)
	idx := 0
	for j := 0; j <= 4096; j++ {
		bound := float64(j) * (1.0 / 4096)
		for idx < len(th) && th[idx] < bound {
			idx++
		}
		cells[j] = int32(idx)
	}
	return cells
}

// Name implements Generator.
func (m *Mixture) Name() string { return m.prof.Name }

// Next implements Generator.
func (m *Mixture) Next(op *Op) {
	// Geometric-ish gap around the profile average: uniform in
	// [0, 2*avg] keeps the mean while varying the spacing (rounded,
	// so truncation doesn't bias the mean down by half an
	// instruction).
	op.NonMem = int(m.rng.float64()*2*m.avgNonMem + 0.5)
	u := m.rng.float64()
	op.Store = u < m.prof.StoreFraction

	var hotFrac, streamFrac float64
	if op.Store {
		hotFrac, streamFrac = m.prof.HotStoreFrac, m.prof.StreamStoreFrac
	} else {
		hotFrac, streamFrac = m.prof.HotLoadFrac, m.prof.StreamLoadFrac
	}
	v := m.rng.float64()
	switch {
	case v < hotFrac:
		if op.Store {
			op.Addr = m.hotSweepAddr()
		} else {
			op.Addr = m.hotRandomAddr()
		}
	case v < hotFrac+streamFrac:
		op.Addr = m.streamAddr()
	default:
		op.Addr = m.randomAddr()
	}
}

// hotRegionIndex picks a hot-pool region with power-law skew: the
// bucket is the count of precomputed boundaries at or below the draw,
// which equals int(Pow(u, skew)*n) by construction (see
// buildHotThresholds) without paying for Pow on every access.
func (m *Mixture) hotRegionIndex() int {
	u := m.rng.float64()
	if m.hotCells == nil {
		return 0 // single-region pool: the draw still advances the rng
	}
	j := int(u * 4096)
	idx := int(m.hotCells[j])
	th := m.hotThresholds
	for e := int(m.hotCells[j+1]); idx < e && th[idx] <= u; idx++ {
	}
	return idx
}

// hotSweepAddr returns the next block of the current hot-store sweep,
// starting a new sweep over a (power-law chosen) region when the previous
// one finishes.
func (m *Mixture) hotSweepAddr() uint64 {
	if m.sweepLeft == 0 {
		if g := m.prof.SweepGapRegions; g > 0 && m.revisitLen > g {
			// Second pass over a region swept a while ago.
			m.sweepBase = m.revisitPop()
		} else {
			m.sweepBase = m.hotBases[m.hotRegionIndex()]
			if m.prof.SweepGapRegions > 0 {
				m.revisitPush(m.sweepBase)
			}
		}
		m.sweepNext = 0
		m.sweepLeft = m.prof.HotBlockSpan
		if m.sweepLeft == 0 {
			m.sweepLeft = 64
		}
	}
	addr := m.sweepBase + uint64(m.sweepNext)*64
	m.sweepNext++
	m.sweepLeft--
	return addr
}

// revisitPop removes and returns the oldest queued revisit region.
func (m *Mixture) revisitPop() uint64 {
	v := m.revisit[m.revisitHead]
	m.revisitHead++
	if m.revisitHead == len(m.revisit) {
		m.revisitHead = 0
	}
	m.revisitLen--
	return v
}

// revisitPush appends a region to the revisit ring, growing it when
// full (steady state never grows: the queue length is bounded by
// SweepGapRegions+1).
func (m *Mixture) revisitPush(base uint64) {
	if m.revisitLen == len(m.revisit) {
		grown := make([]uint64, 2*len(m.revisit)+2)
		for i := 0; i < m.revisitLen; i++ {
			grown[i] = m.revisit[(m.revisitHead+i)%len(m.revisit)]
		}
		m.revisit = grown
		m.revisitHead = 0
	}
	m.revisit[(m.revisitHead+m.revisitLen)%len(m.revisit)] = base
	m.revisitLen++
}

// hotRandomAddr picks a uniform block in a power-law chosen hot region
// (hot loads: read-modify-write traffic that also keeps hot lines warm in
// the LLC's LRU).
func (m *Mixture) hotRandomAddr() uint64 {
	span := m.prof.HotBlockSpan
	if span == 0 {
		span = 64
	}
	return m.hotBases[m.hotRegionIndex()] + uint64(m.rng.intn(span))*64
}

// streamAddr advances the sequential cursor one block.
func (m *Mixture) streamAddr() uint64 {
	addr := m.base + (m.streamPos % m.prof.StreamBytes)
	m.streamPos += 64
	return addr
}

// randomAddr picks a uniform block in the working set.
func (m *Mixture) randomAddr() uint64 {
	blocks := m.prof.WorkingSetBytes / 64
	return m.base + (m.rng.next()%blocks)*64
}

// MaxMLP exposes the profile's memory-parallelism cap for the core model.
func (m *Mixture) MaxMLP() int { return m.prof.MaxMLP }

// BaseCPI exposes the profile's non-memory CPI for the core model.
func (m *Mixture) BaseCPI() float64 { return m.prof.BaseCPI }

// Profile returns the generator's profile.
func (m *Mixture) Profile() Profile { return m.prof }
