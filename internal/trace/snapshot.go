package trace

import "rrmpcm/internal/snapshot"

// Section tag for Mixture state inside a system snapshot.
const snapSection = 0x5452 // "TR"

// Snapshot writes the generator's mutable stream state. The profile,
// address partition and hot pool are construction-time constants (the
// hot pool is derived deterministically from the seed before the stream
// starts), so only the cursor state needs to travel.
func (m *Mixture) Snapshot(w *snapshot.Writer) {
	w.Section(snapSection)
	w.U64(m.rng.state)
	w.U64(m.streamPos)
	w.U64(m.sweepBase)
	w.I64(int64(m.sweepNext))
	w.I64(int64(m.sweepLeft))
	// The revisit ring travels as a FIFO sequence; restore rebuilds it
	// head-first, which preserves pop order (the only observable).
	w.U32(uint32(m.revisitLen))
	for i := 0; i < m.revisitLen; i++ {
		w.U64(m.revisit[(m.revisitHead+i)%len(m.revisit)])
	}
}

// Restore loads state written by Snapshot into a freshly constructed
// Mixture with the same profile and seed.
func (m *Mixture) Restore(r *snapshot.Reader) {
	r.Section(snapSection)
	m.rng.state = r.U64()
	m.streamPos = r.U64()
	m.sweepBase = r.U64()
	m.sweepNext = int(r.I64())
	m.sweepLeft = int(r.I64())
	n := r.Count(1 << 20)
	m.revisitHead = 0
	m.revisitLen = 0
	for i := 0; i < n; i++ {
		m.revisitPush(r.U64())
	}
}
