package trace

import (
	"math"
	"testing"
)

func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(42), newPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newPRNG(43)
	same := 0
	a = newPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times", same)
	}
}

func TestPRNGUniformity(t *testing.T) {
	p := newPRNG(7)
	var sum float64
	n := 100_000
	for i := 0; i < n; i++ {
		f := p.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[p.intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("digit %d count %d far from uniform", d, c)
		}
	}
}

func TestAllProfilesValid(t *testing.T) {
	profs := Profiles()
	if len(profs) != 9 {
		t.Fatalf("have %d profiles, want 9 (Table VII)", len(profs))
	}
	mpki := PaperMPKI()
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, ok := mpki[p.Name]; !ok {
			t.Errorf("%s missing from PaperMPKI", p.Name)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	base, _ := ProfileByName("hmmer")
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemFraction = 0 },
		func(p *Profile) { p.MemFraction = 1 },
		func(p *Profile) { p.StoreFraction = 1.5 },
		func(p *Profile) { p.BaseCPI = 0 },
		func(p *Profile) { p.HotLoadFrac = 0.9; p.StreamLoadFrac = 0.2 },
		func(p *Profile) { p.HotStoreFrac = -0.1 },
		func(p *Profile) { p.HotRegions = 0 },
		func(p *Profile) { p.StreamBytes = 0 },
		func(p *Profile) { p.WorkingSetBytes = 0 },
		func(p *Profile) { p.HotSkew = 0.5 },
		func(p *Profile) { p.HotBlockSpan = 65 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 11 {
		t.Fatalf("have %d workloads, want 11 (9 single + 2 mixes)", len(ws))
	}
	for _, w := range ws {
		if len(w.Cores) != 4 {
			t.Errorf("%s has %d cores, want 4", w.Name, len(w.Cores))
		}
	}
	mix2, err := WorkloadByName("MIX_2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GemsFDTD", "libquantum", "lbm", "leslie3d"}
	for i, p := range mix2.Cores {
		if p.Name != want[i] {
			t.Errorf("MIX_2 core %d = %s, want %s", i, p.Name, want[i])
		}
	}
	if _, err := WorkloadByName("nonesuch"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestMixtureDeterminism(t *testing.T) {
	p, _ := ProfileByName("GemsFDTD")
	a, err := NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewMixture(p, 0, 2<<30, 1)
	var oa, ob Op
	for i := 0; i < 10_000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		if oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestMixtureStaysInPartition(t *testing.T) {
	for _, prof := range Profiles() {
		base := uint64(2) << 30
		span := uint64(2) << 30
		m, err := NewMixture(prof, base, span, 99)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		var op Op
		for i := 0; i < 50_000; i++ {
			m.Next(&op)
			if op.Addr < base || op.Addr >= base+span {
				t.Fatalf("%s: addr %#x outside [%#x, %#x)", prof.Name, op.Addr, base, base+span)
			}
			if op.Addr%64 != 0 {
				t.Fatalf("%s: addr %#x not block aligned", prof.Name, op.Addr)
			}
		}
	}
}

func TestMixtureStatistics(t *testing.T) {
	p, _ := ProfileByName("lbm")
	m, err := NewMixture(p, 0, 2<<30, 5)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	n := 200_000
	stores, nonMemSum := 0, 0
	for i := 0; i < n; i++ {
		m.Next(&op)
		if op.Store {
			stores++
		}
		nonMemSum += op.NonMem
	}
	storeFrac := float64(stores) / float64(n)
	if math.Abs(storeFrac-p.StoreFraction) > 0.01 {
		t.Errorf("store fraction = %v, want ~%v", storeFrac, p.StoreFraction)
	}
	// Mean gap should give the configured memory fraction:
	// memFrac = 1 / (1 + avgNonMem).
	avgGap := float64(nonMemSum) / float64(n)
	memFrac := 1 / (1 + avgGap)
	if math.Abs(memFrac-p.MemFraction) > 0.02 {
		t.Errorf("memory fraction = %v, want ~%v", memFrac, p.MemFraction)
	}
}

func TestHotComponentConcentration(t *testing.T) {
	// Stores of a hot-heavy profile must concentrate in the hot pool:
	// the paper's observation (§III-C) that ~2 % of regions take the
	// vast majority of writes.
	p, _ := ProfileByName("GemsFDTD")
	m, err := NewMixture(p, 0, 2<<30, 3)
	if err != nil {
		t.Fatal(err)
	}
	hotSet := map[uint64]bool{}
	for _, b := range m.hotBases {
		hotSet[b>>12] = true
	}
	var op Op
	stores, hotStores := 0, 0
	regions := map[uint64]bool{}
	for i := 0; i < 500_000; i++ {
		m.Next(&op)
		if !op.Store {
			continue
		}
		stores++
		regions[op.Addr>>12] = true
		if hotSet[op.Addr>>12] {
			hotStores++
		}
	}
	frac := float64(hotStores) / float64(stores)
	if frac < 0.85 {
		t.Errorf("hot store fraction = %v, want >= 0.85 (profile says 0.92)", frac)
	}
	// Hot regions are a small part of the touched footprint.
	if len(m.hotBases) >= len(regions) {
		t.Errorf("hot pool (%d) not smaller than touched regions (%d)", len(m.hotBases), len(regions))
	}
}

func TestStreamComponentIsSequential(t *testing.T) {
	p, _ := ProfileByName("libquantum")
	p.HotLoadFrac, p.HotStoreFrac = 0, 0
	p.StreamLoadFrac, p.StreamStoreFrac = 1, 1
	m, err := NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	var prev uint64
	m.Next(&op)
	prev = op.Addr
	for i := 0; i < 10_000; i++ {
		m.Next(&op)
		if op.Addr != prev+64 && op.Addr != 0 { // wraps to base 0
			t.Fatalf("stream jumped from %#x to %#x", prev, op.Addr)
		}
		prev = op.Addr
	}
}

func TestStreamWraps(t *testing.T) {
	p, _ := ProfileByName("hmmer")
	p.StreamBytes = 1 << 20
	p.HotLoadFrac, p.HotStoreFrac = 0, 0
	p.StreamLoadFrac, p.StreamStoreFrac = 1, 1
	m, err := NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	var op Op
	seen := map[uint64]int{}
	for i := 0; i < 3*(1<<20)/64; i++ {
		m.Next(&op)
		seen[op.Addr]++
	}
	for addr, n := range seen {
		if n != 3 {
			t.Fatalf("addr %#x visited %d times, want 3 (wrap)", addr, n)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	// Higher skew concentrates hot traffic in fewer regions.
	concentration := func(skew float64) float64 {
		p, _ := ProfileByName("GemsFDTD")
		p.HotSkew = skew
		m, _ := NewMixture(p, 0, 2<<30, 11)
		counts := map[uint64]int{}
		var op Op
		total := 0
		for i := 0; i < 300_000; i++ {
			m.Next(&op)
			if op.Store {
				counts[op.Addr>>12]++
				total++
			}
		}
		// Mass of the single hottest decile of regions.
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(total)
	}
	if concentration(3.0) <= concentration(1.0) {
		t.Error("higher skew did not concentrate writes")
	}
}

func TestNewMixtureErrors(t *testing.T) {
	p, _ := ProfileByName("mcf") // 1.5 GB working set
	if _, err := NewMixture(p, 0, 1<<30, 1); err == nil {
		t.Error("working set larger than span accepted")
	}
	if _, err := NewMixture(p, 0, 0, 1); err == nil {
		t.Error("zero span accepted")
	}
	p.Name = ""
	if _, err := NewMixture(p, 0, 2<<30, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestGeneratorAccessors(t *testing.T) {
	p, _ := ProfileByName("mcf")
	m, err := NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mcf" || m.MaxMLP() != 2 || m.BaseCPI() != p.BaseCPI {
		t.Error("accessors broken")
	}
	if m.Profile().Name != "mcf" {
		t.Error("profile accessor")
	}
}
