package trace

import (
	"fmt"

	"rrmpcm/internal/snapshot"
)

// Stream is the per-core instruction source the simulator drives: an
// infinite deterministic generator plus the core-model parameters and
// the snapshot hooks warm-start needs. Mixture (synthetic), Dynamic
// (non-stationary synthetic) and tracefile.Replay (recorded traces)
// all implement it.
//
// MaxMLP and BaseCPI must stay constant for the stream's lifetime: the
// core model caches both at construction (the per-instruction time step
// is precomputed), so a stream whose phases nominally have different
// BaseCPI values still reports one fixed value — phase changes act on
// the memory side (intensity, mix, addresses), not the core pipeline.
type Stream interface {
	Generator
	MaxMLP() int
	BaseCPI() float64
	Snapshot(w *snapshot.Writer)
	Restore(r *snapshot.Reader)
}

// CoreSeed derives core i's stream sub-seed from the run seed. It is
// the single definition of the simulator's per-core seeding rule, so a
// trace exported outside the simulator (tracegen -export) reproduces
// the exact stream a simulation run would generate.
func CoreSeed(seed uint64, core int) uint64 {
	return seed*1_000_003 + uint64(core)
}

// CorePartition returns core i's address partition [base, base+span)
// when n streams split memBytes evenly — the simulator's layout rule,
// shared with the trace exporter.
func CorePartition(memBytes uint64, n, core int) (base, span uint64) {
	span = memBytes / uint64(n)
	return uint64(core) * span, span
}

// NewStream builds core i's generator for workload w over the address
// partition [base, base+span) with the run seed (the per-core sub-seed
// is derived internally). Synthetic workloads get a Mixture, wrapped by
// a Dynamic when the workload declares non-stationary dynamics. Replay
// workloads are opened by the caller (the trace package cannot depend
// on the file format).
func NewStream(w Workload, i int, base, span, seed uint64) (Stream, error) {
	if i < 0 || i >= len(w.Cores) {
		return nil, fmt.Errorf("trace: stream index %d out of %d cores", i, len(w.Cores))
	}
	sub := CoreSeed(seed, i)
	if w.Dynamics == nil {
		return NewMixture(w.Cores[i], base, span, sub)
	}
	return NewDynamic(w.Cores[i], w.Dynamics, base, span, sub)
}
