package trace

import (
	"fmt"
	"math"

	"rrmpcm/internal/snapshot"
)

// Dynamics makes a workload's synthetic streams non-stationary. Each
// component is optional and they compose: Phases pick which mixture
// generates the next op, Diurnal and Burst then stretch its non-memory
// gap (diluting memory intensity without touching the address pattern).
// All three are deterministic, allocation-free after construction, and
// snapshot/restorable, so warm-start forks and the cluster fabric work
// unchanged.
//
// The fields are part of the config-hash image (trace.Workload travels
// whole); every field is omitempty so workloads without dynamics keep
// their pre-existing hashes, cache entries and warm snapshots.
type Dynamics struct {
	// Phases cycle the stream through different benchmark profiles by
	// memory-op count: phase k generates Ops ops with Profile's mixture,
	// then hands over to phase k+1 (wrapping). This is the piecewise
	// profile switch that finally exercises RRM's decay machinery — a
	// hot set forms, the phase ends, and the monitor must notice the
	// regions went cold.
	Phases []Phase `json:",omitempty"`
	// Diurnal modulates load on a fixed period (peak at phase 0).
	Diurnal *Diurnal `json:",omitempty"`
	// Burst switches between full-rate on-periods and diluted
	// off-periods with exponentially distributed dwell times
	// (MMPP-style on/off arrivals).
	Burst *Burst `json:",omitempty"`
}

// Phase is one segment of a phase-changing stream.
type Phase struct {
	// Profile names a Profiles() benchmark whose mixture generates this
	// phase's ops.
	Profile string
	// Ops is the phase length in memory operations.
	Ops uint64
}

// Diurnal describes cosine load modulation: load swings between 1 (at
// op 0 and every PeriodOps after) and MinLoad (half a period later).
// The non-memory gap is stretched by 1/load, so trough traffic is
// MinLoad times the profile's memory intensity.
type Diurnal struct {
	PeriodOps uint64
	MinLoad   float64
}

// Burst describes MMPP-style on/off arrivals: dwell times in each state
// are exponentially distributed with means OnOps and OffOps (in memory
// operations); during off-periods the non-memory gap is stretched by
// 1/OffLoad.
type Burst struct {
	OnOps   uint64
	OffOps  uint64
	OffLoad float64
}

// Validate checks the dynamics specification.
func (d *Dynamics) Validate() error {
	for i, p := range d.Phases {
		if _, err := ProfileByName(p.Profile); err != nil {
			return fmt.Errorf("trace: phase %d: %w", i, err)
		}
		if p.Ops == 0 {
			return fmt.Errorf("trace: phase %d (%s) has zero ops", i, p.Profile)
		}
	}
	if di := d.Diurnal; di != nil {
		if di.PeriodOps == 0 {
			return fmt.Errorf("trace: diurnal period is zero ops")
		}
		if di.MinLoad <= 0 || di.MinLoad > 1 {
			return fmt.Errorf("trace: diurnal MinLoad %v out of (0,1]", di.MinLoad)
		}
	}
	if b := d.Burst; b != nil {
		if b.OnOps == 0 || b.OffOps == 0 {
			return fmt.Errorf("trace: burst dwell means must be positive (on %d, off %d)", b.OnOps, b.OffOps)
		}
		if b.OffLoad <= 0 || b.OffLoad > 1 {
			return fmt.Errorf("trace: burst OffLoad %v out of (0,1]", b.OffLoad)
		}
	}
	if len(d.Phases) == 0 && d.Diurnal == nil && d.Burst == nil {
		return fmt.Errorf("trace: empty dynamics (no phases, diurnal or burst)")
	}
	return nil
}

// diurnalQuantum is how often (in ops) the diurnal load factor is
// recomputed; within a quantum the load is constant. 1024 ops is far
// below any meaningful period and keeps the cosine off the per-op path.
const diurnalQuantum = 1024

// Dynamic wraps one or more Mixtures into a non-stationary Stream.
type Dynamic struct {
	name    string
	baseCPI float64
	maxMLP  int
	spec    Dynamics

	phases []*Mixture // len >= 1; index 0 is the base/current profile
	cur    int
	into   uint64 // ops generated in the current phase

	ops  uint64  // total ops generated (diurnal position)
	load float64 // cached diurnal load for the current quantum

	brng      prng // dedicated dwell-time stream (never the mixtures')
	burstOn   bool
	burstLeft uint64 // ops remaining in the current on/off dwell
}

// NewDynamic builds a non-stationary stream over [base, base+span).
// prof is the core's base profile: it defines the core-model parameters
// (BaseCPI, MaxMLP) and generates when no phases are declared; the
// stream name is the base profile's. Phase mixtures get sub-seeds
// derived from seed so the phase streams are mutually decorrelated.
func NewDynamic(prof Profile, spec *Dynamics, base, span, seed uint64) (*Dynamic, error) {
	if spec == nil {
		return nil, fmt.Errorf("trace: nil dynamics")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Dynamic{
		name:    prof.Name,
		baseCPI: prof.BaseCPI,
		maxMLP:  prof.MaxMLP,
		spec:    *spec,
		load:    1,
		brng:    newPRNG(seed ^ 0xB5297A4D2C5A28DD),
		burstOn: true,
	}
	if len(spec.Phases) == 0 {
		m, err := NewMixture(prof, base, span, seed)
		if err != nil {
			return nil, err
		}
		d.phases = []*Mixture{m}
	} else {
		for k, ph := range spec.Phases {
			p, err := ProfileByName(ph.Profile)
			if err != nil {
				return nil, err
			}
			m, err := NewMixture(p, base, span, seed+uint64(k+1)*0x9E3779B97F4A7C15)
			if err != nil {
				return nil, err
			}
			d.phases = append(d.phases, m)
		}
	}
	return d, nil
}

// Name implements Generator (the base profile's name).
func (d *Dynamic) Name() string { return d.name }

// MaxMLP implements Stream (constant: the base profile's).
func (d *Dynamic) MaxMLP() int { return d.maxMLP }

// BaseCPI implements Stream (constant: the base profile's).
func (d *Dynamic) BaseCPI() float64 { return d.baseCPI }

// Next implements Generator.
func (d *Dynamic) Next(op *Op) {
	if n := len(d.spec.Phases); n > 0 {
		if d.into >= d.spec.Phases[d.cur].Ops {
			d.cur++
			if d.cur == n {
				d.cur = 0
			}
			d.into = 0
		}
		d.into++
	}
	d.phases[d.cur].Next(op)

	if di := d.spec.Diurnal; di != nil {
		if d.ops%diurnalQuantum == 0 {
			pos := float64(d.ops%di.PeriodOps) / float64(di.PeriodOps)
			d.load = di.MinLoad + (1-di.MinLoad)*(0.5+0.5*math.Cos(2*math.Pi*pos))
		}
		op.NonMem = stretchGap(op.NonMem, d.load)
	}
	if b := d.spec.Burst; b != nil {
		if d.burstLeft == 0 {
			d.burstOn = !d.burstOn
			mean := b.OnOps
			if !d.burstOn {
				mean = b.OffOps
			}
			d.burstLeft = expDwell(&d.brng, mean)
		}
		d.burstLeft--
		if !d.burstOn {
			op.NonMem = stretchGap(op.NonMem, b.OffLoad)
		}
	}
	d.ops++
}

// stretchGap dilutes memory intensity to the given load in (0,1]: the
// op's instruction footprint (gap + the memory op itself) is divided by
// load, so memory ops per committed instruction scale by load exactly.
func stretchGap(nonMem int, load float64) int {
	if load >= 1 {
		return nonMem
	}
	g := int(float64(nonMem+1)/load+0.5) - 1
	if g < nonMem {
		g = nonMem
	}
	return g
}

// expDwell draws an exponentially distributed dwell time (>= 1 op).
func expDwell(p *prng, mean uint64) uint64 {
	u := p.float64()
	n := uint64(-float64(mean) * math.Log1p(-u))
	if n == 0 {
		n = 1
	}
	return n
}

// Section tag for Dynamic state inside a system snapshot.
const dynSection = 0x4459 // "DY"

// Snapshot implements Stream: every phase mixture's cursor plus the
// wrapper's own counters travel; the cached diurnal load is derived
// state, recomputed lazily after restore.
func (d *Dynamic) Snapshot(w *snapshot.Writer) {
	w.Section(dynSection)
	w.U32(uint32(len(d.phases)))
	for _, m := range d.phases {
		m.Snapshot(w)
	}
	w.U32(uint32(d.cur))
	w.U64(d.into)
	w.U64(d.ops)
	w.F64(d.load)
	w.U64(d.brng.state)
	w.Bool(d.burstOn)
	w.U64(d.burstLeft)
}

// Restore implements Stream (into a same-spec freshly built Dynamic).
func (d *Dynamic) Restore(r *snapshot.Reader) {
	r.Section(dynSection)
	if n := r.U32(); r.Err() == nil && int(n) != len(d.phases) {
		r.Fail("trace: dynamic snapshot has %d phases, stream %d", n, len(d.phases))
	}
	if r.Err() != nil {
		return
	}
	for _, m := range d.phases {
		m.Restore(r)
	}
	d.cur = int(r.U32())
	d.into = r.U64()
	d.ops = r.U64()
	d.load = r.F64()
	d.brng.state = r.U64()
	d.burstOn = r.Bool()
	d.burstLeft = r.U64()
	if r.Err() == nil && (d.cur < 0 || d.cur >= len(d.phases)) {
		r.Fail("trace: dynamic snapshot phase index %d out of range", d.cur)
	}
}
