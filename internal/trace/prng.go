// Package trace generates deterministic synthetic memory-reference
// streams standing in for the paper's SPEC CPU2006 workloads (Table VII).
//
// SPEC binaries, inputs and gem5 checkpoints are licensed artifacts we
// cannot ship, so each benchmark is replaced by a parameterized generator
// calibrated against the paper's published characteristics: LLC MPKI
// (Table VII), write intensity, hot-region structure (Table III for
// GemsFDTD: a percent or two of 4 KB regions taking >95 % of memory
// writes at millisecond inter-write intervals), and qualitative behaviour
// (lbm/libquantum streaming, mcf pointer-chasing with minimal memory
// parallelism, hmmer compute-bound). The substitution is documented in
// DESIGN.md §3.
//
// Generators are infinite, allocation-free and deterministic: the same
// (profile, seed) pair always produces the same stream, so experiments
// are reproducible bit for bit.
package trace

// prng is a SplitMix64 pseudo-random generator: tiny, fast, and with
// full 64-bit state guarantees about sub-streams we seed per core.
type prng struct {
	state uint64
}

func newPRNG(seed uint64) prng {
	// Avoid the all-zero fixed point and decorrelate small seeds.
	return prng{state: seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
}

// next returns the next 64 random bits.
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1). Multiplying by the exact
// reciprocal 2^-53 is bit-identical to dividing by 2^53 (both are pure
// exponent shifts on a value below 2^53) and avoids the divide.
func (p *prng) float64() float64 {
	return float64(p.next()>>11) * (1.0 / (1 << 53))
}

// intn returns a uniform value in [0, n). n must be positive.
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}
