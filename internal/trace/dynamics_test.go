package trace

import (
	"testing"

	"rrmpcm/internal/snapshot"
)

const testSnapMagic = 0x54455354 // scratch container for stream snapshots

func snapshotStream(s Stream) []byte {
	w := snapshot.NewWriter(1 << 12)
	w.Header(testSnapMagic, 1)
	s.Snapshot(w)
	return w.Finish()
}

func restoreStream(t *testing.T, s Stream, blob []byte) error {
	t.Helper()
	r, err := snapshot.NewReader(blob, testSnapMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Restore(r)
	return r.Err()
}

func testDynamics() *Dynamics {
	return &Dynamics{
		Phases:  []Phase{{Profile: "GemsFDTD", Ops: 10_000}, {Profile: "hmmer", Ops: 5_000}},
		Diurnal: &Diurnal{PeriodOps: 40_000, MinLoad: 0.25},
		Burst:   &Burst{OnOps: 3_000, OffOps: 1_000, OffLoad: 0.1},
	}
}

func newTestDynamic(t *testing.T, spec *Dynamics, seed uint64) *Dynamic {
	t.Helper()
	prof, err := ProfileByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(prof, spec, 0, 2<<30, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDynamicDeterminism(t *testing.T) {
	a := newTestDynamic(t, testDynamics(), 42)
	b := newTestDynamic(t, testDynamics(), 42)
	c := newTestDynamic(t, testDynamics(), 43)
	var oa, ob, oc Op
	diverged := false
	for i := 0; i < 50_000; i++ {
		a.Next(&oa)
		b.Next(&ob)
		c.Next(&oc)
		if oa != ob {
			t.Fatalf("op %d: same seed diverged: %+v vs %+v", i, oa, ob)
		}
		if oa != oc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 42 and 43 produced identical streams")
	}
}

// TestDynamicPhaseSwitch pins the phase schedule: ops [0, Ops0) come
// from phase 0's mixture, [Ops0, Ops0+Ops1) from phase 1's, and the
// cycle wraps — each phase mixture advancing only while active, with
// the documented sub-seed derivation.
func TestDynamicPhaseSwitch(t *testing.T) {
	const seed = 7
	spec := &Dynamics{Phases: []Phase{{Profile: "GemsFDTD", Ops: 1000}, {Profile: "hmmer", Ops: 500}}}
	d := newTestDynamic(t, spec, seed)

	gems, _ := ProfileByName("GemsFDTD")
	hmmer, _ := ProfileByName("hmmer")
	golden := uint64(0x9E3779B97F4A7C15) // variable: constant 2*golden would overflow
	m0, err := NewMixture(gems, 0, 2<<30, seed+1*golden)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMixture(hmmer, 0, 2<<30, seed+2*golden)
	if err != nil {
		t.Fatal(err)
	}
	var got, want Op
	for i := 0; i < 3000; i++ { // two full cycles
		d.Next(&got)
		if i%1500 < 1000 {
			m0.Next(&want)
		} else {
			m1.Next(&want)
		}
		if got != want {
			t.Fatalf("op %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestDynamicDiurnal checks the load modulation: around the trough
// (half a period in) the instruction footprint per memory op is about
// 1/MinLoad times the peak's.
func TestDynamicDiurnal(t *testing.T) {
	const period = 200_000
	spec := &Dynamics{Diurnal: &Diurnal{PeriodOps: period, MinLoad: 0.25}}
	d := newTestDynamic(t, spec, 42)
	window := func(n int) float64 {
		var op Op
		insts := 0
		for i := 0; i < n; i++ {
			d.Next(&op)
			insts += op.NonMem + 1
		}
		return float64(insts) / float64(n)
	}
	peak := window(8 * 1024)
	// Skip to just before the trough, then measure a window around it.
	var op Op
	for i := 8 * 1024; i < period/2-4*1024; i++ {
		d.Next(&op)
	}
	trough := window(8 * 1024)
	ratio := trough / peak
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("trough/peak instruction footprint ratio %.2f, want ~%.1f", ratio, 1/0.25)
	}
}

// TestDynamicBurst checks the on/off dilution: with a heavy off-state
// stretch, the stream's total instruction footprint grows well past the
// stationary baseline, and the stationary address pattern is untouched.
func TestDynamicBurst(t *testing.T) {
	const n = 200_000
	spec := &Dynamics{Burst: &Burst{OnOps: 2000, OffOps: 2000, OffLoad: 0.1}}
	d := newTestDynamic(t, spec, 42)
	gems, _ := ProfileByName("GemsFDTD")
	plain, err := NewMixture(gems, 0, 2<<30, 42)
	if err != nil {
		t.Fatal(err)
	}
	var od, op Op
	var instD, instP int
	for i := 0; i < n; i++ {
		d.Next(&od)
		plain.Next(&op)
		if od.Addr != op.Addr || od.Store != op.Store {
			t.Fatalf("op %d: burst changed the address pattern", i)
		}
		if od.NonMem < op.NonMem {
			t.Fatalf("op %d: burst shrank the gap (%d < %d)", i, od.NonMem, op.NonMem)
		}
		instD += od.NonMem + 1
		instP += op.NonMem + 1
	}
	ratio := float64(instD) / float64(instP)
	// Expected average load is (1 + 1/OffLoad)/2 = 5.5x with equal dwells.
	if ratio < 2 || ratio > 10 {
		t.Errorf("burst footprint ratio %.2f, want within [2, 10]", ratio)
	}
}

// TestDynamicSnapshotRestore forks a mid-stream dynamic into a fresh
// same-spec stream and requires bit-identical continuation.
func TestDynamicSnapshotRestore(t *testing.T) {
	d := newTestDynamic(t, testDynamics(), 42)
	var op Op
	for i := 0; i < 23_456; i++ {
		d.Next(&op)
	}
	blob := snapshotStream(d)

	fresh := newTestDynamic(t, testDynamics(), 42)
	if err := restoreStream(t, fresh, blob); err != nil {
		t.Fatal(err)
	}
	var a, b Op
	for i := 0; i < 30_000; i++ {
		d.Next(&a)
		fresh.Next(&b)
		if a != b {
			t.Fatalf("op %d after restore: got %+v, want %+v", i, b, a)
		}
	}
}

func TestDynamicRestoreRejectsMismatch(t *testing.T) {
	d := newTestDynamic(t, testDynamics(), 42)
	blob := snapshotStream(d)
	other := newTestDynamic(t, &Dynamics{Phases: []Phase{{Profile: "lbm", Ops: 100}}}, 42)
	if err := restoreStream(t, other, blob); err == nil {
		t.Error("restore into a different phase count succeeded")
	}
}

func TestDynamicsValidation(t *testing.T) {
	bad := []*Dynamics{
		{}, // empty
		{Phases: []Phase{{Profile: "nonesuch", Ops: 100}}},
		{Phases: []Phase{{Profile: "lbm", Ops: 0}}},
		{Diurnal: &Diurnal{PeriodOps: 0, MinLoad: 0.5}},
		{Diurnal: &Diurnal{PeriodOps: 100, MinLoad: 0}},
		{Diurnal: &Diurnal{PeriodOps: 100, MinLoad: 1.5}},
		{Burst: &Burst{OnOps: 0, OffOps: 10, OffLoad: 0.5}},
		{Burst: &Burst{OnOps: 10, OffOps: 0, OffLoad: 0.5}},
		{Burst: &Burst{OnOps: 10, OffOps: 10, OffLoad: 0}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
	if err := testDynamics().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	prof, _ := ProfileByName("lbm")
	if _, err := NewDynamic(prof, nil, 0, 1<<30, 1); err == nil {
		t.Error("nil dynamics accepted")
	}
}

func TestStretchGap(t *testing.T) {
	if g := stretchGap(10, 1); g != 10 {
		t.Errorf("full load changed the gap: %d", g)
	}
	if g := stretchGap(10, 0.5); g != 21 {
		t.Errorf("stretchGap(10, 0.5) = %d, want 21", g)
	}
	if g := stretchGap(0, 0.1); g != 9 {
		t.Errorf("stretchGap(0, 0.1) = %d, want 9", g)
	}
	// Monotone: never shrinks.
	for nm := 0; nm < 100; nm++ {
		if g := stretchGap(nm, 0.9999); g < nm {
			t.Fatalf("stretchGap(%d, ~1) = %d shrank", nm, g)
		}
	}
}

func TestDynamicWorkloads(t *testing.T) {
	ws := DynamicWorkloads()
	if len(ws) != 3 {
		t.Fatalf("have %d dynamic workloads, want 3", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if len(w.Cores) != 4 {
			t.Errorf("%s has %d cores, want 4", w.Name, len(w.Cores))
		}
		if w.Dynamics == nil {
			t.Errorf("%s has no dynamics", w.Name)
		}
		got, err := WorkloadByName(w.Name)
		if err != nil {
			t.Errorf("WorkloadByName(%s): %v", w.Name, err)
		} else if got.Dynamics == nil {
			t.Errorf("WorkloadByName(%s) lost the dynamics", w.Name)
		}
	}
	// The paper's main workload matrix must stay untouched.
	for _, w := range Workloads() {
		if w.Dynamics != nil {
			t.Errorf("stationary workload %s gained dynamics", w.Name)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	gems, _ := WorkloadByName("GemsFDTD")
	replay := Workload{Name: "r", Replay: []TraceRef{{Path: "a", Sum: 1}, {Path: "b", Sum: 2}}}
	if err := replay.Validate(); err != nil {
		t.Errorf("valid replay workload rejected: %v", err)
	}
	if n := replay.NumStreams(); n != 2 {
		t.Errorf("replay NumStreams = %d, want 2", n)
	}
	bad := []Workload{
		{Name: "x", Replay: []TraceRef{{Path: "a", Sum: 1}}, Cores: gems.Cores},
		{Name: "x", Replay: []TraceRef{{Path: "a", Sum: 1}}, Dynamics: testDynamics()},
		{Name: "x", Replay: []TraceRef{{Path: "", Sum: 1}}},
		{Name: "x", Replay: []TraceRef{{Path: "a", Sum: 0}}},
		{Name: "x", Cores: gems.Cores, Dynamics: &Dynamics{}},
		{Name: "x", Cores: gems.Cores, Tenants: []string{"A"}},
		{Name: "x", Cores: gems.Cores, Tenants: []string{"A", "", "C", "D"}},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	ok := gems
	ok.Tenants = []string{"A", "B", "A", "B"}
	if err := ok.Validate(); err != nil {
		t.Errorf("tenant workload rejected: %v", err)
	}
}
