package reliability

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// testConfig returns an enabled model with no programming errors, so
// tests control flip counts exactly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Enabled = true
	cfg.ProgBitErrorProb = 0
	return cfg
}

func TestBitErrorProbZeroThenMonotone(t *testing.T) {
	table := pcm.DefaultDriftTable()
	for _, mode := range pcm.Modes() {
		sets := mode.Sets()
		ret, err := table.Retention(sets)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly zero through the whole guardband window.
		for _, el := range []timing.Time{0, 1, ret / 2, ret - 1, ret} {
			if p := table.BitErrorProb(sets, el); p != 0 {
				t.Errorf("mode %v: BitErrorProb(%v) = %g, want 0 (retention %v)", mode, el, p, ret)
			}
		}
		// Continuous from zero: 0.1 % past the deadline the tail is tiny
		// but positive (at retention+1 ps it can underflow to exactly 0,
		// which the monotonicity loop below still accepts).
		if p := table.BitErrorProb(sets, ret+ret/1000); p <= 0 || p > 1e-3 {
			t.Errorf("mode %v: BitErrorProb(1.001*retention) = %g, want tiny positive", mode, p)
		}
		// Monotone non-decreasing past the deadline.
		last := 0.0
		for el := ret + 1; el < 100*timing.Second; el *= 2 {
			p := table.BitErrorProb(sets, el)
			if p < last {
				t.Fatalf("mode %v: BitErrorProb not monotone at %v: %g < %g", mode, el, p, last)
			}
			if p < 0 || p > 1 {
				t.Fatalf("mode %v: BitErrorProb(%v) = %g out of [0,1]", mode, el, p)
			}
			last = p
		}
	}
}

func TestBitErrorProbOutOfRangeSets(t *testing.T) {
	table := pcm.DefaultDriftTable()
	for _, sets := range []int{0, 2, 8, -1} {
		if p := table.BitErrorProb(sets, timing.Second); p != 1 {
			t.Errorf("BitErrorProb(sets=%d) = %g, want 1 (conservative for unknown modes)", sets, p)
		}
	}
}

// TestECCBoundaries drives the classifier across the exact correction
// boundary: t flips correct, t+1 flips are uncorrectable.
func TestECCBoundaries(t *testing.T) {
	cases := []struct {
		name        string
		flips       uint16
		wantClean   uint64
		wantCorr    uint64
		wantUncorr  uint64
		wantBits    uint64
		wantStalled bool
	}{
		{"zero flips", 0, 1, 0, 0, 0, false},
		{"one flip", 1, 0, 1, 0, 1, true},
		{"exactly t flips", 4, 0, 1, 0, 4, true},
		{"t plus one flips", 5, 0, 0, 1, 0, true},
		{"many flips", 512, 0, 0, 1, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(testConfig(), pcm.DefaultDriftTable(), 1, 1, 7)
			const addr = uint64(0x1000)
			e.OnWrite(addr, pcm.Mode7SETs, pcm.WearDemandWrite, 0)
			ls := e.lines[addr]
			ls.flips = tc.flips
			e.lines[addr] = ls

			stall := e.OnDemandRead(addr, timing.Microsecond)
			m := e.Metrics()
			if m.ReadsChecked != 1 || m.CleanReads != tc.wantClean ||
				m.CorrectedReads != tc.wantCorr || m.UncorrectableReads != tc.wantUncorr ||
				m.BitFlipsCorrected != tc.wantBits {
				t.Errorf("metrics = %+v, want clean=%d corr=%d uncorr=%d bits=%d",
					m, tc.wantClean, tc.wantCorr, tc.wantUncorr, tc.wantBits)
			}
			if stalled := stall > 0; stalled != tc.wantStalled {
				t.Errorf("stall = %v, want stalled=%v", stall, tc.wantStalled)
			}
			if tc.wantStalled && stall != e.cfg.ECCLatency {
				t.Errorf("stall = %v, want ECCLatency %v", stall, e.cfg.ECCLatency)
			}
		})
	}
}

// TestScrubResetsState ages a Mode-3 line far past its retention so it
// accumulates flips, then rewrites it: the scrub must classify the old
// generation and the next read must be clean.
func TestScrubResetsState(t *testing.T) {
	e := New(testConfig(), pcm.DefaultDriftTable(), 1, 1, 7)
	const addr = uint64(0x2000)
	e.OnWrite(addr, pcm.Mode3SETs, pcm.WearDemandWrite, 0)

	// 100 s past a 2.01 s deadline: p is large, flips are certain.
	aged := 100 * timing.Second
	if e.OnDemandRead(addr, aged) == 0 {
		t.Fatal("expected a stalled (errored) read on the aged line")
	}
	if m := e.Metrics(); m.CorrectedReads+m.UncorrectableReads != 1 {
		t.Fatalf("aged read not classified as errored: %+v", m)
	}

	e.OnWrite(addr, pcm.Mode3SETs, pcm.WearRRMRefresh, aged)
	m := e.Metrics()
	// The first write only starts tracking; the refresh is the one scrub.
	if m.ScrubsOnRefresh != 1 || m.ScrubsOnWrite != 0 {
		t.Fatalf("scrub counters = refresh %d, write %d; want 1, 0",
			m.ScrubsOnRefresh, m.ScrubsOnWrite)
	}
	if m.ScrubFoundCorrected+m.ScrubFoundUncorrectable != 1 {
		t.Fatalf("scrub did not classify the old generation: %+v", m)
	}
	if m.LinesScrubbed != 1 {
		t.Fatalf("LinesScrubbed = %d, want 1", m.LinesScrubbed)
	}

	// Fresh generation, read within guardband: clean, no stall.
	if stall := e.OnDemandRead(addr, aged+timing.Microsecond); stall != 0 {
		t.Fatalf("post-scrub read stalled %v, want clean", stall)
	}
	if m := e.Metrics(); m.CleanReads != 1 {
		t.Fatalf("post-scrub read not clean: %+v", m)
	}
}

// TestDeterminism: identical seeds and op sequences produce identical
// metrics; the engine's randomness lives entirely in its seeded streams.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) Metrics {
		cfg := testConfig()
		cfg.ProgBitErrorProb = 0.01
		e := New(cfg, pcm.DefaultDriftTable(), 1000, 1, seed)
		for i := uint64(0); i < 200; i++ {
			e.OnWrite(i<<6, pcm.Mode3SETs, pcm.WearDemandWrite, timing.Time(i)*timing.Microsecond)
		}
		for i := uint64(0); i < 200; i += 3 {
			e.OnDemandRead(i<<6, 10*timing.Millisecond)
		}
		e.Finish(20 * timing.Millisecond)
		return e.Metrics()
	}
	if a, b := run(42), run(42); a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a, b := run(42), run(43); a == b {
		t.Errorf("different seeds produced identical metrics (suspicious): %+v", a)
	}
}

// TestUnsampledBlocksIgnored: blocks outside the policy's refresh sample
// are never tracked.
func TestUnsampledBlocksIgnored(t *testing.T) {
	e := New(testConfig(), pcm.DefaultDriftTable(), 1000, 1000, 7)
	for i := uint64(0); i < 2000; i++ {
		e.OnWrite(i<<6, pcm.Mode3SETs, pcm.WearDemandWrite, 0)
	}
	tracked := e.Tracked()
	if tracked == 0 || tracked >= 100 {
		t.Errorf("tracked = %d lines of 2000 at sampling 1000, want a small nonzero subset", tracked)
	}
	if m := e.Metrics(); m.LinesTracked != uint64(tracked) {
		t.Errorf("LinesTracked = %d, want %d", m.LinesTracked, tracked)
	}
}

func TestPatrolRoundRobin(t *testing.T) {
	cfg := testConfig()
	cfg.Patrol = true
	cfg.PatrolBatch = 2
	e := New(cfg, pcm.DefaultDriftTable(), 1, 1, 7)
	addrs := []uint64{0x0, 0x40, 0x80}
	for _, a := range addrs {
		e.OnWrite(a, pcm.Mode3SETs, pcm.WearDemandWrite, 0)
	}
	var emitted []uint64
	issue := func(addr uint64, mode pcm.WriteMode) {
		if mode != pcm.Mode3SETs {
			t.Errorf("patrol emitted mode %v, want Mode3SETs", mode)
		}
		emitted = append(emitted, addr)
	}
	for i := 0; i < 3; i++ {
		e.Patrol(issue)
	}
	want := []uint64{0x0, 0x40, 0x80, 0x0, 0x40, 0x80}
	if len(emitted) != len(want) {
		t.Fatalf("emitted %d addrs, want %d", len(emitted), len(want))
	}
	for i := range want {
		if emitted[i] != want[i] {
			t.Fatalf("emitted[%d] = %#x, want %#x (round-robin order)", i, emitted[i], want[i])
		}
	}
	if m := e.Metrics(); m.PatrolIssued != 6 {
		t.Errorf("PatrolIssued = %d, want 6", m.PatrolIssued)
	}
}

func TestBinomialSampler(t *testing.T) {
	state := uint64(12345)
	if got := binomial(&state, 1000, 0); got != 0 {
		t.Errorf("binomial(n=1000, p=0) = %d, want 0", got)
	}
	if got := binomial(&state, 1000, 1); got != 1000 {
		t.Errorf("binomial(n=1000, p=1) = %d, want 1000", got)
	}
	if got := binomial(&state, 0, 0.5); got != 0 {
		t.Errorf("binomial(n=0) = %d, want 0", got)
	}
	// Mean sanity: 200 draws of Binomial(1000, 0.1) average near 100.
	sum := 0
	for i := 0; i < 200; i++ {
		d := binomial(&state, 1000, 0.1)
		if d < 0 || d > 1000 {
			t.Fatalf("draw %d out of range [0,1000]", d)
		}
		sum += d
	}
	if mean := float64(sum) / 200; mean < 80 || mean > 120 {
		t.Errorf("mean of Binomial(1000, 0.1) draws = %.1f, want ~100", mean)
	}
}

func TestLineSeedIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for addr := uint64(0); addr < 64; addr++ {
		for gen := uint64(1); gen <= 4; gen++ {
			s := lineSeed(7, addr<<6, gen)
			if seen[s] {
				t.Fatalf("lineSeed collision at addr %#x gen %d", addr<<6, gen)
			}
			seen[s] = true
		}
	}
}

func TestMetricsSubAndFinalize(t *testing.T) {
	a := Metrics{ReadsChecked: 2_000_000_000, CorrectedReads: 30, UncorrectableReads: 4,
		LinesTracked: 100, LinesScrubbed: 50}
	warm := Metrics{ReadsChecked: 1_000_000_000, CorrectedReads: 10, UncorrectableReads: 2,
		LinesTracked: 40, LinesScrubbed: 20}
	m := a.Sub(warm)
	m.Finalize()
	if m.ReadsChecked != 1_000_000_000 || m.CorrectedReads != 20 || m.UncorrectableReads != 2 {
		t.Fatalf("Sub wrong: %+v", m)
	}
	// Gauges survive subtraction; rates are per billion of the window.
	if m.LinesTracked != 100 || m.LinesScrubbed != 50 {
		t.Errorf("gauges should not be warmup-subtracted: %+v", m)
	}
	if m.CorrectedPerBillionReads != 20 || m.UncorrectablePerBillionReads != 2 {
		t.Errorf("per-billion rates wrong: %+v", m)
	}
	if m.ScrubCoverage != 0.5 {
		t.Errorf("ScrubCoverage = %g, want 0.5", m.ScrubCoverage)
	}
	if m.Uncorrectable() != 2 {
		t.Errorf("Uncorrectable() = %d, want 2", m.Uncorrectable())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"defaults disabled", func(c *Config) { c.Enabled = false }, true},
		{"defaults enabled", func(c *Config) {}, true},
		{"disabled ignores garbage", func(c *Config) { c.Enabled = false; c.LineBits = -5 }, true},
		{"negative ecc bits", func(c *Config) { c.ECCBits = -1 }, false},
		{"zero line bits", func(c *Config) { c.LineBits = 0 }, false},
		{"huge line bits", func(c *Config) { c.LineBits = 1 << 20 }, false},
		{"ecc wider than line", func(c *Config) { c.ECCBits = 513 }, false},
		{"prob one", func(c *Config) { c.ProgBitErrorProb = 1 }, false},
		{"prob negative", func(c *Config) { c.ProgBitErrorProb = -0.1 }, false},
		{"negative latency", func(c *Config) { c.ECCLatency = -1 }, false},
		{"patrol zero interval", func(c *Config) { c.Patrol = true; c.PatrolInterval = 0 }, false},
		{"patrol zero batch", func(c *Config) { c.Patrol = true; c.PatrolBatch = 0 }, false},
		{"patrol valid", func(c *Config) { c.Patrol = true }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}
