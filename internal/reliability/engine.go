package reliability

import (
	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// lineState is the per-tracked-line error state. Value-typed on purpose:
// updates copy it out of and back into the map, so the steady-state read
// path never allocates.
type lineState struct {
	writtenAt timing.Time // simulated-clock time of the last rewrite
	rng       uint64      // private SplitMix64 stream of this generation
	lastP     float64     // drift bit-error probability at last inspection
	flips     uint16      // accumulated wrong bits (programming + drift)
	mode      uint8       // pcm.WriteMode of the last rewrite
	scrubbed  bool        // rewritten at least once since first tracked
}

// Engine is the per-run fault injector + ECC model + scrub bookkeeping.
// It is driven synchronously from the simulation's event loop (backend
// write/read hooks, controller read path, patrol timer) and is not safe
// for concurrent use — one engine per run, like every other simulator
// component.
type Engine struct {
	cfg       Config
	table     pcm.DriftTable
	timeScale float64
	sampling  uint64
	seed      uint64

	lines      map[uint64]lineState
	generation uint64

	// Patrol round-robin queue: tracked line addresses in first-tracked
	// order. head indexes the next victim; popped lines re-append, so
	// the scrubber cycles the whole population deterministically.
	patrolQ    []uint64
	patrolHead int

	// readObs, when set, receives every demand-read classification (the
	// multi-tenant attribution hook). It observes only — the RNG streams
	// and counters are untouched, so registering it cannot perturb a
	// run's error pattern.
	readObs func(addr uint64, corrected, uncorrectable bool)

	m Metrics
}

// SetReadObserver registers a callback invoked for every demand read
// the engine inspects (tracked lines only, mirroring ReadsChecked).
// nil disables.
func (e *Engine) SetReadObserver(fn func(addr uint64, corrected, uncorrectable bool)) {
	e.readObs = fn
}

// New builds an engine for one run. table supplies the drift law,
// timeScale the retention-clock acceleration (simulated age × timeScale
// = real age), sampling the policy's simulated-refresh sampling factor
// (the engine tracks exactly the blocks whose refreshes the policy
// simulates, sharing core.SampledBlock's hash), and seed the run's
// dedicated reliability RNG stream.
func New(cfg Config, table pcm.DriftTable, timeScale float64, sampling uint64, seed uint64) *Engine {
	if timeScale < 1 {
		timeScale = 1
	}
	if sampling < 1 {
		sampling = 1
	}
	return &Engine{
		cfg:       cfg,
		table:     table,
		timeScale: timeScale,
		sampling:  sampling,
		seed:      seed,
		lines:     make(map[uint64]lineState),
	}
}

// updateFlips advances a line's accumulated bit flips to time now. Drift
// errors are monotone: with cumulative per-bit probability p(t), the
// increment since the last inspection at p0 is a conditional Bernoulli
// with probability (p(t)-p0)/(1-p0) over the still-correct bits — so
// repeated inspections sample the same distribution as a single one,
// and flip counts never decrease between rewrites.
func (e *Engine) updateFlips(ls *lineState, now timing.Time) {
	if now <= ls.writtenAt {
		return
	}
	realAge := timing.Time(float64(now-ls.writtenAt) * e.timeScale)
	p := e.table.BitErrorProb(pcm.WriteMode(ls.mode).Sets(), realAge)
	if p <= ls.lastP {
		return
	}
	pInc := (p - ls.lastP) / (1 - ls.lastP)
	ls.flips += uint16(binomial(&ls.rng, e.cfg.LineBits-int(ls.flips), pInc))
	ls.lastP = p
}

// OnWrite observes a completed block write or refresh: it classifies
// (and then wipes) the error state of an already-tracked line — the
// scrubbing action — and starts a fresh generation with newly sampled
// programming errors. Blocks outside the policy's simulated-refresh
// sample are not tracked: their refreshes are accounted statistically,
// so injecting drift errors for them would count failures the policy
// does prevent.
func (e *Engine) OnWrite(addr uint64, mode pcm.WriteMode, kind pcm.WearKind, now timing.Time) {
	blk := addr &^ 63
	if !core.SampledBlock(blk, e.sampling) {
		return
	}
	ls, tracked := e.lines[blk]
	if tracked {
		e.updateFlips(&ls, now)
		if f := int(ls.flips); f > e.cfg.ECCBits {
			e.m.ScrubFoundUncorrectable++
		} else if f > 0 {
			e.m.ScrubFoundCorrected++
		}
		if kind == pcm.WearDemandWrite {
			e.m.ScrubsOnWrite++
		} else {
			e.m.ScrubsOnRefresh++
		}
		if !ls.scrubbed {
			ls.scrubbed = true
			e.m.LinesScrubbed++
		}
	} else {
		e.m.LinesTracked++
		if e.cfg.Patrol {
			e.patrolQ = append(e.patrolQ, blk)
		}
	}
	e.generation++
	ls.writtenAt = now
	ls.mode = uint8(mode)
	ls.lastP = 0
	ls.rng = lineSeed(e.seed, blk, e.generation)
	ls.flips = uint16(binomial(&ls.rng, e.cfg.LineBits, e.cfg.ProgBitErrorProb))
	e.lines[blk] = ls
}

// OnDemandRead classifies a demand read of addr completing at now and
// returns the ECC stall to add to its latency (zero for untracked lines
// and clean reads). It implements the memory controller's read-integrity
// hook.
func (e *Engine) OnDemandRead(addr uint64, now timing.Time) timing.Time {
	blk := addr &^ 63
	ls, ok := e.lines[blk]
	if !ok {
		return 0
	}
	e.updateFlips(&ls, now)
	e.lines[blk] = ls
	e.m.ReadsChecked++
	var stall timing.Time
	var corrected, uncorrectable bool
	switch f := int(ls.flips); {
	case f == 0:
		e.m.CleanReads++
	case f <= e.cfg.ECCBits:
		corrected = true
		e.m.CorrectedReads++
		e.m.BitFlipsCorrected += uint64(f)
		stall = e.cfg.ECCLatency
	default:
		// Detection costs the same decode; the data loss is the point.
		uncorrectable = true
		e.m.UncorrectableReads++
		stall = e.cfg.ECCLatency
	}
	e.m.CorrectionStall += stall
	if e.readObs != nil {
		e.readObs(blk, corrected, uncorrectable)
	}
	return stall
}

// Patrol emits up to PatrolBatch tracked lines, round-robin, for the
// caller to rewrite (issue refreshes for). Each emitted line re-enters
// the back of the queue, so the scrubber cycles the whole tracked
// population at a rate of PatrolBatch lines per tick.
func (e *Engine) Patrol(issue func(addr uint64, mode pcm.WriteMode)) {
	queued := len(e.patrolQ) - e.patrolHead
	if queued > e.cfg.PatrolBatch {
		queued = e.cfg.PatrolBatch
	}
	for i := 0; i < queued; i++ {
		blk := e.patrolQ[e.patrolHead]
		e.patrolQ[e.patrolHead] = 0
		e.patrolHead++
		e.patrolQ = append(e.patrolQ, blk)
		e.m.PatrolIssued++
		issue(blk, pcm.WriteMode(e.lines[blk].mode))
	}
	// Reclaim the consumed prefix once it dominates the backing array.
	if e.patrolHead > len(e.patrolQ)/2 {
		e.patrolQ = append(e.patrolQ[:0], e.patrolQ[e.patrolHead:]...)
		e.patrolHead = 0
	}
}

// Finish classifies every still-tracked line once at the end of the
// measurement window, so errors latent in lines the workload never
// re-read are reported too. Per-line RNG streams make the totals
// independent of map iteration order.
func (e *Engine) Finish(now timing.Time) {
	for blk, ls := range e.lines {
		e.updateFlips(&ls, now)
		e.lines[blk] = ls
		e.m.SweepLines++
		if f := int(ls.flips); f > e.cfg.ECCBits {
			e.m.SweepUncorrectable++
		} else if f > 0 {
			e.m.SweepCorrected++
		}
	}
}

// Metrics returns a snapshot of the accumulated counters.
func (e *Engine) Metrics() Metrics { return e.m }

// Tracked returns the number of currently tracked lines (tests).
func (e *Engine) Tracked() int { return len(e.lines) }
