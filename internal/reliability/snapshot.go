package reliability

import (
	"sort"

	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

const snapSection = 0x524C // "RL"

// Snapshot writes the injector's full state: every tracked line (in
// sorted address order, so the encoding is deterministic), the
// generation counter, the patrol queue and the accumulated metrics.
func (e *Engine) Snapshot(w *snapshot.Writer) error {
	w.Section(snapSection)
	w.U64(e.generation)

	keys := make([]uint64, 0, len(e.lines))
	for blk := range e.lines {
		keys = append(keys, blk)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, blk := range keys {
		ls := e.lines[blk]
		w.U64(blk)
		w.I64(int64(ls.writtenAt))
		w.U64(ls.rng)
		w.F64(ls.lastP)
		w.U16(ls.flips)
		w.U8(ls.mode)
		w.Bool(ls.scrubbed)
	}

	// The patrol ring travels as its live FIFO sequence; the consumed
	// prefix is dropped (equivalent, since only pop order is observable).
	w.U32(uint32(len(e.patrolQ) - e.patrolHead))
	for _, blk := range e.patrolQ[e.patrolHead:] {
		w.U64(blk)
	}
	return w.JSON(e.m)
}

// Restore loads state written by Snapshot into a same-config engine.
func (e *Engine) Restore(r *snapshot.Reader) {
	r.Section(snapSection)
	e.generation = r.U64()

	n := r.Count(1 << 28)
	e.lines = make(map[uint64]lineState, n)
	for i := 0; i < n; i++ {
		blk := r.U64()
		var ls lineState
		ls.writtenAt = timing.Time(r.I64())
		ls.rng = r.U64()
		ls.lastP = r.F64()
		ls.flips = r.U16()
		ls.mode = r.U8()
		ls.scrubbed = r.Bool()
		if r.Err() != nil {
			return
		}
		e.lines[blk] = ls
	}

	q := r.Count(1 << 28)
	e.patrolQ = make([]uint64, q)
	e.patrolHead = 0
	for i := 0; i < q; i++ {
		e.patrolQ[i] = r.U64()
	}
	e.m = Metrics{}
	r.JSON(&e.m)
}
