//go:build !race

package reliability

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// TestReadPathAllocs pins the demand-read hot path — map lookup, drift
// update with a binomial draw, ECC classification — at zero steady-state
// allocations. lineState is value-typed in the map for exactly this.
// (Skipped under -race: the detector's instrumentation allocates.)
func TestReadPathAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	e := New(cfg, pcm.DefaultDriftTable(), 1500, 1, 7)
	const lines = 4096
	for i := uint64(0); i < lines; i++ {
		e.OnWrite(i<<6, pcm.Mode3SETs, pcm.WearDemandWrite, timing.Time(i))
	}

	now := 10 * timing.Millisecond
	i := uint64(0)
	avg := testing.AllocsPerRun(200, func() {
		for n := 0; n < 1000; n++ {
			i = (i + 1) % lines
			e.OnDemandRead(i<<6, now)
			now += timing.Nanosecond
		}
	})
	if avg > 0.5 {
		t.Errorf("read path allocates %.2f per 1000 reads, want 0", avg)
	}

	// Rewrites of tracked lines are also steady-state (no map growth).
	avg = testing.AllocsPerRun(200, func() {
		for n := 0; n < 1000; n++ {
			i = (i + 1) % lines
			e.OnWrite(i<<6, pcm.Mode3SETs, pcm.WearDemandWrite, now)
			now += timing.Nanosecond
		}
	})
	if avg > 0.5 {
		t.Errorf("rewrite path allocates %.2f per 1000 writes, want 0", avg)
	}
}

// BenchmarkReliabilityReadPath measures the per-read overhead of the
// fault model at steady state (tracked line, no error).
func BenchmarkReliabilityReadPath(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	e := New(cfg, pcm.DefaultDriftTable(), 1500, 1, 7)
	const lines = 4096
	for i := uint64(0); i < lines; i++ {
		e.OnWrite(i<<6, pcm.Mode3SETs, pcm.WearDemandWrite, timing.Time(i))
	}
	now := timing.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.OnDemandRead(uint64(n%lines)<<6, now)
		now += timing.Nanosecond
	}
}
