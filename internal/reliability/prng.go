package reliability

import "math"

// The fault injector needs per-line random streams that are (a) cheap
// enough for the demand-read hot path, (b) allocation-free and (c)
// independent of global sampling order, so counters stay deterministic
// whatever order lines are inspected in. SplitMix64 fits: 64 bits of
// state, one multiply-xor round per draw (same generator family as
// internal/trace, duplicated here because both keep it unexported).

// mix64 is the SplitMix64 output function: a bijective avalanche of x.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nextRand advances a SplitMix64 state in place and returns 64 bits.
func nextRand(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	return mix64(*state)
}

// unitFloat returns a uniform value in [0, 1) from the stream.
func unitFloat(state *uint64) float64 {
	return float64(nextRand(state)>>11) / (1 << 53)
}

// lineSeed derives the RNG state for one (line, write-generation) pair
// from the run's reliability seed. Each rewrite gets a fresh stream, so
// a line's error history never correlates across generations.
func lineSeed(runSeed, addr, generation uint64) uint64 {
	return mix64(runSeed ^ mix64(addr*0x9E3779B97F4A7C15) ^ generation*0xD1B54A32D192ED03)
}

// binomial samples Binomial(n, p) from the stream without allocating.
// For the small probabilities of this model it uses geometric skipping
// (O(successes) draws, not O(n)): successive failure runs have length
// floor(log(U)/log(1-p)). Degenerate p values short-circuit.
func binomial(state *uint64, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	invLog := 1 / math.Log1p(-p)
	successes := 0
	// i walks 0-based trial indexes; each iteration consumes one uniform
	// draw and lands on the next success.
	i := -1
	for {
		u := unitFloat(state)
		if u == 0 {
			u = 0x1p-53 // avoid log(0); probability 2^-53 per draw
		}
		i += 1 + int(math.Log(u)*invLog)
		if i >= n || i < 0 { // i < 0: skip overflowed int range
			return successes
		}
		successes++
	}
}
