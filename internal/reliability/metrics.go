package reliability

import "rrmpcm/internal/timing"

// Metrics is the error/ECC/scrub accounting of one run (or one
// measurement window, after Sub). Counter semantics:
//
//   - "reads checked" are demand reads of lines the injector tracks; a
//     read of a line never written in the simulated window has nothing
//     to check and is not counted.
//   - scrubs are rewrites of an already-tracked line, split by cause;
//     each scrub also classifies the state it wiped (what the refresh
//     read saw), so "scrub found uncorrectable" counts data that was
//     already lost when its refresh finally arrived.
//   - the end-of-run sweep classifies every still-tracked line once, so
//     errors latent in lines the workload never re-read are visible too.
type Metrics struct {
	// Demand-read ECC classification.
	ReadsChecked       uint64
	CleanReads         uint64
	CorrectedReads     uint64
	UncorrectableReads uint64
	BitFlipsCorrected  uint64
	CorrectionStall    timing.Time

	// Scrub accounting.
	ScrubsOnWrite           uint64 // demand write rewrote a tracked line
	ScrubsOnRefresh         uint64 // RRM/slow/global refresh rewrote it
	PatrolIssued            uint64 // patrol refreshes handed to the controller
	ScrubFoundCorrected     uint64
	ScrubFoundUncorrectable uint64

	// End-of-run sweep over still-tracked lines.
	SweepLines         uint64
	SweepCorrected     uint64
	SweepUncorrectable uint64

	// Tracking state (gauges, not subtracted by Sub).
	LinesTracked  uint64 // distinct lines ever tracked
	LinesScrubbed uint64 // distinct lines scrubbed at least once

	// Derived rates, filled by Finalize.
	CorrectedPerBillionReads     float64
	UncorrectablePerBillionReads float64
	ScrubCoverage                float64 // LinesScrubbed / LinesTracked
}

// Sub returns m minus a baseline snapshot (warmup subtraction). Gauges
// and derived rates are kept from m; call Finalize after Sub.
func (m Metrics) Sub(base Metrics) Metrics {
	d := m
	d.ReadsChecked -= base.ReadsChecked
	d.CleanReads -= base.CleanReads
	d.CorrectedReads -= base.CorrectedReads
	d.UncorrectableReads -= base.UncorrectableReads
	d.BitFlipsCorrected -= base.BitFlipsCorrected
	d.CorrectionStall -= base.CorrectionStall
	d.ScrubsOnWrite -= base.ScrubsOnWrite
	d.ScrubsOnRefresh -= base.ScrubsOnRefresh
	d.PatrolIssued -= base.PatrolIssued
	d.ScrubFoundCorrected -= base.ScrubFoundCorrected
	d.ScrubFoundUncorrectable -= base.ScrubFoundUncorrectable
	d.SweepLines -= base.SweepLines
	d.SweepCorrected -= base.SweepCorrected
	d.SweepUncorrectable -= base.SweepUncorrectable
	return d
}

// Finalize computes the derived rates from the counters.
func (m *Metrics) Finalize() {
	if m.ReadsChecked > 0 {
		m.CorrectedPerBillionReads = float64(m.CorrectedReads) / float64(m.ReadsChecked) * 1e9
		m.UncorrectablePerBillionReads = float64(m.UncorrectableReads) / float64(m.ReadsChecked) * 1e9
	}
	if m.LinesTracked > 0 {
		m.ScrubCoverage = float64(m.LinesScrubbed) / float64(m.LinesTracked)
	}
}

// Uncorrectable returns the run's total uncorrectable-error count over
// every detection path (demand reads, scrub inspection, final sweep) —
// the headline number the RRM-vs-static comparison is about.
func (m Metrics) Uncorrectable() uint64 {
	return m.UncorrectableReads + m.ScrubFoundUncorrectable + m.SweepUncorrectable
}
