// Package reliability models what a missed retention deadline actually
// does to data: it injects drift-induced soft bit errors per memory
// line using the Ielmini drift law (internal/pcm), corrects them with a
// configurable t-bit ECC budget on every demand read, and clears the
// accumulated error state whenever the line is rewritten — by a demand
// write, an RRM/slow refresh, or the optional background patrol scrub.
//
// The model is fully deterministic: every line carries its own
// SplitMix64 stream seeded from the run's reliability seed, the line
// address and a write-generation counter, so bit-flip samples never
// depend on event interleaving or map iteration order, and fixed-seed
// runs report bit-identical error metrics at any parallelism level.
//
// # Time scaling
//
// The simulator accelerates the retention clock by TimeScale (see
// internal/sim); the fault injector converts a line's simulated age
// back to real seconds before asking the drift law for its bit-error
// probability, so injected error rates are real rates regardless of the
// acceleration factor.
package reliability

import (
	"fmt"

	"rrmpcm/internal/timing"
)

// Config parameterizes the reliability model of one run. The zero value
// is "disabled"; DefaultConfig returns the documented defaults with the
// model still disabled — enabling is always an explicit choice because
// the fault injector perturbs read latency (ECC correction stalls).
type Config struct {
	// Enabled turns the whole subsystem on.
	Enabled bool

	// ECCBits is t, the number of correctable bit errors per line
	// (BCH-style budget). Reads with 1..t flipped bits are corrected,
	// t+1 or more are uncorrectable.
	ECCBits int

	// LineBits is the protected payload size in bits (512 for the 64 B
	// memory line of the modeled system).
	LineBits int

	// ProgBitErrorProb is the per-bit probability that the
	// program-and-verify loop leaves a bit wrong at write time (hard
	// tail of the programmed distribution plus write noise).
	ProgBitErrorProb float64

	// ECCLatency is the correction stall added to a demand read that
	// found flipped bits (clean reads decode in the pipelined datapath
	// and pay nothing).
	ECCLatency timing.Time

	// Patrol enables the background patrol scrubber: every
	// PatrolInterval of real time it rewrites up to PatrolBatch tracked
	// lines in deterministic round-robin order.
	Patrol bool

	// PatrolInterval is the real-time period between patrol batches
	// (the simulator divides it by TimeScale like every other
	// retention-clock interval).
	PatrolInterval timing.Time

	// PatrolBatch is the number of lines rewritten per patrol tick.
	PatrolBatch int
}

// DefaultConfig returns the calibrated defaults (t=4 over a 512-bit
// line, 1e-5 programming BER, 25 ns correction stall, patrol off), with
// Enabled still false.
func DefaultConfig() Config {
	return Config{
		ECCBits:          4,
		LineBits:         512,
		ProgBitErrorProb: 1e-5,
		ECCLatency:       25 * timing.Nanosecond,
		PatrolInterval:   100 * timing.Millisecond,
		PatrolBatch:      64,
	}
}

// Validate checks the configuration. A disabled config is always valid
// (its other fields are never read).
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.ECCBits < 0 {
		return fmt.Errorf("reliability: negative ECC budget %d", c.ECCBits)
	}
	if c.LineBits <= 0 || c.LineBits > 1<<16 {
		return fmt.Errorf("reliability: line size %d bits out of (0, 65536]", c.LineBits)
	}
	if c.ECCBits > c.LineBits {
		return fmt.Errorf("reliability: ECC budget %d exceeds line size %d", c.ECCBits, c.LineBits)
	}
	if c.ProgBitErrorProb < 0 || c.ProgBitErrorProb >= 1 {
		return fmt.Errorf("reliability: programming bit-error probability %v out of [0, 1)", c.ProgBitErrorProb)
	}
	if c.ECCLatency < 0 {
		return fmt.Errorf("reliability: negative ECC latency %v", c.ECCLatency)
	}
	if c.Patrol {
		if c.PatrolInterval <= 0 {
			return fmt.Errorf("reliability: non-positive patrol interval %v", c.PatrolInterval)
		}
		if c.PatrolBatch <= 0 {
			return fmt.Errorf("reliability: non-positive patrol batch %d", c.PatrolBatch)
		}
	}
	return nil
}
