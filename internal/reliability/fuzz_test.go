package reliability

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// FuzzReliabilityConfig fuzzes Config.Validate and, for every config it
// accepts, drives a full engine lifecycle: Validate must never panic,
// and a validated config must never produce a panicking engine, a
// negative stall, or flip counts past the line width.
func FuzzReliabilityConfig(f *testing.F) {
	d := DefaultConfig()
	f.Add(true, d.ECCBits, d.LineBits, d.ProgBitErrorProb, int64(d.ECCLatency), false, int64(d.PatrolInterval), d.PatrolBatch, uint64(1))
	f.Add(true, 0, 1, 0.0, int64(0), true, int64(timing.Microsecond), 1, uint64(7))
	f.Add(true, 512, 512, 0.99, int64(timing.Second), true, int64(1), 1<<20, uint64(0))
	f.Add(false, -1, -1, -1.0, int64(-1), true, int64(-1), -1, uint64(42))
	f.Add(true, 4, 65536, 0.5, int64(timing.Nanosecond), false, int64(0), 0, uint64(3))
	f.Fuzz(func(t *testing.T, enabled bool, eccBits, lineBits int, prob float64, latency int64, patrol bool, interval int64, batch int, seed uint64) {
		cfg := Config{
			Enabled:          enabled,
			ECCBits:          eccBits,
			LineBits:         lineBits,
			ProgBitErrorProb: prob,
			ECCLatency:       timing.Time(latency),
			Patrol:           patrol,
			PatrolInterval:   timing.Time(interval),
			PatrolBatch:      batch,
		}
		if err := cfg.Validate(); err != nil || !cfg.Enabled {
			return // rejected or disabled: nothing to drive
		}
		e := New(cfg, pcm.DefaultDriftTable(), 1500, 1, seed)
		modes := pcm.Modes()
		for i := uint64(0); i < 64; i++ {
			now := timing.Time(i) * timing.Millisecond
			e.OnWrite(i<<6, modes[i%uint64(len(modes))], pcm.WearDemandWrite, now)
			if stall := e.OnDemandRead((i/2)<<6, now+timing.Microsecond); stall < 0 {
				t.Fatalf("negative ECC stall %v", stall)
			}
		}
		if cfg.Patrol {
			e.Patrol(func(addr uint64, mode pcm.WriteMode) {
				e.OnWrite(addr, mode, pcm.WearSlowRefresh, 100*timing.Millisecond)
			})
		}
		e.Finish(200 * timing.Millisecond)
		m := e.Metrics()
		if m.ReadsChecked != m.CleanReads+m.CorrectedReads+m.UncorrectableReads {
			t.Fatalf("read classification does not partition: %+v", m)
		}
		if m.SweepLines != uint64(e.Tracked()) {
			t.Fatalf("sweep covered %d of %d tracked lines", m.SweepLines, e.Tracked())
		}
		for _, ls := range e.lines {
			if int(ls.flips) > cfg.LineBits {
				t.Fatalf("line accumulated %d flips on a %d-bit line", ls.flips, cfg.LineBits)
			}
		}
	})
}
