package sampling

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
)

// TestSampledShardsIdentical extends the shard-determinism property
// (sim's TestShardsMetricsIdentical) to the full sampling executor: the
// snapshot-producing pass, the functional fast-forwards and every forked
// detailed window all inherit the configured shard count, and the
// aggregated sampled metrics — confidence intervals included — must not
// depend on it.
func TestSampledShardsIdentical(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Sampling = &sim.SamplingSpec{
		Windows:      3,
		Window:       60 * timing.Microsecond,
		DetailWarmup: 20 * timing.Microsecond,
	}
	run := func(shards int) []byte {
		c := cfg
		c.Shards = shards
		m, err := Run(context.Background(), c)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		mj, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return mj
	}
	want := run(0)
	for _, n := range []int{1, 2, 4} {
		if got := run(n); !bytes.Equal(got, want) {
			t.Errorf("sampled shards=%d metrics diverged from serial:\nserial:  %.400s\nsharded: %.400s",
				n, want, got)
		}
	}
}
