package sampling

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// goldenCase pairs a golden fixture in internal/sim/testdata/golden with
// the frozen configuration that produced it (mirrored from
// sim.goldenConfig / sim.reliabilityGoldenConfig, which are test-local).
type goldenCase struct {
	name     string
	scheme   sim.Scheme
	workload string
	rel      bool
}

// goldenCases lists every golden fixture: the seven quick-run goldens
// plus the three reliability variants.
func goldenCases() []goldenCase {
	return []goldenCase{
		{"static-3-GemsFDTD", sim.StaticScheme(pcm.Mode3SETs), "GemsFDTD", false},
		{"static-4-GemsFDTD", sim.StaticScheme(pcm.Mode4SETs), "GemsFDTD", false},
		{"static-5-GemsFDTD", sim.StaticScheme(pcm.Mode5SETs), "GemsFDTD", false},
		{"static-6-GemsFDTD", sim.StaticScheme(pcm.Mode6SETs), "GemsFDTD", false},
		{"static-7-GemsFDTD", sim.StaticScheme(pcm.Mode7SETs), "GemsFDTD", false},
		{"rrm-GemsFDTD", sim.RRMScheme(), "GemsFDTD", false},
		{"rrm-mcf", sim.RRMScheme(), "mcf", false},
		{"static-3-GemsFDTD-rel", sim.StaticScheme(pcm.Mode3SETs), "GemsFDTD", true},
		{"static-7-GemsFDTD-rel", sim.StaticScheme(pcm.Mode7SETs), "GemsFDTD", true},
		{"rrm-GemsFDTD-rel", sim.RRMScheme(), "GemsFDTD", true},
	}
}

// goldenConfig rebuilds the frozen config of a golden fixture. It must
// stay in lockstep with the sim package's golden test configs.
func goldenConfig(tc goldenCase) (sim.Config, error) {
	w, err := trace.WorkloadByName(tc.workload)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(tc.scheme, w)
	cfg.Warmup = 500 * timing.Microsecond
	cfg.Seed = 1
	if tc.rel {
		cfg.Duration = 2500 * timing.Microsecond
		cfg.TimeScale = 6000
		cfg.Reliability.Enabled = true
	} else {
		cfg.Duration = 1500 * timing.Microsecond
		cfg.TimeScale = 1000
	}
	return cfg, nil
}

// loadGolden reads a golden fixture's full-run metrics.
func loadGolden(t *testing.T, name string) sim.Metrics {
	t.Helper()
	path := filepath.Join("..", "sim", "testdata", "golden", name+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	var m sim.Metrics
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("decoding golden fixture %s: %v", name, err)
	}
	return m
}

// budgets are the three error-vs-speed points of the validation table:
// same window and pre-roll, growing window count (detailed coverage 0.20,
// 0.40 and 0.75 of the 1500us golden duration).
func budgets() []sim.SamplingSpec {
	return []sim.SamplingSpec{
		{Windows: 4, Window: 50 * timing.Microsecond, DetailWarmup: 25 * timing.Microsecond},
		{Windows: 8, Window: 50 * timing.Microsecond, DetailWarmup: 25 * timing.Microsecond},
		{Windows: 15, Window: 50 * timing.Microsecond, DetailWarmup: 25 * timing.Microsecond},
	}
}

// relWidth is an interval's width relative to its mean magnitude; the
// statistical size of the error bar.
func relWidth(iv interface {
	Width() float64
}, mean float64) float64 {
	if mean == 0 {
		return iv.Width()
	}
	w := iv.Width()
	if mean < 0 {
		mean = -mean
	}
	return w / mean
}

// TestSampledWithinConfidenceIntervals is the statistical validation
// harness of the sampling executor: for every golden fixture, the
// sampled estimates of IPC, lifetime and the write-mode mix must land
// inside their own reported 95% confidence intervals around the pinned
// full-run values, at each of the three window budgets. A sampled run
// whose interval excludes the truth is a confidently-wrong estimator —
// the one failure mode the report must never exhibit on the regimes the
// goldens pin.
func TestSampledWithinConfidenceIntervals(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			full := loadGolden(t, tc.name)
			cfg, err := goldenConfig(tc)
			if err != nil {
				t.Fatal(err)
			}

			// Relative wear-interval widths per budget, for the
			// shrinking-error assertion below.
			widths := make([]float64, 0, 3)
			for _, sp := range budgets() {
				sp := sp
				scfg := cfg
				scfg.Sampling = &sp
				m, err := Run(context.Background(), scfg)
				if err != nil {
					t.Fatalf("windows=%d: %v", sp.Windows, err)
				}
				r := m.Sampling
				if r == nil {
					t.Fatalf("windows=%d: sampled run has no sampling report", sp.Windows)
				}
				if !r.IPC.Contains(full.IPC) {
					t.Errorf("windows=%d: full-run IPC %.4f outside sampled interval [%.4f, %.4f]",
						sp.Windows, full.IPC, r.IPC.Lo, r.IPC.Hi)
				}
				if !r.LifetimeYears.Contains(full.LifetimeYears) {
					t.Errorf("windows=%d: full-run lifetime %.4f outside sampled interval [%.4f, %.4f]",
						sp.Windows, full.LifetimeYears, r.LifetimeYears.Lo, r.LifetimeYears.Hi)
				}
				if !r.ShortWriteFraction.Contains(full.ShortWriteFraction) {
					t.Errorf("windows=%d: full-run short-write fraction %.4f outside sampled interval [%.4f, %.4f]",
						sp.Windows, full.ShortWriteFraction, r.ShortWriteFraction.Lo, r.ShortWriteFraction.Hi)
				}
				widths = append(widths, relWidth(r.WearTotalRate, r.WearTotalRate.Mean))
				t.Logf("windows=%2d: IPC=%.4f [%.4f, %.4f] (full %.4f) lifetime=%.3f [%.3f, %.3f] (full %.3f) wearWidth=%.3f",
					sp.Windows, m.IPC, r.IPC.Lo, r.IPC.Hi, full.IPC,
					m.LifetimeYears, r.LifetimeYears.Lo, r.LifetimeYears.Hi, full.LifetimeYears,
					widths[len(widths)-1])
			}

			// More windows must buy smaller error bars. The wear interval
			// carries the comparison because its width is variance-
			// dominated at every budget; IPC intervals bottom out at the
			// bias floor and stop shrinking.
			for i := 1; i < len(widths); i++ {
				if widths[i] >= widths[0] {
					t.Errorf("wear interval width did not shrink: %.4f at %d windows vs %.4f at %d windows",
						widths[i], budgets()[i].Windows, widths[0], budgets()[0].Windows)
				}
			}
		})
	}
}
