package sampling

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// TestSampledHybridRun smoke-tests the sampling executor over a hybrid
// DRAM–PCM system with a thinned fast-forward, which drives the
// migrator's functional read/write routing and functional demotion
// writebacks, and checks the aggregated metrics carry the hybrid
// breakdown across windows.
func TestSampledHybridRun(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(sim.RRMScheme(), w)
	cfg.Duration = 2000 * timing.Microsecond
	cfg.Warmup = 500 * timing.Microsecond
	cfg.TimeScale = 1000
	cfg.Seed = 1
	hc := dram.DefaultHybridConfig()
	hc.DRAM.CapBytes = 256 * 1024
	hc.Migration.PromoteThreshold = 2
	cfg.Hybrid = &hc
	cfg.Sampling = &sim.SamplingSpec{
		Windows:      2,
		Window:       200 * timing.Microsecond,
		DetailWarmup: 100 * timing.Microsecond,
		FFStride:     2,
	}
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sampling == nil {
		t.Fatal("sampled run produced no sampling report")
	}
	h := m.Hybrid
	if h == nil {
		t.Fatal("sampled hybrid run produced no Hybrid metrics section")
	}
	if h.DRAMReads == 0 && h.DRAMWrites == 0 {
		t.Error("staging tier served no traffic in the sampled windows")
	}
	if m.IPC <= 0 {
		t.Errorf("sampled hybrid run IPC = %v, want > 0", m.IPC)
	}
	if m.RetentionViolations != 0 {
		t.Errorf("sampled hybrid run has %d retention violations", m.RetentionViolations)
	}

	// Window-parallelism independence must survive the hybrid state: a
	// serial re-run aggregates to byte-identical metrics.
	m2, err := RunParallel(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(m)
	b, _ := json.Marshal(m2)
	if !bytes.Equal(a, b) {
		t.Errorf("parallel and serial sampled hybrid runs diverged:\n%s\n%s", a, b)
	}
}
