package sampling

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// fastConfig is a small warmed-system config for the property tests.
func fastConfig(t *testing.T) sim.Config {
	t.Helper()
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(sim.RRMScheme(), w)
	cfg.Duration = 600 * timing.Microsecond
	cfg.Warmup = 200 * timing.Microsecond
	cfg.TimeScale = 1000
	cfg.Seed = 1
	return cfg
}

func warmed(t *testing.T, cfg sim.Config) *sim.System {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sys
}

// checksum returns a canonical checksum of sys's state: the snapshot is
// round-tripped through a restore into a fresh system first. Raw blobs
// embed event-queue sequence numbers, which count every event the queue
// ever scheduled — a donor that simulated its whole history and a fork
// restored from its snapshot dispatch identically but carry different
// raw seqs. Restore re-ranks them densely (timing.Rearm into a reset
// queue), so the re-snapshot is a path-independent encoding of state.
func checksum(t *testing.T, cfg sim.Config, sys *sim.System) uint64 {
	t.Helper()
	blob, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := canon.Restore(blob); err != nil {
		t.Fatal(err)
	}
	blob, err = canon.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snapshot.Checksum(blob)
}

// TestChunkedFastForwardEquivalence is the functional-equivalence
// property the sampler's snapshot placement rests on: fast-forwarding in
// chunks, snapshotting at the chunk boundaries, must land in bit-exactly
// the state one continuous fast-forward reaches — otherwise window forks
// would depend on how many windows precede them.
func TestChunkedFastForwardEquivalence(t *testing.T) {
	ctx := context.Background()
	cfg := fastConfig(t)
	span := 400 * timing.Microsecond

	cont := warmed(t, cfg)
	if err := cont.FastForward(ctx, span); err != nil {
		t.Fatal(err)
	}

	chunked := warmed(t, cfg)
	chunk := span / 4
	for i := 0; i < 4; i++ {
		if _, err := chunked.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if err := chunked.FastForward(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}

	if a, b := checksum(t, cfg, cont), checksum(t, cfg, chunked); a != b {
		t.Fatalf("chunked fast-forward diverged from continuous: %#x != %#x", a, b)
	}
}

// TestFastForwardRestoreEquivalence: restoring a mid-fast-forward
// snapshot into a fresh system and continuing must be bit-identical to
// the donor running straight through — snapshots taken during the
// sampling walk are pure serialization, not approximation.
func TestFastForwardRestoreEquivalence(t *testing.T) {
	ctx := context.Background()
	cfg := fastConfig(t)

	donor := warmed(t, cfg)
	if err := donor.FastForward(ctx, 200*timing.Microsecond); err != nil {
		t.Fatal(err)
	}
	blob, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.FastForward(ctx, 200*timing.Microsecond); err != nil {
		t.Fatal(err)
	}

	fork, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if err := fork.FastForward(ctx, 200*timing.Microsecond); err != nil {
		t.Fatal(err)
	}

	if a, b := checksum(t, cfg, donor), checksum(t, cfg, fork); a != b {
		t.Fatalf("restored fork diverged from donor: %#x != %#x", a, b)
	}
}

// TestSkipForwardEquivalence: the strided walk's skip phase must compose
// (two half-skips equal one full skip) and round-trip through a
// snapshot, including the parked-core state it leaves behind.
func TestSkipForwardEquivalence(t *testing.T) {
	ctx := context.Background()
	cfg := fastConfig(t)
	span := 300 * timing.Microsecond

	one := warmed(t, cfg)
	if err := one.SkipForward(ctx, span); err != nil {
		t.Fatal(err)
	}

	two := warmed(t, cfg)
	for i := 0; i < 2; i++ {
		if err := two.SkipForward(ctx, span/2); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := checksum(t, cfg, one), checksum(t, cfg, two); a != b {
		t.Fatalf("split skip diverged from single skip: %#x != %#x", a, b)
	}

	// Round-trip the parked state and re-warm both sides identically: a
	// fork restored from a post-skip snapshot must rejoin the donor's
	// trajectory once traffic resumes.
	blob, err := one.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*sim.System{one, fork} {
		if err := sys.FastForward(ctx, 100*timing.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := checksum(t, cfg, one), checksum(t, cfg, fork); a != b {
		t.Fatalf("post-skip fork diverged after re-warming: %#x != %#x", a, b)
	}
}

// TestSampledRunDeterministicAcrossParallelism: window results merge by
// index, so the full metrics document — means, intervals, every counter
// — must be byte-identical at any parallelism level.
func TestSampledRunDeterministicAcrossParallelism(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Sampling = &sim.SamplingSpec{
		Windows:      4,
		Window:       25 * timing.Microsecond,
		DetailWarmup: 10 * timing.Microsecond,
	}
	run := func(parallel int) []byte {
		m, err := RunParallel(context.Background(), cfg, parallel)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	for _, p := range []int{2, 4, 8} {
		if got := run(p); !bytes.Equal(serial, got) {
			t.Fatalf("sampled metrics differ between parallel=1 and parallel=%d", p)
		}
	}
}

// TestSampledRunStrided: a strided sampled run must complete, report
// every interval, and remain deterministic.
func TestSampledRunStrided(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Sampling = &sim.SamplingSpec{
		Windows:      4,
		Window:       25 * timing.Microsecond,
		DetailWarmup: 10 * timing.Microsecond,
		FFStride:     4,
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sampling == nil {
		t.Fatal("strided run has no sampling report")
	}
	if a.Sampling.Coverage <= 0 {
		t.Error("strided run reports zero coverage")
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatal("strided sampled run is nondeterministic")
	}
}
