package sampling

import (
	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
)

// aggregate merges the window metrics into one full-run estimate.
// Rates and ratios are window means; event counts are scaled from the
// measured coverage up to the full duration (count estimates, rounded);
// retention violations are summed unscaled — they are a correctness
// signal, not a rate estimate. The confidence-interval report covers the
// headline metrics the experiments consume.
func aggregate(cfg sim.Config, ms []sim.Metrics) sim.Metrics {
	sp := cfg.Sampling
	n := len(ms)
	fn := float64(n)
	// scale maps a summed per-window count to a full-duration estimate.
	scale := cfg.Duration.Seconds() / (fn * sp.Window.Seconds())
	scaled := func(f func(*sim.Metrics) uint64) uint64 {
		var sum uint64
		for i := range ms {
			sum += f(&ms[i])
		}
		return uint64(float64(sum)*scale + 0.5)
	}
	mean := func(f func(*sim.Metrics) float64) float64 {
		var sum float64
		for i := range ms {
			sum += f(&ms[i])
		}
		return sum / fn
	}
	samples := func(f func(*sim.Metrics) float64) []float64 {
		out := make([]float64, n)
		for i := range ms {
			out[i] = f(&ms[i])
		}
		return out
	}

	out := sim.Metrics{
		Scheme:     ms[0].Scheme,
		Workload:   ms[0].Workload,
		SimSeconds: cfg.Duration.Seconds(),
		TimeScale:  ms[0].TimeScale,
	}

	// Performance.
	out.Instructions = scaled(func(m *sim.Metrics) uint64 { return m.Instructions })
	ipcSamples := samples(func(m *sim.Metrics) float64 { return m.IPC })
	out.IPC = mean(func(m *sim.Metrics) float64 { return m.IPC })
	for c := range ms[0].PerCoreIPC {
		out.PerCoreIPC = append(out.PerCoreIPC,
			mean(func(m *sim.Metrics) float64 { return m.PerCoreIPC[c] }))
	}
	mpkiSamples := samples(func(m *sim.Metrics) float64 { return m.LLCMPKI })
	out.LLCMPKI = mean(func(m *sim.Metrics) float64 { return m.LLCMPKI })

	// Memory traffic.
	out.ReadsServed = scaled(func(m *sim.Metrics) uint64 { return m.ReadsServed })
	out.WritesServed = scaled(func(m *sim.Metrics) uint64 { return m.WritesServed })
	out.RefreshesServed = scaled(func(m *sim.Metrics) uint64 { return m.RefreshesServed })
	out.AvgReadLatency = timing.Time(mean(func(m *sim.Metrics) float64 { return float64(m.AvgReadLatency) }))
	for i := range ms {
		if ms[i].MaxRefreshLat > out.MaxRefreshLat {
			out.MaxRefreshLat = ms[i].MaxRefreshLat
		}
		if ms[i].RefreshBacklogMax > out.RefreshBacklogMax {
			out.RefreshBacklogMax = ms[i].RefreshBacklogMax
		}
	}
	out.RowBufHitRate = mean(func(m *sim.Metrics) float64 { return m.RowBufHitRate })
	out.WritePauses = scaled(func(m *sim.Metrics) uint64 { return m.WritePauses })

	// Write-mode split: scaled per-mode sums, fraction weighted by each
	// window's write volume.
	modeSum := make(map[pcm.WriteMode]uint64)
	var shortWeighted, writeTotal float64
	for i := range ms {
		var winTotal float64
		for mode, c := range ms[i].WritesByMode {
			modeSum[mode] += c
			winTotal += float64(c)
		}
		shortWeighted += ms[i].ShortWriteFraction * winTotal
		writeTotal += winTotal
	}
	if len(modeSum) > 0 {
		out.WritesByMode = make(sim.ModeWrites, len(modeSum))
		for mode, c := range modeSum {
			out.WritesByMode[mode] = uint64(float64(c)*scale + 0.5)
		}
	}
	shortSamples := samples(func(m *sim.Metrics) float64 { return m.ShortWriteFraction })
	if writeTotal > 0 {
		out.ShortWriteFraction = shortWeighted / writeTotal
	}

	// Wear and lifetime. The global-refresh term is analytic and
	// identical in every window.
	wearSamples := samples(func(m *sim.Metrics) float64 { return m.WearTotalRate })
	out.WearDemandRate = mean(func(m *sim.Metrics) float64 { return m.WearDemandRate })
	out.WearRRMRate = mean(func(m *sim.Metrics) float64 { return m.WearRRMRate })
	out.WearSlowRate = mean(func(m *sim.Metrics) float64 { return m.WearSlowRate })
	out.WearGlobalRate = ms[0].WearGlobalRate
	out.WearTotalRate = out.WearDemandRate + out.WearRRMRate + out.WearSlowRate + out.WearGlobalRate
	out.LifetimeYears = stats.LifetimeYears(cfg.Device, out.WearTotalRate)

	// Energy.
	out.PowerDemandW = mean(func(m *sim.Metrics) float64 { return m.PowerDemandW })
	out.PowerRefreshW = mean(func(m *sim.Metrics) float64 { return m.PowerRefreshW })
	out.PowerReadW = mean(func(m *sim.Metrics) float64 { return m.PowerReadW })
	out.EquivSeconds = ms[0].EquivSeconds
	out.EnergyDemandJ = out.PowerDemandW * out.EquivSeconds
	out.EnergyRefreshJ = out.PowerRefreshW * out.EquivSeconds
	out.EnergyTotalJ = out.EnergyDemandJ + out.EnergyRefreshJ + out.PowerReadW*out.EquivSeconds

	// RRM internals: scaled count estimates; hot-set size is end-state,
	// so the last window's view is the run's view.
	rrmCount := func(f func(*core.Stats) uint64) uint64 {
		var sum uint64
		for i := range ms {
			sum += f(&ms[i].RRM)
		}
		return uint64(float64(sum)*scale + 0.5)
	}
	out.RRM = core.Stats{
		Registrations:  rrmCount(func(s *core.Stats) uint64 { return s.Registrations }),
		CleanFiltered:  rrmCount(func(s *core.Stats) uint64 { return s.CleanFiltered }),
		RegHits:        rrmCount(func(s *core.Stats) uint64 { return s.RegHits }),
		RegMisses:      rrmCount(func(s *core.Stats) uint64 { return s.RegMisses }),
		Allocations:    rrmCount(func(s *core.Stats) uint64 { return s.Allocations }),
		Evictions:      rrmCount(func(s *core.Stats) uint64 { return s.Evictions }),
		EvictionFlush:  rrmCount(func(s *core.Stats) uint64 { return s.EvictionFlush }),
		Promotions:     rrmCount(func(s *core.Stats) uint64 { return s.Promotions }),
		Demotions:      rrmCount(func(s *core.Stats) uint64 { return s.Demotions }),
		FastRefreshes:  rrmCount(func(s *core.Stats) uint64 { return s.FastRefreshes }),
		SlowRefreshes:  rrmCount(func(s *core.Stats) uint64 { return s.SlowRefreshes }),
		ShortDecisions: rrmCount(func(s *core.Stats) uint64 { return s.ShortDecisions }),
		LongDecisions:  rrmCount(func(s *core.Stats) uint64 { return s.LongDecisions }),
	}
	out.HotEntries = ms[n-1].HotEntries
	out.HotBlocks = ms[n-1].HotBlocks

	// Retention violations are summed raw: any nonzero count must
	// surface, never be rounded away by coverage scaling.
	for i := range ms {
		out.RetentionViolations += ms[i].RetentionViolations
		if out.FirstViolation == "" {
			out.FirstViolation = ms[i].FirstViolation
		}
	}
	out.RetentionDetail = sumRetentionDetail(ms)
	out.Reliability = sumReliability(ms)
	out.Tenants = aggregateTenants(ms, scale)
	if h := aggregateHybrid(ms, scale); h != nil {
		h.DRAMEnergyJ = h.DRAMPowerW * out.EquivSeconds
		out.EnergyTotalJ += h.DRAMEnergyJ
		out.Hybrid = h
	}

	out.Sampling = &sim.SamplingReport{
		Windows:             n,
		WindowSeconds:       sp.Window.Seconds(),
		DetailWarmupSeconds: sp.DetailWarmup.Seconds(),
		Coverage:            sp.Coverage(cfg.Duration),
		Confidence:          0.95,
		IPC:                 interval(ipcSamples),
		LLCMPKI:             interval(mpkiSamples),
		WearTotalRate:       interval(wearSamples),
		ShortWriteFraction:  mixInterval(shortSamples),
	}
	// Wear is a physical rate: a Student-t lower bound below zero is a
	// small-sample artifact, so the interval is clamped to the physical
	// floor before anything derives from it.
	if out.Sampling.WearTotalRate.Lo < 0 {
		out.Sampling.WearTotalRate.Lo = 0
	}
	// Lifetime is a monotone decreasing function of total wear, so its
	// interval is the wear interval mapped through it (ends swap; a wear
	// floor of exactly zero maps to an unbounded lifetime, which the
	// Interval JSON encoding represents as null).
	wiv := out.Sampling.WearTotalRate
	out.Sampling.LifetimeYears = stats.Interval{
		Mean: stats.LifetimeYears(cfg.Device, wiv.Mean),
		Lo:   stats.LifetimeYears(cfg.Device, wiv.Hi),
		Hi:   stats.LifetimeYears(cfg.Device, wiv.Lo),
	}
	return out
}

// sumRetentionDetail merges the per-window violation breakdowns (nil
// when every window was clean, matching full-run behavior).
func sumRetentionDetail(ms []sim.Metrics) *sim.RetentionDetail {
	var out sim.RetentionDetail
	any := false
	for i := range ms {
		d := ms[i].RetentionDetail
		if d == nil {
			continue
		}
		any = true
		out.Total += d.Total
		out.ExpiredOnRead += d.ExpiredOnRead
		out.ExpiredOnRewrite += d.ExpiredOnRewrite
		out.ExpiredAtEnd += d.ExpiredAtEnd
		if out.First == "" {
			out.First = d.First
		}
	}
	if !any {
		return nil
	}
	return &out
}

// sumReliability merges the window reliability counters (raw sums over
// the detailed coverage — reads are only inspected inside windows) and
// recomputes the derived rates.
func sumReliability(ms []sim.Metrics) *reliability.Metrics {
	var out reliability.Metrics
	any := false
	for i := range ms {
		r := ms[i].Reliability
		if r == nil {
			continue
		}
		any = true
		out.ReadsChecked += r.ReadsChecked
		out.CleanReads += r.CleanReads
		out.CorrectedReads += r.CorrectedReads
		out.UncorrectableReads += r.UncorrectableReads
		out.BitFlipsCorrected += r.BitFlipsCorrected
		out.CorrectionStall += r.CorrectionStall
		out.ScrubsOnWrite += r.ScrubsOnWrite
		out.ScrubsOnRefresh += r.ScrubsOnRefresh
		out.PatrolIssued += r.PatrolIssued
		out.ScrubFoundCorrected += r.ScrubFoundCorrected
		out.ScrubFoundUncorrectable += r.ScrubFoundUncorrectable
		out.SweepLines += r.SweepLines
		out.SweepCorrected += r.SweepCorrected
		out.SweepUncorrectable += r.SweepUncorrectable
		if r.LinesTracked > out.LinesTracked {
			out.LinesTracked = r.LinesTracked
		}
		if r.LinesScrubbed > out.LinesScrubbed {
			out.LinesScrubbed = r.LinesScrubbed
		}
	}
	if !any {
		return nil
	}
	out.Finalize()
	return &out
}

// aggregateHybrid merges the per-window hybrid-tier breakdowns (nil for
// PCM-only runs): traffic and migration counts are coverage-scaled like
// the top-level counts, rates and power are window means, and the
// occupancy gauges are end-state, so the last window's view stands for
// the run. DRAMEnergyJ is derived by the caller from the aggregated
// power and equivalent duration.
func aggregateHybrid(ms []sim.Metrics, scale float64) *sim.HybridMetrics {
	if ms[0].Hybrid == nil {
		return nil
	}
	n := len(ms)
	count := func(f func(*sim.HybridMetrics) uint64) uint64 {
		var sum uint64
		for i := range ms {
			sum += f(ms[i].Hybrid)
		}
		return uint64(float64(sum)*scale + 0.5)
	}
	mean := func(f func(*sim.HybridMetrics) float64) float64 {
		var sum float64
		for i := range ms {
			sum += f(ms[i].Hybrid)
		}
		return sum / float64(n)
	}
	out := &sim.HybridMetrics{
		PCMReads:        count(func(h *sim.HybridMetrics) uint64 { return h.PCMReads }),
		PCMWrites:       count(func(h *sim.HybridMetrics) uint64 { return h.PCMWrites }),
		DRAMReads:       count(func(h *sim.HybridMetrics) uint64 { return h.DRAMReads }),
		DRAMWrites:      count(func(h *sim.HybridMetrics) uint64 { return h.DRAMWrites }),
		DRAMReadHitRate: mean(func(h *sim.HybridMetrics) float64 { return h.DRAMReadHitRate }),
		WriteAbsorption: mean(func(h *sim.HybridMetrics) float64 { return h.WriteAbsorption }),
		Promotions:      count(func(h *sim.HybridMetrics) uint64 { return h.Promotions }),
		Demotions:       count(func(h *sim.HybridMetrics) uint64 { return h.Demotions }),
		CleanEvictions:  count(func(h *sim.HybridMetrics) uint64 { return h.CleanEvictions }),
		CoalesceBatches: count(func(h *sim.HybridMetrics) uint64 { return h.CoalesceBatches }),
		CopyReads:       count(func(h *sim.HybridMetrics) uint64 { return h.CopyReads }),
		WritebackBlocks: count(func(h *sim.HybridMetrics) uint64 { return h.WritebackBlocks }),
		ResidentPages:   ms[n-1].Hybrid.ResidentPages,
		DirtyPages:      ms[n-1].Hybrid.DirtyPages,
		DRAMRowHitRate:  mean(func(h *sim.HybridMetrics) float64 { return h.DRAMRowHitRate }),
		DRAMRefreshStalls: count(func(h *sim.HybridMetrics) uint64 {
			return h.DRAMRefreshStalls
		}),
		DRAMAvgReadLatency: timing.Time(mean(func(h *sim.HybridMetrics) float64 {
			return float64(h.DRAMAvgReadLatency)
		})),
		DRAMPowerW: mean(func(h *sim.HybridMetrics) float64 { return h.DRAMPowerW }),
	}
	return out
}

// aggregateTenants merges per-tenant attribution across windows: count
// estimates are coverage-scaled like the top-level counts, IPC is the
// window mean, fractions are write-volume weighted.
func aggregateTenants(ms []sim.Metrics, scale float64) []sim.TenantMetrics {
	if len(ms[0].Tenants) == 0 {
		return nil
	}
	out := make([]sim.TenantMetrics, len(ms[0].Tenants))
	for t := range out {
		agg := &out[t]
		agg.Name = ms[0].Tenants[t].Name
		agg.Cores = ms[0].Tenants[t].Cores
		var insts, writes, reads, corr, uncorr uint64
		var ipc, shortWeighted float64
		modeSum := make(map[pcm.WriteMode]uint64)
		for i := range ms {
			w := &ms[i].Tenants[t]
			insts += w.Instructions
			ipc += w.IPC
			writes += w.DemandWrites
			shortWeighted += w.ShortWriteFraction * float64(w.DemandWrites)
			for mode, c := range w.WritesByMode {
				modeSum[mode] += c
			}
			agg.RetentionViolations += w.RetentionViolations
			reads += w.ReadsChecked
			corr += w.CorrectedReads
			uncorr += w.UncorrectableReads
		}
		agg.Instructions = uint64(float64(insts)*scale + 0.5)
		agg.IPC = ipc / float64(len(ms))
		agg.DemandWrites = uint64(float64(writes)*scale + 0.5)
		if writes > 0 {
			agg.ShortWriteFraction = shortWeighted / float64(writes)
		}
		if len(modeSum) > 0 {
			agg.WritesByMode = make(sim.ModeWrites, len(modeSum))
			for mode, c := range modeSum {
				agg.WritesByMode[mode] = uint64(float64(c)*scale + 0.5)
			}
		}
		agg.ReadsChecked = uint64(float64(reads)*scale + 0.5)
		agg.CorrectedReads = uint64(float64(corr)*scale + 0.5)
		agg.UncorrectableReads = uint64(float64(uncorr)*scale + 0.5)
	}
	return out
}
