// Package sampling is the SMARTS-style interval-sampling executor: it
// runs one simulation as alternating functional fast-forward and
// detailed measurement windows instead of one contiguous detailed
// window, and reports per-metric means with confidence intervals.
//
// Execution shape: the parent system simulates the configured warmup in
// full detail, then walks the measured duration once, snapshotting at
// the start of each of the Windows equal segments and fast-forwarding
// (sim.System.FastForward: functional-only mode — caches, RRM tables,
// wear/retention/reliability state advance; FR-FCFS scheduling, event
// latencies and the reliability read path are skipped) between them.
// Each snapshot is then restored into a fresh fork, pre-rolled for
// DetailWarmup of detailed-but-discarded simulation to rebuild queue and
// row-buffer state, and measured for Window. Forks are independent
// systems, so windows execute in parallel across GOMAXPROCS goroutines;
// results merge by window index, so any parallelism level produces
// byte-identical metrics.
//
// The error model is the SMARTS one: window means are treated as i.i.d.
// samples of the run mean and summarized with two-sided 95% Student-t
// intervals, widened by a small relative floor (biasFloor) that accounts
// for the systematic component functional fast-forward introduces and
// between-window variance cannot see. internal/sampling/validate_test.go
// is the statistical proof-of-correctness harness: sampled estimates of
// every golden config must land inside their own reported intervals
// around the full-run golden values, and intervals must shrink as the
// window budget grows.
package sampling

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
)

// biasFloor is the minimum relative half-width of every reported
// interval. The Student-t term only measures between-window variance;
// the functional fast-forward's state approximation (no queueing during
// gaps) adds a small systematic error on top, empirically well under
// this floor for the shipped workloads (see DESIGN.md §15).
const biasFloor = 0.04

// Write-mode-mix intervals carry a larger allowance: the mix is decided
// by the policy's slowly-mixing hot-set state, which functional
// fast-forward approximates most coarsely, and its mean can sit near
// zero (cold workloads promote rarely), where bursty promotions are a
// rare-event sampling problem no relative floor covers. 30% relative
// plus 1.5 percentage points absolute bounds both, empirically with
// margin across the golden fixtures.
const (
	mixBiasFloor = 0.30
	mixAbsFloor  = 0.015
)

// Run executes cfg as a sampled run (cfg.Sampling must be set) with
// GOMAXPROCS-way window parallelism.
func Run(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
	return RunParallel(ctx, cfg, 0)
}

// RunParallel is Run with an explicit window-parallelism bound
// (<= 0 means GOMAXPROCS). The result is identical at any bound.
func RunParallel(ctx context.Context, cfg sim.Config, parallel int) (sim.Metrics, error) {
	sp := cfg.Sampling
	if sp == nil {
		return sim.Metrics{}, fmt.Errorf("sampling: config has no sampling spec")
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Metrics{}, err
	}
	// The snapshot-producing run is abandoned after the last snapshot
	// (it never Measures); release its shard workers explicitly.
	defer sys.Close()
	if err := sys.Warmup(ctx); err != nil {
		return sim.Metrics{}, err
	}

	// One pass over the duration: snapshot each segment start, functional
	// fast-forward between them. The fast-forward after the last snapshot
	// would only advance state nothing measures, so it is skipped.
	//
	// Each gap opens with a calibration probe of DetailWarmup detailed
	// simulation (the exact stretch every window fork re-traces as its
	// pre-roll, so it costs no extra trajectory): its instruction rate is
	// the servo target, and the flat functional latency is scaled so the
	// previous gap's functional rate converges onto the detailed one —
	// without this the functional machine holds a fixed rate while write
	// backpressure slows the detailed machine, and the forked state walks
	// off the real trajectory on long runs. With a stride above 1 the
	// remainder of the gap is split skip-then-warm — cores parked for the
	// leading (stride-1)/stride while time-driven machinery runs, full
	// functional traffic for the trailing 1/stride — so every snapshot
	// still sits right behind freshly-warmed state.
	n := sp.Windows
	seg := cfg.Duration / timing.Time(n)
	probe := sp.DetailWarmup
	blobs := make([][]byte, n)
	var lastFFRate float64
	for i := 0; i < n; i++ {
		if blobs[i], err = sys.Snapshot(); err != nil {
			return sim.Metrics{}, fmt.Errorf("sampling: window %d snapshot: %w", i, err)
		}
		if i == n-1 {
			break
		}
		gap := seg
		if probe > 0 {
			before := sys.Instructions()
			if err := sys.Advance(ctx, probe); err != nil {
				return sim.Metrics{}, fmt.Errorf("sampling: probe for window %d: %w", i+1, err)
			}
			detailRate := float64(sys.Instructions()-before) / probe.Seconds()
			if lastFFRate > 0 && detailRate > 0 {
				// Gentle servo: short probes are noisy, so small rate
				// mismatches sit in a deadband and large ones correct at
				// most 4/3x per gap — enough to track secular drift over a
				// long run without chasing probe noise into oscillation on
				// short ones.
				adjust := lastFFRate / detailRate
				if adjust < 0.75 {
					adjust = 0.75
				} else if adjust > 4.0/3 {
					adjust = 4.0 / 3
				}
				if adjust < 0.9 || adjust > 1.1 {
					sys.ScaleFunctionalLatency(adjust)
				}
			}
			gap -= probe
		}
		warm := gap / timing.Time(sp.Stride())
		if err := sys.SkipForward(ctx, gap-warm); err != nil {
			return sim.Metrics{}, fmt.Errorf("sampling: skip to window %d: %w", i+1, err)
		}
		if err := sys.FastForward(ctx, warm); err != nil {
			return sim.Metrics{}, fmt.Errorf("sampling: fast-forward to window %d: %w", i+1, err)
		}
		if r := sys.FunctionalRate(); r > 0 {
			lastFFRate = r
		}
	}

	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	ms := make([]sim.Metrics, n)
	errs := make([]error, n)
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := range blobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ms[i], errs[i] = measureWindow(ctx, cfg, blobs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return sim.Metrics{}, fmt.Errorf("sampling: window %d: %w", i, err)
		}
	}
	return aggregate(cfg, ms), nil
}

// measureWindow forks one detailed measurement window from a snapshot.
func measureWindow(ctx context.Context, cfg sim.Config, blob []byte) (sim.Metrics, error) {
	fork, err := sim.New(cfg)
	if err != nil {
		return sim.Metrics{}, err
	}
	if err := fork.Restore(blob); err != nil {
		return sim.Metrics{}, err
	}
	return fork.MeasureWindow(ctx, cfg.Sampling.DetailWarmup, cfg.Sampling.Window)
}

// interval computes the report interval for one metric's window samples:
// the 95% Student-t interval widened to the relative bias floor.
func interval(samples []float64) stats.Interval {
	return stats.MeanCI95(samples).WidenRelative(biasFloor)
}

// mixInterval is interval for write-mode-mix fractions, with the larger
// mix bias allowance (see mixBiasFloor).
func mixInterval(samples []float64) stats.Interval {
	return stats.MeanCI95(samples).
		WidenRelative(mixBiasFloor).
		WidenAbsolute(mixAbsFloor)
}
