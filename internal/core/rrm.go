package core

import (
	"fmt"
	"math/bits"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// RRMConfig sizes the Region Retention Monitor (paper §IV, Table IV).
type RRMConfig struct {
	Sets int // paper default: 256
	Ways int // paper default: 24

	// RegionBytes is the entry coverage size (one Retention Region);
	// default 4 KB, the x86-64 page size. Sensitivity study F13 varies
	// it from 2 KB to 16 KB.
	RegionBytes uint64
	// BlockBytes is the memory block size covered by one bit of the
	// short-retention vector (64 B).
	BlockBytes uint64

	// HotThreshold is the number of dirty LLC writes a region must
	// accumulate to be classified hot (default 16). Lower is more
	// aggressive: more 3-SETs writes, more RRM refresh wear.
	HotThreshold int

	// AccessLatency is the RRM lookup latency (4 CPU cycles).
	AccessLatency timing.Time

	// ShortMode is the fast, short-retention write used for hot blocks;
	// LongMode the slow, long-retention default.
	ShortMode pcm.WriteMode
	LongMode  pcm.WriteMode

	// FastRefreshInterval is the short-retention interrupt period. The
	// paper uses 2 s: 0.01 s before the 2.01 s retention of the
	// 3-SETs-Write expires.
	FastRefreshInterval timing.Time
	// DecayInterval is the decay tick period (0.125 s: 1/16 of the
	// fast-refresh interval, matching the 4-bit decay counter).
	DecayInterval timing.Time
	// DecayBits sizes the cyclic decay counter (4 bits: a full wrap
	// spans one fast-refresh interval).
	DecayBits int

	// RefreshSampling simulates only a deterministic 1-in-N subset of
	// selective refreshes in the memory controller (0 or 1 = all). The
	// simulator sets it to TimeScale: with the retention clock
	// accelerated N-fold, sampling 1/N of the blocks makes the
	// simulated refresh stream's bandwidth and count equal the real
	// ones exactly, instead of N-fold denser. Wear, energy and the
	// retention checker all follow the same subset.
	RefreshSampling uint64

	// RegisterCleanWrites disables the streaming-write filter: LLC
	// writes to clean lines also bump the dirty-write counter. Only
	// for ablation A2; the paper argues (§IV-D) this misclassifies
	// streaming regions as hot.
	RegisterCleanWrites bool
}

// DefaultRRMConfig returns the Table IV RRM: 256 sets, 24 ways, 4 KB
// regions (4x LLC coverage for the 6 MB LLC), hot_threshold 16.
func DefaultRRMConfig() RRMConfig {
	return RRMConfig{
		Sets:                256,
		Ways:                24,
		RegionBytes:         4 << 10,
		BlockBytes:          64,
		HotThreshold:        16,
		AccessLatency:       4 * timing.CPUCycle,
		ShortMode:           pcm.Mode3SETs,
		LongMode:            pcm.Mode7SETs,
		FastRefreshInterval: 2 * timing.Second,
		DecayInterval:       125 * timing.Millisecond,
		DecayBits:           4,
	}
}

// WithCoverage returns the config resized to the given LLC coverage rate
// (Table VIII): sets are scaled so that Sets*Ways*RegionBytes equals
// coverage x llcBytes.
func (c RRMConfig) WithCoverage(coverage int, llcBytes uint64) RRMConfig {
	c.Sets = int(uint64(coverage) * llcBytes / (uint64(c.Ways) * c.RegionBytes))
	return c
}

// Validate checks the configuration.
func (c RRMConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("core: RRM sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("core: RRM ways %d", c.Ways)
	}
	if c.RegionBytes == 0 || c.RegionBytes&(c.RegionBytes-1) != 0 {
		return fmt.Errorf("core: region size %d must be a power of two", c.RegionBytes)
	}
	if c.BlockBytes == 0 || c.RegionBytes%c.BlockBytes != 0 {
		return fmt.Errorf("core: region %d not divisible by block %d", c.RegionBytes, c.BlockBytes)
	}
	if n := c.BlocksPerRegion(); n > maxBlocksPerRegion {
		return fmt.Errorf("core: %d blocks per region exceeds the %d-bit vector", n, maxBlocksPerRegion)
	}
	if c.HotThreshold <= 0 {
		return fmt.Errorf("core: hot threshold %d", c.HotThreshold)
	}
	if !c.ShortMode.Valid() || !c.LongMode.Valid() || c.ShortMode >= c.LongMode {
		return fmt.Errorf("core: short mode %v must be faster than long mode %v", c.ShortMode, c.LongMode)
	}
	if c.FastRefreshInterval <= 0 || c.FastRefreshInterval >= pcm.Retention(c.ShortMode) {
		return fmt.Errorf("core: fast refresh interval %v must be positive and below the %v retention %v",
			c.FastRefreshInterval, c.ShortMode, pcm.Retention(c.ShortMode))
	}
	if c.DecayInterval <= 0 || c.DecayBits <= 0 || c.DecayBits > 16 {
		return fmt.Errorf("core: decay interval %v / bits %d", c.DecayInterval, c.DecayBits)
	}
	return nil
}

// BlocksPerRegion returns the short-retention vector width.
func (c RRMConfig) BlocksPerRegion() int { return int(c.RegionBytes / c.BlockBytes) }

// CoveredBytes returns the memory the RRM can track at once.
func (c RRMConfig) CoveredBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * c.RegionBytes
}

// EntryBits returns the storage cost of one RRM entry, using the paper's
// field accounting: valid(1) + addr tag + hot(1) + dirty-write counter +
// short-retention vector + decay counter. With the defaults this is
// 1+52+1+6+64+4 = 128 bits.
func (c RRMConfig) EntryBits() int {
	addrBits := 64 - bits.TrailingZeros64(c.RegionBytes)
	counterBits := bits.Len(uint(c.HotThreshold))
	if counterBits < 6 {
		counterBits = 6
	}
	return 1 + addrBits + 1 + counterBits + c.BlocksPerRegion() + c.DecayBits
}

// StorageBytes returns the total RRM storage (Table VIII).
func (c RRMConfig) StorageBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * uint64(c.EntryBits()) / 8
}

// maxBlocksPerRegion bounds the short-retention vector (16 KB regions of
// 64 B blocks need 256 bits).
const maxBlocksPerRegion = 256

const vectorWords = maxBlocksPerRegion / 64

// entry is one RRM entry (paper §IV-C).
type entry struct {
	valid        bool
	hot          bool
	tag          uint64 // region number
	dirtyWrites  int    // saturates at HotThreshold
	decayCounter int
	hotGen       int // promotion generation; ends on demote/evict
	shortVec     [vectorWords]uint64
	lastUse      uint64 // LRU timestamp

	// Live refresh-timer descriptor (snapshot bookkeeping): the pending
	// event of the current promotion generation's timer. Valid only
	// while timerGen == hotGen — reallocation or re-promotion leaves a
	// dead timer pending whose fields no longer match.
	timerAt  timing.Time
	timerSeq int64
	timerGen int
}

// vecBit tests, sets and clears short-retention vector bits.
func (e *entry) vecGet(i int) bool { return e.shortVec[i>>6]&(1<<(uint(i)&63)) != 0 }
func (e *entry) vecSet(i int)      { e.shortVec[i>>6] |= 1 << (uint(i) & 63) }
func (e *entry) vecClear()         { e.shortVec = [vectorWords]uint64{} }
func (e *entry) vecPopCount() int {
	n := 0
	for _, w := range e.shortVec {
		n += bits.OnesCount64(w)
	}
	return n
}

// Stats counts RRM activity.
type Stats struct {
	Registrations  uint64 // LLC write registrations received
	CleanFiltered  uint64 // registrations ignored by the streaming filter
	RegHits        uint64
	RegMisses      uint64
	Allocations    uint64
	Evictions      uint64
	EvictionFlush  uint64 // slow refreshes issued for evicted live entries
	Promotions     uint64 // cold -> hot transitions
	Demotions      uint64 // hot -> cold decay transitions
	FastRefreshes  uint64 // 3-SETs refreshes issued
	SlowRefreshes  uint64 // 7-SETs refreshes issued on demotion/eviction
	ShortDecisions uint64 // memory writes steered to ShortMode
	LongDecisions  uint64 // memory writes left at LongMode
}

// ShortWriteFraction returns the fraction of write decisions steered to
// the fast mode.
func (s Stats) ShortWriteFraction() float64 {
	total := s.ShortDecisions + s.LongDecisions
	if total == 0 {
		return 0
	}
	return float64(s.ShortDecisions) / float64(total)
}

// RRM is the Region Retention Monitor.
type RRM struct {
	cfg      RRMConfig
	issuer   RefreshIssuer
	sets     [][]entry
	setMask  uint64
	useClock uint64
	stats    Stats

	regionShift uint
	blockShift  uint

	decayWrap int

	// eq is set by Start; per-entry refresh timers schedule on it.
	eq *timing.EventQueue

	// Pending decay-tick descriptor (snapshot bookkeeping).
	decayAt  timing.Time
	decaySeq int64
	decayFn  func(timing.Time) // bound once; re-schedules itself
	// decaySuspended gates the tick body (not its schedule): set during
	// sampling skips, when time passes but no traffic flows. Transient —
	// never set while a snapshot is taken, so it is not serialized.
	decaySuspended bool
}

// NewRRM builds the monitor. The issuer receives the selective refresh
// requests; it must not be nil (use NopIssuer to discard).
func NewRRM(cfg RRMConfig, issuer RefreshIssuer) (*RRM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if issuer == nil {
		return nil, fmt.Errorf("core: nil refresh issuer")
	}
	r := &RRM{
		cfg:       cfg,
		issuer:    issuer,
		sets:      make([][]entry, cfg.Sets),
		setMask:   uint64(cfg.Sets - 1),
		decayWrap: 1 << cfg.DecayBits,
	}
	for i := range r.sets {
		r.sets[i] = make([]entry, cfg.Ways)
	}
	r.regionShift = uint(bits.TrailingZeros64(cfg.RegionBytes))
	r.blockShift = uint(bits.TrailingZeros64(cfg.BlockBytes))
	return r, nil
}

// Config returns the monitor's configuration.
func (r *RRM) Config() RRMConfig { return r.cfg }

// Stats returns a copy of the counters.
func (r *RRM) Stats() Stats { return r.stats }

// Name implements WritePolicy.
func (r *RRM) Name() string { return "RRM" }

// DecisionLatency implements WritePolicy.
func (r *RRM) DecisionLatency() timing.Time { return r.cfg.AccessLatency }

// GlobalRefreshMode implements WritePolicy: RRM's global refresh uses the
// long mode (7-SETs, every ~3054 s).
func (r *RRM) GlobalRefreshMode() pcm.WriteMode { return r.cfg.LongMode }

func (r *RRM) region(addr uint64) uint64 { return addr >> r.regionShift }

func (r *RRM) blockIndex(addr uint64) int {
	return int((addr >> r.blockShift) & (uint64(r.cfg.BlocksPerRegion()) - 1))
}

// lookup finds the entry for a region, or nil.
func (r *RRM) lookup(region uint64) *entry {
	set := r.sets[region&r.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == region {
			return &set[i]
		}
	}
	return nil
}

// RegisterLLCWrite implements WritePolicy (paper §IV-D, Figure 6 top).
func (r *RRM) RegisterLLCWrite(addr uint64, wasDirty bool, now timing.Time) {
	r.stats.Registrations++
	if !wasDirty && !r.cfg.RegisterCleanWrites {
		// Streaming-write filter: only writes to already-dirty LLC
		// entries indicate temporal write locality.
		r.stats.CleanFiltered++
		return
	}
	region := r.region(addr)
	e := r.lookup(region)
	if e == nil {
		r.stats.RegMisses++
		e = r.allocate(region)
	} else {
		r.stats.RegHits++
	}
	r.useClock++
	e.lastUse = r.useClock

	if e.dirtyWrites < r.cfg.HotThreshold {
		e.dirtyWrites++
		if e.dirtyWrites == r.cfg.HotThreshold && !e.hot {
			e.hot = true
			e.hotGen++
			r.stats.Promotions++
			r.armEntryTimer(e)
		}
	}
	if e.hot {
		// Future memory writes to this block use the fast mode.
		e.vecSet(r.blockIndex(addr))
	}
}

// allocate installs a fresh entry for region, evicting LRU if needed.
// An evicted entry with live short-retention blocks must have them
// rewritten with long-retention writes first, or their data would expire
// untracked (correctness requirement implied by Figure 6).
func (r *RRM) allocate(region uint64) *entry {
	set := r.sets[region&r.setMask]
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		oldest := ^uint64(0)
		for i := range set {
			if set[i].lastUse < oldest {
				oldest = set[i].lastUse
				victim = i
			}
		}
		r.stats.Evictions++
		r.flushEntry(&set[victim], &r.stats.EvictionFlush)
	}
	r.stats.Allocations++
	r.useClock++
	set[victim] = entry{valid: true, tag: region, lastUse: r.useClock}
	return &set[victim]
}

// flushEntry issues slow refreshes for every live short-retention block
// of e, counting them in counter.
func (r *RRM) flushEntry(e *entry, counter *uint64) {
	if !e.valid {
		return
	}
	base := e.tag << r.regionShift
	for i := 0; i < r.cfg.BlocksPerRegion(); i++ {
		if e.vecGet(i) {
			r.issuer.IssueRefresh(base+uint64(i)<<r.blockShift, r.cfg.LongMode, pcm.WearSlowRefresh)
			r.stats.SlowRefreshes++
			if counter != nil {
				*counter++
			}
		}
	}
	e.vecClear()
	e.hot = false
	e.hotGen++
}

// DecideWriteMode implements WritePolicy (paper §IV-E, Figure 6 bottom
// left): a hit with the block's short-retention bit set selects the fast
// mode, everything else the slow default.
func (r *RRM) DecideWriteMode(addr uint64, now timing.Time) pcm.WriteMode {
	if e := r.lookup(r.region(addr)); e != nil && e.vecGet(r.blockIndex(addr)) {
		r.stats.ShortDecisions++
		return r.cfg.ShortMode
	}
	r.stats.LongDecisions++
	return r.cfg.LongMode
}

// FastRefreshTick performs one short-retention interrupt (paper §IV-F,
// Figure 6 bottom middle): every short-retention block of every hot entry
// is re-written with the fast mode through the high-priority RRM refresh
// queue.
//
// When eq is non-nil the per-entry refreshes are issued staggered: each
// entry has a fixed phase (a hash of its tag) within the first half of
// the refresh interval, so every entry is still refreshed exactly once
// per interval — the deadline guarantee is unchanged — but the memory
// controller sees a smooth refresh stream instead of a burst of every
// hot block at once. Controllers stagger refresh for the same reason.
// With eq nil all refreshes issue immediately (tests, simple uses).
func (r *RRM) FastRefreshTick(now timing.Time) {
	for s := range r.sets {
		for i := range r.sets[s] {
			e := &r.sets[s][i]
			if e.valid && e.hot {
				r.refreshEntryBlocks(e)
			}
		}
	}
}

// refreshEntryBlocks issues fast refreshes for the (sampled) short-
// retention blocks of e, returning how many were issued.
func (r *RRM) refreshEntryBlocks(e *entry) int {
	base := e.tag << r.regionShift
	n := 0
	for b := 0; b < r.cfg.BlocksPerRegion(); b++ {
		if e.vecGet(b) {
			addr := base + uint64(b)<<r.blockShift
			if !SampledBlock(addr, r.cfg.RefreshSampling) {
				continue
			}
			r.issuer.IssueRefresh(addr, r.cfg.ShortMode, pcm.WearRRMRefresh)
			r.stats.FastRefreshes++
			n++
		}
	}
	return n
}

// SampledBlock reports whether a block participates in the 1-in-sampling
// simulated refresh subset. The hash must be shared by every consumer
// (monitors, retention checker) so they agree on the subset.
func SampledBlock(addr uint64, sampling uint64) bool {
	if sampling <= 1 {
		return true
	}
	return ((addr>>6)*0x9E3779B97F4A7C15)>>33%sampling == 0
}

// RefreshSampling exposes the monitor's sampling factor to the metrics
// pipeline (see sim).
func (r *RRM) RefreshSampling() uint64 {
	if r.cfg.RefreshSampling <= 1 {
		return 1
	}
	return r.cfg.RefreshSampling
}

// armEntryTimer starts a per-entry periodic refresh timer for a freshly
// promoted entry. Each hot entry carries its own timer with period
// exactly FastRefreshInterval, started at promotion, so:
//
//   - every short-retention bit is refreshed at most one interval after
//     it is set (the bit can only be set while the entry is hot, i.e.
//     while the timer is live), which meets the retention deadline of
//     interval + 0.01 s with the issue slack to spare; and
//   - refresh traffic is naturally staggered by promotion times instead
//     of arriving as a burst of every hot block at once — the same
//     reason DRAM controllers stagger refresh.
//
// The timer dies silently when its promotion generation ends (demotion,
// eviction, or reallocation of the entry); those paths slow-refresh the
// live blocks themselves.
func (r *RRM) armEntryTimer(e *entry) {
	if r.eq == nil {
		return // not attached to a simulation; FastRefreshTick drives refreshes
	}
	// Small deterministic jitter so simultaneous promotions (e.g. at
	// program phase changes) do not fire in lockstep forever. Firing
	// early never violates a deadline.
	jitter := timing.Time((e.tag * 0x9E3779B97F4A7C15) % uint64(r.cfg.FastRefreshInterval/64+1))
	r.scheduleEntryTimer(e, r.eq.Now()+r.cfg.FastRefreshInterval-jitter)
}

// scheduleEntryTimer arms e's refresh timer at the given time, binding
// it to the entry's current (tag, generation) and recording the event
// descriptor on the entry so snapshots can re-create it.
func (r *RRM) scheduleEntryTimer(e *entry, at timing.Time) {
	tag, gen := e.tag, e.hotGen
	var fire func(now timing.Time)
	fire = func(now timing.Time) {
		if !e.valid || !e.hot || e.tag != tag || e.hotGen != gen {
			return
		}
		r.refreshEntryBlocks(e)
		next := now + r.cfg.FastRefreshInterval
		e.timerAt = next
		e.timerSeq = r.eq.Schedule(next, fire).Seq()
	}
	e.timerGen = gen
	e.timerAt = at
	e.timerSeq = r.eq.Schedule(at, fire).Seq()
}

// DecayTick advances every entry's cyclic decay counter (paper §IV-G,
// Figure 6 bottom right). On wrap, an entry that re-accumulated a full
// hot_threshold of dirty writes stays hot with its counter halved; any
// other hot entry is demoted: its short-retention blocks are re-written
// with slow long-retention refreshes and its vector cleared.
func (r *RRM) DecayTick(now timing.Time) {
	for s := range r.sets {
		for i := range r.sets[s] {
			e := &r.sets[s][i]
			if !e.valid {
				continue
			}
			e.decayCounter++
			if e.decayCounter < r.decayWrap {
				continue
			}
			e.decayCounter = 0
			if e.dirtyWrites >= r.cfg.HotThreshold {
				// Still hot: halve the counter and re-check next wrap.
				e.dirtyWrites /= 2
				continue
			}
			if e.hot {
				r.stats.Demotions++
				r.flushEntry(e, nil)
			}
		}
	}
}

// Start attaches the monitor to a simulation clock: the periodic decay
// tick is armed, and every hot entry (current and future) gets its own
// per-interval refresh timer (see armEntryTimer).
func (r *RRM) Start(eq *timing.EventQueue) {
	r.eq = eq
	for s := range r.sets {
		for i := range r.sets[s] {
			if e := &r.sets[s][i]; e.valid && e.hot {
				r.armEntryTimer(e)
			}
		}
	}
	r.armDecay(eq.Now() + r.cfg.DecayInterval)
}

// SuspendDecay pauses (or resumes) the periodic heat decay without
// disturbing its schedule. Decay models traffic recency, so a sampling
// skip — which advances simulated time with the cores parked and no
// traffic flowing — must not tick it, or the hot set would evaporate at
// a rate the (paused) write stream can never sustain. Retention timers
// are unaffected: they track real deadlines and keep firing.
func (r *RRM) SuspendDecay(v bool) { r.decaySuspended = v }

// armDecay schedules the periodic decay tick at the given time,
// recording the event descriptor for snapshots.
func (r *RRM) armDecay(at timing.Time) {
	if r.decayFn == nil {
		r.decayFn = func(now timing.Time) {
			if !r.decaySuspended {
				r.DecayTick(now)
			}
			r.armDecay(now + r.cfg.DecayInterval)
		}
	}
	r.decayAt = at
	r.decaySeq = r.eq.Schedule(at, r.decayFn).Seq()
}

// HotEntries returns the current number of hot entries and tracked
// short-retention blocks (metrics).
func (r *RRM) HotEntries() (hotEntries, shortBlocks int) {
	for s := range r.sets {
		for i := range r.sets[s] {
			e := &r.sets[s][i]
			if e.valid && e.hot {
				hotEntries++
				shortBlocks += e.vecPopCount()
			}
		}
	}
	return hotEntries, shortBlocks
}
