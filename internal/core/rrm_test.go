package core

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// recordingIssuer captures issued refreshes.
type recordingIssuer struct {
	refreshes []issued
}

type issued struct {
	addr uint64
	mode pcm.WriteMode
	kind pcm.WearKind
}

func (r *recordingIssuer) IssueRefresh(addr uint64, mode pcm.WriteMode, kind pcm.WearKind) {
	r.refreshes = append(r.refreshes, issued{addr, mode, kind})
}

func newRRM(t *testing.T, mutate func(*RRMConfig)) (*RRM, *recordingIssuer) {
	t.Helper()
	cfg := DefaultRRMConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	iss := &recordingIssuer{}
	r, err := NewRRM(cfg, iss)
	if err != nil {
		t.Fatal(err)
	}
	return r, iss
}

// heatRegion sends n dirty-write registrations to distinct blocks of the
// region at base.
func heatRegion(r *RRM, base uint64, n int) {
	for i := 0; i < n; i++ {
		r.RegisterLLCWrite(base+uint64(i%64)*64, true, 0)
	}
}

// makeHotWithBlocks promotes the region at base (threshold dirty writes
// to block 0) and then dirties the first nBlocks blocks while hot, so
// exactly those blocks carry short-retention vector bits (bits only
// accumulate after promotion, per paper §IV-D).
func makeHotWithBlocks(r *RRM, base uint64, nBlocks int) {
	for i := 0; i < r.Config().HotThreshold; i++ {
		r.RegisterLLCWrite(base, true, 0)
	}
	for i := 0; i < nBlocks; i++ {
		r.RegisterLLCWrite(base+uint64(i)*64, true, 0)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultRRMConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.EntryBits() != 128 {
		t.Errorf("entry bits = %d, want 128 (1+52+1+6+64+4)", cfg.EntryBits())
	}
	if got := cfg.StorageBytes(); got != 96<<10 {
		t.Errorf("storage = %d bytes, want 96KB", got)
	}
	if got := cfg.CoveredBytes(); got != 24<<20 {
		t.Errorf("coverage = %d, want 24MB (4x of 6MB LLC)", got)
	}
	if cfg.BlocksPerRegion() != 64 {
		t.Errorf("blocks per region = %d, want 64", cfg.BlocksPerRegion())
	}
}

func TestTable8CoverageConfigs(t *testing.T) {
	// Table VIII: coverage -> (sets, storage KB).
	llc := uint64(6 << 20)
	cases := []struct {
		coverage int
		sets     int
		kb       uint64
	}{
		{2, 128, 48}, {4, 256, 96}, {8, 512, 192}, {16, 1024, 384},
	}
	for _, c := range cases {
		cfg := DefaultRRMConfig().WithCoverage(c.coverage, llc)
		if cfg.Sets != c.sets {
			t.Errorf("coverage %dx: sets = %d, want %d", c.coverage, cfg.Sets, c.sets)
		}
		if got := cfg.StorageBytes(); got != c.kb<<10 {
			t.Errorf("coverage %dx: storage = %dKB, want %dKB", c.coverage, got>>10, c.kb)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("coverage %dx: %v", c.coverage, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*RRMConfig){
		func(c *RRMConfig) { c.Sets = 0 },
		func(c *RRMConfig) { c.Sets = 100 }, // not power of two
		func(c *RRMConfig) { c.Ways = 0 },
		func(c *RRMConfig) { c.RegionBytes = 3000 },
		func(c *RRMConfig) { c.BlockBytes = 100 },
		func(c *RRMConfig) { c.RegionBytes = 32 << 10 }, // vector > 256 bits
		func(c *RRMConfig) { c.HotThreshold = 0 },
		func(c *RRMConfig) { c.ShortMode = pcm.Mode7SETs },
		func(c *RRMConfig) { c.FastRefreshInterval = 3 * timing.Second }, // > 3-SETs retention
		func(c *RRMConfig) { c.DecayBits = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultRRMConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewRRM(DefaultRRMConfig(), nil); err == nil {
		t.Error("nil issuer accepted")
	}
}

func TestColdRegionUsesLongWrites(t *testing.T) {
	r, _ := newRRM(t, nil)
	if mode := r.DecideWriteMode(0x1000, 0); mode != pcm.Mode7SETs {
		t.Errorf("cold region mode = %v, want 7-SETs", mode)
	}
	s := r.Stats()
	if s.LongDecisions != 1 || s.ShortDecisions != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHotPromotionAtThreshold(t *testing.T) {
	r, _ := newRRM(t, nil)
	base := uint64(0x40000)
	heatRegion(r, base, 15)
	if mode := r.DecideWriteMode(base, 0); mode != pcm.Mode7SETs {
		t.Error("region hot before threshold")
	}
	heatRegion(r, base, 1) // 16th dirty write: promotion
	s := r.Stats()
	if s.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", s.Promotions)
	}
	// The block written at promotion time gets its vector bit; blocks
	// written while hot also do.
	r.RegisterLLCWrite(base+128, true, 0)
	if mode := r.DecideWriteMode(base+128, 0); mode != pcm.Mode3SETs {
		t.Errorf("hot block mode = %v, want 3-SETs", mode)
	}
	// A block of the hot region never written while hot stays long.
	if mode := r.DecideWriteMode(base+63*64, 0); mode != pcm.Mode3SETs {
		// block 63 was touched by heatRegion's modulo walk... pick one
		// outside: region has 64 blocks, heatRegion touched 0..15 and
		// the extra one. Block 40 was never written.
		_ = mode
	}
	if mode := r.DecideWriteMode(base+40*64, 0); mode != pcm.Mode7SETs {
		t.Errorf("untouched block of hot region = %v, want 7-SETs (per-block vector)", mode)
	}
}

func TestStreamingFilter(t *testing.T) {
	r, _ := newRRM(t, nil)
	base := uint64(0x80000)
	// 100 clean-line writes (streaming): never hot.
	for i := 0; i < 100; i++ {
		r.RegisterLLCWrite(base+uint64(i%64)*64, false, 0)
	}
	s := r.Stats()
	if s.CleanFiltered != 100 {
		t.Errorf("filtered = %d, want 100", s.CleanFiltered)
	}
	if s.Promotions != 0 {
		t.Error("streaming writes promoted a region")
	}
	if mode := r.DecideWriteMode(base, 0); mode != pcm.Mode7SETs {
		t.Error("streaming region classified hot")
	}
}

func TestRegisterCleanWritesAblation(t *testing.T) {
	r, _ := newRRM(t, func(c *RRMConfig) { c.RegisterCleanWrites = true })
	base := uint64(0x80000)
	for i := 0; i < 16; i++ {
		r.RegisterLLCWrite(base+uint64(i)*64, false, 0)
	}
	if r.Stats().Promotions != 1 {
		t.Error("ablation: clean writes should promote when filter disabled")
	}
}

func TestFastRefreshTick(t *testing.T) {
	r, iss := newRRM(t, nil)
	base := uint64(0x100000)
	makeHotWithBlocks(r, base, 16) // hot; blocks 0..15 short-retention
	r.FastRefreshTick(0)
	if len(iss.refreshes) != 16 {
		t.Fatalf("issued %d refreshes, want 16", len(iss.refreshes))
	}
	for _, ref := range iss.refreshes {
		if ref.mode != pcm.Mode3SETs || ref.kind != pcm.WearRRMRefresh {
			t.Errorf("refresh = %+v, want 3-SETs rrm-refresh", ref)
		}
		if ref.addr>>12 != base>>12 {
			t.Errorf("refresh addr %#x outside hot region", ref.addr)
		}
	}
	if got := r.Stats().FastRefreshes; got != 16 {
		t.Errorf("stats fast refreshes = %d", got)
	}
	// Cold entries are not refreshed.
	r2, iss2 := newRRM(t, nil)
	heatRegion(r2, base, 10)
	r2.FastRefreshTick(0)
	if len(iss2.refreshes) != 0 {
		t.Error("cold region received fast refreshes")
	}
}

func TestDecayDemotesIdleHotEntry(t *testing.T) {
	r, iss := newRRM(t, nil)
	base := uint64(0x200000)
	makeHotWithBlocks(r, base, 16)
	// Counter saturated at 16 == threshold: first wrap keeps it hot
	// (halves to 8). No new writes arrive, so the second wrap demotes.
	for i := 0; i < 16; i++ {
		r.DecayTick(0)
	}
	if r.Stats().Demotions != 0 {
		t.Error("first wrap should keep a saturated entry hot")
	}
	hot, blocks := r.HotEntries()
	if hot != 1 || blocks != 16 {
		t.Errorf("hot entries = %d/%d blocks, want 1/16", hot, blocks)
	}
	for i := 0; i < 16; i++ {
		r.DecayTick(0)
	}
	if r.Stats().Demotions != 1 {
		t.Errorf("demotions = %d, want 1 after second wrap", r.Stats().Demotions)
	}
	// Demotion rewrites the 16 short blocks with slow refreshes.
	slow := 0
	for _, ref := range iss.refreshes {
		if ref.kind == pcm.WearSlowRefresh && ref.mode == pcm.Mode7SETs {
			slow++
		}
	}
	if slow != 16 {
		t.Errorf("slow refreshes = %d, want 16", slow)
	}
	if mode := r.DecideWriteMode(base, 0); mode != pcm.Mode7SETs {
		t.Error("demoted region still steering short writes")
	}
}

func TestDecayKeepsBusyEntryHot(t *testing.T) {
	r, _ := newRRM(t, nil)
	base := uint64(0x300000)
	heatRegion(r, base, 16)
	// Keep re-dirtying between wraps: stays hot through many wraps.
	for wrap := 0; wrap < 4; wrap++ {
		for i := 0; i < 16; i++ {
			r.DecayTick(0)
		}
		heatRegion(r, base, 8) // counter back to threshold (8 halved + 8)
	}
	if r.Stats().Demotions != 0 {
		t.Errorf("busy entry demoted %d times", r.Stats().Demotions)
	}
	hot, _ := r.HotEntries()
	if hot != 1 {
		t.Error("busy entry lost hot status")
	}
}

func TestEvictionFlushesLiveBlocks(t *testing.T) {
	r, iss := newRRM(t, func(c *RRMConfig) { c.Sets = 1; c.Ways = 2 })
	// Two regions fill the single set; heating a third evicts the LRU.
	makeHotWithBlocks(r, 0, 16)
	makeHotWithBlocks(r, 4096, 16)
	makeHotWithBlocks(r, 8192, 16)
	s := r.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.EvictionFlush != 16 {
		t.Errorf("eviction flush refreshes = %d, want 16", s.EvictionFlush)
	}
	// Evicted region's blocks were rewritten with the long mode.
	slow := 0
	for _, ref := range iss.refreshes {
		if ref.kind == pcm.WearSlowRefresh && ref.addr < 4096 {
			slow++
		}
	}
	if slow != 16 {
		t.Errorf("slow refreshes for evicted region = %d, want 16", slow)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	r, _ := newRRM(t, func(c *RRMConfig) { c.Sets = 1; c.Ways = 2 })
	r.RegisterLLCWrite(0, true, 0)    // region 0
	r.RegisterLLCWrite(4096, true, 0) // region 1
	r.RegisterLLCWrite(0, true, 0)    // region 0 now MRU
	r.RegisterLLCWrite(8192, true, 0) // evicts region 1
	if r.lookup(0) == nil {
		t.Error("MRU region evicted")
	}
	if r.lookup(1) != nil {
		t.Error("LRU region survived")
	}
	if r.lookup(2) == nil {
		t.Error("new region not allocated")
	}
}

func TestHotThresholdAggressiveness(t *testing.T) {
	// Lower threshold -> hot sooner (paper §IV-H).
	for _, th := range []int{8, 16, 32, 64} {
		r, _ := newRRM(t, func(c *RRMConfig) { c.HotThreshold = th })
		base := uint64(0x500000)
		heatRegion(r, base, th-1)
		if hot, _ := r.HotEntries(); hot != 0 {
			t.Errorf("threshold %d: hot before threshold", th)
		}
		heatRegion(r, base, 1)
		if hot, _ := r.HotEntries(); hot != 1 {
			t.Errorf("threshold %d: not hot at threshold", th)
		}
	}
}

func TestEntrySizeVariants(t *testing.T) {
	// F13 sensitivity: 2KB/8KB/16KB regions must be representable.
	for _, kb := range []uint64{2, 4, 8, 16} {
		cfg := DefaultRRMConfig()
		cfg.RegionBytes = kb << 10
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dKB region: %v", kb, err)
			continue
		}
		iss := &recordingIssuer{}
		r, err := NewRRM(cfg, iss)
		if err != nil {
			t.Fatal(err)
		}
		// Heat a region and confirm the vector covers its full span.
		base := uint64(1) << 22
		for i := 0; i < cfg.HotThreshold; i++ {
			r.RegisterLLCWrite(base+uint64(i)*64, true, 0)
		}
		last := base + cfg.RegionBytes - 64
		r.RegisterLLCWrite(last, true, 0)
		if mode := r.DecideWriteMode(last, 0); mode != pcm.Mode3SETs {
			t.Errorf("%dKB region: last block not steered short", kb)
		}
		// One block past the region is a different region: long.
		if mode := r.DecideWriteMode(base+cfg.RegionBytes, 0); mode != pcm.Mode7SETs {
			t.Errorf("%dKB region: boundary leak", kb)
		}
	}
}

func TestStartSchedulesPeriodicTicks(t *testing.T) {
	eq := timing.NewEventQueue()
	cfg := DefaultRRMConfig()
	cfg.FastRefreshInterval = 100 * timing.Microsecond
	cfg.DecayInterval = 10 * timing.Microsecond
	iss := &recordingIssuer{}
	r, err := NewRRM(cfg, iss)
	if err != nil {
		t.Fatal(err)
	}
	makeHotWithBlocks(r, 0, 16)
	r.Start(eq)
	eq.RunUntil(350 * timing.Microsecond)
	// The hot entry's timer fires once per 100 us interval (first fire
	// at most one interval after Start), 16 blocks each: 3 firings.
	if got := r.Stats().FastRefreshes; got != 48 {
		t.Errorf("fast refreshes = %d, want 48", got)
	}
	// Decay ticks: 35 of them; wraps at 16 and 32 - second wrap demotes
	// (counter halved to 8 < 16 at the second wrap).
	if got := r.Stats().Demotions; got != 1 {
		t.Errorf("demotions = %d, want 1", got)
	}
}

func TestStaticPolicy(t *testing.T) {
	for _, m := range pcm.Modes() {
		p := NewStatic(m)
		if p.DecideWriteMode(0x1234, 0) != m {
			t.Errorf("static %v decided differently", m)
		}
		if p.GlobalRefreshMode() != m {
			t.Errorf("static %v global refresh mode", m)
		}
		if p.DecisionLatency() != 0 {
			t.Error("static policy has lookup latency")
		}
		p.RegisterLLCWrite(0, true, 0) // must not panic
	}
	if NewStatic(pcm.Mode7SETs).Name() != "Static-7-SETs" {
		t.Error("static name")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewStatic(0) did not panic")
		}
	}()
	NewStatic(0)
}

func TestShortWriteFraction(t *testing.T) {
	var s Stats
	if s.ShortWriteFraction() != 0 {
		t.Error("idle fraction")
	}
	s.ShortDecisions, s.LongDecisions = 3, 1
	if s.ShortWriteFraction() != 0.75 {
		t.Error("fraction")
	}
}

func TestRRMInterfaceCompliance(t *testing.T) {
	var _ WritePolicy = &Static{}
	var _ WritePolicy = &RRM{}
	r, _ := newRRM(t, nil)
	if r.Name() != "RRM" {
		t.Error("name")
	}
	if r.DecisionLatency() != 4*timing.CPUCycle {
		t.Error("decision latency")
	}
	if r.GlobalRefreshMode() != pcm.Mode7SETs {
		t.Error("global refresh mode")
	}
}

func TestVectorWordsBoundary(t *testing.T) {
	// 16KB region = 256 blocks: bits span all four vector words.
	var e entry
	for _, i := range []int{0, 63, 64, 127, 128, 255} {
		e.vecSet(i)
		if !e.vecGet(i) {
			t.Errorf("bit %d lost", i)
		}
	}
	if e.vecPopCount() != 6 {
		t.Errorf("popcount = %d, want 6", e.vecPopCount())
	}
	e.vecClear()
	if e.vecPopCount() != 0 {
		t.Error("clear failed")
	}
}
