// Package core implements the paper's contribution: the Region Retention
// Monitor (RRM), a set-associative structure between the LLC and the
// memory controller that learns which 4 KB memory regions are being
// written with high temporal locality and steers their writes to fast,
// short-retention 3-SETs-Writes while everything else uses slow,
// long-retention 7-SETs-Writes. The package also provides the Static-N
// baseline policies of Table VI behind a common WritePolicy interface.
package core

import (
	"fmt"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// WritePolicy selects a write mode for every memory write request and
// observes LLC write registrations. It is the pluggable point between the
// LLC and the memory controller (paper Figure 5); users of the public API
// can supply their own implementation.
type WritePolicy interface {
	// Name identifies the policy in reports ("RRM", "Static-7-SETs").
	Name() string

	// RegisterLLCWrite observes one LLC write operation: an L2 dirty
	// victim written into LLC line addr, with wasDirty telling whether
	// that LLC line was already dirty (the streaming-write filter bit).
	RegisterLLCWrite(addr uint64, wasDirty bool, now timing.Time)

	// DecideWriteMode chooses the write mode for a memory write
	// request to addr. DecisionLatency reports the lookup cost added
	// to the request path.
	DecideWriteMode(addr uint64, now timing.Time) pcm.WriteMode

	// DecisionLatency is the lookup latency added to each memory write
	// decision (4 CPU cycles for RRM, zero for static policies).
	DecisionLatency() timing.Time

	// GlobalRefreshMode returns the write mode of the device's built-in
	// global refresh stream under this policy, which fixes the global
	// refresh interval (its retention time).
	GlobalRefreshMode() pcm.WriteMode
}

// Static is the Static-N-SETs baseline: every write uses one fixed mode
// and the device globally refreshes every retention period of that mode.
type Static struct {
	mode pcm.WriteMode
}

// NewStatic returns the Static-N policy for the given mode.
func NewStatic(mode pcm.WriteMode) *Static {
	if !mode.Valid() {
		panic(fmt.Sprintf("core: invalid static mode %d", int(mode)))
	}
	return &Static{mode: mode}
}

// Name implements WritePolicy.
func (s *Static) Name() string { return fmt.Sprintf("Static-%d-SETs", s.mode.Sets()) }

// RegisterLLCWrite implements WritePolicy (statics ignore registrations).
func (s *Static) RegisterLLCWrite(uint64, bool, timing.Time) {}

// DecideWriteMode implements WritePolicy.
func (s *Static) DecideWriteMode(uint64, timing.Time) pcm.WriteMode { return s.mode }

// DecisionLatency implements WritePolicy.
func (s *Static) DecisionLatency() timing.Time { return 0 }

// GlobalRefreshMode implements WritePolicy.
func (s *Static) GlobalRefreshMode() pcm.WriteMode { return s.mode }

// RefreshIssuer accepts the selective refresh requests RRM generates.
// The simulator's implementation feeds the memory controller's RRM
// Refresh Queue, absorbing transient queue-full backpressure.
type RefreshIssuer interface {
	IssueRefresh(addr uint64, mode pcm.WriteMode, kind pcm.WearKind)
}

// NopIssuer discards refreshes (unit tests of bookkeeping only).
type NopIssuer struct{}

// IssueRefresh implements RefreshIssuer.
func (NopIssuer) IssueRefresh(uint64, pcm.WriteMode, pcm.WearKind) {}
