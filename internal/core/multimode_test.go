package core

import (
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

func newMM(t *testing.T, mutate func(*MultiModeConfig)) (*MultiModeRRM, *recordingIssuer) {
	t.Helper()
	cfg := DefaultMultiModeConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	iss := &recordingIssuer{}
	m, err := NewMultiModeRRM(cfg, iss)
	if err != nil {
		t.Fatal(err)
	}
	return m, iss
}

func TestMultiModeConfigValidation(t *testing.T) {
	if err := DefaultMultiModeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*MultiModeConfig){
		func(c *MultiModeConfig) { c.Sets = 100 },
		func(c *MultiModeConfig) { c.Ways = 0 },
		func(c *MultiModeConfig) { c.RegionBytes = 3000 },
		func(c *MultiModeConfig) { c.WarmThreshold = 0 },
		func(c *MultiModeConfig) { c.HotThreshold = c.WarmThreshold },
		func(c *MultiModeConfig) { c.MidMode = pcm.Mode3SETs },
		func(c *MultiModeConfig) { c.FastRefreshInterval = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultMultiModeConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMultiModeScale(t *testing.T) {
	cfg := DefaultMultiModeConfig().Scale(100)
	if cfg.FastRefreshInterval != 20*timing.Millisecond {
		t.Errorf("scaled fast interval = %v", cfg.FastRefreshInterval)
	}
	if cfg.MidRefreshInterval != 1030*timing.Millisecond {
		t.Errorf("scaled mid interval = %v", cfg.MidRefreshInterval)
	}
}

func TestMultiModeTiering(t *testing.T) {
	m, _ := newMM(t, nil)
	base := uint64(0x40000)

	// Cold: long mode.
	if mode := m.DecideWriteMode(base, 0); mode != pcm.Mode7SETs {
		t.Errorf("cold mode = %v", mode)
	}
	// 8 dirty writes: warm tier; blocks written while warm use mid mode.
	for i := 0; i < 8; i++ {
		m.RegisterLLCWrite(base, true, 0)
	}
	if m.Stats().WarmPromotions != 1 {
		t.Fatal("no warm promotion")
	}
	m.RegisterLLCWrite(base+64, true, 0)
	if mode := m.DecideWriteMode(base+64, 0); mode != pcm.Mode5SETs {
		t.Errorf("warm block mode = %v, want 5-SETs", mode)
	}
	// Reaching 16: hot tier; new blocks use fast mode, old mid blocks
	// keep their mid marking until rewritten.
	for i := 0; i < 7; i++ {
		m.RegisterLLCWrite(base, true, 0)
	}
	if m.Stats().HotPromotions != 1 {
		t.Fatal("no hot promotion")
	}
	m.RegisterLLCWrite(base+128, true, 0)
	if mode := m.DecideWriteMode(base+128, 0); mode != pcm.Mode3SETs {
		t.Errorf("hot block mode = %v, want 3-SETs", mode)
	}
	if mode := m.DecideWriteMode(base+64, 0); mode != pcm.Mode5SETs {
		t.Errorf("mid block after hot promotion = %v, want 5-SETs", mode)
	}
	s := m.Stats()
	if s.FastDecisions != 1 || s.MidDecisions != 2 || s.LongDecisions != 1 {
		t.Errorf("decision split = %+v", s)
	}
}

func TestMultiModeStreamingFilter(t *testing.T) {
	m, _ := newMM(t, nil)
	for i := 0; i < 100; i++ {
		m.RegisterLLCWrite(uint64(i)*64, false, 0)
	}
	s := m.Stats()
	if s.CleanFiltered != 100 || s.WarmPromotions != 0 {
		t.Errorf("streaming filter broken: %+v", s)
	}
}

func TestMultiModeRefreshTiers(t *testing.T) {
	eq := timing.NewEventQueue()
	cfg := DefaultMultiModeConfig()
	cfg.FastRefreshInterval = 100 * timing.Microsecond
	cfg.MidRefreshInterval = 400 * timing.Microsecond
	cfg.DecayInterval = timing.Second // keep decay out of the way
	iss := &recordingIssuer{}
	m, err := NewMultiModeRRM(cfg, iss)
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(0x100000)
	// Warm the region and mark one mid block.
	for i := 0; i < 8; i++ {
		m.RegisterLLCWrite(base, true, 0)
	}
	m.RegisterLLCWrite(base+64, true, 0)
	// Heat it and mark one fast block.
	for i := 0; i < 8; i++ {
		m.RegisterLLCWrite(base, true, 0)
	}
	m.RegisterLLCWrite(base+128, true, 0)

	m.Start(eq)
	eq.RunUntil(450 * timing.Microsecond)
	s := m.Stats()
	// Fast tier fires ~4x in 450us (interval 100us); mid tier ~1x.
	if s.FastRefreshes < 3 {
		t.Errorf("fast refreshes = %d, want >= 3", s.FastRefreshes)
	}
	if s.MidRefreshes < 1 {
		t.Errorf("mid refreshes = %d, want >= 1", s.MidRefreshes)
	}
	if s.FastRefreshes <= s.MidRefreshes {
		t.Errorf("fast tier (%d) should refresh more often than mid (%d)",
			s.FastRefreshes, s.MidRefreshes)
	}
	// The refresh modes must match the tiers.
	for _, ref := range iss.refreshes {
		if ref.kind != pcm.WearRRMRefresh {
			continue
		}
		if ref.mode != pcm.Mode3SETs && ref.mode != pcm.Mode5SETs {
			t.Errorf("refresh with mode %v", ref.mode)
		}
	}
}

func TestMultiModeDecayDemotes(t *testing.T) {
	m, iss := newMM(t, nil)
	base := uint64(0x200000)
	for i := 0; i < 16; i++ {
		m.RegisterLLCWrite(base, true, 0)
	}
	m.RegisterLLCWrite(base+64, true, 0) // one fast block
	// Two full decay wraps with no further writes: halved counter (8)
	// still meets... the hot threshold is 16, counter 16 -> halve to 8;
	// next wrap 8 < 16 -> demote.
	for i := 0; i < 32; i++ {
		m.DecayTick(0)
	}
	if m.Stats().Demotions != 1 {
		t.Errorf("demotions = %d, want 1", m.Stats().Demotions)
	}
	slow := 0
	for _, ref := range iss.refreshes {
		if ref.kind == pcm.WearSlowRefresh {
			slow++
		}
	}
	if slow == 0 {
		t.Error("demotion issued no slow refreshes")
	}
	if mode := m.DecideWriteMode(base+64, 0); mode != pcm.Mode7SETs {
		t.Error("demoted block still fast")
	}
}

func TestMultiModeEvictionFlush(t *testing.T) {
	m, _ := newMM(t, func(c *MultiModeConfig) { c.Sets = 1; c.Ways = 2 })
	for r := 0; r < 3; r++ {
		base := uint64(r) * 4096
		for i := 0; i < 16; i++ {
			m.RegisterLLCWrite(base, true, 0)
		}
		m.RegisterLLCWrite(base+64, true, 0)
	}
	s := m.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d", s.Evictions)
	}
	if s.SlowRefreshes == 0 {
		t.Error("eviction flushed nothing")
	}
}

func TestMultiModeInterface(t *testing.T) {
	var _ WritePolicy = &MultiModeRRM{}
	m, _ := newMM(t, nil)
	if m.Name() != "MultiModeRRM" {
		t.Error("name")
	}
	if m.GlobalRefreshMode() != pcm.Mode7SETs {
		t.Error("global mode")
	}
	if m.DecisionLatency() != 4*timing.CPUCycle {
		t.Error("latency")
	}
	m.SetIssuer(NopIssuer{}) // must not panic
}
