package core

import (
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

const snapSection = 0x5252 // "RR"

// Snapshot writes the monitor's full table plus the pending-event
// descriptors of the decay tick and every live per-entry refresh timer.
// A hot entry's timer is live exactly when its recorded generation
// matches the current promotion generation; dead timers (stale
// generations still sitting in the queue) are no-ops and do not travel.
func (r *RRM) Snapshot(w *snapshot.Writer) error {
	w.Section(snapSection)
	w.U64(r.useClock)
	w.U32(uint32(len(r.sets)))
	w.U32(uint32(r.cfg.Ways))
	for s := range r.sets {
		for i := range r.sets[s] {
			e := &r.sets[s][i]
			var flags uint8
			if e.valid {
				flags |= 1
			}
			if e.hot {
				flags |= 2
			}
			if e.valid && e.hot && e.timerGen == e.hotGen && r.eq != nil {
				flags |= 4 // live refresh timer
			}
			w.U8(flags)
			if !e.valid {
				continue
			}
			w.U64(e.tag)
			w.U32(uint32(e.dirtyWrites))
			w.U32(uint32(e.decayCounter))
			w.I64(int64(e.hotGen))
			for _, v := range e.shortVec {
				w.U64(v)
			}
			w.U64(e.lastUse)
			if flags&4 != 0 {
				w.I64(int64(e.timerAt))
				w.I64(e.timerSeq)
			}
		}
	}
	w.I64(int64(r.decayAt))
	w.I64(r.decaySeq)
	return w.JSON(r.stats)
}

// Restore loads state written by Snapshot into a same-geometry monitor,
// attaches it to eq, and appends the decay tick and every live entry
// timer to pend for re-scheduling.
func (r *RRM) Restore(rd *snapshot.Reader, eq *timing.EventQueue, pend *[]timing.Pending) {
	rd.Section(snapSection)
	r.eq = eq
	r.useClock = rd.U64()
	if n := rd.U32(); rd.Err() == nil && int(n) != len(r.sets) {
		rd.Fail("rrm: snapshot has %d sets, live monitor %d", n, len(r.sets))
		return
	}
	if n := rd.U32(); rd.Err() == nil && int(n) != r.cfg.Ways {
		rd.Fail("rrm: snapshot has %d ways, live monitor %d", n, r.cfg.Ways)
		return
	}
	for s := range r.sets {
		for i := range r.sets[s] {
			e := &r.sets[s][i]
			flags := rd.U8()
			if rd.Err() != nil {
				return
			}
			if flags&1 == 0 {
				*e = entry{}
				continue
			}
			e.valid = true
			e.hot = flags&2 != 0
			e.tag = rd.U64()
			e.dirtyWrites = int(rd.U32())
			e.decayCounter = int(rd.U32())
			e.hotGen = int(rd.I64())
			for v := range e.shortVec {
				e.shortVec[v] = rd.U64()
			}
			e.lastUse = rd.U64()
			e.timerAt, e.timerSeq, e.timerGen = 0, 0, e.hotGen-1
			if flags&4 != 0 {
				at := timing.Time(rd.I64())
				seq := rd.I64()
				if rd.Err() != nil {
					return
				}
				ee := e
				*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
					r.scheduleEntryTimer(ee, at)
				}})
			}
		}
	}
	r.decayAt = timing.Time(rd.I64())
	decaySeq := rd.I64()
	r.stats = Stats{}
	rd.JSON(&r.stats)
	if rd.Err() == nil {
		at := r.decayAt
		*pend = append(*pend, timing.Pending{At: at, Seq: decaySeq, Arm: func() {
			r.armDecay(at)
		}})
	}
}
