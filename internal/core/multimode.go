package core

import (
	"fmt"
	"math/bits"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// MultiModeRRM is the extension the paper's two-mode design points at
// (§IV-A notes two modes were chosen "for implementation simplicity"):
// regions are graded into tiers by their dirty-write counter, and each
// tier writes with a different point on the Table I latency/retention
// curve. A region that accumulates WarmThreshold dirty writes uses the
// mid mode (5-SETs, 104.4 s retention, refreshed at ~104 s); past
// HotThreshold it uses the fast mode (3-SETs, 2.01 s retention, 2 s
// refresh) exactly like the base RRM. Mid-tier refreshes are ~50x rarer
// than fast ones, so lukewarm regions get most of the write-latency
// benefit at a fraction of the refresh wear.
type MultiModeConfig struct {
	Sets        int
	Ways        int
	RegionBytes uint64
	BlockBytes  uint64

	// WarmThreshold promotes a region to the mid tier; HotThreshold to
	// the fast tier. 0 < WarmThreshold < HotThreshold.
	WarmThreshold int
	HotThreshold  int

	AccessLatency timing.Time

	FastMode pcm.WriteMode // tier 2 (default 3-SETs)
	MidMode  pcm.WriteMode // tier 1 (default 5-SETs)
	LongMode pcm.WriteMode // tier 0 (default 7-SETs)

	// Refresh intervals per write tier; each must undercut its mode's
	// retention. The simulator's caller scales these by TimeScale.
	FastRefreshInterval timing.Time
	MidRefreshInterval  timing.Time

	DecayInterval timing.Time
	DecayBits     int

	// RefreshSampling: see RRMConfig.RefreshSampling; Scale sets it.
	RefreshSampling uint64
}

// DefaultMultiModeConfig returns the three-tier extension of the Table IV
// monitor with paper-scale constants.
func DefaultMultiModeConfig() MultiModeConfig {
	return MultiModeConfig{
		Sets:                256,
		Ways:                24,
		RegionBytes:         4 << 10,
		BlockBytes:          64,
		WarmThreshold:       8,
		HotThreshold:        16,
		AccessLatency:       4 * timing.CPUCycle,
		FastMode:            pcm.Mode3SETs,
		MidMode:             pcm.Mode5SETs,
		LongMode:            pcm.Mode7SETs,
		FastRefreshInterval: 2 * timing.Second,
		MidRefreshInterval:  103 * timing.Second, // under the 104.4 s retention
		DecayInterval:       125 * timing.Millisecond,
		DecayBits:           4,
	}
}

// Scale divides the periodic constants by k (the simulator's TimeScale)
// and samples the simulated refresh stream 1-in-k so its bandwidth stays
// at the real density (see RRMConfig.RefreshSampling).
func (c MultiModeConfig) Scale(k float64) MultiModeConfig {
	c.FastRefreshInterval = timing.Time(float64(c.FastRefreshInterval) / k)
	c.MidRefreshInterval = timing.Time(float64(c.MidRefreshInterval) / k)
	c.DecayInterval = timing.Time(float64(c.DecayInterval) / k)
	c.RefreshSampling = uint64(k)
	return c
}

// RefreshSampling exposes the sampling factor to the metrics pipeline.
func (m *MultiModeRRM) RefreshSampling() uint64 {
	if m.cfg.RefreshSampling <= 1 {
		return 1
	}
	return m.cfg.RefreshSampling
}

// Validate checks the configuration.
func (c MultiModeConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 || c.Ways <= 0 {
		return fmt.Errorf("core: multimode geometry %dx%d invalid", c.Sets, c.Ways)
	}
	if c.RegionBytes == 0 || c.RegionBytes&(c.RegionBytes-1) != 0 ||
		c.BlockBytes == 0 || c.RegionBytes%c.BlockBytes != 0 ||
		int(c.RegionBytes/c.BlockBytes) > maxBlocksPerRegion {
		return fmt.Errorf("core: multimode region/block %d/%d invalid", c.RegionBytes, c.BlockBytes)
	}
	if c.WarmThreshold <= 0 || c.HotThreshold <= c.WarmThreshold {
		return fmt.Errorf("core: thresholds warm %d / hot %d invalid", c.WarmThreshold, c.HotThreshold)
	}
	if !(c.FastMode < c.MidMode && c.MidMode < c.LongMode) {
		return fmt.Errorf("core: modes must be ordered fast < mid < long")
	}
	if c.FastRefreshInterval <= 0 || c.MidRefreshInterval <= 0 ||
		c.DecayInterval <= 0 || c.DecayBits <= 0 {
		return fmt.Errorf("core: multimode periodic constants invalid")
	}
	return nil
}

// mmEntry extends the RRM entry with a second vector: vecFast marks
// blocks written with the fast mode, vecMid with the mid mode.
type mmEntry struct {
	valid        bool
	tag          uint64
	tier         int // 0 cold, 1 warm, 2 hot
	dirtyWrites  int
	decayCounter int
	gen          int
	vecFast      [vectorWords]uint64
	vecMid       [vectorWords]uint64
	lastUse      uint64
}

func vGet(v *[vectorWords]uint64, i int) bool { return v[i>>6]&(1<<(uint(i)&63)) != 0 }
func vSet(v *[vectorWords]uint64, i int)      { v[i>>6] |= 1 << (uint(i) & 63) }
func vClear(v *[vectorWords]uint64)           { *v = [vectorWords]uint64{} }

// MultiModeStats counts the extension's activity.
type MultiModeStats struct {
	Registrations                              uint64
	CleanFiltered                              uint64
	WarmPromotions, HotPromotions              uint64
	Demotions                                  uint64
	Evictions                                  uint64
	FastRefreshes                              uint64
	MidRefreshes                               uint64
	SlowRefreshes                              uint64
	FastDecisions, MidDecisions, LongDecisions uint64
}

// MultiModeRRM implements WritePolicy with three write tiers.
type MultiModeRRM struct {
	cfg    MultiModeConfig
	issuer RefreshIssuer
	sets   [][]mmEntry

	setMask     uint64
	regionShift uint
	blockShift  uint
	blocksPer   int
	decayWrap   int
	// decaySuspended gates decay during sampling skips (transient, not
	// serialized); see RRM.decaySuspended.
	decaySuspended bool
	useClock    uint64

	eq    *timing.EventQueue
	stats MultiModeStats
}

// NewMultiModeRRM builds the monitor; issuer must not be nil.
func NewMultiModeRRM(cfg MultiModeConfig, issuer RefreshIssuer) (*MultiModeRRM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if issuer == nil {
		issuer = NopIssuer{}
	}
	m := &MultiModeRRM{
		cfg:         cfg,
		issuer:      issuer,
		sets:        make([][]mmEntry, cfg.Sets),
		setMask:     uint64(cfg.Sets - 1),
		regionShift: uint(bits.TrailingZeros64(cfg.RegionBytes)),
		blockShift:  uint(bits.TrailingZeros64(cfg.BlockBytes)),
		blocksPer:   int(cfg.RegionBytes / cfg.BlockBytes),
		decayWrap:   1 << cfg.DecayBits,
	}
	for i := range m.sets {
		m.sets[i] = make([]mmEntry, cfg.Ways)
	}
	return m, nil
}

// SetIssuer lets the simulator wire its refresh path after construction
// (custom policies are built before the memory controller exists).
func (m *MultiModeRRM) SetIssuer(iss RefreshIssuer) { m.issuer = iss }

// Stats returns a copy of the counters.
func (m *MultiModeRRM) Stats() MultiModeStats { return m.stats }

// Name implements WritePolicy.
func (m *MultiModeRRM) Name() string { return "MultiModeRRM" }

// DecisionLatency implements WritePolicy.
func (m *MultiModeRRM) DecisionLatency() timing.Time { return m.cfg.AccessLatency }

// GlobalRefreshMode implements WritePolicy.
func (m *MultiModeRRM) GlobalRefreshMode() pcm.WriteMode { return m.cfg.LongMode }

func (m *MultiModeRRM) lookup(region uint64) *mmEntry {
	set := m.sets[region&m.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == region {
			return &set[i]
		}
	}
	return nil
}

// RegisterLLCWrite implements WritePolicy: the same dirty-write counting
// as the base RRM, with two promotion thresholds.
func (m *MultiModeRRM) RegisterLLCWrite(addr uint64, wasDirty bool, now timing.Time) {
	m.stats.Registrations++
	if !wasDirty {
		m.stats.CleanFiltered++
		return
	}
	region := addr >> m.regionShift
	e := m.lookup(region)
	if e == nil {
		e = m.allocate(region)
	}
	m.useClock++
	e.lastUse = m.useClock

	if e.dirtyWrites < m.cfg.HotThreshold {
		e.dirtyWrites++
		switch {
		case e.dirtyWrites == m.cfg.HotThreshold && e.tier < 2:
			e.tier = 2
			e.gen++
			m.stats.HotPromotions++
			m.armTimer(e, 2)
		case e.dirtyWrites == m.cfg.WarmThreshold && e.tier < 1:
			e.tier = 1
			e.gen++
			m.stats.WarmPromotions++
			m.armTimer(e, 1)
		}
	}
	block := int((addr >> m.blockShift) & uint64(m.blocksPer-1))
	switch e.tier {
	case 2:
		vSet(&e.vecFast, block)
	case 1:
		vSet(&e.vecMid, block)
	}
}

// allocate installs region, flushing an evicted live entry.
func (m *MultiModeRRM) allocate(region uint64) *mmEntry {
	set := m.sets[region&m.setMask]
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		oldest := ^uint64(0)
		for i := range set {
			if set[i].lastUse < oldest {
				oldest = set[i].lastUse
				victim = i
			}
		}
		m.stats.Evictions++
		m.flush(&set[victim])
	}
	m.useClock++
	set[victim] = mmEntry{valid: true, tag: region, lastUse: m.useClock}
	return &set[victim]
}

// flush rewrites every tracked short/mid block with the long mode and
// clears the entry's tier state.
func (m *MultiModeRRM) flush(e *mmEntry) {
	if !e.valid {
		return
	}
	base := e.tag << m.regionShift
	for i := 0; i < m.blocksPer; i++ {
		if vGet(&e.vecFast, i) || vGet(&e.vecMid, i) {
			m.issuer.IssueRefresh(base+uint64(i)<<m.blockShift, m.cfg.LongMode, pcm.WearSlowRefresh)
			m.stats.SlowRefreshes++
		}
	}
	vClear(&e.vecFast)
	vClear(&e.vecMid)
	e.tier = 0
	e.gen++
}

// DecideWriteMode implements WritePolicy.
func (m *MultiModeRRM) DecideWriteMode(addr uint64, now timing.Time) pcm.WriteMode {
	if e := m.lookup(addr >> m.regionShift); e != nil {
		block := int((addr >> m.blockShift) & uint64(m.blocksPer-1))
		if vGet(&e.vecFast, block) {
			m.stats.FastDecisions++
			return m.cfg.FastMode
		}
		if vGet(&e.vecMid, block) {
			m.stats.MidDecisions++
			return m.cfg.MidMode
		}
	}
	m.stats.LongDecisions++
	return m.cfg.LongMode
}

// armTimer starts the per-entry refresh timer for the given tier (same
// per-entry periodic design as the base RRM; see RRM.armEntryTimer).
func (m *MultiModeRRM) armTimer(e *mmEntry, tier int) {
	if m.eq == nil {
		return
	}
	interval := m.cfg.FastRefreshInterval
	if tier == 1 {
		interval = m.cfg.MidRefreshInterval
	}
	tag, gen := e.tag, e.gen
	var fire func(now timing.Time)
	fire = func(now timing.Time) {
		if !e.valid || e.tag != tag || e.gen != gen || e.tier < tier {
			return
		}
		m.refreshTier(e, tier)
		m.eq.Schedule(now+interval, fire)
	}
	jitter := timing.Time((tag * 0x9E3779B97F4A7C15) % uint64(interval/64+1))
	m.eq.Schedule(m.eq.Now()+interval-jitter, fire)
}

// refreshTier re-writes the tier's tracked blocks with its mode.
func (m *MultiModeRRM) refreshTier(e *mmEntry, tier int) {
	base := e.tag << m.regionShift
	vec, mode := &e.vecMid, m.cfg.MidMode
	if tier == 2 {
		vec, mode = &e.vecFast, m.cfg.FastMode
	}
	for i := 0; i < m.blocksPer; i++ {
		if vGet(vec, i) {
			addr := base + uint64(i)<<m.blockShift
			if !SampledBlock(addr, m.cfg.RefreshSampling) {
				continue
			}
			m.issuer.IssueRefresh(addr, mode, pcm.WearRRMRefresh)
			if tier == 2 {
				m.stats.FastRefreshes++
			} else {
				m.stats.MidRefreshes++
			}
		}
	}
}

// DecayTick advances the cyclic decay counters; on wrap an entry that no
// longer sustains its tier's threshold is demoted wholesale (flush to
// long mode), mirroring the base RRM's conservative demotion.
func (m *MultiModeRRM) DecayTick(now timing.Time) {
	for s := range m.sets {
		for i := range m.sets[s] {
			e := &m.sets[s][i]
			if !e.valid {
				continue
			}
			e.decayCounter++
			if e.decayCounter < m.decayWrap {
				continue
			}
			e.decayCounter = 0
			threshold := m.cfg.HotThreshold
			if e.tier == 1 {
				threshold = m.cfg.WarmThreshold
			}
			if e.tier > 0 && e.dirtyWrites >= threshold {
				e.dirtyWrites /= 2
				continue
			}
			if e.tier > 0 {
				m.stats.Demotions++
				m.flush(e)
			}
		}
	}
}

// Start attaches the monitor to the simulation clock: decay ticks plus
// timers for already-promoted entries.
func (m *MultiModeRRM) Start(eq *timing.EventQueue) {
	m.eq = eq
	for s := range m.sets {
		for i := range m.sets[s] {
			e := &m.sets[s][i]
			if e.valid && e.tier >= 1 {
				m.armTimer(e, 1)
			}
			if e.valid && e.tier == 2 {
				m.armTimer(e, 2)
			}
		}
	}
	var decay func(now timing.Time)
	decay = func(now timing.Time) {
		if !m.decaySuspended {
			m.DecayTick(now)
		}
		eq.Schedule(now+m.cfg.DecayInterval, decay)
	}
	eq.Schedule(eq.Now()+m.cfg.DecayInterval, decay)
}

// SuspendDecay pauses (or resumes) the periodic heat decay without
// disturbing its schedule; see RRM.SuspendDecay.
func (m *MultiModeRRM) SuspendDecay(v bool) { m.decaySuspended = v }
