package snapshot

import (
	"bytes"
	"math"
	"testing"
)

const (
	testMagic   = 0x52_52_4D_53 // "SMRR"
	testVersion = 1
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Header(testMagic, testVersion)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(math.MaxUint64)
	w.I64(-42)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Section(7)
	type counters struct{ A, B uint64 }
	if err := w.JSON(counters{A: 1, B: 2}); err != nil {
		t.Fatal(err)
	}
	blob := w.Finish()

	r, err := NewReader(blob, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool mismatch")
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != math.MaxUint64 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 inf = %v", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	r.Section(7)
	var c counters
	r.JSON(&c)
	if c.A != 1 || c.B != 2 {
		t.Errorf("JSON = %+v", c)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		w := NewWriter(0)
		w.Header(testMagic, testVersion)
		w.U64(12345)
		w.String("state")
		return w.Finish()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical state encoded to different bytes")
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	w := NewWriter(0)
	w.Header(testMagic, testVersion)
	w.U64(777)
	blob := w.Finish()

	for i := 0; i < len(blob); i++ {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x01
		if _, err := NewReader(bad, testMagic, testVersion); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, err := NewReader(blob[:n], testMagic, testVersion); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestVersionAndMagic(t *testing.T) {
	w := NewWriter(0)
	w.Header(testMagic, 3)
	blob := w.Finish()
	if _, err := NewReader(blob, testMagic, 2); err == nil {
		t.Error("newer version accepted")
	}
	if _, err := NewReader(blob, testMagic+1, 3); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := NewReader(blob, testMagic, 3); err != nil {
		t.Errorf("valid blob rejected: %v", err)
	}
}

func TestStickyError(t *testing.T) {
	w := NewWriter(0)
	w.Header(testMagic, testVersion)
	w.U8(1)
	blob := w.Finish()

	r, err := NewReader(blob, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	r.U8()
	r.U64() // past the end
	if r.Err() == nil {
		t.Fatal("overread not detected")
	}
	first := r.Err()
	r.U32()
	r.Bool()
	if r.Err() != first {
		t.Error("error did not stick")
	}
	if r.Done() == nil {
		t.Error("Done passed after error")
	}
}

func TestBoolRejectsGarbage(t *testing.T) {
	w := NewWriter(0)
	w.Header(testMagic, testVersion)
	w.U8(2)
	blob := w.Finish()
	r, err := NewReader(blob, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	r.Bool()
	if r.Err() == nil {
		t.Error("bool byte 2 accepted")
	}
}

func TestCountLimit(t *testing.T) {
	w := NewWriter(0)
	w.Header(testMagic, testVersion)
	w.U32(1 << 30)
	blob := w.Finish()
	r, err := NewReader(blob, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Count(1024); n != 0 || r.Err() == nil {
		t.Errorf("oversized count passed: n=%d err=%v", n, r.Err())
	}
}
