package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRoundTrip drives the codec two ways from one input:
//
//  1. treat the fuzz bytes as a script of typed values, encode them,
//     decode them back, and require an exact match (round-trip);
//  2. feed the raw fuzz bytes straight to NewReader and a decode loop,
//     requiring graceful errors — never a panic — on arbitrary input.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// A well-formed blob as a seed for the robustness path.
	w := NewWriter(0)
	w.Header(0x1234, 1)
	w.U64(42)
	w.String("seed")
	f.Add(w.Finish())

	f.Fuzz(func(t *testing.T, data []byte) {
		roundTrip(t, data)
		decodeArbitrary(data)
	})
}

// roundTrip interprets data as (tag, payload) ops, encodes the derived
// values, and checks they decode back identically.
func roundTrip(t *testing.T, data []byte) {
	const magic, version = 0xF00D, 2
	w := NewWriter(0)
	w.Header(magic, version)

	type op struct {
		kind byte
		u    uint64
		b    []byte
	}
	var ops []op
	for i := 0; i+9 <= len(data) && len(ops) < 64; i += 9 {
		kind := data[i] % 7
		var u uint64
		for j := 0; j < 8; j++ {
			u |= uint64(data[i+1+j]) << (8 * j)
		}
		o := op{kind: kind, u: u}
		switch kind {
		case 0:
			w.U8(uint8(u))
		case 1:
			w.U16(uint16(u))
		case 2:
			w.U32(uint32(u))
		case 3:
			w.U64(u)
		case 4:
			w.I64(int64(u))
		case 5:
			w.Bool(u&1 == 1)
		case 6:
			n := int(u % 16)
			if n > len(data) {
				n = len(data)
			}
			o.b = data[:n]
			w.Bytes(o.b)
		}
		ops = append(ops, o)
	}
	blob := w.Finish()

	r, err := NewReader(blob, magic, version)
	if err != nil {
		t.Fatalf("own blob rejected: %v", err)
	}
	for _, o := range ops {
		switch o.kind {
		case 0:
			if got := r.U8(); got != uint8(o.u) {
				t.Fatalf("U8 %#x != %#x", got, uint8(o.u))
			}
		case 1:
			if got := r.U16(); got != uint16(o.u) {
				t.Fatalf("U16 %#x != %#x", got, uint16(o.u))
			}
		case 2:
			if got := r.U32(); got != uint32(o.u) {
				t.Fatalf("U32 %#x != %#x", got, uint32(o.u))
			}
		case 3:
			if got := r.U64(); got != o.u {
				t.Fatalf("U64 %#x != %#x", got, o.u)
			}
		case 4:
			if got := r.I64(); got != int64(o.u) {
				t.Fatalf("I64 %d != %d", got, int64(o.u))
			}
		case 5:
			if got := r.Bool(); got != (o.u&1 == 1) {
				t.Fatalf("Bool %v != %v", got, o.u&1 == 1)
			}
		case 6:
			if got := r.Bytes(); !bytes.Equal(got, o.b) {
				t.Fatalf("Bytes %v != %v", got, o.b)
			}
		}
	}
	if err := r.Done(); err != nil {
		t.Fatalf("own blob left residue: %v", err)
	}
}

// decodeArbitrary must never panic, whatever the bytes are.
func decodeArbitrary(data []byte) {
	r, err := NewReader(data, 0x1234, 1)
	if err != nil {
		return
	}
	for i := 0; i < 32 && r.Err() == nil; i++ {
		switch i % 6 {
		case 0:
			r.U8()
		case 1:
			r.U16()
		case 2:
			r.U64()
		case 3:
			r.Bool()
		case 4:
			r.Bytes()
		case 5:
			r.Count(1 << 20)
		}
	}
	_ = r.Done()
}
