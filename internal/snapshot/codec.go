// Package snapshot is the deterministic binary codec behind the
// simulator's state snapshot/restore support. Encoding rules:
//
//   - every primitive is fixed-width little-endian, so a given state
//     always encodes to the same bytes (encoding/gob is rejected: its
//     map ordering is nondeterministic and its stream is stateful);
//   - variable-length data (byte slices, strings, JSON sections) is
//     length-prefixed with a u32;
//   - a blob starts with a caller-chosen magic+version header and ends
//     with an FNV-1a checksum of everything before it, so truncated or
//     bit-flipped blobs are rejected before any state is touched;
//   - maps must be emitted in sorted key order by the caller.
//
// The Reader is sticky-error: after the first failure every read
// returns zero values and Err() reports the original problem, so decode
// paths can be written without per-field error checks.
package snapshot

import (
	"encoding/json"
	"fmt"
	"math"
)

// Writer accumulates an encoded snapshot. The zero value is ready to
// use; call Header first and Finish last.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Header writes the blob's magic number and format version. It must be
// the first write.
func (w *Writer) Header(magic uint32, version uint16) {
	w.U32(magic)
	w.U16(version)
}

// Finish appends the FNV-1a checksum of everything written so far and
// returns the completed blob. The writer must not be reused after.
func (w *Writer) Finish() []byte {
	w.U64(fnv1a(w.buf))
	return w.buf
}

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 writes a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = append(w.buf, byte(v), byte(v>>8))
}

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 by its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Section writes a u16 tag identifying the component state that
// follows, making structural mismatches fail fast with a clear error.
func (w *Writer) Section(tag uint16) { w.U16(tag) }

// JSON writes v as a length-prefixed canonical JSON blob. Go's
// encoding/json is deterministic for structs (field order) and for maps
// (sorted keys), so this is safe for counter/metrics structs whose
// field-by-field encoding would be pure drudgery.
func (w *Writer) JSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("snapshot: encode %T: %w", v, err)
	}
	w.Bytes(b)
	return nil
}

// Reader decodes a snapshot produced by Writer. All reads are
// bounds-checked; the first failure sticks and is reported by Err.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader validates the trailing checksum and the magic+version
// header, returning a reader positioned after the header. wantVersion
// is the highest version the caller understands; blobs with a newer
// version are rejected.
func NewReader(blob []byte, magic uint32, wantVersion uint16) (*Reader, error) {
	if len(blob) < 4+2+8 {
		return nil, fmt.Errorf("snapshot: blob too short (%d bytes)", len(blob))
	}
	body, sum := blob[:len(blob)-8], blob[len(blob)-8:]
	want := uint64(sum[0]) | uint64(sum[1])<<8 | uint64(sum[2])<<16 | uint64(sum[3])<<24 |
		uint64(sum[4])<<32 | uint64(sum[5])<<40 | uint64(sum[6])<<48 | uint64(sum[7])<<56
	if got := fnv1a(body); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (got %#x want %#x)", got, want)
	}
	r := &Reader{buf: body}
	if m := r.U32(); m != magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x (want %#x)", m, magic)
	}
	if v := r.U16(); v > wantVersion {
		return nil, fmt.Errorf("snapshot: format version %d newer than supported %d", v, wantVersion)
	}
	return r, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Done reports whether the whole body was consumed without error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("snapshot: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

// Fail records a caller-detected structural mismatch (for example a
// geometry field that disagrees with the live configuration). Like any
// decode error it sticks.
func (r *Reader) Fail(format string, args ...any) {
	r.fail(format, args...)
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.pos < n {
		r.fail("truncated: need %d bytes at offset %d of %d", n, r.pos, len(r.buf))
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean, rejecting any byte other than 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte at offset %d", r.pos-1)
		return false
	}
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte slice (a copy-free view into the
// blob; callers that retain it must copy).
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	return r.take(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Section consumes a section tag and fails unless it matches want.
func (r *Reader) Section(want uint16) {
	if got := r.U16(); r.err == nil && got != want {
		r.fail("section tag %#x, want %#x", got, want)
	}
}

// Count reads a u32 element count and fails if it exceeds max, bounding
// allocation on corrupt input.
func (r *Reader) Count(max int) int {
	n := int(r.U32())
	if r.err == nil && n > max {
		r.fail("count %d exceeds limit %d", n, max)
		return 0
	}
	return n
}

// JSON decodes a length-prefixed JSON section into v.
func (r *Reader) JSON(v any) {
	b := r.Bytes()
	if r.err != nil {
		return
	}
	if err := json.Unmarshal(b, v); err != nil {
		r.fail("decode %T: %v", v, err)
	}
}

// fnv1a is the 64-bit FNV-1a hash used for the trailing checksum.
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// Checksum exposes the codec's 64-bit FNV-1a hash so sibling on-disk
// formats (the engine run cache, the cluster artifact store) can carry
// the same integrity trailer as snapshot blobs.
func Checksum(b []byte) uint64 { return fnv1a(b) }

// VerifyTrailer checks a blob's trailing FNV-1a checksum without
// interpreting its header or body. It is the cheap integrity probe a
// blob store uses to reject torn or bit-flipped snapshot files before
// handing them to a decoder.
func VerifyTrailer(blob []byte) error {
	if len(blob) < 4+2+8 {
		return fmt.Errorf("snapshot: blob too short (%d bytes)", len(blob))
	}
	body, sum := blob[:len(blob)-8], blob[len(blob)-8:]
	want := uint64(sum[0]) | uint64(sum[1])<<8 | uint64(sum[2])<<16 | uint64(sum[3])<<24 |
		uint64(sum[4])<<32 | uint64(sum[5])<<40 | uint64(sum[6])<<48 | uint64(sum[7])<<56
	if got := fnv1a(body); got != want {
		return fmt.Errorf("snapshot: checksum mismatch (got %#x want %#x)", got, want)
	}
	return nil
}
