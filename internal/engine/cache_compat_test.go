package engine

import (
	"os"
	"path/filepath"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
)

// TestRunCacheFormatBackwardCompat: entries written by older builds —
// format 2 (PR 2, mode-name WritesByMode keys, no reliability block)
// and format 3 (PR 4, reliability + retention_detail blocks) — predate
// the integrity trailer and must still load under the current decoder.
// The fixtures are verbatim copies of what those builds put on disk.
func TestRunCacheFormatBackwardCompat(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	install := func(key string) {
		t.Helper()
		blob, err := os.ReadFile(filepath.Join("testdata", "runcache", key+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	install("f2c0ffee")
	m2, ok, err := c.Load("f2c0ffee")
	if err != nil || !ok {
		t.Fatalf("format-2 entry: ok %v err %v, want hit", ok, err)
	}
	if m2.Scheme != "RRM" || m2.Workload != "GemsFDTD" {
		t.Errorf("format-2 identity = %s/%s, want RRM/GemsFDTD", m2.Scheme, m2.Workload)
	}
	if m2.Instructions != 28686552 || m2.WritesByMode[3] != 64180 || m2.WritesByMode[7] != 37030 {
		t.Errorf("format-2 counters decoded wrong: insts %d writes %v", m2.Instructions, m2.WritesByMode)
	}
	if m2.RRM.RegHits != 64180 || m2.RRM.FastRefreshes != 5120 {
		t.Errorf("format-2 RRM stats decoded wrong: %+v", m2.RRM)
	}
	if m2.Reliability != nil || m2.RetentionDetail != nil {
		t.Error("format-2 entry grew reliability/retention blocks it never had")
	}

	install("f3deca1")
	m3, ok, err := c.Load("f3deca1")
	if err != nil || !ok {
		t.Fatalf("format-3 entry: ok %v err %v, want hit", ok, err)
	}
	if m3.Scheme != "static-3" || m3.Workload != "milc" {
		t.Errorf("format-3 identity = %s/%s, want static-3/milc", m3.Scheme, m3.Workload)
	}
	if m3.Reliability == nil {
		t.Fatal("format-3 reliability block lost in decode")
	}
	if m3.Reliability.CorrectedReads != 2318 || m3.Reliability.UncorrectableReads != 6 {
		t.Errorf("format-3 reliability counters decoded wrong: %+v", *m3.Reliability)
	}
	if m3.RetentionDetail == nil || m3.RetentionDetail.Total != 41 || m3.RetentionDetail.ExpiredOnRewrite != 26 {
		t.Errorf("format-3 retention detail decoded wrong: %+v", m3.RetentionDetail)
	}
	if m3.RetentionViolations != 41 || m3.WritesByMode[3] != 188012 {
		t.Errorf("format-3 counters decoded wrong: viol %d writes %v", m3.RetentionViolations, m3.WritesByMode)
	}
}

// TestRunCacheChecksumTrailer: current-format entries carry an FNV-1a
// integrity trailer. A mismatching trailer — any corruption of the body
// or of the trailer itself — reads as a miss (degrade to recompute),
// while stripping the trailer entirely yields the legacy untrailed
// layout, which still loads.
func TestRunCacheChecksumTrailer(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store("k", testMetricsFixture()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trailerAt := len(pristine) - len("#fnv1a:0000000000000000\n") - 1
	if string(pristine[trailerAt:trailerAt+8]) != "\n#fnv1a:" {
		t.Fatalf("stored entry has no integrity trailer: %q", pristine[trailerAt:])
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.Load("k"); ok || err != nil {
			t.Errorf("%s: ok %v err %v, want silent miss", name, ok, err)
		}
	}

	// One flipped byte inside the JSON body (a digit of a counter).
	corrupt("bit flip in body", func(b []byte) []byte {
		i := len(b) / 2
		b[i] ^= 0x01
		return b
	})
	// A tampered trailer over an intact body.
	corrupt("tampered trailer", func(b []byte) []byte {
		b[trailerAt+10] ^= 0x01
		return b
	})
	// A torn write: half the entry, no trailer, broken JSON.
	corrupt("torn entry", func(b []byte) []byte { return b[:len(b)/3] })

	// Legacy layout: the same JSON with the trailer stripped must load
	// (that is exactly what pre-trailer builds wrote).
	if err := os.WriteFile(path, pristine[:trailerAt+1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load("k"); !ok || err != nil {
		t.Errorf("legacy untrailed entry: ok %v err %v, want hit", ok, err)
	}

	// And the pristine trailed entry round-trips.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load("k"); !ok || err != nil {
		t.Errorf("pristine entry: ok %v err %v, want hit", ok, err)
	}
}

// testMetricsFixture builds a metrics document with enough populated
// fields that single-byte corruption lands somewhere meaningful.
func testMetricsFixture() sim.Metrics {
	m := sim.Metrics{
		Scheme: "RRM", Workload: "GemsFDTD",
		SimSeconds: 0.03, TimeScale: 100,
		Instructions: 28686552, IPC: 1.40615491,
		PerCoreIPC:   []float64{0.35, 0.35, 0.35, 0.35},
		ReadsServed:  214669, WritesServed: 101210,
		WritesByMode:  sim.ModeWrites{pcm.Mode3SETs: 64180, pcm.Mode7SETs: 37030},
		LifetimeYears: 7.234561,
	}
	m.RRM.RegHits = 64180
	return m
}
