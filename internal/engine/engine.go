// Package engine is the parallel experiment engine: a worker-pool job
// scheduler that fans simulation runs out over GOMAXPROCS goroutines
// while keeping every observable output deterministic.
//
// The design invariants, in order of importance:
//
//   - Determinism. A Job is identified by a Key (normally the
//     ConfigHash of its sim.Config). Results are merged by job key and
//     returned in submission order, never in completion order, so any
//     parallelism level produces byte-identical downstream tables. The
//     simulations themselves are already deterministic: every run owns a
//     private sim.System whose PRNGs are seeded from its own config.
//
//   - Isolation. Jobs share nothing. A panicking simulation is
//     converted into that job's error (with the stack attached) instead
//     of killing the sweep; the other jobs finish normally.
//
//   - Resumability. With a RunCache attached, finished runs persist to
//     disk keyed by config hash, so repeated passes and interrupted
//     sweeps reload results instead of recomputing them.
//
//   - Cancellation. The context passed to Run stops the feed and
//     propagates into running simulations (sim.System.RunContext checks
//     it between event-queue slices); Options.Timeout bounds each job.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rrmpcm/internal/sampling"
	"rrmpcm/internal/sim"
)

// Job is one simulation to execute.
type Job struct {
	// Key is the job's deterministic identity: jobs with equal keys are
	// assumed interchangeable and execute once. Use ConfigHash.
	Key string
	// Name is the human-readable label used in progress output and
	// error messages ("main/RRM/GemsFDTD"). Purely cosmetic.
	Name string
	// Config is the full run configuration.
	Config sim.Config
	// Uncacheable excludes the job from the disk cache. Custom-policy
	// configs set it: their behaviour is not captured by the config
	// hash, so a disk entry could go stale across code changes.
	Uncacheable bool
}

func (j Job) label() string {
	if j.Name != "" {
		return j.Name
	}
	return j.Key
}

// Result is the outcome of one job.
type Result struct {
	Key  string
	Name string
	// Metrics is valid iff Err is nil.
	Metrics sim.Metrics
	Err     error
	// Cached reports a disk-cache hit (no simulation ran).
	Cached bool
	// CacheErr is a non-fatal failure writing the result to the disk
	// cache; the Metrics are still valid.
	CacheErr error
	// Wall is the job's wall-clock cost (near zero for cache hits).
	Wall time.Duration
}

// SimFunc runs one simulation; it must honor ctx. The default is RunSim;
// tests substitute instrumented fakes.
type SimFunc func(ctx context.Context, cfg sim.Config) (sim.Metrics, error)

// RunSim is the production SimFunc: build the system, run it, collect.
// Configs with a sampling spec dispatch to the interval-sampling
// executor instead of a contiguous detailed run.
func RunSim(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
	if cfg.Sampling != nil {
		return sampling.Run(ctx, cfg)
	}
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Metrics{}, err
	}
	return sys.RunContext(ctx)
}

// Options configures an Engine.
type Options struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout bounds each job's wall-clock time; 0 means none.
	Timeout time.Duration
	// Cache, if non-nil, persists results keyed by job key. RunCache is
	// the local-disk implementation; cluster workers plug in the shared
	// artifact store here instead.
	Cache ResultCache
	// Progress, if non-nil, is called once per finished job. Calls are
	// serialized by the engine; the callback may write to shared sinks
	// without further locking.
	Progress func(Result)
	// Observer, if non-nil, receives per-job lifecycle events
	// (queued -> running -> done/failed, with timestamps). Calls are
	// serialized with each other and with Progress; see Observer.
	Observer Observer
	// Sim overrides the simulation function: WarmRunSim for warm-start
	// sweeps, instrumented fakes in tests. Nil means RunSim.
	Sim SimFunc
}

// Engine schedules simulation jobs over a bounded worker pool.
type Engine struct {
	opt        Options
	progressMu sync.Mutex
	sims       atomic.Uint64
}

// New returns an engine with the given options.
func New(opt Options) *Engine {
	if opt.Parallel <= 0 {
		opt.Parallel = runtime.GOMAXPROCS(0)
	}
	if opt.Sim == nil {
		opt.Sim = RunSim
	}
	return &Engine{opt: opt}
}

// Parallel reports the engine's worker count.
func (e *Engine) Parallel() int { return e.opt.Parallel }

// SimsExecuted reports how many simulations this engine actually
// launched — cache hits and jobs cancelled before dispatch excluded.
// The cluster's zero-duplicate-work guarantee is asserted against this
// counter: over a fleet of workers the per-key sum must never exceed
// one for any completed sweep.
func (e *Engine) SimsExecuted() uint64 { return e.sims.Load() }

// Run executes jobs over the worker pool and returns one Result per job,
// in submission order. Jobs sharing a key execute once and share the
// Result. Per-job failures (simulation error, panic, timeout) are
// reported in the job's Result; Run's own error is non-nil only when ctx
// was cancelled, in which case jobs that never started carry ctx's error.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	// Dedupe by key; the first occurrence runs, later ones share.
	uniqIdx := make(map[string]int, len(jobs)) // key -> index into uniq
	var uniqJobs []Job
	for _, j := range jobs {
		if _, ok := uniqIdx[j.Key]; !ok {
			uniqIdx[j.Key] = len(uniqJobs)
			uniqJobs = append(uniqJobs, j)
		}
	}

	for _, j := range uniqJobs {
		e.notify(JobEvent{Job: j, State: JobStateQueued, At: time.Now()})
	}

	uniq := make([]Result, len(uniqJobs))
	feed := make(chan int)
	var wg sync.WaitGroup
	workers := e.opt.Parallel
	if workers > len(uniqJobs) {
		workers = len(uniqJobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				uniq[i] = e.execute(ctx, uniqJobs[i])
				if e.opt.Progress != nil {
					e.progressMu.Lock()
					e.opt.Progress(uniq[i])
					e.progressMu.Unlock()
				}
			}
		}()
	}
feeding:
	for i := range uniqJobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			break feeding
		}
	}
	close(feed)
	wg.Wait()

	// Jobs the cancelled feed never dispatched report the context error
	// (and close their lifecycle with a Failed event).
	for i := range uniq {
		if uniq[i].Key == "" {
			j := uniqJobs[i]
			uniq[i] = Result{Key: j.Key, Name: j.Name,
				Err: fmt.Errorf("engine: %s: not run: %w", j.label(), ctx.Err())}
			e.notify(JobEvent{Job: j, State: JobStateFailed, At: time.Now(), Result: &uniq[i]})
		}
	}

	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = uniq[uniqIdx[j.Key]]
	}
	return out, ctx.Err()
}

// runJob executes one job: disk-cache probe, simulate, store. A panic in
// the simulation becomes the job's error.
func (e *Engine) runJob(ctx context.Context, j Job) (res Result) {
	res.Key, res.Name = j.Key, j.Name
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("engine: %s: simulation panicked: %v\n%s",
				j.label(), p, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("engine: %s: not run: %w", j.label(), err)
		return res
	}

	cacheable := e.opt.Cache != nil && !j.Uncacheable
	if cacheable {
		// Load errors (corrupt or torn entries) degrade to misses.
		if m, ok, err := e.opt.Cache.Load(j.Key); err == nil && ok {
			res.Metrics, res.Cached = m, true
			return res
		}
	}

	runCtx := ctx
	if e.opt.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, e.opt.Timeout)
		defer cancel()
	}
	e.sims.Add(1)
	m, err := e.opt.Sim(runCtx, j.Config)
	if err != nil {
		res.Err = fmt.Errorf("engine: %s: %w", j.label(), err)
		return res
	}
	res.Metrics = m
	if cacheable {
		res.CacheErr = e.opt.Cache.Store(j.Key, m)
	}
	return res
}
