package engine

import (
	"context"
	"time"
)

// JobState is a point in a job's lifecycle. Every job moves strictly
// forward: Queued, then Running, then exactly one of Done or Failed.
// Jobs a cancelled Run never dispatched skip Running and go straight to
// Failed (their Result carries the context error).
type JobState int

const (
	// JobStateQueued: the job was accepted for execution.
	JobStateQueued JobState = iota
	// JobStateRunning: a worker picked the job up (cache probe and
	// simulation happen in this state).
	JobStateRunning
	// JobStateDone: the job finished with valid metrics (simulated or
	// loaded from the disk cache).
	JobStateDone
	// JobStateFailed: the job finished with an error (simulation
	// failure, panic, timeout, or cancellation before dispatch).
	JobStateFailed
)

// Terminal reports whether the state ends a job's lifecycle.
func (s JobState) Terminal() bool { return s == JobStateDone || s == JobStateFailed }

// String implements fmt.Stringer with the wire spelling used by the
// HTTP service and its streams.
func (s JobState) String() string {
	switch s {
	case JobStateQueued:
		return "queued"
	case JobStateRunning:
		return "running"
	case JobStateDone:
		return "done"
	case JobStateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// JobEvent is one lifecycle transition of one job.
type JobEvent struct {
	// Job is the job transitioning (always populated).
	Job Job
	// State is the state entered.
	State JobState
	// At is the transition's wall-clock timestamp.
	At time.Time
	// Result is non-nil exactly for terminal states.
	Result *Result
}

// Observer receives job lifecycle events. The engine serializes calls
// (one event at a time, across all workers), and per job the order is
// always Queued, [Running,] then one terminal event, so an observer may
// maintain per-job state machines without locking against itself.
// Observers must not block: they run on the engine's worker goroutines.
type Observer interface {
	ObserveJob(JobEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(JobEvent)

// ObserveJob implements Observer.
func (f ObserverFunc) ObserveJob(ev JobEvent) { f(ev) }

// notify emits one event to the configured observer, serialized with
// every other observer and progress call.
func (e *Engine) notify(ev JobEvent) {
	if e.opt.Observer == nil {
		return
	}
	e.progressMu.Lock()
	e.opt.Observer.ObserveJob(ev)
	e.progressMu.Unlock()
}

// execute runs one job on the calling goroutine, emitting the Running
// and terminal events around it.
func (e *Engine) execute(ctx context.Context, j Job) Result {
	e.notify(JobEvent{Job: j, State: JobStateRunning, At: time.Now()})
	res := e.runJob(ctx, j)
	state := JobStateDone
	if res.Err != nil {
		state = JobStateFailed
	}
	e.notify(JobEvent{Job: j, State: state, At: time.Now(), Result: &res})
	return res
}

// Execute runs a single job synchronously on the caller's goroutine:
// disk-cache probe, simulation (with the engine's per-job timeout and
// panic recovery), store. It emits the full Queued/Running/terminal
// event sequence, so callers that manage their own queues (the HTTP
// service) get the same observability as batch Run callers. Unlike Run
// it performs no deduplication; idempotency is the caller's concern.
func (e *Engine) Execute(ctx context.Context, j Job) Result {
	e.notify(JobEvent{Job: j, State: JobStateQueued, At: time.Now()})
	return e.execute(ctx, j)
}
