package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rrmpcm/internal/sim"
)

// eventLog collects observer events for inspection.
type eventLog struct {
	mu     sync.Mutex
	events []JobEvent
}

func (l *eventLog) ObserveJob(ev JobEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) byKey() map[string][]JobEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[string][]JobEvent{}
	for _, ev := range l.events {
		out[ev.Job.Key] = append(out[ev.Job.Key], ev)
	}
	return out
}

// checkLifecycle asserts one job's event sequence is well-formed:
// queued first, a terminal event last, running (if present) in
// between, timestamps non-decreasing, result attached exactly to the
// terminal event.
func checkLifecycle(t *testing.T, key string, evs []JobEvent) {
	t.Helper()
	if len(evs) < 2 {
		t.Fatalf("job %s: %d events, want >= 2", key, len(evs))
	}
	if evs[0].State != JobStateQueued {
		t.Errorf("job %s: first state %v, want queued", key, evs[0].State)
	}
	last := evs[len(evs)-1]
	if !last.State.Terminal() {
		t.Errorf("job %s: last state %v, want terminal", key, last.State)
	}
	if last.Result == nil {
		t.Errorf("job %s: terminal event without result", key)
	}
	for i, ev := range evs {
		if i > 0 && ev.At.Before(evs[i-1].At) {
			t.Errorf("job %s: event %d timestamp went backwards", key, i)
		}
		if ev.State.Terminal() != (i == len(evs)-1) {
			t.Errorf("job %s: terminal state at position %d of %d", key, i, len(evs))
		}
		if (ev.Result != nil) != ev.State.Terminal() {
			t.Errorf("job %s: result attached to non-terminal state %v", key, ev.State)
		}
	}
}

// TestObserverRunLifecycle: Run emits queued -> running -> done for
// every unique job, once per key even when jobs share keys.
func TestObserverRunLifecycle(t *testing.T) {
	log := &eventLog{}
	e := New(Options{Parallel: 4, Observer: log,
		Sim: func(ctx context.Context, cfg simConfig) (simMetrics, error) {
			return seedMetrics(cfg), nil
		}})
	jobs := fakeJobs(6)
	jobs = append(jobs, jobs[0], jobs[3]) // duplicates share one lifecycle
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	byKey := log.byKey()
	if len(byKey) != 6 {
		t.Fatalf("events for %d keys, want 6 (duplicates must not re-run)", len(byKey))
	}
	for key, evs := range byKey {
		if len(evs) != 3 {
			t.Errorf("job %s: %d events, want 3 (queued/running/done)", key, len(evs))
		}
		checkLifecycle(t, key, evs)
		if last := evs[len(evs)-1]; last.State != JobStateDone {
			t.Errorf("job %s: final state %v, want done", key, last.State)
		}
	}
}

// TestObserverFailure: a failing simulation closes with JobStateFailed
// and the result carries the error.
func TestObserverFailure(t *testing.T) {
	log := &eventLog{}
	boom := fmt.Errorf("boom")
	e := New(Options{Parallel: 2, Observer: log,
		Sim: func(ctx context.Context, cfg simConfig) (simMetrics, error) {
			return simMetrics{}, boom
		}})
	if _, err := e.Run(context.Background(), fakeJobs(3)); err != nil {
		t.Fatal(err)
	}
	for key, evs := range log.byKey() {
		checkLifecycle(t, key, evs)
		last := evs[len(evs)-1]
		if last.State != JobStateFailed {
			t.Errorf("job %s: final state %v, want failed", key, last.State)
		}
		if last.Result.Err == nil {
			t.Errorf("job %s: failed event without error", key)
		}
	}
}

// TestObserverCancelledRun: jobs a cancelled Run never dispatched
// still close their lifecycle (queued -> failed).
func TestObserverCancelledRun(t *testing.T) {
	log := &eventLog{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Parallel: 2, Observer: log,
		Sim: func(ctx context.Context, cfg simConfig) (simMetrics, error) {
			return seedMetrics(cfg), nil
		}})
	if _, err := e.Run(ctx, fakeJobs(5)); err == nil {
		t.Fatal("Run on a cancelled context returned nil error")
	}
	byKey := log.byKey()
	if len(byKey) != 5 {
		t.Fatalf("events for %d keys, want 5", len(byKey))
	}
	for key, evs := range byKey {
		checkLifecycle(t, key, evs)
		if last := evs[len(evs)-1]; last.State != JobStateFailed {
			t.Errorf("job %s: final state %v, want failed", key, last.State)
		}
	}
}

// TestExecuteLifecycle: the single-job entry point emits the same
// three-event sequence as a batch Run.
func TestExecuteLifecycle(t *testing.T) {
	log := &eventLog{}
	e := New(Options{Observer: log,
		Sim: func(ctx context.Context, cfg simConfig) (simMetrics, error) {
			return seedMetrics(cfg), nil
		}})
	job := fakeJobs(1)[0]
	res := e.Execute(context.Background(), job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	evs := log.byKey()[job.Key]
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3", len(evs))
	}
	checkLifecycle(t, job.Key, evs)
	want := []JobState{JobStateQueued, JobStateRunning, JobStateDone}
	for i, ev := range evs {
		if ev.State != want[i] {
			t.Errorf("event %d state %v, want %v", i, ev.State, want[i])
		}
	}
}

// TestExecuteConcurrent: 32 concurrent Execute calls keep observer
// accounting consistent (run under -race).
func TestExecuteConcurrent(t *testing.T) {
	log := &eventLog{}
	var ran atomic.Int64
	e := New(Options{Observer: log,
		Sim: func(ctx context.Context, cfg simConfig) (simMetrics, error) {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return seedMetrics(cfg), nil
		}})
	const n = 32
	jobs := fakeJobs(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res := e.Execute(context.Background(), jobs[i]); res.Err != nil {
				t.Errorf("job %d: %v", i, res.Err)
			}
		}(i)
	}
	wg.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("%d simulations ran, want %d", got, n)
	}
	byKey := log.byKey()
	if len(byKey) != n {
		t.Fatalf("events for %d keys, want %d", len(byKey), n)
	}
	for key, evs := range byKey {
		checkLifecycle(t, key, evs)
	}
}

// Local aliases so the fake Sim signatures above stay short.
type (
	simConfig  = sim.Config
	simMetrics = sim.Metrics
)
