package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// testConfig returns a tiny but valid run configuration.
func testConfig(seed uint64) sim.Config {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		panic(err)
	}
	cfg := sim.DefaultConfig(sim.StaticScheme(pcm.Mode7SETs), w)
	cfg.Duration = 1500 * timing.Microsecond
	cfg.Warmup = 500 * timing.Microsecond
	cfg.TimeScale = 1000
	cfg.Seed = seed
	return cfg
}

// fakeJobs builds n jobs with distinct keys over distinct seeds.
func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("job-%03d", i), Name: fmt.Sprintf("fake/%d", i),
			Config: testConfig(uint64(i + 1))}
	}
	return jobs
}

// seedMetrics is the fake simulation output: identifiable per config.
func seedMetrics(cfg sim.Config) sim.Metrics {
	return sim.Metrics{Scheme: cfg.Scheme.Name(), Workload: cfg.Workload.Name,
		IPC: float64(cfg.Seed), Instructions: cfg.Seed * 1000}
}

// TestDeterministicOrdering: the same job list produces the same result
// sequence at parallelism 1 and 8, even when completion order is
// scrambled by per-job sleeps.
func TestDeterministicOrdering(t *testing.T) {
	jobs := fakeJobs(24)
	run := func(parallel int) []Result {
		e := New(Options{Parallel: parallel, Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
			// Earlier jobs sleep longer: completion order is roughly
			// the reverse of submission order under parallelism.
			time.Sleep(time.Duration(24-cfg.Seed) * time.Millisecond)
			return seedMetrics(cfg), nil
		}})
		res, err := e.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("result counts %d/%d, want %d", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Key != jobs[i].Key || par[i].Key != jobs[i].Key {
			t.Fatalf("result %d key %q/%q, want submission order %q", i, seq[i].Key, par[i].Key, jobs[i].Key)
		}
		if seq[i].Metrics.IPC != par[i].Metrics.IPC {
			t.Fatalf("result %d differs across parallelism: %v vs %v", i, seq[i].Metrics.IPC, par[i].Metrics.IPC)
		}
	}
}

// TestKeyMerging: jobs sharing a key execute once and share the result.
func TestKeyMerging(t *testing.T) {
	var runs atomic.Int32
	e := New(Options{Parallel: 4, Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		runs.Add(1)
		return seedMetrics(cfg), nil
	}})
	job := Job{Key: "shared", Config: testConfig(7)}
	res, err := e.Run(context.Background(), []Job{job, job, job, job})
	if err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("shared-key jobs ran %d times, want 1", n)
	}
	for i, r := range res {
		if r.Err != nil || r.Metrics.IPC != 7 {
			t.Errorf("result %d = %+v, want shared metrics", i, r)
		}
	}
}

// TestPanicRecovery: a panicking simulation becomes its job's error; the
// rest of the batch completes.
func TestPanicRecovery(t *testing.T) {
	jobs := fakeJobs(6)
	e := New(Options{Parallel: 3, Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		if cfg.Seed == 3 {
			panic("injected crash")
		}
		return seedMetrics(cfg), nil
	}})
	res, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i == 2 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "injected crash") {
				t.Errorf("crashed job error = %v, want panic message", r.Err)
			}
			if !strings.Contains(fmt.Sprint(r.Err), "goroutine") {
				t.Errorf("crashed job error lacks a stack trace: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("job %d failed: %v", i, r.Err)
		}
	}
}

// TestCancellation: cancelling the context stops the batch; running jobs
// see ctx in their SimFunc and unstarted jobs report the context error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	e := New(Options{Parallel: 2, Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		started <- struct{}{}
		<-ctx.Done()
		return sim.Metrics{}, ctx.Err()
	}})
	go func() {
		<-started
		cancel()
	}()
	res, err := e.Run(ctx, fakeJobs(8))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if len(res) != 8 {
		t.Fatalf("got %d results, want 8 (cancelled jobs still report)", len(res))
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestPerJobTimeout: Options.Timeout bounds each job independently.
func TestPerJobTimeout(t *testing.T) {
	e := New(Options{Parallel: 2, Timeout: 10 * time.Millisecond,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
			if cfg.Seed == 1 {
				return seedMetrics(cfg), nil // fast job beats the timeout
			}
			<-ctx.Done()
			return sim.Metrics{}, ctx.Err()
		}})
	res, err := e.Run(context.Background(), fakeJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Errorf("fast job failed: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, context.DeadlineExceeded) {
		t.Errorf("slow job error = %v, want deadline exceeded", res[1].Err)
	}
}

// TestRealSimCancellation: RunContext propagates into a real simulation,
// stopping a run that would otherwise take far longer than the timeout.
func TestRealSimCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real simulation")
	}
	cfg := testConfig(1)
	cfg.Duration = 500 * timing.Millisecond // would run for minutes
	e := New(Options{Parallel: 1, Timeout: 100 * time.Millisecond})
	start := time.Now()
	res, err := e.Run(context.Background(), []Job{{Key: "slow", Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", res[0].Err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", wall)
	}
}

// TestConfigHash: equal configs hash equal; any simulation-relevant
// difference changes the hash.
func TestConfigHash(t *testing.T) {
	base, err := ConfigHash(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	again, err := ConfigHash(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Fatalf("hash not deterministic: %s vs %s", base, again)
	}
	if len(base) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", base)
	}
	mutants := map[string]func(*sim.Config){
		"seed":       func(c *sim.Config) { c.Seed = 2 },
		"duration":   func(c *sim.Config) { c.Duration++ },
		"timescale":  func(c *sim.Config) { c.TimeScale = 200 },
		"scheme":     func(c *sim.Config) { *c = sim.DefaultConfig(sim.StaticScheme(pcm.Mode3SETs), c.Workload) },
		"rrm-knob":   func(c *sim.Config) { c.Scheme = sim.RRMScheme(); c.Scheme.RRM.HotThreshold = 8 },
		"ctrl":       func(c *sim.Config) { c.Ctrl.WritePausing = !c.Ctrl.WritePausing },
		"core-mshrs": func(c *sim.Config) { c.CoreMSHRs = 99 },
		"sampling": func(c *sim.Config) {
			c.Sampling = &sim.SamplingSpec{Windows: 8, Window: 10, DetailWarmup: 5}
		},
		"sampling-budget": func(c *sim.Config) {
			c.Sampling = &sim.SamplingSpec{Windows: 15, Window: 10, DetailWarmup: 5}
		},
		"sampling-stride": func(c *sim.Config) {
			c.Sampling = &sim.SamplingSpec{Windows: 8, Window: 10, DetailWarmup: 5, FFStride: 16}
		},
		"hybrid": func(c *sim.Config) {
			hc := dram.DefaultHybridConfig()
			c.Hybrid = &hc
		},
		"hybrid-capacity": func(c *sim.Config) {
			hc := dram.DefaultHybridConfig()
			hc.DRAM.CapBytes /= 2
			c.Hybrid = &hc
		},
		"hybrid-policy": func(c *sim.Config) {
			hc := dram.DefaultHybridConfig()
			hc.Migration.Policy = dram.PolicyRecency
			c.Hybrid = &hc
		},
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutants {
		cfg := testConfig(1)
		mutate(&cfg)
		h, err := ConfigHash(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutant %q hash collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// TestHashImageCoversConfig guards hashImage against drift: every
// exported field of sim.Config must have a same-named counterpart in
// hashImage, so a new config field can never be silently left out of the
// cache key (which would let two different runs alias).
func TestHashImageCoversConfig(t *testing.T) {
	img := reflect.TypeOf(hashImage{})
	imgFields := map[string]bool{}
	for i := 0; i < img.NumField(); i++ {
		imgFields[img.Field(i).Name] = true
	}
	cfg := reflect.TypeOf(sim.Config{})
	for i := 0; i < cfg.NumField(); i++ {
		name := cfg.Field(i).Name
		if !imgFields[name] {
			t.Errorf("sim.Config field %q missing from engine.hashImage: add it (and bump hashVersion)", name)
		}
	}
	scheme := reflect.TypeOf(sim.Scheme{})
	schemeImg := reflect.TypeOf(schemeImage{})
	simgFields := map[string]bool{}
	for i := 0; i < schemeImg.NumField(); i++ {
		simgFields[schemeImg.Field(i).Name] = true
	}
	for i := 0; i < scheme.NumField(); i++ {
		name := scheme.Field(i).Name
		if !simgFields[name] {
			t.Errorf("sim.Scheme field %q missing from engine.schemeImage: add it (and bump hashVersion)", name)
		}
	}
}

// TestCacheableExcludesCustom: custom-policy configs stay out of the
// disk cache.
func TestCacheableExcludesCustom(t *testing.T) {
	if !Cacheable(testConfig(1)) {
		t.Error("static config should be cacheable")
	}
	cfg := testConfig(1)
	cfg.Scheme = sim.Scheme{Kind: sim.SchemeCustom}
	if Cacheable(cfg) {
		t.Error("custom config must not be disk-cacheable")
	}
}
