package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
)

// TestRunCacheRoundTrip: Store then Load returns exactly the stored
// metrics (floats, maps, nested stats and all).
func TestRunCacheRoundTrip(t *testing.T) {
	c, err := OpenRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics{
		Scheme: "RRM", Workload: "GemsFDTD",
		SimSeconds: 0.03, TimeScale: 100,
		Instructions: 123456789, IPC: 3.14159265358979,
		PerCoreIPC: []float64{0.1, 0.2, 0.3, 0.4},
		WritesByMode: map[pcm.WriteMode]uint64{
			pcm.Mode3SETs: 42, pcm.Mode7SETs: 4242,
		},
		WearDemandRate: 1.0 / 3.0,
		LifetimeYears:  6.42,
	}
	m.RRM.FastRefreshes = 77
	if err := c.Store("k1", m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Load("k1")
	if err != nil || !ok {
		t.Fatalf("Load = ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip changed metrics:\n got %+v\nwant %+v", got, m)
	}
}

// TestRunCacheMissAndCorruption: absent keys and torn/garbage entries
// read as misses, never as errors or wrong data.
func TestRunCacheMissAndCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load("absent"); ok || err != nil {
		t.Fatalf("absent key: ok %v err %v, want miss", ok, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), []byte(`{"Format":1,"Key":"to`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Load("torn"); ok || err != nil {
		t.Fatalf("torn entry: ok %v err %v, want miss", ok, err)
	}
	// A valid entry filed under the wrong key must not serve.
	if err := c.Store("right", sim.Metrics{IPC: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "right.json"), filepath.Join(dir, "wrong.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Load("wrong"); ok {
		t.Error("entry with mismatched key served as a hit")
	}
}

// TestEngineDiskCache: a second engine pass over the same jobs and cache
// directory loads every result from disk and runs zero simulations, with
// metrics identical to the first pass.
func TestEngineDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	jobs := []Job{}
	for _, seed := range []uint64{1, 2} {
		cfg := testConfig(seed)
		key, err := ConfigHash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{Key: key, Config: cfg})
	}

	var sims atomic.Int32
	countingSim := func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		sims.Add(1)
		return RunSim(ctx, cfg)
	}
	pass := func() []Result {
		cache, err := OpenRunCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := New(Options{Parallel: 2, Cache: cache, Sim: countingSim})
		res, err := e.Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("job %d: %v", i, r.Err)
			}
		}
		return res
	}

	first := pass()
	if n := sims.Load(); n != 2 {
		t.Fatalf("first pass simulated %d, want 2", n)
	}
	if n, err := OpenRunCacheLen(dir); err != nil || n != 2 {
		t.Fatalf("cache entries = %d (%v), want 2", n, err)
	}

	second := pass()
	if n := sims.Load(); n != 2 {
		t.Errorf("second pass simulated %d more runs, want pure disk hits", n-2)
	}
	for i := range first {
		if !second[i].Cached {
			t.Errorf("job %d not served from disk cache", i)
		}
		if !reflect.DeepEqual(first[i].Metrics, second[i].Metrics) {
			t.Errorf("job %d metrics changed across cache round trip", i)
		}
	}
}

// OpenRunCacheLen counts entries in a cache directory (test helper).
func OpenRunCacheLen(dir string) (int, error) {
	c, err := OpenRunCache(dir)
	if err != nil {
		return 0, err
	}
	return c.Len()
}
