package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
)

// warmTestConfig is testConfig with the RRM scheme, which exercises the
// richest snapshot path (RRM tables, decay timers, refresh traffic).
func warmTestConfig(d timing.Time) sim.Config {
	cfg := testConfig(1)
	cfg.Scheme = sim.RRMScheme()
	cfg.Duration = d
	return cfg
}

func coldMetricsJSON(t *testing.T, cfg sim.Config) []byte {
	t.Helper()
	m, err := RunSim(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestWarmKeyEligibility(t *testing.T) {
	base := warmTestConfig(1500 * timing.Microsecond)
	if _, ok, err := WarmKey(base); err != nil || !ok {
		t.Fatalf("base config not eligible: ok=%v err=%v", ok, err)
	}
	ineligible := map[string]func(*sim.Config){
		"custom-scheme": func(c *sim.Config) { c.Scheme.Kind = sim.SchemeCustom },
		"zero-warmup":   func(c *sim.Config) { c.Warmup = 0 },
		"tiny-duration": func(c *sim.Config) { c.Duration = 3 * timing.Microsecond },
		"sampled": func(c *sim.Config) {
			c.Sampling = &sim.SamplingSpec{Windows: 4, Window: 10 * timing.Microsecond}
		},
	}
	for name, mut := range ineligible {
		cfg := base
		mut(&cfg)
		if _, ok, err := WarmKey(cfg); err != nil || ok {
			t.Errorf("%s: want ineligible, got ok=%v err=%v", name, ok, err)
		}
	}
}

// TestWarmKeyPrefix pins what the warm key covers: the measurement
// window is excluded (that is the whole point of sharing warmups), every
// warmup-relevant knob is included, and reliability-enabled configs pull
// Duration back in because their RNG stream is seeded from it.
func TestWarmKeyPrefix(t *testing.T) {
	key := func(cfg sim.Config) string {
		t.Helper()
		k, ok, err := WarmKey(cfg)
		if err != nil || !ok {
			t.Fatalf("config not eligible: ok=%v err=%v", ok, err)
		}
		return k
	}
	base := warmTestConfig(1500 * timing.Microsecond)
	long := base
	long.Duration = 3000 * timing.Microsecond
	if key(base) != key(long) {
		t.Error("configs differing only in Duration should share a warm key")
	}
	for name, mut := range map[string]func(*sim.Config){
		"seed":    func(c *sim.Config) { c.Seed = 2 },
		"warmup":  func(c *sim.Config) { c.Warmup = 600 * timing.Microsecond },
		"scheme":  func(c *sim.Config) { c.Scheme.RRM.HotThreshold = 8 },
		"devices": func(c *sim.Config) { c.Ctrl.WritePausing = !c.Ctrl.WritePausing },
	} {
		cfg := base
		mut(&cfg)
		if key(base) == key(cfg) {
			t.Errorf("%s: warmup-relevant change did not change the warm key", name)
		}
	}
	relA := base
	relA.Reliability.Enabled = true
	relB := relA
	relB.Duration = 3000 * timing.Microsecond
	if key(relA) == key(relB) {
		t.Error("reliability-enabled configs with different Durations must not share a warm key")
	}
}

// TestWarmRunSimMatchesCold runs a duration sweep through WarmRunSim and
// demands every result be bit-identical to its cold-start run, with the
// store ending up holding exactly one shared snapshot.
func TestWarmRunSimMatchesCold(t *testing.T) {
	store := NewMemSnapshotStore()
	warm := WarmRunSim(store)
	for _, d := range []timing.Time{1500, 1000, 2000} {
		cfg := warmTestConfig(d * timing.Microsecond)
		want := coldMetricsJSON(t, cfg)
		m, err := warm(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("duration %dus: warm-start result diverged from cold start", d)
		}
	}
	if n := store.Len(); n != 1 {
		t.Errorf("store holds %d snapshots, want 1 (shared warm prefix)", n)
	}
}

// TestWarmRunSimConcurrentForks hammers one shared warm prefix from many
// goroutines at once (the sweep shape the engine produces) and checks
// every fork against its cold run. Run under -race this also proves the
// snapshot blob is safe to fork concurrently.
func TestWarmRunSimConcurrentForks(t *testing.T) {
	durations := []timing.Time{1000, 1250, 1500, 1750, 2000, 1500, 1000, 1750}
	want := make([][]byte, len(durations))
	seen := map[timing.Time][]byte{}
	for i, d := range durations {
		if cached, ok := seen[d]; ok {
			want[i] = cached
			continue
		}
		want[i] = coldMetricsJSON(t, warmTestConfig(d*timing.Microsecond))
		seen[d] = want[i]
	}

	store := NewMemSnapshotStore()
	warm := WarmRunSim(store)
	got := make([][]byte, len(durations))
	errs := make([]error, len(durations))
	var wg sync.WaitGroup
	for i, d := range durations {
		wg.Add(1)
		go func(i int, d timing.Time) {
			defer wg.Done()
			m, err := warm(context.Background(), warmTestConfig(d*timing.Microsecond))
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = json.Marshal(m)
		}(i, d)
	}
	wg.Wait()
	for i := range durations {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("fork %d (duration %dus): diverged from cold start", i, durations[i])
		}
	}
	if n := store.Len(); n != 1 {
		t.Errorf("store holds %d snapshots, want 1", n)
	}
}

// TestSnapshotCacheDisk drives WarmRunSim over the disk store twice: the
// first pass writes the snapshot file, a second independent pass (a new
// process, as far as the cache can tell) forks from it.
func TestSnapshotCacheDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := warmTestConfig(1500 * timing.Microsecond)
	want := coldMetricsJSON(t, cfg)

	for pass := 0; pass < 2; pass++ {
		cache, err := OpenSnapshotCache(filepath.Join(dir, "snapshots"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := WarmRunSim(cache)(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("pass %d: warm-start result diverged from cold start", pass)
		}
	}

	key, ok, err := WarmKey(cfg)
	if err != nil || !ok {
		t.Fatalf("config not eligible: ok=%v err=%v", ok, err)
	}
	if blob, hit, err := (&SnapshotCache{dir: filepath.Join(dir, "snapshots")}).Load(key); err != nil || !hit || len(blob) == 0 {
		t.Errorf("snapshot file missing after first pass: hit=%v err=%v", hit, err)
	}
}

// corruptStore hands out a blob Restore must reject, forcing the cold
// fallback path.
type corruptStore struct{}

func (corruptStore) Load(string) ([]byte, bool, error) { return []byte("not a snapshot"), true, nil }
func (corruptStore) Store(string, []byte) error        { return fmt.Errorf("read-only") }

func TestWarmRunSimCorruptFallback(t *testing.T) {
	cfg := warmTestConfig(1500 * timing.Microsecond)
	want := coldMetricsJSON(t, cfg)
	m, err := WarmRunSim(corruptStore{})(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("corrupt-snapshot fallback diverged from cold start")
	}
}
