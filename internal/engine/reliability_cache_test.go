package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/trace"
)

// TestRunCacheLegacyFormat: format-2 entries (written before the
// reliability metrics block existed) still load — their configs could
// not have had the fault model enabled, so decoding them into the wider
// Metrics struct is lossless. Older formats stay misses.
func TestRunCacheLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	write := func(key string, format int) {
		blob, err := json.Marshal(cacheEntry{
			Format: format, Key: key, Scheme: "RRM", Workload: "mcf",
			Metrics: sim.Metrics{Scheme: "RRM", Workload: "mcf", IPC: 2.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, key+".json"), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("legacy2", 2)
	write("ancient1", 1)
	write("future", cacheFormat+1)

	if m, ok, err := c.Load("legacy2"); err != nil || !ok || m.IPC != 2.5 {
		t.Errorf("format-2 entry: ok=%v err=%v m=%+v, want a clean hit", ok, err, m)
	}
	for _, key := range []string{"ancient1", "future"} {
		if _, ok, err := c.Load(key); err != nil || ok {
			t.Errorf("%s: ok=%v err=%v, want a silent miss", key, ok, err)
		}
	}
}

// TestConfigHashReliability: disabled reliability configs hash exactly
// as they did before the model existed (their knobs are invisible), so
// every pre-reliability cache entry keeps its key; enabling the model or
// changing an enabled knob re-keys the run.
func TestConfigHashReliability(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	base := sim.DefaultConfig(sim.RRMScheme(), w)
	h0, err := ConfigHash(base)
	if err != nil {
		t.Fatal(err)
	}

	// Knob changes on a disabled model must not re-key.
	mutated := base
	mutated.Reliability.ECCBits = 8
	mutated.Reliability.ProgBitErrorProb = 0.1
	if h, _ := ConfigHash(mutated); h != h0 {
		t.Errorf("disabled reliability knobs changed the hash: %s != %s", h, h0)
	}

	enabled := base
	enabled.Reliability.Enabled = true
	h1, err := ConfigHash(enabled)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h0 {
		t.Error("enabling reliability did not change the hash")
	}

	stronger := enabled
	stronger.Reliability.ECCBits = 8
	if h2, _ := ConfigHash(stronger); h2 == h1 {
		t.Error("changing an enabled reliability knob did not change the hash")
	}
}
