package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"rrmpcm/internal/sim"
)

// cacheFormat guards entry decoding; entries written by an incompatible
// build read as misses, not errors. Format 2 switched Metrics.
// WritesByMode to mode-name keys (sim.ModeWrites). Format 3 added the
// reliability and retention_detail metrics blocks; format-2 entries can
// only exist for reliability-free configs (the config hash of an
// enabled run did not exist before format 3), so they still decode —
// see cacheFormatCompatible.
const cacheFormat = 3

// cacheFormatCompatible reports whether an on-disk entry's format can
// be decoded by this build.
func cacheFormatCompatible(format int) bool {
	return format == 2 || format == cacheFormat
}

// cacheEntry is the on-disk envelope of one cached run.
type cacheEntry struct {
	Format   int
	Key      string
	Scheme   string
	Workload string
	Metrics  sim.Metrics
}

// RunCache is a disk-backed store of finished simulation results, one
// JSON file per config hash. Writes are atomic (temp file + rename), so
// a sweep killed mid-write never leaves a torn entry; re-running the
// sweep resumes from whatever completed. The cache is safe for
// concurrent use by multiple workers and multiple processes.
type RunCache struct {
	dir string
}

// OpenRunCache opens (creating if needed) a cache rooted at dir.
func OpenRunCache(dir string) (*RunCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: opening run cache: %w", err)
	}
	return &RunCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *RunCache) Dir() string { return c.dir }

func (c *RunCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load fetches the cached metrics for key. A missing, torn, or
// format-incompatible entry is a miss (ok=false, nil error); err is
// reserved for real I/O failures.
func (c *RunCache) Load(key string) (sim.Metrics, bool, error) {
	blob, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return sim.Metrics{}, false, nil
	}
	if err != nil {
		return sim.Metrics{}, false, fmt.Errorf("engine: reading cache entry: %w", err)
	}
	var e cacheEntry
	if json.Unmarshal(blob, &e) != nil || !cacheFormatCompatible(e.Format) || e.Key != key {
		return sim.Metrics{}, false, nil
	}
	return e.Metrics, true, nil
}

// Store persists metrics under key atomically.
func (c *RunCache) Store(key string, m sim.Metrics) error {
	blob, err := json.MarshalIndent(cacheEntry{
		Format:   cacheFormat,
		Key:      key,
		Scheme:   m.Scheme,
		Workload: m.Workload,
		Metrics:  m,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("engine: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	return nil
}

// Len counts the cache's entries (diagnostics and tests).
func (c *RunCache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}
