package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/snapshot"
)

// cacheFormat guards entry decoding; entries written by an incompatible
// build read as misses, not errors. Format 2 switched Metrics.
// WritesByMode to mode-name keys (sim.ModeWrites). Format 3 added the
// reliability and retention_detail metrics blocks; format-2 entries can
// only exist for reliability-free configs (the config hash of an
// enabled run did not exist before format 3), so they still decode —
// see cacheFormatCompatible.
const cacheFormat = 3

// cacheFormatCompatible reports whether an on-disk entry's format can
// be decoded by this build.
func cacheFormatCompatible(format int) bool {
	return format == 2 || format == cacheFormat
}

// cacheEntry is the on-disk envelope of one cached run.
type cacheEntry struct {
	Format   int
	Key      string
	Scheme   string
	Workload string
	Metrics  sim.Metrics
}

// cacheTrailerPrefix introduces the integrity trailer appended after
// the entry's JSON document: one line carrying the FNV-1a checksum of
// every byte before it (the same hash the snapshot codec trails its
// blobs with). Entries written before the trailer existed (formats 2
// and 3 up to PR 5) have no trailer and decode unchecked; a present
// trailer that does not match reads as a miss, so a bit-flipped or
// truncated entry degrades to recomputation instead of decoding
// garbage.
const cacheTrailerPrefix = "\n#fnv1a:"

// EncodeRunEntry serializes one finished run into the run cache's
// on-disk format: the JSON envelope followed by the FNV-1a integrity
// trailer. It is exported so shared artifact stores can write entries
// byte-identical to a local RunCache's.
func EncodeRunEntry(key string, m sim.Metrics) ([]byte, error) {
	blob, err := json.MarshalIndent(cacheEntry{
		Format:   cacheFormat,
		Key:      key,
		Scheme:   m.Scheme,
		Workload: m.Workload,
		Metrics:  m,
	}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("engine: encoding cache entry: %w", err)
	}
	return append(blob, []byte(fmt.Sprintf("%s%016x\n", cacheTrailerPrefix, snapshot.Checksum(blob)))...), nil
}

// DecodeRunEntry parses a run-cache blob for key. A corrupt, torn,
// format-incompatible or mis-keyed entry is a miss (ok=false), never an
// error: the caller recomputes. Legacy entries without the integrity
// trailer still decode; when a trailer is present its checksum must
// match.
func DecodeRunEntry(key string, blob []byte) (sim.Metrics, bool) {
	if i := bytes.LastIndex(blob, []byte(cacheTrailerPrefix)); i >= 0 {
		var sum uint64
		if n, err := fmt.Sscanf(string(blob[i+len(cacheTrailerPrefix):]), "%016x", &sum); n != 1 || err != nil {
			return sim.Metrics{}, false
		}
		if snapshot.Checksum(blob[:i]) != sum {
			return sim.Metrics{}, false
		}
		blob = blob[:i]
	}
	var e cacheEntry
	if json.Unmarshal(blob, &e) != nil || !cacheFormatCompatible(e.Format) || e.Key != key {
		return sim.Metrics{}, false
	}
	return e.Metrics, true
}

// ResultCache is the engine's seam onto finished-run storage: Load
// answers "has this config hash already been simulated" and Store
// persists a fresh result under its hash. RunCache is the local-disk
// implementation; the cluster's shared artifact store provides another,
// so any worker can serve any result computed anywhere. Implementations
// must be safe for concurrent use; Load must report a missing entry as
// (ok=false, nil error) and reserve errors for real I/O failures.
type ResultCache interface {
	Load(key string) (sim.Metrics, bool, error)
	Store(key string, m sim.Metrics) error
}

// RunCache is a disk-backed store of finished simulation results, one
// JSON file per config hash. Writes are atomic (temp file + rename), so
// a sweep killed mid-write never leaves a torn entry; re-running the
// sweep resumes from whatever completed. The cache is safe for
// concurrent use by multiple workers and multiple processes.
type RunCache struct {
	dir string
}

// OpenRunCache opens (creating if needed) a cache rooted at dir.
func OpenRunCache(dir string) (*RunCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: opening run cache: %w", err)
	}
	return &RunCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *RunCache) Dir() string { return c.dir }

func (c *RunCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load fetches the cached metrics for key. A missing, torn, corrupt or
// format-incompatible entry is a miss (ok=false, nil error); err is
// reserved for real I/O failures.
func (c *RunCache) Load(key string) (sim.Metrics, bool, error) {
	blob, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return sim.Metrics{}, false, nil
	}
	if err != nil {
		return sim.Metrics{}, false, fmt.Errorf("engine: reading cache entry: %w", err)
	}
	m, ok := DecodeRunEntry(key, blob)
	return m, ok, nil
}

// Store persists metrics under key atomically.
func (c *RunCache) Store(key string, m sim.Metrics) error {
	blob, err := EncodeRunEntry(key, m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing cache entry: %w", err)
	}
	return nil
}

// Len counts the cache's entries (diagnostics and tests).
func (c *RunCache) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}
