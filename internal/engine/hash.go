package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/core"
	"rrmpcm/internal/dram"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// hashVersion is mixed into every hash; bump it when the simulation's
// interpretation of a config changes, so stale disk-cache entries from
// older builds stop matching.
const hashVersion = "rrmpcm-config-v1"

// hashImage is the canonical serializable view of sim.Config used for
// hashing. It mirrors sim.Config field by field (a unit test enforces
// the correspondence by reflection) with one substitution: the Custom
// policy interface, which is not serializable, is represented by its
// Name(). Configs that differ only inside an identically-named custom
// policy therefore hash alike — which is why custom-scheme jobs are
// additionally keyed by label and excluded from the disk cache.
type hashImage struct {
	Device    pcm.DeviceConfig
	Hierarchy cache.HierarchyConfig
	Ctrl      memctrl.Config
	Scheme    schemeImage
	Workload  trace.Workload

	Duration           timing.Time
	Warmup             timing.Time
	TimeScale          float64
	Seed               uint64
	HitStallFactor     float64
	CheckRetention     bool
	CoreROB            int
	CoreMSHRs          int
	EquivalentDuration timing.Time

	// Reliability is present only when the model is enabled, so every
	// reliability-free config keeps its pre-reliability hash (and its
	// older cache entries stay valid).
	Reliability *reliability.Config `json:",omitempty"`

	// Sampling is present only for sampled runs (same omitempty pattern:
	// full-run hashes — and their cache entries — are unchanged, and a
	// sampled run can never alias the full run it approximates).
	Sampling *sim.SamplingSpec `json:",omitempty"`

	// Hybrid is present only when the DRAM staging tier is enabled (same
	// omitempty pattern: every PCM-only config keeps its pre-hybrid hash
	// and the run cache/artifact store stay valid).
	Hybrid *dram.HybridConfig `json:",omitempty"`

	// Shards is present only for sharded-engine runs (same omitempty
	// pattern: serial configs keep their existing hash). Sharded results
	// are byte-identical to serial — the distinct key is deliberately
	// conservative, never incorrect.
	Shards int `json:",omitempty"`
}

// schemeImage mirrors sim.Scheme with Custom flattened to its name.
type schemeImage struct {
	Kind       int
	StaticMode int
	RRM        core.RRMConfig
	Custom     string `json:",omitempty"`
}

// ConfigHash returns the deterministic identity of a run configuration:
// the hex SHA-256 of its canonical JSON image. Two configs hash equal
// iff every simulation-relevant field matches, so a hash key can never
// alias two genuinely different runs (modulo custom-policy internals,
// see hashImage).
func ConfigHash(cfg sim.Config) (string, error) {
	img := hashImage{
		Device:    cfg.Device,
		Hierarchy: cfg.Hierarchy,
		Ctrl:      cfg.Ctrl,
		Scheme: schemeImage{
			Kind:       int(cfg.Scheme.Kind),
			StaticMode: int(cfg.Scheme.StaticMode),
			RRM:        cfg.Scheme.RRM,
		},
		Workload:           cfg.Workload,
		Duration:           cfg.Duration,
		Warmup:             cfg.Warmup,
		TimeScale:          cfg.TimeScale,
		Seed:               cfg.Seed,
		HitStallFactor:     cfg.HitStallFactor,
		CheckRetention:     cfg.CheckRetention,
		CoreROB:            cfg.CoreROB,
		CoreMSHRs:          cfg.CoreMSHRs,
		EquivalentDuration: cfg.EquivalentDuration,
	}
	if cfg.Scheme.Custom != nil {
		img.Scheme.Custom = cfg.Scheme.Custom.Name()
	}
	if cfg.Reliability.Enabled {
		rel := cfg.Reliability
		img.Reliability = &rel
	}
	if cfg.Sampling != nil {
		sp := *cfg.Sampling
		img.Sampling = &sp
	}
	if cfg.Hybrid != nil {
		hc := *cfg.Hybrid
		img.Hybrid = &hc
	}
	img.Shards = cfg.Shards
	blob, err := json.Marshal(img)
	if err != nil {
		return "", fmt.Errorf("engine: hashing config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(hashVersion))
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Cacheable reports whether a config's results may live in the disk
// cache: custom policies are excluded because the hash cannot see their
// internals.
func Cacheable(cfg sim.Config) bool {
	return cfg.Scheme.Kind != sim.SchemeCustom
}
