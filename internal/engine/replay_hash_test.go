package engine

import (
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/trace"
)

// TestConfigHashReplayDistinct: replay configs are content-addressed —
// the cache key must separate a generator run from a replay run that
// carries the same workload name, and any change to the trace set
// (path or content checksum) or the tenant map must change the key.
func TestConfigHashReplayDistinct(t *testing.T) {
	gen := testConfig(1)

	replayCfg := func() sim.Config {
		cfg := testConfig(1)
		cfg.Workload.Cores = nil
		cfg.Workload.Replay = []trace.TraceRef{
			{Path: "t/c0.rrmt", Sum: 0x1111},
			{Path: "t/c1.rrmt", Sum: 0x2222},
			{Path: "t/c2.rrmt", Sum: 0x3333},
			{Path: "t/c3.rrmt", Sum: 0x4444},
		}
		return cfg
	}

	hash := func(cfg sim.Config) string {
		t.Helper()
		h, err := ConfigHash(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	seen := map[string]string{hash(gen): "generator"}
	add := func(name string, cfg sim.Config) {
		h := hash(cfg)
		if prev, dup := seen[h]; dup {
			t.Errorf("%q hash collides with %q", name, prev)
		}
		seen[h] = name
	}

	base := replayCfg()
	add("replay", base)

	sum := replayCfg()
	sum.Workload.Replay[2].Sum++
	add("replay-other-sum", sum)

	path := replayCfg()
	path.Workload.Replay[0].Path = "t/other.rrmt"
	add("replay-other-path", path)

	ten := testConfig(1)
	ten.Workload.Tenants = []string{"a", "b", "a", "b"}
	add("tenants", ten)

	ten2 := testConfig(1)
	ten2.Workload.Tenants = []string{"a", "b", "b", "a"}
	add("tenants-swapped", ten2)

	dyn := testConfig(1)
	dyn.Workload.Dynamics = &trace.Dynamics{Phases: []trace.Phase{{Profile: "lbm", Ops: 100}}}
	add("dynamics", dyn)

	// Replay identity survives the warm-start keying too: the warmup
	// prefix of a replay run must not alias the generator's.
	wGen, ok, err := WarmKey(gen)
	if err != nil || !ok {
		t.Fatalf("WarmKey(generator) = %v, %v", ok, err)
	}
	wRep, ok, err := WarmKey(base)
	if err != nil || !ok {
		t.Fatalf("WarmKey(replay) = %v, %v", ok, err)
	}
	if wGen == wRep {
		t.Error("replay warm key aliases the generator's")
	}
}
