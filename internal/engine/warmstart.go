package engine

// This file is the warm-start layer: sweep jobs that differ only in
// post-warmup knobs (measurement window, equivalent duration) share one
// warm checkpoint — the first job to need a given warmup prefix
// simulates it once, snapshots the warmed system (sim.System.Snapshot),
// and every later job forks from the snapshot instead of re-simulating
// the prefix. Restored forks are bit-identical to straight-through runs
// (sim's golden equivalence tests), so warm-start changes wall-clock
// only, never results.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"rrmpcm/internal/cpu"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
)

// warmHashVersion guards the warm-key space: bump it whenever the
// snapshot encoding or the simulation's warmup behavior changes, so
// stale disk snapshots from older builds stop matching.
const warmHashVersion = "rrmpcm-warm-v4" // v4: sim snapshot format 4 (shard-mailbox section)

// warmImage is the warmup-relevant prefix of a config: hashImage minus
// the knobs that only matter after the warmup boundary (Duration,
// EquivalentDuration). Two configs with equal warmImages reach the
// warmup boundary in bit-identical state, so they can share a snapshot.
type warmImage struct {
	hashImage

	// WarmDuration re-includes Duration for reliability-enabled configs
	// only: the reliability RNG stream is seeded from a mix that
	// includes Duration (sim.Config.reliabilitySeed), so those warmups
	// are not duration-independent.
	WarmDuration timing.Time `json:",omitempty"`
}

// WarmKey returns the deterministic identity of a config's warmup
// prefix, or ok=false when the config is not warm-start eligible:
// custom schemes (unserializable policy state), zero warmup (nothing to
// share), and measurement windows short enough that a core could hit
// its stop horizon during warmup (which would make warmup behavior
// depend on Duration).
func WarmKey(cfg sim.Config) (string, bool, error) {
	if cfg.Scheme.Kind == sim.SchemeCustom || cfg.Warmup <= 0 {
		return "", false, nil
	}
	// Sampled runs are not warm-start eligible: the sampling executor
	// does its own snapshotting and the warm-prefix sharing would buy
	// nothing — so a sampled config is always WarmKey-distinct from the
	// full run it approximates (it has no warm key at all).
	if cfg.Sampling != nil {
		return "", false, nil
	}
	// During warmup a core's local clock can lead the event clock by up
	// to one scheduling quantum, and the stop horizon sits one Duration
	// past the warmup boundary; two quanta of slack keep every eligible
	// warmup duration-independent.
	if cfg.Duration < 2*cpu.DefaultConfig(0).Quantum {
		return "", false, nil
	}
	img := warmImage{}
	img.hashImage = hashImage{
		Device:    cfg.Device,
		Hierarchy: cfg.Hierarchy,
		Ctrl:      cfg.Ctrl,
		Scheme: schemeImage{
			Kind:       int(cfg.Scheme.Kind),
			StaticMode: int(cfg.Scheme.StaticMode),
			RRM:        cfg.Scheme.RRM,
		},
		Workload:       cfg.Workload,
		Warmup:         cfg.Warmup,
		TimeScale:      cfg.TimeScale,
		Seed:           cfg.Seed,
		HitStallFactor: cfg.HitStallFactor,
		CheckRetention: cfg.CheckRetention,
		CoreROB:        cfg.CoreROB,
		CoreMSHRs:      cfg.CoreMSHRs,
	}
	if cfg.Reliability.Enabled {
		rel := cfg.Reliability
		img.Reliability = &rel
		img.WarmDuration = cfg.Duration
	}
	if cfg.Hybrid != nil {
		// The staging tier's residency forms during warmup: hybrid
		// configs only share snapshots with identical hybrid settings.
		hc := *cfg.Hybrid
		img.Hybrid = &hc
	}
	blob, err := json.Marshal(img)
	if err != nil {
		return "", false, fmt.Errorf("engine: hashing warm prefix: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(warmHashVersion))
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), true, nil
}

// SnapshotStore persists warm-system snapshot blobs keyed by WarmKey.
// Implementations must be safe for concurrent use.
type SnapshotStore interface {
	// Load fetches the blob for key; a missing entry is ok=false with a
	// nil error.
	Load(key string) ([]byte, bool, error)
	// Store persists blob under key.
	Store(key string, blob []byte) error
}

// SnapshotCache is the disk-backed SnapshotStore, one binary file per
// warm key beside the run cache. Writes are atomic (temp file + rename)
// so concurrent processes and killed sweeps never leave torn snapshots;
// the blob's own checksum rejects any corruption Load cannot see.
type SnapshotCache struct {
	dir string
}

// OpenSnapshotCache opens (creating if needed) a snapshot cache at dir.
func OpenSnapshotCache(dir string) (*SnapshotCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: empty snapshot cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: opening snapshot cache: %w", err)
	}
	return &SnapshotCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *SnapshotCache) Dir() string { return c.dir }

func (c *SnapshotCache) path(key string) string {
	return filepath.Join(c.dir, key+".snap")
}

// Load implements SnapshotStore.
func (c *SnapshotCache) Load(key string) ([]byte, bool, error) {
	blob, err := os.ReadFile(c.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("engine: reading snapshot: %w", err)
	}
	return blob, true, nil
}

// Store implements SnapshotStore.
func (c *SnapshotCache) Store(key string, blob []byte) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	return nil
}

// MemSnapshotStore is an in-process SnapshotStore (no disk cache
// configured, benchmarks, tests).
type MemSnapshotStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemSnapshotStore returns an empty in-memory store.
func NewMemSnapshotStore() *MemSnapshotStore {
	return &MemSnapshotStore{blobs: make(map[string][]byte)}
}

// Load implements SnapshotStore.
func (s *MemSnapshotStore) Load(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[key]
	return blob, ok, nil
}

// Store implements SnapshotStore.
func (s *MemSnapshotStore) Store(key string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[key] = blob
	return nil
}

// Len reports the number of stored snapshots (tests).
func (s *MemSnapshotStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// WarmRunSim returns a SimFunc that shares warmup across jobs through
// store. The first job needing a given warm prefix simulates the warmup
// under a per-key lock, snapshots the warmed system, stores the blob and
// measures straight on; concurrent jobs with the same prefix wait for
// the snapshot instead of duplicating the warmup, then fork from it.
// Ineligible configs, store failures and corrupt blobs all degrade to a
// plain cold-start run — warm-start is purely an optimization.
func WarmRunSim(store SnapshotStore) SimFunc {
	var mu sync.Mutex
	locks := make(map[string]*sync.Mutex)
	keyLock := func(key string) *sync.Mutex {
		mu.Lock()
		defer mu.Unlock()
		l := locks[key]
		if l == nil {
			l = &sync.Mutex{}
			locks[key] = l
		}
		return l
	}
	return func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		key, ok, err := WarmKey(cfg)
		if err != nil || !ok {
			return RunSim(ctx, cfg)
		}
		l := keyLock(key)
		l.Lock()
		blob, hit, _ := store.Load(key) // load errors degrade to misses
		if !hit {
			// Produce the shared snapshot, then measure this job from
			// the live (already warm) system — no restore round-trip.
			sys, err := sim.New(cfg)
			if err != nil {
				l.Unlock()
				return sim.Metrics{}, err
			}
			if err := sys.Warmup(ctx); err != nil {
				l.Unlock()
				return sim.Metrics{}, err
			}
			if blob, err := sys.Snapshot(); err == nil {
				if err := store.Store(key, blob); err != nil {
					// Best-effort: later jobs re-warm.
					_ = err
				}
			}
			l.Unlock()
			return sys.Measure(ctx)
		}
		l.Unlock()
		sys, err := sim.New(cfg)
		if err != nil {
			return sim.Metrics{}, err
		}
		if err := sys.Restore(blob); err != nil {
			// Stale or corrupt snapshot (encoding change, torn disk
			// state): fall back to a cold run.
			return RunSim(ctx, cfg)
		}
		return sys.Measure(ctx)
	}
}
