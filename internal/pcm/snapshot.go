package pcm

import "rrmpcm/internal/snapshot"

const (
	snapWearSection   = 0x5057 // "PW"
	snapEnergySection = 0x5045 // "PE"
)

// Snapshot writes the wear state. The per-region array is huge (one
// u32 per 4 KB of simulated memory: 2 M entries for the default 8 GB
// device) but overwhelmingly zero after a warmup window, so it is
// encoded sparsely as (index, value) pairs of the nonzero entries —
// deterministic because the scan is in index order.
func (t *WearTracker) Snapshot(w *snapshot.Writer) {
	w.Section(snapWearSection)
	for _, v := range t.byKind {
		w.U64(v)
	}
	for _, v := range t.byMode {
		w.U64(v)
	}
	w.U32(uint32(len(t.bankWear)))
	for _, v := range t.bankWear {
		w.U64(v)
	}
	nonzero := uint32(0)
	for _, v := range t.regionWear {
		if v != 0 {
			nonzero++
		}
	}
	w.U32(uint32(len(t.regionWear)))
	w.U32(nonzero)
	for i, v := range t.regionWear {
		if v != 0 {
			w.U32(uint32(i))
			w.U32(v)
		}
	}
}

// Restore loads wear state into a tracker for the same device geometry.
func (t *WearTracker) Restore(r *snapshot.Reader) {
	r.Section(snapWearSection)
	for i := range t.byKind {
		t.byKind[i] = r.U64()
	}
	for i := range t.byMode {
		t.byMode[i] = r.U64()
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(t.bankWear) {
		r.Fail("wear: snapshot has %d banks, live tracker %d", n, len(t.bankWear))
		return
	}
	for i := range t.bankWear {
		t.bankWear[i] = r.U64()
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(t.regionWear) {
		r.Fail("wear: snapshot has %d regions, live tracker %d", n, len(t.regionWear))
		return
	}
	for i := range t.regionWear {
		t.regionWear[i] = 0
	}
	nonzero := r.Count(len(t.regionWear))
	for i := 0; i < nonzero; i++ {
		idx := r.U32()
		val := r.U32()
		if r.Err() != nil {
			return
		}
		if int(idx) >= len(t.regionWear) {
			r.Fail("wear: region index %d out of range %d", idx, len(t.regionWear))
			return
		}
		t.regionWear[idx] = val
	}
}

// Snapshot writes the energy accumulators (float64 bit patterns, so the
// restored sums are bit-exact).
func (e *EnergyMeter) Snapshot(w *snapshot.Writer) {
	w.Section(snapEnergySection)
	for _, v := range e.writeJ {
		w.F64(v)
	}
	w.F64(e.readJ)
	w.U64(e.readOps)
	for _, v := range e.writeOps {
		w.U64(v)
	}
}

// Restore loads state written by Snapshot.
func (e *EnergyMeter) Restore(r *snapshot.Reader) {
	r.Section(snapEnergySection)
	for i := range e.writeJ {
		e.writeJ[i] = r.F64()
	}
	e.readJ = r.F64()
	e.readOps = r.U64()
	for i := range e.writeOps {
		e.writeOps[i] = r.U64()
	}
}
