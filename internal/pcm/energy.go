package pcm

// Energy accounting.
//
// Absolute write energy is anchored to the circuit parameters of the 20 nm
// chip (1.8 V supply, Table I currents and pulse widths) and the relative
// energies of the modes follow Table I's normalized-energy column, which
// comes from Li et al.'s cell energy model. Reads are tracked too, but the
// paper's Figure 10 reports only write + refresh energy.

// SupplyVoltage is the PCM write supply (the ISSCC 2012 chip is a 1.8 V
// part).
const SupplyVoltage = 1.8

// CellBits is the number of digital bits stored per MLC cell.
const CellBits = 2

// cellWriteEnergy7 returns the absolute per-cell energy of a 7-SETs write
// in joules: the RESET pulse plus seven SET iterations at the Table I
// current.
func cellWriteEnergy7() float64 {
	reset := SupplyVoltage * ResetCurrentUA * 1e-6 * ResetPulse.Seconds()
	set := SupplyVoltage * Spec(Mode7SETs).SetCurrentUA * 1e-6 * SetPulse.Seconds() * 7
	return reset + set
}

// CellWriteEnergy returns the absolute per-cell write energy of mode m in
// joules: the mode-7 anchor scaled by the Table I normalized energy.
func CellWriteEnergy(m WriteMode) float64 {
	return cellWriteEnergy7() * Spec(m).NormEnergy
}

// ReadEnergyPerCell is the sensing energy per cell read, in joules. PCM
// reads are low-current resistive senses; 1 pJ/cell is a representative
// figure and only affects the (unreported) read-energy line.
const ReadEnergyPerCell = 1e-12

// BlockWriteEnergy returns the energy of writing one memory block of
// blockBytes bytes with mode m, in joules.
func BlockWriteEnergy(blockBytes uint64, m WriteMode) float64 {
	cells := float64(blockBytes*8) / CellBits
	return cells * CellWriteEnergy(m)
}

// BlockReadEnergy returns the energy of reading one memory block, in
// joules.
func BlockReadEnergy(blockBytes uint64) float64 {
	cells := float64(blockBytes*8) / CellBits
	return cells * ReadEnergyPerCell
}

// EnergyMeter accumulates memory energy by cause.
type EnergyMeter struct {
	blockBytes uint64

	writeJ   [numWearKinds]float64
	readJ    float64
	readOps  uint64
	writeOps [numWearKinds]uint64
}

// NewEnergyMeter returns a meter for the given block size.
func NewEnergyMeter(blockBytes uint64) *EnergyMeter {
	return &EnergyMeter{blockBytes: blockBytes}
}

// AddBlockWrite charges one block write of mode m caused by kind.
func (e *EnergyMeter) AddBlockWrite(m WriteMode, kind WearKind) {
	e.writeJ[kind] += BlockWriteEnergy(e.blockBytes, m)
	e.writeOps[kind]++
}

// AddBlockWrites charges count identical block writes at once (analytic
// refresh streams).
func (e *EnergyMeter) AddBlockWrites(count uint64, m WriteMode, kind WearKind) {
	e.writeJ[kind] += float64(count) * BlockWriteEnergy(e.blockBytes, m)
	e.writeOps[kind] += count
}

// AddBlockRead charges one block read.
func (e *EnergyMeter) AddBlockRead() {
	e.readJ += BlockReadEnergy(e.blockBytes)
	e.readOps++
}

// WriteEnergy returns joules consumed by writes of the given kind.
func (e *EnergyMeter) WriteEnergy(kind WearKind) float64 { return e.writeJ[kind] }

// DemandWriteEnergy returns joules of program-demand writes.
func (e *EnergyMeter) DemandWriteEnergy() float64 { return e.writeJ[WearDemandWrite] }

// RefreshEnergy returns joules of all refresh causes combined (RRM fast
// refresh, decay/eviction slow refresh, global refresh).
func (e *EnergyMeter) RefreshEnergy() float64 {
	return e.writeJ[WearRRMRefresh] + e.writeJ[WearSlowRefresh] + e.writeJ[WearGlobalRefresh]
}

// ReadEnergy returns joules of reads.
func (e *EnergyMeter) ReadEnergy() float64 { return e.readJ }

// TotalEnergy returns all accounted joules.
func (e *EnergyMeter) TotalEnergy() float64 {
	t := e.readJ
	for _, j := range e.writeJ {
		t += j
	}
	return t
}
