package pcm

import (
	"testing"

	"rrmpcm/internal/timing"
)

func TestTable1Latencies(t *testing.T) {
	// Table I latency column, and the paper's claim that every write is
	// one 100 ns RESET plus 150 ns SET iterations.
	want := map[WriteMode]timing.Time{
		Mode3SETs: 550 * timing.Nanosecond,
		Mode4SETs: 700 * timing.Nanosecond,
		Mode5SETs: 850 * timing.Nanosecond,
		Mode6SETs: 1000 * timing.Nanosecond,
		Mode7SETs: 1150 * timing.Nanosecond,
	}
	for m, w := range want {
		if got := Latency(m); got != w {
			t.Errorf("%v latency = %v, want %v", m, got, w)
		}
		if got := PulseLatency(m.Sets()); got != w {
			t.Errorf("PulseLatency(%d) = %v, want %v", m.Sets(), got, w)
		}
	}
}

func TestTable1Retentions(t *testing.T) {
	want := map[WriteMode]float64{ // seconds
		Mode3SETs: 2.01,
		Mode4SETs: 24.05,
		Mode5SETs: 104.4,
		Mode6SETs: 991.4,
		Mode7SETs: 3054.9,
	}
	for m, w := range want {
		got := Retention(m).Seconds()
		if diff := got - w; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v retention = %gs, want %gs", m, got, w)
		}
	}
}

func TestRetentionMonotone(t *testing.T) {
	modes := Modes()
	for i := 1; i < len(modes); i++ {
		if Retention(modes[i]) <= Retention(modes[i-1]) {
			t.Errorf("retention not increasing: %v=%v, %v=%v",
				modes[i-1], Retention(modes[i-1]), modes[i], Retention(modes[i]))
		}
		if Latency(modes[i]) <= Latency(modes[i-1]) {
			t.Errorf("latency not increasing with SET count")
		}
		if Spec(modes[i]).SetCurrentUA >= Spec(modes[i-1]).SetCurrentUA {
			t.Errorf("SET current should decrease with more iterations")
		}
	}
}

func TestModeValidity(t *testing.T) {
	for _, m := range Modes() {
		if !m.Valid() {
			t.Errorf("%v should be valid", m)
		}
	}
	for _, m := range []WriteMode{0, 1, 2, 8, -1} {
		if m.Valid() {
			t.Errorf("WriteMode(%d) should be invalid", int(m))
		}
	}
}

func TestSpecPanicsOnInvalidMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Spec(2) did not panic")
		}
	}()
	Spec(WriteMode(2))
}

func TestModeString(t *testing.T) {
	if s := Mode7SETs.String(); s != "7-SETs-Write" {
		t.Errorf("String = %q", s)
	}
	if s := WriteMode(9).String(); s != "WriteMode(9)" {
		t.Errorf("invalid String = %q", s)
	}
}

func TestDriftModelReproducesTable1(t *testing.T) {
	m := DefaultDriftModel()
	specs, err := m.DeriveModeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 5 {
		t.Fatalf("derived %d modes, want 5", len(specs))
	}
	for _, s := range specs {
		want := Spec(s.Mode)
		if s.Latency != want.Latency {
			t.Errorf("%v derived latency %v, want %v", s.Mode, s.Latency, want.Latency)
		}
		rel := (s.Retention.Seconds() - want.Retention.Seconds()) / want.Retention.Seconds()
		if rel > 0.005 || rel < -0.005 {
			t.Errorf("%v derived retention %.2fs, want %.2fs (rel err %.4f)",
				s.Mode, s.Retention.Seconds(), want.Retention.Seconds(), rel)
		}
	}
}

func TestDriftPrecisionImprovesWithIterations(t *testing.T) {
	m := DefaultDriftModel()
	for i := 1; i < len(m.SigmaLog10); i++ {
		if m.SigmaLog10[i] >= m.SigmaLog10[i-1] {
			t.Errorf("sigma should shrink with more SET iterations: %v", m.SigmaLog10)
		}
	}
	for _, s := range m.SigmaLog10 {
		if s <= 0 || s > m.GuardbandMax/m.KSigma {
			t.Errorf("sigma %v outside physical range", s)
		}
	}
}

func TestDriftExpired(t *testing.T) {
	m := DefaultDriftModel()
	for _, mode := range Modes() {
		ret := Retention(mode)
		if m.Expired(mode.Sets(), ret/2) {
			t.Errorf("%v expired at half its retention", mode)
		}
		if !m.Expired(mode.Sets(), ret*2) {
			t.Errorf("%v not expired at double its retention", mode)
		}
	}
	if !m.Expired(99, timing.Second) {
		t.Error("unknown SET count should be treated as expired")
	}
}

func TestDriftShiftMonotone(t *testing.T) {
	m := DefaultDriftModel()
	if m.DriftedShift(0) != 0 {
		t.Error("zero elapsed time must have zero drift")
	}
	prev := -1.0
	for _, tt := range []timing.Time{timing.Microsecond, timing.Millisecond, timing.Second, 100 * timing.Second} {
		d := m.DriftedShift(tt)
		if d <= prev {
			t.Errorf("drift not increasing at %v", tt)
		}
		prev = d
	}
}

func TestGuardbandErrors(t *testing.T) {
	m := DefaultDriftModel()
	if _, err := m.Guardband(2); err == nil {
		t.Error("Guardband(2) should error")
	}
	if _, err := m.Retention(8); err == nil {
		t.Error("Retention(8) should error")
	}
	if g, err := m.Guardband(7); err != nil || g <= 0 {
		t.Errorf("Guardband(7) = %v, %v", g, err)
	}
}
