package pcm

import (
	"testing"
	"testing/quick"
)

func TestDefaultDeviceConfigValid(t *testing.T) {
	cfg := DefaultDeviceConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.TotalBlocks(); got != (8<<30)/64 {
		t.Errorf("TotalBlocks = %d, want %d", got, (8<<30)/64)
	}
	if got := cfg.TotalBanks(); got != 64 {
		t.Errorf("TotalBanks = %d, want 64", got)
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	bad := []func(*DeviceConfig){
		func(c *DeviceConfig) { c.MemBytes = 3 << 30 },
		func(c *DeviceConfig) { c.Channels = 3 },
		func(c *DeviceConfig) { c.Banks = 0 },
		func(c *DeviceConfig) { c.RowBufBytes = c.RowBytes * 2 },
		func(c *DeviceConfig) { c.BlockBytes = c.RowBufBytes * 2 },
		func(c *DeviceConfig) { c.MemBytes = 1 << 10 },
		func(c *DeviceConfig) { c.EnduranceWrites = 0 },
		func(c *DeviceConfig) { c.WearLevelEfficiency = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultDeviceConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
}

func TestAddressMapRoundTrip(t *testing.T) {
	amap, err := NewAddressMap(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		addr := raw & (amap.Config().MemBytes - 1)
		return amap.Encode(amap.Decode(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressMapRanges(t *testing.T) {
	cfg := DefaultDeviceConfig()
	amap, err := NewAddressMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		l := amap.Decode(raw)
		return l.Channel >= 0 && l.Channel < cfg.Channels &&
			l.Bank >= 0 && l.Bank < cfg.Banks &&
			l.Offset < cfg.RowBufBytes &&
			l.Segment >= 0 && uint64(l.Segment) < cfg.RowBytes/cfg.RowBufBytes &&
			l.GlobalBank(cfg) < cfg.TotalBanks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressMapInterleaving(t *testing.T) {
	amap, err := NewAddressMap(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive bytes within one 1 KB segment share a location.
	a, b := amap.Decode(0), amap.Decode(1023)
	if a != b {
		b.Offset = a.Offset
		if a != b {
			t.Errorf("bytes 0 and 1023 in different segments: %+v vs %+v", amap.Decode(0), amap.Decode(1023))
		}
	}
	// The next 1 KB segment rotates to the next channel.
	c := amap.Decode(1024)
	if c.Channel != (a.Channel+1)%4 {
		t.Errorf("segment 1 on channel %d, want %d", c.Channel, (a.Channel+1)%4)
	}
	// A 4 KB page spans exactly the 4 channels with one segment each,
	// landing on the same bank in each — the hot-page bank-pressure
	// property the contention model relies on.
	banks := map[int]bool{}
	chans := map[int]bool{}
	for off := uint64(0); off < 4096; off += 1024 {
		l := amap.Decode(off)
		banks[l.Bank] = true
		chans[l.Channel] = true
	}
	if len(banks) != 1 {
		t.Errorf("4 KB page touches %d banks, want 1", len(banks))
	}
	if len(chans) != 4 {
		t.Errorf("4 KB page touches %d channels, want 4", len(chans))
	}
}

func TestAddressMapWraps(t *testing.T) {
	cfg := DefaultDeviceConfig()
	amap, err := NewAddressMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if amap.Decode(cfg.MemBytes+5) != amap.Decode(5) {
		t.Error("addresses should wrap modulo memory size")
	}
	if amap.BlockAddr(cfg.MemBytes) != 0 {
		t.Error("BlockAddr should wrap")
	}
}

func TestRowBufferTag(t *testing.T) {
	amap, err := NewAddressMap(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if amap.RowBufferTag(100) != amap.RowBufferTag(1000) {
		t.Error("same 1 KB segment must share a row buffer tag")
	}
	if amap.RowBufferTag(100) == amap.RowBufferTag(5000) {
		t.Error("different segments must not share a row buffer tag")
	}
}

func TestSmallGeometry(t *testing.T) {
	cfg := DeviceConfig{
		MemBytes: 1 << 20, Channels: 2, Banks: 4,
		RowBytes: 4 << 10, RowBufBytes: 512, BlockBytes: 64,
		EnduranceWrites: 1e6, WearLevelEfficiency: 0.9,
	}
	amap, err := NewAddressMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for addr := uint64(0); addr < cfg.MemBytes; addr += 512 {
		l := amap.Decode(addr)
		key := uint64(l.GlobalBank(cfg))<<40 | l.Row<<8 | uint64(l.Segment)
		if seen[key] {
			t.Fatalf("segment collision at addr %d", addr)
		}
		seen[key] = true
	}
	if len(seen) != int(cfg.MemBytes/512) {
		t.Errorf("decoded %d distinct segments, want %d", len(seen), cfg.MemBytes/512)
	}
}

func TestWearTracker(t *testing.T) {
	amap, err := NewAddressMap(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearTracker(amap)
	w.RecordBlockWrite(0, Mode7SETs, WearDemandWrite)
	w.RecordBlockWrite(64, Mode3SETs, WearDemandWrite)
	w.RecordBlockWrite(0, Mode3SETs, WearRRMRefresh)
	w.AddAnalytic(1000, Mode7SETs, WearGlobalRefresh)

	if got := w.ByKind(WearDemandWrite); got != 2 {
		t.Errorf("demand wear = %d, want 2", got)
	}
	if got := w.ByKind(WearRRMRefresh); got != 1 {
		t.Errorf("rrm wear = %d, want 1", got)
	}
	if got := w.ByKind(WearGlobalRefresh); got != 1000 {
		t.Errorf("global wear = %d, want 1000", got)
	}
	if got := w.ByMode(Mode3SETs); got != 2 {
		t.Errorf("mode-3 writes = %d, want 2", got)
	}
	if got := w.ByMode(Mode7SETs); got != 1001 {
		t.Errorf("mode-7 writes = %d, want 1001", got)
	}
	if got := w.Total(); got != 1003 {
		t.Errorf("total = %d, want 1003", got)
	}
	max, touched := w.MaxRegionWear()
	if max != 3 || touched != 1 {
		t.Errorf("max/touched = %d/%d, want 3/1 (both addresses in region 0)", max, touched)
	}
}

func TestWearHistogram(t *testing.T) {
	amap, err := NewAddressMap(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearTracker(amap)
	for i := 0; i < 5; i++ { // region 0 gets 5 writes -> bucket 2^3
		w.RecordBlockWrite(0, Mode7SETs, WearDemandWrite)
	}
	w.RecordBlockWrite(RegionBytes, Mode7SETs, WearDemandWrite) // region 1: 1 write -> 2^0
	zero, buckets := w.RegionWearHistogram()
	total := uint64(len(w.regionWear))
	if zero != total-2 {
		t.Errorf("zero regions = %d, want %d", zero, total-2)
	}
	if buckets[0] != 1 {
		t.Errorf("bucket[0] = %d, want 1", buckets[0])
	}
	if buckets[3] != 1 {
		t.Errorf("bucket[3] = %d, want 1 (5 writes rounds up to 8)", buckets[3])
	}
}

func TestWearKindString(t *testing.T) {
	for _, k := range WearKinds() {
		if k.String() == "" || k.String()[0] == 'W' {
			t.Errorf("kind %d has bad name %q", int(k), k.String())
		}
	}
	if WearKind(99).String() != "WearKind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestBankWearAttribution(t *testing.T) {
	cfg := DefaultDeviceConfig()
	amap, err := NewAddressMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearTracker(amap)
	// A 4 KB page's writes land on one bank index across 4 channels.
	for off := uint64(0); off < 4096; off += 64 {
		w.RecordBlockWrite(off, Mode3SETs, WearDemandWrite)
	}
	bw := w.BankWear()
	nonzero := 0
	for _, v := range bw {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Errorf("page writes spread over %d global banks, want 4 (one per channel)", nonzero)
	}
}
