package pcm

import (
	"fmt"
	"math"
	"sync"

	"rrmpcm/internal/timing"
)

// DriftModel derives the retention column of Table I from the resistance
// drift law instead of treating it as an opaque constant.
//
// A programmed MLC cell's resistance drifts upward as
//
//	log10 R(t) = log10 R0 + Nu * log10(t/T0)
//
// (chalcogenide structural relaxation; Ielmini's power law, as used by the
// scrubbing model of Awasthi et al. that the paper builds on). Data is lost
// once the drifted resistance crosses the guardband between adjacent
// levels. Writing with more SET iterations is a program-and-verify loop
// that narrows the programmed distribution (smaller SigmaLog10), leaving a
// wider effective guardband and therefore exponentially more drift time:
//
//	retention(n) = T0 * 10^((GuardbandMax - KSigma*SigmaLog10[n]) / Nu)
//
// The per-iteration programming precisions SigmaLog10 are device constants
// re-derived from the 20 nm chip data; with the defaults below the model
// reproduces Table I's retention column exactly (see drift tests).
type DriftModel struct {
	// Nu is the drift exponent (log-resistance decades per decade of
	// time). Intermediate MLC states show Nu around 0.1.
	Nu float64
	// T0 is the drift reference time.
	T0 timing.Time
	// GuardbandMax is the full inter-level separation budget in
	// log10-resistance decades.
	GuardbandMax float64
	// KSigma is the multiple of the programmed-distribution sigma that
	// must fit inside the level before the guardband starts (tail
	// tolerance of the program-and-verify loop).
	KSigma float64
	// SigmaLog10[n-3] is the programmed log10-resistance standard
	// deviation after n SET iterations, n in [3,7].
	SigmaLog10 [5]float64
}

// DefaultDriftModel returns the calibrated model. Its constants are chosen
// once (Nu=0.1, T0=1s, 0.40-decade level separation, 3-sigma tails) and the
// five programming precisions follow from the 20 nm chip's retention data.
func DefaultDriftModel() DriftModel {
	m := DriftModel{
		Nu:           0.10,
		T0:           timing.Second,
		GuardbandMax: 0.40,
		KSigma:       3.0,
	}
	// Device programming precision per SET count, in log10-R decades.
	// These are the values that the drift law maps back onto Table I.
	for i, mode := range Modes() {
		ret := Spec(mode).Retention
		g := m.Nu * math.Log10(float64(ret)/float64(m.T0))
		m.SigmaLog10[i] = (m.GuardbandMax - g) / m.KSigma
	}
	return m
}

// Guardband returns the effective drift guardband (log10 decades) left
// after programming with the given number of SET iterations.
func (m DriftModel) Guardband(sets int) (float64, error) {
	if sets < Fastest.Sets() || sets > Slowest.Sets() {
		return 0, fmt.Errorf("pcm: drift model has no precision data for %d SET iterations", sets)
	}
	return m.GuardbandMax - m.KSigma*m.SigmaLog10[sets-Fastest.Sets()], nil
}

// Retention returns the drift-limited retention time for a write with the
// given number of SET iterations.
func (m DriftModel) Retention(sets int) (timing.Time, error) {
	g, err := m.Guardband(sets)
	if err != nil {
		return 0, err
	}
	return timing.Time(float64(m.T0) * math.Pow(10, g/m.Nu)), nil
}

// DriftedShift returns the log10-resistance shift after elapsed time t for
// a cell written at time 0. Exposed for the retention checker and tests.
func (m DriftModel) DriftedShift(t timing.Time) float64 {
	if t <= 0 {
		return 0
	}
	return m.Nu * math.Log10(float64(t)/float64(m.T0))
}

// Expired reports whether data written with the given SET count has
// drifted out of its guardband after elapsed time t.
func (m DriftModel) Expired(sets int, t timing.Time) bool {
	g, err := m.Guardband(sets)
	if err != nil {
		return true
	}
	return m.DriftedShift(t) > g
}

// qTail is the standard-normal upper tail Q(z) = P(X > z).
func qTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// BitErrorProb returns the probability that one stored bit, written with
// the given SET count, reads wrong after elapsed time t.
//
// The programmed log10-resistance is Gaussian with deviation SigmaLog10
// truncated at KSigma by the program-and-verify loop (cells further out
// are re-programmed), and every cell then drifts upward by DriftedShift.
// A bit is misread once its drifted resistance crosses the full level
// separation GuardbandMax, so the error probability is the truncated
// upper tail past GuardbandMax - shift:
//
//	p(t) = (Q(z) - Q(KSigma)) / (1 - Q(KSigma)),  z = (GuardbandMax - shift(t)) / sigma
//
// p is exactly 0 while the drifted shift stays inside the effective
// guardband (z >= KSigma, i.e. t <= retention), rises continuously from
// 0 at the retention deadline, and is monotone in t — the property the
// reliability fault injector and its tests rely on.
func (m DriftModel) BitErrorProb(sets int, t timing.Time) (float64, error) {
	g, err := m.Guardband(sets)
	if err != nil {
		return 0, err
	}
	shift := m.DriftedShift(t)
	if shift <= g {
		return 0, nil
	}
	sigma := m.SigmaLog10[sets-Fastest.Sets()]
	qk := qTail(m.KSigma)
	p := (qTail((m.GuardbandMax-shift)/sigma) - qk) / (1 - qk)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return p, nil
}

// DriftTable is the memoized form of a DriftModel: the guardband and
// retention of every write mode evaluated once, so hot loops (retention
// checkers, refresh policies, mode-table sweeps) ask drift questions
// with array lookups and integer compares instead of re-running
// math.Pow/math.Log10 per call. Values are identical to the model's —
// they are produced by the same methods, just hoisted out of the loop.
type DriftTable struct {
	model     DriftModel
	guardband [5]float64
	retention [5]timing.Time

	// Truncated-Gaussian tail constants of BitErrorProb, hoisted so the
	// per-read fault-injection path pays one log10 and one erfc, never a
	// re-derivation of the truncation normalizer.
	invSigma [5]float64
	qK       float64 // Q(KSigma)
	invTail  float64 // 1 / (1 - Q(KSigma))
}

// Table memoizes the model into a DriftTable.
func (m DriftModel) Table() (DriftTable, error) {
	t := DriftTable{model: m}
	for i, mode := range Modes() {
		g, err := m.Guardband(mode.Sets())
		if err != nil {
			return DriftTable{}, err
		}
		ret, err := m.Retention(mode.Sets())
		if err != nil {
			return DriftTable{}, err
		}
		t.guardband[i] = g
		t.retention[i] = ret
		t.invSigma[i] = 1 / m.SigmaLog10[i]
	}
	t.qK = qTail(m.KSigma)
	t.invTail = 1 / (1 - t.qK)
	return t, nil
}

// Model returns the model the table was built from.
func (t DriftTable) Model() DriftModel { return t.model }

// Guardband returns the memoized effective guardband for a SET count.
func (t DriftTable) Guardband(sets int) (float64, error) {
	if sets < Fastest.Sets() || sets > Slowest.Sets() {
		return 0, fmt.Errorf("pcm: drift table has no entry for %d SET iterations", sets)
	}
	return t.guardband[sets-Fastest.Sets()], nil
}

// Retention returns the memoized drift-limited retention for a SET count.
func (t DriftTable) Retention(sets int) (timing.Time, error) {
	if sets < Fastest.Sets() || sets > Slowest.Sets() {
		return 0, fmt.Errorf("pcm: drift table has no entry for %d SET iterations", sets)
	}
	return t.retention[sets-Fastest.Sets()], nil
}

// Expired reports whether data written with the given SET count has
// drifted out of its guardband after elapsed time t. Unlike the model's
// method this is a single integer comparison against the memoized
// retention deadline (the drift law is monotone in t, so "shift exceeds
// guardband" and "t exceeds retention" are the same predicate).
func (t DriftTable) Expired(sets int, elapsed timing.Time) bool {
	if sets < Fastest.Sets() || sets > Slowest.Sets() {
		return true
	}
	return elapsed > t.retention[sets-Fastest.Sets()]
}

// BitErrorProb is the memoized form of DriftModel.BitErrorProb: zero is
// decided by the integer retention compare, and past the deadline the
// truncation constants are table lookups. Out-of-range SET counts report
// probability 1 (unknown programming precision: treat as lost).
func (t DriftTable) BitErrorProb(sets int, elapsed timing.Time) float64 {
	if sets < Fastest.Sets() || sets > Slowest.Sets() {
		return 1
	}
	i := sets - Fastest.Sets()
	if elapsed <= t.retention[i] {
		return 0
	}
	z := (t.model.GuardbandMax - t.model.DriftedShift(elapsed)) * t.invSigma[i]
	p := (qTail(z) - t.qK) * t.invTail
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return p
}

var (
	defaultTableOnce sync.Once
	defaultTable     DriftTable
)

// DefaultDriftTable returns the memoized default drift model. The table
// is computed once per process; callers on the simulation hot path
// should prefer it over re-deriving DefaultDriftModel per decision.
func DefaultDriftTable() DriftTable {
	defaultTableOnce.Do(func() {
		t, err := DefaultDriftModel().Table()
		if err != nil {
			// DefaultDriftModel covers every mode by construction.
			panic(fmt.Sprintf("pcm: default drift table: %v", err))
		}
		defaultTable = t
	})
	return defaultTable
}

// DeriveModeTable regenerates Table I from first principles: latency from
// the RESET+SET pulse train, retention from the drift model, currents and
// normalized energies from the device data. The Table I reproduction
// experiment (T1) diffs this against the embedded table.
func (m DriftModel) DeriveModeTable() ([]ModeSpec, error) {
	specs := make([]ModeSpec, 0, len(Modes()))
	for _, mode := range Modes() {
		ret, err := m.Retention(mode.Sets())
		if err != nil {
			return nil, err
		}
		embedded := Spec(mode)
		specs = append(specs, ModeSpec{
			Mode:         mode,
			SetCurrentUA: embedded.SetCurrentUA,
			NormEnergy:   embedded.NormEnergy,
			Retention:    ret,
			Latency:      PulseLatency(mode.Sets()),
		})
	}
	return specs, nil
}
