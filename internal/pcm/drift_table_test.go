package pcm

import (
	"testing"

	"rrmpcm/internal/timing"
)

// TestDriftTableMatchesModel checks that memoization changes nothing: every
// table entry equals the value the model computes on the fly.
func TestDriftTableMatchesModel(t *testing.T) {
	m := DefaultDriftModel()
	tab, err := m.Table()
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if tab.Model() != m {
		t.Errorf("Model() = %+v, want %+v", tab.Model(), m)
	}
	for _, mode := range Modes() {
		sets := mode.Sets()
		wantG, err := m.Guardband(sets)
		if err != nil {
			t.Fatalf("model Guardband(%d): %v", sets, err)
		}
		gotG, err := tab.Guardband(sets)
		if err != nil {
			t.Fatalf("table Guardband(%d): %v", sets, err)
		}
		if gotG != wantG {
			t.Errorf("Guardband(%d) = %v, want %v", sets, gotG, wantG)
		}
		wantR, err := m.Retention(sets)
		if err != nil {
			t.Fatalf("model Retention(%d): %v", sets, err)
		}
		gotR, err := tab.Retention(sets)
		if err != nil {
			t.Fatalf("table Retention(%d): %v", sets, err)
		}
		if gotR != wantR {
			t.Errorf("Retention(%d) = %v, want %v", sets, gotR, wantR)
		}
	}
}

// TestDriftTableExpired checks the integer-compare Expired agrees with the
// drift law away from the float-rounding boundary, and that out-of-range
// SET counts fail safe (expired).
func TestDriftTableExpired(t *testing.T) {
	tab := DefaultDriftTable()
	m := tab.Model()
	for _, mode := range Modes() {
		sets := mode.Sets()
		ret, err := tab.Retention(sets)
		if err != nil {
			t.Fatalf("Retention(%d): %v", sets, err)
		}
		for _, tc := range []struct {
			at   timing.Time
			want bool
		}{
			{0, false},
			{ret / 2, false},
			{ret, false},
			{ret + ret/100, true},
			{2 * ret, true},
		} {
			if got := tab.Expired(sets, tc.at); got != tc.want {
				t.Errorf("%v: table Expired(%d, %v) = %v, want %v", mode, sets, tc.at, got, tc.want)
			}
		}
		// Spot-check agreement with the un-memoized law at points safely
		// off the deadline (truncating float->int64 can move the exact
		// boundary by a few picoseconds, which no simulation observes).
		for _, at := range []timing.Time{ret / 4, ret / 2, 2 * ret, 10 * ret} {
			if tab.Expired(sets, at) != m.Expired(sets, at) {
				t.Errorf("%v: table and model disagree at t=%v", mode, at)
			}
		}
	}
	if !tab.Expired(2, timing.Second) || !tab.Expired(99, timing.Second) {
		t.Error("out-of-range SET counts must report expired")
	}
	if _, err := tab.Guardband(2); err == nil {
		t.Error("Guardband(2) should error")
	}
	if _, err := tab.Retention(8); err == nil {
		t.Error("Retention(8) should error")
	}
}

// TestDefaultDriftTableStable checks the package-level table is memoized
// (same values on repeated calls) and matches a fresh derivation.
func TestDefaultDriftTableStable(t *testing.T) {
	a, b := DefaultDriftTable(), DefaultDriftTable()
	if a != b {
		t.Error("DefaultDriftTable not stable across calls")
	}
	fresh, err := DefaultDriftModel().Table()
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if a != fresh {
		t.Error("DefaultDriftTable differs from a fresh derivation")
	}
}

// BenchmarkDriftExpired compares the memoized predicate against the
// power-law evaluation it replaces.
func BenchmarkDriftExpired(b *testing.B) {
	tab := DefaultDriftTable()
	m := tab.Model()
	at := Retention(Mode3SETs) / 2
	b.Run("table", func(b *testing.B) {
		b.ReportAllocs()
		sink := false
		for i := 0; i < b.N; i++ {
			sink = tab.Expired(3, at)
		}
		_ = sink
	})
	b.Run("model", func(b *testing.B) {
		b.ReportAllocs()
		sink := false
		for i := 0; i < b.N; i++ {
			sink = m.Expired(3, at)
		}
		_ = sink
	})
}
