package pcm

import (
	"fmt"
	"math/bits"
)

// DeviceConfig describes the MLC PCM main memory geometry (Table V).
// All sizes must be powers of two.
type DeviceConfig struct {
	MemBytes    uint64 // total capacity; paper: 8 GB
	Channels    int    // paper: 4
	Banks       int    // banks per channel; paper: 16
	RowBytes    uint64 // PCM array row; paper: 16 KB
	RowBufBytes uint64 // row buffer segment; paper: 1 KB
	BlockBytes  uint64 // memory block = LLC line; paper: 64 B

	// EnduranceWrites is the per-cell write endurance (paper: 5e6).
	EnduranceWrites float64
	// WearLevelEfficiency is the fraction of the average cell lifetime
	// the whole memory achieves under the assumed wear-leveling scheme
	// (paper: 0.95, citing Start-Gap).
	WearLevelEfficiency float64
}

// DefaultDeviceConfig returns the Table V memory configuration.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		MemBytes:            8 << 30,
		Channels:            4,
		Banks:               16,
		RowBytes:            16 << 10,
		RowBufBytes:         1 << 10,
		BlockBytes:          64,
		EnduranceWrites:     5e6,
		WearLevelEfficiency: 0.95,
	}
}

// Validate checks the geometry for internal consistency.
func (c DeviceConfig) Validate() error {
	pow2 := func(name string, v uint64) error {
		if v == 0 || v&(v-1) != 0 {
			return fmt.Errorf("pcm: %s (%d) must be a power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    uint64
	}{
		{"MemBytes", c.MemBytes}, {"RowBytes", c.RowBytes},
		{"RowBufBytes", c.RowBufBytes}, {"BlockBytes", c.BlockBytes},
		{"Channels", uint64(c.Channels)}, {"Banks", uint64(c.Banks)},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if c.RowBufBytes > c.RowBytes {
		return fmt.Errorf("pcm: row buffer (%d) larger than row (%d)", c.RowBufBytes, c.RowBytes)
	}
	if c.BlockBytes > c.RowBufBytes {
		return fmt.Errorf("pcm: block (%d) larger than row buffer (%d)", c.BlockBytes, c.RowBufBytes)
	}
	minMem := c.RowBytes * uint64(c.Channels) * uint64(c.Banks)
	if c.MemBytes < minMem {
		return fmt.Errorf("pcm: memory %d smaller than one row per bank (%d)", c.MemBytes, minMem)
	}
	if c.EnduranceWrites <= 0 || c.WearLevelEfficiency <= 0 || c.WearLevelEfficiency > 1 {
		return fmt.Errorf("pcm: endurance %g / wear-level efficiency %g out of range",
			c.EnduranceWrites, c.WearLevelEfficiency)
	}
	return nil
}

// TotalBlocks returns the number of memory blocks in the device.
func (c DeviceConfig) TotalBlocks() uint64 { return c.MemBytes / c.BlockBytes }

// TotalBanks returns the number of banks across all channels.
func (c DeviceConfig) TotalBanks() int { return c.Channels * c.Banks }

// Location is a decoded physical address.
type Location struct {
	Channel int
	Bank    int
	Row     uint64 // row index within the bank
	Segment int    // which RowBufBytes segment of the row
	Offset  uint64 // byte offset within the segment
}

// GlobalBank returns a flat bank index in [0, Channels*Banks).
func (l Location) GlobalBank(c DeviceConfig) int { return l.Channel*c.Banks + l.Bank }

// AddressMap decodes byte addresses into device locations using the
// interleaving described in the package comment: the low RowBufBytes are
// contiguous, then channel, then bank, then row-segment, then row.
type AddressMap struct {
	cfg DeviceConfig

	offBits  uint
	chanBits uint
	bankBits uint
	segBits  uint
	rowBits  uint
}

// NewAddressMap builds the decoder for a validated config.
func NewAddressMap(cfg DeviceConfig) (*AddressMap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &AddressMap{cfg: cfg}
	m.offBits = uint(bits.TrailingZeros64(cfg.RowBufBytes))
	m.chanBits = uint(bits.TrailingZeros64(uint64(cfg.Channels)))
	m.bankBits = uint(bits.TrailingZeros64(uint64(cfg.Banks)))
	m.segBits = uint(bits.TrailingZeros64(cfg.RowBytes / cfg.RowBufBytes))
	used := m.offBits + m.chanBits + m.bankBits + m.segBits
	total := uint(bits.TrailingZeros64(cfg.MemBytes))
	if used > total {
		return nil, fmt.Errorf("pcm: geometry needs %d address bits, only %d available", used, total)
	}
	m.rowBits = total - used
	return m, nil
}

// Config returns the geometry the map was built for.
func (m *AddressMap) Config() DeviceConfig { return m.cfg }

// Decode splits a byte address into its device location. Addresses wrap
// modulo the memory size, so synthetic traces need not mask themselves.
func (m *AddressMap) Decode(addr uint64) Location {
	addr &= m.cfg.MemBytes - 1
	var l Location
	l.Offset = addr & (m.cfg.RowBufBytes - 1)
	addr >>= m.offBits
	l.Channel = int(addr & uint64(m.cfg.Channels-1))
	addr >>= m.chanBits
	l.Bank = int(addr & uint64(m.cfg.Banks-1))
	addr >>= m.bankBits
	l.Segment = int(addr & (m.cfg.RowBytes/m.cfg.RowBufBytes - 1))
	addr >>= m.segBits
	l.Row = addr
	return l
}

// Encode is the inverse of Decode; used by tests and the refresh engine to
// synthesize addresses for specific banks.
func (m *AddressMap) Encode(l Location) uint64 {
	addr := l.Row
	addr = addr<<m.segBits | uint64(l.Segment)
	addr = addr<<m.bankBits | uint64(l.Bank)
	addr = addr<<m.chanBits | uint64(l.Channel)
	addr = addr<<m.offBits | l.Offset
	return addr
}

// BlockAddr returns the block index of a byte address (64 B granularity).
func (m *AddressMap) BlockAddr(addr uint64) uint64 {
	return (addr & (m.cfg.MemBytes - 1)) / m.cfg.BlockBytes
}

// RowBufferTag identifies the open row-buffer segment of a bank: equal
// tags hit in the open row buffer.
func (m *AddressMap) RowBufferTag(addr uint64) uint64 {
	return (addr & (m.cfg.MemBytes - 1)) >> m.offBits
}
