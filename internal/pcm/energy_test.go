package pcm

import (
	"math"
	"testing"
)

func TestCellWriteEnergyAnchor(t *testing.T) {
	// 7-SETs: 1.8V * (50uA*100ns + 7*30uA*150ns) = 9pJ + 56.7pJ = 65.7pJ.
	want := 65.7e-12
	got := CellWriteEnergy(Mode7SETs)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("7-SETs cell energy = %.3g J, want %.3g J", got, want)
	}
}

func TestNormalizedEnergiesMatchTable1(t *testing.T) {
	e7 := CellWriteEnergy(Mode7SETs)
	want := map[WriteMode]float64{
		Mode3SETs: 0.840, Mode4SETs: 0.869, Mode5SETs: 0.972,
		Mode6SETs: 0.975, Mode7SETs: 1.000,
	}
	for m, norm := range want {
		got := CellWriteEnergy(m) / e7
		if math.Abs(got-norm) > 1e-9 {
			t.Errorf("%v normalized energy = %v, want %v", m, got, norm)
		}
	}
}

func TestBlockEnergies(t *testing.T) {
	// 64 B = 512 bits = 256 MLC cells.
	if got, want := BlockWriteEnergy(64, Mode7SETs), 256*CellWriteEnergy(Mode7SETs); got != want {
		t.Errorf("block write energy = %g, want %g", got, want)
	}
	if got, want := BlockReadEnergy(64), 256*ReadEnergyPerCell; got != want {
		t.Errorf("block read energy = %g, want %g", got, want)
	}
}

func TestEnergyMeter(t *testing.T) {
	m := NewEnergyMeter(64)
	m.AddBlockWrite(Mode7SETs, WearDemandWrite)
	m.AddBlockWrite(Mode3SETs, WearRRMRefresh)
	m.AddBlockWrites(10, Mode7SETs, WearGlobalRefresh)
	m.AddBlockRead()

	if got := m.DemandWriteEnergy(); got != BlockWriteEnergy(64, Mode7SETs) {
		t.Errorf("demand energy = %g", got)
	}
	wantRefresh := BlockWriteEnergy(64, Mode3SETs) + 10*BlockWriteEnergy(64, Mode7SETs)
	if got := m.RefreshEnergy(); math.Abs(got-wantRefresh) > 1e-18 {
		t.Errorf("refresh energy = %g, want %g", got, wantRefresh)
	}
	if got := m.ReadEnergy(); got != BlockReadEnergy(64) {
		t.Errorf("read energy = %g", got)
	}
	wantTotal := m.DemandWriteEnergy() + m.RefreshEnergy() + m.ReadEnergy()
	if got := m.TotalEnergy(); math.Abs(got-wantTotal) > 1e-18 {
		t.Errorf("total = %g, want %g", got, wantTotal)
	}
	if got := m.WriteEnergy(WearSlowRefresh); got != 0 {
		t.Errorf("slow refresh energy = %g, want 0", got)
	}
}

func TestEnergyOrdering(t *testing.T) {
	// More SET iterations must not cost less energy per the table.
	prev := 0.0
	for _, m := range Modes() {
		e := CellWriteEnergy(m)
		if e < prev {
			t.Errorf("energy decreased at %v", m)
		}
		prev = e
	}
}
