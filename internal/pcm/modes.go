// Package pcm models a Multi-Level-Cell Phase Change Memory main memory:
// the write-latency vs. retention trade-off of individual cells (Table I of
// the paper), the device geometry (channels, banks, rows, row buffers), and
// wear/energy accounting used for lifetime estimation.
//
// Addresses are plain uint64 byte addresses. The device interleaves them as
//
//	| row | segment(4b) | bank(4b) | channel(2b) | rowbuf offset(10b) |
//
// so one 1 KB row-buffer segment is contiguous, consecutive 1 KB segments
// rotate across channels, and a 4 KB OS page occupies the same bank index
// in all four channels (hot pages therefore concentrate bank pressure,
// which is the contention mechanism the paper's results hinge on).
package pcm

import (
	"fmt"

	"rrmpcm/internal/timing"
)

// WriteMode identifies an MLC PCM write scheme by its number of SET
// iterations. More SET iterations program more precisely, widening the
// drift guardband and extending retention, at the cost of write latency.
type WriteMode int

// The five write modes of Table I. The numeric value is the SET count.
const (
	Mode3SETs WriteMode = 3
	Mode4SETs WriteMode = 4
	Mode5SETs WriteMode = 5
	Mode6SETs WriteMode = 6
	Mode7SETs WriteMode = 7
)

// Fastest and slowest bound the valid WriteMode range.
const (
	Fastest = Mode3SETs
	Slowest = Mode7SETs
)

// Valid reports whether m is one of the five modeled write modes.
func (m WriteMode) Valid() bool { return m >= Fastest && m <= Slowest }

// Sets returns the number of SET iterations of the mode.
func (m WriteMode) Sets() int { return int(m) }

// String implements fmt.Stringer ("7-SETs-Write" style, as in the paper).
func (m WriteMode) String() string {
	if !m.Valid() {
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
	return fmt.Sprintf("%d-SETs-Write", int(m))
}

// Cell-level circuit constants from the 20 nm PCM chip demonstration the
// paper re-calculates Table I against (Choi et al., ISSCC 2012).
const (
	// ResetPulse is the duration of the single RESET pulse that starts
	// every MLC write, independent of the SET count that follows.
	ResetPulse = 100 * timing.Nanosecond
	// SetPulse is the duration of one SET iteration.
	SetPulse = 150 * timing.Nanosecond
	// ResetCurrentUA is the RESET pulse current in microamperes.
	ResetCurrentUA = 50.0
)

// ModeSpec describes one row of Table I: the electrical and timing
// parameters of a write mode and the data retention it achieves.
type ModeSpec struct {
	Mode WriteMode
	// SetCurrentUA is the per-iteration SET current in microamperes.
	// Fewer iterations need a higher current to reach the target
	// resistance band faster.
	SetCurrentUA float64
	// NormEnergy is the write energy normalized to the 7-SETs write,
	// per Table I (derived from Li et al.'s energy model).
	NormEnergy float64
	// Retention is how long a freshly written cell keeps its value
	// before resistance drift crosses the guardband.
	Retention timing.Time
	// Latency is the total write pulse time: one RESET plus
	// Mode.Sets() SET iterations.
	Latency timing.Time
}

// modeTable is Table I of the paper.
var modeTable = [...]ModeSpec{
	{Mode3SETs, 42, 0.840, timing.Nanoseconds(2.01e9), 550 * timing.Nanosecond},
	{Mode4SETs, 37, 0.869, timing.Nanoseconds(24.05e9), 700 * timing.Nanosecond},
	{Mode5SETs, 35, 0.972, timing.Nanoseconds(104.4e9), 850 * timing.Nanosecond},
	{Mode6SETs, 32, 0.975, timing.Nanoseconds(991.4e9), 1000 * timing.Nanosecond},
	{Mode7SETs, 30, 1.000, timing.Nanoseconds(3054.9e9), 1150 * timing.Nanosecond},
}

// Spec returns the Table I row for mode m. It panics on an invalid mode:
// callers select modes from a fixed policy set, so an invalid mode is a
// programming error, not an input error.
func Spec(m WriteMode) ModeSpec {
	if !m.Valid() {
		panic(fmt.Sprintf("pcm: invalid write mode %d", int(m)))
	}
	return modeTable[int(m-Fastest)]
}

// Modes returns all write modes from fastest (3 SETs) to slowest (7 SETs).
func Modes() []WriteMode {
	return []WriteMode{Mode3SETs, Mode4SETs, Mode5SETs, Mode6SETs, Mode7SETs}
}

// Latency returns the total write pulse time of mode m.
func Latency(m WriteMode) timing.Time { return Spec(m).Latency }

// Retention returns the data retention of mode m.
func Retention(m WriteMode) timing.Time { return Spec(m).Retention }

// PulseLatency computes the write pulse time from first principles:
// one RESET pulse plus sets SET iterations. Table I's latency column is
// exactly this quantity; a unit test asserts the two agree.
func PulseLatency(sets int) timing.Time {
	return ResetPulse + timing.Time(sets)*SetPulse
}
