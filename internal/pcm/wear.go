package pcm

import "fmt"

// WearKind classifies the cause of a block (re)write for wear and energy
// accounting. Per Kim & Ahn (cited by the paper), the RESET pulse dominates
// cell endurance, so every block write costs one wear unit regardless of
// the write mode used.
type WearKind int

const (
	// WearDemandWrite is a write issued on behalf of the program (an LLC
	// dirty writeback reaching memory).
	WearDemandWrite WearKind = iota
	// WearRRMRefresh is a selective fast refresh (3-SETs) issued by the
	// RRM structure for hot short-retention blocks.
	WearRRMRefresh
	// WearSlowRefresh is a slow (7-SETs) refresh issued when a hot RRM
	// entry decays to cold or is evicted and its short-retention blocks
	// must be rewritten with long-retention writes.
	WearSlowRefresh
	// WearGlobalRefresh is the device's built-in global refresh stream
	// (every block, once per retention period of the scheme's long
	// mode). Its performance impact is not simulated — matching the
	// paper — but its wear and energy are accounted analytically.
	WearGlobalRefresh

	numWearKinds
)

// String implements fmt.Stringer.
func (k WearKind) String() string {
	switch k {
	case WearDemandWrite:
		return "demand-write"
	case WearRRMRefresh:
		return "rrm-refresh"
	case WearSlowRefresh:
		return "slow-refresh"
	case WearGlobalRefresh:
		return "global-refresh"
	default:
		return fmt.Sprintf("WearKind(%d)", int(k))
	}
}

// WearKinds lists all wear causes in display order.
func WearKinds() []WearKind {
	return []WearKind{WearDemandWrite, WearRRMRefresh, WearSlowRefresh, WearGlobalRefresh}
}

// WearTracker accumulates block-write counts at 4 KB region granularity,
// split by cause and write mode, plus per-bank totals. Region granularity
// keeps the footprint at 4 B per 4 KB of simulated memory (8 MB for the
// default 8 GB device) while still exposing hotspot structure.
type WearTracker struct {
	amap *AddressMap

	regionShift uint
	regionWear  []uint32

	byKind   [numWearKinds]uint64
	byMode   [Slowest - Fastest + 1]uint64
	bankWear []uint64
}

// RegionBytes is the wear-tracking granularity; it matches the paper's
// 4 KB Retention Region / OS page size.
const RegionBytes = 4 << 10

// NewWearTracker allocates tracking state for the mapped device.
func NewWearTracker(amap *AddressMap) *WearTracker {
	cfg := amap.Config()
	t := &WearTracker{
		amap:        amap,
		regionShift: 12, // log2(RegionBytes)
		regionWear:  make([]uint32, cfg.MemBytes/RegionBytes),
		bankWear:    make([]uint64, cfg.TotalBanks()),
	}
	return t
}

// RecordBlockWrite charges one wear unit for a block write at byte address
// addr, caused by kind, using write mode m.
func (t *WearTracker) RecordBlockWrite(addr uint64, m WriteMode, kind WearKind) {
	region := (addr & (t.amap.Config().MemBytes - 1)) >> t.regionShift
	if t.regionWear[region] != ^uint32(0) {
		t.regionWear[region]++
	}
	t.byKind[kind]++
	t.byMode[m-Fastest]++
	t.bankWear[t.amap.Decode(addr).GlobalBank(t.amap.Config())]++
}

// AddAnalytic charges count block writes of the given kind and mode
// without attributing them to specific addresses (used for the built-in
// global refresh stream, which touches every block uniformly).
func (t *WearTracker) AddAnalytic(count uint64, m WriteMode, kind WearKind) {
	t.byKind[kind] += count
	t.byMode[m-Fastest] += count
}

// ByKind returns total block writes caused by kind.
func (t *WearTracker) ByKind(kind WearKind) uint64 { return t.byKind[kind] }

// ByMode returns total block writes performed with mode m.
func (t *WearTracker) ByMode(m WriteMode) uint64 { return t.byMode[m-Fastest] }

// Total returns all block writes from all causes.
func (t *WearTracker) Total() uint64 {
	var sum uint64
	for _, v := range t.byKind {
		sum += v
	}
	return sum
}

// BankWear returns per-global-bank address-attributed write counts.
func (t *WearTracker) BankWear() []uint64 {
	out := make([]uint64, len(t.bankWear))
	copy(out, t.bankWear)
	return out
}

// RegionWearHistogram buckets the per-region address-attributed wear
// counts: returns (number of regions with zero wear, and for each power of
// two ceiling the count of regions whose wear falls in (2^(k-1), 2^k]).
func (t *WearTracker) RegionWearHistogram() (zero uint64, buckets [33]uint64) {
	for _, w := range t.regionWear {
		if w == 0 {
			zero++
			continue
		}
		k := 0
		for v := uint64(w); v > 1; v >>= 1 {
			k++
		}
		if uint64(1)<<k < uint64(w) {
			k++
		}
		buckets[k]++
	}
	return zero, buckets
}

// MaxRegionWear returns the largest per-region wear count and how many
// regions were written at all.
func (t *WearTracker) MaxRegionWear() (max uint32, touched uint64) {
	for _, w := range t.regionWear {
		if w > 0 {
			touched++
			if w > max {
				max = w
			}
		}
	}
	return max, touched
}
