package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/trace"
	"rrmpcm/internal/tracefile"
)

// tenantSim fakes per-tenant attribution: one TenantMetrics entry per
// unique tenant name, with recognizable counter values.
func tenantSim(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
	m, _ := instantSim(ctx, cfg)
	seen := map[string]bool{}
	for _, name := range cfg.Workload.Tenants {
		if seen[name] {
			continue
		}
		seen[name] = true
		m.Tenants = append(m.Tenants, sim.TenantMetrics{
			Name: name, Cores: 1, Instructions: 1000, DemandWrites: 50,
			RetentionViolations: 2, UncorrectableReads: 1,
		})
	}
	return m, nil
}

func tenantBody(entries string) string {
	return fmt.Sprintf(`{"scheme":"rrm","quick":true,"tenants":[%s]}`, entries)
}

// writeTestTraces exports n single-profile trace recordings into dir
// and returns their file names.
func writeTestTraces(t *testing.T, dir string, n int) []string {
	t.Helper()
	p, err := trace.ProfileByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		gen, err := trace.NewMixture(p, 0, 1<<30, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		meta := tracefile.Meta{Name: p.Name, BaseCPI: gen.BaseCPI(), MaxMLP: gen.MaxMLP(),
			Span: 1 << 30, Seed: uint64(i + 1)}
		blob, err := tracefile.Record(gen, meta, 2000)
		if err != nil {
			t.Fatal(err)
		}
		names[i] = fmt.Sprintf("c%d.rrmt", i)
		if err := os.WriteFile(filepath.Join(dir, names[i]), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// TestTenantSubmissionProfiles: a profile-based multi-tenant submission
// runs end to end and the result carries per-tenant metrics.
func TestTenantSubmissionProfiles(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Sim: tenantSim})
	body := tenantBody(`{"name":"acme","profile":"hmmer"},{"name":"zenith","profile":"lbm"},
		{"name":"acme","profile":"hmmer"},{"name":"zenith","profile":"milc"}`)
	code, sr := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if sr.Workload != "tenants:acme+zenith+acme+zenith" {
		t.Fatalf("workload name %q", sr.Workload)
	}
	st := waitState(t, ts, sr.ID)
	if st.State != "done" {
		t.Fatalf("final state %q (%s)", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Metrics.Tenants) != 2 {
		t.Fatalf("result has %d tenants, want 2: %+v", len(jr.Metrics.Tenants), jr.Metrics.Tenants)
	}
}

// TestTenantSubmissionTraces: trace-backed tenants run when a trace
// directory is configured, and the server confines paths to it.
func TestTenantSubmissionTraces(t *testing.T) {
	dir := t.TempDir()
	names := writeTestTraces(t, dir, 4)
	_, ts := newTestServer(t, Options{Workers: 1, Sim: tenantSim, TraceDir: dir})

	var entries []string
	for i, n := range names {
		entries = append(entries, fmt.Sprintf(`{"name":"t%d","trace":%q}`, i%2, n))
	}
	code, sr := postJob(t, ts, tenantBody(strings.Join(entries, ",")))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st := waitState(t, ts, sr.ID); st.State != "done" {
		t.Fatalf("final state %q (%s)", st.State, st.Error)
	}

	// Paths may not escape the trace directory, by traversal or by
	// absolute path.
	for _, bad := range []string{"../evil.rrmt", "/etc/passwd", "a/../../evil.rrmt"} {
		code, _ := postJob(t, ts, tenantBody(fmt.Sprintf(
			`{"name":"a","trace":%q},{"name":"b","trace":%q},{"name":"c","trace":%q},{"name":"d","trace":%q}`,
			bad, names[1], names[2], names[3])))
		if code != http.StatusBadRequest {
			t.Errorf("escaping path %q: status %d, want 400", bad, code)
		}
	}
}

// TestTenantSubmissionValidation: malformed tenant submissions are 400s.
func TestTenantSubmissionValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Sim: tenantSim}) // no TraceDir
	cases := map[string]string{
		"missing scheme":     `{"quick":true,"tenants":[{"name":"a","profile":"hmmer"}]}`,
		"with workload":      `{"scheme":"rrm","workload":"lbm","quick":true,"tenants":[{"name":"a","profile":"hmmer"}]}`,
		"unnamed stream":     tenantBody(`{"name":"","profile":"hmmer"}`),
		"both kinds":         tenantBody(`{"name":"a","profile":"hmmer","trace":"x.rrmt"}`),
		"neither kind":       tenantBody(`{"name":"a"}`),
		"mixed kinds":        tenantBody(`{"name":"a","profile":"hmmer"},{"name":"b","trace":"x.rrmt"}`),
		"unknown profile":    tenantBody(`{"name":"a","profile":"nonesuch"}`),
		"traces disabled":    tenantBody(`{"name":"a","trace":"x.rrmt"}`),
		"wrong stream count": tenantBody(`{"name":"a","profile":"hmmer"},{"name":"b","profile":"lbm"}`),
	}
	for name, body := range cases {
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestMetricsTenantCounters: finished multi-tenant jobs feed the
// labeled rrmserve_tenant_* counters; untenanted jobs contribute
// nothing and the section is absent until the first tenant job.
func TestMetricsTenantCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Sim: tenantSim})

	_, sr := postJob(t, ts, submitBody(3))
	waitState(t, ts, sr.ID)
	resp, _ := http.Get(ts.URL + "/metrics")
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(blob), "rrmserve_tenant_") {
		t.Error("tenant counters rendered before any multi-tenant job")
	}

	body := tenantBody(`{"name":"acme","profile":"hmmer"},{"name":"zenith","profile":"lbm"},
		{"name":"acme","profile":"hmmer"},{"name":"zenith","profile":"milc"}`)
	for i := 0; i < 2; i++ {
		_, sr := postJob(t, ts, body)
		if st := waitState(t, ts, sr.ID); st.State != "done" {
			t.Fatalf("tenant job %d: state %q (%s)", i, st.State, st.Error)
		}
	}
	// Identical submissions dedupe to one job; resubmit with a new seed
	// to get a second observation.
	_, sr = postJob(t, ts, strings.Replace(body, `"quick":true`, `"quick":true,"seed":9`, 1))
	if st := waitState(t, ts, sr.ID); st.State != "done" {
		t.Fatalf("seeded tenant job: state %q (%s)", st.State, st.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		`rrmserve_tenant_jobs_total{tenant="acme"} 2`,
		`rrmserve_tenant_jobs_total{tenant="zenith"} 2`,
		`rrmserve_tenant_instructions_total{tenant="acme"} 2000`,
		`rrmserve_tenant_demand_writes_total{tenant="zenith"} 100`,
		`rrmserve_tenant_retention_violations_total{tenant="acme"} 4`,
		`rrmserve_tenant_uncorrectable_total{tenant="zenith"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
