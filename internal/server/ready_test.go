package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func getStatus(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestReadinessLivenessSplit: /healthz is the routing decision (503
// once the server is unready or draining), /livez is the restart
// decision (200 for as long as the process answers at all).
func TestReadinessLivenessSplit(t *testing.T) {
	srv, ts := newTestServer(t, Options{QueueSize: 4})

	code, body := getStatus(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("fresh server /healthz = %d %v, want 200 ok", code, body["status"])
	}
	if code, body := getStatus(t, ts.URL+"/livez"); code != http.StatusOK || body["status"] != "alive" {
		t.Fatalf("fresh server /livez = %d %v, want 200 alive", code, body["status"])
	}
	if !srv.Ready() {
		t.Fatal("fresh server not Ready()")
	}

	// Deregistered worker: unready for routing, alive for restarts, and
	// still fully serving the jobs it has.
	srv.SetReady(false)
	code, body = getStatus(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "not-ready" {
		t.Errorf("unready /healthz = %d %v, want 503 not-ready", code, body["status"])
	}
	if code, _ := getStatus(t, ts.URL+"/livez"); code != http.StatusOK {
		t.Errorf("unready /livez = %d, want 200", code)
	}
	if srv.Ready() {
		t.Error("Ready() true after SetReady(false)")
	}
	if code, _ := postJob(t, ts, `{"scheme":"rrm","workload":"GemsFDTD","quick":true}`); code != http.StatusAccepted {
		t.Errorf("unready server refused a submission (%d); readiness must not gate intake", code)
	}

	// Flipping back restores routing.
	srv.SetReady(true)
	if code, _ := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("re-readied /healthz = %d, want 200", code)
	}

	// Draining is unready regardless of the latch, and liveness holds
	// until the process exits.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body = getStatus(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("draining /healthz = %d %v, want 503 draining", code, body["status"])
	}
	if code, _ := getStatus(t, ts.URL+"/livez"); code != http.StatusOK {
		t.Errorf("draining /livez = %d, want 200", code)
	}
	if srv.Ready() {
		t.Error("Ready() true while draining")
	}
}
