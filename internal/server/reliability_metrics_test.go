package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sim"
)

// TestMetricsReliabilityCounters: jobs whose results carry a
// reliability block feed the rrmserve_reliability_* counters; jobs
// without one (Metrics.Reliability nil) contribute nothing and do not
// crash the observer.
func TestMetricsReliabilityCounters(t *testing.T) {
	relSim := func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		m, _ := instantSim(ctx, cfg)
		if cfg.Seed == 1 { // one job with the fault model, one without
			m.Reliability = &reliability.Metrics{
				ReadsChecked: 1000, CleanReads: 990, CorrectedReads: 9,
				UncorrectableReads: 1, BitFlipsCorrected: 12,
				ScrubsOnWrite: 5, ScrubsOnRefresh: 3, PatrolIssued: 2,
				SweepUncorrectable: 4,
			}
		}
		return m, nil
	}
	_, ts := newTestServer(t, Options{Workers: 1, Sim: relSim})
	for _, seed := range []uint64{1, 2} {
		_, sr := postJob(t, ts, submitBody(seed))
		waitState(t, ts, sr.ID)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		"rrmserve_reliability_reads_checked_total 1000",
		"rrmserve_reliability_corrected_reads_total 9",
		"rrmserve_reliability_uncorrectable_total 5", // 1 read + 4 sweep
		"rrmserve_reliability_bit_flips_corrected_total 12",
		"rrmserve_reliability_scrubs_total 10", // 5 write + 3 refresh + 2 patrol
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
