package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"rrmpcm/internal/engine"
	"rrmpcm/internal/sim"
)

// latencyBuckets are the per-job wall-clock histogram bounds in
// seconds. Quick-mode jobs land in the sub-second buckets, full paper
// runs in the tens-of-seconds range.
var latencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// serverMetrics aggregates the counters exported at /metrics in
// Prometheus text exposition format. Counters are atomics (hot paths:
// every submission and every engine event); the histogram keeps one
// mutex. It implements engine.Observer, so running/done/failed counts,
// cache hits and the latency histogram come straight from the engine's
// lifecycle events rather than a parallel server-side bookkeeping.
type serverMetrics struct {
	submitted atomic.Uint64 // POST /api/v1/jobs accepted for processing
	deduped   atomic.Uint64 // submissions answered by an existing job
	rejected  atomic.Uint64 // submissions bounced with 429 (queue full)
	done      atomic.Uint64
	failed    atomic.Uint64
	running   atomic.Int64 // gauge
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64

	// Reliability-model aggregates, summed over every finished job that
	// ran with the fault model enabled (jobs without it contribute
	// nothing — Metrics.Reliability is nil there).
	relReadsChecked  atomic.Uint64
	relCorrected     atomic.Uint64
	relUncorrectable atomic.Uint64
	relBitFlips      atomic.Uint64
	relScrubs        atomic.Uint64

	histMu    sync.Mutex
	histCount []uint64 // per latencyBuckets bound, non-cumulative
	histInf   uint64
	histSum   float64
	histN     uint64

	// Per-tenant aggregates, summed over every finished multi-tenant
	// job (Metrics.Tenants is nil elsewhere). Keyed by tenant name and
	// rendered as labeled counters.
	tenMu  sync.Mutex
	tenant map[string]*tenantAgg
}

// tenantAgg is one tenant's accumulated totals across finished jobs.
type tenantAgg struct {
	jobs          uint64
	instructions  uint64
	demandWrites  uint64
	violations    uint64
	uncorrectable uint64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{histCount: make([]uint64, len(latencyBuckets))}
}

// ObserveJob implements engine.Observer.
func (m *serverMetrics) ObserveJob(ev engine.JobEvent) {
	switch ev.State {
	case engine.JobStateRunning:
		m.running.Add(1)
	case engine.JobStateDone:
		m.running.Add(-1)
		m.done.Add(1)
		if ev.Result != nil {
			if ev.Result.Cached {
				m.cacheHits.Add(1)
			} else {
				m.cacheMiss.Add(1)
			}
			m.observeLatency(ev.Result.Wall.Seconds())
			if rel := ev.Result.Metrics.Reliability; rel != nil {
				m.relReadsChecked.Add(rel.ReadsChecked)
				m.relCorrected.Add(rel.CorrectedReads)
				m.relUncorrectable.Add(rel.Uncorrectable())
				m.relBitFlips.Add(rel.BitFlipsCorrected)
				m.relScrubs.Add(rel.ScrubsOnWrite + rel.ScrubsOnRefresh + rel.PatrolIssued)
			}
			if tens := ev.Result.Metrics.Tenants; len(tens) > 0 {
				m.observeTenants(tens)
			}
		}
	case engine.JobStateFailed:
		m.running.Add(-1)
		m.failed.Add(1)
	}
}

// observeTenants folds one finished job's per-tenant metrics into the
// labeled aggregates.
func (m *serverMetrics) observeTenants(tens []sim.TenantMetrics) {
	m.tenMu.Lock()
	defer m.tenMu.Unlock()
	if m.tenant == nil {
		m.tenant = make(map[string]*tenantAgg)
	}
	for i := range tens {
		t := &tens[i]
		agg := m.tenant[t.Name]
		if agg == nil {
			agg = &tenantAgg{}
			m.tenant[t.Name] = agg
		}
		agg.jobs++
		agg.instructions += t.Instructions
		agg.demandWrites += t.DemandWrites
		agg.violations += t.RetentionViolations
		agg.uncorrectable += t.UncorrectableReads
	}
}

func (m *serverMetrics) observeLatency(sec float64) {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	m.histSum += sec
	m.histN++
	for i, b := range latencyBuckets {
		if sec <= b {
			m.histCount[i]++
			return
		}
	}
	m.histInf++
}

// render writes the full exposition. queueDepth/queueCap/uptime and
// the engine's sims-executed counter are owned by the server and
// passed in.
func (m *serverMetrics) render(w io.Writer, queueDepth, queueCap int, uptimeSeconds float64, simsExecuted uint64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("rrmserve_jobs_submitted_total", "Job submissions accepted for processing.", m.submitted.Load())
	counter("rrmserve_jobs_deduplicated_total", "Submissions answered by an already-known job (idempotency hits).", m.deduped.Load())
	counter("rrmserve_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.rejected.Load())
	counter("rrmserve_jobs_done_total", "Jobs finished successfully.", m.done.Load())
	counter("rrmserve_jobs_failed_total", "Jobs finished with an error.", m.failed.Load())
	counter("rrmserve_cache_hits_total", "Jobs satisfied from the disk run cache.", m.cacheHits.Load())
	counter("rrmserve_cache_misses_total", "Jobs that had to simulate (run-cache misses).", m.cacheMiss.Load())
	counter("rrmserve_sims_executed_total", "Simulations this process actually launched (the cluster's zero-duplicate-work counter).", simsExecuted)
	counter("rrmserve_reliability_reads_checked_total", "Demand reads inspected by the reliability model across finished jobs.", m.relReadsChecked.Load())
	counter("rrmserve_reliability_corrected_reads_total", "Demand reads the ECC model corrected across finished jobs.", m.relCorrected.Load())
	counter("rrmserve_reliability_uncorrectable_total", "Uncorrectable errors (reads, scrub inspections and final sweeps) across finished jobs.", m.relUncorrectable.Load())
	counter("rrmserve_reliability_bit_flips_corrected_total", "Individual bit flips corrected by ECC across finished jobs.", m.relBitFlips.Load())
	counter("rrmserve_reliability_scrubs_total", "Scrub events (demand writes, refreshes and patrol issues) across finished jobs.", m.relScrubs.Load())
	gauge("rrmserve_jobs_running", "Jobs currently executing on the engine.", float64(m.running.Load()))
	gauge("rrmserve_queue_depth", "Jobs waiting in the bounded queue.", float64(queueDepth))
	gauge("rrmserve_queue_capacity", "Capacity of the bounded queue.", float64(queueCap))
	gauge("rrmserve_uptime_seconds", "Seconds since the server started.", uptimeSeconds)
	m.renderTenants(w)

	m.histMu.Lock()
	defer m.histMu.Unlock()
	const hist = "rrmserve_job_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Per-job wall-clock time (cache hits are near zero).\n# TYPE %s histogram\n", hist, hist)
	cum := uint64(0)
	for i, b := range latencyBuckets {
		cum += m.histCount[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hist, trimFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", hist, cum+m.histInf)
	fmt.Fprintf(w, "%s_sum %g\n", hist, m.histSum)
	fmt.Fprintf(w, "%s_count %d\n", hist, m.histN)
}

// renderTenants writes the per-tenant labeled counters in sorted
// tenant order (deterministic exposition). Nothing is written until
// the first multi-tenant job finishes.
func (m *serverMetrics) renderTenants(w io.Writer) {
	m.tenMu.Lock()
	defer m.tenMu.Unlock()
	if len(m.tenant) == 0 {
		return
	}
	names := make([]string, 0, len(m.tenant))
	for name := range m.tenant {
		names = append(names, name)
	}
	sort.Strings(names)
	labeled := func(name, help string, v func(*tenantAgg) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, ten := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, ten, v(m.tenant[ten]))
		}
	}
	labeled("rrmserve_tenant_jobs_total", "Finished multi-tenant jobs this tenant participated in.",
		func(a *tenantAgg) uint64 { return a.jobs })
	labeled("rrmserve_tenant_instructions_total", "Instructions attributed to this tenant across finished jobs.",
		func(a *tenantAgg) uint64 { return a.instructions })
	labeled("rrmserve_tenant_demand_writes_total", "Demand block writes attributed to this tenant across finished jobs.",
		func(a *tenantAgg) uint64 { return a.demandWrites })
	labeled("rrmserve_tenant_retention_violations_total", "Retention-deadline violations attributed to this tenant across finished jobs.",
		func(a *tenantAgg) uint64 { return a.violations })
	labeled("rrmserve_tenant_uncorrectable_total", "Uncorrectable demand reads attributed to this tenant across finished jobs.",
		func(a *tenantAgg) uint64 { return a.uncorrectable })
}

// trimFloat formats a bucket bound the Prometheus way ("0.25", "5").
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
