package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rrmpcm/internal/sim"
)

// instantSim is a fake simulation that finishes immediately with
// metrics identifying the config.
func instantSim(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
	return sim.Metrics{Scheme: cfg.Scheme.Name(), Workload: cfg.Workload.Name,
		IPC: float64(cfg.Seed), Instructions: cfg.Seed}, nil
}

// countingSim wraps a SimFunc with an execution counter.
func countingSim(n *atomic.Int64, inner func(context.Context, sim.Config) (sim.Metrics, error)) func(context.Context, sim.Config) (sim.Metrics, error) {
	return func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		n.Add(1)
		return inner(ctx, cfg)
	}
}

// gatedSim blocks each run between signalling `started` and receiving
// from `release` (a closed release channel frees every run).
func gatedSim(started chan<- struct{}, release <-chan struct{}) func(context.Context, sim.Config) (sim.Metrics, error) {
	return func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		started <- struct{}{}
		select {
		case <-release:
			return instantSim(ctx, cfg)
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
}

// newTestServer builds a server (instant fake sim unless overridden)
// and an httptest frontend, both torn down with the test.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Sim == nil {
		opt.Sim = instantSim
	}
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

// submitBody is the canonical quick shorthand submission.
func submitBody(seed uint64) string {
	return fmt.Sprintf(`{"scheme":"static-7","workload":"GemsFDTD","quick":true,"seed":%d}`, seed)
}

// postJob submits and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, SubmitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(blob, &sr); err != nil {
			t.Fatalf("decoding %q: %v", blob, err)
		}
	}
	return resp.StatusCode, sr
}

// waitState polls a job's status until it reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestSubmitStatusResultRoundTrip: submit -> 202 queued, status
// reaches done, result returns the metrics.
func TestSubmitStatusResultRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, sr := postJob(t, ts, submitBody(7))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if !sr.Created || sr.ID == "" || sr.State != "queued" && sr.State != "running" && sr.State != "done" {
		t.Fatalf("unexpected submit response %+v", sr)
	}
	if sr.Scheme != "Static-7-SETs" || sr.Workload != "GemsFDTD" {
		t.Fatalf("scheme/workload %q/%q", sr.Scheme, sr.Workload)
	}

	st := waitState(t, ts, sr.ID)
	if st.State != "done" {
		t.Fatalf("final state %q (%s)", st.State, st.Error)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("done status missing timestamps")
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Metrics.IPC != 7 || jr.Metrics.Workload != "GemsFDTD" {
		t.Fatalf("result metrics %+v", jr.Metrics)
	}
}

// TestSubmitValidation: malformed submissions are 400s with an error
// body, and unknown jobs are 404s.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		`{"scheme":"warp-9","workload":"GemsFDTD"}`,
		`{"scheme":"rrm","workload":"no-such-workload"}`,
		`{"scheme":"rrm"}`,
		`{"scheme":"rrm","workload":"mcf","config":{}}`,
		`{"bogus":true}`,
		`not json`,
	} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, code)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// TestIdempotentResubmission: an identical config resubmitted to a
// live server returns the existing job without a second simulation.
func TestIdempotentResubmission(t *testing.T) {
	var ran atomic.Int64
	_, ts := newTestServer(t, Options{Sim: countingSim(&ran, instantSim)})

	code, first := postJob(t, ts, submitBody(3))
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", code)
	}
	waitState(t, ts, first.ID)

	code, second := postJob(t, ts, submitBody(3))
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", code)
	}
	if second.Created {
		t.Fatal("resubmit reported Created")
	}
	if second.ID != first.ID {
		t.Fatalf("resubmit id %s != %s", second.ID, first.ID)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d simulations ran, want 1", got)
	}
}

// TestIdempotentAcrossRestart: with a shared cache directory, a fresh
// server answers a known config from the disk run cache — done
// immediately, zero simulations — and serves status/result for hashes
// it has never seen as live jobs.
func TestIdempotentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var ran1 atomic.Int64
	_, ts1 := newTestServer(t, Options{CacheDir: dir, Sim: countingSim(&ran1, instantSim)})
	code, first := postJob(t, ts1, submitBody(11))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts1, first.ID)
	if ran1.Load() != 1 {
		t.Fatalf("first server ran %d sims, want 1", ran1.Load())
	}

	var ran2 atomic.Int64
	_, ts2 := newTestServer(t, Options{CacheDir: dir, Sim: countingSim(&ran2, instantSim)})

	// Result endpoint backed by the disk cache, no submission at all.
	resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + first.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !jr.Cached || jr.Metrics.IPC != 11 {
		t.Fatalf("cache-backed result: status %d, %+v", resp.StatusCode, jr)
	}

	// Resubmission completes instantly from the cache.
	code, sr := postJob(t, ts2, submitBody(11))
	if code != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", code)
	}
	if sr.Created || sr.State != "done" || !sr.Cached {
		t.Fatalf("cached submit response %+v", sr)
	}
	if got := ran2.Load(); got != 0 {
		t.Fatalf("second server ran %d simulations, want 0", got)
	}
}

// TestQueueFullBackpressure: with one worker and a one-slot queue, a
// third concurrent submission bounces with 429 and Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueSize: 1, Sim: gatedSim(started, release),
	})

	code, first := postJob(t, ts, submitBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	<-started // worker holds job 1; the queue slot is free again

	code, second := postJob(t, ts, submitBody(2))
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d, want 202", code)
	}

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(submitBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(release)
	if st := waitState(t, ts, first.ID); st.State != "done" {
		t.Fatalf("job 1 final state %q", st.State)
	}
	if st := waitState(t, ts, second.ID); st.State != "done" {
		t.Fatalf("job 2 final state %q", st.State)
	}
}

// sseStates parses "event:" lines out of an SSE stream.
func sseStates(t *testing.T, r io.Reader) []string {
	t.Helper()
	var states []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			states = append(states, rest)
		}
	}
	return states
}

// TestStreamSSEOrdering: a live SSE subscriber sees the ordered
// lifecycle and the stream terminates with the job.
func TestStreamSSEOrdering(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{Workers: 1, Sim: gatedSim(started, release)})

	_, sr := postJob(t, ts, submitBody(5))
	<-started // job is running, not yet done

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	states := sseStates(t, resp.Body) // returns at stream end (terminal event)
	want := []string{"queued", "running", "done"}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("SSE states %v, want %v", states, want)
	}
}

// TestStreamNDJSONReplay: a subscriber arriving after completion gets
// the whole ordered history as NDJSON, with monotonically increasing
// sequence numbers, then EOF.
func TestStreamNDJSONReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, sr := postJob(t, ts, submitBody(9))
	waitState(t, ts, sr.ID)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sr.ID + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	want := []string{"queued", "running", "done"}
	for i, ev := range events {
		if ev.State != want[i] {
			t.Errorf("event %d state %q, want %q", i, ev.State, want[i])
		}
		if ev.Seq != i+1 {
			t.Errorf("event %d seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.JobID != sr.ID {
			t.Errorf("event %d job id %q", i, ev.JobID)
		}
	}
}

// TestGracefulShutdownDrains: Shutdown waits for the in-flight job,
// rejects new submissions while draining, and completes cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	dir := t.TempDir()
	srv, ts := newTestServer(t, Options{Workers: 1, CacheDir: dir, Sim: gatedSim(started, release)})

	_, sr := postJob(t, ts, submitBody(21))
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Intake must turn away new work while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := postJob(t, ts, submitBody(22))
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting submissions")
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := waitState(t, ts, sr.ID); st.State != "done" {
		t.Fatalf("in-flight job final state %q, want done (drained)", st.State)
	}

	// The drained job's result reached the disk cache: a fresh server
	// over the same directory serves it without simulating.
	var ran atomic.Int64
	_, ts2 := newTestServer(t, Options{CacheDir: dir, Sim: countingSim(&ran, instantSim)})
	code, sr2 := postJob(t, ts2, submitBody(21))
	if code != http.StatusOK || sr2.State != "done" || ran.Load() != 0 {
		t.Fatalf("post-drain cache: code %d state %q ran %d", code, sr2.State, ran.Load())
	}
}

// TestShutdownCancelsOverdueJobs: when the drain budget expires, the
// in-flight simulation is cancelled through its context.
func TestShutdownCancelsOverdueJobs(t *testing.T) {
	started := make(chan struct{}, 1)
	srv, ts := newTestServer(t, Options{
		Workers: 1,
		Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
			started <- struct{}{}
			<-ctx.Done() // simulate a run that only stops via cancellation
			return sim.Metrics{}, ctx.Err()
		},
	})
	_, sr := postJob(t, ts, submitBody(31))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown error %v, want deadline exceeded", err)
	}
	if st := waitState(t, ts, sr.ID); st.State != "failed" {
		t.Fatalf("cancelled job state %q, want failed", st.State)
	}
}

// TestMetricsAndHealthz: the Prometheus exposition carries the engine
// counters and /healthz reports build info.
func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 3})
	_, sr := postJob(t, ts, submitBody(41))
	waitState(t, ts, sr.ID)
	postJob(t, ts, submitBody(41)) // one dedup hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		"rrmserve_jobs_submitted_total 2",
		"rrmserve_jobs_deduplicated_total 1",
		"rrmserve_jobs_done_total 1",
		"rrmserve_jobs_failed_total 0",
		"rrmserve_jobs_running 0",
		"rrmserve_queue_depth 0",
		"rrmserve_queue_capacity 3",
		"rrmserve_job_duration_seconds_count 1",
		`rrmserve_job_duration_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" {
		t.Errorf("healthz status %v", hz["status"])
	}
	if v, _ := hz["version"].(string); v == "" {
		t.Error("healthz missing version")
	}
}

// TestDiscoveryEndpoints: workloads and schemes listings match the
// simulator's catalogs.
func TestDiscoveryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var wl struct {
		Workloads []struct {
			Name  string   `json:"name"`
			Cores []string `json:"cores"`
		} `json:"workloads"`
	}
	resp, err := http.Get(ts.URL + "/api/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&wl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Workloads) != 11 {
		t.Fatalf("%d workloads, want 11", len(wl.Workloads))
	}

	var sch struct {
		Schemes []string `json:"schemes"`
	}
	resp, err = http.Get(ts.URL + "/api/v1/schemes")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&sch)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Schemes) != 6 {
		t.Fatalf("schemes %v, want 6 entries", sch.Schemes)
	}
}

// TestConcurrentSubmissions: >= 32 concurrent submissions over 8
// distinct configs — exactly 8 simulations run, every job completes,
// and the bookkeeping stays consistent (run with -race).
func TestConcurrentSubmissions(t *testing.T) {
	var ran atomic.Int64
	_, ts := newTestServer(t, Options{
		Sim: countingSim(&ran, func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
			time.Sleep(time.Millisecond)
			return instantSim(ctx, cfg)
		}),
	})

	const submitters = 40
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, sr := postJob(t, ts, submitBody(uint64(i%8)+1))
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit %d: status %d", i, code)
				return
			}
			ids[i] = sr.ID
		}(i)
	}
	wg.Wait()

	uniq := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			continue
		}
		uniq[id] = true
		if st := waitState(t, ts, id); st.State != "done" {
			t.Errorf("job %s state %q", id, st.State)
		}
	}
	if len(uniq) != 8 {
		t.Fatalf("%d unique jobs, want 8", len(uniq))
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("%d simulations ran, want 8 (idempotency under contention)", got)
	}

	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 8 {
		t.Fatalf("list has %d jobs, want 8", len(list.Jobs))
	}
}

// TestRealSimulationEndToEnd runs one genuinely simulated tiny job
// through the full HTTP path (no fake SimFunc).
func TestRealSimulationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	srv, err := New(Options{Workers: 1}) // nil Sim: the real simulator
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	body, _ := json.Marshal(SubmitRequest{Scheme: "static-7", Workload: "GemsFDTD", Quick: true})
	code, sr := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	st := waitState(t, ts, sr.ID)
	if st.State != "done" {
		t.Fatalf("state %q: %s", st.State, st.Error)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Metrics.IPC <= 0 || jr.Metrics.Instructions == 0 {
		t.Fatalf("implausible metrics: %+v", jr.Metrics)
	}
	// The metrics round-tripped through ModeWrites' name-keyed JSON.
	if len(jr.Metrics.WritesByMode) == 0 {
		t.Fatal("WritesByMode did not survive serialization")
	}
}
