// Package server is the HTTP/JSON simulation service: it accepts RRM
// simulation jobs (full sim.Config documents or named scheme/workload
// shorthand), runs them on the internal/engine worker substrate, and
// serves status, results, streaming progress and Prometheus metrics.
//
// Design points, in the order they matter:
//
//   - Idempotency. A job's identity is the engine's config hash.
//     Resubmitting an identical config returns the existing job (or its
//     finished result) instead of running a second simulation, and a
//     submission whose result already sits in the disk run cache
//     completes instantly without touching the queue. The CLI tools,
//     the disk cache and the service therefore all agree on what "the
//     same run" means.
//
//   - Backpressure. The job queue is a bounded channel. When it is
//     full, submissions are rejected with HTTP 429 and a Retry-After
//     hint rather than queued without limit; the queue depth and the
//     rejection count are exported at /metrics.
//
//   - Observability. Engine lifecycle hooks (queued -> running ->
//     done/failed) feed both the Prometheus counters and the per-job
//     progress streams (SSE or NDJSON), so a client can follow a run
//     live with nothing but curl.
//
//   - Graceful shutdown. Shutdown stops intake (503), lets in-flight
//     and queued jobs drain, and — if its context expires first —
//     aborts the running simulations through the engine's context,
//     which sim.System.RunContext honors between event-queue slices.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/experiments"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/trace"
)

// Options configures a Server.
type Options struct {
	// QueueSize bounds the job queue; <= 0 means 64. Submissions
	// arriving on a full queue get 429.
	QueueSize int
	// Workers is the number of concurrent simulations; <= 0 means
	// GOMAXPROCS.
	Workers int
	// CacheDir, if non-empty, enables the disk run cache: results
	// persist there keyed by config hash and identical submissions
	// (even across restarts) are served from it.
	CacheDir string
	// JobTimeout bounds each simulation's wall clock (0 = none).
	JobTimeout time.Duration
	// RequestTimeout bounds non-streaming request handling; <= 0 means
	// 30 s. Progress streams are exempt (they are long-lived by
	// design and end with the job or the client).
	RequestTimeout time.Duration
	// WarmStart shares simulation warmup across jobs whose configs have
	// the same warmup-relevant prefix (engine.WarmRunSim). With CacheDir
	// set, snapshots also persist to disk under CacheDir/snapshots.
	WarmStart bool
	// Cache, if non-nil, overrides CacheDir as the finished-run store.
	// Cluster workers inject the shared artifact store here so any
	// worker serves any result computed anywhere.
	Cache engine.ResultCache
	// Snapshots, if non-nil, overrides the warm-start snapshot store the
	// same way (shared warm prefixes across workers). Only consulted
	// when WarmStart is set.
	Snapshots engine.SnapshotStore
	// Sim overrides the simulation function (tests only).
	Sim engine.SimFunc
	// TraceDir, if non-empty, enables tenant trace replay: tenant
	// submissions may reference recorded trace files by paths relative
	// to (and confined under) this directory. Empty disables trace
	// tenants; profile tenants work regardless.
	TraceDir string
}

// Server is the simulation service. Create with New, serve via
// Handler, stop with Shutdown.
type Server struct {
	opt   Options
	eng   *engine.Engine
	cache engine.ResultCache
	met   *serverMetrics
	mux   http.Handler
	start time.Time

	// notReady is the readiness latch (see SetReady): while set,
	// /healthz answers 503 so load balancers and the cluster coordinator
	// stop routing here, without affecting liveness (/livez) or the jobs
	// already in flight.
	notReady atomic.Bool

	lifeCtx    context.Context // cancelled to abort in-flight sims
	lifeCancel context.CancelFunc
	workerWG   sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*jobRecord
	order  []string // submission order, for listing
	queue  chan *jobRecord
	closed bool
}

// New builds the service and starts its worker pool.
func New(opt Options) (*Server, error) {
	if opt.QueueSize <= 0 {
		opt.QueueSize = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 30 * time.Second
	}
	s := &Server{
		opt:   opt,
		met:   newServerMetrics(),
		start: time.Now(),
		jobs:  map[string]*jobRecord{},
		queue: make(chan *jobRecord, opt.QueueSize),
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())

	eopt := engine.Options{
		Timeout:  opt.JobTimeout,
		Observer: s.met,
		Sim:      opt.Sim,
	}
	switch {
	case opt.Cache != nil:
		s.cache = opt.Cache
		eopt.Cache = opt.Cache
	case opt.CacheDir != "":
		c, err := engine.OpenRunCache(opt.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.cache = c
		eopt.Cache = c
	}
	if opt.WarmStart && eopt.Sim == nil {
		store := opt.Snapshots
		if store == nil {
			store = engine.NewMemSnapshotStore()
			if opt.CacheDir != "" {
				c, err := engine.OpenSnapshotCache(filepath.Join(opt.CacheDir, "snapshots"))
				if err != nil {
					return nil, fmt.Errorf("server: %w", err)
				}
				store = c
			}
		}
		eopt.Sim = engine.WarmRunSim(store)
	}
	s.eng = engine.New(eopt)
	s.mux = s.routes()

	for i := 0; i < opt.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops intake, drains queued and in-flight jobs, and returns
// when the workers have exited. If ctx expires first, the running
// simulations are cancelled (through sim.System.RunContext) and
// Shutdown returns ctx's error after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.lifeCancel()
		<-done
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes. Cancellation of
// a drain-deadline overrun arrives through lifeCtx inside Execute.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for rec := range s.queue {
		rec.transition(engine.JobStateRunning, nil, time.Now())
		res := s.eng.Execute(s.lifeCtx, rec.ejob)
		state := engine.JobStateDone
		if res.Err != nil {
			state = engine.JobStateFailed
		}
		rec.transition(state, &res, time.Now())
	}
}

// routes assembles the Go 1.22 pattern mux. Non-streaming handlers are
// wrapped in the request timeout.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	timed := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.opt.RequestTimeout, `{"error":"request timed out"}`)
	}
	mux.Handle("POST /api/v1/jobs", timed(s.handleSubmit))
	mux.Handle("GET /api/v1/jobs", timed(s.handleList))
	mux.Handle("GET /api/v1/jobs/{id}", timed(s.handleStatus))
	mux.Handle("GET /api/v1/jobs/{id}/result", timed(s.handleResult))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleStream) // long-lived: no timeout
	mux.Handle("GET /api/v1/workloads", timed(s.handleWorkloads))
	mux.Handle("GET /api/v1/schemes", timed(s.handleSchemes))
	mux.Handle("GET /metrics", timed(s.handleMetrics))
	mux.Handle("GET /healthz", timed(s.handleHealthz))
	mux.Handle("GET /livez", timed(s.handleLivez))
	return mux
}

// SetReady flips the readiness latch. A worker that has deregistered
// from its coordinator (or is otherwise draining) calls SetReady(false)
// so /healthz starts answering 503 while /livez keeps reporting the
// process alive; in-flight and queued jobs are unaffected.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the readiness latch (true) unless the server is also
// draining, which is unready by definition.
func (s *Server) Ready() bool {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	return !draining && !s.notReady.Load()
}

// QueueDepth reports how many jobs are waiting in the bounded queue.
func (s *Server) QueueDepth() int { return len(s.queue) }

// QueueCapacity reports the bounded queue's capacity.
func (s *Server) QueueCapacity() int { return s.opt.QueueSize }

// SimsExecuted reports how many simulations this server's engine
// actually launched (cache hits excluded) — the counter the cluster's
// zero-duplicate-work assertions sum across workers.
func (s *Server) SimsExecuted() uint64 { return s.eng.SimsExecuted() }

// SubmitRequest is the POST /api/v1/jobs body. Either Config carries a
// full sim.Config document, or Scheme+Workload name a run built with
// the experiment suite's defaults (Quick selects the reduced windows,
// Seed overrides the pass seed).
type SubmitRequest struct {
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Label is cosmetic: it prefixes the job's display name.
	Label  string      `json:"label,omitempty"`
	Config *sim.Config `json:"config,omitempty"`
	// Tenants, with Scheme, submits a multi-tenant run: one stream per
	// entry (trace replay or synthetic profile), with per-tenant
	// attribution in the result's metrics. Mutually exclusive with
	// Workload and Config.
	Tenants []TenantStream `json:"tenants,omitempty"`
	// Sampling, when set, runs the submission as a SMARTS-style sampled
	// simulation (see sim.SamplingSpec); the result's metrics carry
	// confidence intervals. A sampled submission hashes to a different
	// job key than the full run of the same config, so the two never
	// collide in the run cache or the cluster's dedup index.
	Sampling *sim.SamplingSpec `json:"sampling,omitempty"`
}

// JobStatus is the wire representation of one job.
type JobStatus struct {
	ID          string     `json:"id"`
	Name        string     `json:"name"`
	Scheme      string     `json:"scheme"`
	Workload    string     `json:"workload"`
	State       string     `json:"state"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Cached      bool       `json:"cached,omitempty"`
	WallSeconds float64    `json:"wall_seconds,omitempty"`
	Error       string     `json:"error,omitempty"`
}

// SubmitResponse is JobStatus plus whether this submission created the
// job (false: idempotency hit on a live job or the disk cache).
type SubmitResponse struct {
	JobStatus
	Created bool `json:"created"`
}

// JobResult is the GET .../result envelope.
type JobResult struct {
	ID          string      `json:"id"`
	Name        string      `json:"name,omitempty"`
	Cached      bool        `json:"cached"`
	WallSeconds float64     `json:"wall_seconds"`
	Metrics     sim.Metrics `json:"metrics"`
}

// BuildJob resolves a submission into the engine job it denotes —
// validated config, config-hash key, display name. The cluster
// coordinator calls this to learn a submission's identity (and thereby
// its owning worker) without running anything; the worker it routes to
// resolves the same bytes to the same job, so the two tiers can never
// disagree about what a submission means.
func BuildJob(req SubmitRequest) (engine.Job, error) {
	return BuildJobIn("", req)
}

// BuildJobIn is BuildJob with a trace directory: tenant submissions
// that reference trace files resolve them relative to traceDir (empty
// rejects trace tenants, which is how a coordinator without local
// trace files behaves — profile tenants still work).
func BuildJobIn(traceDir string, req SubmitRequest) (engine.Job, error) {
	cfg, err := buildConfig(traceDir, req)
	if err != nil {
		return engine.Job{}, err
	}
	if req.Sampling != nil {
		if cfg.Sampling != nil {
			return engine.Job{}, fmt.Errorf("sampling is specified both at the top level and inside config")
		}
		cfg.Sampling = req.Sampling
		if err := cfg.Validate(); err != nil {
			return engine.Job{}, err
		}
	}
	return experiments.NewJob(cfg, req.Label)
}

// buildConfig resolves a submission into a validated run config.
func buildConfig(traceDir string, req SubmitRequest) (sim.Config, error) {
	if req.Config != nil {
		if req.Scheme != "" || req.Workload != "" || len(req.Tenants) > 0 {
			return sim.Config{}, fmt.Errorf("config and scheme/workload/tenants shorthand are mutually exclusive")
		}
		cfg := *req.Config
		if err := cfg.Validate(); err != nil {
			return sim.Config{}, err
		}
		return cfg, nil
	}
	if len(req.Tenants) > 0 {
		if req.Workload != "" {
			return sim.Config{}, fmt.Errorf("tenants and workload are mutually exclusive")
		}
		if req.Scheme == "" {
			return sim.Config{}, fmt.Errorf("tenant submissions need a scheme")
		}
		scheme, err := experiments.ParseScheme(req.Scheme)
		if err != nil {
			return sim.Config{}, err
		}
		w, err := tenantWorkload(traceDir, req.Tenants)
		if err != nil {
			return sim.Config{}, err
		}
		opt := experiments.Options{Quick: req.Quick, Seed: req.Seed}
		cfg := opt.SimConfig(scheme, w)
		if err := cfg.Validate(); err != nil {
			return sim.Config{}, err
		}
		return cfg, nil
	}
	if req.Scheme == "" || req.Workload == "" {
		return sim.Config{}, fmt.Errorf("need either config, scheme+workload, or scheme+tenants")
	}
	scheme, err := experiments.ParseScheme(req.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	w, err := trace.WorkloadByName(req.Workload)
	if err != nil {
		return sim.Config{}, err
	}
	opt := experiments.Options{Quick: req.Quick, Seed: req.Seed}
	return opt.SimConfig(scheme, w), nil
}

// handleSubmit implements idempotent submission with backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	ejob, err := BuildJobIn(s.opt.TraceDir, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ejob.Uncacheable {
		// Custom policies cannot cross the wire; Validate rejects them
		// earlier, so this is pure defense in depth.
		writeError(w, http.StatusBadRequest, "custom-policy configs cannot be submitted over HTTP")
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.met.submitted.Add(1)

	if rec, ok := s.jobs[ejob.Key]; ok {
		s.mu.Unlock()
		s.met.deduped.Add(1)
		writeJSON(w, http.StatusOK, SubmitResponse{JobStatus: rec.status()})
		return
	}

	// Not live: a previous process may have finished it — serve
	// straight from the disk run cache without consuming a queue slot.
	if s.cache != nil {
		if m, ok, cerr := s.cache.Load(ejob.Key); cerr == nil && ok {
			res := engine.Result{Key: ejob.Key, Name: ejob.Name, Metrics: m, Cached: true}
			rec := completedRecord(ejob.Key, ejob, res, time.Now())
			s.jobs[ejob.Key] = rec
			s.order = append(s.order, ejob.Key)
			s.mu.Unlock()
			s.met.cacheHits.Add(1)
			s.met.done.Add(1)
			writeJSON(w, http.StatusOK, SubmitResponse{JobStatus: rec.status()})
			return
		}
	}

	rec := newJobRecord(ejob.Key, ejob, time.Now())
	select {
	case s.queue <- rec:
		s.jobs[ejob.Key] = rec
		s.order = append(s.order, ejob.Key)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, SubmitResponse{JobStatus: rec.status(), Created: true})
	default:
		s.mu.Unlock()
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d pending); retry later", s.opt.QueueSize))
	}
}

// retryAfterSeconds estimates when a queue slot should free up: the
// per-job timeout if one is set, else a small constant.
func (s *Server) retryAfterSeconds() int {
	if s.opt.JobTimeout > 0 {
		if sec := int(s.opt.JobTimeout / time.Second); sec > 0 {
			return sec
		}
	}
	return 5
}

// lookup finds a live job record.
func (s *Server) lookup(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]*jobRecord, 0, len(s.order))
	for _, id := range s.order {
		recs = append(recs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(recs))
	for i, rec := range recs {
		out[i] = rec.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, ok := s.lookup(id); ok {
		writeJSON(w, http.StatusOK, rec.status())
		return
	}
	// Not live, but maybe finished in an earlier process: the status
	// endpoint is backed by the disk run cache too.
	if m, ok := s.cachedMetrics(id); ok {
		writeJSON(w, http.StatusOK, JobStatus{
			ID: id, Scheme: m.Scheme, Workload: m.Workload,
			State: engine.JobStateDone.String(), Cached: true,
		})
		return
	}
	writeError(w, http.StatusNotFound, "unknown job "+id)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, ok := s.lookup(id); ok {
		res, terminal := rec.snapshotResult()
		switch {
		case !terminal:
			writeJSON(w, http.StatusAccepted, rec.status())
		case res.Err != nil:
			writeError(w, http.StatusInternalServerError, res.Err.Error())
		default:
			writeJSON(w, http.StatusOK, JobResult{
				ID: id, Name: res.Name, Cached: res.Cached,
				WallSeconds: res.Wall.Seconds(), Metrics: res.Metrics,
			})
		}
		return
	}
	if m, ok := s.cachedMetrics(id); ok {
		writeJSON(w, http.StatusOK, JobResult{ID: id, Cached: true, Metrics: m})
		return
	}
	writeError(w, http.StatusNotFound, "unknown job "+id)
}

// cachedMetrics probes the disk run cache for a config-hash id.
func (s *Server) cachedMetrics(id string) (sim.Metrics, bool) {
	if s.cache == nil {
		return sim.Metrics{}, false
	}
	m, ok, err := s.cache.Load(id)
	return m, err == nil && ok
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type wl struct {
		Name  string   `json:"name"`
		Cores []string `json:"cores"`
	}
	var out []wl
	for _, wk := range trace.Workloads() {
		cores := make([]string, len(wk.Cores))
		for i, p := range wk.Cores {
			cores[i] = p.Name
		}
		out = append(out, wl{Name: wk.Name, Cores: cores})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemes": experiments.SchemeNames()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w, len(s.queue), s.opt.QueueSize, time.Since(s.start).Seconds(), s.eng.SimsExecuted())
}

// handleHealthz is the readiness probe: 503 while draining or after
// SetReady(false) — a deregistered cluster worker — so load balancers
// and the coordinator stop routing new work here. Liveness is /livez.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	live := len(s.jobs)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	switch {
	case draining:
		status, code = "draining", http.StatusServiceUnavailable
	case s.notReady.Load():
		status, code = "not-ready", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"version":        buildinfo.Version(),
		"build":          buildinfo.String(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"queue_depth":    len(s.queue),
		"queue_capacity": s.opt.QueueSize,
		"workers":        s.opt.Workers,
		"jobs_tracked":   live,
		"jobs_running":   s.met.running.Load(),
		"jobs_done":      s.met.done.Load(),
		"jobs_failed":    s.met.failed.Load(),
		"sims_executed":  s.eng.SimsExecuted(),
	})
}

// handleLivez is the liveness probe: 200 for as long as the process can
// answer HTTP at all, even while draining or unready. Restart-deciders
// watch this; routing-deciders watch /healthz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "alive",
		"version":        buildinfo.Version(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
