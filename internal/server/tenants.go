package server

import (
	"fmt"
	"path/filepath"
	"strings"

	"rrmpcm/internal/trace"
	"rrmpcm/internal/tracefile"
)

// TenantStream describes one tenant's stream in a multi-tenant
// submission: either a recorded trace file (a path relative to the
// server's configured trace directory) or a named synthetic profile.
// Exactly one of Trace and Profile must be set, and one submission
// must use the same kind for every stream (the simulated machine
// replays trace files or generates synthetically — not both).
type TenantStream struct {
	// Name is the tenant the stream belongs to. Streams sharing a name
	// are attributed to one tenant.
	Name string `json:"name"`
	// Trace is a trace-file path relative to the server's -trace-dir.
	Trace string `json:"trace,omitempty"`
	// Profile names a synthetic benchmark profile (trace.Profiles).
	Profile string `json:"profile,omitempty"`
}

// tenantWorkload resolves a tenant submission into a workload: one
// stream per entry, per-stream tenant names, and — for trace streams —
// content-addressed replay references (the file is loaded here, so the
// config hash covers the trace bytes at submission time).
func tenantWorkload(traceDir string, tenants []TenantStream) (trace.Workload, error) {
	if len(tenants) == 0 {
		return trace.Workload{}, fmt.Errorf("empty tenant list")
	}
	names := make([]string, len(tenants))
	nTrace := 0
	for i, t := range tenants {
		if t.Name == "" {
			return trace.Workload{}, fmt.Errorf("tenant stream %d has no name", i)
		}
		if (t.Trace == "") == (t.Profile == "") {
			return trace.Workload{}, fmt.Errorf("tenant stream %d: exactly one of trace and profile must be set", i)
		}
		if t.Trace != "" {
			nTrace++
		}
		names[i] = t.Name
	}
	if nTrace != 0 && nTrace != len(tenants) {
		return trace.Workload{}, fmt.Errorf("tenant streams mix trace replay and synthetic profiles")
	}

	w := trace.Workload{Name: "tenants:" + strings.Join(names, "+"), Tenants: names}
	if nTrace > 0 {
		if traceDir == "" {
			return trace.Workload{}, fmt.Errorf("tenant trace replay is disabled: the server has no trace directory configured")
		}
		for i, t := range tenants {
			rel := filepath.Clean(t.Trace)
			if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
				return trace.Workload{}, fmt.Errorf("tenant stream %d: trace path %q escapes the trace directory", i, t.Trace)
			}
			path := filepath.Join(traceDir, rel)
			f, err := tracefile.Load(path)
			if err != nil {
				return trace.Workload{}, fmt.Errorf("tenant stream %d: %w", i, err)
			}
			w.Replay = append(w.Replay, trace.TraceRef{Path: path, Sum: f.Sum()})
		}
		return w, nil
	}
	for i, t := range tenants {
		p, err := trace.ProfileByName(t.Profile)
		if err != nil {
			return trace.Workload{}, fmt.Errorf("tenant stream %d: %w", i, err)
		}
		w.Cores = append(w.Cores, p)
	}
	return w, nil
}
