package server

import (
	"context"
	"net/http"
	"testing"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/timing"
)

// TestSampledSubmissionIdentity: a sampled submission denotes a
// different job than the full run of the same config — distinct engine
// keys, so the run cache and the cluster dedup index can never serve one
// for the other — and distinct sampling specs are themselves distinct.
func TestSampledSubmissionIdentity(t *testing.T) {
	base := SubmitRequest{Scheme: "rrm", Workload: "GemsFDTD", Quick: true, Seed: 3}
	full, err := BuildJob(base)
	if err != nil {
		t.Fatal(err)
	}
	sampled := base
	sampled.Sampling = &sim.SamplingSpec{
		Windows: 8, Window: 5 * timing.Microsecond, DetailWarmup: 2 * timing.Microsecond,
	}
	sj, err := BuildJob(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if sj.Key == full.Key {
		t.Fatal("sampled and full submissions share a job key")
	}
	wider := sampled
	wider.Sampling = &sim.SamplingSpec{
		Windows: 15, Window: 5 * timing.Microsecond, DetailWarmup: 2 * timing.Microsecond,
	}
	wj, err := BuildJob(wider)
	if err != nil {
		t.Fatal(err)
	}
	if wj.Key == sj.Key {
		t.Fatal("different sampling budgets share a job key")
	}
}

// TestSampledSubmissionHTTP: the sampling field reaches the built config
// over the wire, bad specs are rejected up front, and double
// specification (top level and inside config) is a client error.
func TestSampledSubmissionHTTP(t *testing.T) {
	var got *sim.SamplingSpec
	_, ts := newTestServer(t, Options{Workers: 1, Sim: func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		got = cfg.Sampling
		return sim.Metrics{Scheme: cfg.Scheme.Name(), Workload: cfg.Workload.Name}, nil
	}})

	body := `{"scheme":"rrm","workload":"GemsFDTD","quick":true,
		"sampling":{"windows":8,"window":5000,"detail_warmup":2000}}`
	code, sr := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("sampled submit status %d, want 202", code)
	}
	if st := waitState(t, ts, sr.ID); st.State != "done" {
		t.Fatalf("sampled job state %q (%s)", st.State, st.Error)
	}
	if got == nil || got.Windows != 8 || got.Window != 5000 || got.DetailWarmup != 2000 {
		t.Fatalf("sampling spec did not reach the simulation: %+v", got)
	}

	for _, bad := range []string{
		// One window: no variance, Validate rejects.
		`{"scheme":"rrm","workload":"GemsFDTD","quick":true,"sampling":{"windows":1,"window":5000}}`,
		// Window larger than its segment.
		`{"scheme":"rrm","workload":"GemsFDTD","quick":true,"sampling":{"windows":1000000,"window":5000000}}`,
	} {
		if code, _ := postJob(t, ts, bad); code != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", bad, code)
		}
	}
}
