package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// handleStream serves a job's lifecycle as a live stream: Server-Sent
// Events by default, newline-delimited JSON with ?format=ndjson (or an
// Accept: application/x-ndjson header). The stream replays the job's
// full history first — a subscriber arriving after completion still
// sees the ordered queued/running/terminal sequence — then follows the
// job until its terminal event, and ends there.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")

	flusher, canFlush := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	w.WriteHeader(http.StatusOK)

	emit := func(ev StreamEvent) error {
		blob, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if ndjson {
			_, err = fmt.Fprintf(w, "%s\n", blob)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, blob)
		}
		if err != nil {
			return err
		}
		if canFlush {
			flusher.Flush()
		}
		return nil
	}

	history, live, cancel := rec.subscribe()
	defer cancel()
	for _, ev := range history {
		if emit(ev) != nil {
			return
		}
		if ev.terminal() {
			return
		}
	}
	for {
		select {
		case ev := <-live:
			if emit(ev) != nil {
				return
			}
			if ev.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
