package server

import (
	"sync"
	"time"

	"rrmpcm/internal/engine"
)

// StreamEvent is one job lifecycle transition as serialized onto the
// progress streams (SSE data frames and NDJSON lines) — a flattened,
// wire-stable view of engine.JobEvent.
type StreamEvent struct {
	Seq         int       `json:"seq"`
	JobID       string    `json:"job_id"`
	State       string    `json:"state"`
	At          time.Time `json:"at"`
	Cached      bool      `json:"cached,omitempty"`
	WallSeconds float64   `json:"wall_seconds,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// terminal reports whether the event ends its job's stream.
func (ev StreamEvent) terminal() bool {
	return ev.State == engine.JobStateDone.String() || ev.State == engine.JobStateFailed.String()
}

// jobRecord is the server-side state machine of one submitted job. The
// record is the unit of idempotency: its id is the engine config hash,
// so resubmitting an identical config lands on the same record.
type jobRecord struct {
	id   string
	ejob engine.Job

	mu        sync.Mutex
	state     engine.JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *engine.Result
	events    []StreamEvent
	subs      map[chan StreamEvent]struct{}
}

func newJobRecord(id string, ejob engine.Job, now time.Time) *jobRecord {
	rec := &jobRecord{
		id:        id,
		ejob:      ejob,
		state:     engine.JobStateQueued,
		submitted: now,
		subs:      map[chan StreamEvent]struct{}{},
	}
	rec.events = append(rec.events, StreamEvent{
		Seq: 1, JobID: id, State: engine.JobStateQueued.String(), At: now,
	})
	return rec
}

// completedRecord builds a record that was satisfied without running —
// a disk-cache hit at submission time. Its event history is the full
// queued/running/done sequence (all at the same instant), so late
// stream subscribers see a well-formed lifecycle.
func completedRecord(id string, ejob engine.Job, res engine.Result, now time.Time) *jobRecord {
	rec := newJobRecord(id, ejob, now)
	rec.state = engine.JobStateDone
	rec.started, rec.finished = now, now
	rec.result = &res
	rec.events = append(rec.events,
		StreamEvent{Seq: 2, JobID: id, State: engine.JobStateRunning.String(), At: now},
		StreamEvent{Seq: 3, JobID: id, State: engine.JobStateDone.String(), At: now,
			Cached: true, WallSeconds: res.Wall.Seconds()},
	)
	return rec
}

// transition moves the record to state, appending and broadcasting the
// stream event. res must be non-nil for terminal states.
func (rec *jobRecord) transition(state engine.JobState, res *engine.Result, now time.Time) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.state = state
	ev := StreamEvent{
		Seq: len(rec.events) + 1, JobID: rec.id, State: state.String(), At: now,
	}
	switch state {
	case engine.JobStateRunning:
		rec.started = now
	case engine.JobStateDone, engine.JobStateFailed:
		rec.finished = now
		rec.result = res
		if res != nil {
			ev.Cached = res.Cached
			ev.WallSeconds = res.Wall.Seconds()
			if res.Err != nil {
				ev.Error = res.Err.Error()
			}
		}
	}
	rec.events = append(rec.events, ev)
	for ch := range rec.subs {
		select {
		case ch <- ev:
		default:
			// A subscriber that cannot keep up (buffer 16, a job emits
			// at most 4 events) loses the event rather than blocking a
			// worker; the replay-on-subscribe path makes this benign.
		}
	}
}

// subscribe returns the record's event history so far plus a channel
// carrying subsequent events, and a cancel function that detaches the
// channel. History and registration are atomic: no event is ever
// missed or duplicated between the two.
func (rec *jobRecord) subscribe() ([]StreamEvent, <-chan StreamEvent, func()) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	history := make([]StreamEvent, len(rec.events))
	copy(history, rec.events)
	ch := make(chan StreamEvent, 16)
	rec.subs[ch] = struct{}{}
	return history, ch, func() {
		rec.mu.Lock()
		delete(rec.subs, ch)
		rec.mu.Unlock()
	}
}

// status snapshots the record into the wire representation.
func (rec *jobRecord) status() JobStatus {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	st := JobStatus{
		ID:          rec.id,
		Name:        rec.ejob.Name,
		Scheme:      rec.ejob.Config.Scheme.Name(),
		Workload:    rec.ejob.Config.Workload.Name,
		State:       rec.state.String(),
		SubmittedAt: rec.submitted,
	}
	if !rec.started.IsZero() {
		t := rec.started
		st.StartedAt = &t
	}
	if !rec.finished.IsZero() {
		t := rec.finished
		st.FinishedAt = &t
	}
	if rec.result != nil {
		st.Cached = rec.result.Cached
		st.WallSeconds = rec.result.Wall.Seconds()
		if rec.result.Err != nil {
			st.Error = rec.result.Err.Error()
		}
	}
	return st
}

// snapshotResult returns the terminal result, if any.
func (rec *jobRecord) snapshotResult() (engine.Result, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.result == nil {
		return engine.Result{}, false
	}
	return *rec.result, true
}
