package experiments

import (
	"fmt"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// WriteIntervalHistogram runs a workload through the cache hierarchy with
// no memory timing (a functional pass: the clock advances at each core's
// base CPI) and records every memory write — every dirty LLC victim —
// per 4 KB region. This is the measurement behind Table III and the
// §III-C hot/cold observation. The window is instruction time; regions
// re-written more slowly than the window land in the "written once" row.
func WriteIntervalHistogram(w trace.Workload, window timing.Time, seed uint64) (*stats.IntervalHistogram, error) {
	dev := pcm.DefaultDeviceConfig()
	hier, err := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	if err != nil {
		return nil, err
	}
	hist := stats.NewIntervalHistogram(dev.MemBytes)

	span := dev.MemBytes / uint64(len(w.Cores))
	type coreState struct {
		gen  *trace.Mixture
		time timing.Time
		cpi  timing.Time
	}
	cores := make([]*coreState, len(w.Cores))
	if seed == 0 {
		seed = 1
	}
	for i, prof := range w.Cores {
		gen, err := trace.NewMixture(prof, uint64(i)*span, span, seed*1_000_003+uint64(i))
		if err != nil {
			return nil, err
		}
		cores[i] = &coreState{gen: gen, cpi: timing.Time(prof.BaseCPI * float64(timing.CPUCycle))}
	}

	// Round-robin the cores in coarse slices, recording every memory
	// write the hierarchy produces.
	var op trace.Op
	for {
		done := true
		for i, c := range cores {
			if c.time >= window {
				continue
			}
			done = false
			slice := c.time + 50*timing.Microsecond
			for c.time < slice {
				c.gen.Next(&op)
				c.time += timing.Time(op.NonMem+1) * c.cpi
				kind := cache.Load
				if op.Store {
					kind = cache.Store
				}
				res := hier.Access(i, op.Addr, kind, false)
				for k := 0; k < res.NumMemWrites; k++ {
					hist.AddWrite(res.MemWrites[k], c.time)
				}
			}
		}
		if done {
			break
		}
	}
	return hist, nil
}

// FormatIntervalHistogram renders a histogram in Table III's layout.
func FormatIntervalHistogram(hist *stats.IntervalHistogram) string {
	rows := [][]string{{"Average Write Interval", "# Regions", "% of Regions", "# Writes", "% of Total Writes"}}
	for _, row := range hist.Rows() {
		writes := fmt.Sprintf("%d", row.Writes)
		wp := fmt.Sprintf("%.1f%%", row.WritePercent)
		if row.Bucket == stats.BucketNeverWritten {
			writes, wp = "", ""
		}
		rows = append(rows, []string{
			row.Bucket.String(),
			fmt.Sprintf("%d", row.Regions),
			fmt.Sprintf("%.2f%%", row.RegionPercent),
			writes,
			wp,
		})
	}
	return stats.Table(rows)
}

// Table3 regenerates the GemsFDTD region write-interval histogram of
// Table III: 4 copies of GemsFDTD on the 8 GB memory.
//
// The paper records 5 s of simulation; the intervals that matter (the
// dominant 1e6-1e7 ns tier) are milliseconds-scale, so a sub-second
// functional window captures the structure (tiers slower than the window
// are truncated into "written once").
func Table3(opt Options) (string, error) {
	window := 300 * timing.Millisecond
	if opt.Quick {
		window = 30 * timing.Millisecond
	}
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		return "", err
	}
	hist, err := WriteIntervalHistogram(w, window, opt.Seed)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("GemsFDTD x4, %v instruction-time window, 4 KB regions\n", window)
	out += FormatIntervalHistogram(hist)
	out += fmt.Sprintf("\nHottest 2%% of regions take %.1f%% of writes (paper §III-C: ~2%% take up to 97.3%%)\n",
		100*hist.HotShare(0.02))
	return out, nil
}
