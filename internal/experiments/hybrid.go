package experiments

import (
	"fmt"
	"strings"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/trace"
)

// ExperimentHybrid (H1) evaluates the DRAM staging tier against — and
// combined with — the paper's RRM. Four variants per workload:
// Static-7 (the slow/durable baseline everything is normalized to),
// RRM-in-PCM alone, Static-7 fronted by the DRAM cache, and RRM plus
// the DRAM cache. The two mechanisms attack the same problem from
// opposite ends: the RRM speeds up hot PCM writes in place (spending
// refresh energy), the staging tier keeps hot pages out of PCM entirely
// (spending DRAM capacity and migration traffic). The interesting
// question is whether they compose: DRAM absorbs the write bursts, so
// the RRM's fast tier sees only the overflow and its refresh burden
// shrinks.
//
// The workload set is the main matrix plus the non-stationary W1
// generators, where migration churn (promote, strand, demote) is
// hardest on the staging tier.
func ExperimentHybrid(r *Runner) (string, error) {
	withDRAM := func(c *sim.Config) {
		hc := dram.DefaultHybridConfig()
		c.Hybrid = &hc
	}
	variants := []struct {
		name   string
		scheme sim.Scheme
		mutate func(*sim.Config)
	}{
		{"Static-7", sim.StaticScheme(pcm.Mode7SETs), nil},
		{"RRM", sim.RRMScheme(), nil},
		{"Static-7+DRAM", sim.StaticScheme(pcm.Mode7SETs), withDRAM},
		{"RRM+DRAM", sim.RRMScheme(), withDRAM},
	}

	ws := append([]trace.Workload{}, r.opt.workloads()...)
	for i, w := range trace.DynamicWorkloads() {
		if r.opt.Quick && i > 0 {
			break // one phase-changing generator is enough for smoke runs
		}
		ws = append(ws, w)
	}

	specs := make([]RunSpec, 0, len(ws)*len(variants))
	for _, w := range ws {
		for _, v := range variants {
			specs = append(specs, RunSpec{Label: "h1", Scheme: v.scheme, Workload: w, Mutate: v.mutate})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	at := func(wi, vi int) sim.Metrics { return ms[wi*len(variants)+vi] }

	// pcmWriteShare is the fraction of demand writes the PCM array
	// actually served (including migration writebacks); 1.0 without the
	// staging tier, lower when DRAM absorbs and coalesces.
	pcmWriteShare := func(m sim.Metrics) float64 {
		if m.Hybrid == nil || m.WritesServed == 0 {
			return 1
		}
		return float64(m.Hybrid.PCMWrites) / float64(m.WritesServed)
	}

	rows := [][]string{{"Workload", "Variant", "Norm. IPC", "Lifetime y", "Energy J", "PCM write share", "Promotions"}}
	for wi, w := range ws {
		base := at(wi, 0)
		for vi, v := range variants {
			m := at(wi, vi)
			promotions := "-"
			if m.Hybrid != nil {
				promotions = fmt.Sprintf("%d", m.Hybrid.Promotions)
			}
			rows = append(rows, []string{
				w.Name, v.name,
				fmt.Sprintf("%.3f", m.IPC/base.IPC),
				fmt.Sprintf("%.2f", m.LifetimeYears),
				fmt.Sprintf("%.3f", m.EnergyTotalJ),
				fmt.Sprintf("%.2f", pcmWriteShare(m)),
				promotions,
			})
		}
	}

	var b strings.Builder
	b.WriteString("Hybrid DRAM staging tier, IPC normalized to Static-7-SETs per workload\n")
	b.WriteString(stats.Table(rows))

	// Geomean summary per variant.
	sum := [][]string{{"Variant", "Norm. IPC", "Lifetime y", "Energy J", "PCM write share"}}
	gm := make([]struct{ ipc, life, energy, share float64 }, len(variants))
	for vi := range variants {
		perf := make([]float64, 0, len(ws))
		life := make([]float64, 0, len(ws))
		energy := make([]float64, 0, len(ws))
		share := make([]float64, 0, len(ws))
		for wi := range ws {
			m := at(wi, vi)
			perf = append(perf, m.IPC/at(wi, 0).IPC)
			life = append(life, m.LifetimeYears)
			energy = append(energy, m.EnergyTotalJ)
			share = append(share, pcmWriteShare(m))
		}
		gm[vi].ipc = stats.Geomean(perf)
		gm[vi].life = stats.Geomean(life)
		gm[vi].energy = stats.Geomean(energy)
		gm[vi].share = stats.Geomean(share)
		sum = append(sum, []string{
			variants[vi].name,
			fmt.Sprintf("%.3f", gm[vi].ipc),
			fmt.Sprintf("%.2f", gm[vi].life),
			fmt.Sprintf("%.3f", gm[vi].energy),
			fmt.Sprintf("%.2f", gm[vi].share),
		})
	}
	b.WriteString("\nGeomean over all workloads\n")
	b.WriteString(stats.Table(sum))

	fmt.Fprintf(&b, "\nDRAM staging cuts PCM demand-write traffic to %.0f%% (Static-7+DRAM) / %.0f%% (RRM+DRAM) of baseline\n",
		100*gm[2].share, 100*gm[3].share)
	fmt.Fprintf(&b, "Lifetime: Static-7+DRAM %+.1f%% vs Static-7; RRM+DRAM %+.1f%% vs RRM alone\n",
		100*(gm[2].life/gm[0].life-1), 100*(gm[3].life/gm[1].life-1))

	// Dominance: workloads where the combined scheme beats both single
	// mechanisms on IPC and lifetime simultaneously.
	var domBoth, domIPC, domLife int
	for wi := range ws {
		rrm, sd, both := at(wi, 1), at(wi, 2), at(wi, 3)
		ipcWin := both.IPC >= rrm.IPC && both.IPC >= sd.IPC
		lifeWin := both.LifetimeYears >= rrm.LifetimeYears && both.LifetimeYears >= sd.LifetimeYears
		if ipcWin {
			domIPC++
		}
		if lifeWin {
			domLife++
		}
		if ipcWin && lifeWin {
			domBoth++
		}
	}
	fmt.Fprintf(&b, "RRM+DRAM vs best single mechanism: IPC wins %d/%d, lifetime wins %d/%d, both %d/%d workloads\n",
		domIPC, len(ws), domLife, len(ws), domBoth, len(ws))
	return b.String(), nil
}
