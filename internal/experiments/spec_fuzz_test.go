package experiments

import (
	"testing"

	"rrmpcm/internal/sim"
)

// FuzzParseScheme fuzzes the scheme-name parser shared by the CLI and
// the HTTP service: no input may panic, and any accepted input must
// yield a well-formed scheme (a valid static mode or the RRM policy)
// whose canonical spelling parses back to the same scheme.
func FuzzParseScheme(f *testing.F) {
	for _, name := range SchemeNames() {
		f.Add(name)
	}
	f.Add("static-8")
	f.Add("static-")
	f.Add("static--3")
	f.Add("static-03")
	f.Add("RRM")
	f.Add("")
	f.Add("rrm ")
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseScheme(name)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		switch s.Kind {
		case sim.SchemeStatic:
			if !s.StaticMode.Valid() {
				t.Fatalf("ParseScheme(%q) accepted invalid static mode %d", name, s.StaticMode)
			}
		case sim.SchemeRRM:
			if err := s.RRM.Validate(); err != nil {
				t.Fatalf("ParseScheme(%q) returned invalid RRM config: %v", name, err)
			}
		default:
			t.Fatalf("ParseScheme(%q) returned unexpected kind %d", name, s.Kind)
		}
	})
}
