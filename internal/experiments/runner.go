// Package experiments regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md §5). Each experiment is a
// function from Options to a formatted text table; cmd/experiments runs
// them from the command line and bench_test.go exposes quick variants as
// benchmarks.
//
// Experiments that share simulation runs (Figures 2-4 and 7-10 all view
// the same scheme x workload matrix) share them through a Runner cache,
// so the full suite costs one pass over the matrix. The Runner submits
// its runs as batches to the internal/engine worker pool, so independent
// simulations execute in parallel while every table stays byte-identical
// at any parallelism level (results are merged by config-hash key, never
// by completion order).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"
	"time"

	"rrmpcm/internal/core"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// Options configures an experiment pass.
type Options struct {
	// Quick shrinks simulation windows for smoke tests and benchmarks;
	// results keep their shape but are noisier.
	Quick bool
	// Seed makes the whole pass reproducible.
	Seed uint64
	// Progress, if non-nil, receives one line per completed run. Writes
	// are serialized by the engine, so parallel jobs never interleave
	// within a line.
	Progress io.Writer
	// Parallel is the number of concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// CacheDir, if non-empty, enables the disk-backed run cache:
	// finished runs persist there keyed by config hash, and later
	// passes (or resumed interrupted ones) load them instead of
	// re-simulating.
	CacheDir string
	// JobTimeout bounds each simulation's wall-clock time (0 = none).
	JobTimeout time.Duration
	// Context, if non-nil, cancels in-flight and pending runs when it
	// is done (Ctrl-C handling in cmd/experiments).
	Context context.Context
	// Reliability, when Enabled, turns on the drift-fault/ECC/scrub
	// model for every run of the pass (the reliability experiment sets
	// its own windows per run instead).
	Reliability reliability.Config
	// WarmStart shares simulation warmup across runs: jobs whose
	// warmup-relevant config prefix matches fork one warm snapshot
	// instead of each re-simulating the prefix. Results are bit-identical
	// to cold runs. Snapshots persist under CacheDir/snapshots when the
	// disk cache is on, in memory otherwise.
	WarmStart bool
	// Shards selects the sharded event-execution engine for every run of
	// the pass (sim.Config.Shards: 0 serial, -1 one shard per channel).
	// Results are byte-identical at any setting.
	Shards int
}

// SimConfig builds the run configuration for a scheme/workload pair
// under the pass's options (quick windows, seed). It is the shared
// config constructor of cmd/experiments batches and HTTP-service
// shorthand submissions.
func (o Options) SimConfig(scheme sim.Scheme, w trace.Workload) sim.Config {
	cfg := sim.DefaultConfig(scheme, w)
	if o.Quick {
		cfg.Duration = 4 * timing.Millisecond
		cfg.Warmup = 1500 * timing.Microsecond
		cfg.TimeScale = 500
	} else {
		// 30 ms measured at TimeScale 100: the 20 ms scaled refresh
		// interval fits the window (hot entries refresh once or twice),
		// and the retention deadline slack stays 10x the worst queue
		// delay. RRM refresh traffic is simulated at 100x its real
		// density, so RRM performance is conservatively understated.
		cfg.Duration = 30 * timing.Millisecond
		cfg.Warmup = 10 * timing.Millisecond
		cfg.TimeScale = 100
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Reliability.Enabled {
		cfg.Reliability = o.Reliability
	}
	cfg.Shards = o.Shards
	return cfg
}

// RunSpec names one simulation of a batch: a scheme/workload pair with an
// optional config mutation. The Label is cosmetic (progress lines) except
// for custom-policy schemes, where it also disambiguates the cache key
// (the config hash cannot see custom-policy internals).
type RunSpec struct {
	Label    string
	Scheme   sim.Scheme
	Workload trace.Workload
	Mutate   func(*sim.Config)
}

// RunnerStats counts how a Runner's runs were satisfied.
type RunnerStats struct {
	Simulated  uint64        // actually executed
	MemoryHits uint64        // served from the in-process cache
	DiskHits   uint64        // served from the disk cache
	SimWall    time.Duration // summed wall-clock of executed runs
}

// Runner caches simulation results across experiments and fans batches
// out over the engine's worker pool. Results are keyed by the engine's
// config hash, so a mutated config can never alias another run's cached
// result, whatever its label. Runner methods are safe for concurrent
// use.
type Runner struct {
	opt Options
	eng *engine.Engine

	mu    sync.Mutex
	cache map[string]sim.Metrics
	stats RunnerStats
}

// NewRunner returns a runner for one experiment pass.
func NewRunner(opt Options) *Runner {
	r := &Runner{opt: opt, cache: make(map[string]sim.Metrics)}
	eopt := engine.Options{
		Parallel: opt.Parallel,
		Timeout:  opt.JobTimeout,
	}
	if opt.CacheDir != "" {
		c, err := engine.OpenRunCache(opt.CacheDir)
		if err != nil && opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "  run cache disabled: %v\n", err)
		}
		eopt.Cache = c // nil on error: memory-only
	}
	if opt.WarmStart {
		var store engine.SnapshotStore = engine.NewMemSnapshotStore()
		if opt.CacheDir != "" {
			if c, err := engine.OpenSnapshotCache(filepath.Join(opt.CacheDir, "snapshots")); err == nil {
				store = c
			} else if opt.Progress != nil {
				fmt.Fprintf(opt.Progress, "  snapshot cache disabled: %v\n", err)
			}
		}
		eopt.Sim = engine.WarmRunSim(store)
	}
	if opt.Progress != nil {
		eopt.Progress = func(res engine.Result) {
			if res.Err != nil {
				return // the batch error carries the details
			}
			from := ""
			if res.Cached {
				from = " [disk cache]"
			}
			fmt.Fprintf(opt.Progress, "  ran %-40s IPC=%.3f life=%.2fy (%.1fs)%s\n",
				res.Name, res.Metrics.IPC, res.Metrics.LifetimeYears,
				res.Wall.Seconds(), from)
			if res.CacheErr != nil {
				fmt.Fprintf(opt.Progress, "  warning: %s: caching result: %v\n", res.Name, res.CacheErr)
			}
		}
	}
	r.eng = engine.New(eopt)
	return r
}

// Stats returns a snapshot of the runner's cache/run counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Runner) context() context.Context {
	if r.opt.Context != nil {
		return r.opt.Context
	}
	return context.Background()
}

// specJob builds the config and deterministic cache key for one spec.
func (r *Runner) specJob(spec RunSpec) (engine.Job, error) {
	cfg := r.opt.SimConfig(spec.Scheme, spec.Workload)
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	return NewJob(cfg, spec.Label)
}

// RunBatch simulates (or loads from cache) every spec and returns their
// metrics in spec order. Independent specs run concurrently on the
// engine's worker pool; specs resolving to the same config share one
// run. The first failing spec (in spec order, deterministically) aborts
// the batch with its error.
func (r *Runner) RunBatch(specs []RunSpec) ([]sim.Metrics, error) {
	out := make([]sim.Metrics, len(specs))
	jobs := make([]engine.Job, len(specs))
	pending := make([]int, 0, len(specs)) // spec indexes not in memory

	r.mu.Lock()
	for i, spec := range specs {
		job, err := r.specJob(spec)
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("experiments: %s/%s/%s: %w",
				spec.Label, spec.Scheme.Name(), spec.Workload.Name, err)
		}
		jobs[i] = job
		if m, ok := r.cache[job.Key]; ok {
			out[i] = m
			r.stats.MemoryHits++
		} else {
			pending = append(pending, i)
		}
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return out, nil
	}

	batch := make([]engine.Job, len(pending))
	for bi, i := range pending {
		batch[bi] = jobs[i]
	}
	results, _ := r.eng.Run(r.context(), batch)

	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for bi, res := range results {
		i := pending[bi]
		if res.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %w", res.Err)
			}
			continue
		}
		if res.Metrics.RetentionViolations > 0 && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s: %d retention violations (%s)",
				res.Name, res.Metrics.RetentionViolations, res.Metrics.FirstViolation)
			continue
		}
		out[i] = res.Metrics
		if _, ok := r.cache[res.Key]; !ok {
			r.cache[res.Key] = res.Metrics
			if res.Cached {
				r.stats.DiskHits++
			} else {
				r.stats.Simulated++
				r.stats.SimWall += res.Wall
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Run simulates (or returns the cached result of) one scheme/workload
// pair, with optional config mutation. The result is keyed by the full
// config hash, so mutations are always distinguished from the unmutated
// run regardless of label; the label shows up in progress output and
// disambiguates custom-policy schemes.
func (r *Runner) Run(label string, scheme sim.Scheme, w trace.Workload, mutate func(*sim.Config)) (sim.Metrics, error) {
	ms, err := r.RunBatch([]RunSpec{{Label: label, Scheme: scheme, Workload: w, Mutate: mutate}})
	if err != nil {
		return sim.Metrics{}, err
	}
	return ms[0], nil
}

// mainSchemes is the Table VI scheme list.
func mainSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.StaticScheme(pcm.Mode7SETs),
		sim.StaticScheme(pcm.Mode6SETs),
		sim.StaticScheme(pcm.Mode5SETs),
		sim.StaticScheme(pcm.Mode4SETs),
		sim.StaticScheme(pcm.Mode3SETs),
		sim.RRMScheme(),
	}
}

// staticSchemes is the Figure 2-4 subset.
func staticSchemes() []sim.Scheme {
	return mainSchemes()[:5]
}

// workloads returns the experiment workload list; quick mode trims it to
// a representative trio so benchmarks stay fast.
func (o Options) workloads() []trace.Workload {
	all := trace.Workloads()
	if !o.Quick {
		return all
	}
	var out []trace.Workload
	for _, w := range all {
		switch w.Name {
		case "GemsFDTD", "mcf", "MIX_2":
			out = append(out, w)
		}
	}
	return out
}

// matrix runs every scheme over every workload (one parallel batch) and
// returns metrics[workload][scheme].
func (r *Runner) matrix(schemes []sim.Scheme) (map[string]map[string]sim.Metrics, []trace.Workload, error) {
	ws := r.opt.workloads()
	specs := make([]RunSpec, 0, len(ws)*len(schemes))
	for _, w := range ws {
		for _, s := range schemes {
			specs = append(specs, RunSpec{Label: "main", Scheme: s, Workload: w})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]map[string]sim.Metrics, len(ws))
	for i, spec := range specs {
		if out[spec.Workload.Name] == nil {
			out[spec.Workload.Name] = make(map[string]sim.Metrics, len(schemes))
		}
		out[spec.Workload.Name][spec.Scheme.Name()] = ms[i]
	}
	return out, ws, nil
}

// geomeanOver collects metric(workload) over ws and returns the geomean.
func geomeanOver(ws []trace.Workload, f func(name string) float64) float64 {
	vals := make([]float64, 0, len(ws))
	for _, w := range ws {
		vals = append(vals, f(w.Name))
	}
	return stats.Geomean(vals)
}

// workloadNames returns workload names in canonical (declaration) order;
// used for stable table rows.
func workloadNames(ws []trace.Workload) []string {
	names := make([]string, 0, len(ws))
	for _, w := range ws {
		names = append(names, w.Name)
	}
	return names
}

// rrmConfigWith applies a mutation to the default RRM config.
func rrmConfigWith(mutate func(*core.RRMConfig)) sim.Scheme {
	cfg := core.DefaultRRMConfig()
	mutate(&cfg)
	return sim.Scheme{Kind: sim.SchemeRRM, RRM: cfg}
}

// Aliases keeping experiments.go terse.
type coreRRMConfig = core.RRMConfig

func defaultRRM() core.RRMConfig { return core.DefaultRRMConfig() }

func timingTime(v float64) timing.Time { return timing.Time(v) }

// simConfigT aliases sim.Config for test readability.
type simConfigT = sim.Config

// mathPow keeps the math import local.
func mathPow(x, p float64) float64 { return math.Pow(x, p) }
