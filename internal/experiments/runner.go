// Package experiments regenerates every table and figure of the paper's
// evaluation (the experiment index in DESIGN.md §5). Each experiment is a
// function from Options to a formatted text table; cmd/experiments runs
// them from the command line and bench_test.go exposes quick variants as
// benchmarks.
//
// Experiments that share simulation runs (Figures 2-4 and 7-10 all view
// the same scheme x workload matrix) share them through a Runner cache,
// so the full suite costs one pass over the matrix.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// Options configures an experiment pass.
type Options struct {
	// Quick shrinks simulation windows for smoke tests and benchmarks;
	// results keep their shape but are noisier.
	Quick bool
	// Seed makes the whole pass reproducible.
	Seed uint64
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
}

// simConfig builds the run configuration for a scheme/workload pair.
func (o Options) simConfig(scheme sim.Scheme, w trace.Workload) sim.Config {
	cfg := sim.DefaultConfig(scheme, w)
	if o.Quick {
		cfg.Duration = 4 * timing.Millisecond
		cfg.Warmup = 1500 * timing.Microsecond
		cfg.TimeScale = 500
	} else {
		// 30 ms measured at TimeScale 100: the 20 ms scaled refresh
		// interval fits the window (hot entries refresh once or twice),
		// and the retention deadline slack stays 10x the worst queue
		// delay. RRM refresh traffic is simulated at 100x its real
		// density, so RRM performance is conservatively understated.
		cfg.Duration = 30 * timing.Millisecond
		cfg.Warmup = 10 * timing.Millisecond
		cfg.TimeScale = 100
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// Runner caches simulation results across experiments.
type Runner struct {
	opt   Options
	cache map[string]sim.Metrics
}

// NewRunner returns a runner for one experiment pass.
func NewRunner(opt Options) *Runner {
	return &Runner{opt: opt, cache: make(map[string]sim.Metrics)}
}

// Run simulates (or returns the cached result of) one scheme/workload
// pair, with optional config mutation. Mutated configs must pass a
// distinct label for correct caching.
func (r *Runner) Run(label string, scheme sim.Scheme, w trace.Workload, mutate func(*sim.Config)) (sim.Metrics, error) {
	key := label + "/" + scheme.Name() + "/" + w.Name
	if m, ok := r.cache[key]; ok {
		return m, nil
	}
	cfg := r.opt.simConfig(scheme, w)
	if mutate != nil {
		mutate(&cfg)
	}
	start := time.Now()
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Metrics{}, fmt.Errorf("experiments: %s: %w", key, err)
	}
	m, err := sys.Run()
	if err != nil {
		return sim.Metrics{}, fmt.Errorf("experiments: %s: %w", key, err)
	}
	if m.RetentionViolations > 0 {
		return sim.Metrics{}, fmt.Errorf("experiments: %s: %d retention violations (%s)",
			key, m.RetentionViolations, m.FirstViolation)
	}
	if r.opt.Progress != nil {
		fmt.Fprintf(r.opt.Progress, "  ran %-40s IPC=%.3f life=%.2fy (%.1fs)\n",
			key, m.IPC, m.LifetimeYears, time.Since(start).Seconds())
	}
	r.cache[key] = m
	return m, nil
}

// mainSchemes is the Table VI scheme list.
func mainSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.StaticScheme(pcm.Mode7SETs),
		sim.StaticScheme(pcm.Mode6SETs),
		sim.StaticScheme(pcm.Mode5SETs),
		sim.StaticScheme(pcm.Mode4SETs),
		sim.StaticScheme(pcm.Mode3SETs),
		sim.RRMScheme(),
	}
}

// staticSchemes is the Figure 2-4 subset.
func staticSchemes() []sim.Scheme {
	return mainSchemes()[:5]
}

// workloads returns the experiment workload list; quick mode trims it to
// a representative trio so benchmarks stay fast.
func (o Options) workloads() []trace.Workload {
	all := trace.Workloads()
	if !o.Quick {
		return all
	}
	var out []trace.Workload
	for _, w := range all {
		switch w.Name {
		case "GemsFDTD", "mcf", "MIX_2":
			out = append(out, w)
		}
	}
	return out
}

// matrix runs every scheme over every workload and returns
// metrics[workload][scheme].
func (r *Runner) matrix(schemes []sim.Scheme) (map[string]map[string]sim.Metrics, []trace.Workload, error) {
	ws := r.opt.workloads()
	out := make(map[string]map[string]sim.Metrics, len(ws))
	for _, w := range ws {
		out[w.Name] = make(map[string]sim.Metrics, len(schemes))
		for _, s := range schemes {
			m, err := r.Run("main", s, w, nil)
			if err != nil {
				return nil, nil, err
			}
			out[w.Name][s.Name()] = m
		}
	}
	return out, ws, nil
}

// geomeanOver collects metric(workload) over ws and returns the geomean.
func geomeanOver(ws []trace.Workload, f func(name string) float64) float64 {
	vals := make([]float64, 0, len(ws))
	for _, w := range ws {
		vals = append(vals, f(w.Name))
	}
	return stats.Geomean(vals)
}

// sortedNames returns workload names in canonical (declaration) order
// followed by nothing else; used for stable table rows.
func sortedNames(ws []trace.Workload) []string {
	names := make([]string, 0, len(ws))
	for _, w := range ws {
		names = append(names, w.Name)
	}
	return names
}

// rrmConfigWith applies a mutation to the default RRM config.
func rrmConfigWith(mutate func(*core.RRMConfig)) sim.Scheme {
	cfg := core.DefaultRRMConfig()
	mutate(&cfg)
	return sim.Scheme{Kind: sim.SchemeRRM, RRM: cfg}
}

// Aliases keeping experiments.go terse.
type coreRRMConfig = core.RRMConfig

func defaultRRM() core.RRMConfig { return core.DefaultRRMConfig() }

func timingTime(v float64) timing.Time { return timing.Time(v) }

// simConfigT aliases sim.Config for test readability.
type simConfigT = sim.Config

// mathPow keeps the math import local.
func mathPow(x, p float64) float64 { return math.Pow(x, p) }
