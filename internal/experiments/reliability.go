package experiments

import (
	"fmt"
	"strings"

	"rrmpcm/internal/reliability"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// reliabilityWorkloads is the fixed four-workload set of the R1
// reliability study (quick mode trims it like every other experiment).
func (o Options) reliabilityWorkloads() []trace.Workload {
	names := []string{"GemsFDTD", "lbm", "mcf", "MIX_2"}
	if o.Quick {
		names = names[:2]
	}
	out := make([]trace.Workload, 0, len(names))
	for _, n := range names {
		w, err := trace.WorkloadByName(n)
		if err != nil {
			continue // names are static; never happens
		}
		out = append(out, w)
	}
	return out
}

// reliabilityMutate enables the fault model at its defaults and opens a
// real-seconds horizon: error injection needs line ages measured against
// the 2.01 s Mode-3 deadline, so the retention clock runs faster than in
// the performance experiments while the demand window stays small.
func (o Options) reliabilityMutate() func(*sim.Config) {
	return func(cfg *sim.Config) {
		rel := reliability.DefaultConfig()
		rel.Enabled = true
		cfg.Reliability = rel
		if o.Quick {
			cfg.Duration = 2500 * timing.Microsecond
			cfg.Warmup = 500 * timing.Microsecond
			cfg.TimeScale = 6000 // real horizon: 18 s
		} else {
			cfg.Duration = 8 * timing.Millisecond
			cfg.Warmup = 2 * timing.Millisecond
			cfg.TimeScale = 6000 // real horizon: 60 s
		}
	}
}

// ExperimentReliability (R1) reports drift-induced error rates under the
// t=4 ECC model: total uncorrectable errors (demand reads + scrub
// inspection + final sweep) and corrected-read rates per scheme. RRM
// refreshes every short line inside its guardband, so its uncorrectable
// count stays at zero while Static-3 — whose 2.01 s deadline is covered
// only by the analytic global refresh at zero slack — accumulates
// losses; long static modes are clean inside the simulated horizon.
func ExperimentReliability(r *Runner) (string, error) {
	schemes := mainSchemes()
	ws := r.opt.reliabilityWorkloads()
	mutate := r.opt.reliabilityMutate()

	specs := make([]RunSpec, 0, len(ws)*len(schemes))
	for _, w := range ws {
		for _, s := range schemes {
			specs = append(specs, RunSpec{Label: "reliability", Scheme: s, Workload: w, Mutate: mutate})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	byRun := make(map[string]map[string]sim.Metrics, len(ws))
	for i, spec := range specs {
		if byRun[spec.Workload.Name] == nil {
			byRun[spec.Workload.Name] = make(map[string]sim.Metrics, len(schemes))
		}
		byRun[spec.Workload.Name][spec.Scheme.Name()] = ms[i]
	}

	header := []string{"Workload"}
	for _, s := range schemes {
		header = append(header, s.Name())
	}
	uncorr := [][]string{header}
	corrected := [][]string{header}
	for _, w := range ws {
		ru := []string{w.Name}
		rc := []string{w.Name}
		for _, s := range schemes {
			rel := byRun[w.Name][s.Name()].Reliability
			if rel == nil {
				ru = append(ru, "-")
				rc = append(rc, "-")
				continue
			}
			ru = append(ru, fmt.Sprintf("%d", rel.Uncorrectable()))
			rc = append(rc, fmt.Sprintf("%.0f", rel.CorrectedPerBillionReads))
		}
		uncorr = append(uncorr, ru)
		corrected = append(corrected, rc)
	}

	var b strings.Builder
	b.WriteString("Uncorrectable errors (t=4 ECC, all detection paths)\n")
	b.WriteString(stats.Table(uncorr))
	b.WriteString("\nCorrected reads per billion checked reads\n")
	b.WriteString(stats.Table(corrected))

	// Headline: the paper-level claim the acceptance test pins.
	worstRRM, worstS3 := uint64(0), uint64(0)
	for _, w := range ws {
		if rel := byRun[w.Name]["RRM"].Reliability; rel != nil && rel.Uncorrectable() > worstRRM {
			worstRRM = rel.Uncorrectable()
		}
		if rel := byRun[w.Name]["Static-3-SETs"].Reliability; rel != nil && rel.Uncorrectable() > worstS3 {
			worstS3 = rel.Uncorrectable()
		}
	}
	fmt.Fprintf(&b, "\nWorst-case uncorrectable errors: RRM %d vs Static-3 %d\n", worstRRM, worstS3)
	return b.String(), nil
}
