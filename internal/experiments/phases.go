package experiments

import (
	"fmt"
	"strings"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/trace"
)

// ExperimentPhases (W1) stresses the schemes with non-stationary
// traffic: phase-changing mixtures, bursty on/off arrivals and diurnal
// load modulation (trace.DynamicWorkloads). The paper's evaluation is
// stationary; the interesting question here is whether the RRM's
// advantage survives when the hot set and the intensity move under it —
// statics cannot adapt, while the RRM re-learns the hot regions after
// every shift at the cost of extra refreshes during transitions.
func ExperimentPhases(r *Runner) (string, error) {
	schemes := []sim.Scheme{
		sim.RRMScheme(),
		sim.StaticScheme(pcm.Mode3SETs),
		sim.StaticScheme(pcm.Mode4SETs),
	}
	ws := trace.DynamicWorkloads()
	specs := make([]RunSpec, 0, len(ws)*len(schemes))
	for _, w := range ws {
		for _, s := range schemes {
			specs = append(specs, RunSpec{Label: "w1", Scheme: s, Workload: w})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Scheme", "Norm. IPC", "Lifetime y", "Short frac", "RRM refresh/s"}}
	var b strings.Builder
	for wi, w := range ws {
		base := ms[wi*len(schemes)+1] // Static-3 is the fast bound
		for si, s := range schemes {
			m := ms[wi*len(schemes)+si]
			rows = append(rows, []string{
				w.Name, s.Name(),
				fmt.Sprintf("%.3f", m.IPC/base.IPC),
				fmt.Sprintf("%.2f", m.LifetimeYears),
				fmt.Sprintf("%.2f", m.ShortWriteFraction),
				fmt.Sprintf("%.3g", m.WearRRMRate),
			})
		}
	}
	b.WriteString("Non-stationary workloads, IPC normalized to Static-3-SETs\n")
	b.WriteString(stats.Table(rows))
	perf := make([]float64, 0, len(ws))
	life3 := make([]float64, 0, len(ws))
	lifeR := make([]float64, 0, len(ws))
	for wi := range ws {
		rrm, s3 := ms[wi*len(schemes)], ms[wi*len(schemes)+1]
		perf = append(perf, rrm.IPC/s3.IPC)
		life3 = append(life3, s3.LifetimeYears)
		lifeR = append(lifeR, rrm.LifetimeYears)
	}
	fmt.Fprintf(&b, "\nRRM vs Static-3 under phase changes (geomean): %+.1f%% IPC, lifetime %.2fy vs %.2fy\n",
		100*(stats.Geomean(perf)-1), stats.Geomean(lifeR), stats.Geomean(life3))
	return b.String(), nil
}
