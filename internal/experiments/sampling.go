package experiments

import (
	"fmt"
	"strings"
	"time"

	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// ExperimentSampling (S1) is the error-vs-speed characterization of the
// interval-sampling executor: one reference configuration simulated in
// full, then sampled at increasing window budgets, with each budget's
// confidence intervals checked against the full run's values. The table
// is the practical dial for choosing a budget: coverage (and therefore
// cost) grows down the rows while the intervals tighten around the full
// answer. internal/sampling/validate_test.go enforces the containment
// property across every golden config; this experiment shows it on the
// pass's own windows.
func ExperimentSampling(r *Runner) (string, error) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		return "", err
	}
	scheme := sim.RRMScheme()

	// Budgets scale with the pass duration so S1 keeps its shape under
	// -quick: each window (and its equal pre-roll) is 1/80 of the
	// duration, so coverage runs 10% -> 37.5% down the rows and the gaps
	// stay long enough that sampling is actually sampling. The last
	// budget adds stride thinning, the long-run speed knob.
	type budget struct {
		name    string
		windows int
		stride  int
	}
	budgets := []budget{
		{"sampled n=4", 4, 1},
		{"sampled n=8", 8, 1},
		{"sampled n=15", 15, 1},
		{"sampled n=8 stride=8", 8, 8},
	}
	duration := r.opt.SimConfig(scheme, w).Duration
	winLen := duration / 80 / timing.Microsecond * timing.Microsecond

	timed := func(spec RunSpec) (sim.Metrics, time.Duration, error) {
		begin := time.Now()
		ms, err := r.RunBatch([]RunSpec{spec})
		if err != nil {
			return sim.Metrics{}, 0, err
		}
		return ms[0], time.Since(begin), nil
	}

	full, fullWall, err := timed(RunSpec{Label: "s1-full", Scheme: scheme, Workload: w})
	if err != nil {
		return "", err
	}

	rows := [][]string{{"Run", "Coverage", "Wall s", "Speedup", "IPC (95% CI)", "dIPC", "Lifetime y", "Contains"}}
	rows = append(rows, []string{
		"full", "100%", fmt.Sprintf("%.1f", fullWall.Seconds()), "1.0x",
		fmt.Sprintf("%.3f", full.IPC), "-", fmt.Sprintf("%.2f", full.LifetimeYears), "-",
	})
	for _, bg := range budgets {
		bg := bg
		spec := RunSpec{
			Label: "s1-" + bg.name, Scheme: scheme, Workload: w,
			Mutate: func(c *sim.Config) {
				c.Sampling = &sim.SamplingSpec{
					Windows:      bg.windows,
					Window:       winLen,
					DetailWarmup: winLen,
					FFStride:     bg.stride,
				}
			},
		}
		m, wall, err := timed(spec)
		if err != nil {
			return "", err
		}
		sp := m.Sampling
		if sp == nil {
			return "", fmt.Errorf("experiments: sampled run %s returned no sampling report", bg.name)
		}
		speedup := "-"
		if wall > 0 {
			speedup = fmt.Sprintf("%.1fx", fullWall.Seconds()/wall.Seconds())
		}
		contains := "no"
		if sp.IPC.Contains(full.IPC) {
			contains = "yes"
		}
		rows = append(rows, []string{
			bg.name,
			fmt.Sprintf("%.0f%%", 100*sp.Coverage),
			fmt.Sprintf("%.1f", wall.Seconds()),
			speedup,
			fmt.Sprintf("%.3f [%.3f, %.3f]", sp.IPC.Mean, sp.IPC.Lo, sp.IPC.Hi),
			fmt.Sprintf("%+.1f%%", 100*(sp.IPC.Mean/full.IPC-1)),
			fmt.Sprintf("%.2f", m.LifetimeYears),
			contains,
		})
	}

	var b strings.Builder
	us := int64(winLen / timing.Microsecond)
	fmt.Fprintf(&b, "Interval sampling error vs speed (%s / %s, %d us windows + %d us pre-roll)\n",
		scheme.Name(), w.Name, us, us)
	b.WriteString(stats.Table(rows))
	b.WriteString("\nContains = full-run IPC inside the sampled run's own 95% interval.\n")
	b.WriteString("Walls include engine scheduling; cache hits run in ~0 s and distort speedups.\n")
	return b.String(), nil
}
