package experiments

import (
	"strings"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every artifact of DESIGN.md §5 must be present.
	for _, id := range []string{"table1", "fig2", "fig3", "fig4", "table3", "table7",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table8", "fig13"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table1")
	if err != nil || e.ID != "table1" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3-SETs-Write", "7-SETs-Write", "3054.9", "1150", "550"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable8(t *testing.T) {
	out, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"96KB", "1.56%", "384KB", "6.25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table8 missing %q:\n%s", want, out)
		}
	}
}

func TestWriteIntervalHistogram(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	hist, err := WriteIntervalHistogram(w, 5*timing.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	share := hist.HotShare(0.02)
	if share < 0.5 {
		t.Errorf("hot share = %.2f, want the Table III concentration (>0.5)", share)
	}
	out := FormatIntervalHistogram(hist)
	if !strings.Contains(out, "never written") {
		t.Errorf("histogram format missing rows:\n%s", out)
	}
}

func TestAblationGlobalRefreshDutyCycle(t *testing.T) {
	// The duty-cycle numbers are analytic; verify the Static-3 figure:
	// refreshing 2^27 blocks at 1150... at 550 ns across 64 banks every
	// 2.01 s busies the memory for more than half of the time.
	if testing.Short() {
		t.Skip("needs the quick matrix")
	}
	r := NewRunner(Options{Quick: true, Seed: 1})
	out, err := AblationGlobalRefresh(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Static-3-SETs") || !strings.Contains(out, "duty") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestQuickOptions(t *testing.T) {
	opt := Options{Quick: true}
	ws := opt.workloads()
	if len(ws) != 3 {
		t.Errorf("quick workloads = %d, want 3", len(ws))
	}
	cfg := opt.simConfig(mainSchemes()[0], ws[0])
	if cfg.Duration != 4*timing.Millisecond || cfg.TimeScale != 500 {
		t.Errorf("quick config = %v/%v", cfg.Duration, cfg.TimeScale)
	}
	full := Options{}
	if got := len(full.workloads()); got != 11 {
		t.Errorf("full workloads = %d, want 11", got)
	}
}

func TestRunnerCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	r := NewRunner(Options{Quick: true, Seed: 1})
	w, _ := trace.WorkloadByName("GemsFDTD")
	m1, err := r.Run("cache-test", mainSchemes()[0], w, func(c *simConfigT) {
		c.Duration = 1500 * timing.Microsecond
		c.Warmup = 500 * timing.Microsecond
		c.TimeScale = 1000
	})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run("cache-test", mainSchemes()[0], w, nil) // cached: mutate ignored
	if err != nil {
		t.Fatal(err)
	}
	if m1.Instructions != m2.Instructions {
		t.Error("cache returned a different result")
	}
}
