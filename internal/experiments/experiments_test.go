package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every artifact of DESIGN.md §5 must be present.
	for _, id := range []string{"table1", "fig2", "fig3", "fig4", "table3", "table7",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table8", "fig13"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table1")
	if err != nil || e.ID != "table1" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("nonesuch"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3-SETs-Write", "7-SETs-Write", "3054.9", "1150", "550"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable8(t *testing.T) {
	out, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"96KB", "1.56%", "384KB", "6.25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table8 missing %q:\n%s", want, out)
		}
	}
}

func TestWriteIntervalHistogram(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	hist, err := WriteIntervalHistogram(w, 5*timing.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	share := hist.HotShare(0.02)
	if share < 0.5 {
		t.Errorf("hot share = %.2f, want the Table III concentration (>0.5)", share)
	}
	out := FormatIntervalHistogram(hist)
	if !strings.Contains(out, "never written") {
		t.Errorf("histogram format missing rows:\n%s", out)
	}
}

func TestAblationGlobalRefreshDutyCycle(t *testing.T) {
	// The duty-cycle numbers are analytic; verify the Static-3 figure:
	// refreshing 2^27 blocks at 1150... at 550 ns across 64 banks every
	// 2.01 s busies the memory for more than half of the time.
	if testing.Short() {
		t.Skip("needs the quick matrix")
	}
	r := NewRunner(Options{Quick: true, Seed: 1})
	out, err := AblationGlobalRefresh(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Static-3-SETs") || !strings.Contains(out, "duty") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestQuickOptions(t *testing.T) {
	opt := Options{Quick: true}
	ws := opt.workloads()
	if len(ws) != 3 {
		t.Errorf("quick workloads = %d, want 3", len(ws))
	}
	cfg := opt.SimConfig(mainSchemes()[0], ws[0])
	if cfg.Duration != 4*timing.Millisecond || cfg.TimeScale != 500 {
		t.Errorf("quick config = %v/%v", cfg.Duration, cfg.TimeScale)
	}
	full := Options{}
	if got := len(full.workloads()); got != 11 {
		t.Errorf("full workloads = %d, want 11", got)
	}
}

// tinyRun shrinks a config to the smallest window the simulator accepts,
// so cache/determinism tests stay fast.
func tinyRun(c *simConfigT) {
	c.Duration = 1500 * timing.Microsecond
	c.Warmup = 500 * timing.Microsecond
	c.TimeScale = 1000
}

func TestRunnerCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	r := NewRunner(Options{Quick: true, Seed: 1})
	w, _ := trace.WorkloadByName("GemsFDTD")
	m1, err := r.Run("cache-test", mainSchemes()[0], w, tinyRun)
	if err != nil {
		t.Fatal(err)
	}
	// Identical config, even under a different label: a memory-cache hit.
	m2, err := r.Run("other-label", mainSchemes()[0], w, tinyRun)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Instructions != m2.Instructions {
		t.Error("cache returned a different result for an identical config")
	}
	st := r.Stats()
	if st.Simulated != 1 || st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want 1 simulated + 1 memory hit", st)
	}
}

// TestRunnerCacheKeyCollisionProof: a mutated config under a reused
// label can no longer alias the cached unmutated result (the pre-engine
// runner keyed on label/scheme/workload and would have returned the
// first run's metrics for both).
func TestRunnerCacheKeyCollisionProof(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	r := NewRunner(Options{Quick: true, Seed: 1})
	w, _ := trace.WorkloadByName("GemsFDTD")
	m1, err := r.Run("same-label", mainSchemes()[0], w, tinyRun)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Run("same-label", mainSchemes()[0], w, func(c *simConfigT) {
		tinyRun(c)
		c.Seed = 999 // different run, same label
	})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Instructions == m2.Instructions {
		t.Error("mutated config aliased the cached unmutated result")
	}
	if st := r.Stats(); st.Simulated != 2 {
		t.Errorf("stats = %+v, want both configs simulated", st)
	}
}

// TestParallelDeterminism: the same batch produces byte-identical tables
// at parallelism 1 and 8.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	batch := func() []RunSpec {
		var specs []RunSpec
		for _, wn := range []string{"GemsFDTD", "mcf"} {
			w, err := trace.WorkloadByName(wn)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range mainSchemes()[:2] {
				specs = append(specs, RunSpec{Label: "det", Scheme: s, Workload: w, Mutate: tinyRun})
			}
		}
		return specs
	}
	render := func(parallel int) string {
		r := NewRunner(Options{Quick: true, Seed: 1, Parallel: parallel})
		ms, err := r.RunBatch(batch())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i, m := range ms {
			fmt.Fprintf(&b, "%d %s %s %d %.17g %.17g\n",
				i, m.Scheme, m.Workload, m.Instructions, m.IPC, m.LifetimeYears)
		}
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("results differ across parallelism:\n-- parallel 1 --\n%s-- parallel 8 --\n%s", seq, par)
	}
}

// TestRunnerDiskCache: a second Runner over the same cache directory
// serves the whole batch from disk, simulating nothing, with identical
// metrics.
func TestRunnerDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	w, _ := trace.WorkloadByName("GemsFDTD")
	specs := []RunSpec{
		{Label: "disk", Scheme: mainSchemes()[0], Workload: w, Mutate: tinyRun},
		{Label: "disk", Scheme: mainSchemes()[4], Workload: w, Mutate: tinyRun},
	}
	r1 := NewRunner(Options{Quick: true, Seed: 1, CacheDir: dir})
	ms1, err := r1.RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if st := r1.Stats(); st.Simulated != 2 {
		t.Fatalf("first pass stats = %+v, want 2 simulated", st)
	}

	r2 := NewRunner(Options{Quick: true, Seed: 1, CacheDir: dir})
	ms2, err := r2.RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Simulated != 0 || st.DiskHits != 2 {
		t.Errorf("second pass stats = %+v, want 0 simulated / 2 disk hits", st)
	}
	for i := range ms1 {
		if !reflect.DeepEqual(ms1[i], ms2[i]) {
			t.Errorf("spec %d metrics changed across the disk cache", i)
		}
	}
}
