package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"rrmpcm/internal/engine"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
)

// ParseScheme maps a scheme spelling shared by the CLI flags and the
// HTTP service — "rrm" or "static-3".."static-7" — to a sim.Scheme with
// the paper's default parameters.
func ParseScheme(name string) (sim.Scheme, error) {
	if rest, ok := strings.CutPrefix(name, "static-"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || !pcm.WriteMode(n).Valid() {
			return sim.Scheme{}, fmt.Errorf("experiments: bad static scheme %q (want static-%d..static-%d)",
				name, pcm.Fastest.Sets(), pcm.Slowest.Sets())
		}
		return sim.StaticScheme(pcm.WriteMode(n)), nil
	}
	if name != "rrm" {
		return sim.Scheme{}, fmt.Errorf("experiments: unknown scheme %q (want rrm or static-N)", name)
	}
	return sim.RRMScheme(), nil
}

// SchemeNames lists the spellings ParseScheme accepts, for -h output
// and API discovery endpoints.
func SchemeNames() []string {
	names := make([]string, 0, 6)
	for _, m := range pcm.Modes() {
		names = append(names, fmt.Sprintf("static-%d", m.Sets()))
	}
	return append(names, "rrm")
}

// NewJob builds the engine job for one run configuration: the job key
// is the config hash (so identical configs are idempotent everywhere —
// Runner batches, the disk cache, and the HTTP service all agree on a
// run's identity), the name is "label/scheme/workload" for progress
// output, and custom-policy configs are excluded from the disk cache
// with the label folded into the key (the hash cannot see
// custom-policy internals, so two differently-labelled custom runs
// must never alias).
func NewJob(cfg sim.Config, label string) (engine.Job, error) {
	key, err := engine.ConfigHash(cfg)
	if err != nil {
		return engine.Job{}, err
	}
	name := cfg.Scheme.Name() + "/" + cfg.Workload.Name
	if label != "" {
		name = label + "/" + name
	}
	job := engine.Job{Key: key, Name: name, Config: cfg}
	if !engine.Cacheable(cfg) {
		job.Uncacheable = true
		job.Key = key + "/custom/" + label
	}
	return job, nil
}
