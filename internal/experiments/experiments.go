package experiments

import (
	"fmt"
	"strings"

	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/trace"
	"rrmpcm/internal/wearlevel"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string // "table1", "fig7", ...
	Title string
	Run   func(*Runner) (string, error)
}

// All returns every experiment in DESIGN.md §5 order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: write latency/retention model", func(r *Runner) (string, error) { return Table1() }},
		{"fig2", "Figure 2: performance of static schemes", Figure2},
		{"fig3", "Figure 3: lifetime of static schemes", Figure3},
		{"fig4", "Figure 4: wear of static schemes (write vs refresh)", Figure4},
		{"table3", "Table III: region write-interval histogram (GemsFDTD)", func(r *Runner) (string, error) { return Table3(r.opt) }},
		{"table7", "Table VII: workload MPKI calibration", Table7},
		{"fig7", "Figure 7: performance, RRM vs statics", Figure7},
		{"fig8", "Figure 8: lifetime, RRM vs statics", Figure8},
		{"fig9", "Figure 9: wear distribution", Figure9},
		{"fig10", "Figure 10: memory energy consumption", Figure10},
		{"fig11", "Figure 11: hot_threshold aggressiveness", Figure11},
		{"fig12", "Figure 12: LLC coverage rate sensitivity", Figure12},
		{"table8", "Table VIII: RRM storage per coverage", func(r *Runner) (string, error) { return Table8() }},
		{"fig13", "Figure 13: entry coverage size sensitivity", Figure13},
		{"reliability", "R1: drift-induced errors under t-bit ECC, RRM vs statics", ExperimentReliability},
		{"phases", "W1: RRM vs statics under non-stationary workloads", ExperimentPhases},
		{"ablation-globalrefresh", "A1: global-refresh performance impact (analytic)", AblationGlobalRefresh},
		{"ablation-cleanwrites", "A2: registering clean LLC writes (streaming pollution)", AblationCleanWrites},
		{"ablation-nopause", "A3: disabling write pausing", AblationNoPause},
		{"ablation-multimode", "A4: multi-mode RRM (3/5/7-SETs tiers)", AblationMultiMode},
		{"ablation-decay", "A5: decay interval sensitivity", AblationDecay},
		{"ablation-wearlevel", "A6: Start-Gap wear-leveling efficiency (Table V assumption)", AblationWearLevel},
		{"sampling", "S1: interval sampling, error vs speed", ExperimentSampling},
		{"hybrid", "H1: DRAM staging tier, RRM vs statics vs combined", ExperimentHybrid},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Table1 regenerates Table I from the drift model and diffs it against
// the embedded device data.
func Table1() (string, error) {
	model := pcm.DefaultDriftTable().Model()
	derived, err := model.DeriveModeTable()
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Write Type", "Current (uA)", "N.Energy", "Retention (s)", "Latency (ns)", "Paper Retention (s)"}}
	for _, s := range derived {
		paper := pcm.Spec(s.Mode)
		rows = append(rows, []string{
			s.Mode.String(),
			fmt.Sprintf("%.0f", s.SetCurrentUA),
			fmt.Sprintf("%.3f", s.NormEnergy),
			fmt.Sprintf("%.1f", s.Retention.Seconds()),
			fmt.Sprintf("%.0f", s.Latency.Nanoseconds()),
			fmt.Sprintf("%.1f", paper.Retention.Seconds()),
		})
	}
	return stats.Table(rows), nil
}

// Figure2 reports the IPC of the static schemes normalized to
// Static-7-SETs, per workload plus geomean.
func Figure2(r *Runner) (string, error) {
	return perfTable(r, staticSchemes())
}

// Figure7 is Figure 2 plus the RRM scheme, with the paper's headline
// statistics appended.
func Figure7(r *Runner) (string, error) {
	table, err := perfTable(r, mainSchemes())
	if err != nil {
		return "", err
	}
	m, ws, err := r.matrix(mainSchemes())
	if err != nil {
		return "", err
	}
	g := func(scheme string) float64 {
		return geomeanOver(ws, func(w string) float64 { return m[w][scheme].IPC })
	}
	s7, s3, rrm := g("Static-7-SETs"), g("Static-3-SETs"), g("RRM")
	var b strings.Builder
	b.WriteString(table)
	fmt.Fprintf(&b, "\nRRM vs Static-7 (geomean): %+.1f%% (paper: +62.0%%)\n", 100*(rrm/s7-1))
	fmt.Fprintf(&b, "RRM vs Static-3 (geomean): %+.1f%% (paper: -10.0%%)\n", 100*(rrm/s3-1))
	if s3 > s7 {
		fmt.Fprintf(&b, "Gap bridged by RRM:        %.1f%% (paper: 77.2%%)\n", 100*(rrm-s7)/(s3-s7))
	}
	return b.String(), nil
}

func perfTable(r *Runner, schemes []sim.Scheme) (string, error) {
	m, ws, err := r.matrix(schemes)
	if err != nil {
		return "", err
	}
	header := []string{"Workload"}
	for _, s := range schemes {
		header = append(header, s.Name())
	}
	rows := [][]string{header}
	for _, name := range workloadNames(ws) {
		base := m[name]["Static-7-SETs"].IPC
		row := []string{name}
		for _, s := range schemes {
			row = append(row, fmt.Sprintf("%.3f", m[name][s.Name()].IPC/base))
		}
		rows = append(rows, row)
	}
	row := []string{"geomean"}
	for _, s := range schemes {
		gm := geomeanOver(ws, func(w string) float64 {
			return m[w][s.Name()].IPC / m[w]["Static-7-SETs"].IPC
		})
		row = append(row, fmt.Sprintf("%.3f", gm))
	}
	rows = append(rows, row)
	return "IPC normalized to Static-7-SETs\n" + stats.Table(rows), nil
}

// Figure3 reports static-scheme lifetimes.
func Figure3(r *Runner) (string, error) {
	return lifetimeTable(r, staticSchemes(), "")
}

// Figure8 reports lifetimes for all schemes with the paper's headline.
func Figure8(r *Runner) (string, error) {
	return lifetimeTable(r, mainSchemes(),
		"paper geomeans: Static-7 10.6y, RRM 6.4y, Static-3 0.3y")
}

func lifetimeTable(r *Runner, schemes []sim.Scheme, note string) (string, error) {
	m, ws, err := r.matrix(schemes)
	if err != nil {
		return "", err
	}
	header := []string{"Workload"}
	for _, s := range schemes {
		header = append(header, s.Name())
	}
	rows := [][]string{header}
	for _, name := range workloadNames(ws) {
		row := []string{name}
		for _, s := range schemes {
			row = append(row, fmt.Sprintf("%.2f", m[name][s.Name()].LifetimeYears))
		}
		rows = append(rows, row)
	}
	row := []string{"geomean"}
	for _, s := range schemes {
		gm := geomeanOver(ws, func(w string) float64 { return m[w][s.Name()].LifetimeYears })
		row = append(row, fmt.Sprintf("%.2f", gm))
	}
	rows = append(rows, row)
	out := "Memory lifetime in years\n" + stats.Table(rows)
	if note != "" {
		out += "\n" + note + "\n"
	}
	return out, nil
}

// Figure4 reports the write/refresh wear split for static schemes.
func Figure4(r *Runner) (string, error) {
	return wearTable(r, staticSchemes())
}

// Figure9 reports the wear split for all schemes, separating RRM refresh
// and global refresh.
func Figure9(r *Runner) (string, error) {
	return wearTable(r, mainSchemes())
}

func wearTable(r *Runner, schemes []sim.Scheme) (string, error) {
	m, ws, err := r.matrix(schemes)
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Scheme", "Write wear/s", "RRM-refresh/s", "Slow-refresh/s", "Global-refresh/s", "Refresh share"}}
	for _, name := range workloadNames(ws) {
		for _, s := range schemes {
			mm := m[name][s.Name()]
			refresh := mm.WearRRMRate + mm.WearSlowRate + mm.WearGlobalRate
			rows = append(rows, []string{
				name, s.Name(),
				fmt.Sprintf("%.3g", mm.WearDemandRate),
				fmt.Sprintf("%.3g", mm.WearRRMRate),
				fmt.Sprintf("%.3g", mm.WearSlowRate),
				fmt.Sprintf("%.3g", mm.WearGlobalRate),
				fmt.Sprintf("%.1f%%", 100*refresh/(refresh+mm.WearDemandRate)),
			})
		}
	}
	return "Block-write wear rates (real block writes per second)\n" + stats.Table(rows), nil
}

// Figure10 reports memory energy over the paper's 5 s window.
func Figure10(r *Runner) (string, error) {
	m, ws, err := r.matrix(mainSchemes())
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Scheme", "Write J", "Refresh J", "Total J"}}
	for _, name := range workloadNames(ws) {
		for _, s := range mainSchemes() {
			mm := m[name][s.Name()]
			rows = append(rows, []string{
				name, s.Name(),
				fmt.Sprintf("%.3f", mm.EnergyDemandJ),
				fmt.Sprintf("%.3f", mm.EnergyRefreshJ),
				fmt.Sprintf("%.3f", mm.EnergyTotalJ),
			})
		}
	}
	g := func(scheme string) float64 {
		return geomeanOver(ws, func(w string) float64 { return m[w][scheme].EnergyTotalJ })
	}
	note := fmt.Sprintf("\nRRM total energy vs Static-7 (geomean): %+.1f%% (paper: +32.8%%)\n",
		100*(g("RRM")/g("Static-7-SETs")-1))
	return "Memory energy over the 5 s window\n" + stats.Table(rows) + note, nil
}

// Table7 compares measured LLC MPKI against the paper's Table VII.
func Table7(r *Runner) (string, error) {
	paper := trace.PaperMPKI()
	m, ws, err := r.matrix([]sim.Scheme{sim.StaticScheme(pcm.Mode7SETs)})
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Measured MPKI", "Paper MPKI"}}
	for _, name := range workloadNames(ws) {
		p := "-"
		if v, ok := paper[name]; ok {
			p = fmt.Sprintf("%.2f", v)
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.2f", m[name]["Static-7-SETs"].LLCMPKI), p})
	}
	return stats.Table(rows), nil
}

// Figure11 sweeps hot_threshold (8/16/32/64).
func Figure11(r *Runner) (string, error) {
	return rrmSweep(r, "fig11", "hot_threshold", []int{8, 16, 32, 64}, func(v int) sim.Scheme {
		return rrmConfigWith(func(c *coreRRMConfig) { c.HotThreshold = v })
	})
}

// Figure12 sweeps the LLC coverage rate (2x/4x/8x/16x).
func Figure12(r *Runner) (string, error) {
	llc := uint64(6 << 20)
	return rrmSweep(r, "fig12", "LLC coverage", []int{2, 4, 8, 16}, func(v int) sim.Scheme {
		return rrmConfigWith(func(c *coreRRMConfig) { *c = c.WithCoverage(v, llc) })
	})
}

// Figure13 sweeps the entry coverage size (2/4/8/16 KB).
func Figure13(r *Runner) (string, error) {
	return rrmSweep(r, "fig13", "entry KB", []int{2, 4, 8, 16}, func(v int) sim.Scheme {
		return rrmConfigWith(func(c *coreRRMConfig) { c.RegionBytes = uint64(v) << 10 })
	})
}

// rrmSweep runs RRM variants over the workloads and reports normalized
// performance (vs Static-7) and lifetime geomeans per variant value. All
// values x workloads go out as one parallel batch.
func rrmSweep(r *Runner, label, param string, values []int, scheme func(int) sim.Scheme) (string, error) {
	base, ws, err := r.matrix([]sim.Scheme{sim.StaticScheme(pcm.Mode7SETs)})
	if err != nil {
		return "", err
	}
	specs := make([]RunSpec, 0, len(values)*len(ws))
	for _, v := range values {
		s := scheme(v)
		for _, w := range ws {
			specs = append(specs, RunSpec{Label: fmt.Sprintf("%s-%d", label, v), Scheme: s, Workload: w})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	rows := [][]string{{param, "Norm. IPC (geomean)", "Lifetime y (geomean)", "Short-write frac", "Hot entries"}}
	for vi, v := range values {
		perf := make([]float64, 0, len(ws))
		life := make([]float64, 0, len(ws))
		var shortFrac float64
		var hot int
		for wi, w := range ws {
			m := ms[vi*len(ws)+wi]
			perf = append(perf, m.IPC/base[w.Name]["Static-7-SETs"].IPC)
			life = append(life, m.LifetimeYears)
			shortFrac += m.ShortWriteFraction
			hot += m.HotEntries
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", v),
			fmt.Sprintf("%.3f", stats.Geomean(perf)),
			fmt.Sprintf("%.2f", stats.Geomean(life)),
			fmt.Sprintf("%.2f", shortFrac/float64(len(ws))),
			fmt.Sprintf("%d", hot/len(ws)),
		})
	}
	return stats.Table(rows), nil
}

// Table8 derives the RRM storage overhead per coverage rate.
func Table8() (string, error) {
	llc := uint64(6 << 20)
	rows := [][]string{{"LLC Coverage", "Sets", "Ways", "Storage", "% of LLC"}}
	for _, cov := range []int{2, 4, 8, 16} {
		cfg := defaultRRM().WithCoverage(cov, llc)
		if err := cfg.Validate(); err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx", cov),
			fmt.Sprintf("%d", cfg.Sets),
			fmt.Sprintf("%d", cfg.Ways),
			fmt.Sprintf("%dKB", cfg.StorageBytes()>>10),
			fmt.Sprintf("%.2f%%", 100*float64(cfg.StorageBytes())/float64(llc)),
		})
	}
	return stats.Table(rows), nil
}

// AblationGlobalRefresh quantifies the paper's own caveat: Static-3/4
// performance ignores global refresh, whose duty cycle is crippling. The
// refresh of all blocks takes blocks*tWP/banks seconds every retention
// period; the duty-cycle model scales the measured IPC accordingly.
func AblationGlobalRefresh(r *Runner) (string, error) {
	m, ws, err := r.matrix(staticSchemes())
	if err != nil {
		return "", err
	}
	dev := pcm.DefaultDeviceConfig()
	rows := [][]string{{"Scheme", "Refresh duty cycle", "Norm. IPC (reported)", "Norm. IPC (refresh-adjusted)"}}
	for _, s := range staticSchemes() {
		mode := s.StaticMode
		refreshTime := float64(dev.TotalBlocks()) * pcm.Latency(mode).Seconds() / float64(dev.TotalBanks())
		duty := refreshTime / pcm.Retention(mode).Seconds()
		if duty > 1 {
			duty = 1
		}
		gm := geomeanOver(ws, func(w string) float64 {
			return m[w][s.Name()].IPC / m[w]["Static-7-SETs"].IPC
		})
		rows = append(rows, []string{
			s.Name(),
			fmt.Sprintf("%.1f%%", 100*duty),
			fmt.Sprintf("%.3f", gm),
			fmt.Sprintf("%.3f", gm*(1-duty)),
		})
	}
	return "Global-refresh duty-cycle adjustment (paper simulates none; §V)\n" + stats.Table(rows), nil
}

// AblationCleanWrites disables the streaming-write filter on streaming
// workloads and shows the pollution it was protecting against.
func AblationCleanWrites(r *Runner) (string, error) {
	polluted := rrmConfigWith(func(c *coreRRMConfig) { c.RegisterCleanWrites = true })
	variants := []struct {
		label  string
		scheme sim.Scheme
	}{{"filter on (paper)", sim.RRMScheme()}, {"filter off (A2)", polluted}}
	var specs []RunSpec
	for _, name := range []string{"libquantum", "lbm", "GemsFDTD"} {
		w, err := trace.WorkloadByName(name)
		if err != nil {
			return "", err
		}
		if r.opt.Quick && name != "GemsFDTD" {
			continue
		}
		specs = append(specs, RunSpec{Label: "main", Scheme: sim.StaticScheme(pcm.Mode7SETs), Workload: w})
		for _, v := range variants {
			specs = append(specs, RunSpec{Label: "a2-" + v.label, Scheme: v.scheme, Workload: w})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Variant", "Norm. IPC", "Lifetime y", "Short frac", "RRM refresh/s"}}
	for i := 0; i < len(specs); i += 1 + len(variants) {
		base := ms[i]
		for k, v := range variants {
			m := ms[i+1+k]
			rows = append(rows, []string{
				specs[i].Workload.Name, v.label,
				fmt.Sprintf("%.3f", m.IPC/base.IPC),
				fmt.Sprintf("%.2f", m.LifetimeYears),
				fmt.Sprintf("%.2f", m.ShortWriteFraction),
				fmt.Sprintf("%.3g", m.WearRRMRate),
			})
		}
	}
	return stats.Table(rows), nil
}

// AblationNoPause disables write pausing for Static-7 and RRM. The
// with/without pairs for every workload run as one parallel batch.
func AblationNoPause(r *Runner) (string, error) {
	noPause := func(c *sim.Config) { c.Ctrl.WritePausing = false }
	var specs []RunSpec
	for _, w := range r.opt.workloads() {
		for _, s := range []sim.Scheme{sim.StaticScheme(pcm.Mode7SETs), sim.RRMScheme()} {
			specs = append(specs,
				RunSpec{Label: "main", Scheme: s, Workload: w},
				RunSpec{Label: "a3-nopause", Scheme: s, Workload: w, Mutate: noPause})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Scheme", "IPC (pausing)", "IPC (no pausing)", "delta"}}
	for i := 0; i < len(specs); i += 2 {
		with, without := ms[i], ms[i+1]
		rows = append(rows, []string{
			specs[i].Workload.Name, specs[i].Scheme.Name(),
			fmt.Sprintf("%.3f", with.IPC),
			fmt.Sprintf("%.3f", without.IPC),
			fmt.Sprintf("%+.1f%%", 100*(without.IPC/with.IPC-1)),
		})
	}
	return stats.Table(rows), nil
}

// AblationDecay sweeps the decay interval around the paper's 0.125 s.
func AblationDecay(r *Runner) (string, error) {
	values := []float64{0.5, 1, 2, 4} // x 0.125 s
	rows := [][]string{{"Decay interval", "Norm. IPC (geomean)", "Lifetime y", "Demotions/run"}}
	base, ws, err := r.matrix([]sim.Scheme{sim.StaticScheme(pcm.Mode7SETs)})
	if err != nil {
		return "", err
	}
	specs := make([]RunSpec, 0, len(values)*len(ws))
	for _, mul := range values {
		s := rrmConfigWith(func(c *coreRRMConfig) {
			c.DecayInterval = timingTime(float64(c.DecayInterval) * mul)
		})
		for _, w := range ws {
			specs = append(specs, RunSpec{Label: fmt.Sprintf("a5-%.2f", mul), Scheme: s, Workload: w})
		}
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	for vi, mul := range values {
		perf := make([]float64, 0, len(ws))
		life := make([]float64, 0, len(ws))
		var demotions uint64
		for wi, w := range ws {
			m := ms[vi*len(ws)+wi]
			perf = append(perf, m.IPC/base[w.Name]["Static-7-SETs"].IPC)
			life = append(life, m.LifetimeYears)
			demotions += m.RRM.Demotions
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.4fs", 0.125*mul),
			fmt.Sprintf("%.3f", stats.Geomean(perf)),
			fmt.Sprintf("%.2f", stats.Geomean(life)),
			fmt.Sprintf("%d", demotions/uint64(len(ws))),
		})
	}
	return stats.Table(rows), nil
}

// AblationWearLevel validates the Table V assumption that Start-Gap wear
// leveling delivers >= 95 % of the average cell lifetime, by replaying
// power-law write streams of increasing skew (the Table III shape)
// through the rotation.
func AblationWearLevel(r *Runner) (string, error) {
	rows := [][]string{{"Write skew", "Efficiency", "Write overhead"}}
	writes := 2 * 257 * 257 * 50
	if r.opt.Quick {
		writes /= 4
	}
	for _, skew := range []float64{1.0, 1.5, 2.0, 3.0} {
		sg, err := wearlevel.New(256, 50)
		if err != nil {
			return "", err
		}
		state := uint64(7)
		for i := 0; i < writes; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			u := float64(state>>11) / (1 << 53)
			line := uint64(mathPow(u, skew) * 256)
			if line >= 256 {
				line = 255
			}
			sg.Write(line)
		}
		_, _, overhead := sg.Stats()
		rows = append(rows, []string{
			fmt.Sprintf("u^%.1f", skew),
			fmt.Sprintf("%.3f", sg.Efficiency()),
			fmt.Sprintf("%.2f%%", 100*overhead),
		})
	}
	return "Start-Gap leveling efficiency (paper Table V assumes >= 0.95)\n" + stats.Table(rows), nil
}

// AblationMultiMode runs the three-tier MultiModeRRM extension (§IV-A
// notes the paper restricted itself to two modes for simplicity) against
// the base RRM: lukewarm regions write with the 5-SETs mid mode, whose
// 104.4 s retention needs ~50x fewer selective refreshes than the fast
// tier.
func AblationMultiMode(r *Runner) (string, error) {
	// The custom-policy mutate creates a fresh MultiModeRRM per spec, so
	// parallel jobs never share policy state.
	multiMode := func(c *sim.Config) {
		policy, perr := core.NewMultiModeRRM(core.DefaultMultiModeConfig().Scale(c.TimeScale), nil)
		if perr != nil {
			panic(perr)
		}
		c.Scheme = sim.Scheme{Kind: sim.SchemeCustom, Custom: policy}
	}
	ws := r.opt.workloads()
	var specs []RunSpec
	for _, w := range ws {
		specs = append(specs,
			RunSpec{Label: "main", Scheme: sim.StaticScheme(pcm.Mode7SETs), Workload: w},
			RunSpec{Label: "main", Scheme: sim.RRMScheme(), Workload: w},
			RunSpec{Label: "a4-multimode", Scheme: sim.Scheme{Kind: sim.SchemeCustom}, Workload: w, Mutate: multiMode})
	}
	ms, err := r.RunBatch(specs)
	if err != nil {
		return "", err
	}
	rows := [][]string{{"Workload", "Scheme", "Norm. IPC", "Lifetime y", "3-SETs", "5-SETs", "7-SETs"}}
	for i, w := range ws {
		base, rrm, mm := ms[3*i], ms[3*i+1], ms[3*i+2]
		for _, v := range []sim.Metrics{rrm, mm} {
			// WritesByMode counts demand writes plus simulated
			// refreshes (both wear cells); normalize over that sum.
			var total float64
			for _, n := range v.WritesByMode {
				total += float64(n)
			}
			if total == 0 {
				total = 1
			}
			rows = append(rows, []string{
				w.Name, v.Scheme,
				fmt.Sprintf("%.3f", v.IPC/base.IPC),
				fmt.Sprintf("%.2f", v.LifetimeYears),
				fmt.Sprintf("%.0f%%", 100*float64(v.WritesByMode[pcm.Mode3SETs])/total),
				fmt.Sprintf("%.0f%%", 100*float64(v.WritesByMode[pcm.Mode5SETs])/total),
				fmt.Sprintf("%.0f%%", 100*float64(v.WritesByMode[pcm.Mode7SETs])/total),
			})
		}
	}
	return stats.Table(rows), nil
}
