// Package cpu models the processor cores of Table IV with a first-order
// out-of-order (interval) model: an 8-issue core commits non-memory
// instructions at the workload's base CPI, overlaps LLC-miss loads up to
// its MSHR/MLP budget, stalls when the reorder buffer fills behind the
// oldest outstanding miss, and retires stores asynchronously. This class
// of model reproduces the memory-latency and bandwidth sensitivity of a
// detailed OoO core at a tiny fraction of the cost, which is what the
// paper's experiments need: the write-mode policies differ only through
// the memory system.
package cpu

import (
	"fmt"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// AccessReply is the backend's answer to one data access.
type AccessReply struct {
	// Stall is synchronous on-chip latency to charge the core (partial
	// exposure of L2/LLC hit latency).
	Stall timing.Time
	// Pending means the access misses to memory; the done callback
	// passed to Access fires when data returns.
	Pending bool
	// Throttle tells the core to stop issuing until its resume
	// callback fires (memory-side backpressure, e.g. a full write
	// queue blocking LLC evictions).
	Throttle bool
}

// Backend is the memory system a core issues accesses into. Access must
// always accept the operation: backpressure is expressed via Throttle
// plus the core's resume callback, never by rejection (so the core never
// needs to replay an operation whose cache side effects already
// happened). instNum is the issuing instruction's commit number: with
// (core, store, instNum) a state snapshot can rebuild the done callback
// of an in-flight miss via MissCallback.
type Backend interface {
	Access(core int, addr uint64, store bool, instNum uint64, now timing.Time, done func(timing.Time)) AccessReply
}

// Config sizes one core.
type Config struct {
	ID         int
	ROB        int // reorder-buffer window (instructions); Table IV core: 192
	MSHRs      int // outstanding L1 misses (Table IV: 8)
	Quantum    timing.Time
	MaxOpsStep int // safety valve per step call
}

// DefaultConfig returns the Table IV core: 8-issue OoO, 192-entry window,
// 8 MSHRs. The quantum bounds how far a core runs ahead of the global
// event clock between reschedules (cross-core interleaving granularity
// for on-chip state; memory-level timing stays exact).
func DefaultConfig(id int) Config {
	return Config{ID: id, ROB: 192, MSHRs: 8, Quantum: 2 * timing.Microsecond, MaxOpsStep: 1 << 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ROB <= 0 || c.MSHRs <= 0 || c.Quantum <= 0 || c.MaxOpsStep <= 0 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

// Stats reports a core's progress.
type Stats struct {
	Instructions  uint64
	MemOps        uint64
	Stores        uint64
	LoadMisses    uint64 // LLC-miss loads
	StoreMisses   uint64
	StallROB      uint64 // times the core stalled on a full window
	StallMSHR     uint64
	StallThrottle uint64
	LocalTime     timing.Time
}

// IPC returns committed instructions per CPU cycle.
func (s Stats) IPC() float64 {
	if s.LocalTime == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.LocalTime.CPUCycles())
}

// Core is one simulated processor core.
type Core struct {
	cfg Config
	gen trace.Stream
	be  Backend
	eq  *timing.EventQueue

	cpiPerInst timing.Time // BaseCPI in picoseconds, rounded
	baseCPI    float64     // cached: Stream guarantees it is constant
	opBuf      trace.Op    // reusable Next buffer (see step)
	cpiFrac    float64     // fractional picosecond accumulator
	maxMLP     int

	localTime timing.Time
	stats     Stats

	loadMissInsts []uint64 // instruction numbers of outstanding load misses
	storeMisses   int
	throttled     bool
	stopAt        timing.Time
	stepArmed     bool
	stepAt        timing.Time // when the armed step fires (snapshot bookkeeping)
	stepSeq       int64       // its event sequence number

	stepFn  func(timing.Time) // bound once: step (avoids a closure per arm)
	tokFree []*missToken      // recycled miss-completion tokens

	// fast selects the sharded engine's step bookkeeping: the recurring
	// step event lives in a timer slot instead of the heap. A step is
	// never cancelled and at most one is pending, and Timer.Arm draws a
	// sequence number exactly like Schedule, so the dispatch order (and
	// the (stepAt, stepSeq) snapshot record) is identical either way.
	fast  bool
	timer *timing.Timer
}

// missToken carries one outstanding miss's completion context. Tokens
// are pooled per core with a once-bound callback, so steady-state misses
// allocate no closures.
type missToken struct {
	c       *Core
	store   bool
	instNum uint64
	fn      func(timing.Time)
}

// acquireToken returns a miss token bound to this core.
func (c *Core) acquireToken(store bool, instNum uint64) *missToken {
	var tok *missToken
	if n := len(c.tokFree); n > 0 {
		tok = c.tokFree[n-1]
		c.tokFree[n-1] = nil
		c.tokFree = c.tokFree[:n-1]
	} else {
		tok = &missToken{c: c}
		tok.fn = func(t timing.Time) {
			store, instNum := tok.store, tok.instNum
			tok.c.tokFree = append(tok.c.tokFree, tok)
			tok.c.memDone(store, instNum, t)
		}
	}
	tok.store, tok.instNum = store, instNum
	return tok
}

// releaseToken returns an unused token (the access hit on-chip).
func (c *Core) releaseToken(tok *missToken) {
	c.tokFree = append(c.tokFree, tok)
}

// New builds a core running gen against be, self-scheduling on eq.
func New(cfg Config, gen trace.Stream, be Backend, eq *timing.EventQueue) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil || be == nil || eq == nil {
		return nil, fmt.Errorf("cpu: nil generator, backend or event queue")
	}
	mlp := cfg.MSHRs
	if m := gen.MaxMLP(); m > 0 && m < mlp {
		mlp = m
	}
	c := &Core{
		cfg:        cfg,
		gen:        gen,
		be:         be,
		eq:         eq,
		maxMLP:     mlp,
		baseCPI:    gen.BaseCPI(),
		cpiPerInst: timing.Time(gen.BaseCPI() * float64(timing.CPUCycle)),
		stopAt:     timing.Forever,
	}
	c.stepFn = c.step
	return c, nil
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats {
	s := c.stats
	s.LocalTime = c.localTime
	return s
}

// ID returns the core's index.
func (c *Core) ID() int { return c.cfg.ID }

// Start begins execution at the event queue's current time and runs
// until stopAt (set via StopAt) or forever.
func (c *Core) Start() {
	c.localTime = c.eq.Now()
	c.armStep(c.eq.Now())
}

// StopAt sets the simulation horizon: the core issues no work at or
// beyond this local time.
func (c *Core) StopAt(t timing.Time) { c.stopAt = t }

// Throttle blocks the core until Resume fires. The backend uses it when
// backpressure is discovered after Access has already returned (e.g. a
// writeback scheduled at the core's local time finds the write queue
// full).
func (c *Core) Throttle() { c.throttled = true }

// EnsureRunning re-arms a core that parked at a stop horizon: the local
// clock jumps forward to now (never backward) and a step is armed unless
// one is already pending or the core is waiting on a completion callback
// (which will arm it). Callers must first raise the horizon via StopAt,
// or the armed step parks again immediately.
func (c *Core) EnsureRunning(now timing.Time) {
	if c.localTime < now {
		c.localTime = now
	}
	if c.stepArmed || c.blocked() {
		return
	}
	c.armStep(now)
}

// Resume is the backpressure release callback: the backend calls it when
// a Throttle it issued to this core has cleared.
func (c *Core) Resume(now timing.Time) {
	if !c.throttled {
		return
	}
	c.throttled = false
	c.armStep(now)
}

// armStep schedules a step if none is armed.
func (c *Core) armStep(at timing.Time) {
	if c.stepArmed {
		return
	}
	c.scheduleStep(timing.Max(at, c.eq.Now()))
}

// scheduleStep unconditionally arms a step at the given time, recording
// (at, seq) so a snapshot can re-create the pending event on restore.
func (c *Core) scheduleStep(at timing.Time) {
	c.stepArmed = true
	c.stepAt = at
	if c.fast {
		c.timer.Arm(c.eq, at)
		c.stepSeq = c.timer.Seq()
		return
	}
	c.stepSeq = c.eq.Schedule(at, c.stepFn).Seq()
}

// UseTimerStep switches the core's self-scheduling to a timer slot on
// its queue (the sharded engine; standalone queues never dispatch
// timers). Must be called before Start. The serial engine without this
// call is byte-frozen, including its event and snapshot stream.
func (c *Core) UseTimerStep() {
	c.fast = true
	c.timer = c.eq.NewTimer(c.stepFn)
}

// MissCallback mints the completion callback of an outstanding miss
// identified by (store, instNum): the exact closure Access handed to
// the backend when the miss issued, reconstructed during restore.
func (c *Core) MissCallback(store bool, instNum uint64) func(timing.Time) {
	return c.acquireToken(store, instNum).fn
}

// blocked reports whether the core cannot issue and must wait for a
// callback.
func (c *Core) blocked() bool {
	if c.throttled {
		return true
	}
	if len(c.loadMissInsts) > 0 && c.stats.Instructions-c.loadMissInsts[0] >= uint64(c.cfg.ROB) {
		return true
	}
	if len(c.loadMissInsts) >= c.maxMLP {
		return true
	}
	if len(c.loadMissInsts)+c.storeMisses >= c.cfg.MSHRs {
		return true
	}
	return false
}

// step runs the core forward from the event time until it blocks, hits
// the quantum, or reaches the horizon.
func (c *Core) step(now timing.Time) {
	c.stepArmed = false
	if c.localTime < now {
		c.localTime = now
	}
	horizon := now + c.cfg.Quantum
	// The op buffer lives on the Core: a step-local would escape through
	// the trace.Stream interface call and cost one heap Op per step.
	op := &c.opBuf
	for n := 0; n < c.cfg.MaxOpsStep; n++ {
		if c.localTime >= c.stopAt {
			return // horizon reached; do not rearm
		}
		if c.blocked() {
			c.noteStall()
			return // a completion/resume callback will rearm
		}
		if c.localTime > horizon {
			c.armStep(c.localTime)
			return
		}

		c.gen.Next(op)
		c.advance(op.NonMem)
		c.stats.Instructions += uint64(op.NonMem) + 1
		c.stats.MemOps++
		if op.Store {
			c.stats.Stores++
		}

		instNum := c.stats.Instructions
		store := op.Store
		tok := c.acquireToken(store, instNum)
		reply := c.be.Access(c.cfg.ID, op.Addr, store, instNum, c.localTime, tok.fn)
		c.localTime += reply.Stall
		if reply.Pending {
			if store {
				c.stats.StoreMisses++
				c.storeMisses++
			} else {
				c.stats.LoadMisses++
				c.loadMissInsts = append(c.loadMissInsts, instNum)
			}
		} else {
			// The access completed on-chip; the callback will never
			// fire, so the token can be reused immediately.
			c.releaseToken(tok)
		}
		if reply.Throttle {
			c.throttled = true
		}
	}
	// Safety valve: extremely hit-heavy phases could loop too long in
	// one event; yield and continue.
	c.armStep(c.localTime)
}

// advance charges n non-memory instructions plus the memory op issue slot
// at the workload's base CPI, accumulating sub-picosecond remainders.
func (c *Core) advance(nonMem int) {
	insts := nonMem + 1
	c.localTime += timing.Time(insts) * c.cpiPerInst
	// Track the fractional picoseconds lost to integer rounding so the
	// long-run rate matches BaseCPI exactly.
	exact := float64(insts) * c.baseCPI * float64(timing.CPUCycle)
	c.cpiFrac += exact - float64(timing.Time(insts)*c.cpiPerInst)
	if c.cpiFrac >= 1 {
		whole := timing.Time(c.cpiFrac)
		c.localTime += whole
		c.cpiFrac -= float64(whole)
	}
}

// memDone handles a memory completion for this core.
func (c *Core) memDone(store bool, instNum uint64, now timing.Time) {
	if store {
		c.storeMisses--
	} else {
		for i, v := range c.loadMissInsts {
			if v == instNum {
				c.loadMissInsts = append(c.loadMissInsts[:i], c.loadMissInsts[i+1:]...)
				break
			}
		}
	}
	c.armStep(now)
}

// noteStall classifies why the core is blocked, for the stats counters.
func (c *Core) noteStall() {
	switch {
	case c.throttled:
		c.stats.StallThrottle++
	case len(c.loadMissInsts) > 0 && c.stats.Instructions-c.loadMissInsts[0] >= uint64(c.cfg.ROB):
		c.stats.StallROB++
	default:
		c.stats.StallMSHR++
	}
}
