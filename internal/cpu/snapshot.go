package cpu

import (
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

const snapSection = 0x4355 // "CU"

// Snapshot writes the core's execution state: progress counters, the
// fractional-CPI accumulator, outstanding misses and the armed step
// event (as its (at, seq) descriptor — closures cannot travel, so the
// restorer re-creates the event from this record). stopAt is
// deliberately not included: the restored run sets its own horizon.
func (c *Core) Snapshot(w *snapshot.Writer) {
	w.Section(snapSection)
	w.I64(int64(c.localTime))
	w.F64(c.cpiFrac)
	w.U64(c.stats.Instructions)
	w.U64(c.stats.MemOps)
	w.U64(c.stats.Stores)
	w.U64(c.stats.LoadMisses)
	w.U64(c.stats.StoreMisses)
	w.U64(c.stats.StallROB)
	w.U64(c.stats.StallMSHR)
	w.U64(c.stats.StallThrottle)
	w.U32(uint32(len(c.loadMissInsts)))
	for _, v := range c.loadMissInsts {
		w.U64(v)
	}
	w.I64(int64(c.storeMisses))
	w.Bool(c.throttled)
	w.Bool(c.stepArmed)
	w.I64(int64(c.stepAt))
	w.I64(c.stepSeq)
}

// Restore loads state written by Snapshot into a freshly built core and
// appends the armed step event (if any) to pend for re-scheduling.
func (c *Core) Restore(r *snapshot.Reader, pend *[]timing.Pending) {
	r.Section(snapSection)
	c.localTime = timing.Time(r.I64())
	c.cpiFrac = r.F64()
	c.stats.Instructions = r.U64()
	c.stats.MemOps = r.U64()
	c.stats.Stores = r.U64()
	c.stats.LoadMisses = r.U64()
	c.stats.StoreMisses = r.U64()
	c.stats.StallROB = r.U64()
	c.stats.StallMSHR = r.U64()
	c.stats.StallThrottle = r.U64()
	n := r.Count(1 << 20)
	c.loadMissInsts = c.loadMissInsts[:0]
	for i := 0; i < n; i++ {
		c.loadMissInsts = append(c.loadMissInsts, r.U64())
	}
	c.storeMisses = int(r.I64())
	c.throttled = r.Bool()
	armed := r.Bool()
	at := timing.Time(r.I64())
	seq := r.I64()
	c.stepArmed = false
	if r.Err() == nil && armed {
		*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
			c.scheduleStep(at)
		}})
	}
}
