package cpu

import (
	"math"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// fakeBackend scripts replies and records accesses.
type fakeBackend struct {
	eq *timing.EventQueue

	// behavior knobs
	missEvery   int // every Nth access is a miss (0 = never)
	missLatency timing.Time
	stall       timing.Time
	throttleAt  int // access index to throttle at (0 = never)
	resume      func(timing.Time)

	accesses int
	stores   int
}

func (f *fakeBackend) Access(core int, addr uint64, store bool, instNum uint64, now timing.Time, done func(timing.Time)) AccessReply {
	f.accesses++
	if store {
		f.stores++
	}
	var r AccessReply
	r.Stall = f.stall
	if f.missEvery > 0 && f.accesses%f.missEvery == 0 {
		r.Pending = true
		f.eq.Schedule(now+f.missLatency, done)
	}
	if f.throttleAt > 0 && f.accesses == f.throttleAt {
		r.Throttle = true
	}
	return r
}

func genFor(t *testing.T, name string) *trace.Mixture {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// denseGen returns a generator with one memory op every ~2 instructions,
// so ROB/MSHR limits (counted in instructions) bind within a few ops.
func denseGen(t *testing.T) *trace.Mixture {
	t.Helper()
	p, err := trace.ProfileByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	p.MemFraction = 0.5
	m, err := trace.NewMixture(p, 0, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(0)
	bad.ROB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	if _, err := New(DefaultConfig(0), nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestHitOnlyIPCMatchesBaseCPI(t *testing.T) {
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq}
	gen := genFor(t, "hmmer")
	c, err := New(DefaultConfig(0), gen, be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(100 * timing.Microsecond)
	c.Start()
	eq.RunUntil(200 * timing.Microsecond)
	s := c.Stats()
	if s.Instructions == 0 {
		t.Fatal("core made no progress")
	}
	// With no misses and no stalls, IPC = 1/BaseCPI.
	wantIPC := 1 / gen.BaseCPI()
	if math.Abs(s.IPC()-wantIPC)/wantIPC > 0.02 {
		t.Errorf("IPC = %v, want ~%v", s.IPC(), wantIPC)
	}
	if s.LoadMisses != 0 || s.StallROB != 0 {
		t.Errorf("unexpected misses/stalls: %+v", s)
	}
}

func TestMissLatencyLowersIPC(t *testing.T) {
	run := func(missLat timing.Time) float64 {
		eq := timing.NewEventQueue()
		be := &fakeBackend{eq: eq, missEvery: 10, missLatency: missLat}
		c, err := New(DefaultConfig(0), genFor(t, "hmmer"), be, eq)
		if err != nil {
			t.Fatal(err)
		}
		c.StopAt(200 * timing.Microsecond)
		c.Start()
		eq.RunUntil(5 * timing.Millisecond)
		return c.Stats().IPC()
	}
	fast, slow := run(100*timing.Nanosecond), run(1000*timing.Nanosecond)
	if slow >= fast {
		t.Errorf("IPC with slow memory (%v) not below fast (%v)", slow, fast)
	}
}

func TestROBStall(t *testing.T) {
	// Misses never complete within the run: the core must stop at the
	// ROB limit rather than run ahead forever.
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq, missEvery: 2, missLatency: timing.Second}
	cfg := DefaultConfig(0)
	cfg.ROB = 64
	cfg.MSHRs = 100 // ROB, not MSHRs, must be the binding limit
	c, err := New(cfg, denseGen(t), be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(timing.Second)
	c.Start()
	eq.RunUntil(100 * timing.Microsecond)
	s := c.Stats()
	if s.Instructions > uint64(cfg.ROB)+100 {
		t.Errorf("core committed %d instructions past a dead ROB of %d", s.Instructions, cfg.ROB)
	}
	if s.StallROB == 0 {
		t.Error("no ROB stall recorded")
	}
}

func TestMSHRLimit(t *testing.T) {
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq, missEvery: 1, missLatency: timing.Second}
	cfg := DefaultConfig(0)
	cfg.MSHRs = 4
	cfg.ROB = 1 << 20
	c, err := New(cfg, denseGen(t), be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(timing.Second)
	c.Start()
	eq.RunUntil(100 * timing.Microsecond)
	s := c.Stats()
	if s.LoadMisses+s.StoreMisses > 4 {
		t.Errorf("%d misses outstanding with 4 MSHRs", s.LoadMisses+s.StoreMisses)
	}
	if s.StallMSHR == 0 {
		t.Error("no MSHR stall recorded")
	}
}

func TestMaxMLPCap(t *testing.T) {
	// mcf's profile caps load MLP at 2 even with 8 MSHRs.
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq, missEvery: 1, missLatency: timing.Second}
	c, err := New(DefaultConfig(0), genFor(t, "mcf"), be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(timing.Second)
	c.Start()
	eq.RunUntil(100 * timing.Microsecond)
	if got := len(c.loadMissInsts); got > 2 {
		t.Errorf("mcf overlapped %d load misses, cap is 2", got)
	}
}

func TestThrottleAndResume(t *testing.T) {
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq, throttleAt: 50}
	c, err := New(DefaultConfig(0), genFor(t, "hmmer"), be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(timing.Second)
	c.Start()
	eq.RunUntil(50 * timing.Microsecond)
	frozen := c.Stats().Instructions
	if be.accesses != 50 {
		t.Fatalf("made %d accesses, want to freeze at 50", be.accesses)
	}
	// No progress while throttled.
	eq.RunUntil(100 * timing.Microsecond)
	if got := c.Stats().Instructions; got != frozen {
		t.Errorf("throttled core progressed: %d -> %d", frozen, got)
	}
	if c.Stats().StallThrottle == 0 {
		t.Error("no throttle stall recorded")
	}
	// Resume releases it.
	c.Resume(eq.Now())
	eq.RunUntil(150 * timing.Microsecond)
	if got := c.Stats().Instructions; got <= frozen {
		t.Error("core did not resume")
	}
	// Redundant resume is a no-op.
	c.Resume(eq.Now())
}

func TestStopAtHorizon(t *testing.T) {
	eq := timing.NewEventQueue()
	be := &fakeBackend{eq: eq}
	c, err := New(DefaultConfig(0), genFor(t, "hmmer"), be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(10 * timing.Microsecond)
	c.Start()
	eq.RunUntil(timing.Millisecond)
	s := c.Stats()
	if s.LocalTime < 10*timing.Microsecond {
		t.Errorf("stopped early at %v", s.LocalTime)
	}
	if s.LocalTime > 13*timing.Microsecond {
		t.Errorf("overran horizon to %v", s.LocalTime)
	}
}

func TestOutOfOrderCompletion(t *testing.T) {
	// Misses completing out of order must unstall the ROB only when the
	// oldest completes.
	eq := timing.NewEventQueue()
	gen := denseGen(t)
	cfg := DefaultConfig(0)
	cfg.ROB = 32
	var dones []func(timing.Time)
	be := &manualBackend{pendingEvery: 3, dones: &dones}
	c, err := New(cfg, gen, be, eq)
	if err != nil {
		t.Fatal(err)
	}
	c.StopAt(timing.Second)
	c.Start()
	eq.RunUntil(10 * timing.Microsecond)
	if len(dones) < 2 {
		t.Fatalf("want >=2 outstanding misses, have %d", len(dones))
	}
	before := c.Stats().Instructions
	// Complete the youngest first: window still blocked by the oldest.
	dones[len(dones)-1](eq.Now())
	eq.RunUntil(11 * timing.Microsecond)
	mid := c.Stats().Instructions
	// Then the oldest: core advances.
	dones[0](eq.Now())
	eq.RunUntil(20 * timing.Microsecond)
	after := c.Stats().Instructions
	if after <= mid {
		t.Errorf("core stuck after oldest completion: %d -> %d -> %d", before, mid, after)
	}
}

type manualBackend struct {
	pendingEvery int
	count        int
	dones        *[]func(timing.Time)
}

func (m *manualBackend) Access(core int, addr uint64, store bool, instNum uint64, now timing.Time, done func(timing.Time)) AccessReply {
	m.count++
	if store {
		return AccessReply{}
	}
	if m.count%m.pendingEvery == 0 {
		*m.dones = append(*m.dones, done)
		return AccessReply{Pending: true}
	}
	return AccessReply{}
}

func TestStallChargesLatency(t *testing.T) {
	run := func(stall timing.Time) float64 {
		eq := timing.NewEventQueue()
		be := &fakeBackend{eq: eq, stall: stall}
		c, err := New(DefaultConfig(0), genFor(t, "hmmer"), be, eq)
		if err != nil {
			t.Fatal(err)
		}
		c.StopAt(100 * timing.Microsecond)
		c.Start()
		eq.RunUntil(timing.Millisecond)
		return c.Stats().IPC()
	}
	if run(10*timing.Nanosecond) >= run(0) {
		t.Error("hit-latency stalls did not lower IPC")
	}
}

func TestIPCZeroWhenIdle(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("idle IPC should be 0")
	}
}
