// Package stats derives the paper's evaluation metrics from raw simulator
// counters: PCM lifetime from wear rates (endurance 5e6 writes, 95 %
// wear-leveling efficiency per Table V), memory energy, geometric means
// for the cross-workload summaries, and the region write-interval
// histogram of Table III.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// SecondsPerYear converts lifetimes; the paper reports years.
const SecondsPerYear = 365.25 * 24 * 3600

// WearBudget returns the total block-write budget of the device: per-cell
// endurance times the number of blocks, derated by the wear-leveling
// efficiency (the whole memory reaches 95 % of the average cell
// lifetime).
func WearBudget(dev pcm.DeviceConfig) float64 {
	return dev.EnduranceWrites * float64(dev.TotalBlocks()) * dev.WearLevelEfficiency
}

// LifetimeYears converts a sustained wear rate (block writes per second,
// demand + all refresh causes) into the device lifetime in years.
func LifetimeYears(dev pcm.DeviceConfig, wearPerSecond float64) float64 {
	if wearPerSecond <= 0 {
		return math.Inf(1)
	}
	return WearBudget(dev) / wearPerSecond / SecondsPerYear
}

// FormatYears renders a lifetime for the report tables: two decimals,
// with the zero-wear infinite lifetime spelled "inf" instead of
// fmt's "+Inf".
func FormatYears(years float64) string {
	if math.IsInf(years, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", years)
}

// GlobalRefreshWearRate returns the block-write rate of the device's
// built-in global refresh: every block rewritten once per retention
// period of the given mode.
func GlobalRefreshWearRate(dev pcm.DeviceConfig, mode pcm.WriteMode) float64 {
	return float64(dev.TotalBlocks()) / pcm.Retention(mode).Seconds()
}

// Geomean returns the geometric mean of strictly positive values; zero
// and negative entries make the result 0 (they would in the paper's
// plots, too, by breaking the log).
func Geomean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// IntervalBucket classifies a region's average write interval into the
// rows of Table III.
type IntervalBucket int

// Table III buckets, in display order.
const (
	BucketSub1ms      IntervalBucket = iota // < 1e6 ns
	Bucket1msTo10ms                         // 1e6..1e7 ns
	Bucket10msTo100ms                       // 1e7..1e8 ns
	Bucket100msTo1s                         // 1e8 ns..1 s
	Bucket1sTo2s                            // 1..2 s (the paper's 5 s window tops out here)
	BucketBeyond2s                          // > 2 s average interval
	BucketWrittenOnce
	BucketNeverWritten
	numBuckets
)

// String implements fmt.Stringer with the paper's row labels.
func (b IntervalBucket) String() string {
	switch b {
	case BucketSub1ms:
		return "< 10^6 ns"
	case Bucket1msTo10ms:
		return "10^6 ns to 10^7 ns"
	case Bucket10msTo100ms:
		return "10^7 ns to 10^8 ns"
	case Bucket100msTo1s:
		return "10^8 ns to 1 s"
	case Bucket1sTo2s:
		return "1 s to 2 s"
	case BucketBeyond2s:
		return "> 2 s"
	case BucketWrittenOnce:
		return "written once"
	case BucketNeverWritten:
		return "never written"
	default:
		return fmt.Sprintf("IntervalBucket(%d)", int(b))
	}
}

// IntervalHistogram accumulates per-region write timing to regenerate
// Table III: for every 4 KB region it tracks first/last write and count,
// then classifies by average inter-write interval.
type IntervalHistogram struct {
	regionShift  uint
	totalRegions uint64
	// recs holds records by value: regions never allocate individual
	// heap objects, only map growth does, and Reset reuses the buckets.
	recs map[uint64]regionRec
}

type regionRec struct {
	first, last timing.Time
	count       uint64
}

// NewIntervalHistogram tracks writes over a memory of memBytes at 4 KB
// region granularity.
func NewIntervalHistogram(memBytes uint64) *IntervalHistogram {
	return &IntervalHistogram{
		regionShift:  12,
		totalRegions: memBytes >> 12,
		recs:         make(map[uint64]regionRec),
	}
}

// Reset clears the accumulated regions, keeping the map's storage so a
// reused histogram is allocation-free in steady state.
func (h *IntervalHistogram) Reset() { clear(h.recs) }

// AddWrite records a memory write to addr at time t.
func (h *IntervalHistogram) AddWrite(addr uint64, t timing.Time) {
	region := addr >> h.regionShift
	r, ok := h.recs[region]
	if !ok {
		h.recs[region] = regionRec{first: t, last: t, count: 1}
		return
	}
	r.count++
	r.last = t
	h.recs[region] = r
}

// Row is one Table III line.
type Row struct {
	Bucket        IntervalBucket
	Regions       uint64
	RegionPercent float64
	Writes        uint64
	WritePercent  float64
}

// Rows classifies every region and returns the table in display order.
func (h *IntervalHistogram) Rows() []Row {
	var regions [numBuckets]uint64
	var writes [numBuckets]uint64
	var totalWrites uint64
	for _, r := range h.recs {
		totalWrites += r.count
		if r.count == 1 {
			regions[BucketWrittenOnce]++
			writes[BucketWrittenOnce] += r.count
			continue
		}
		avg := (r.last - r.first) / timing.Time(r.count-1)
		var b IntervalBucket
		switch {
		case avg < timing.Millisecond:
			b = BucketSub1ms
		case avg < 10*timing.Millisecond:
			b = Bucket1msTo10ms
		case avg < 100*timing.Millisecond:
			b = Bucket10msTo100ms
		case avg < timing.Second:
			b = Bucket100msTo1s
		case avg < 2*timing.Second:
			b = Bucket1sTo2s
		default:
			b = BucketBeyond2s
		}
		regions[b]++
		writes[b] += r.count
	}
	// Guard the subtraction: writes beyond the declared memory size
	// (or a zero-size histogram) would underflow the uint64.
	if touched := uint64(len(h.recs)); touched < h.totalRegions {
		regions[BucketNeverWritten] = h.totalRegions - touched
	}

	rows := make([]Row, 0, numBuckets)
	for b := IntervalBucket(0); b < numBuckets; b++ {
		row := Row{Bucket: b, Regions: regions[b], Writes: writes[b]}
		if h.totalRegions > 0 {
			row.RegionPercent = 100 * float64(regions[b]) / float64(h.totalRegions)
		}
		if totalWrites > 0 && b != BucketNeverWritten {
			row.WritePercent = 100 * float64(writes[b]) / float64(totalWrites)
		}
		rows = append(rows, row)
	}
	return rows
}

// HotShare returns the fraction of all writes landing in the hottest
// regions covering the given fraction of touched regions — the §III-C
// observation ("about 2 % of memory gets up to 97.3 % of writes").
func (h *IntervalHistogram) HotShare(regionFraction float64) float64 {
	if len(h.recs) == 0 {
		return 0
	}
	counts := make([]uint64, 0, len(h.recs))
	var total uint64
	for _, r := range h.recs {
		counts = append(counts, r.count)
		total += r.count
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	n := int(regionFraction * float64(h.totalRegions))
	if n > len(counts) {
		n = len(counts)
	}
	var hot uint64
	for _, c := range counts[:n] {
		hot += c
	}
	return float64(hot) / float64(total)
}

// Table renders rows of cells as fixed-width text, first row as header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
