package stats

import (
	"encoding/json"
	"math"
)

// Interval is a mean with a two-sided confidence interval [Lo, Hi].
type Interval struct {
	Mean float64 `json:"mean"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Width returns the interval's full width.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// tCrit95 holds the two-sided 95% Student-t critical values for
// 1..30 degrees of freedom; beyond 30 the normal quantile 1.96 is the
// standard asymptotic approximation (within 2% at df=30 already).
var tCrit95 = [31]float64{
	0, // df 0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (1.96 asymptote past df 30, +Inf for df < 1,
// where no interval exists).
func TCritical95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= 30 {
		return tCrit95[df]
	}
	return 1.96
}

// MeanCI95 returns the sample mean of samples with a two-sided 95%
// Student-t confidence interval. With fewer than two samples the
// interval is unbounded (the variance is undefined).
func MeanCI95(samples []float64) Interval {
	n := len(samples)
	if n == 0 {
		return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Interval{Mean: mean, Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sem := math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
	half := TCritical95(n-1) * sem
	return Interval{Mean: mean, Lo: mean - half, Hi: mean + half}
}

// WidenRelative grows the interval's half-width to at least frac*|Mean|,
// keeping it centred. Sampled simulation uses it as a model-bias floor:
// the Student-t interval only captures between-window variance, not the
// small systematic bias functional fast-forward introduces, so a purely
// statistical interval on a near-stationary workload can be narrower
// than the bias it ignores.
func (iv Interval) WidenRelative(frac float64) Interval {
	floor := frac * math.Abs(iv.Mean)
	if half := (iv.Hi - iv.Lo) / 2; half >= floor {
		return iv
	}
	return Interval{Mean: iv.Mean, Lo: iv.Mean - floor, Hi: iv.Mean + floor}
}

// MarshalJSON encodes non-finite fields as null: an interval from a
// single sample, or a zero-rate bound mapped through a reciprocal (wear
// floor 0 → lifetime upper bound ∞), is legitimately unbounded, and JSON
// has no infinity. UnmarshalJSON maps null back to the matching extreme
// (Lo → -Inf, Hi → +Inf, Mean → NaN), so the round trip preserves
// unboundedness.
func (iv Interval) MarshalJSON() ([]byte, error) {
	fin := func(v float64) *float64 {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return json.Marshal(intervalJSON{Mean: fin(iv.Mean), Lo: fin(iv.Lo), Hi: fin(iv.Hi)})
}

// UnmarshalJSON is the inverse of MarshalJSON (see there).
func (iv *Interval) UnmarshalJSON(b []byte) error {
	var aux intervalJSON
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	pick := func(p *float64, missing float64) float64 {
		if p == nil {
			return missing
		}
		return *p
	}
	iv.Mean = pick(aux.Mean, math.NaN())
	iv.Lo = pick(aux.Lo, math.Inf(-1))
	iv.Hi = pick(aux.Hi, math.Inf(1))
	return nil
}

type intervalJSON struct {
	Mean *float64 `json:"mean"`
	Lo   *float64 `json:"lo"`
	Hi   *float64 `json:"hi"`
}

// WidenAbsolute grows the interval's half-width to at least half, keeping
// it centred. The companion of WidenRelative for metrics whose mean can
// sit near zero (fractions, rare-event rates), where any relative floor
// collapses with the mean and the interval needs a resolution limit
// stated in the metric's own units.
func (iv Interval) WidenAbsolute(half float64) Interval {
	if h := (iv.Hi - iv.Lo) / 2; h >= half {
		return iv
	}
	return Interval{Mean: iv.Mean, Lo: iv.Mean - half, Hi: iv.Mean + half}
}
