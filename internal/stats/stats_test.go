package stats

import (
	"math"
	"strings"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

func TestWearBudget(t *testing.T) {
	dev := pcm.DefaultDeviceConfig()
	// 5e6 endurance * 134217728 blocks * 0.95.
	want := 5e6 * float64((8<<30)/64) * 0.95
	if got := WearBudget(dev); got != want {
		t.Errorf("budget = %g, want %g", got, want)
	}
}

func TestStatic3LifetimeMatchesPaper(t *testing.T) {
	// The paper's headline floor: Static-3's global refresh alone
	// (every block each 2.01 s) limits lifetime to ~0.317 years.
	dev := pcm.DefaultDeviceConfig()
	rate := GlobalRefreshWearRate(dev, pcm.Mode3SETs)
	years := LifetimeYears(dev, rate)
	if math.Abs(years-0.30)/0.30 > 0.05 {
		t.Errorf("Static-3 refresh-only lifetime = %.3f years, want ~0.30 (paper: 0.317)", years)
	}
}

func TestStatic7RefreshWearIsSmall(t *testing.T) {
	dev := pcm.DefaultDeviceConfig()
	r3 := GlobalRefreshWearRate(dev, pcm.Mode3SETs)
	r7 := GlobalRefreshWearRate(dev, pcm.Mode7SETs)
	if r3 < 1000*r7 || r7 >= r3 {
		t.Errorf("refresh wear rates r3=%g r7=%g: expected r3/r7 ~ 1520", r3, r7)
	}
	// Refresh-only lifetime for Static-7 is centuries; demand writes
	// dominate its lifetime.
	if years := LifetimeYears(dev, r7); years < 100 {
		t.Errorf("Static-7 refresh-only lifetime = %.1f years, want > 100", years)
	}
}

func TestLifetimeYears(t *testing.T) {
	dev := pcm.DefaultDeviceConfig()
	if !math.IsInf(LifetimeYears(dev, 0), 1) {
		t.Error("zero wear should be infinite lifetime")
	}
	// Double wear rate halves lifetime.
	a, b := LifetimeYears(dev, 1e6), LifetimeYears(dev, 2e6)
	if math.Abs(a-2*b)/a > 1e-12 {
		t.Errorf("lifetime not inversely proportional: %v vs %v", a, b)
	}
}

func TestLifetimeYearsNonPositiveWear(t *testing.T) {
	// Wear rates at or below zero (an idle device, or a subtraction
	// artifact in a derived rate) mean the budget is never consumed.
	dev := pcm.DefaultDeviceConfig()
	for _, rate := range []float64{0, -1, -1e9, math.Inf(-1)} {
		if got := LifetimeYears(dev, rate); !math.IsInf(got, 1) {
			t.Errorf("LifetimeYears(%g) = %v, want +Inf", rate, got)
		}
	}
}

func TestFormatYears(t *testing.T) {
	cases := []struct {
		years float64
		want  string
	}{
		{math.Inf(1), "inf"},
		{0, "0.00"},
		{0.317, "0.32"},
		{12.5, "12.50"},
	}
	for _, c := range cases {
		if got := FormatYears(c.years); got != c.want {
			t.Errorf("FormatYears(%v) = %q, want %q", c.years, got, c.want)
		}
	}
	// The infinite case must round-trip through the device helper.
	if got := FormatYears(LifetimeYears(pcm.DefaultDeviceConfig(), 0)); got != "inf" {
		t.Errorf("zero-wear lifetime formats as %q", got)
	}
}

func TestEmptyIntervalHistogram(t *testing.T) {
	h := NewIntervalHistogram(1 << 20) // 256 regions, none written
	rows := h.Rows()
	if len(rows) != int(numBuckets) {
		t.Fatalf("%d rows, want %d", len(rows), numBuckets)
	}
	for _, r := range rows {
		switch r.Bucket {
		case BucketNeverWritten:
			if r.Regions != 256 || r.RegionPercent != 100 {
				t.Errorf("never-written row = %+v, want all 256 regions", r)
			}
		default:
			if r.Regions != 0 || r.Writes != 0 || r.WritePercent != 0 {
				t.Errorf("empty histogram row %v = %+v, want zeros", r.Bucket, r)
			}
		}
	}
	if s := h.HotShare(0.02); s != 0 {
		t.Errorf("empty histogram HotShare = %v", s)
	}
}

func TestZeroSizeIntervalHistogram(t *testing.T) {
	// A zero-byte memory must not divide by zero in the percent columns.
	h := NewIntervalHistogram(0)
	for _, r := range h.Rows() {
		if r.RegionPercent != 0 {
			t.Errorf("row %v RegionPercent = %v, want 0", r.Bucket, r.RegionPercent)
		}
	}
	// Writes into a zero-region histogram still count, percentages stay
	// finite.
	h.AddWrite(0, 0)
	h.AddWrite(0, timing.Second)
	for _, r := range h.Rows() {
		if math.IsNaN(r.RegionPercent) || math.IsNaN(r.WritePercent) {
			t.Errorf("row %v has NaN percent: %+v", r.Bucket, r)
		}
		if r.Bucket == BucketNeverWritten && r.Regions != 0 {
			t.Errorf("never-written count underflowed: %d", r.Regions)
		}
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if got := Geomean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("geomean(5) = %v", got)
	}
	if Geomean([]float64{1, 0, 2}) != 0 {
		t.Error("zero entry should zero the geomean")
	}
}

func TestIntervalHistogramBuckets(t *testing.T) {
	h := NewIntervalHistogram(1 << 30) // 262144 regions
	// Region 0: written every 5 ms -> bucket 1e6-1e7 ns.
	for i := 0; i < 10; i++ {
		h.AddWrite(0, timing.Time(i)*5*timing.Millisecond)
	}
	// Region 1: written twice 1.5 s apart -> 1s-2s bucket.
	h.AddWrite(4096, 0)
	h.AddWrite(4096, 1500*timing.Millisecond)
	// Region 2: once.
	h.AddWrite(8192, timing.Second)
	// Region 3: every 100 us -> sub-1e6ns bucket.
	for i := 0; i < 5; i++ {
		h.AddWrite(3*4096, timing.Time(i)*100*timing.Microsecond)
	}

	rows := h.Rows()
	get := func(b IntervalBucket) Row {
		for _, r := range rows {
			if r.Bucket == b {
				return r
			}
		}
		t.Fatalf("bucket %v missing", b)
		return Row{}
	}
	if r := get(Bucket1msTo10ms); r.Regions != 1 || r.Writes != 10 {
		t.Errorf("1ms-10ms row = %+v", r)
	}
	if r := get(Bucket1sTo2s); r.Regions != 1 || r.Writes != 2 {
		t.Errorf("1s-2s row = %+v", r)
	}
	if r := get(BucketWrittenOnce); r.Regions != 1 || r.Writes != 1 {
		t.Errorf("written-once row = %+v", r)
	}
	if r := get(BucketSub1ms); r.Regions != 1 || r.Writes != 5 {
		t.Errorf("sub-1ms row = %+v", r)
	}
	if r := get(BucketNeverWritten); r.Regions != (1<<30)/4096-4 {
		t.Errorf("never-written = %d", r.Regions)
	}
	// Percentages sum to ~100 over write-carrying buckets.
	var wp float64
	for _, r := range rows {
		wp += r.WritePercent
	}
	if math.Abs(wp-100) > 1e-9 {
		t.Errorf("write percents sum to %v", wp)
	}
}

func TestHotShare(t *testing.T) {
	h := NewIntervalHistogram(1 << 30)
	if h.HotShare(0.02) != 0 {
		t.Error("empty histogram hot share")
	}
	// 10 hot regions with 1000 writes each, 1000 cold with 1.
	for r := 0; r < 10; r++ {
		for i := 0; i < 1000; i++ {
			h.AddWrite(uint64(r)*4096, timing.Time(i)*timing.Microsecond)
		}
	}
	for r := 100; r < 1100; r++ {
		h.AddWrite(uint64(r)*4096, 0)
	}
	// Hottest 0.01% of 262144 regions = 26 regions >= the 10 hot ones.
	share := h.HotShare(0.0001)
	want := 10000.0 / 11000.0
	if math.Abs(share-want) > 0.01 {
		t.Errorf("hot share = %v, want ~%v", share, want)
	}
}

func TestBucketStrings(t *testing.T) {
	for b := IntervalBucket(0); b < numBuckets; b++ {
		if strings.HasPrefix(b.String(), "IntervalBucket") {
			t.Errorf("bucket %d missing label", int(b))
		}
	}
}

func TestTable(t *testing.T) {
	if Table(nil) != "" {
		t.Error("empty table")
	}
	out := Table([][]string{{"name", "val"}, {"a", "1"}, {"longer", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header malformed: %q", out)
	}
	if !strings.HasPrefix(lines[3], "longer") {
		t.Errorf("row malformed: %q", lines[3])
	}
}
