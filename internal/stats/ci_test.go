package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, math.Inf(1)},
		{-3, math.Inf(1)},
		{1, 12.706},
		{5, 2.571},
		{30, 2.042},
		{31, 1.96},
		{10_000, 1.96},
	}
	for _, tc := range cases {
		if got := TCritical95(tc.df); got != tc.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
}

func TestMeanCI95(t *testing.T) {
	// Degenerate sizes: no variance exists, interval is unbounded.
	if iv := MeanCI95(nil); !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("empty interval not unbounded: %+v", iv)
	}
	iv := MeanCI95([]float64{3.5})
	if iv.Mean != 3.5 || !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("single-sample interval: %+v", iv)
	}

	// Hand-checked: n=4, mean 5, sd 2/sqrt(3)*... use {2,4,6,8}:
	// mean 5, sample sd sqrt(20/3), sem sd/2, half = 3.182*sem.
	iv = MeanCI95([]float64{2, 4, 6, 8})
	if iv.Mean != 5 {
		t.Errorf("mean = %v, want 5", iv.Mean)
	}
	wantHalf := 3.182 * math.Sqrt(20.0/3) / 2
	if half := (iv.Hi - iv.Lo) / 2; math.Abs(half-wantHalf) > 1e-9 {
		t.Errorf("half-width = %v, want %v", half, wantHalf)
	}
	if !iv.Contains(5) || iv.Contains(iv.Hi+1) {
		t.Error("Contains misbehaves on its own bounds")
	}

	// Zero variance collapses to a point.
	iv = MeanCI95([]float64{7, 7, 7})
	if iv.Lo != 7 || iv.Hi != 7 || iv.Width() != 0 {
		t.Errorf("constant samples: %+v", iv)
	}
}

func TestWiden(t *testing.T) {
	iv := Interval{Mean: 10, Lo: 9.9, Hi: 10.1}
	w := iv.WidenRelative(0.05) // floor half-width 0.5 > current 0.1
	if w.Lo != 9.5 || w.Hi != 10.5 {
		t.Errorf("WidenRelative floor not applied: %+v", w)
	}
	if v := w.WidenRelative(0.01); v != w {
		t.Errorf("WidenRelative shrank a wider interval: %+v", v)
	}
	a := iv.WidenAbsolute(0.3)
	if a.Lo != 9.7 || a.Hi != 10.3 {
		t.Errorf("WidenAbsolute floor not applied: %+v", a)
	}
	if v := a.WidenAbsolute(0.1); v != a {
		t.Errorf("WidenAbsolute shrank a wider interval: %+v", v)
	}
	// A relative floor on a zero mean is no floor at all — the absolute
	// one still bites.
	z := Interval{Mean: 0, Lo: 0, Hi: 0}
	if v := z.WidenRelative(0.5); v.Width() != 0 {
		t.Errorf("relative floor widened a zero mean: %+v", v)
	}
	if v := z.WidenAbsolute(0.02); v.Lo != -0.02 || v.Hi != 0.02 {
		t.Errorf("absolute floor on zero mean: %+v", v)
	}
}

func TestIntervalJSON(t *testing.T) {
	// Finite intervals round-trip exactly.
	iv := Interval{Mean: 1.5, Lo: 1, Hi: 2}
	blob, err := json.Marshal(iv)
	if err != nil {
		t.Fatal(err)
	}
	var back Interval
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != iv {
		t.Errorf("finite round trip: %+v != %+v", back, iv)
	}

	// Unbounded ends marshal (as null) and round-trip to infinities.
	iv = Interval{Mean: 3, Lo: math.Inf(-1), Hi: math.Inf(1)}
	blob, err = json.Marshal(iv)
	if err != nil {
		t.Fatalf("unbounded interval failed to marshal: %v", err)
	}
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mean != 3 || !math.IsInf(back.Lo, -1) || !math.IsInf(back.Hi, 1) {
		t.Errorf("unbounded round trip: %+v", back)
	}
}
