package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rrmpcm/internal/server"
)

// AgentOptions configures a worker's cluster agent.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// ID is this worker's stable identity on the ring.
	ID string
	// Advertise is the base URL the coordinator should proxy jobs to.
	Advertise string
	// Interval paces heartbeats; <= 0 means 1s. It must be comfortably
	// below the coordinator's heartbeat TTL.
	Interval time.Duration
	// Logf, if non-nil, receives agent lifecycle messages.
	Logf func(format string, args ...any)
}

// Agent is the worker side of the cluster control plane: it registers
// the worker with the coordinator, heartbeats its load (queue depth,
// sims executed, readiness) and deregisters on Close so the
// coordinator stops routing before the worker starts draining.
type Agent struct {
	opt    AgentOptions
	srv    *server.Server
	client *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartAgent registers srv with the coordinator and starts the
// heartbeat loop. Registration is retried inside the loop, so starting
// before the coordinator is up is fine — the worker becomes routable
// with the first heartbeat that lands.
func StartAgent(srv *server.Server, opt AgentOptions) (*Agent, error) {
	if opt.Coordinator == "" || opt.ID == "" || opt.Advertise == "" {
		return nil, fmt.Errorf("cluster: agent needs coordinator, id and advertise address")
	}
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	a := &Agent{
		opt:    opt,
		srv:    srv,
		client: &http.Client{Timeout: 5 * time.Second},
		stop:   make(chan struct{}),
	}
	if err := a.post("/api/v1/cluster/join", JoinRequest{ID: opt.ID, Addr: opt.Advertise}); err != nil {
		// Not fatal: heartbeats double as registration.
		opt.Logf("cluster: join deferred (%v); will register via heartbeat", err)
	} else {
		opt.Logf("cluster: joined %s as %s (%s)", opt.Coordinator, opt.ID, opt.Advertise)
	}
	a.wg.Add(1)
	go a.heartbeatLoop()
	return a, nil
}

// Close deregisters from the coordinator and stops heartbeating. The
// ordering is the graceful-drain handshake: readiness drops first (load
// balancers), then the coordinator forgets the worker (ring), and only
// then should the caller drain the server itself.
func (a *Agent) Close(ctx context.Context) error {
	a.stopOnce.Do(func() { close(a.stop) })
	a.srv.SetReady(false)
	err := a.post("/api/v1/cluster/leave", LeaveRequest{ID: a.opt.ID})
	a.wg.Wait()
	if err != nil {
		return fmt.Errorf("cluster: deregistering %s: %w", a.opt.ID, err)
	}
	a.opt.Logf("cluster: left %s", a.opt.Coordinator)
	return ctx.Err()
}

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.opt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			hb := HeartbeatRequest{
				ID:           a.opt.ID,
				Addr:         a.opt.Advertise,
				QueueDepth:   a.srv.QueueDepth(),
				SimsExecuted: a.srv.SimsExecuted(),
				Draining:     !a.srv.Ready(),
			}
			if err := a.post("/api/v1/cluster/heartbeat", hb); err != nil {
				a.opt.Logf("cluster: heartbeat: %v", err)
			}
		}
	}
}

func (a *Agent) post(path string, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := a.client.Post(a.opt.Coordinator+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}
