package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761+17)
	}
	return keys
}

// TestRingOwnerDeterministic: ownership is a pure function of the
// member set — two rings built in different orders agree on every key.
func TestRingOwnerDeterministic(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for _, id := range []string{"w0", "w1", "w2", "w3"} {
		a.Add(id)
	}
	for _, id := range []string{"w3", "w1", "w0", "w2"} {
		b.Add(id)
	}
	for _, key := range ringKeys(500) {
		oa, ok := a.Owner(key)
		ob, _ := b.Owner(key)
		if !ok || oa != ob {
			t.Fatalf("key %s: owners diverge (%q vs %q)", key[:8], oa, ob)
		}
	}
}

// TestRingBalance: with virtual nodes, four workers each own a
// non-trivial share of the keyspace.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	workers := []string{"w0", "w1", "w2", "w3"}
	for _, id := range workers {
		r.Add(id)
	}
	counts := map[string]int{}
	keys := ringKeys(2000)
	for _, key := range keys {
		owner, _ := r.Owner(key)
		counts[owner]++
	}
	for _, id := range workers {
		if counts[id] < len(keys)/20 {
			t.Errorf("worker %s owns %d/%d keys — ring badly unbalanced (%v)",
				id, counts[id], len(keys), counts)
		}
	}
}

// TestRingMinimalRemap: removing one worker remaps only the keys that
// worker owned; every other key keeps its owner. This is the property
// that keeps live-duplicate dedup local across membership churn.
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(0)
	for _, id := range []string{"w0", "w1", "w2", "w3"} {
		r.Add(id)
	}
	keys := ringKeys(2000)
	before := map[string]string{}
	for _, key := range keys {
		before[key], _ = r.Owner(key)
	}
	r.Remove("w2")
	for _, key := range keys {
		after, ok := r.Owner(key)
		if !ok {
			t.Fatal("ring emptied by removing one worker")
		}
		if before[key] != "w2" && after != before[key] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key[:8], before[key], after)
		}
		if before[key] == "w2" && after == "w2" {
			t.Fatalf("key %s still owned by removed worker", key[:8])
		}
	}
}

// TestRingSequence: the failover order starts at the owner and visits
// every worker exactly once.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	workers := []string{"w0", "w1", "w2", "w3", "w4"}
	for _, id := range workers {
		r.Add(id)
	}
	for _, key := range ringKeys(100) {
		seq := r.Sequence(key)
		if len(seq) != len(workers) {
			t.Fatalf("key %s: sequence %v misses workers", key[:8], seq)
		}
		owner, _ := r.Owner(key)
		if seq[0] != owner {
			t.Fatalf("key %s: sequence starts at %s, owner is %s", key[:8], seq[0], owner)
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("key %s: %s appears twice in %v", key[:8], id, seq)
			}
			seen[id] = true
		}
	}
}

// TestRingEmptyAndRejoin: empty rings refuse ownership; a re-added
// worker reclaims exactly its old keys (vnode hashes are stable).
func TestRingEmptyAndRejoin(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("deadbeef"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if seq := r.Sequence("deadbeef"); seq != nil {
		t.Fatalf("empty ring produced sequence %v", seq)
	}
	for _, id := range []string{"w0", "w1", "w2"} {
		r.Add(id)
	}
	keys := ringKeys(500)
	before := map[string]string{}
	for _, key := range keys {
		before[key], _ = r.Owner(key)
	}
	r.Remove("w1")
	r.Add("w1")
	for _, key := range keys {
		if after, _ := r.Owner(key); after != before[key] {
			t.Fatalf("key %s: owner %s != %s after leave/rejoin", key[:8], after, before[key])
		}
	}
}
