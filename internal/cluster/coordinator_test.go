package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rrmpcm/internal/cluster/artifact"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/server"
	"rrmpcm/internal/sim"
)

// ---- harness ----

// fakeMetrics is the deterministic fake simulation result: a pure
// function of the config, so a rerouted re-run reproduces the original
// bytes exactly.
func fakeMetrics(cfg sim.Config) sim.Metrics {
	return sim.Metrics{
		Scheme: cfg.Scheme.Name(), Workload: cfg.Workload.Name,
		IPC: float64(cfg.Seed), Instructions: cfg.Seed,
	}
}

// simCounter tracks completed (not merely launched) simulations per
// seed — the zero-duplicate proof: no seed may complete twice anywhere
// in the fleet, even across a worker loss.
type simCounter struct {
	mu        sync.Mutex
	completed map[uint64]int
}

func newSimCounter() *simCounter { return &simCounter{completed: map[uint64]int{}} }

func (c *simCounter) sim(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
	c.mu.Lock()
	c.completed[cfg.Seed]++
	c.mu.Unlock()
	return fakeMetrics(cfg), nil
}

// gated returns a SimFunc that blocks until release closes (or the run
// is cancelled, which does not count as completed).
func (c *simCounter) gated(release <-chan struct{}) engine.SimFunc {
	return func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
		select {
		case <-release:
			return c.sim(ctx, cfg)
		case <-ctx.Done():
			return sim.Metrics{}, ctx.Err()
		}
	}
}

func (c *simCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.completed {
		n += v
	}
	return n
}

func (c *simCounter) maxPerSeed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := 0
	for _, v := range c.completed {
		if v > m {
			m = v
		}
	}
	return m
}

type testWorker struct {
	id  string
	srv *server.Server
	ts  *httptest.Server
}

// startWorker builds a worker server over the shared artifact store
// with an injected simulation, fronted by httptest.
func startWorker(t *testing.T, id string, store artifact.Store, simFn engine.SimFunc) *testWorker {
	t.Helper()
	return startWorkerOpt(t, id, server.Options{
		Workers: 2, QueueSize: 64,
		Cache: artifact.RunCache{S: store},
		Sim:   simFn,
	})
}

// startWorkerOpt is startWorker with full control over server.Options
// (the load harness raises queue and worker counts).
func startWorkerOpt(t *testing.T, id string, opt server.Options) *testWorker {
	t.Helper()
	srv, err := server.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	w := &testWorker{id: id, srv: srv, ts: ts}
	t.Cleanup(func() { w.kill() })
	return w
}

// kill simulates losing the worker mid-flight: its address stops
// answering and its in-flight simulations abort through their context
// (so they never complete, never store, and never count). Idempotent.
func (w *testWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = w.srv.Shutdown(ctx)
}

// startCoordinator builds a coordinator with manual reconciliation
// (tests drive Reconcile explicitly for deterministic failover timing).
func startCoordinator(t *testing.T, opt CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opt.HeartbeatTTL == 0 {
		opt.HeartbeatTTL = time.Hour
	}
	if opt.ReconcileInterval == 0 {
		opt.ReconcileInterval = time.Hour
	}
	coord := NewCoordinator(opt)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		cts.Close()
		coord.Close()
	})
	return coord, cts
}

func joinWorker(t *testing.T, cts *httptest.Server, w *testWorker) {
	t.Helper()
	blob, _ := json.Marshal(JoinRequest{ID: w.id, Addr: w.ts.URL})
	resp, err := http.Post(cts.URL+"/api/v1/cluster/join", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: HTTP %d", w.id, resp.StatusCode)
	}
}

func clusterBody(seed uint64) string {
	return fmt.Sprintf(`{"scheme":"static-7","workload":"GemsFDTD","quick":true,"seed":%d}`, seed)
}

// postCluster submits through the coordinator and reports which worker
// answered (the X-Rrm-Worker stamp).
func postCluster(t *testing.T, base, body string) (int, server.SubmitResponse, string) {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	var sr server.SubmitResponse
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(blob, &sr); err != nil {
			t.Fatalf("decoding %q: %v", blob, err)
		}
	}
	return resp.StatusCode, sr, resp.Header.Get(workerHeader)
}

// waitClusterDone polls a job through the coordinator until terminal.
func waitClusterDone(t *testing.T, coord *Coordinator, base, id string) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && decErr == nil &&
			(st.State == "done" || st.State == "failed") {
			return st
		}
		coord.Reconcile()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish through the coordinator", id)
	return server.JobStatus{}
}

func clusterResult(t *testing.T, base, id string) (int, server.JobResult) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr server.JobResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, jr
}

// ---- tests ----

// TestClusterRoutesAndDedups: submissions spread across the fleet by
// config hash, identical submissions dedup to one execution (live and
// cached), and results proxied back match the deterministic sim.
func TestClusterRoutesAndDedups(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	workers := []*testWorker{
		startWorker(t, "w0", store, counter.sim),
		startWorker(t, "w1", store, counter.sim),
		startWorker(t, "w2", store, counter.sim),
	}
	coord, cts := startCoordinator(t, CoordinatorOptions{Artifacts: store})
	for _, w := range workers {
		joinWorker(t, cts, w)
	}
	if coord.Workers() != 3 {
		t.Fatalf("routable workers = %d, want 3", coord.Workers())
	}

	const n = 24
	assigned := map[uint64]string{}
	ids := map[uint64]string{}
	for seed := uint64(1); seed <= n; seed++ {
		code, sr, worker := postCluster(t, cts.URL, clusterBody(seed))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("seed %d: submit HTTP %d", seed, code)
		}
		if worker == "" {
			t.Fatalf("seed %d: no %s header on proxied response", seed, workerHeader)
		}
		assigned[seed] = worker
		ids[seed] = sr.ID
	}
	byWorker := map[string]int{}
	for _, w := range assigned {
		byWorker[w]++
	}
	if len(byWorker) < 2 {
		t.Errorf("all %d jobs routed to one worker: %v", n, byWorker)
	}

	for seed := uint64(1); seed <= n; seed++ {
		if st := waitClusterDone(t, coord, cts.URL, ids[seed]); st.State != "done" {
			t.Fatalf("seed %d: state %q", seed, st.State)
		}
		code, jr := clusterResult(t, cts.URL, ids[seed])
		if code != http.StatusOK || jr.Metrics.IPC != float64(seed) || jr.Metrics.Instructions != seed {
			t.Fatalf("seed %d: result HTTP %d metrics %+v", seed, code, jr.Metrics)
		}
	}
	if counter.total() != n {
		t.Fatalf("%d sims completed for %d unique configs", counter.total(), n)
	}

	// Identical resubmissions: same identity, same worker, no new sims.
	for seed := uint64(1); seed <= n; seed++ {
		code, sr, worker := postCluster(t, cts.URL, clusterBody(seed))
		if code != http.StatusOK {
			t.Fatalf("seed %d: resubmit HTTP %d, want 200 (idempotency hit)", seed, code)
		}
		if sr.Created {
			t.Fatalf("seed %d: resubmission created a new job", seed)
		}
		if sr.ID != ids[seed] {
			t.Fatalf("seed %d: resubmission id %s != %s", seed, sr.ID, ids[seed])
		}
		if worker != assigned[seed] {
			t.Fatalf("seed %d: resubmission routed to %s, original to %s", seed, worker, assigned[seed])
		}
	}
	if counter.total() != n || counter.maxPerSeed() != 1 {
		t.Fatalf("resubmission caused duplicate sims: total %d, max per key %d",
			counter.total(), counter.maxPerSeed())
	}

	// Engine counters agree: the fleet launched exactly n simulations.
	var launched uint64
	for _, w := range workers {
		launched += w.srv.SimsExecuted()
	}
	if launched != n {
		t.Fatalf("fleet launched %d sims, want %d", launched, n)
	}
}

// TestClusterLiveDuplicateSticksToWorker: a duplicate of an in-flight
// job routes to the worker already running it (registry dedup), even
// though ring churn could have moved the key's owner.
func TestClusterLiveDuplicateSticksToWorker(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	release := make(chan struct{})
	w0 := startWorker(t, "w0", store, counter.gated(release))
	w1 := startWorker(t, "w1", store, counter.gated(release))
	coord, cts := startCoordinator(t, CoordinatorOptions{Artifacts: store})
	joinWorker(t, cts, w0)
	joinWorker(t, cts, w1)

	_, first, workerA := postCluster(t, cts.URL, clusterBody(7))
	// Membership churn: add a third worker so the ring owner may move.
	w2 := startWorker(t, "w2", store, counter.gated(release))
	joinWorker(t, cts, w2)
	_, second, workerB := postCluster(t, cts.URL, clusterBody(7))
	if workerB != workerA {
		t.Fatalf("live duplicate routed to %s, original in flight on %s", workerB, workerA)
	}
	if second.Created || second.ID != first.ID {
		t.Fatalf("live duplicate not deduped: created=%v id=%s/%s", second.Created, second.ID, first.ID)
	}

	close(release)
	waitClusterDone(t, coord, cts.URL, first.ID)
	if counter.total() != 1 {
		t.Fatalf("%d sims completed for one config", counter.total())
	}
}

// TestClusterWorkerLossReroutes: kill a worker holding in-flight jobs;
// reconciliation re-routes its jobs to survivors, every job still
// finishes with the right bytes, and no config simulates twice.
func TestClusterWorkerLossReroutes(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	release := make(chan struct{})
	w0 := startWorker(t, "w0", store, counter.gated(release))
	w1 := startWorker(t, "w1", store, counter.gated(release))
	coord, cts := startCoordinator(t, CoordinatorOptions{Artifacts: store})
	joinWorker(t, cts, w0)
	joinWorker(t, cts, w1)

	const n = 10
	ids := map[uint64]string{}
	killed := ""
	byWorker := map[string][]uint64{}
	for seed := uint64(1); seed <= n; seed++ {
		code, sr, worker := postCluster(t, cts.URL, clusterBody(seed))
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: submit HTTP %d", seed, code)
		}
		ids[seed] = sr.ID
		byWorker[worker] = append(byWorker[worker], seed)
	}
	if len(byWorker["w0"]) == 0 || len(byWorker["w1"]) == 0 {
		t.Fatalf("need jobs on both workers to test loss, got %v", byWorker)
	}
	killed = "w0"

	// Lose w0 while everything is in flight: its sims abort through
	// their context (they never complete), its address goes dark.
	w0.kill()
	close(release)

	// Drive reconciliation until the orphans are rerouted and retired.
	deadline := time.Now().Add(15 * time.Second)
	for coord.PendingJobs() > 0 && time.Now().Before(deadline) {
		coord.Reconcile()
		time.Sleep(10 * time.Millisecond)
	}
	if coord.PendingJobs() != 0 {
		t.Fatalf("%d jobs still pending after worker loss", coord.PendingJobs())
	}
	if coord.Workers() != 1 {
		t.Fatalf("routable workers = %d after killing %s, want 1", coord.Workers(), killed)
	}

	for seed := uint64(1); seed <= n; seed++ {
		code, jr := clusterResult(t, cts.URL, ids[seed])
		if code != http.StatusOK || jr.Metrics.IPC != float64(seed) || jr.Metrics.Instructions != seed {
			t.Fatalf("seed %d: post-failover result HTTP %d metrics %+v", seed, code, jr.Metrics)
		}
	}
	if counter.maxPerSeed() != 1 {
		t.Fatalf("a config completed %d times after failover, want 1", counter.maxPerSeed())
	}
	if counter.total() != n {
		t.Fatalf("%d sims completed for %d configs after failover", counter.total(), n)
	}
}

// TestClusterAgentDrain: agents register workers via heartbeat, and
// Agent.Close performs the graceful-drain handshake — the worker goes
// unready, leaves the ring, and new work routes only to survivors.
func TestClusterAgentDrain(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	w0 := startWorker(t, "w0", store, counter.sim)
	w1 := startWorker(t, "w1", store, counter.sim)
	coord, cts := startCoordinator(t, CoordinatorOptions{})

	a0, err := StartAgent(w0.srv, AgentOptions{
		Coordinator: cts.URL, ID: w0.id, Advertise: w0.ts.URL, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := StartAgent(w1.srv, AgentOptions{
		Coordinator: cts.URL, ID: w1.id, Advertise: w1.ts.URL, Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = a0.Close(ctx)
		_ = a1.Close(ctx)
	})

	deadline := time.Now().Add(10 * time.Second)
	for coord.Workers() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if coord.Workers() != 2 {
		t.Fatalf("agents registered %d workers, want 2", coord.Workers())
	}

	// Drain w0: it must go unready and off the ring.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a0.Close(ctx); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("agent close: %v", err)
	}
	if w0.srv.Ready() {
		t.Error("drained worker still Ready()")
	}
	for coord.Workers() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if coord.Workers() != 1 {
		t.Fatalf("routable workers = %d after drain, want 1", coord.Workers())
	}

	for seed := uint64(100); seed < 110; seed++ {
		code, _, worker := postCluster(t, cts.URL, clusterBody(seed))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("seed %d: submit HTTP %d", seed, code)
		}
		if worker != "w1" {
			t.Fatalf("seed %d routed to %s after w0 drained", seed, worker)
		}
	}

	// Cluster metrics expose the fleet view.
	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		"rrmserve_cluster_workers 1",
		`rrmserve_cluster_worker_queue_depth{worker="w1"}`,
		"rrmserve_cluster_heartbeats_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cluster /metrics missing %q", want)
		}
	}
}

// TestClusterHeartbeatTTLExpiry: a worker that stops heartbeating is
// expired by the reconcile loop and leaves the ring.
func TestClusterHeartbeatTTLExpiry(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	w0 := startWorker(t, "w0", store, counter.sim)
	coord, cts := startCoordinator(t, CoordinatorOptions{HeartbeatTTL: 50 * time.Millisecond})
	joinWorker(t, cts, w0)
	if coord.Workers() != 1 {
		t.Fatalf("workers = %d after join", coord.Workers())
	}
	time.Sleep(80 * time.Millisecond)
	coord.Reconcile()
	if coord.Workers() != 0 {
		t.Fatalf("worker survived %v without heartbeats", 80*time.Millisecond)
	}
}

// TestClusterResultOutlivesWorkers: finished results stay readable
// from the coordinator via the shared artifact store after every
// worker is gone.
func TestClusterResultOutlivesWorkers(t *testing.T) {
	store := artifact.NewMem()
	counter := newSimCounter()
	w0 := startWorker(t, "w0", store, counter.sim)
	coord, cts := startCoordinator(t, CoordinatorOptions{Artifacts: store})
	joinWorker(t, cts, w0)

	code, sr, _ := postCluster(t, cts.URL, clusterBody(42))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit HTTP %d", code)
	}
	waitClusterDone(t, coord, cts.URL, sr.ID)

	w0.kill()
	deadline := time.Now().Add(10 * time.Second)
	for coord.Workers() > 0 && time.Now().Before(deadline) {
		coord.Reconcile()
		time.Sleep(5 * time.Millisecond)
	}

	code, jr := clusterResult(t, cts.URL, sr.ID)
	if code != http.StatusOK || !jr.Cached || jr.Metrics.IPC != 42 {
		t.Fatalf("artifact-store result: HTTP %d cached=%v metrics %+v", code, jr.Cached, jr.Metrics)
	}
	resp, err := http.Get(cts.URL + "/api/v1/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st server.JobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil || st.State != "done" || !st.Cached {
		t.Fatalf("artifact-store status: HTTP %d state %q cached=%v", resp.StatusCode, st.State, st.Cached)
	}
}

// TestClusterNoWorkers: an empty ring refuses submissions with 503 and
// a Retry-After hint rather than hanging or erroring opaquely.
func TestClusterNoWorkers(t *testing.T) {
	_, cts := startCoordinator(t, CoordinatorOptions{})
	resp, err := http.Post(cts.URL+"/api/v1/jobs", "application/json", strings.NewReader(clusterBody(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on empty cluster: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no Retry-After hint on empty-cluster 503")
	}
}
