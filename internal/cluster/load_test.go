package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rrmpcm/internal/cluster/artifact"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/server"
	"rrmpcm/internal/sim"
)

// loadN returns the submission count for the load harness. The in-tree
// default keeps `go test ./...` fast; scripts/cluster_load.sh sets
// RRM_CLUSTER_LOAD_N=100000 for the full acceptance run.
func loadN(t *testing.T) int {
	if s := os.Getenv("RRM_CLUSTER_LOAD_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("RRM_CLUSTER_LOAD_N=%q is not a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 300
	}
	return 2000
}

func loadP99Gate(t *testing.T) time.Duration {
	if s := os.Getenv("RRM_CLUSTER_LOAD_P99_MS"); s != "" {
		ms, err := strconv.Atoi(s)
		if err != nil || ms <= 0 {
			t.Fatalf("RRM_CLUSTER_LOAD_P99_MS=%q is not a positive integer", s)
		}
		return time.Duration(ms) * time.Millisecond
	}
	return 500 * time.Millisecond
}

// TestClusterLoadHarness is the acceptance harness for the sweep
// fabric: N idempotent submissions pushed through a 4-worker cluster
// with one worker killed mid-run, gated on
//
//   - completion: every submission reaches done with correct metrics,
//   - zero duplicates: fleet-wide, no config completes its simulation
//     more than once (and engine launch counters corroborate),
//   - latency: p99 submit round trip under the gate,
//   - fidelity: result metrics byte-identical to a single-process run.
func TestClusterLoadHarness(t *testing.T) {
	n := loadN(t)
	gate := loadP99Gate(t)

	store := artifact.NewMem()
	counter := newSimCounter()
	// Full submissions run the instant counted fake; the one sampled
	// submission at the end runs the real interval-sampling executor, so
	// the harness also proves sampled results survive the fabric intact.
	realSampledSim := func(counted engine.SimFunc) engine.SimFunc {
		return func(ctx context.Context, cfg sim.Config) (sim.Metrics, error) {
			if cfg.Sampling != nil {
				return engine.RunSim(ctx, cfg)
			}
			return counted(ctx, cfg)
		}
	}
	workers := make([]*testWorker, 4)
	for i := range workers {
		workers[i] = startWorkerOpt(t, fmt.Sprintf("w%d", i), server.Options{
			Workers: 4, QueueSize: 256,
			Cache: artifact.RunCache{S: store},
			Sim:   realSampledSim(counter.sim),
		})
	}
	coord, cts := startCoordinator(t, CoordinatorOptions{Artifacts: store})
	for _, w := range workers {
		joinWorker(t, cts, w)
	}

	// Submit N unique configs from 16 concurrent clients, killing one
	// worker once half the load is in. 429 backpressure is retried (the
	// submissions are idempotent, retrying is always safe); latency is
	// the full submit round trip including those retries.
	const clients = 16
	latencies := make([]time.Duration, n)
	ids := make([]string, n)
	var submitted atomic.Int64
	var killOnce sync.Once
	killAt := int64(n / 2)
	seeds := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 30 * time.Second}
	var failed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range seeds {
				begin := time.Now()
				deadline := begin.Add(30 * time.Second)
				for {
					resp, err := client.Post(cts.URL+"/api/v1/jobs", "application/json",
						strings.NewReader(clusterBody(uint64(i+1))))
					if err != nil {
						t.Errorf("seed %d: %v", i+1, err)
						failed.Add(1)
						break
					}
					var sr server.SubmitResponse
					decErr := json.NewDecoder(resp.Body).Decode(&sr)
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
						if decErr != nil {
							t.Errorf("seed %d: decoding submit response: %v", i+1, decErr)
							failed.Add(1)
							break
						}
						latencies[i] = time.Since(begin)
						ids[i] = sr.ID
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests &&
						resp.StatusCode != http.StatusServiceUnavailable {
						t.Errorf("seed %d: submit HTTP %d", i+1, resp.StatusCode)
						failed.Add(1)
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("seed %d: still rejected (HTTP %d) after 30s", i+1, resp.StatusCode)
						failed.Add(1)
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if submitted.Add(1) == killAt {
					killOnce.Do(func() {
						t.Logf("killing worker %s after %d submissions", workers[3].id, killAt)
						workers[3].kill()
					})
				}
			}
		}()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		seeds <- i
	}
	close(seeds)
	wg.Wait()
	if failed.Load() > 0 {
		t.Fatalf("%d/%d submissions failed outright", failed.Load(), n)
	}
	t.Logf("submitted %d jobs in %s (%0.f/s)", n, time.Since(start).Round(time.Millisecond),
		float64(n)/time.Since(start).Seconds())

	// Drive reconciliation until the orphaned jobs from the killed
	// worker are rerouted and every tracked job is retired.
	deadline := time.Now().Add(5 * time.Minute)
	for coord.PendingJobs() > 0 && time.Now().Before(deadline) {
		coord.Reconcile()
		if coord.PendingJobs() > 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if p := coord.PendingJobs(); p != 0 {
		t.Fatalf("%d jobs still pending after drain deadline", p)
	}

	// Zero duplicates, fleet-wide: each config's simulation completed
	// exactly once, no matter which workers it visited.
	if counter.total() != n || counter.maxPerSeed() != 1 {
		t.Fatalf("duplicate simulations: %d completions for %d configs (max per config %d)",
			counter.total(), n, counter.maxPerSeed())
	}
	// Engine launch counters corroborate: the only launches beyond one
	// per config are the handful the killed worker aborted mid-flight
	// (they never completed, never stored).
	var launched uint64
	for _, w := range workers {
		launched += w.srv.SimsExecuted()
	}
	if launched < uint64(n) || launched > uint64(n)+4 {
		t.Fatalf("fleet launched %d sims for %d configs (want n..n+4)", launched, n)
	}

	// p99 submit latency.
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50, p99 := sorted[n/2], sorted[n*99/100]
	t.Logf("submit latency p50 %s p99 %s (gate %s)", p50, p99, gate)
	if p99 > gate {
		t.Fatalf("p99 submit latency %s exceeds gate %s", p99, gate)
	}

	// Every job completed with the right result, and a sample of the
	// metrics payloads is byte-identical to a single-process run of the
	// same configs.
	sample := n / 40
	if sample < 50 {
		sample = 50
	}
	step := n / sample
	if step == 0 {
		step = 1
	}
	soloCounter := newSimCounter()
	solo := startWorkerOpt(t, "solo", server.Options{
		Workers: 4, QueueSize: 256,
		Cache: artifact.RunCache{S: artifact.NewMem()},
		Sim:   realSampledSim(soloCounter.sim),
	})
	for i := 0; i < n; i += step {
		seed := uint64(i + 1)
		code, jr := clusterResult(t, cts.URL, ids[i])
		if code != http.StatusOK || jr.Metrics.Instructions != seed {
			t.Fatalf("seed %d: cluster result HTTP %d metrics %+v", seed, code, jr.Metrics)
		}
		scode, ssr, _ := postCluster(t, solo.ts.URL, clusterBody(seed))
		if scode != http.StatusAccepted && scode != http.StatusOK {
			t.Fatalf("seed %d: single-process submit HTTP %d", seed, scode)
		}
		waitClusterDone(t, coord, solo.ts.URL, ssr.ID)
		_, sjr := clusterResult(t, solo.ts.URL, ssr.ID)
		cb, _ := json.Marshal(jr.Metrics)
		sb, _ := json.Marshal(sjr.Metrics)
		if !bytes.Equal(cb, sb) {
			t.Fatalf("seed %d: cluster metrics diverge from single-process run:\n%s\n%s", seed, cb, sb)
		}
	}

	// One real sampled job through the same (post-kill) fabric: it must
	// complete with a confidence-interval report, resubmission must be
	// served from the shared artifact store without a second simulation,
	// and the metrics must be byte-identical to a single-process sampled
	// run — window forks merge by index, so parallelism inside the worker
	// and the routing path outside it both leave no trace in the bytes.
	sampledBody := `{"scheme":"rrm","workload":"GemsFDTD","quick":true,"seed":1,
		"sampling":{"windows":4,"window":50000,"detail_warmup":25000}}`
	scode, ssub, _ := postCluster(t, cts.URL, sampledBody)
	if scode != http.StatusAccepted && scode != http.StatusOK {
		t.Fatalf("sampled submit HTTP %d", scode)
	}
	if st := waitClusterDone(t, coord, cts.URL, ssub.ID); st.State != "done" {
		t.Fatalf("sampled job state %q (%s)", st.State, st.Error)
	}
	_, sjr := clusterResult(t, cts.URL, ssub.ID)
	if sjr.Metrics.Sampling == nil || sjr.Metrics.Sampling.Windows != 4 {
		t.Fatalf("sampled cluster result has no sampling report: %+v", sjr.Metrics.Sampling)
	}
	var launchedBefore uint64
	for _, w := range workers[:3] {
		launchedBefore += w.srv.SimsExecuted()
	}
	rcode, rsub, _ := postCluster(t, cts.URL, sampledBody)
	if rcode != http.StatusAccepted && rcode != http.StatusOK {
		t.Fatalf("sampled resubmit HTTP %d", rcode)
	}
	waitClusterDone(t, coord, cts.URL, rsub.ID)
	var launchedAfter uint64
	for _, w := range workers[:3] {
		launchedAfter += w.srv.SimsExecuted()
	}
	if launchedAfter != launchedBefore {
		t.Fatalf("sampled resubmission re-simulated (launches %d -> %d)", launchedBefore, launchedAfter)
	}
	pcode, psub, _ := postCluster(t, solo.ts.URL, sampledBody)
	if pcode != http.StatusAccepted && pcode != http.StatusOK {
		t.Fatalf("solo sampled submit HTTP %d", pcode)
	}
	waitClusterDone(t, coord, solo.ts.URL, psub.ID)
	_, soloJR := clusterResult(t, solo.ts.URL, psub.ID)
	cb, _ := json.Marshal(sjr.Metrics)
	sb, _ := json.Marshal(soloJR.Metrics)
	if !bytes.Equal(cb, sb) {
		t.Fatalf("sampled cluster metrics diverge from single-process sampled run:\n%s\n%s", cb, sb)
	}
}
