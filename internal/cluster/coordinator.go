// Package cluster is the distributed sweep fabric: a thin coordinator
// tier that consistent-hashes submissions by config hash across
// registered rrmserve workers, and the machinery (registration,
// heartbeats, graceful drain, retry-on-worker-loss) that keeps a
// multi-machine sweep byte-identical to a local run.
//
// Why this composes safely out of the existing pieces:
//
//   - Jobs are idempotent and content-keyed. A job's identity is the
//     engine's SHA-256 config hash, so "the same run" means the same
//     thing to the coordinator, every worker, the run cache and the
//     CLI. Routing a key twice — even to two different workers after a
//     loss — can never produce divergent results, only redundant work.
//
//   - Redundant work is then eliminated structurally. Consistent
//     hashing sends all live duplicates of a key to one worker, whose
//     registry dedups them; the shared content-addressed artifact store
//     (internal/cluster/artifact) dedups across time and across
//     workers, because a rerouted or resubmitted job probes the store
//     before simulating. The engine's sims-executed counters exist to
//     prove the result: per key, the fleet-wide sum is one.
//
//   - Worker loss is detected by heartbeat age (and by failed
//     proxying), and recovery is just re-routing: the replacement
//     worker either finds the result in the shared store (the lost
//     worker finished it) or re-runs the deterministic simulation (it
//     did not). Either way the bytes that come back are the ones a
//     single-process run would have produced.
//
// The coordinator holds no simulation state and persists nothing; it
// can be restarted freely. Workers re-register via their next
// heartbeat (heartbeats upsert), and results outlive everything in the
// artifact store.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rrmpcm/internal/buildinfo"
	"rrmpcm/internal/cluster/artifact"
	"rrmpcm/internal/engine"
	"rrmpcm/internal/server"
	"rrmpcm/internal/sim"
)

// Wire types of the cluster control plane (all under /api/v1/cluster).

// JoinRequest registers a worker. Addr is the base URL the coordinator
// proxies jobs to ("http://10.0.0.7:8321").
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// HeartbeatRequest is a worker's periodic liveness report. It carries
// Addr so a heartbeat doubles as registration: a coordinator restart
// loses its worker table and rebuilds it within one heartbeat interval.
type HeartbeatRequest struct {
	ID           string `json:"id"`
	Addr         string `json:"addr"`
	QueueDepth   int    `json:"queue_depth"`
	SimsExecuted uint64 `json:"sims_executed"`
	Draining     bool   `json:"draining"`
}

// LeaveRequest deregisters a worker (graceful drain): new work stops
// routing to it, work already on it is left to finish.
type LeaveRequest struct {
	ID string `json:"id"`
}

// WorkerStatus is one worker's row in GET /api/v1/cluster/workers.
type WorkerStatus struct {
	ID                  string    `json:"id"`
	Addr                string    `json:"addr"`
	JoinedAt            time.Time `json:"joined_at"`
	LastSeen            time.Time `json:"last_seen"`
	HeartbeatAgeSeconds float64   `json:"heartbeat_age_seconds"`
	QueueDepth          int       `json:"queue_depth"`
	SimsExecuted        uint64    `json:"sims_executed"`
	Draining            bool      `json:"draining"`
	Routable            bool      `json:"routable"`
}

// workerHeader names the response header the coordinator stamps on
// proxied job traffic with the serving worker's ID.
const workerHeader = "X-Rrm-Worker"

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// HeartbeatTTL is how stale a worker's last heartbeat may be before
	// the worker is declared lost and its in-flight jobs re-route;
	// <= 0 means 5s. Workers heartbeat at a fraction of this (the agent
	// defaults to TTL-agnostic 1s).
	HeartbeatTTL time.Duration
	// ReconcileInterval paces the control loop that expires lost
	// workers, re-routes their jobs and retires finished ones;
	// <= 0 means 500ms.
	ReconcileInterval time.Duration
	// VNodes is the consistent-hash virtual-node count per worker;
	// <= 0 means 64.
	VNodes int
	// Artifacts, if non-nil, lets the coordinator answer status/result
	// reads for finished jobs straight from the shared store when no
	// live worker remembers them (worker restarts, old sweeps).
	Artifacts artifact.Store
	// ProxyTimeout bounds one proxied submit/status/result round trip;
	// <= 0 means 30s. Progress streams are exempt.
	ProxyTimeout time.Duration
}

// pendingJob is one submission the coordinator has routed but not yet
// seen finish. The original body is kept so the job can be replayed
// verbatim onto a replacement worker; replaying is safe because the
// worker's registry and the shared run cache both dedup by config hash.
type pendingJob struct {
	key       string
	body      []byte
	worker    string
	submitted time.Time
	reroutes  int
}

// Coordinator is the routing tier. Create with NewCoordinator, serve
// via Handler, stop with Close.
type Coordinator struct {
	opt    CoordinatorOptions
	met    *clusterMetrics
	mux    http.Handler
	proxy  *http.Client // bounded: submit/status/result round trips
	stream *http.Client // unbounded: event-stream proxying
	start  time.Time

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*workerEntry
	pending map[string]*pendingJob

	stop     chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup
}

type workerEntry struct {
	id           string
	addr         string
	joined       time.Time
	lastSeen     time.Time
	queueDepth   int
	simsExecuted uint64
	draining     bool
}

// NewCoordinator builds the coordinator and starts its reconcile loop.
func NewCoordinator(opt CoordinatorOptions) *Coordinator {
	if opt.HeartbeatTTL <= 0 {
		opt.HeartbeatTTL = 5 * time.Second
	}
	if opt.ReconcileInterval <= 0 {
		opt.ReconcileInterval = 500 * time.Millisecond
	}
	if opt.ProxyTimeout <= 0 {
		opt.ProxyTimeout = 30 * time.Second
	}
	c := &Coordinator{
		opt:     opt,
		met:     newClusterMetrics(),
		proxy:   &http.Client{Timeout: opt.ProxyTimeout},
		stream:  &http.Client{},
		start:   time.Now(),
		ring:    NewRing(opt.VNodes),
		workers: map[string]*workerEntry{},
		pending: map[string]*pendingJob{},
		stop:    make(chan struct{}),
	}
	c.mux = c.routes()
	c.loopWG.Add(1)
	go c.reconcileLoop()
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the reconcile loop. In-flight proxied requests finish on
// their own; workers keep running (the coordinator owns no jobs).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.loopWG.Wait()
}

func (c *Coordinator) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/cluster/join", c.handleJoin)
	mux.HandleFunc("POST /api/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /api/v1/cluster/leave", c.handleLeave)
	mux.HandleFunc("GET /api/v1/cluster/workers", c.handleWorkers)
	mux.HandleFunc("POST /api/v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", c.handleJobGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /livez", c.handleHealthz)
	return mux
}

// ---- membership ----

// upsertWorker registers or refreshes a worker. Heartbeats carry the
// full registration payload, so membership converges after coordinator
// restarts without any worker-side special casing.
func (c *Coordinator) upsertWorker(id, addr string, now time.Time) *workerEntry {
	w := c.workers[id]
	if w == nil {
		w = &workerEntry{id: id, addr: addr, joined: now}
		c.workers[id] = w
		c.met.joins.Add(1)
	}
	if addr != "" {
		w.addr = addr
	}
	w.lastSeen = now
	if !w.draining {
		c.ring.Add(id)
	}
	return w
}

// dropFromRing stops routing new work to id. lost=true additionally
// forgets the worker entirely (its address is unreachable), which is
// what flags its pending jobs for re-routing.
func (c *Coordinator) dropFromRing(id string, lost bool) {
	c.ring.Remove(id)
	w := c.workers[id]
	if w == nil {
		return
	}
	if lost {
		delete(c.workers, id)
		c.met.workersLost.Add(1)
	} else {
		w.draining = true
	}
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" || req.Addr == "" {
		writeError(w, http.StatusBadRequest, "join needs id and addr")
		return
	}
	c.mu.Lock()
	entry := c.upsertWorker(req.ID, req.Addr, time.Now())
	entry.draining = false
	c.ring.Add(req.ID)
	n := c.ring.Len()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "joined", "workers": n})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
		writeError(w, http.StatusBadRequest, "heartbeat needs id")
		return
	}
	c.mu.Lock()
	entry := c.upsertWorker(req.ID, req.Addr, time.Now())
	entry.queueDepth = req.QueueDepth
	entry.simsExecuted = req.SimsExecuted
	if req.Draining && !entry.draining {
		c.dropFromRing(req.ID, false)
	}
	c.mu.Unlock()
	c.met.heartbeats.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ID == "" {
		writeError(w, http.StatusBadRequest, "leave needs id")
		return
	}
	c.mu.Lock()
	c.dropFromRing(req.ID, false)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "draining"})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, e := range c.workers {
		out = append(out, WorkerStatus{
			ID: e.id, Addr: e.addr,
			JoinedAt: e.joined, LastSeen: e.lastSeen,
			HeartbeatAgeSeconds: now.Sub(e.lastSeen).Seconds(),
			QueueDepth:          e.queueDepth,
			SimsExecuted:        e.simsExecuted,
			Draining:            e.draining,
			Routable:            c.ring.Has(e.id),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"workers": out})
}

// ---- job routing ----

// handleSubmit resolves the submission to its config-hash identity,
// routes it to the key's ring owner, and walks the ring on worker loss.
// The worker's response (202 created, 200 dedup/cache hit, 429
// backpressure, 4xx validation) passes through unchanged, plus a header
// naming the worker that answered.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	var req server.SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	job, err := server.BuildJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if job.Uncacheable {
		writeError(w, http.StatusBadRequest, "custom-policy configs cannot be submitted over HTTP")
		return
	}
	c.met.submissions.Add(1)
	c.routeSubmit(w, job.Key, body, false)
}

// routeSubmit proxies one submission body to its worker. reroute marks
// replays of an already-tracked job after worker loss (counted
// separately, and allowed to re-route even while tracked).
func (c *Coordinator) routeSubmit(w http.ResponseWriter, key string, body []byte, reroute bool) {
	tried := map[string]bool{}
	for {
		id, addr, ok := c.pickWorker(key, reroute, tried)
		if !ok {
			c.met.noWorker.Add(1)
			if w != nil {
				w.Header().Set("Retry-After", "5")
				writeError(w, http.StatusServiceUnavailable, "no routable workers in the cluster")
			}
			return
		}
		tried[id] = true
		resp, err := c.proxy.Post(addr+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			// The worker's address does not answer: declare it lost and
			// walk to the next ring position.
			c.workerDown(id, true)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The worker is draining but never told us: stop routing to
			// it and retry elsewhere.
			resp.Body.Close()
			c.workerDown(id, false)
			continue
		}
		c.finishSubmit(w, resp, id, key, body, reroute)
		return
	}
}

// pickWorker chooses the worker for key, skipping workers this routing
// attempt already tried (guaranteeing the retry walk terminates). A
// tracked job sticks to its assigned worker — even while that worker
// drains, since drain finishes owned jobs and readiness does not close
// intake — so live duplicates keep deduping onto the one record that is
// actually running; reroutes and untracked keys go to the ring owner.
func (c *Coordinator) pickWorker(key string, reroute bool, tried map[string]bool) (id, addr string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !reroute {
		if p := c.pending[key]; p != nil && !tried[p.worker] {
			if e := c.workers[p.worker]; e != nil {
				return e.id, e.addr, true
			}
		}
	}
	for _, cand := range c.ring.Sequence(key) {
		if tried[cand] {
			continue
		}
		if e := c.workers[cand]; e != nil {
			return e.id, e.addr, true
		}
	}
	return "", "", false
}

// workerDown records a routing failure against a worker.
func (c *Coordinator) workerDown(id string, lost bool) {
	c.met.proxyErrors.Add(1)
	c.mu.Lock()
	c.dropFromRing(id, lost)
	c.mu.Unlock()
}

// finishSubmit relays the worker's submission response and updates the
// pending table: non-terminal jobs are tracked for reconciliation,
// finished ones (cache hits) and rejected ones (429, 4xx) are not.
func (c *Coordinator) finishSubmit(w http.ResponseWriter, resp *http.Response, workerID, key string, body []byte, reroute bool) {
	defer resp.Body.Close()
	relay, err := io.ReadAll(resp.Body)
	if err != nil {
		relay = []byte(`{"error":"worker response lost"}`)
	}

	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var sub server.SubmitResponse
		terminal := false
		if json.Unmarshal(relay, &sub) == nil {
			terminal = sub.State == engine.JobStateDone.String() || sub.State == engine.JobStateFailed.String()
		}
		c.mu.Lock()
		if terminal {
			delete(c.pending, key)
		} else if p := c.pending[key]; p != nil {
			p.worker = workerID
			if reroute {
				p.reroutes++
			}
		} else {
			c.pending[key] = &pendingJob{
				key: key, body: body, worker: workerID, submitted: time.Now(),
			}
		}
		c.mu.Unlock()
		if reroute {
			c.met.reroutes.Add(1)
		}
	} else if resp.StatusCode == http.StatusTooManyRequests {
		c.met.busy.Add(1)
	}

	if w == nil {
		return // reconcile-loop replay: no client waiting
	}
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		h.Set("Retry-After", ra)
	}
	h.Set(workerHeader, workerID)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(relay)
}

// handleJobGet proxies status and result reads to the job's worker,
// falling back to the shared artifact store for finished jobs no live
// worker remembers.
func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	wantResult := strings.HasSuffix(r.URL.Path, "/result")

	if id, addr, ok := c.assignment(key); ok {
		resp, err := c.proxy.Get(addr + r.URL.Path)
		if err != nil {
			c.workerDown(id, true)
		} else {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				relayResponse(w, resp, id)
				return
			}
		}
	}
	// No worker (or none that knows the job): finished runs are still
	// servable from the content-addressed store.
	if m, ok := c.artifactMetrics(key); ok {
		if wantResult {
			writeJSON(w, http.StatusOK, server.JobResult{ID: key, Cached: true, Metrics: m})
		} else {
			writeJSON(w, http.StatusOK, server.JobStatus{
				ID: key, Scheme: m.Scheme, Workload: m.Workload,
				State: engine.JobStateDone.String(), Cached: true,
			})
		}
		return
	}
	writeError(w, http.StatusNotFound, "unknown job "+key)
}

// handleEvents proxies a job's progress stream from its worker,
// flushing each chunk through so SSE/NDJSON stay live end to end.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	id, addr, ok := c.assignment(key)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+key)
		return
	}
	url := addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Accept", r.Header.Get("Accept"))
	resp, err := c.stream.Do(req)
	if err != nil {
		c.workerDown(id, true)
		writeError(w, http.StatusBadGateway, "worker unreachable: "+err.Error())
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	for _, name := range []string{"Content-Type", "Cache-Control", "Connection"} {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set(workerHeader, id)
	w.WriteHeader(resp.StatusCode)
	flusher, canFlush := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// assignment resolves a job key to the worker that should answer for
// it: its tracked assignment if pending, else the ring owner.
func (c *Coordinator) assignment(key string) (id, addr string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.pending[key]; p != nil {
		if e := c.workers[p.worker]; e != nil {
			return e.id, e.addr, true
		}
	}
	if owner, ok := c.ring.Owner(key); ok {
		if e := c.workers[owner]; e != nil {
			return e.id, e.addr, true
		}
	}
	return "", "", false
}

// artifactMetrics probes the shared store for a finished run.
func (c *Coordinator) artifactMetrics(key string) (sim.Metrics, bool) {
	if c.opt.Artifacts == nil || checkKey(key) != nil {
		return sim.Metrics{}, false
	}
	blob, hit, err := c.opt.Artifacts.Get(artifact.KindRun, key)
	if err != nil || !hit {
		return sim.Metrics{}, false
	}
	return engine.DecodeRunEntry(key, blob)
}

// relayResponse copies a proxied response to the client.
func relayResponse(w http.ResponseWriter, resp *http.Response, workerID string) {
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set(workerHeader, workerID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// ---- reconciliation ----

// reconcileLoop is the control loop: expire workers whose heartbeats
// stopped, re-route the jobs they were holding, and retire pending jobs
// that finished.
func (c *Coordinator) reconcileLoop() {
	defer c.loopWG.Done()
	ticker := time.NewTicker(c.opt.ReconcileInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.reconcile()
		}
	}
}

// reconcile runs one control-loop pass.
func (c *Coordinator) reconcile() {
	now := time.Now()

	// 1. Expire workers whose heartbeats went stale.
	c.mu.Lock()
	for id, e := range c.workers {
		if now.Sub(e.lastSeen) > c.opt.HeartbeatTTL {
			c.dropFromRing(id, true)
		}
	}
	// 2. Collect pending jobs: orphans (assigned worker gone) need
	// re-routing, the rest get a status poll.
	type probe struct {
		key, worker, addr string
		body              []byte
	}
	var orphans, polls []probe
	for key, p := range c.pending {
		if e := c.workers[p.worker]; e == nil {
			orphans = append(orphans, probe{key: key, body: p.body})
		} else {
			polls = append(polls, probe{key: key, worker: e.id, addr: e.addr})
		}
	}
	c.mu.Unlock()

	// 3. Replay orphans onto their new ring owners. The replacement
	// either finds the finished result in the shared store (instant
	// cache hit) or runs the deterministic simulation itself; both are
	// correct, and the per-key execution total stays at one whenever
	// the lost worker never completed the run.
	for _, o := range orphans {
		c.routeSubmit(nil, o.key, o.body, true)
	}

	// 4. Poll tracked jobs and retire the finished ones.
	for _, p := range polls {
		resp, err := c.proxy.Get(p.addr + "/api/v1/jobs/" + p.key)
		if err != nil {
			c.workerDown(p.worker, true) // next pass reroutes its jobs
			continue
		}
		var st server.JobStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound:
			// The worker restarted and lost its registry: replay (its
			// shared-store probe makes this free if the run finished).
			c.routeSubmit(nil, p.key, c.pendingBody(p.key), true)
		case resp.StatusCode == http.StatusOK && decErr == nil &&
			(st.State == engine.JobStateDone.String() || st.State == engine.JobStateFailed.String()):
			c.mu.Lock()
			delete(c.pending, p.key)
			c.mu.Unlock()
			if st.State == engine.JobStateDone.String() {
				c.met.completed.Add(1)
			} else {
				c.met.failed.Add(1)
			}
		}
	}
}

// pendingBody fetches a tracked job's replay body.
func (c *Coordinator) pendingBody(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.pending[key]; p != nil {
		return p.body
	}
	return nil
}

// Reconcile runs one reconciliation pass synchronously (tests and the
// smoke harness use it to force deterministic failover timing).
func (c *Coordinator) Reconcile() { c.reconcile() }

// PendingJobs reports how many routed jobs have not been seen finishing.
func (c *Coordinator) PendingJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Workers reports how many workers are currently routable.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Len()
}

// ---- probes and metrics ----

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	routable := c.ring.Len()
	known := len(c.workers)
	pending := len(c.pending)
	c.mu.Unlock()
	status := "ok"
	if routable == 0 {
		status = "no-workers"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"role":             "coordinator",
		"version":          buildinfo.Version(),
		"uptime_seconds":   now.Sub(c.start).Seconds(),
		"workers_routable": routable,
		"workers_known":    known,
		"jobs_pending":     pending,
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	rows := make([]WorkerStatus, 0, len(c.workers))
	for _, e := range c.workers {
		rows = append(rows, WorkerStatus{
			ID: e.id, HeartbeatAgeSeconds: now.Sub(e.lastSeen).Seconds(),
			QueueDepth: e.queueDepth, SimsExecuted: e.simsExecuted,
			Draining: e.draining, Routable: c.ring.Has(e.id),
		})
	}
	routable := c.ring.Len()
	pending := len(c.pending)
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.met.render(w, routable, pending, now.Sub(c.start).Seconds(), rows)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// checkKey guards artifact probes against non-hash path segments.
func checkKey(key string) error {
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("cluster: %q is not a config hash", key)
		}
	}
	if len(key) < 6 {
		return fmt.Errorf("cluster: %q is not a config hash", key)
	}
	return nil
}
