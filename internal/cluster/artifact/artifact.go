// Package artifact is the cluster's content-addressed shared store:
// immutable blobs keyed by the hash that identifies them — run-cache
// entries under their config hash, warm-start snapshots under their
// warm-prefix hash. Because a key names exactly one possible content
// (the simulator is deterministic and both hash spaces are versioned),
// writes are idempotent and last-writer-wins races between workers are
// harmless: every writer stores the same bytes. That property is what
// lets any worker serve any cached result and fork any warm prefix
// produced elsewhere.
//
// Store is the interface seam: Disk is the local/NFS implementation,
// Mem backs tests, and a remote backend (object store, blob service)
// only needs Get/Put/Stat over (kind, key) to slot in.
package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"rrmpcm/internal/snapshot"
)

// Kind partitions the key space by artifact type. Keys are only unique
// within a kind (a config hash and a warm hash could in principle
// collide as strings; they never collide as artifacts).
type Kind string

const (
	// KindRun is a finished run's metrics in the engine run-cache
	// format (JSON envelope + FNV-1a trailer), keyed by config hash.
	KindRun Kind = "runs"
	// KindSnapshot is a warm-start snapshot blob in the snapshot codec
	// (self-checksummed), keyed by warm-prefix hash.
	KindSnapshot Kind = "snapshots"
)

// ext returns the on-disk filename extension for a kind, matching the
// layouts engine.RunCache and engine.SnapshotCache use, so a standalone
// cache directory can be adopted as (or promoted to) a shared store.
func (k Kind) ext() string {
	if k == KindSnapshot {
		return ".snap"
	}
	return ".json"
}

// valid reports whether the kind is one the store serves.
func (k Kind) valid() bool { return k == KindRun || k == KindSnapshot }

// keyPattern constrains keys to hash-like names: artifacts are
// content-addressed, and a key that is not a hex digest is a bug (and a
// path-traversal hazard) rather than a cache miss.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{6,128}$`)

// Store is the shared artifact store seam. Implementations must be
// safe for concurrent use by many goroutines and (for shared-media
// implementations) many processes. Get reports a missing artifact as
// (ok=false, nil error); errors are reserved for real I/O failures.
// Put must be atomic: a reader never observes a torn blob.
type Store interface {
	Get(kind Kind, key string) ([]byte, bool, error)
	Put(kind Kind, key string, blob []byte) error
	// Stat counts the artifacts of one kind (metrics, tests, smoke
	// assertions like "exactly one run entry per unique config").
	Stat(kind Kind) (int, error)
}

func checkAddr(kind Kind, key string) error {
	if !kind.valid() {
		return fmt.Errorf("artifact: unknown kind %q", kind)
	}
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("artifact: key %q is not a content hash", key)
	}
	return nil
}

// Disk is the filesystem Store: one file per artifact under
// <root>/<kind>/, written atomically (temp + rename) so concurrent
// workers and killed runs never leave torn blobs. Snapshot blobs are
// integrity-checked on Get via their trailing FNV-1a checksum; run
// entries carry their own trailer, verified by the run-cache decoder.
type Disk struct {
	root string
}

// OpenDisk opens (creating if needed) a disk store rooted at root.
func OpenDisk(root string) (*Disk, error) {
	if root == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	for _, kind := range []Kind{KindRun, KindSnapshot} {
		if err := os.MkdirAll(filepath.Join(root, string(kind)), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: opening store: %w", err)
		}
	}
	return &Disk{root: root}, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

func (d *Disk) path(kind Kind, key string) string {
	return filepath.Join(d.root, string(kind), key+kind.ext())
}

// Get implements Store. A snapshot blob whose trailing checksum does
// not verify is reported as a miss: the caller re-warms rather than
// feeding a corrupt blob to the restore path.
func (d *Disk) Get(kind Kind, key string) ([]byte, bool, error) {
	if err := checkAddr(kind, key); err != nil {
		return nil, false, err
	}
	blob, err := os.ReadFile(d.path(kind, key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("artifact: reading %s/%s: %w", kind, key, err)
	}
	if kind == KindSnapshot && snapshot.VerifyTrailer(blob) != nil {
		return nil, false, nil
	}
	return blob, true, nil
}

// Put implements Store.
func (d *Disk) Put(kind Kind, key string, blob []byte) error {
	if err := checkAddr(kind, key); err != nil {
		return err
	}
	dir := filepath.Join(d.root, string(kind))
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: writing %s/%s: %w", kind, key, err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), d.path(kind, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: writing %s/%s: %w", kind, key, err)
	}
	return nil
}

// Stat implements Store.
func (d *Disk) Stat(kind Kind) (int, error) {
	if !kind.valid() {
		return 0, fmt.Errorf("artifact: unknown kind %q", kind)
	}
	matches, err := filepath.Glob(filepath.Join(d.root, string(kind), "*"+kind.ext()))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}

// Mem is the in-process Store (tests, single-process clusters).
type Mem struct {
	mu    sync.Mutex
	blobs map[Kind]map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blobs: map[Kind]map[string][]byte{
		KindRun: {}, KindSnapshot: {},
	}}
}

// Get implements Store.
func (m *Mem) Get(kind Kind, key string) ([]byte, bool, error) {
	if err := checkAddr(kind, key); err != nil {
		return nil, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.blobs[kind][key]
	return blob, ok, nil
}

// Put implements Store.
func (m *Mem) Put(kind Kind, key string, blob []byte) error {
	if err := checkAddr(kind, key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[kind][key] = append([]byte(nil), blob...)
	return nil
}

// Stat implements Store.
func (m *Mem) Stat(kind Kind) (int, error) {
	if !kind.valid() {
		return 0, fmt.Errorf("artifact: unknown kind %q", kind)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs[kind]), nil
}
