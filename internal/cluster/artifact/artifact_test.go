package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rrmpcm/internal/engine"
	"rrmpcm/internal/sim"
	"rrmpcm/internal/snapshot"
)

const (
	runKey  = "aa51a3b2c4d5e6f7"
	snapKey = "bb51a3b2c4d5e6f7"
)

// snapBlob builds a tiny but well-formed snapshot-codec blob.
func snapBlob(t *testing.T) []byte {
	t.Helper()
	w := snapshot.NewWriter(32)
	w.Header(0x52524d43, 1) // arbitrary magic for the test
	w.U64(424242)
	return w.Finish()
}

func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"disk": disk, "mem": NewMem()}
}

// TestStoreRoundTrip: Put then Get returns the exact blob, per kind,
// and Stat counts artifacts per kind without cross-talk.
func TestStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		blob := snapBlob(t)
		if err := s.Put(KindSnapshot, snapKey, blob); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Put(KindRun, runKey, []byte(`{"Format":3}`)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, ok, err := s.Get(KindSnapshot, snapKey)
		if err != nil || !ok || !bytes.Equal(got, blob) {
			t.Errorf("%s: snapshot round trip: ok %v err %v", name, ok, err)
		}
		if _, ok, _ := s.Get(KindRun, snapKey); ok {
			t.Errorf("%s: run kind served a snapshot key", name)
		}
		for kind, want := range map[Kind]int{KindRun: 1, KindSnapshot: 1} {
			if n, err := s.Stat(kind); err != nil || n != want {
				t.Errorf("%s: Stat(%s) = %d, %v; want %d", name, kind, n, err, want)
			}
		}
	}
}

// TestStoreRejectsNonHashKeys: the store is content-addressed; a key
// that is not a hash (or worse, a path) is an error, not a miss.
func TestStoreRejectsNonHashKeys(t *testing.T) {
	for name, s := range stores(t) {
		for _, key := range []string{"", "short", "../../etc/passwd", "UPPER0000", "has space0"} {
			if err := s.Put(KindRun, key, []byte("x")); err == nil {
				t.Errorf("%s: Put accepted key %q", name, key)
			}
			if _, _, err := s.Get(KindRun, key); err == nil {
				t.Errorf("%s: Get accepted key %q", name, key)
			}
		}
		if err := s.Put("tarballs", runKey, []byte("x")); err == nil {
			t.Errorf("%s: Put accepted unknown kind", name)
		}
	}
}

// TestDiskRejectsCorruptSnapshot: a bit-flipped snapshot blob fails its
// trailing checksum and reads as a miss, so a worker re-warms instead
// of restoring garbage.
func TestDiskRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob := snapBlob(t)
	if err := d.Put(KindSnapshot, snapKey, blob); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, string(KindSnapshot), snapKey+".snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get(KindSnapshot, snapKey); ok || err != nil {
		t.Errorf("corrupt snapshot: ok %v err %v, want silent miss", ok, err)
	}
}

// TestRunCacheAdapterMatchesLocal: the adapter's entries are
// byte-identical to a local engine.RunCache's, and either side can read
// the other's — a standalone cache directory is adoptable as a shared
// store and vice versa.
func TestRunCacheAdapterMatchesLocal(t *testing.T) {
	root := t.TempDir()
	disk, err := OpenDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	shared := RunCache{S: disk}
	local, err := engine.OpenRunCache(filepath.Join(root, string(KindRun)))
	if err != nil {
		t.Fatal(err)
	}

	m := sim.Metrics{Scheme: "RRM", Workload: "milc", IPC: 2.5, Instructions: 777}
	if err := shared.Store(runKey, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := local.Load(runKey)
	if err != nil || !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("local cache cannot read shared entry: ok %v err %v", ok, err)
	}

	const otherKey = "cc51a3b2c4d5e6f7"
	if err := local.Store(otherKey, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err = shared.Load(otherKey)
	if err != nil || !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("shared store cannot read local entry: ok %v err %v", ok, err)
	}

	wantBlob, err := engine.EncodeRunEntry(runKey, m)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(root, string(KindRun), runKey+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, wantBlob) {
		t.Error("shared entry bytes differ from the local run-cache encoding")
	}
}

// TestSnapshotAdapterImplementsEngineSeam: compile-time and behavioral
// check of the warm-start seam.
func TestSnapshotAdapterImplementsEngineSeam(t *testing.T) {
	var _ engine.SnapshotStore = SnapshotStore{}
	var _ engine.ResultCache = RunCache{}
	s := SnapshotStore{S: NewMem()}
	blob := snapBlob(t)
	if err := s.Store(snapKey, blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(snapKey)
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Errorf("snapshot adapter round trip: ok %v err %v", ok, err)
	}
	if _, ok, _ := s.Load("dd51a3b2c4d5e6f7"); ok {
		t.Error("absent snapshot served")
	}
}
