package artifact

import (
	"rrmpcm/internal/engine"
	"rrmpcm/internal/sim"
)

// RunCache adapts a Store into the engine's ResultCache seam, so a
// worker's engine reads and writes finished runs through the shared
// store instead of a private disk directory. Entries are byte-identical
// to a local engine.RunCache's (same envelope, same integrity trailer),
// which is what keeps cluster results indistinguishable from
// single-process ones.
type RunCache struct {
	S Store
}

// Load implements engine.ResultCache. Corrupt or torn entries decode as
// misses (the engine recomputes), exactly like the local run cache.
func (c RunCache) Load(key string) (sim.Metrics, bool, error) {
	blob, ok, err := c.S.Get(KindRun, key)
	if err != nil || !ok {
		return sim.Metrics{}, false, err
	}
	m, ok := engine.DecodeRunEntry(key, blob)
	return m, ok, nil
}

// Store implements engine.ResultCache.
func (c RunCache) Store(key string, m sim.Metrics) error {
	blob, err := engine.EncodeRunEntry(key, m)
	if err != nil {
		return err
	}
	return c.S.Put(KindRun, key, blob)
}

// SnapshotStore adapts a Store into the engine's warm-start
// SnapshotStore seam: warm snapshots produced by any worker become
// forkable prefixes for every other worker.
type SnapshotStore struct {
	S Store
}

// Load implements engine.SnapshotStore.
func (s SnapshotStore) Load(key string) ([]byte, bool, error) {
	return s.S.Get(KindSnapshot, key)
}

// Store implements engine.SnapshotStore.
func (s SnapshotStore) Store(key string, blob []byte) error {
	return s.S.Put(KindSnapshot, key, blob)
}
