package cluster

import (
	"fmt"
	"sort"

	"rrmpcm/internal/snapshot"
)

// Ring is a consistent-hash ring mapping job keys (config hashes) to
// worker IDs. Each worker contributes vnodes virtual points so load
// spreads evenly even with a handful of workers, and adding or removing
// one worker only remaps the keys that worker owned — every other
// submission keeps routing to the same place, which is what keeps the
// idempotency story local: one worker's registry dedups all live
// duplicates of a key.
//
// The ring is a value-semantics helper, not a synchronized structure;
// the coordinator guards it with its own mutex.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	ids    map[string]struct{}
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing returns an empty ring with the given virtual-node count per
// worker (<= 0 means 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, ids: map[string]struct{}{}}
}

// hashPoint hashes a ring-point or key label. FNV-1a matches the rest
// of the repo's integrity hashing, but its avalanche is too weak for
// the short, near-identical vnode labels ("w2#0", "w2#1", ...) — the
// points cluster and the ring unbalances — so the output goes through
// a splitmix64 finalizer. The ring only needs speed and spread, not
// collision resistance (keys are already SHA-256 hex).
func hashPoint(label string) uint64 {
	h := snapshot.Checksum([]byte(label))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a worker's virtual points. Re-adding is a no-op.
func (r *Ring) Add(id string) {
	if _, ok := r.ids[id]; ok {
		return
	}
	r.ids[id] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hashPoint(fmt.Sprintf("%s#%d", id, i)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
}

// Remove deletes a worker's virtual points. Removing an absent worker
// is a no-op.
func (r *Ring) Remove(id string) {
	if _, ok := r.ids[id]; !ok {
		return
	}
	delete(r.ids, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether id is on the ring.
func (r *Ring) Has(id string) bool {
	_, ok := r.ids[id]
	return ok
}

// Len reports the number of workers on the ring.
func (r *Ring) Len() int { return len(r.ids) }

// Members returns the worker IDs in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Owner returns the worker owning key: the first virtual point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.at(key)].id, true
}

// Sequence returns every worker in ring order starting at key's owner,
// each exactly once — the retry order when the owner is lost.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.ids))
	seen := make(map[string]struct{}, len(r.ids))
	for i, start := 0, r.at(key); i < len(r.points) && len(seen) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.id]; !dup {
			seen[p.id] = struct{}{}
			out = append(out, p.id)
		}
	}
	return out
}

// at returns the index of key's owning virtual point.
func (r *Ring) at(key string) int {
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
