package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// clusterMetrics aggregates the coordinator's counters for the
// Prometheus text exposition at /metrics. Per-worker gauges (queue
// depth, heartbeat age, sims executed) are rendered from the live
// worker table at scrape time rather than accumulated.
type clusterMetrics struct {
	submissions atomic.Uint64 // POST /api/v1/jobs received and resolved
	reroutes    atomic.Uint64 // jobs replayed onto a replacement worker
	busy        atomic.Uint64 // 429 backpressure passed through
	noWorker    atomic.Uint64 // submissions refused: empty ring
	proxyErrors atomic.Uint64 // proxied round trips that failed
	joins       atomic.Uint64 // workers ever registered
	heartbeats  atomic.Uint64
	workersLost atomic.Uint64 // workers expired or found unreachable
	completed   atomic.Uint64 // tracked jobs seen finishing done
	failed      atomic.Uint64 // tracked jobs seen finishing failed
}

func newClusterMetrics() *clusterMetrics { return &clusterMetrics{} }

// render writes the exposition. routable/pending/uptime and the
// per-worker rows are snapshots owned by the coordinator.
func (m *clusterMetrics) render(w io.Writer, routable, pending int, uptimeSeconds float64, rows []WorkerStatus) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("rrmserve_cluster_workers", "Workers currently routable on the hash ring.", float64(routable))
	gauge("rrmserve_cluster_pending_jobs", "Routed jobs not yet seen finishing.", float64(pending))
	gauge("rrmserve_cluster_uptime_seconds", "Seconds since the coordinator started.", uptimeSeconds)
	counter("rrmserve_cluster_submissions_total", "Job submissions resolved and routed by the coordinator.", m.submissions.Load())
	counter("rrmserve_cluster_reroutes_total", "Jobs replayed onto a replacement worker after worker loss.", m.reroutes.Load())
	counter("rrmserve_cluster_busy_total", "Submissions answered 429 by their worker (backpressure passed through).", m.busy.Load())
	counter("rrmserve_cluster_no_worker_total", "Submissions refused because no worker was routable.", m.noWorker.Load())
	counter("rrmserve_cluster_proxy_errors_total", "Proxied worker round trips that failed.", m.proxyErrors.Load())
	counter("rrmserve_cluster_joins_total", "Worker registrations accepted.", m.joins.Load())
	counter("rrmserve_cluster_heartbeats_total", "Worker heartbeats received.", m.heartbeats.Load())
	counter("rrmserve_cluster_workers_lost_total", "Workers expired by heartbeat TTL or found unreachable.", m.workersLost.Load())
	counter("rrmserve_cluster_jobs_completed_total", "Tracked jobs observed finishing successfully.", m.completed.Load())
	counter("rrmserve_cluster_jobs_failed_total", "Tracked jobs observed finishing with an error.", m.failed.Load())

	perWorker := func(name, help, typ string, value func(WorkerStatus) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range rows {
			fmt.Fprintf(w, "%s{worker=%q} %g\n", name, r.ID, value(r))
		}
	}
	if len(rows) > 0 {
		perWorker("rrmserve_cluster_worker_queue_depth", "Last reported bounded-queue depth per worker.", "gauge",
			func(r WorkerStatus) float64 { return float64(r.QueueDepth) })
		perWorker("rrmserve_cluster_worker_heartbeat_age_seconds", "Seconds since each worker's last heartbeat.", "gauge",
			func(r WorkerStatus) float64 { return r.HeartbeatAgeSeconds })
		perWorker("rrmserve_cluster_worker_sims_executed", "Simulations each worker has launched (zero-duplicate accounting).", "gauge",
			func(r WorkerStatus) float64 { return float64(r.SimsExecuted) })
		perWorker("rrmserve_cluster_worker_draining", "1 while the worker is draining (deregistered, finishing its jobs).", "gauge",
			func(r WorkerStatus) float64 {
				if r.Draining {
					return 1
				}
				return 0
			})
	}
}
