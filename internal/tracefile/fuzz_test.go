package tracefile

import (
	"testing"

	"rrmpcm/internal/trace"
)

// FuzzTraceFileRoundTrip drives the encoder and decoder from fuzzed
// (seed, count) pairs — every recording must parse back to the exact op
// sequence — and feeds the raw blob mutations the fuzzer finds into
// Parse, which must reject or accept without panicking.
func FuzzTraceFileRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(1), []byte{})
	f.Add(uint64(42), uint16(300), []byte{0x52, 0x52, 0x4D, 0x54})
	f.Add(uint64(7), uint16(20_000), []byte(nil))
	f.Fuzz(func(t *testing.T, seed uint64, count uint16, raw []byte) {
		// Arbitrary bytes must never panic the parser.
		if _, err := Parse(raw); err == nil && len(raw) < 32 {
			t.Fatalf("%d-byte blob parsed as a trace", len(raw))
		}

		n := uint64(count)
		if n == 0 {
			return
		}
		gen, meta := testMixture(t, seed)
		blob, err := Record(gen, meta, n)
		if err != nil {
			t.Fatalf("record(%d, %d): %v", seed, n, err)
		}
		tf, err := Parse(blob)
		if err != nil {
			t.Fatalf("parse own recording: %v", err)
		}
		if tf.Ops() != n {
			t.Fatalf("Ops = %d, want %d", tf.Ops(), n)
		}
		ref, _ := testMixture(t, seed)
		r := tf.Stream()
		var got, want trace.Op
		for i := uint64(0); i < n; i++ {
			r.Next(&got)
			ref.Next(&want)
			if got != want {
				t.Fatalf("op %d: got %+v, want %+v", i, got, want)
			}
		}

		// Flipping any single byte must be detected.
		pos := int(seed % uint64(len(blob)))
		blob[pos] ^= 0xFF
		if _, err := Parse(blob); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	})
}
