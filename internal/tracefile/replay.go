package tracefile

import (
	"encoding/binary"

	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/trace"
)

// Section tag for Replay cursor state inside a system snapshot.
const replaySection = 0x5446 // "TF"

// Replay is a trace.Stream over a parsed File: it decodes the recorded
// ops in order and wraps around at the end (recorded traces are finite;
// the simulator's streams are not). Next is allocation-free; a trace
// must be recorded long enough that a run never wraps if exact
// generator equivalence is wanted (Wraps reports it).
type Replay struct {
	f *File

	ci   int    // current chunk index
	off  int    // byte offset into the chunk payload
	done uint32 // ops consumed from the current chunk
	prev uint64 // delta base (previous op's address)

	pos   uint64 // ops consumed in the current pass over the file
	wraps uint64
}

// Stream starts a fresh replay cursor at the beginning of the trace.
func (f *File) Stream() *Replay { return &Replay{f: f} }

// Name implements trace.Generator.
func (r *Replay) Name() string { return r.f.meta.Name }

// BaseCPI implements trace.Stream.
func (r *Replay) BaseCPI() float64 { return r.f.meta.BaseCPI }

// MaxMLP implements trace.Stream.
func (r *Replay) MaxMLP() int { return r.f.meta.MaxMLP }

// Wraps returns how many times the cursor has wrapped past the end.
func (r *Replay) Wraps() uint64 { return r.wraps }

// Pos returns the ops consumed in the current pass.
func (r *Replay) Pos() uint64 { return r.pos }

// Next implements trace.Generator. Decoding cannot fail: Parse proved
// every chunk decodes to exactly its declared op count.
func (r *Replay) Next(op *trace.Op) {
	c := &r.f.chunks[r.ci]
	if r.done == c.ops {
		r.ci++
		if r.ci == len(r.f.chunks) {
			r.ci = 0
			r.wraps++
			r.pos = 0
		}
		c = &r.f.chunks[r.ci]
		r.off, r.done, r.prev = 0, 0, 0
	}
	head, n := binary.Uvarint(c.payload[r.off:])
	r.off += n
	zz, n := binary.Uvarint(c.payload[r.off:])
	r.off += n
	r.done++
	r.pos++

	op.NonMem = int(head >> 1)
	op.Store = head&1 != 0
	r.prev += uint64(int64(zz>>1) ^ -int64(zz&1))
	op.Addr = r.prev
}

// Snapshot implements trace.Stream: only the logical position travels
// (the chunk data is rebuilt from the file at restore).
func (r *Replay) Snapshot(w *snapshot.Writer) {
	w.Section(replaySection)
	w.U64(r.pos)
	w.U64(r.wraps)
}

// Restore implements trace.Stream, seeking a fresh cursor over the
// same file to the snapshotted position (decode-skip within the target
// chunk; earlier chunks are skipped via the index).
func (r *Replay) Restore(sr *snapshot.Reader) {
	sr.Section(replaySection)
	pos := sr.U64()
	wraps := sr.U64()
	if sr.Err() != nil {
		return
	}
	if pos > r.f.ops {
		sr.Fail("tracefile: snapshot position %d beyond %d recorded ops", pos, r.f.ops)
		return
	}
	r.ci, r.off, r.done, r.prev = 0, 0, 0, 0
	r.wraps = wraps
	r.pos = 0
	for r.ci < len(r.f.chunks)-1 && r.f.chunks[r.ci+1].before <= pos {
		r.ci++
	}
	c := &r.f.chunks[r.ci]
	r.pos = c.before
	for r.pos < pos {
		_, n := binary.Uvarint(c.payload[r.off:]) // head
		r.off += n
		zz, n := binary.Uvarint(c.payload[r.off:])
		r.off += n
		r.done++
		r.pos++
		r.prev += uint64(int64(zz>>1) ^ -int64(zz&1))
	}
}
