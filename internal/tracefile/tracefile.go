// Package tracefile implements the compact streaming trace format: a
// recorded trace.Generator stream that internal/sim can replay exactly
// like a synthetic one.
//
// # Format
//
// The container is the internal/snapshot codec (magic/version header,
// fixed-width little-endian fields, sticky-error reader, trailing
// FNV-1a checksum over the whole file), so truncation and whole-file
// corruption are rejected the same way system snapshots reject them.
// Inside it:
//
//	header   magic "RRMT", version 1
//	meta     name, BaseCPI, MaxMLP, address base/span, seed, op count
//	chunks   count, then per chunk: op count, FNV-1a of the payload,
//	         and the payload itself
//
// Each chunk payload packs up to 16 Ki ops as varints: one uvarint
// head = NonMem<<1|store, then one zigzag varint address delta against
// the previous op's address (reset to 0 at every chunk start, so each
// chunk decodes independently — the layout an mmap-based reader can
// checksum and decode chunk by chunk without touching the rest of the
// file). Sequential streams delta-encode to 2-3 bytes per op.
//
// Parse validates everything eagerly — header, both checksum layers,
// and a full decode pass per chunk — so Replay.Next (which has no
// error return, matching trace.Generator) can never fail at
// simulation time.
package tracefile

import (
	"encoding/binary"
	"fmt"
	"os"

	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/trace"
)

const (
	// Magic identifies a trace file ("RRMT").
	Magic uint32 = 0x52524D54
	// Version is the current format version.
	Version uint16 = 1

	// chunkOps is the writer's ops-per-chunk target.
	chunkOps = 1 << 14

	metaSection  = 0x4D44 // "MD"
	chunkSection = 0x434B // "CK"
)

// Meta describes the recorded stream: identity plus the core-model
// parameters (trace.Stream's BaseCPI/MaxMLP contract) and provenance
// (the address partition and seed the stream was generated with).
type Meta struct {
	Name    string
	BaseCPI float64
	MaxMLP  int
	Base    uint64
	Span    uint64
	Seed    uint64
}

// Writer accumulates ops and assembles the trace blob.
type Writer struct {
	meta   Meta
	chunks []chunkBuf
	cur    []byte
	curOps uint32
	prev   uint64
	ops    uint64
}

type chunkBuf struct {
	payload []byte
	ops     uint32
}

// NewWriter starts a trace with the given metadata.
func NewWriter(meta Meta) *Writer {
	return &Writer{meta: meta}
}

// Append records one op.
func (w *Writer) Append(op trace.Op) {
	if w.curOps == chunkOps {
		w.flush()
	}
	head := uint64(op.NonMem) << 1
	if op.Store {
		head |= 1
	}
	w.cur = binary.AppendUvarint(w.cur, head)
	delta := int64(op.Addr - w.prev)
	w.cur = binary.AppendUvarint(w.cur, uint64(delta<<1)^uint64(delta>>63))
	w.prev = op.Addr
	w.curOps++
	w.ops++
}

func (w *Writer) flush() {
	if w.curOps == 0 {
		return
	}
	w.chunks = append(w.chunks, chunkBuf{payload: w.cur, ops: w.curOps})
	w.cur = nil
	w.curOps = 0
	w.prev = 0 // each chunk's delta base resets
}

// Ops returns the number of ops appended so far.
func (w *Writer) Ops() uint64 { return w.ops }

// Finish assembles and returns the complete trace file bytes.
func (w *Writer) Finish() ([]byte, error) {
	w.flush()
	if len(w.chunks) == 0 {
		return nil, fmt.Errorf("tracefile: empty trace")
	}
	size := 64 + len(w.meta.Name)
	for _, c := range w.chunks {
		size += len(c.payload) + 16
	}
	sw := snapshot.NewWriter(size)
	sw.Header(Magic, Version)
	sw.Section(metaSection)
	sw.String(w.meta.Name)
	sw.F64(w.meta.BaseCPI)
	sw.I64(int64(w.meta.MaxMLP))
	sw.U64(w.meta.Base)
	sw.U64(w.meta.Span)
	sw.U64(w.meta.Seed)
	sw.U64(w.ops)
	sw.U32(uint32(len(w.chunks)))
	for _, c := range w.chunks {
		sw.Section(chunkSection)
		sw.U32(c.ops)
		sw.U64(snapshot.Checksum(c.payload))
		sw.Bytes(c.payload)
	}
	return sw.Finish(), nil
}

// Record drains n ops from gen into a finished trace blob.
func Record(gen trace.Generator, meta Meta, n uint64) ([]byte, error) {
	if n == 0 {
		return nil, fmt.Errorf("tracefile: cannot record zero ops")
	}
	w := NewWriter(meta)
	var op trace.Op
	for i := uint64(0); i < n; i++ {
		gen.Next(&op)
		w.Append(op)
	}
	return w.Finish()
}

// File is a parsed, fully validated trace. It is immutable and safe to
// share: every Stream() gets its own cursor over the same chunk data.
type File struct {
	meta   Meta
	ops    uint64
	sum    uint64
	chunks []chunk
}

type chunk struct {
	payload []byte
	ops     uint32
	before  uint64 // cumulative ops in earlier chunks (seek index)
}

// Meta returns the stream metadata.
func (f *File) Meta() Meta { return f.meta }

// Ops returns the total recorded op count.
func (f *File) Ops() uint64 { return f.ops }

// Sum returns the FNV-1a checksum of the complete file bytes — the
// content address trace.TraceRef.Sum is checked against.
func (f *File) Sum() uint64 { return f.sum }

// Parse validates and indexes a trace blob. The returned File
// references blob's memory; the caller must not mutate it.
func Parse(blob []byte) (*File, error) {
	r, err := snapshot.NewReader(blob, Magic, Version)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	f := &File{sum: snapshot.Checksum(blob)}
	r.Section(metaSection)
	f.meta.Name = r.String()
	f.meta.BaseCPI = r.F64()
	f.meta.MaxMLP = int(r.I64())
	f.meta.Base = r.U64()
	f.meta.Span = r.U64()
	f.meta.Seed = r.U64()
	f.ops = r.U64()
	nChunks := r.Count(1 << 24)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	if f.meta.BaseCPI <= 0 || f.meta.MaxMLP < 0 {
		return nil, fmt.Errorf("tracefile: invalid core parameters (BaseCPI %v, MaxMLP %d)", f.meta.BaseCPI, f.meta.MaxMLP)
	}
	total := uint64(0)
	for i := 0; i < nChunks; i++ {
		r.Section(chunkSection)
		ops := r.U32()
		sum := r.U64()
		payload := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("tracefile: chunk %d: %w", i, err)
		}
		if snapshot.Checksum(payload) != sum {
			return nil, fmt.Errorf("tracefile: chunk %d payload checksum mismatch", i)
		}
		if err := validateChunk(payload, ops); err != nil {
			return nil, fmt.Errorf("tracefile: chunk %d: %w", i, err)
		}
		f.chunks = append(f.chunks, chunk{payload: payload, ops: ops, before: total})
		total += uint64(ops)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	if total == 0 {
		return nil, fmt.Errorf("tracefile: empty trace")
	}
	if total != f.ops {
		return nil, fmt.Errorf("tracefile: header declares %d ops, chunks hold %d", f.ops, total)
	}
	return f, nil
}

// Load reads and parses a trace file from disk.
func Load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	f, err := Parse(blob)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return f, nil
}

// validateChunk decodes the whole payload once, proving that exactly
// ops ops consume exactly the payload — after this, replay decoding
// cannot fail.
func validateChunk(payload []byte, ops uint32) error {
	if ops == 0 {
		return fmt.Errorf("zero ops")
	}
	off := 0
	for i := uint32(0); i < ops; i++ {
		head, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return fmt.Errorf("op %d: bad head varint", i)
		}
		off += n
		if head>>1 > uint64(1)<<31 {
			return fmt.Errorf("op %d: implausible non-mem gap %d", i, head>>1)
		}
		if _, n = binary.Uvarint(payload[off:]); n <= 0 {
			return fmt.Errorf("op %d: bad delta varint", i)
		}
		off += n
	}
	if off != len(payload) {
		return fmt.Errorf("%d trailing bytes after %d ops", len(payload)-off, ops)
	}
	return nil
}
