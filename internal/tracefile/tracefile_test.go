package tracefile

import (
	"testing"

	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/trace"
)

func testMixture(t testing.TB, seed uint64) (*trace.Mixture, Meta) {
	t.Helper()
	p, err := trace.ProfileByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.NewMixture(p, 0, 2<<30, seed)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{Name: p.Name, BaseCPI: m.BaseCPI(), MaxMLP: m.MaxMLP(), Base: 0, Span: 2 << 30, Seed: seed}
	return m, meta
}

// recordBlob records n ops of the hmmer mixture (n spans multiple
// chunks for the default 40_000).
func recordBlob(t testing.TB, n uint64) []byte {
	t.Helper()
	gen, meta := testMixture(t, 42)
	blob, err := Record(gen, meta, n)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestRoundTrip(t *testing.T) {
	const n = 40_000 // 3 chunks: 16Ki + 16Ki + remainder
	blob := recordBlob(t, n)
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ops() != n {
		t.Fatalf("Ops = %d, want %d", f.Ops(), n)
	}
	if f.Meta().Name != "hmmer" || f.Meta().Seed != 42 {
		t.Errorf("meta mangled: %+v", f.Meta())
	}
	gen, _ := testMixture(t, 42)
	r := f.Stream()
	var got, want trace.Op
	for i := 0; i < n; i++ {
		r.Next(&got)
		gen.Next(&want)
		if got != want {
			t.Fatalf("op %d: got %+v, want %+v", i, got, want)
		}
	}
	if r.Wraps() != 0 {
		t.Errorf("wrapped after exactly %d ops (lazy wrap expected)", n)
	}

	// Past the end the stream wraps to the start of the recording.
	restart := f.Stream()
	for i := 0; i < 100; i++ {
		r.Next(&got)
		restart.Next(&want)
		if got != want {
			t.Fatalf("wrapped op %d: got %+v, want %+v", i, got, want)
		}
	}
	if r.Wraps() != 1 || r.Pos() != 100 {
		t.Errorf("after wrap: wraps %d pos %d, want 1/100", r.Wraps(), r.Pos())
	}
}

func TestStreamCursorsIndependent(t *testing.T) {
	f, err := Parse(recordBlob(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	a, b := f.Stream(), f.Stream()
	var oa, ob trace.Op
	for i := 0; i < 500; i++ {
		a.Next(&oa)
	}
	b.Next(&ob)
	a0 := f.Stream()
	a0.Next(&oa)
	if oa != ob {
		t.Error("second cursor did not start at op 0")
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	blob := recordBlob(t, 20_000)
	for _, cut := range []int{0, 1, 7, 16, len(blob) / 2, len(blob) - 9, len(blob) - 1} {
		if _, err := Parse(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	blob := recordBlob(t, 20_000)
	stride := len(blob)/61 + 1
	for pos := 0; pos < len(blob); pos += stride {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		if _, err := Parse(mut); err == nil {
			t.Errorf("single-bit corruption at byte %d accepted", pos)
		}
	}
}

// corruptChunk rebuilds a valid container whose inner chunk data is
// inconsistent, exercising the validation layers beneath the whole-file
// checksum (which re-finalizes, so the outer layer passes).
func buildContainer(meta Meta, declaredOps uint64, chunks []chunkBuf) []byte {
	sw := snapshot.NewWriter(1 << 12)
	sw.Header(Magic, Version)
	sw.Section(metaSection)
	sw.String(meta.Name)
	sw.F64(meta.BaseCPI)
	sw.I64(int64(meta.MaxMLP))
	sw.U64(meta.Base)
	sw.U64(meta.Span)
	sw.U64(meta.Seed)
	sw.U64(declaredOps)
	sw.U32(uint32(len(chunks)))
	for _, c := range chunks {
		sw.Section(chunkSection)
		sw.U32(c.ops)
		sw.U64(snapshot.Checksum(c.payload))
		sw.Bytes(c.payload)
	}
	return sw.Finish()
}

func TestParseRejectsInconsistentChunks(t *testing.T) {
	meta := Meta{Name: "x", BaseCPI: 1, MaxMLP: 4}
	// One valid 2-op payload: (head 2, delta +1), (head 3, delta +2).
	payload := []byte{2, 2, 3, 4}
	cases := []struct {
		name string
		blob []byte
	}{
		{"declared ops mismatch", buildContainer(meta, 3, []chunkBuf{{payload: payload, ops: 2}})},
		{"zero-op chunk", buildContainer(meta, 2, []chunkBuf{{payload: payload, ops: 2}, {payload: nil, ops: 0}})},
		{"trailing bytes", buildContainer(meta, 3, []chunkBuf{{payload: append(payload, 9), ops: 2}})},
		{"short payload", buildContainer(meta, 3, []chunkBuf{{payload: payload, ops: 3}})},
		{"no chunks", buildContainer(meta, 0, nil)},
		{"bad core params", buildContainer(Meta{Name: "x", BaseCPI: 0, MaxMLP: 4}, 2, []chunkBuf{{payload: payload, ops: 2}})},
	}
	for _, c := range cases {
		if _, err := Parse(c.blob); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Sanity: the well-formed variant of the same container parses.
	if _, err := Parse(buildContainer(meta, 2, []chunkBuf{{payload: payload, ops: 2}})); err != nil {
		t.Errorf("well-formed container rejected: %v", err)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nonesuch.rrmt"); err == nil {
		t.Error("missing file accepted")
	}
}

const testSnapMagic = 0x54455354

func replaySnapshot(r *Replay) []byte {
	w := snapshot.NewWriter(64)
	w.Header(testSnapMagic, 1)
	r.Snapshot(w)
	return w.Finish()
}

func replayRestore(t *testing.T, r *Replay, blob []byte) error {
	t.Helper()
	sr, err := snapshot.NewReader(blob, testSnapMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Restore(sr)
	return sr.Err()
}

// TestReplaySnapshotRestore forks the cursor at the tricky positions —
// start, mid-chunk, exact chunk boundary, end-of-file (the lazy
// pre-wrap state) — and requires bit-identical continuation.
func TestReplaySnapshotRestore(t *testing.T) {
	const n = 40_000
	f, err := Parse(recordBlob(t, n))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []uint64{0, 5, chunkOps - 1, chunkOps, chunkOps + 7, 2 * chunkOps, n - 1, n} {
		live := f.Stream()
		var op trace.Op
		for i := uint64(0); i < pos; i++ {
			live.Next(&op)
		}
		blob := replaySnapshot(live)
		fork := f.Stream()
		if err := replayRestore(t, fork, blob); err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		var a, b trace.Op
		for i := 0; i < 200; i++ { // crosses the wrap for pos near n
			live.Next(&a)
			fork.Next(&b)
			if a != b {
				t.Fatalf("pos %d, op %d after restore: got %+v, want %+v", pos, i, b, a)
			}
		}
		if live.Wraps() != fork.Wraps() {
			t.Errorf("pos %d: wraps diverged (%d vs %d)", pos, live.Wraps(), fork.Wraps())
		}
	}
}

func TestReplayRestoreRejectsBeyondEnd(t *testing.T) {
	f, err := Parse(recordBlob(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	w := snapshot.NewWriter(64)
	w.Header(testSnapMagic, 1)
	w.Section(replaySection)
	w.U64(f.Ops() + 1)
	w.U64(0)
	if err := replayRestore(t, f.Stream(), w.Finish()); err == nil {
		t.Error("position beyond the recording accepted")
	}
}

func TestRecordRejectsZeroOps(t *testing.T) {
	gen, meta := testMixture(t, 1)
	if _, err := Record(gen, meta, 0); err == nil {
		t.Error("zero-op recording accepted")
	}
	if _, err := NewWriter(meta).Finish(); err == nil {
		t.Error("empty writer finished")
	}
}

func BenchmarkTraceFileDecode(b *testing.B) {
	f, err := Parse(recordBlob(b, 40_000))
	if err != nil {
		b.Fatal(err)
	}
	r := f.Stream()
	var op trace.Op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Next(&op)
	}
}
