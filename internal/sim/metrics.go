package sim

import (
	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/stats"
	"rrmpcm/internal/timing"
)

// Metrics is everything one run reports. All rates are real-time rates:
// demand quantities are measured directly; clock-driven refresh
// quantities are de-scaled by TimeScale (see the package comment).
type Metrics struct {
	Scheme   string
	Workload string

	// SimSeconds is the measured (post-warmup) window.
	SimSeconds float64
	TimeScale  float64

	// Performance.
	Instructions uint64
	IPC          float64 // sum of per-core IPC (paper's figures)
	PerCoreIPC   []float64
	LLCMPKI      float64

	// Memory traffic in the measured window.
	ReadsServed     uint64
	WritesServed    uint64
	RefreshesServed uint64
	AvgReadLatency  timing.Time
	MaxRefreshLat   timing.Time
	RowBufHitRate   float64
	WritePauses     uint64

	// Write-mode split of demand writes. ModeWrites serializes with
	// readable mode-name keys (see metrics_json.go).
	WritesByMode       ModeWrites
	ShortWriteFraction float64

	// Wear, as real block-writes per second, by cause.
	WearDemandRate float64
	WearRRMRate    float64
	WearSlowRate   float64
	WearGlobalRate float64
	WearTotalRate  float64
	LifetimeYears  float64

	// Energy, as real power (watts) by cause, plus totals over the
	// equivalent duration (the paper's 5 s window).
	PowerDemandW   float64
	PowerRefreshW  float64 // RRM + slow + global refresh
	PowerReadW     float64
	EquivSeconds   float64
	EnergyDemandJ  float64
	EnergyRefreshJ float64
	EnergyTotalJ   float64

	// RRM internals (zero value for static schemes).
	RRM               core.Stats
	HotEntries        int
	HotBlocks         int
	RefreshBacklogMax int

	// Retention checking. RetentionViolations is the total deadline-miss
	// count; RetentionDetail breaks it down by the action that exposed
	// each expiry, under readable JSON keys (nil — omitted — for clean
	// runs, which keeps older metrics documents and goldens unchanged).
	RetentionViolations uint64
	FirstViolation      string
	RetentionDetail     *RetentionDetail `json:"retention_detail,omitempty"`

	// Reliability is the drift-fault/ECC/scrub accounting of the
	// measurement window (nil — omitted — when the model is disabled).
	Reliability *reliability.Metrics `json:"reliability,omitempty"`

	// Tenants is the per-tenant attribution of a multi-tenant run (nil
	// — omitted — unless the workload names tenants, so single-tenant
	// metrics documents and goldens are unchanged).
	Tenants []TenantMetrics `json:"tenants,omitempty"`

	// Sampling is the confidence-interval summary of a sampled run (nil
	// — omitted — for full runs, so their metrics documents and goldens
	// are unchanged).
	Sampling *SamplingReport `json:"sampling,omitempty"`

	// Hybrid is the per-tier and migration-traffic breakdown of a
	// hybrid DRAM–PCM run (nil — omitted — when the staging tier is
	// disabled, so PCM-only metrics documents and goldens are
	// unchanged). When present, ReadsServed/WritesServed cover both
	// tiers: Hybrid.PCMReads+Hybrid.DRAMReads == ReadsServed, and
	// likewise for writes.
	Hybrid *HybridMetrics `json:"hybrid,omitempty"`
}

// HybridMetrics is the hybrid tier's measurement-window breakdown.
type HybridMetrics struct {
	// Per-tier served traffic. The PCM side counts everything the PCM
	// array served in the window, including migration copy reads and
	// demotion writebacks; the DRAM side counts demand traffic the
	// staging tier served (reads) or absorbed (writes).
	PCMReads   uint64 `json:"pcm_reads"`
	PCMWrites  uint64 `json:"pcm_writes"`
	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`

	// DRAMReadHitRate is the staging tier's share of demand reads;
	// WriteAbsorption its share of demand writes.
	DRAMReadHitRate float64 `json:"dram_read_hit_rate"`
	WriteAbsorption float64 `json:"write_absorption"`

	// Migration traffic.
	Promotions      uint64 `json:"promotions"`
	Demotions       uint64 `json:"demotions"`
	CleanEvictions  uint64 `json:"clean_evictions"`
	CoalesceBatches uint64 `json:"coalesce_batches"`
	CopyReads       uint64 `json:"copy_reads"`
	WritebackBlocks uint64 `json:"writeback_blocks"`

	// End-of-window staging-tier occupancy gauges.
	ResidentPages int `json:"resident_pages"`
	DirtyPages    int `json:"dirty_pages"`

	// DRAM array behaviour.
	DRAMRowHitRate     float64     `json:"dram_row_hit_rate"`
	DRAMRefreshStalls  uint64      `json:"dram_refresh_stalls"`
	DRAMAvgReadLatency timing.Time `json:"dram_avg_read_latency"`

	// DRAM energy as real power plus the equivalent-duration total
	// (added into EnergyTotalJ).
	DRAMPowerW  float64 `json:"dram_power_w"`
	DRAMEnergyJ float64 `json:"dram_energy_j"`
}

// TenantMetrics is one tenant's slice of a multi-tenant run: the
// performance of its cores plus the memory-system activity attributed
// to its address partitions.
type TenantMetrics struct {
	Name         string `json:"name"`
	Cores        int    `json:"cores"`
	Instructions uint64 `json:"instructions"`
	// IPC is the summed per-core IPC of the tenant's cores (the
	// paper's throughput convention).
	IPC float64 `json:"ipc"`

	// DemandWrites counts completed demand block writes to the
	// tenant's partitions; WritesByMode splits them by write mode.
	DemandWrites       uint64     `json:"demand_writes"`
	WritesByMode       ModeWrites `json:"writes_by_mode,omitempty"`
	ShortWriteFraction float64    `json:"short_write_fraction"`

	// RetentionViolations are deadline misses on the tenant's blocks.
	RetentionViolations uint64 `json:"retention_violations,omitempty"`

	// Reliability-model read classification for the tenant's addresses
	// (zero when the fault model is off).
	ReadsChecked       uint64 `json:"reads_checked,omitempty"`
	CorrectedReads     uint64 `json:"corrected_reads,omitempty"`
	UncorrectableReads uint64 `json:"uncorrectable_reads,omitempty"`
}

// RetentionDetail is the serializable deadline-violation breakdown.
type RetentionDetail struct {
	Total            uint64 `json:"total"`
	ExpiredOnRead    uint64 `json:"expired_on_read"`
	ExpiredOnRewrite uint64 `json:"expired_on_rewrite"`
	ExpiredAtEnd     uint64 `json:"expired_at_end"`
	First            string `json:"first,omitempty"`
}

// collect subtracts the measurement baseline and converts to real rates
// over a window of the given length (cfg.Duration for a full run, the
// sampling window length for a sampled measurement window).
func (s *System) collect(window timing.Time) Metrics {
	sn := &s.base
	m := Metrics{
		Scheme:    s.cfg.Scheme.Name(),
		Workload:  s.cfg.Workload.Name,
		TimeScale: s.cfg.TimeScale,
	}
	m.SimSeconds = window.Seconds()

	// Performance.
	for i, c := range s.cores {
		st := c.Stats()
		insts := st.Instructions - sn.coreInsts[i]
		cycles := (st.LocalTime - sn.coreTimes[i]).CPUCycles()
		m.Instructions += insts
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(insts) / float64(cycles)
		}
		m.PerCoreIPC = append(m.PerCoreIPC, ipc)
		m.IPC += ipc
	}
	llc := s.hier.LLC().Stats()
	if m.Instructions > 0 {
		m.LLCMPKI = float64(llc.Misses-sn.llcMisses) / float64(m.Instructions) * 1000
	}

	// Controller activity.
	cs := s.ctl.Stats()
	m.ReadsServed = cs.ReadsServed - sn.ctl.ReadsServed
	m.WritesServed = cs.WritesServed - sn.ctl.WritesServed
	m.RefreshesServed = cs.RefreshesServed - sn.ctl.RefreshesServed
	m.AvgReadLatency = cs.AvgReadLatency()
	m.MaxRefreshLat = cs.RefreshLatencyMax
	m.RowBufHitRate = cs.RowBufHitRate()
	m.WritePauses = cs.WritePauses - sn.ctl.WritePauses

	// Write-mode split. Deltas are staged in a fixed array so the result
	// map is allocated once, at its exact final size.
	var shortW, totalW uint64
	var deltas [5]uint64
	nonzero := 0
	for i, mode := range pcm.Modes() {
		n := s.wear.ByMode(mode) - sn.wearMode[mode-pcm.Mode3SETs]
		deltas[i] = n
		if n > 0 {
			nonzero++
		}
		totalW += n
		if mode < s.policy.GlobalRefreshMode() {
			shortW += n
		}
	}
	m.WritesByMode = make(ModeWrites, nonzero)
	for i, mode := range pcm.Modes() {
		if deltas[i] > 0 {
			m.WritesByMode[mode] = deltas[i]
		}
	}
	if totalW > 0 {
		m.ShortWriteFraction = float64(shortW) / float64(totalW)
	}

	// Wear rates (real). Demand is measured directly. Selective (RRM)
	// refreshes run on the accelerated retention clock but are sampled
	// 1-in-sampling, so the divisor is TimeScale/sampling (1 for the
	// built-in monitors, which sample at exactly TimeScale). Slow
	// refreshes are decay-clock-driven and unsampled: de-scale fully.
	// Global refresh is analytic.
	sec := m.SimSeconds
	k := s.cfg.TimeScale
	rrmDiv := k / float64(s.refreshSampling())
	m.WearDemandRate = float64(s.wear.ByKind(pcm.WearDemandWrite)-sn.wearKind[0]) / sec
	m.WearRRMRate = float64(s.wear.ByKind(pcm.WearRRMRefresh)-sn.wearKind[1]) / sec / rrmDiv
	m.WearSlowRate = float64(s.wear.ByKind(pcm.WearSlowRefresh)-sn.wearKind[2]) / sec / k
	m.WearGlobalRate = stats.GlobalRefreshWearRate(s.cfg.Device, s.policy.GlobalRefreshMode())
	m.WearTotalRate = m.WearDemandRate + m.WearRRMRate + m.WearSlowRate + m.WearGlobalRate
	m.LifetimeYears = stats.LifetimeYears(s.cfg.Device, m.WearTotalRate)

	// Energy (real watts).
	m.PowerDemandW = (s.energy.WriteEnergy(pcm.WearDemandWrite) - sn.energyW[0]) / sec
	rrmW := (s.energy.WriteEnergy(pcm.WearRRMRefresh) - sn.energyW[1]) / sec / rrmDiv
	slowW := (s.energy.WriteEnergy(pcm.WearSlowRefresh) - sn.energyW[2]) / sec / k
	globalW := m.WearGlobalRate * pcm.BlockWriteEnergy(s.cfg.Device.BlockBytes, s.policy.GlobalRefreshMode())
	m.PowerRefreshW = rrmW + slowW + globalW
	m.PowerReadW = (s.energy.ReadEnergy() - sn.energyR) / sec

	equiv := s.cfg.EquivalentDuration
	if equiv <= 0 {
		equiv = 5 * timing.Second
	}
	m.EquivSeconds = equiv.Seconds()
	m.EnergyDemandJ = m.PowerDemandW * m.EquivSeconds
	m.EnergyRefreshJ = m.PowerRefreshW * m.EquivSeconds
	m.EnergyTotalJ = m.EnergyDemandJ + m.EnergyRefreshJ + m.PowerReadW*m.EquivSeconds

	if s.migr != nil {
		s.collectHybrid(&m)
	}

	// RRM internals.
	if s.rrm != nil {
		cur := s.rrm.Stats()
		m.RRM = core.Stats{
			Registrations:  cur.Registrations - sn.rrm.Registrations,
			CleanFiltered:  cur.CleanFiltered - sn.rrm.CleanFiltered,
			RegHits:        cur.RegHits - sn.rrm.RegHits,
			RegMisses:      cur.RegMisses - sn.rrm.RegMisses,
			Allocations:    cur.Allocations - sn.rrm.Allocations,
			Evictions:      cur.Evictions - sn.rrm.Evictions,
			EvictionFlush:  cur.EvictionFlush - sn.rrm.EvictionFlush,
			Promotions:     cur.Promotions - sn.rrm.Promotions,
			Demotions:      cur.Demotions - sn.rrm.Demotions,
			FastRefreshes:  cur.FastRefreshes - sn.rrm.FastRefreshes,
			SlowRefreshes:  cur.SlowRefreshes - sn.rrm.SlowRefreshes,
			ShortDecisions: cur.ShortDecisions - sn.rrm.ShortDecisions,
			LongDecisions:  cur.LongDecisions - sn.rrm.LongDecisions,
		}
		m.HotEntries, m.HotBlocks = s.rrm.HotEntries()
		m.RefreshBacklogMax = s.backend.maxRefreshBacklog
	}

	if s.checker != nil {
		m.RetentionViolations = s.checker.violations
		m.FirstViolation = s.checker.firstViolation
		m.RetentionDetail = s.checker.detail()
	}

	// Reliability: counter deltas over the measurement window, then the
	// derived per-billion-read rates.
	if s.rel != nil {
		rel := s.rel.Metrics().Sub(sn.rel)
		rel.Finalize()
		m.Reliability = &rel
	}

	if s.tenants != nil {
		s.collectTenants(&m)
	}
	return m
}

// collectHybrid fills Metrics.Hybrid and folds the staging tier into the
// global traffic and energy totals. Called after the controller and
// energy sections: m.ReadsServed/WritesServed hold the PCM-side window
// deltas at this point and are widened to cover both tiers.
func (s *System) collectHybrid(m *Metrics) {
	sn := &s.base
	mg := s.migr.Stats()
	ds := s.dramDev.Stats()
	h := &HybridMetrics{
		PCMReads:        m.ReadsServed,
		PCMWrites:       m.WritesServed,
		DRAMReads:       mg.DRAMReadHits - sn.mig.DRAMReadHits,
		DRAMWrites:      mg.DRAMWriteHits - sn.mig.DRAMWriteHits,
		Promotions:      mg.Promotions - sn.mig.Promotions,
		Demotions:       mg.Demotions - sn.mig.Demotions,
		CleanEvictions:  mg.CleanEvictions - sn.mig.CleanEvictions,
		CoalesceBatches: mg.CoalesceBatches - sn.mig.CoalesceBatches,
		CopyReads:       mg.CopyReads - sn.mig.CopyReads,
		WritebackBlocks: mg.WritebackBlocks - sn.mig.WritebackBlocks,
		ResidentPages:   s.migr.ResidentPages(),
		DirtyPages:      s.migr.DirtyPages(),
	}
	m.ReadsServed += h.DRAMReads
	m.WritesServed += h.DRAMWrites
	if d := h.DRAMReads + (mg.PCMReads - sn.mig.PCMReads); d > 0 {
		h.DRAMReadHitRate = float64(h.DRAMReads) / float64(d)
	}
	if d := h.DRAMWrites + (mg.PCMWrites - sn.mig.PCMWrites); d > 0 {
		h.WriteAbsorption = float64(h.DRAMWrites) / float64(d)
	}
	if hits, misses := ds.RowHits-sn.dram.RowHits, ds.RowMisses-sn.dram.RowMisses; hits+misses > 0 {
		h.DRAMRowHitRate = float64(hits) / float64(hits+misses)
	}
	h.DRAMRefreshStalls = ds.RefreshStalls - sn.dram.RefreshStalls
	if reads := ds.Reads - sn.dram.Reads; reads > 0 {
		h.DRAMAvgReadLatency = (ds.ReadLatencySum - sn.dram.ReadLatencySum) / timing.Time(reads)
	}
	h.DRAMPowerW = (ds.EnergyReadJ - sn.dram.EnergyReadJ + ds.EnergyWriteJ - sn.dram.EnergyWriteJ) / m.SimSeconds
	h.DRAMEnergyJ = h.DRAMPowerW * m.EquivSeconds
	m.EnergyTotalJ += h.DRAMEnergyJ
	m.Hybrid = h
}
