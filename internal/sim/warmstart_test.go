package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// runStraight runs cfg start to finish and returns the metrics JSON.
func runStraight(t *testing.T, cfg Config) []byte {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// snapshotWarm warms a system under cfg and returns its snapshot blob.
func snapshotWarm(t *testing.T, cfg Config) []byte {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	blob, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// runForked restores blob into a fresh cfg system and measures it.
func runForked(t *testing.T, cfg Config, blob []byte) []byte {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(blob); err != nil {
		t.Fatal(err)
	}
	m, err := sys.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWarmStartForkBitIdentical is the warm-start correctness bar: for
// every golden configuration, snapshotting at the warmup boundary and
// measuring from the restored fork must produce metrics bit-identical to
// the straight-through run. This covers the event-queue re-arm ordering,
// every component codec, and the callback-identity reconstruction.
func TestWarmStartForkBitIdentical(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := trace.WorkloadByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			cfg := goldenConfig(tc.scheme, w)
			straight := runStraight(t, cfg)
			forked := runForked(t, cfg, snapshotWarm(t, cfg))
			if !bytes.Equal(straight, forked) {
				t.Errorf("forked run diverged from straight-through:\n%s", goldenDiff(straight, forked))
			}
		})
	}
}

// TestWarmStartForkReliability covers the reliability engine, patrol
// scrub and retention checker codecs, which the golden cases leave off.
func TestWarmStartForkReliability(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	cfg.Reliability.Enabled = true
	cfg.Reliability.Patrol = true
	straight := runStraight(t, cfg)
	forked := runForked(t, cfg, snapshotWarm(t, cfg))
	if !bytes.Equal(straight, forked) {
		t.Errorf("forked reliability run diverged from straight-through:\n%s", goldenDiff(straight, forked))
	}
}

// TestWarmStartCrossDuration forks one warm snapshot into runs whose
// measurement windows differ from the run that produced it — the sweep
// use case. Each fork must match the straight-through run of the same
// total duration.
func TestWarmStartCrossDuration(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	base := goldenConfig(RRMScheme(), w)
	blob := snapshotWarm(t, base)
	for _, d := range []timing.Time{1000 * timing.Microsecond, 2000 * timing.Microsecond} {
		cfg := base
		cfg.Duration = d
		straight := runStraight(t, cfg)
		forked := runForked(t, cfg, blob)
		if !bytes.Equal(straight, forked) {
			t.Errorf("duration %v: forked run diverged:\n%s", d, goldenDiff(straight, forked))
		}
	}
}

// TestSnapshotRejectsCorruption flips bytes across a real system snapshot
// and demands Restore fail cleanly (never panic, never silently accept).
func TestSnapshotRejectsCorruption(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	blob := snapshotWarm(t, cfg)
	for i := 0; i < len(blob); i += 997 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Restore(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

// TestSnapshotLifecycle pins the phase rules: no snapshot before warmup
// or after measurement, no restore into a used system.
func TestSnapshotLifecycle(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenConfig(RRMScheme(), w)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot before Warmup succeeded")
	}
	if _, err := sys.Measure(context.Background()); err == nil {
		t.Error("Measure before Warmup succeeded")
	}
	if err := sys.Warmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Warmup(context.Background()); err == nil {
		t.Error("double Warmup succeeded")
	}
	blob, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Restore(blob); err == nil {
		t.Error("Restore into a warmed system succeeded")
	}
	if _, err := sys.Measure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Measure(context.Background()); err == nil {
		t.Error("double Measure succeeded")
	}
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot after Measure succeeded")
	}
}
