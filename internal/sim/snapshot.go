package sim

import (
	"fmt"
	"sort"

	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/timing"
)

// System snapshot format. The blob is the deterministic binary encoding
// of internal/snapshot: a magic+version header, each component's section
// in a fixed order, and a trailing checksum. Pending events travel as
// (time, seq) descriptors and are re-armed in global (time, seq) order on
// restore (timing.Rearm), which reproduces the original dispatch sequence
// exactly — a restored run is bit-identical to the run it forked from.
// Version history: v1 through PR 6; v2 adds the tenant-tracker section
// (and streams may now be Dynamic or Replay cursors, whose section tags
// differ from Mixture's); v3 adds the hybrid DRAM/migration sections and
// the OwnerMigrate identity for in-flight copy reads.
// v4 adds the shard-mailbox section (and the controller wakeup record
// may now describe a timer slot — same bytes, same (time, seq)
// position, whichever engine wrote it).
// engine.warmHashVersion was bumped alongside each, so older blobs are
// never looked up, let alone misparsed.
const (
	sysSnapMagic   uint32 = 0x52524D53 // "RRMS"
	sysSnapVersion uint16 = 4
)

// Snapshot serializes a warmed system (after Warmup, before Measure).
// The blob can be restored into a freshly built System with the same
// warmup-relevant configuration. Custom schemes carry arbitrary external
// policy state and cannot be snapshotted.
func (s *System) Snapshot() ([]byte, error) {
	if s.phase != phaseWarm {
		return nil, fmt.Errorf("sim: Snapshot requires a warmed, unmeasured system (have %s)", s.phase)
	}
	if s.cfg.Scheme.Kind == SchemeCustom {
		return nil, fmt.Errorf("sim: custom schemes cannot be snapshotted")
	}
	w := snapshot.NewWriter(1 << 20)
	w.Header(sysSnapMagic, sysSnapVersion)
	w.I64(int64(s.eq.Now()))
	// Shard-mailbox section (v4): the count of in-transit cross-shard
	// messages owned by no component. Snapshots are only taken between
	// epochs, when every cross-shard event rests in its destination queue
	// and is serialized by the component that owns it, so the count is
	// zero by construction — deliberately independent of the shard count,
	// which keeps snapshot bytes identical across engines. Restore
	// validates the invariant.
	w.U32(0)
	w.U32(uint32(len(s.cores)))
	for i, c := range s.cores {
		s.gens[i].Snapshot(w)
		c.Snapshot(w)
	}
	s.hier.Snapshot(w)
	if err := s.ctl.Snapshot(w); err != nil {
		return nil, err
	}
	s.wear.Snapshot(w)
	s.energy.Snapshot(w)
	w.Bool(s.rrm != nil)
	if s.rrm != nil {
		if err := s.rrm.Snapshot(w); err != nil {
			return nil, err
		}
	}
	w.Bool(s.rel != nil)
	if s.rel != nil {
		if err := s.rel.Snapshot(w); err != nil {
			return nil, err
		}
	}
	w.Bool(s.checker != nil)
	if s.checker != nil {
		s.checker.snapshot(w)
	}
	w.Bool(s.tenants != nil)
	if s.tenants != nil {
		s.tenants.snapshot(w)
	}
	w.Bool(s.migr != nil)
	if s.migr != nil {
		if err := s.dramDev.Snapshot(w); err != nil {
			return nil, err
		}
		if err := s.migr.Snapshot(w); err != nil {
			return nil, err
		}
	}
	if err := s.backend.snapshot(w); err != nil {
		return nil, err
	}
	w.Bool(s.patrolFn != nil)
	if s.patrolFn != nil {
		w.I64(int64(s.patrolAt))
		w.I64(s.patrolSeq)
	}
	return w.Finish(), nil
}

// Restore loads a Snapshot blob into a freshly built System, leaving it
// in the warmed state: Measure picks up exactly where the snapshotted
// run's warmup ended. The system must have been built from a
// configuration whose warmup-relevant prefix matches the one that
// produced the blob (the engine keys its snapshot cache by that prefix);
// structural mismatches are detected and returned as errors.
func (s *System) Restore(blob []byte) error {
	if s.phase != phaseNew {
		return fmt.Errorf("sim: Restore requires a freshly built system (have %s)", s.phase)
	}
	if s.cfg.Scheme.Kind == SchemeCustom {
		return fmt.Errorf("sim: custom schemes cannot be restored")
	}
	r, err := snapshot.NewReader(blob, sysSnapMagic, sysSnapVersion)
	if err != nil {
		return err
	}
	warm := timing.Time(r.I64())
	if n := r.U32(); r.Err() == nil && n != 0 {
		r.Fail("sim: snapshot holds %d in-transit mailbox messages (always 0 at epoch barriers)", n)
	}
	if n := r.U32(); r.Err() == nil && int(n) != len(s.cores) {
		r.Fail("sim: snapshot has %d cores, live system %d", n, len(s.cores))
	}
	if err := r.Err(); err != nil {
		return err
	}
	if s.set != nil {
		s.set.Reset(warm)
	} else {
		s.eq.Reset(warm)
	}
	var pend []timing.Pending
	for i, c := range s.cores {
		s.gens[i].Restore(r)
		c.Restore(r, &pend)
	}
	s.hier.Restore(r)
	// The owner resolver rebuilds read-completion callbacks: core demand
	// reads via MissCallback, hybrid-tier copy reads via the migration
	// engine (nil for a hybrid/config mismatch, which the hybrid marker
	// check below turns into a restore error).
	resolve := func(core int, store bool, inst uint64) func(timing.Time) {
		if core == memctrl.OwnerMigrate {
			if s.migr == nil {
				return nil
			}
			return s.migr.CopyDoneCallback(inst)
		}
		return s.cores[core].MissCallback(store, inst)
	}
	s.ctl.Restore(r, resolve, &pend)
	s.wear.Restore(r)
	s.energy.Restore(r)
	if hasRRM := r.Bool(); r.Err() == nil && hasRRM != (s.rrm != nil) {
		r.Fail("sim: snapshot/config scheme mismatch (rrm present: %v)", hasRRM)
	}
	if s.rrm != nil && r.Err() == nil {
		s.rrm.Restore(r, s.eq, &pend)
	}
	if hasRel := r.Bool(); r.Err() == nil && hasRel != (s.rel != nil) {
		r.Fail("sim: snapshot/config reliability mismatch (present: %v)", hasRel)
	}
	if s.rel != nil && r.Err() == nil {
		s.rel.Restore(r)
	}
	if hasChk := r.Bool(); r.Err() == nil && hasChk != (s.checker != nil) {
		r.Fail("sim: snapshot/config retention-checker mismatch (present: %v)", hasChk)
	}
	if s.checker != nil && r.Err() == nil {
		s.checker.restore(r)
	}
	if hasTen := r.Bool(); r.Err() == nil && hasTen != (s.tenants != nil) {
		r.Fail("sim: snapshot/config tenant mismatch (present: %v)", hasTen)
	}
	if s.tenants != nil && r.Err() == nil {
		s.tenants.restore(r)
	}
	if hasHyb := r.Bool(); r.Err() == nil && hasHyb != (s.migr != nil) {
		r.Fail("sim: snapshot/config hybrid mismatch (present: %v)", hasHyb)
	}
	if s.migr != nil && r.Err() == nil {
		s.dramDev.Restore(r, resolve, &pend)
		s.migr.Restore(r)
	}
	s.backend.restore(r, &pend)
	if r.Bool() {
		at := timing.Time(r.I64())
		seq := r.I64()
		if r.Err() == nil {
			if s.rel == nil || !s.cfg.Reliability.Patrol {
				return fmt.Errorf("sim: snapshot has a patrol scrub but the configuration does not")
			}
			s.initPatrol()
			pend = append(pend, timing.Pending{At: at, Seq: seq, Arm: func() {
				s.armPatrol(at)
			}})
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return err
	}
	timing.Rearm(pend)
	s.phase = phaseWarm
	return nil
}

// --- retention checker ---

const chkSection = 0x5243 // "RC"

func (rc *retentionChecker) snapshot(w *snapshot.Writer) {
	w.Section(chkSection)
	keys := make([]uint64, 0, len(rc.deadline))
	for k := range rc.deadline {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.I64(int64(rc.deadline[k]))
	}
	w.U64(rc.violations)
	w.String(rc.firstViolation)
	w.U64(rc.expiredOnRead)
	w.U64(rc.expiredOnRewrite)
	w.U64(rc.expiredAtEnd)
}

func (rc *retentionChecker) restore(r *snapshot.Reader) {
	r.Section(chkSection)
	n := r.Count(1 << 26)
	rc.deadline = make(map[uint64]timing.Time, n)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		k := r.U64()
		rc.deadline[k] = timing.Time(r.I64())
	}
	rc.violations = r.U64()
	rc.firstViolation = r.String()
	rc.expiredOnRead = r.U64()
	rc.expiredOnRewrite = r.U64()
	rc.expiredAtEnd = r.U64()
}

// --- backend ---

const beSection = 0x4245 // "BE"

// putOverflowReq serializes a parked (never-enqueued) request: only the
// exported payload and owner identity matter.
func putOverflowReq(w *snapshot.Writer, req *memctrl.Request) error {
	if req.OnDone != nil && req.OwnerCore < 0 {
		return fmt.Errorf("sim: parked request with a callback but no owner identity")
	}
	w.U8(uint8(req.Kind))
	w.U64(req.Addr)
	w.U8(uint8(req.Mode))
	w.U8(uint8(req.Wear))
	w.I64(int64(req.OwnerCore))
	w.Bool(req.OwnerStore)
	w.U64(req.OwnerInst)
	return nil
}

func (b *backend) getOverflowReq(r *snapshot.Reader) *memctrl.Request {
	req := b.sys.ctl.AcquireRequest()
	req.Kind = memctrl.RequestKind(r.U8())
	req.Addr = r.U64()
	req.Mode = pcm.WriteMode(r.U8())
	req.Wear = pcm.WearKind(r.U8())
	req.OwnerCore = int(r.I64())
	req.OwnerStore = r.Bool()
	req.OwnerInst = r.U64()
	if req.OwnerCore >= 0 {
		req.OnDone = b.sys.cores[req.OwnerCore].MissCallback(req.OwnerStore, req.OwnerInst)
	}
	return req
}

func (b *backend) snapshot(w *snapshot.Writer) error {
	w.Section(beSection)
	for _, lists := range [3][][]*memctrl.Request{b.overflowWrites, b.overflowReads, b.pendingRefresh} {
		for _, list := range lists {
			w.U32(uint32(len(list)))
			for _, req := range list {
				if err := putOverflowReq(w, req); err != nil {
					return err
				}
			}
		}
	}
	for k := range b.spaceArmed {
		for _, armed := range b.spaceArmed[k] {
			w.Bool(armed)
		}
	}
	for _, th := range b.throttled {
		w.Bool(th)
	}
	w.U32(uint32(b.maxRefreshBacklog))
	w.U32(uint32(len(b.liveSubs)))
	for _, sub := range b.liveSubs {
		if err := putOverflowReq(w, sub.req); err != nil {
			return err
		}
		w.I64(int64(sub.coreID))
		w.I64(int64(sub.at))
		w.I64(sub.seq)
	}
	return nil
}

func (b *backend) restore(r *snapshot.Reader, pend *[]timing.Pending) {
	r.Section(beSection)
	b.totalOverflowWB = 0
	for li, lists := range [3]*[][]*memctrl.Request{&b.overflowWrites, &b.overflowReads, &b.pendingRefresh} {
		for ch := range *lists {
			n := r.Count(1 << 20)
			(*lists)[ch] = (*lists)[ch][:0]
			for i := 0; i < n; i++ {
				if r.Err() != nil {
					return
				}
				(*lists)[ch] = append((*lists)[ch], b.getOverflowReq(r))
			}
			if li == 0 {
				b.totalOverflowWB += len((*lists)[ch])
			}
		}
	}
	for k := range b.spaceArmed {
		for ch := range b.spaceArmed[k] {
			b.spaceArmed[k][ch] = false
			if r.Bool() && r.Err() == nil {
				// Re-register with the restored controller (waiter
				// closures do not travel in the snapshot).
				b.armSpace(memctrl.RequestKind(k), ch)
			}
		}
	}
	for i := range b.throttled {
		b.throttled[i] = r.Bool()
	}
	b.maxRefreshBacklog = int(r.U32())
	n := r.Count(1 << 20)
	for i := 0; i < n; i++ {
		if r.Err() != nil {
			return
		}
		req := b.getOverflowReq(r)
		coreID := int(r.I64())
		at := timing.Time(r.I64())
		seq := r.I64()
		*pend = append(*pend, timing.Pending{At: at, Seq: seq, Arm: func() {
			b.submitAt(at, req, coreID)
		}})
	}
}
