package sim

import (
	"fmt"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/snapshot"
	"rrmpcm/internal/trace"
	"rrmpcm/internal/tracefile"
)

// loadReplayStream opens one recorded trace stream and verifies its
// content checksum against the configured reference — the config hash
// covers ref.Sum, so a file whose bytes drifted since the config was
// hashed is rejected here instead of silently simulating a different
// workload under the old identity.
func loadReplayStream(ref trace.TraceRef) (trace.Stream, error) {
	f, err := tracefile.Load(ref.Path)
	if err != nil {
		return nil, err
	}
	if ref.Sum != 0 && f.Sum() != ref.Sum {
		return nil, fmt.Errorf("sim: trace %s content checksum %#x does not match configured %#x",
			ref.Path, f.Sum(), ref.Sum)
	}
	return f.Stream(), nil
}

// tenantCounters are the per-tenant accumulators (indexed by tenant,
// then by write mode where applicable). They live both on the tracker
// (live counters) and on the baseline (warmup-end snapshot collect
// subtracts).
type tenantCounters struct {
	demandWrites  [][5]uint64 // per tenant, per mode (index mode-Mode3SETs)
	violations    []uint64
	readsChecked  []uint64
	corrected     []uint64
	uncorrectable []uint64
}

func newTenantCounters(n int) *tenantCounters {
	return &tenantCounters{
		demandWrites:  make([][5]uint64, n),
		violations:    make([]uint64, n),
		readsChecked:  make([]uint64, n),
		corrected:     make([]uint64, n),
		uncorrectable: make([]uint64, n),
	}
}

// copyFrom refills the counters in place (no allocation: the baseline
// is captured once per measurement).
func (tc *tenantCounters) copyFrom(src *tenantCounters) {
	copy(tc.demandWrites, src.demandWrites)
	copy(tc.violations, src.violations)
	copy(tc.readsChecked, src.readsChecked)
	copy(tc.corrected, src.corrected)
	copy(tc.uncorrectable, src.uncorrectable)
}

// tenantTracker attributes memory-system activity to named tenants.
// Attribution is by address: stream i owns the partition
// [i*span, (i+1)*span), and the workload maps each stream to a tenant
// name (duplicate names merge streams into one tenant). The hot paths
// are one division + array increments.
type tenantTracker struct {
	tenantCounters

	names     []string // unique tenant names, first-appearance order
	streamTen []int    // stream index -> tenant index
	span      uint64
}

func newTenantTracker(perStream []string, span uint64) *tenantTracker {
	t := &tenantTracker{span: span}
	index := make(map[string]int, len(perStream))
	for _, name := range perStream {
		ti, ok := index[name]
		if !ok {
			ti = len(t.names)
			index[name] = ti
			t.names = append(t.names, name)
		}
		t.streamTen = append(t.streamTen, ti)
	}
	t.tenantCounters = *newTenantCounters(len(t.names))
	return t
}

// emptyCounters allocates a zeroed baseline of matching shape.
func (t *tenantTracker) emptyCounters() *tenantCounters {
	return newTenantCounters(len(t.names))
}

// tenantOf maps an address to its owning tenant index.
func (t *tenantTracker) tenantOf(addr uint64) int {
	s := int(addr / t.span)
	if s >= len(t.streamTen) {
		s = len(t.streamTen) - 1
	}
	return t.streamTen[s]
}

// noteDemandWrite records a completed demand block write.
func (t *tenantTracker) noteDemandWrite(addr uint64, mode pcm.WriteMode) {
	t.demandWrites[t.tenantOf(addr)][mode-pcm.Mode3SETs]++
}

// noteViolation records a retention-deadline miss on blk.
func (t *tenantTracker) noteViolation(blk uint64) {
	t.violations[t.tenantOf(blk)]++
}

// noteRead records a reliability-checked demand read's classification.
func (t *tenantTracker) noteRead(addr uint64, corrected, uncorrectable bool) {
	ti := t.tenantOf(addr)
	t.readsChecked[ti]++
	if corrected {
		t.corrected[ti]++
	}
	if uncorrectable {
		t.uncorrectable[ti]++
	}
}

// Section tag for tenant counters inside a system snapshot.
const tenSection = 0x544E // "TN"

func (t *tenantTracker) snapshot(w *snapshot.Writer) {
	w.Section(tenSection)
	w.U32(uint32(len(t.names)))
	for i := range t.names {
		w.String(t.names[i])
		for _, v := range t.demandWrites[i] {
			w.U64(v)
		}
		w.U64(t.violations[i])
		w.U64(t.readsChecked[i])
		w.U64(t.corrected[i])
		w.U64(t.uncorrectable[i])
	}
}

func (t *tenantTracker) restore(r *snapshot.Reader) {
	r.Section(tenSection)
	if n := r.U32(); r.Err() == nil && int(n) != len(t.names) {
		r.Fail("sim: snapshot has %d tenants, config %d", n, len(t.names))
	}
	for i := range t.names {
		if r.Err() != nil {
			return
		}
		if name := r.String(); r.Err() == nil && name != t.names[i] {
			r.Fail("sim: snapshot tenant %d is %q, config %q", i, name, t.names[i])
			return
		}
		for m := range t.demandWrites[i] {
			t.demandWrites[i][m] = r.U64()
		}
		t.violations[i] = r.U64()
		t.readsChecked[i] = r.U64()
		t.corrected[i] = r.U64()
		t.uncorrectable[i] = r.U64()
	}
}

// collectTenants builds the per-tenant metrics slice: per-core
// performance aggregated by the stream→tenant map, plus the tracker's
// counter deltas against the warmup baseline.
func (s *System) collectTenants(m *Metrics) {
	t := s.tenants
	base := s.base.tenants
	out := make([]TenantMetrics, len(t.names))
	longMode := s.policy.GlobalRefreshMode()
	for i, name := range t.names {
		tm := TenantMetrics{Name: name}
		var shortW, totalW uint64
		nonzero := 0
		var deltas [5]uint64
		for mi, mode := range pcm.Modes() {
			n := t.demandWrites[i][mi] - base.demandWrites[i][mi]
			deltas[mi] = n
			totalW += n
			if n > 0 {
				nonzero++
			}
			if mode < longMode {
				shortW += n
			}
		}
		tm.DemandWrites = totalW
		if nonzero > 0 {
			tm.WritesByMode = make(ModeWrites, nonzero)
			for mi, mode := range pcm.Modes() {
				if deltas[mi] > 0 {
					tm.WritesByMode[mode] = deltas[mi]
				}
			}
		}
		if totalW > 0 {
			tm.ShortWriteFraction = float64(shortW) / float64(totalW)
		}
		tm.RetentionViolations = t.violations[i] - base.violations[i]
		tm.ReadsChecked = t.readsChecked[i] - base.readsChecked[i]
		tm.CorrectedReads = t.corrected[i] - base.corrected[i]
		tm.UncorrectableReads = t.uncorrectable[i] - base.uncorrectable[i]
		out[i] = tm
	}
	for si, ti := range t.streamTen {
		out[ti].Cores++
		st := s.cores[si].Stats()
		out[ti].Instructions += st.Instructions - s.base.coreInsts[si]
		out[ti].IPC += m.PerCoreIPC[si]
	}
	m.Tenants = out
}
