package sim

import (
	"context"
	"fmt"

	"rrmpcm/internal/cache"
	"rrmpcm/internal/core"
	"rrmpcm/internal/cpu"
	"rrmpcm/internal/dram"
	"rrmpcm/internal/memctrl"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/reliability"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// runPhase tracks a System's single-use lifecycle: built, warmed (by
// Warmup or Restore), measured.
type runPhase int

const (
	phaseNew runPhase = iota
	phaseWarm
	phaseDone
)

func (p runPhase) String() string {
	switch p {
	case phaseNew:
		return "fresh"
	case phaseWarm:
		return "warmed"
	default:
		return "measured"
	}
}

// System is one fully assembled simulated machine.
type System struct {
	cfg   Config
	phase runPhase

	// functional is true while FastForward runs the machine in
	// functional-only mode: the backend bypasses the memory controller
	// (flat read latency, instant writes/refreshes) while all
	// architectural state keeps advancing.
	functional bool
	// ffInsts/ffSpan record the most recent FastForward's instruction
	// count and span, feeding the sampler's rate-matching feedback loop.
	ffInsts uint64
	ffSpan  timing.Time

	// eq is shard 0's queue (the core domain) — and, when set is nil,
	// the single global queue of the serial engine. All queues of a set
	// share one clock, so eq.Now() is the global time either way.
	eq *timing.EventQueue
	// set is the sharded execution engine (cfg.Shards != 0): per-shard
	// queues merged in global (time, seq) order under conservative epoch
	// windows. Nil for the serial engine.
	set    *timing.ShardSet
	amap   *pcm.AddressMap
	wear   *pcm.WearTracker
	energy *pcm.EnergyMeter
	hier   *cache.Hierarchy
	ctl    *memctrl.Controller
	// dev is the memory device the backend talks to: the PCM controller
	// directly, or the hybrid migration engine fronting it (cfg.Hybrid).
	dev     memctrl.Device
	dramDev *dram.Device   // nil unless the hybrid tier is enabled
	migr    *dram.Migrator // nil unless the hybrid tier is enabled
	policy  core.WritePolicy
	rrm     *core.RRM // nil for static/custom schemes
	cores   []*cpu.Core
	gens    []trace.Stream // per-core streams, retained for snapshots
	backend *backend
	checker *retentionChecker
	rel     *reliability.Engine // nil when the reliability model is off
	tenants *tenantTracker      // nil unless the workload names tenants

	// base is the warmup-end counter baseline collect subtracts; held on
	// the System (with fixed-size arrays) so a run allocates nothing to
	// capture it.
	base baseline

	// Patrol-scrub event bookkeeping (see initPatrol/armPatrol).
	patrolInterval timing.Time
	patrolAt       timing.Time
	patrolSeq      int64
	patrolFn       func(timing.Time)
}

// New assembles the system described by cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	if n := cfg.effectiveShards(); n > 0 {
		// Shard 0 is the core domain (cores, policy, hybrid tier, patrol);
		// shards 1..n each own Channels/n memory channels.
		s.set = timing.NewShardSet(1+n, cfg.shardLookahead())
		s.eq = s.set.Queue(0)
	} else {
		s.eq = timing.NewEventQueue()
	}

	var err error
	s.amap, err = pcm.NewAddressMap(cfg.Device)
	if err != nil {
		return nil, err
	}
	s.wear = pcm.NewWearTracker(s.amap)
	s.energy = pcm.NewEnergyMeter(cfg.Device.BlockBytes)
	s.hier, err = cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	if cfg.CheckRetention {
		s.checker = newRetentionChecker(cfg)
	}
	s.backend = newBackend(s)

	s.ctl, err = memctrl.New(cfg.Ctrl, s.amap, s.eq, s.backend)
	if err != nil {
		return nil, err
	}
	if s.set != nil {
		// Bind each channel to its shard's queue: channel c lives on
		// shard 1 + c/(Channels/n).
		n := s.set.NumShards() - 1
		per := cfg.Device.Channels / n
		qs := make([]*timing.EventQueue, cfg.Device.Channels)
		for c := range qs {
			qs[c] = s.set.Queue(1 + c/per)
		}
		s.ctl.SetShardQueues(qs)
	}

	switch cfg.Scheme.Kind {
	case SchemeStatic:
		s.policy = core.NewStatic(cfg.Scheme.StaticMode)
	case SchemeRRM:
		s.rrm, err = core.NewRRM(cfg.scaledRRM(), s.backend)
		if err != nil {
			return nil, err
		}
		s.policy = s.rrm
	case SchemeCustom:
		s.policy = cfg.Scheme.Custom
		// Custom policies that issue selective refreshes (e.g. the
		// multi-mode RRM) get the backend's refresh path.
		if setter, ok := s.policy.(interface{ SetIssuer(core.RefreshIssuer) }); ok {
			setter.SetIssuer(s.backend)
		}
	}

	if s.checker != nil {
		// The checker tracks exactly the blocks whose refreshes the
		// policy actually simulates (see core.SampledBlock).
		s.checker.sampling = s.refreshSampling()
	}
	if cfg.Reliability.Enabled {
		// The fault injector shares the checker's sampled-subset rule
		// and gets its own config-derived RNG stream (never the trace
		// generators' core seeds).
		s.rel = reliability.New(cfg.Reliability, pcm.DefaultDriftTable(),
			cfg.TimeScale, s.refreshSampling(), cfg.reliabilitySeed())
		s.ctl.SetReadIntegrity(s.rel)
	}

	// The backend talks to the memory system through the device seam:
	// PCM-only runs bind the controller directly (one interface dispatch,
	// nothing else changes); hybrid runs interpose the migration engine.
	s.dev = s.ctl
	if cfg.Hybrid != nil {
		s.dramDev, err = dram.NewDevice(cfg.Hybrid.DRAM, s.amap, s.eq)
		if err != nil {
			return nil, err
		}
		s.migr, err = dram.NewMigrator(cfg.Hybrid.Migration, s.ctl, s.dramDev, s.amap, s.eq, s.policy)
		if err != nil {
			return nil, err
		}
		// Functional fast-forward demotions complete instantly but still
		// advance wear/energy/retention state like any PCM write.
		s.migr.SetFunctionalWriter(func(addr uint64, mode pcm.WriteMode) {
			s.backend.RecordWrite(addr, mode, pcm.WearDemandWrite)
		})
		s.dev = s.migr
	}

	nStreams := cfg.Workload.NumStreams()
	span := cfg.Device.MemBytes / uint64(nStreams)
	for i := 0; i < nStreams; i++ {
		var gen trace.Stream
		var err error
		if len(cfg.Workload.Replay) > 0 {
			gen, err = loadReplayStream(cfg.Workload.Replay[i])
		} else {
			base, span := trace.CorePartition(cfg.Device.MemBytes, nStreams, i)
			gen, err = trace.NewStream(cfg.Workload, i, base, span, cfg.Seed)
		}
		if err != nil {
			return nil, err
		}
		ccfg := cpu.DefaultConfig(i)
		if cfg.CoreROB > 0 {
			ccfg.ROB = cfg.CoreROB
		}
		if cfg.CoreMSHRs > 0 {
			ccfg.MSHRs = cfg.CoreMSHRs
		}
		c, err := cpu.New(ccfg, gen, s.backend, s.eq)
		if err != nil {
			return nil, err
		}
		if s.set != nil {
			// Sharded engine: the recurring step event rides a timer
			// slot instead of the heap (same (at, seq) stream either
			// way — see cpu.UseTimerStep).
			c.UseTimerStep()
		}
		s.cores = append(s.cores, c)
		s.gens = append(s.gens, gen)
	}
	if len(cfg.Workload.Tenants) > 0 {
		s.tenants = newTenantTracker(cfg.Workload.Tenants, span)
		if s.checker != nil {
			s.checker.onViolation = s.tenants.noteViolation
		}
		if s.rel != nil {
			s.rel.SetReadObserver(s.tenants.noteRead)
		}
		s.base.tenants = s.tenants.emptyCounters()
	}
	s.base.coreInsts = make([]uint64, 0, len(s.cores))
	s.base.coreTimes = make([]timing.Time, 0, len(s.cores))
	return s, nil
}

// RRM exposes the monitor for inspection (nil for static schemes).
func (s *System) RRM() *core.RRM { return s.rrm }

// refreshSampling returns the policy's simulated-refresh sampling factor
// (1 when the policy simulates every refresh).
func (s *System) refreshSampling() uint64 {
	if p, ok := s.policy.(interface{ RefreshSampling() uint64 }); ok {
		return p.RefreshSampling()
	}
	return 1
}

// Hierarchy exposes the cache hierarchy (read-only use).
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Run executes the configured warmup + measurement window and returns the
// collected metrics.
func (s *System) Run() (Metrics, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked
// between event-queue slices (every simulated millisecond), so a
// cancelled or timed-out context stops the run mid-window with ctx's
// error instead of completing it. A System is single-use either way.
func (s *System) RunContext(ctx context.Context) (Metrics, error) {
	if err := s.Warmup(ctx); err != nil {
		return Metrics{}, err
	}
	return s.Measure(ctx)
}

// Warmup starts every component and advances the simulation to the end of
// the warmup window. A warmed system can be measured (Measure) or
// serialized (Snapshot) — taking a snapshot here and restoring it into a
// fresh same-prefix system reproduces this exact state without
// re-simulating the warmup.
func (s *System) Warmup(ctx context.Context) error {
	if s.phase != phaseNew {
		return fmt.Errorf("sim: Warmup called on a %s system", s.phase)
	}
	end := s.cfg.Warmup + s.cfg.Duration
	for _, c := range s.cores {
		c.StopAt(end)
		c.Start()
	}
	if s.rrm != nil {
		s.rrm.Start(s.eq)
	}
	if cust, ok := s.policy.(interface{ Start(*timing.EventQueue) }); ok && s.cfg.Scheme.Kind == SchemeCustom {
		cust.Start(s.eq)
	}
	if s.rel != nil && s.cfg.Reliability.Patrol {
		s.initPatrol()
		s.armPatrol(s.eq.Now() + s.patrolInterval)
	}
	if err := s.runUntil(ctx, s.cfg.Warmup); err != nil {
		return err
	}
	s.phase = phaseWarm
	return nil
}

// Measure runs the measurement window of a warmed system (from Warmup or
// Restore), drains the memory system and returns the collected metrics.
func (s *System) Measure(ctx context.Context) (Metrics, error) {
	if s.phase != phaseWarm {
		return Metrics{}, fmt.Errorf("sim: Measure called on a %s system", s.phase)
	}
	end := s.cfg.Warmup + s.cfg.Duration
	// Re-assert the stop horizon: it is not part of a snapshot (a
	// restored run sets its own), and no core can have reached it during
	// warmup (local time never leads the clock by more than a quantum).
	for _, c := range s.cores {
		c.StopAt(end)
	}
	s.captureBaseline()
	return s.finishMeasure(ctx, end, s.cfg.Duration)
}

// finishMeasure runs the event queue to end, drains the memory system
// and collects metrics over a measurement window of the given length
// (cfg.Duration for Measure, the sampling window for MeasureWindow).
func (s *System) finishMeasure(ctx context.Context, end timing.Time, window timing.Time) (Metrics, error) {
	defer s.Close() // a measured (or failed) system never runs again
	if err := s.runUntil(ctx, end); err != nil {
		return Metrics{}, err
	}

	// Stop new refresh issue and drain in-flight memory traffic so the
	// last writes are accounted. Expiries past this horizon are
	// truncation artifacts, not policy violations.
	s.backend.stopped = true
	if s.checker != nil {
		s.checker.horizon = end
	}
	deadline := end + 100*timing.Millisecond
	for s.dev.Pending() && s.eq.Now() < deadline {
		if err := ctx.Err(); err != nil {
			return Metrics{}, fmt.Errorf("sim: run cancelled at %v: %w", s.eq.Now(), err)
		}
		s.advance(s.eq.Now() + timing.Millisecond)
	}
	if s.dev.Pending() {
		return Metrics{}, fmt.Errorf("sim: memory system failed to drain after %v", deadline-end)
	}
	if s.checker != nil {
		s.checker.finish(s.eq.Now())
	}
	if s.rel != nil {
		// Classify lines the workload never re-read. Ages are measured
		// at the window end: rewrites that completed during the drain
		// are in the future of `end` and read as age zero.
		s.rel.Finish(end)
	}
	s.phase = phaseDone
	return s.collect(window), nil
}

// Close releases the sharded engine's worker goroutines (a no-op on the
// serial engine, and idempotent). Measured systems close themselves; it
// only needs calling explicitly when a System is abandoned before
// Measure — e.g. the sampling executor's snapshot-producing run.
func (s *System) Close() {
	if s.set != nil {
		s.set.Close()
	}
}

// initPatrol builds the periodic background patrol-scrub callback: every
// scaled PatrolInterval it asks the reliability engine for the next batch
// of tracked lines and rewrites them through the controller's refresh
// path (clock-driven work, accounted like slow refresh). armPatrol
// schedules it and records the event descriptor for snapshots.
func (s *System) initPatrol() {
	s.patrolInterval = s.cfg.scaledPatrolInterval()
	issue := func(addr uint64, mode pcm.WriteMode) {
		s.backend.IssueRefresh(addr, mode, pcm.WearSlowRefresh)
	}
	s.patrolFn = func(now timing.Time) {
		if s.backend.stopped {
			return // measurement over: the drain must not add work
		}
		s.rel.Patrol(issue)
		s.armPatrol(now + s.patrolInterval)
	}
}

func (s *System) armPatrol(at timing.Time) {
	s.patrolAt = at
	s.patrolSeq = s.eq.Schedule(at, s.patrolFn).Seq()
}

// runUntil advances the event queue to t in millisecond slices, checking
// ctx between slices.
func (s *System) runUntil(ctx context.Context, t timing.Time) error {
	for now := s.eq.Now(); now < t; now = s.eq.Now() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("sim: run cancelled at %v: %w", now, err)
		}
		next := now + timing.Millisecond
		if next > t {
			next = t
		}
		s.advance(next)
	}
	return nil
}

// advance drives the engine to deadline: the shard merge when sharded,
// the single queue otherwise. Either way events dispatch in the same
// global (time, seq) order.
func (s *System) advance(t timing.Time) {
	if s.set != nil {
		s.set.RunUntil(t)
		return
	}
	s.eq.RunUntil(t)
}

// baseline captures every counter the measurement window must subtract.
// It lives on the System and is refilled in place — wearMode is a fixed
// array (indexed mode−Mode3SETs) and the per-core slices keep their
// backing arrays — so capturing it allocates nothing.
type baseline struct {
	at        timing.Time
	coreInsts []uint64
	coreTimes []timing.Time
	llcMisses uint64
	llcAcc    uint64
	ctl       memctrl.Stats
	wearKind  [4]uint64
	wearMode  [5]uint64
	energyW   [4]float64
	energyR   float64
	rrm       core.Stats
	rel       reliability.Metrics
	tenants   *tenantCounters // nil unless tenants are tracked
	dram      dram.Stats      // zero unless the hybrid tier is enabled
	mig       dram.MigStats
}

func (s *System) captureBaseline() {
	sn := &s.base
	sn.at = s.eq.Now()
	sn.ctl = s.ctl.Stats()
	sn.coreInsts = sn.coreInsts[:0]
	sn.coreTimes = sn.coreTimes[:0]
	for _, c := range s.cores {
		st := c.Stats()
		sn.coreInsts = append(sn.coreInsts, st.Instructions)
		sn.coreTimes = append(sn.coreTimes, st.LocalTime)
	}
	llc := s.hier.LLC().Stats()
	sn.llcMisses, sn.llcAcc = llc.Misses, llc.Accesses
	for i, k := range pcm.WearKinds() {
		sn.wearKind[i] = s.wear.ByKind(k)
		sn.energyW[i] = s.energy.WriteEnergy(k)
	}
	for _, m := range pcm.Modes() {
		sn.wearMode[m-pcm.Mode3SETs] = s.wear.ByMode(m)
	}
	sn.energyR = s.energy.ReadEnergy()
	sn.rrm = core.Stats{}
	if s.rrm != nil {
		sn.rrm = s.rrm.Stats()
	}
	sn.rel = reliability.Metrics{}
	if s.rel != nil {
		sn.rel = s.rel.Metrics()
	}
	if s.tenants != nil {
		sn.tenants.copyFrom(&s.tenants.tenantCounters)
	}
	if s.migr != nil {
		sn.dram = s.dramDev.Stats()
		sn.mig = s.migr.Stats()
	}
}
