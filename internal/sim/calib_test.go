package sim

import (
	"fmt"
	"os"
	"testing"

	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// TestCalibrateMPKI is a manual harness: prints measured vs Table VII
// MPKI for every workload. Run with CALIB=1.
func TestCalibrateMPKI(t *testing.T) {
	if os.Getenv("CALIB") == "" {
		t.Skip("calibration harness; set CALIB=1")
	}
	paper := trace.PaperMPKI()
	for _, w := range trace.Workloads() {
		cfg := DefaultConfig(RRMScheme(), w)
		cfg.Duration = 20 * timing.Millisecond
		cfg.Warmup = 10 * timing.Millisecond
		cfg.TimeScale = 50
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-11s MPKI=%6.2f (paper %6.2f)  IPC=%.3f wr/s=%.3g shortFrac=%.2f hot=%d\n",
			w.Name, m.LLCMPKI, paper[w.Name], m.IPC, float64(m.WritesServed)/m.SimSeconds, m.ShortWriteFraction, m.HotEntries)
	}
}
