package sim

import (
	"testing"

	"rrmpcm/internal/core"
	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

// quickConfig returns a config small enough for unit tests: a light
// workload, short window, aggressive retention-clock scaling.
func quickConfig(t *testing.T, scheme Scheme, workload string) Config {
	t.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(scheme, w)
	cfg.Duration = 3 * timing.Millisecond
	cfg.Warmup = 1 * timing.Millisecond
	cfg.TimeScale = 1000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	w, _ := trace.WorkloadByName("hmmer")
	base := DefaultConfig(RRMScheme(), w)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Workload.Cores = nil },
		func(c *Config) { c.Workload.Cores = c.Workload.Cores[:2] },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.TimeScale = 0.5 },
		func(c *Config) { c.HitStallFactor = 1.5 },
		func(c *Config) { c.Scheme = StaticScheme(pcm.WriteMode(9)) },
		func(c *Config) { c.Scheme = Scheme{Kind: SchemeRRM} },
		func(c *Config) { c.Scheme = Scheme{Kind: SchemeCustom} },
		func(c *Config) { c.Scheme = Scheme{Kind: SchemeKind(9)} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(RRMScheme(), w)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	if got := StaticScheme(pcm.Mode7SETs).Name(); got != "Static-7-SETs" {
		t.Errorf("static name = %q", got)
	}
	if got := RRMScheme().Name(); got != "RRM" {
		t.Errorf("rrm name = %q", got)
	}
	if got := (Scheme{Kind: SchemeCustom}).Name(); got != "custom" {
		t.Errorf("custom fallback name = %q", got)
	}
}

func TestScaledRRM(t *testing.T) {
	w, _ := trace.WorkloadByName("hmmer")
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.TimeScale = 100
	r := cfg.scaledRRM()
	if r.FastRefreshInterval != 20*timing.Millisecond {
		t.Errorf("scaled fast refresh = %v, want 20ms", r.FastRefreshInterval)
	}
	if r.DecayInterval != 1250*timing.Microsecond {
		t.Errorf("scaled decay = %v, want 1.25ms", r.DecayInterval)
	}
	if got := cfg.scaledRetention(pcm.Mode3SETs); got != timing.Nanoseconds(2.01e9/100) {
		t.Errorf("scaled retention = %v", got)
	}
}

func TestRunProducesMetrics(t *testing.T) {
	sys, err := New(quickConfig(t, RRMScheme(), "hmmer"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheme != "RRM" || m.Workload != "hmmer" {
		t.Errorf("labels = %q/%q", m.Scheme, m.Workload)
	}
	if m.Instructions == 0 || m.IPC <= 0 {
		t.Errorf("no progress: %+v", m)
	}
	if len(m.PerCoreIPC) != 4 {
		t.Errorf("per-core IPC count = %d", len(m.PerCoreIPC))
	}
	if m.SimSeconds != 0.003 {
		t.Errorf("sim seconds = %v", m.SimSeconds)
	}
	if m.LLCMPKI <= 0 {
		t.Error("no MPKI")
	}
	if m.WearTotalRate <= 0 || m.LifetimeYears <= 0 {
		t.Errorf("wear/lifetime: %v / %v", m.WearTotalRate, m.LifetimeYears)
	}
	if m.RetentionViolations != 0 {
		t.Errorf("retention violations: %d (%s)", m.RetentionViolations, m.FirstViolation)
	}
	if m.EnergyTotalJ <= 0 {
		t.Error("no energy")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Metrics {
		sys, err := New(quickConfig(t, RRMScheme(), "hmmer"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Instructions != b.Instructions || a.IPC != b.IPC ||
		a.WritesServed != b.WritesServed || a.RRM.FastRefreshes != b.RRM.FastRefreshes {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "hmmer")
	sysA, _ := New(cfg)
	a, err := sysA.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	sysB, _ := New(cfg)
	b, err := sysB.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Instructions == b.Instructions && a.WritesServed == b.WritesServed {
		t.Error("different seeds produced identical traffic")
	}
}

func TestStaticSchemeUsesOneMode(t *testing.T) {
	for _, mode := range []pcm.WriteMode{pcm.Mode3SETs, pcm.Mode7SETs} {
		sys, err := New(quickConfig(t, StaticScheme(mode), "hmmer"))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		for got := range m.WritesByMode {
			if got != mode {
				t.Errorf("static-%d produced %v writes", mode.Sets(), got)
			}
		}
		if m.RefreshesServed != 0 {
			t.Errorf("static scheme served %d RRM refreshes", m.RefreshesServed)
		}
		// Global refresh wear rate must match the mode's retention.
		want := float64(sys.cfg.Device.TotalBlocks()) / pcm.Retention(mode).Seconds()
		if m.WearGlobalRate != want {
			t.Errorf("global refresh rate = %g, want %g", m.WearGlobalRate, want)
		}
	}
}

func TestRRMSchemeSplitsModes(t *testing.T) {
	cfg := quickConfig(t, RRMScheme(), "GemsFDTD")
	cfg.Duration = 6 * timing.Millisecond
	cfg.Warmup = 2 * timing.Millisecond
	cfg.TimeScale = 500
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.WritesByMode[pcm.Mode3SETs] == 0 {
		t.Error("RRM issued no short writes")
	}
	if m.WritesByMode[pcm.Mode7SETs] == 0 {
		t.Error("RRM issued no long writes")
	}
	if m.ShortWriteFraction <= 0 || m.ShortWriteFraction >= 1 {
		t.Errorf("short write fraction = %v", m.ShortWriteFraction)
	}
	if m.RRM.Promotions == 0 {
		t.Error("no promotions")
	}
	if m.RetentionViolations != 0 {
		t.Errorf("violations: %d (%s)", m.RetentionViolations, m.FirstViolation)
	}
}

// slowPolicy is a trivial custom policy for the plug-in test.
type slowPolicy struct{ core.Static }

func TestCustomScheme(t *testing.T) {
	w, _ := trace.WorkloadByName("hmmer")
	cfg := DefaultConfig(Scheme{Kind: SchemeCustom, Custom: core.NewStatic(pcm.Mode5SETs)}, w)
	cfg.Duration = 2 * timing.Millisecond
	cfg.Warmup = 500 * timing.Microsecond
	cfg.TimeScale = 1000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheme != "Static-5-SETs" {
		t.Errorf("scheme = %q", m.Scheme)
	}
	if m.WritesByMode[pcm.Mode5SETs] == 0 {
		t.Error("custom policy unused")
	}
}

func TestBackpressureThrottlesCores(t *testing.T) {
	cfg := quickConfig(t, StaticScheme(pcm.Mode7SETs), "GemsFDTD")
	cfg.Ctrl.WriteQueueCap = 4
	cfg.Ctrl.WriteDrainHigh = 4
	cfg.Ctrl.WriteDrainLow = 1
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	throttles := uint64(0)
	for _, c := range sys.cores {
		throttles += c.Stats().StallThrottle
	}
	if throttles == 0 {
		t.Error("tiny write queue never throttled the cores")
	}
}

func TestSchemeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme comparison is slow")
	}
	// The paper's headline ordering on a write-heavy workload:
	// perf: Static-3 > RRM > Static-7; lifetime: Static-7 > RRM > Static-3.
	run := func(s Scheme) Metrics {
		w, _ := trace.WorkloadByName("GemsFDTD")
		cfg := DefaultConfig(s, w)
		cfg.Duration = 20 * timing.Millisecond
		cfg.Warmup = 10 * timing.Millisecond
		cfg.TimeScale = 100
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	s7 := run(StaticScheme(pcm.Mode7SETs))
	s3 := run(StaticScheme(pcm.Mode3SETs))
	rrm := run(RRMScheme())

	if !(s3.IPC > rrm.IPC && rrm.IPC > s7.IPC) {
		t.Errorf("IPC ordering broken: s3=%.3f rrm=%.3f s7=%.3f", s3.IPC, rrm.IPC, s7.IPC)
	}
	if !(s7.LifetimeYears > rrm.LifetimeYears && rrm.LifetimeYears > s3.LifetimeYears) {
		t.Errorf("lifetime ordering broken: s7=%.2f rrm=%.2f s3=%.2f",
			s7.LifetimeYears, rrm.LifetimeYears, s3.LifetimeYears)
	}
	if rrm.RetentionViolations+s3.RetentionViolations+s7.RetentionViolations != 0 {
		t.Error("retention violations in ordering test")
	}
	if rrm.ShortWriteFraction < 0.3 {
		t.Errorf("RRM short-write fraction only %.2f", rrm.ShortWriteFraction)
	}
}

func TestRetentionCheckerUnit(t *testing.T) {
	w, _ := trace.WorkloadByName("hmmer")
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.TimeScale = 1
	rc := newRetentionChecker(cfg)

	// Short write then timely rewrite: fine.
	rc.onWrite(0, pcm.Mode3SETs, 0)
	rc.onWrite(0, pcm.Mode3SETs, timing.Second)
	if rc.violations != 0 {
		t.Error("timely rewrite flagged")
	}
	// Expired read.
	rc.onRead(0, 4*timing.Second)
	if rc.violations != 1 {
		t.Errorf("expired read not flagged: %d", rc.violations)
	}
	// Long write clears tracking.
	rc.onWrite(64, pcm.Mode7SETs, 0)
	rc.onRead(64, 100*timing.Second)
	if rc.violations != 1 {
		t.Error("long-mode block tracked as short")
	}
	// finish flags unrefreshed leftovers.
	rc.onWrite(128, pcm.Mode3SETs, 0)
	rc.finish(10 * timing.Second)
	if rc.violations != 2 {
		t.Errorf("finish missed expiry: %d", rc.violations)
	}
	if rc.firstViolation == "" {
		t.Error("no violation message")
	}
}

func TestRetentionCheckerHorizon(t *testing.T) {
	w, _ := trace.WorkloadByName("hmmer")
	cfg := DefaultConfig(RRMScheme(), w)
	cfg.TimeScale = 1
	rc := newRetentionChecker(cfg)
	rc.onWrite(0, pcm.Mode3SETs, 0)
	rc.horizon = timing.Second // deadline (2.01s) is past the horizon
	rc.finish(10 * timing.Second)
	if rc.violations != 0 {
		t.Error("post-horizon expiry flagged")
	}
}

func TestMetricsEnergyConsistency(t *testing.T) {
	sys, err := New(quickConfig(t, StaticScheme(pcm.Mode7SETs), "hmmer"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := m.EnergyDemandJ + m.EnergyRefreshJ + m.PowerReadW*m.EquivSeconds
	if diff := m.EnergyTotalJ - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("energy total %g != parts %g", m.EnergyTotalJ, sum)
	}
	if m.EquivSeconds != 5 {
		t.Errorf("equivalent window = %v, want 5s", m.EquivSeconds)
	}
}

func TestRefreshRateBookkeepingUnderTimeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-ms runs")
	}
	// DESIGN.md's scaling claim: the de-scaled selective-refresh wear
	// rate is a real rate, so it must not scale with TimeScale (the
	// hot-set size is workload property, not a clock one). Two runs at
	// 2x different K should agree within noise.
	run := func(k float64) Metrics {
		w, _ := trace.WorkloadByName("GemsFDTD")
		cfg := DefaultConfig(RRMScheme(), w)
		cfg.Duration = 8 * timing.Millisecond
		cfg.Warmup = 3 * timing.Millisecond
		cfg.TimeScale = k
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(250), run(500)
	if a.WearRRMRate <= 0 || b.WearRRMRate <= 0 {
		t.Fatalf("no selective-refresh wear measured: %g / %g", a.WearRRMRate, b.WearRRMRate)
	}
	ratio := a.WearRRMRate / b.WearRRMRate
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("refresh wear rate scaled with K: %g at K=250 vs %g at K=500", a.WearRRMRate, b.WearRRMRate)
	}
	// Global refresh is analytic and exactly K-independent.
	if a.WearGlobalRate != b.WearGlobalRate {
		t.Error("global refresh rate depends on K")
	}
}
