package sim

import (
	"fmt"

	"rrmpcm/internal/core"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
)

// retentionChecker machine-checks the paper's correctness claim: no block
// written with a short-retention mode may outlive its drift deadline
// without being rewritten (by a demand write or any refresh). Blocks
// written with the long mode are dropped from tracking — their deadline
// is covered by the device's built-in global refresh, which the paper
// (and we) assume handles the 3054.9 s horizon.
//
// Deadlines use the scaled retention clock, so the check is equally tight
// at any TimeScale: the RRM refreshes every 2 s/K against a deadline of
// 2.01 s/K.
type retentionChecker struct {
	longMode  pcm.WriteMode
	deadline  map[uint64]timing.Time // block addr -> expiry
	retention [pcm.Slowest + 1]timing.Time

	violations     uint64
	firstViolation string

	// Violation breakdown by the action that exposed the expiry, for
	// the RetentionDetail metric.
	expiredOnRead    uint64
	expiredOnRewrite uint64
	expiredAtEnd     uint64

	// horizon bounds checking: once the run's measurement window ends,
	// refresh issue stops, so expiries after the horizon are run
	// truncation artifacts, not policy violations.
	horizon timing.Time

	// sampling mirrors the policy's simulated-refresh sampling factor.
	sampling uint64

	// onViolation, when set, attributes each counted violation to the
	// expired block's owner (the tenant tracker).
	onViolation func(blk uint64)
}

func newRetentionChecker(cfg Config) *retentionChecker {
	rc := &retentionChecker{
		longMode: pcm.Mode7SETs,
		deadline: make(map[uint64]timing.Time),
		horizon:  timing.Forever,
		sampling: 1,
	}
	if cfg.Scheme.Kind == SchemeRRM {
		rc.longMode = cfg.Scheme.RRM.LongMode
	} else if cfg.Scheme.Kind == SchemeStatic {
		rc.longMode = cfg.Scheme.StaticMode
	}
	for _, m := range pcm.Modes() {
		rc.retention[m] = cfg.scaledRetention(m)
	}
	return rc
}

// onWrite records a block (re)write completing at now with mode m.
// Short-retention blocks outside the simulated-refresh sample (see
// core.SampledBlock) are not tracked: their refreshes are accounted
// statistically, not simulated, so the checker verifies the sampled
// subset — which the shared hash makes representative.
func (rc *retentionChecker) onWrite(addr uint64, m pcm.WriteMode, now timing.Time) {
	blk := addr &^ 63
	rc.checkLive(blk, now, "rewritten", &rc.expiredOnRewrite)
	if m >= rc.longMode {
		// Long-retention data: global refresh territory.
		delete(rc.deadline, blk)
		return
	}
	if !core.SampledBlock(blk, rc.sampling) {
		return
	}
	rc.deadline[blk] = now + rc.retention[m]
}

// onRead verifies a read does not observe expired data.
func (rc *retentionChecker) onRead(addr uint64, now timing.Time) {
	rc.checkLive(addr&^63, now, "read", &rc.expiredOnRead)
}

// checkLive flags a violation if blk's short-retention deadline passed.
func (rc *retentionChecker) checkLive(blk uint64, now timing.Time, action string, counter *uint64) {
	d, ok := rc.deadline[blk]
	if !ok || now <= d || d >= rc.horizon {
		return
	}
	rc.violations++
	*counter++
	if rc.onViolation != nil {
		rc.onViolation(blk)
	}
	if rc.firstViolation == "" {
		rc.firstViolation = fmt.Sprintf("block %#x %s at %v, %v past its retention deadline",
			blk, action, now, now-d)
	}
	// Count each expiry once.
	delete(rc.deadline, blk)
}

// finish sweeps the remaining tracked blocks at simulation end.
func (rc *retentionChecker) finish(now timing.Time) {
	for blk, d := range rc.deadline {
		if now > d && d < rc.horizon {
			rc.violations++
			rc.expiredAtEnd++
			if rc.onViolation != nil {
				rc.onViolation(blk)
			}
			if rc.firstViolation == "" {
				rc.firstViolation = fmt.Sprintf("block %#x expired unrefreshed at simulation end", blk)
			}
		}
	}
}

// detail returns the serializable violation breakdown, nil when the run
// was clean (so clean runs' metrics JSON — and every existing golden
// file — is unchanged).
func (rc *retentionChecker) detail() *RetentionDetail {
	if rc.violations == 0 {
		return nil
	}
	return &RetentionDetail{
		Total:            rc.violations,
		ExpiredOnRead:    rc.expiredOnRead,
		ExpiredOnRewrite: rc.expiredOnRewrite,
		ExpiredAtEnd:     rc.expiredAtEnd,
		First:            rc.firstViolation,
	}
}
