package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"rrmpcm/internal/pcm"
)

// ModeWrites is a per-write-mode counter map with a stable, readable
// JSON encoding: keys are the paper's mode names ("3-SETs-Write"),
// emitted in mode order, instead of encoding/json's default opaque
// integer-keyed map. This is the snapshot format the run cache and the
// HTTP service serve, so it must round-trip exactly.
type ModeWrites map[pcm.WriteMode]uint64

// MarshalJSON implements json.Marshaler with mode-name keys in
// ascending mode order.
func (w ModeWrites) MarshalJSON() ([]byte, error) {
	if w == nil {
		return []byte("null"), nil
	}
	modes := make([]pcm.WriteMode, 0, len(w))
	for m := range w {
		modes = append(modes, m)
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
	buf := []byte{'{'}
	for i, m := range modes {
		if i > 0 {
			buf = append(buf, ',')
		}
		key, err := json.Marshal(m.String())
		if err != nil {
			return nil, err
		}
		buf = append(buf, key...)
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, w[m], 10)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting both mode names
// ("7-SETs-Write") and bare mode numbers ("7", the pre-v2 cache
// encoding).
func (w *ModeWrites) UnmarshalJSON(blob []byte) error {
	var raw map[string]uint64
	if err := json.Unmarshal(blob, &raw); err != nil {
		return err
	}
	if raw == nil {
		*w = nil
		return nil
	}
	out := make(ModeWrites, len(raw))
	for key, n := range raw {
		m, err := ParseWriteMode(key)
		if err != nil {
			return err
		}
		out[m] = n
	}
	*w = out
	return nil
}

// ParseWriteMode maps a mode spelling — "7-SETs-Write", "7-SETs",
// "static-7", or plain "7" — to the write mode.
func ParseWriteMode(s string) (pcm.WriteMode, error) {
	for _, m := range pcm.Modes() {
		switch s {
		case m.String(),
			fmt.Sprintf("%d-SETs", m.Sets()),
			fmt.Sprintf("static-%d", m.Sets()),
			strconv.Itoa(m.Sets()):
			return m, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown write mode %q", s)
}
