package sim

import (
	"testing"

	"rrmpcm/internal/timing"
)

// FuzzSamplingConfig drives SamplingSpec.Validate with arbitrary specs
// and checks the contract the sampler relies on: any spec Validate
// accepts yields a well-formed sampling plan — enough windows for a
// variance, positive measured spans that fit their segment, an effective
// stride, and a detailed-coverage fraction in (0, 1].
func FuzzSamplingConfig(f *testing.F) {
	f.Add(8, int64(50_000), int64(25_000), 0, int64(1_500_000))
	f.Add(2, int64(1), int64(0), 1, int64(2))
	f.Add(15, int64(50_000), int64(25_000), 16, int64(20_000_000))
	f.Add(0, int64(0), int64(-1), -1, int64(0))
	f.Fuzz(func(t *testing.T, windows int, window, warmup int64, stride int, duration int64) {
		sp := SamplingSpec{
			Windows:      windows,
			Window:       timing.Time(window),
			DetailWarmup: timing.Time(warmup),
			FFStride:     stride,
		}
		d := timing.Time(duration)
		if err := sp.Validate(d); err != nil {
			return
		}
		if sp.Windows < 2 {
			t.Fatalf("valid spec with %d windows (no variance exists)", sp.Windows)
		}
		if sp.Window <= 0 {
			t.Fatalf("valid spec with non-positive window %v", sp.Window)
		}
		if sp.DetailWarmup < 0 {
			t.Fatalf("valid spec with negative detail warmup %v", sp.DetailWarmup)
		}
		if seg := d / timing.Time(sp.Windows); sp.DetailWarmup+sp.Window > seg {
			t.Fatalf("valid spec overflows its segment: %v + %v > %v",
				sp.DetailWarmup, sp.Window, seg)
		}
		if s := sp.Stride(); s < 1 {
			t.Fatalf("valid spec with effective stride %d", s)
		}
		if cov := sp.Coverage(d); cov <= 0 || cov > 1+1e-9 {
			t.Fatalf("valid spec with coverage %v outside (0, 1]", cov)
		}
	})
}
