package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrmpcm/internal/pcm"
	"rrmpcm/internal/timing"
	"rrmpcm/internal/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden files")

// goldenCases enumerates the fixed-seed quick runs whose full metrics
// JSON is pinned under testdata/golden. One case per scheme family plus
// an RRM run on a second workload, so the controller, policy, trace and
// wear paths are all exercised.
func goldenCases() []struct {
	name     string
	scheme   Scheme
	workload string
} {
	return []struct {
		name     string
		scheme   Scheme
		workload string
	}{
		{"static-3-GemsFDTD", StaticScheme(pcm.Mode3SETs), "GemsFDTD"},
		{"static-4-GemsFDTD", StaticScheme(pcm.Mode4SETs), "GemsFDTD"},
		{"static-5-GemsFDTD", StaticScheme(pcm.Mode5SETs), "GemsFDTD"},
		{"static-6-GemsFDTD", StaticScheme(pcm.Mode6SETs), "GemsFDTD"},
		{"static-7-GemsFDTD", StaticScheme(pcm.Mode7SETs), "GemsFDTD"},
		{"rrm-GemsFDTD", RRMScheme(), "GemsFDTD"},
		{"rrm-mcf", RRMScheme(), "mcf"},
	}
}

// goldenConfig is the pinned quick configuration: small windows, fixed
// seed, retention checking on. Any change here invalidates every golden
// file, so treat it as frozen.
func goldenConfig(scheme Scheme, w trace.Workload) Config {
	cfg := DefaultConfig(scheme, w)
	cfg.Duration = 1500 * timing.Microsecond
	cfg.Warmup = 500 * timing.Microsecond
	cfg.TimeScale = 1000
	cfg.Seed = 1
	return cfg
}

// TestGoldenMetrics locks the simulator's observable behavior: every
// optimization of the hot path must leave these fixed-seed metrics
// byte-for-byte identical. Regenerate deliberately with
//
//	go test ./internal/sim -run TestGoldenMetrics -update
//
// and review the diff like any other behavior change.
func TestGoldenMetrics(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, err := trace.WorkloadByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := New(goldenConfig(tc.scheme, w))
			if err != nil {
				t.Fatal(err)
			}
			m, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("metrics diverged from %s\n%s", path, goldenDiff(want, got))
			}
		})
	}
}

// goldenDiff renders a line diff small enough to read in test output.
func goldenDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	diffs := 0
	for i := 0; i < n && diffs < 20; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			diffs++
			b.WriteString("- " + w + "\n+ " + g + "\n")
		}
	}
	if diffs == 0 {
		return "(files differ in length only)"
	}
	return b.String()
}

// TestGoldenMetricsDeterministic runs one golden case twice in-process
// and demands identical JSON, independent of the checked-in files: a
// fast tripwire for any nondeterminism (map iteration, pooling order)
// introduced by hot-path changes.
func TestGoldenMetricsDeterministic(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		sys, err := New(goldenConfig(RRMScheme(), w))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical configs produced different metrics:\n%s\n%s", a, b)
	}
}
