package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"rrmpcm/internal/dram"
	"rrmpcm/internal/trace"
)

// hybridGoldenConfig is goldenConfig with the DRAM staging tier enabled.
// The DRAM capacity is shrunk far below the default so the quick golden
// windows exercise the whole migration machinery — promotions, LRU
// evictions, dirty demotions and coalesced batches — not just fills.
func hybridGoldenConfig(scheme Scheme, w trace.Workload, policy string) Config {
	cfg := goldenConfig(scheme, w)
	hc := dram.DefaultHybridConfig()
	hc.DRAM.CapBytes = 256 * 1024 // 64 pages
	hc.Migration.Policy = policy
	hc.Migration.PromoteThreshold = 2
	cfg.Hybrid = &hc
	return cfg
}

// TestHybridForkBitIdentical is the hybrid correctness bar: with the
// staging tier enabled (both promotion policies), snapshotting at the
// warmup boundary and measuring from the restored fork must produce
// metrics bit-identical to the straight-through run. This covers the
// DRAM device codec, the migrator codec (residency, LRU order, dirty
// bits, candidate counters, parked traffic) and the OwnerMigrate
// callback-identity reconstruction for in-flight copy reads.
func TestHybridForkBitIdentical(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{dram.PolicyWriteCount, dram.PolicyRecency} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			cfg := hybridGoldenConfig(RRMScheme(), w, policy)
			straight := runStraight(t, cfg)
			forked := runForked(t, cfg, snapshotWarm(t, cfg))
			if !bytes.Equal(straight, forked) {
				t.Errorf("forked hybrid run diverged from straight-through:\n%s", goldenDiff(straight, forked))
			}
		})
	}
}

// TestHybridTierCountersSum pins the per-tier accounting invariant: the
// hybrid breakdown must partition the global served counters exactly —
// Hybrid.PCMReads+Hybrid.DRAMReads == ReadsServed and likewise for
// writes — and a hybrid run must stay retention-clean (absorbed writes
// never strand a PCM retention deadline).
func TestHybridTierCountersSum(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	cfg := hybridGoldenConfig(RRMScheme(), w, dram.PolicyWriteCount)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := m.Hybrid
	if h == nil {
		t.Fatal("hybrid run produced no Hybrid metrics section")
	}
	if got := h.PCMReads + h.DRAMReads; got != m.ReadsServed {
		t.Errorf("tier reads don't sum: PCM %d + DRAM %d = %d, want ReadsServed %d",
			h.PCMReads, h.DRAMReads, got, m.ReadsServed)
	}
	if got := h.PCMWrites + h.DRAMWrites; got != m.WritesServed {
		t.Errorf("tier writes don't sum: PCM %d + DRAM %d = %d, want WritesServed %d",
			h.PCMWrites, h.DRAMWrites, got, m.WritesServed)
	}
	if h.DRAMReads == 0 && h.DRAMWrites == 0 {
		t.Error("staging tier served no traffic; the config isn't exercising migration")
	}
	if h.Promotions == 0 {
		t.Error("no promotions; the config isn't exercising migration")
	}
	if m.RetentionViolations != 0 {
		t.Errorf("hybrid run has %d retention violations; staging-tier absorption must not strand deadlines",
			m.RetentionViolations)
	}
}

// TestHybridDeterministic runs one hybrid config twice in-process and
// demands identical JSON: a tripwire for nondeterminism in the migration
// engine (map-ordered promotion scans, pool recycling order).
func TestHybridDeterministic(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		sys, err := New(hybridGoldenConfig(RRMScheme(), w, dram.PolicyRecency))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical hybrid configs produced different metrics:\n%s", goldenDiff(a, b))
	}
}

// TestHybridReducesPCMWrites is the headline claim of the staging tier:
// for a write-heavy workload, absorbing hot-page writes in DRAM must cut
// the write traffic the PCM array actually serves — even counting the
// migration's own demotion writebacks — versus the same PCM-only run.
func TestHybridReducesPCMWrites(t *testing.T) {
	w, err := trace.WorkloadByName("GemsFDTD")
	if err != nil {
		t.Fatal(err)
	}
	base := goldenConfig(RRMScheme(), w)
	sysB, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := sysB.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := hybridGoldenConfig(RRMScheme(), w, dram.PolicyWriteCount)
	sysH, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := sysH.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mh.Hybrid == nil {
		t.Fatal("hybrid run produced no Hybrid metrics section")
	}
	if mh.Hybrid.PCMWrites >= mb.WritesServed {
		t.Errorf("staging tier did not reduce PCM write traffic: hybrid PCM writes %d >= baseline %d",
			mh.Hybrid.PCMWrites, mb.WritesServed)
	}
}
